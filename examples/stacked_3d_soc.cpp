// Case study: 3D-stacked SoC synthesis (Fig. 3) — the mobile platform
// split over two dies, vertical links serialized to minimize TSVs.
//
//   $ ./stacked_3d_soc
//
// Demonstrates: layered core graphs, layer-pure clustering, the TSV /
// serialization / yield trade, and the 2D-only test-mode check.
#include "common/table.h"
#include "synth3d/synth3d.h"
#include "traffic/app_graphs.h"

#include <iostream>

int main()
{
    using namespace noc;

    Synthesis3d_spec spec;
    spec.base.graph = make_mobile_soc_3d_graph(2);
    spec.base.tech = make_technology_65nm();
    spec.base.operating_points = {{1.0, 32}};
    spec.base.min_switches = 2;
    spec.base.max_switches = 8;
    spec.base.max_switch_radix = 10;

    std::cout << "two-die mobile SoC: " << spec.base.graph.core_count()
              << " cores over " << spec.base.graph.layer_count()
              << " layers\n\n";

    Text_table table{{"serialization", "designs", "best TSVs", "yield",
                      "latency(ns)", "2D test mode"}};
    for (const int s : {1, 2, 4}) {
        spec.vertical_serialization = s;
        const auto result = synthesize_3d(spec);
        if (result.designs.empty()) {
            table.row()
                .add(s)
                .add(static_cast<std::uint64_t>(0))
                .add("infeasible: vertical links oversubscribed")
                .add("-")
                .add("-")
                .add("-");
            continue;
        }
        const Design_point_3d* best = &result.designs.front();
        for (const auto& d : result.designs)
            if (d.total_tsvs < best->total_tsvs) best = &d;
        table.row()
            .add(s)
            .add(static_cast<std::uint64_t>(result.designs.size()))
            .add(static_cast<std::uint64_t>(best->total_tsvs))
            .add(best->stack_yield, 4)
            .add(best->base.metrics.latency_ns, 1)
            .add(best->two_d_test_mode_ok ? "yes" : "no");
    }
    table.print(std::cout);
    std::cout << "\nSerialization trades vertical bandwidth for vias: the "
                 "flow picks the factor that still carries the CPU/DRAM "
                 "streams while minimizing the TSV count and maximizing "
                 "stack yield (§4.4).\n";
    return 0;
}
