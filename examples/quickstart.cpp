// Quickstart: build a 4x4 mesh NoC, drive it with uniform random traffic,
// and print a latency/throughput curve — the "hello world" of the library.
//
//   $ ./quickstart
//
// Walks through the three layers a user touches: topology generation,
// routing computation (with a deadlock-freedom check), and cycle-accurate
// simulation with the standard warmup/measure/drain protocol.
#include "common/table.h"
#include "topology/deadlock.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

#include <iostream>

int main()
{
    using namespace noc;

    // 1. Topology: 4x4 mesh, one core per switch (Fig. 4-style CMP tile).
    Mesh_params mesh;
    mesh.width = 4;
    mesh.height = 4;
    const Topology topo = make_mesh(mesh);

    // 2. Routing: dimension-order XY, provably deadlock-free; we still run
    //    the channel-dependency-graph check, as the library always can.
    const Route_set routes = xy_routes(topo, mesh);
    const auto report = analyze_deadlock(topo, routes, 1);
    std::cout << "routing: XY on " << topo.name() << " -> "
              << report.to_string(topo) << "\n\n";

    // 3. Simulate a load sweep with 4-flit packets, uniform random traffic.
    Network_params params;
    params.flit_width_bits = 32;
    params.buffer_depth = 4;
    params.fc = Flow_control_kind::credit;

    Sweep_config cfg;
    Text_table table{{"offered(flits/node/cy)", "accepted", "avg lat(cy)",
                      "p99~(cy)", "packets"}};
    for (const double rate : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        const Load_point pt = run_synthetic_load(
            topo, routes, params, rate,
            [&] { return std::shared_ptr<const Dest_pattern>(
                      make_uniform_pattern(topo.core_count())); },
            cfg);
        table.row()
            .add(pt.offered_flits_per_node_cycle, 3)
            .add(pt.accepted_flits_per_node_cycle, 3)
            .add(pt.avg_packet_latency, 1)
            .add(pt.p99_estimate, 1)
            .add(pt.packets);
    }
    table.print(std::cout);
    std::cout << "\nLatency rises sharply near saturation (~0.4-0.5 "
                 "flits/node/cycle for XY uniform on a 4x4 mesh) — the "
                 "canonical NoC load curve.\n"
                 "\nNext step: example_design_space_sweep runs curves like "
                 "this one for MANY designs in parallel (src/explore) and "
                 "ranks them on a simulation-backed Pareto front.\n";
    return 0;
}
