// Quickstart: build a 4x4 mesh NoC with the Noc_builder fluent API, drive
// it with uniform random traffic, and print a latency/throughput curve —
// the "hello world" of the library.
//
//   $ ./quickstart
//
// Walks through the four layers a user touches: topology generation,
// routing computation (with a deadlock-freedom check), declarative system
// construction (Noc_builder / Build_options, with a Trace_probe flight
// recorder attached), and cycle-accurate simulation with the standard
// warmup/measure/drain protocol.
#include "arch/fault_plan.h"
#include "arch/noc_builder.h"
#include "arch/probe.h"
#include "collective/collective.h"
#include "common/table.h"
#include "telemetry/heatmap.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"
#include "topology/deadlock.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

#include <iostream>
#include <memory>

int main()
{
    using namespace noc;

    // 1. Topology: 4x4 mesh, one core per switch (Fig. 4-style CMP tile).
    Mesh_params mesh;
    mesh.width = 4;
    mesh.height = 4;
    const Topology topo = make_mesh(mesh);

    // 2. Routing: dimension-order XY, provably deadlock-free; we still run
    //    the channel-dependency-graph check, as the library always can.
    const Route_set routes = xy_routes(topo, mesh);
    const auto report = analyze_deadlock(topo, routes, 1);
    std::cout << "routing: XY on " << topo.name() << " -> "
              << report.to_string(topo) << "\n\n";

    // 3. Construction: the builder is the one declarative surface for
    //    every knob — kernel schedule, shard Partition_plan, partial-route
    //    policy, pool sizing, observability probes. Here: defaults (the
    //    activity-gated sequential kernel) plus a Trace_probe, the
    //    per-shard ring-buffer flight recorder of 16-byte Hop records
    //    (flit handle + switch + cycle, see arch/probe.h). A large mesh
    //    would add
    //    .partition(Partition_plan::contiguous(4)) — or ::balanced(4, w)
    //    with weights from a profiling run — to go multi-threaded.
    Network_params params;
    params.flit_width_bits = 32;
    params.buffer_depth = 4;
    params.fc = Flow_control_kind::credit;

    Trace_probe trace{1024};
    auto sys = Noc_builder{}
                   .topology(topo)
                   .routes(routes)
                   .params(params)
                   .probe(&trace)
                   .build();

    // 4. Simulate one load point by hand: Bernoulli sources on every core,
    //    uniform destinations, warmup / measure / drain.
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(topo.core_count()));
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.1;
        sp.seed = 42 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    sys->warmup(2'000);
    sys->measure(10'000);
    sys->drain(60'000);
    std::cout << "hand-built point @ 0.1 flits/node/cycle: "
              << sys->stats().measured_delivered() << " packets, avg latency "
              << sys->stats().packet_latency().mean() << " cycles; probe saw "
              << trace.total_recorded() << " hops (last "
              << trace.recent(0).size() << " retained)\n\n";

    // The experiment harness wraps steps 3-4 for sweeps; its Sweep_config
    // embeds the same Build_options the builder fills in.
    Sweep_config cfg; // cfg.build.kernel_mode / .partition / ... as above
    Text_table table{{"offered(flits/node/cy)", "accepted", "avg lat(cy)",
                      "p99~(cy)", "packets"}};
    for (const double rate : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        const Load_point pt = run_synthetic_load(
            topo, routes, params, rate,
            [&] { return std::shared_ptr<const Dest_pattern>(
                      make_uniform_pattern(topo.core_count())); },
            cfg);
        table.row()
            .add(pt.offered_flits_per_node_cycle, 3)
            .add(pt.accepted_flits_per_node_cycle, 3)
            .add(pt.avg_packet_latency, 1)
            .add(pt.p99_estimate, 1)
            .add(pt.packets);
    }
    table.print(std::cout);
    std::cout << "\nLatency rises sharply near saturation (~0.4-0.5 "
                 "flits/node/cycle for XY uniform on a 4x4 mesh) — the "
                 "canonical NoC load curve.\n"
                 "\nNext step: example_design_space_sweep runs curves like "
                 "this one for MANY designs in parallel (src/explore) and "
                 "ranks them on a simulation-backed Pareto front.\n\n";

    // 5. Live monitoring: the telemetry service (src/telemetry) watches a
    //    run WITHOUT perturbing it. attach_telemetry registers the
    //    system's full metric surface (per-link occupancy, per-NI
    //    injection/ejection, per-router routed/occupancy, kernel
    //    scheduling counters) as pull-based read-functions — zero hot-path
    //    cost — and an async Telemetry_sampler snapshots the surface every
    //    N cycles into a byte-deterministic .noct stream, encoded on a
    //    background thread. Stream to a file and `noc_top --follow` tails
    //    it live while the simulation runs:
    //        ./noc_top --follow quickstart.noct      # live counter table
    //        ./noc_top --heatmap link quickstart.noct # per-link heatmap
    //    Here we sample a saturating load and render the router queue-depth
    //    heatmap post-hoc — watch congestion pool in the mesh center, the
    //    spatial signature of XY uniform saturation.
    {
        Telemetry_registry registry;
        auto msys = Noc_builder{}
                        .topology(topo)
                        .routes(routes)
                        .params(params)
                        .build();
        for (int c = 0; c < topo.core_count(); ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = 0.45; // just past saturation
            sp.seed = 42 + static_cast<std::uint64_t>(c);
            msys->ni(core).set_source(
                std::make_unique<Bernoulli_source>(core, sp, pattern));
        }
        msys->attach_telemetry(registry);
        Telemetry_sampler sampler{&registry, 256, "quickstart.noct"};
        msys->attach_sampler(&sampler);
        msys->warmup(1'000);
        msys->measure(4'000);
        msys->attach_sampler(nullptr);
        sampler.stop();
        const Telemetry_stream stream =
            decode_telemetry_stream(sampler.stream());
        std::cout << "live telemetry: " << stream.entries.size()
                  << " metrics x " << stream.records.size()
                  << " samples (every " << stream.period
                  << " cycles) -> quickstart.noct\n\n"
                  << render_heatmap(stream, "router", ".occ") << "\n";
    }

    // 6. Reliability: the same system under a deterministic Fault_plan
    //    (arch/fault_plan.h). Transient faults corrupt one link flit each
    //    — the ACK/NACK link layer detects and retransmits them — and a
    //    permanent failure kills links mid-run: the system drops the
    //    packets stranded on them, pauses injection, drains, recomputes
    //    routes around the dead links and resumes. All fault mutation
    //    happens between kernel run() calls (the reconfiguration points of
    //    sim/kernel.h), so the run stays bit-identical on the reference,
    //    activity-gated and sharded schedules alike.
    //    random_plan spreads seeded transients over the horizon and kills
    //    links at its midpoint; hand-built plans use add_transient /
    //    add_permanent for exact cycles. A transient on an idle link is a
    //    deterministic no-op, so corruption counts depend on load.
    auto plan = std::make_shared<Fault_plan>(Fault_plan::random_plan(
        topo, /*seed=*/7, /*transients=*/24, /*permanent_links=*/1,
        /*horizon=*/Cycle{12'000}));
    Network_params rparams = params;
    rparams.fc = Flow_control_kind::ack_nack; // transient recovery needs it
    Trace_probe fault_trace{1024};
    auto rsys = Noc_builder{}
                    .topology(topo)
                    .routes(routes)
                    .params(rparams)
                    .fault_plan(plan)
                    .probe(&fault_trace)
                    .build();
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.1;
        sp.seed = 42 + static_cast<std::uint64_t>(c);
        rsys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    rsys->warmup(2'000);
    rsys->measure(10'000); // all three faults land inside this window
    rsys->drain(60'000);
    const auto& rstats = rsys->stats();
    std::cout << "fault drill: " << rstats.corrupted_flits()
              << " flits corrupted, " << rstats.retransmissions()
              << " link retransmissions, " << rstats.packets_dropped()
              << " packets dropped at the failure\n";
    for (const auto& rec : rstats.recoveries())
        std::cout << "  link failure @ cycle " << rec.failed_at
                  << " -> rerouted @ " << rec.recovered_at << " (ttr "
                  << rec.time_to_recover() << " cycles, "
                  << rec.unreachable_pairs.size()
                  << " unreachable pairs)\n";
    std::cout << "  delivered " << rstats.measured_delivered()
              << " packets through it all; probe recorded "
              << fault_trace.fault_events().size() << " fault events\n\n";

    // 7. End-to-end reliability: a whole-router death healed without
    //    losing a single connected-pair packet. Two upgrades over step 5:
    //    - Recovery_mode::epoch (the default): instead of pausing to drain,
    //      the recomputed routes publish at failure + reroute_latency
    //      exactly, while old-epoch packets finish on the routes they were
    //      born with — admitted by an acyclicity check on the union
    //      channel-dependency graph of both route sets, falling back to
    //      the drain path when the check says no.
    //    - plan->replay: source NIs keep every packet until the
    //      destination acknowledges delivery, so packets purged at the
    //      failure are re-injected after the reroute (bounded retries,
    //      deterministic backoff) instead of dropped. The only losses left
    //      are conclusively-unreachable ones — traffic to or from the dead
    //      router's own core.
    auto rplan = std::make_shared<Fault_plan>();
    rplan->add_router_death(Cycle{7'000}, Switch_id{5});
    rplan->replay = true; // recovery == Recovery_mode::epoch is the default
    auto esys = Noc_builder{}
                    .topology(topo)
                    .routes(routes)
                    .params(params)
                    .fault_plan(rplan)
                    .build();
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.1;
        sp.seed = 42 + static_cast<std::uint64_t>(c);
        esys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    esys->warmup(2'000);
    esys->measure(10'000);
    esys->drain(60'000);
    const auto& estats = esys->stats();
    std::cout << "router-death drill: switch 5 died, "
              << estats.packets_replayed() << " purged packets replayed, "
              << estats.packets_unreachable()
              << " unreachable (the dead core's own traffic), "
              << estats.packets_dropped() - estats.packets_unreachable()
              << " connected-pair packets lost\n";
    for (const auto& rec : estats.recoveries())
        std::cout << "  "
                  << (rec.live_switchover ? "live epoch switchover"
                                          : "drain-path reroute")
                  << " @ cycle " << rec.recovered_at << " (ttr "
                  << rec.time_to_recover() << " cycles, "
                  << rec.unreachable_pairs.size()
                  << " unreachable pairs)\n";

    // 8. Collectives: one-to-many and many-to-one traffic as a first-class
    //    workload (src/collective). A multicast packet names a DESTINATION
    //    SET instead of a core; multicast_routes merges the unicast routes
    //    into per-source trees (deadlock-checked on the branching
    //    channel-dependency graph), the switches fork flits at the tree
    //    branches, and every member NI counts its own delivery. The
    //    Collective_driver schedules broadcast / reduce / allreduce /
    //    allgather over that fabric and reports a COMPLETION CYCLE — the
    //    figure of merit for barrier releases and parameter updates. The
    //    use_multicast flag flips the same collective onto naive unicast
    //    emulation (one packet per destination), the baseline a tree
    //    fabric must beat — compare the two numbers printed below, or run
    //    bench_collective for the full story.
    {
        auto run_allreduce = [&](bool use_multicast) {
            auto csys = Noc_builder{}
                            .topology(topo)
                            .routes(routes)
                            .params(params)
                            .build();
            Collective_config ccfg;
            ccfg.kind = Collective_kind::allreduce;
            ccfg.root = Core_id{0};
            ccfg.use_multicast = use_multicast;
            Collective_driver driver{*csys, ccfg};
            return driver.run_to_completion(100'000);
        };
        std::cout << "\nallreduce on the quiet 4x4 mesh: multicast tree "
                  << run_allreduce(true) << " cycles vs unicast emulation "
                  << run_allreduce(false) << " cycles\n\n";
    }

    // 9. Scale out: when one machine's sweep is too slow, the sweep farm
    //    (src/farm, `noc_farm` binary) shards the point grid across
    //    crash-isolated `bench_sweep --points a..b` worker processes with
    //    retry/backoff, hang detection, straggler re-dispatch and
    //    checkpoint/resume — and because per-point seeds are label-keyed
    //    (step "explore" above), the farmed merge is byte-identical to a
    //    single-process run:
    //        ./noc_farm --workers 8 --out-dir farm_out
    //        ./noc_farm --resume farm_out      # after any crash: gaps only
    //    See the "Sweep farm" section in bench/bench_sweep.cpp for the
    //    worker protocol.
    return 0;
}
