// Case study: the Intel Teraflops research chip (Fig. 4) — 80 cores, 5-port
// routers, 2D mesh, message passing (no cache coherency), ~1.62 Tb/s
// aggregate at 3.16 GHz.
//
//   $ ./teraflops_mesh
//
// Demonstrates: topology generation at chip scale, deadlock-checked XY
// routing, saturation search, aggregate-bandwidth accounting, and the
// physical model applied to the chip's router configuration.
#include "common/table.h"
#include "phys/power.h"
#include "phys/router_model.h"
#include "topology/deadlock.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

#include <iostream>

int main()
{
    using namespace noc;
    constexpr double clock_ghz = 3.16;

    // The 8x10 tile array.
    Mesh_params mp;
    mp.width = 8;
    mp.height = 10;
    mp.tile_mm = 1.5; // ~12x17 mm die at 65 nm
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    std::cout << "Teraflops-class mesh: " << topo.switch_count()
              << " routers (max radix " << topo.max_radix() << "), "
              << topo.link_count() << " links, routing "
              << analyze_deadlock(topo, routes, 1).to_string(topo) << "\n\n";

    // The chip's 5-port router, through the 65 nm physical model.
    Router_phys_params rp;
    rp.in_ports = 5;
    rp.out_ports = 5;
    rp.flit_width_bits = 32;
    const auto phys = estimate_router(make_technology_65nm(), rp);
    std::cout << "5-port router @65nm: " << format_double(phys.cell_area_mm2, 4)
              << " mm2 cells, fmax " << format_double(phys.max_freq_ghz, 2)
              << " GHz (the real chip used a custom design to reach 3.16+ "
                 "GHz), "
              << format_double(phys.energy_per_flit_pj, 2)
              << " pJ/flit\n\n";

    // Load curve and aggregate bandwidth.
    Network_params params;
    params.flit_width_bits = 32;
    params.clock_ghz = clock_ghz;
    Sweep_config cfg;
    cfg.warmup = 1'000;
    cfg.measure = 5'000;
    cfg.packet_size_flits = 2;

    Text_table table{{"offered(f/n/cy)", "accepted", "latency(cy)",
                      "aggregate(Tb/s)"}};
    for (const double rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const Load_point pt = run_synthetic_load(
            topo, routes, params, rate,
            [&] {
                return std::shared_ptr<const Dest_pattern>(
                    make_uniform_pattern(topo.core_count()));
            },
            cfg);
        table.row()
            .add(rate, 2)
            .add(pt.accepted_flits_per_node_cycle, 3)
            .add(pt.avg_packet_latency, 1)
            .add(pt.accepted_flits_per_node_cycle * 80 * 32 * clock_ghz /
                     1000.0,
                 2);
    }
    table.print(std::cout);
    std::cout << "\nThe paper quotes ~1.62 Tb/s aggregate for the silicon — "
                 "the same terabit class this simulation sustains.\n";
    return 0;
}
