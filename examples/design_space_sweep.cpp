// Design-space exploration end to end: declare a sweep, run it across
// worker threads, read the curves and the simulation-backed Pareto front.
//
//   $ ./example_design_space_sweep
//
// The paper's §6 argument is that NoCs became products through automated
// flows that explore the design space before committing to silicon. This
// example is that loop in miniature: mesh vs torus at two network-parameter
// points, driven by uniform and tornado traffic over a load grid, every
// point a full cycle-accurate simulation — then the engine assembles
// latency/throughput curves, binary-searches each design's saturation
// point, and reports which designs survive on the (cost, zero-load
// latency, saturation throughput) Pareto front.
#include "explore/sweep_runner.h"

#include <iostream>

int main()
{
    using namespace noc;

    // 1. Declare the space: designs x traffics x loads.
    Network_params vc2;
    vc2.route_vcs = 2; // the torus needs dateline VCs; keep the mesh equal
    Network_params vc2_deep = vc2;
    vc2_deep.buffer_depth = 8;

    Sweep_spec spec;
    spec.name = "mesh-vs-torus-6x6";
    spec.add_mesh(6, 6);
    spec.add_torus(6, 6);
    spec.cross_params({{"vc2-b4", vc2}, {"vc2-b8", vc2_deep}});
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.add_synthetic(Sweep_pattern_kind::tornado);
    spec.loads = {0.05, 0.15, 0.30};
    spec.search_saturation = true;
    spec.base.warmup = 500;
    spec.base.measure = 4'000;
    spec.base.drain_limit = 30'000;

    const auto points = spec.enumerate();
    std::cout << "sweep '" << spec.name << "': " << spec.designs.size()
              << " designs x " << spec.traffics.size() << " traffics x "
              << spec.loads.size() << " loads = " << points.size()
              << " simulation points (+ "
              << spec.curve_count() << " saturation searches)\n\n";

    // 2. Run it: whole systems in parallel, one per worker thread. Results
    //    are byte-identical for any worker count — try changing it.
    const Sweep_result result = run_sweep(spec, 4);

    // 3. Read the outcome: curves, saturation, Pareto front.
    std::cout << result.report() << "\n";
    std::cout << "Simulation-backed Pareto front:\n";
    for (const std::size_t i : result.pareto)
        std::cout << "  * " << result.curves[i].label << "  (zero-load "
                  << result.curves[i].zero_load_latency << " cy, saturation "
                  << result.curves[i].saturation_throughput
                  << " flits/node/cycle)\n";
    std::cout << "\nThe torus buys saturation throughput on tornado "
                 "traffic (wraparound halves the worst-case hop count) at "
                 "extra wiring cost; whether that survives the front is "
                 "measured, not modeled — the point of simulation-backed "
                 "exploration.\n";
    return 0;
}
