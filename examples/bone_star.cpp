// Case study: the BONE memory-centric MPSoC (Fig. 5) — ten RISC processors
// and eight dual-port SRAMs connected by crossbars in a hierarchical star.
//
//   $ ./bone_star
//
// Demonstrates: the hierarchical star generator, up*/down* routing, and the
// OCP-lite transaction layer — closed-loop masters issuing reads/writes to
// the shared SRAMs through the NoC, with round-trip latency statistics.
#include "arch/noc_builder.h"
#include "arch/ocp.h"
#include "common/table.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

#include <iostream>

int main()
{
    using namespace noc;

    Star_params sp;
    sp.clusters = 5;
    sp.cores_per_cluster = 2; // 10 RISC processors
    sp.cores_at_root = 8;     // 8 dual-port SRAMs on the root crossbars
    sp.root_count = 2;
    Star star = make_star(sp);
    const Route_set routes = updown_routes(star.topology, star.switch_rank);

    std::cout << "BONE-style hierarchical star: "
              << star.topology.switch_count() << " switches ("
              << sp.root_count << " root crossbars), "
              << star.topology.core_count() << " cores ("
              << star.root_cores.size() << " SRAMs at the root)\n\n";

    Network_params params;
    params.separate_response_class = true; // req/resp VC isolation
    auto sys_ptr = Noc_builder{}
                       .topology(star.topology)
                       .routes(routes)
                       .params(params)
                       .build();
    Noc_system& sys = *sys_ptr;

    // Processors are closed-loop OCP masters hammering the SRAMs.
    std::vector<Ocp_master_source*> masters;
    for (int c = 0; c < sys.topology().core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        bool is_mem = false;
        for (const Core_id m : star.root_cores) is_mem = is_mem || m == core;
        if (is_mem) {
            sys.ni(core).set_reply_latency(4); // SRAM access time
            continue;
        }
        Ocp_master_source::Params op;
        op.slaves = star.root_cores;
        op.max_outstanding = 4;
        op.min_burst_words = 4;
        op.max_burst_words = 16;
        op.seed = 100 + static_cast<std::uint64_t>(c);
        auto src = std::make_unique<Ocp_master_source>(op);
        masters.push_back(src.get());
        Ocp_master_source* raw = src.get();
        sys.ni(core).set_source(std::move(src));
        sys.ni(core).set_delivery_listener(
            [raw](const Flit& tail, Cycle now) {
                if (tail.cls == Traffic_class::response)
                    raw->notify_response(tail.src, now);
            });
    }

    sys.kernel().run(50'000);

    Text_table table{{"processor", "transactions", "avg RTT(cy)",
                      "max RTT(cy)"}};
    double rtt_sum = 0.0;
    std::uint64_t tx_total = 0;
    for (std::size_t m = 0; m < masters.size(); ++m) {
        table.row()
            .add("risc" + std::to_string(m))
            .add(masters[m]->transactions_completed())
            .add(masters[m]->round_trip().mean(), 1)
            .add(masters[m]->round_trip().max(), 0);
        rtt_sum += masters[m]->round_trip().mean();
        tx_total += masters[m]->transactions_completed();
    }
    table.print(std::cout);
    std::cout << "\n" << tx_total << " transactions completed; mean "
              << "round trip " << format_double(rtt_sum / masters.size(), 1)
              << " cycles through two crossbar levels — the flexible "
                 "SRAM-to-processor mapping the BONE chip exploits.\n";
    return 0;
}
