// Case study: the complete Fig. 6 design flow on a 26-core mobile SoC —
// from communication spec to Pareto set, chosen topology, generated RTL and
// a validated simulation model.
//
//   $ ./custom_soc_synthesis [rtl_output.v]
//
// Demonstrates: Synthesis_spec construction, the switch-count/operating-
// point sweep, Pareto-front inspection, design compilation, and RTL export.
#include "common/table.h"
#include "flow/design_flow.h"
#include "traffic/app_graphs.h"

#include <fstream>
#include <iostream>

int main(int argc, char** argv)
{
    using namespace noc;

    Flow_config cfg;
    cfg.spec.graph = make_mobile_soc_graph();
    cfg.spec.tech = make_technology_65nm();
    cfg.spec.operating_points = {{0.8, 32}, {1.0, 32}, {1.0, 64}};
    cfg.spec.min_switches = 4;
    cfg.spec.max_switches = 10;
    cfg.spec.max_switch_radix = 8;
    cfg.validation_cycles = 10'000;

    const Flow_result result = run_design_flow(cfg);
    std::cout << result.report << "\n";

    const Design_point& dp = result.chosen_design();
    std::cout << "chosen '" << dp.name << "': switch radices:";
    for (int s = 0; s < dp.topology.switch_count(); ++s)
        std::cout << " "
                  << dp.topology.output_port_count(
                         Switch_id{static_cast<std::uint32_t>(s)});
    std::cout << "\nfloorplan: " << dp.floorplan->block_count()
              << " blocks on a "
              << format_double(dp.floorplan->die().w, 1) << "x"
              << format_double(dp.floorplan->die().h, 1)
              << " mm die, utilization "
              << format_double(dp.floorplan->utilization() * 100, 0)
              << "%\n";

    if (argc > 1) {
        std::ofstream out{argv[1]};
        out << result.rtl.text;
        std::cout << "RTL written to " << argv[1] << " ("
                  << result.rtl.module_count << " modules, "
                  << result.rtl.instance_count << " instances)\n";
    } else {
        std::cout << "RTL: " << result.rtl.module_count << " modules, "
                  << result.rtl.instance_count
                  << " instances (pass a filename to export)\n";
    }
    return result.validation.bandwidth_met && result.validation.latency_met
               ? 0
               : 1;
}
