// Case study: the FAUST receiver matrix (§5) — 10 telecom cores on a
// quasi-mesh, every stream a hard real-time GT connection, 10.6 Gb/s
// aggregate.
//
//   $ ./faust_quasi_mesh
//
// Demonstrates: Æthereal-style TDMA admission (slot tables printed), GT
// injection gating in the NIs, and the per-stream guarantee verified by
// cycle-accurate simulation under best-effort interference.
#include "arch/noc_builder.h"
#include "common/table.h"
#include "qos/gt_allocator.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/flow_traffic.h"
#include "traffic/app_graphs.h"

#include <iostream>

int main()
{
    using namespace noc;

    const Core_graph g = make_faust_receiver_graph();
    std::cout << "FAUST receiver: " << g.core_count() << " cores, "
              << g.flow_count() << " hard-RT flows, aggregate "
              << format_double(g.total_bandwidth_mbps() * 8e-3, 1)
              << " Gb/s\n\n";

    // Quasi-mesh: 6 switches, 10 cores (some switches host two cores).
    Topology quasi{"faust_quasi_mesh", 6};
    const int cores_at[6] = {2, 2, 2, 2, 1, 1};
    for (int s = 0; s < 6; ++s)
        for (int c = 0; c < cores_at[s]; ++c)
            quasi.attach_core(Switch_id{static_cast<std::uint32_t>(s)});
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 3; ++x) {
            const Switch_id sw{static_cast<std::uint32_t>(y * 3 + x)};
            if (x + 1 < 3)
                quasi.add_bidir_link(
                    sw, Switch_id{static_cast<std::uint32_t>(y * 3 + x + 1)});
            if (y + 1 < 2)
                quasi.add_bidir_link(
                    sw,
                    Switch_id{static_cast<std::uint32_t>((y + 1) * 3 + x)});
        }
    quasi.validate();
    Route_set routes =
        updown_routes(quasi, spanning_tree_ranks(quasi, Switch_id{1}));

    Network_params params;
    params.enable_gt = true;
    params.slot_table_length = 32;
    params.clock_ghz = 0.5;

    const Gt_allocator alloc{quasi, routes, params.slot_table_length};
    std::vector<Gt_request> reqs;
    for (int i = 0; i < g.flow_count(); ++i) {
        const auto& f = g.flow(Flow_id{static_cast<std::uint32_t>(i)});
        const double load = flits_per_cycle_for(
            f.bandwidth_mbps, params.clock_ghz, params.flit_width_bits,
            f.packet_bytes);
        reqs.push_back({Connection_id{static_cast<std::uint32_t>(i)},
                        Core_id{static_cast<std::uint32_t>(f.src)},
                        Core_id{static_cast<std::uint32_t>(f.dst)},
                        std::min(1.0, load * 1.3)});
    }
    const auto allocation = alloc.allocate(reqs);
    if (!allocation.feasible) {
        std::cout << "GT admission failed: " << allocation.failure_reason
                  << "\n";
        return 1;
    }
    std::cout << "GT admission succeeded; verified conflict-free: "
              << (alloc.verify(allocation) ? "yes" : "NO") << "\n\n";

    // Show one NI's slot table — the Æthereal artifact itself.
    std::cout << "slot table of ofdm_demod's NI (32 slots, '.'=BE): ";
    for (const auto owner : allocation.ni_tables[0])
        std::cout << (owner.is_valid() ? std::to_string(owner.get())
                                       : std::string{"."});
    std::cout << "\n\n";

    // Run with the real-time streams and check every latency bound.
    auto sys_ptr = Noc_builder{}
                       .topology(std::move(quasi))
                       .routes(std::move(routes))
                       .params(params)
                       .build();
    Noc_system& sys = *sys_ptr;
    for (int c = 0; c < 10; ++c)
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_slot_table(
                allocation.ni_tables[static_cast<std::size_t>(c)]);
    for (int c = 0; c < 10; ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Flow_source::Params fp;
        fp.clock_ghz = params.clock_ghz;
        fp.critical_as_gt = true;
        fp.jitter = false;
        fp.seed = 7 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(std::make_unique<Flow_source>(core, g, fp));
    }
    sys.warmup(2'000);
    sys.measure(20'000);

    Text_table table{{"stream", "avg lat(ns)", "bound(ns)", "met"}};
    bool all_met = true;
    for (int i = 0; i < g.flow_count(); ++i) {
        const Flow_id fid{static_cast<std::uint32_t>(i)};
        const auto& f = g.flow(fid);
        const double ns =
            sys.stats().flow_latency(fid).mean() / params.clock_ghz;
        const bool met = ns <= f.max_latency_ns;
        all_met = all_met && met;
        table.row()
            .add(g.core(f.src).name + "->" + g.core(f.dst).name)
            .add(ns, 0)
            .add(f.max_latency_ns, 0)
            .add(met ? "yes" : "NO");
    }
    table.print(std::cout);
    std::cout << "\nall real-time bounds " << (all_met ? "MET" : "VIOLATED")
              << " — the GT machinery delivers the paper's 10.6 Gb/s "
                 "real-time requirement.\n";
    return all_met ? 0 : 1;
}
