#include "synth/path_alloc.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(PathAlloc, RejectsBadConstruction)
{
    EXPECT_THROW(Path_allocator({}, 4, 0.7), std::invalid_argument);
    EXPECT_THROW(Path_allocator({1, 1}, 1, 0.7), std::invalid_argument);
    EXPECT_THROW(Path_allocator({1, 1}, 4, 0.0), std::invalid_argument);
    // Cores may fill the radix exactly (switch-local traffic only), but
    // never exceed it.
    EXPECT_NO_THROW(Path_allocator({4, 1}, 4, 0.7));
    EXPECT_THROW(Path_allocator({5, 1}, 4, 0.7), std::invalid_argument);
}

TEST(PathAlloc, DirectLinkForSimpleDemand)
{
    Path_allocator a{{1, 1}, 4, 0.7};
    const auto path = a.route_flow(0, 1, 0.3);
    ASSERT_TRUE(path.has_value());
    ASSERT_EQ(path->size(), 1u);
    EXPECT_EQ(a.links().size(), 1u);
    EXPECT_EQ(a.links()[0].from, 0);
    EXPECT_EQ(a.links()[0].to, 1);
    EXPECT_DOUBLE_EQ(a.links()[0].load, 0.3);
}

TEST(PathAlloc, ReusesLinkWithSpareCapacity)
{
    Path_allocator a{{1, 1}, 4, 0.7};
    ASSERT_TRUE(a.route_flow(0, 1, 0.3).has_value());
    ASSERT_TRUE(a.route_flow(0, 1, 0.3).has_value());
    EXPECT_EQ(a.links().size(), 1u); // same link, accumulated load
    EXPECT_DOUBLE_EQ(a.links()[0].load, 0.6);
}

TEST(PathAlloc, MintsParallelLinkWhenSaturated)
{
    Path_allocator a{{1, 1}, 4, 0.7};
    ASSERT_TRUE(a.route_flow(0, 1, 0.5).has_value());
    ASSERT_TRUE(a.route_flow(0, 1, 0.5).has_value());
    EXPECT_EQ(a.links().size(), 2u); // second parallel link
}

TEST(PathAlloc, SameSwitchIsEmptyPath)
{
    Path_allocator a{{2, 1}, 4, 0.7};
    const auto path = a.route_flow(0, 0, 0.2);
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(path->empty());
}

TEST(PathAlloc, OverCapacityDemandRejected)
{
    Path_allocator a{{1, 1}, 4, 0.7};
    EXPECT_FALSE(a.route_flow(0, 1, 0.8).has_value()); // > capacity
    EXPECT_FALSE(a.route_flow(0, 1, 0.0).has_value());
}

TEST(PathAlloc, RadixExhaustionFailsCleanly)
{
    // Switch 0 has 2 core ports, radix 3: only one out-link possible.
    Path_allocator a{{2, 1, 1}, 3, 0.9};
    ASSERT_TRUE(a.route_flow(0, 1, 0.9).has_value());
    // Next demand 0->2 cannot reuse (full) and cannot mint at switch 0
    // directly... but may route 0->1->2 via switch 1? No: switch 0's out
    // ports are exhausted (2 cores + 1 link = radix 3).
    EXPECT_FALSE(a.route_flow(0, 2, 0.9).has_value());
}

TEST(PathAlloc, MultiHopWhenCheaper)
{
    // Big new-link cost pushes the allocator to reuse existing two-hop
    // routes instead of minting a direct link.
    Path_cost_params costs;
    costs.new_link_cost = 10.0;
    Path_allocator a{{1, 1, 1}, 6, 0.9, costs};
    ASSERT_TRUE(a.route_flow(0, 1, 0.1).has_value());
    ASSERT_TRUE(a.route_flow(1, 2, 0.1).has_value());
    const auto path = a.route_flow(0, 2, 0.1);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->size(), 2u); // 0->1->2 reusing both links
    EXPECT_EQ(a.links().size(), 2u);
}

TEST(PathAlloc, PathsFollowUpDownDiscipline)
{
    // Any produced path must ascend in switch id and then descend.
    Path_allocator a{{1, 1, 1, 1, 1}, 5, 0.9};
    const std::pair<int, int> demands[] = {{0, 4}, {4, 0}, {2, 3},
                                           {3, 1}, {1, 2}, {4, 2}};
    for (const auto& [s, d] : demands) {
        const auto path = a.route_flow(s, d, 0.05);
        ASSERT_TRUE(path.has_value());
        bool descending = false;
        int prev = s;
        for (const int li : *path) {
            const auto& l = a.links()[static_cast<std::size_t>(li)];
            EXPECT_EQ(l.from, prev);
            if (l.to > prev)
                EXPECT_FALSE(descending) << "down->up turn!";
            else
                descending = true;
            prev = l.to;
        }
        EXPECT_EQ(prev, d);
    }
}

TEST(PathAlloc, LoadAccountingMatchesMaxLinkLoad)
{
    Path_allocator a{{1, 1}, 4, 1.0};
    ASSERT_TRUE(a.route_flow(0, 1, 0.4).has_value());
    ASSERT_TRUE(a.route_flow(0, 1, 0.35).has_value());
    EXPECT_DOUBLE_EQ(a.max_link_load(), 0.75);
}

} // namespace
} // namespace noc
