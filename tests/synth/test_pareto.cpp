#include "synth/pareto.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace noc {
namespace {

TEST(Pareto, DominationSemantics)
{
    const Design_metrics a{10, 10, 10};
    const Design_metrics b{12, 10, 10};
    const Design_metrics c{10, 10, 10};
    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, c)); // equal: no strict improvement
    EXPECT_FALSE(dominates(c, a));
}

TEST(Pareto, FrontExtractsNonDominated)
{
    const std::vector<Design_metrics> pts = {
        {10, 50, 5},  // A: low power, slow
        {50, 10, 5},  // B: fast, hungry
        {30, 30, 5},  // C: middle (non-dominated vs A and B)
        {60, 60, 6},  // D: dominated by all
        {10, 50, 5},  // E: duplicate of A (kept: no strict dominance)
    };
    const auto front = pareto_front(pts);
    EXPECT_TRUE(std::find(front.begin(), front.end(), 0u) != front.end());
    EXPECT_TRUE(std::find(front.begin(), front.end(), 1u) != front.end());
    EXPECT_TRUE(std::find(front.begin(), front.end(), 2u) != front.end());
    EXPECT_TRUE(std::find(front.begin(), front.end(), 3u) == front.end());
    EXPECT_TRUE(std::find(front.begin(), front.end(), 4u) != front.end());
}

TEST(Pareto, FrontOfEmptyIsEmpty)
{
    EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Pareto, SinglePointIsItsOwnFront)
{
    const auto front = pareto_front({{1, 2, 3}});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0], 0u);
}

TEST(Pareto, WeightedPickFollowsWeights)
{
    const std::vector<Design_metrics> pts = {
        {10, 100, 5}, // power-optimal
        {100, 10, 5}, // latency-optimal
    };
    EXPECT_EQ(pick_weighted(pts, 1.0, 0.0, 0.0), 0u);
    EXPECT_EQ(pick_weighted(pts, 0.0, 1.0, 0.0), 1u);
    EXPECT_THROW(pick_weighted({}, 1, 1, 1), std::invalid_argument);
}

TEST(Pareto, FrontMembersNeverDominateEachOther)
{
    std::vector<Design_metrics> pts;
    for (int i = 0; i < 30; ++i)
        pts.push_back({static_cast<double>((i * 7) % 13),
                       static_cast<double>((i * 11) % 17),
                       static_cast<double>((i * 5) % 7)});
    const auto front = pareto_front(pts);
    ASSERT_FALSE(front.empty());
    for (const auto i : front)
        for (const auto j : front)
            if (i != j) EXPECT_FALSE(dominates(pts[i], pts[j]));
    // And every non-front point is dominated by someone on the front.
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (std::find(front.begin(), front.end(), i) != front.end())
            continue;
        bool covered = false;
        for (const auto j : front)
            if (dominates(pts[j], pts[i])) covered = true;
        EXPECT_TRUE(covered);
    }
}

} // namespace
} // namespace noc
