// End-to-end synthesis properties on the embedded application graphs.
#include "synth/compiler.h"
#include "synth/topology_synth.h"
#include "topology/deadlock.h"
#include "traffic/app_graphs.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

Synthesis_spec base_spec(Core_graph g)
{
    Synthesis_spec spec;
    spec.graph = std::move(g);
    spec.tech = make_technology_65nm();
    spec.operating_points = {{1.0, 32}};
    spec.min_switches = 1;
    spec.max_switches = 6;
    spec.max_switch_radix = 10;
    return spec;
}

struct Synth_case {
    std::string name;
    Core_graph graph;
};

class SynthProperty : public ::testing::TestWithParam<Synth_case> {};

TEST_P(SynthProperty, ProducesFeasibleDeadlockFreeDesigns)
{
    const auto result = synthesize_topologies(base_spec(GetParam().graph));
    ASSERT_FALSE(result.designs.empty())
        << "no feasible design; rejections: " +
               (result.rejections.empty() ? std::string{"none"}
                                          : result.rejections.front());
    for (const auto& dp : result.designs) {
        // Structure.
        EXPECT_NO_THROW(dp.topology.validate());
        EXPECT_EQ(dp.topology.core_count(), GetParam().graph.core_count());
        EXPECT_LE(dp.topology.max_radix(), 10);
        // Every flow pair has a route; routes are deadlock-free on 1 VC.
        std::vector<std::pair<Core_id, Route>> flows;
        for (const auto& f : GetParam().graph.flows()) {
            const Route& r = dp.routes.at(
                Core_id{static_cast<std::uint32_t>(f.src)},
                Core_id{static_cast<std::uint32_t>(f.dst)});
            ASSERT_FALSE(r.empty());
            flows.emplace_back(Core_id{static_cast<std::uint32_t>(f.src)},
                               r);
        }
        EXPECT_TRUE(analyze_deadlock_flows(dp.topology, flows, 1).acyclic);
        // Loads within cap; metrics positive; timing met.
        EXPECT_LE(dp.max_link_utilization, 0.7 + 1e-9);
        EXPECT_GT(dp.metrics.power_mw, 0.0);
        EXPECT_GT(dp.metrics.latency_ns, 0.0);
        EXPECT_GT(dp.metrics.area_mm2, 0.0);
        EXPECT_GE(dp.min_router_freq_ghz, dp.op.clock_ghz);
        // Floorplan was produced and is legal.
        ASSERT_TRUE(dp.floorplan.has_value());
        EXPECT_NO_THROW(dp.floorplan->validate());
    }
}

TEST_P(SynthProperty, ParetoFrontIsConsistent)
{
    const auto result = synthesize_topologies(base_spec(GetParam().graph));
    ASSERT_FALSE(result.designs.empty());
    const auto front = result.pareto();
    ASSERT_FALSE(front.empty());
    for (const auto i : front) {
        for (const auto j : front) {
            if (i != j) {
                EXPECT_FALSE(dominates(result.designs[i].metrics,
                                       result.designs[j].metrics));
            }
        }
    }
    EXPECT_NO_THROW(result.pick());
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, SynthProperty,
    ::testing::Values(Synth_case{"vopd", make_vopd_graph()},
                      Synth_case{"mpeg4", make_mpeg4_graph()},
                      Synth_case{"mwd", make_mwd_graph()},
                      Synth_case{"faust", make_faust_receiver_graph()}),
    [](const ::testing::TestParamInfo<Synth_case>& info) {
        return info.param.name;
    });

TEST(Synthesis, MobileSocSynthesizes)
{
    Synthesis_spec spec = base_spec(make_mobile_soc_graph());
    spec.min_switches = 3;
    spec.max_switches = 8;
    const auto result = synthesize_topologies(spec);
    ASSERT_FALSE(result.designs.empty());
    // The big SoC needs several switches: k=3 should appear or be rejected
    // with a reason, never silently dropped.
    EXPECT_EQ(result.designs.size() + result.rejections.size(),
              6u); // k = 3..8 at one operating point
}

TEST(Synthesis, SimulationValidatesSynthesizedDesign)
{
    // The generated "simulation model" must confirm the analytic promises:
    // full bandwidth acceptance and no latency violation (§6 validation).
    Synthesis_spec spec = base_spec(make_vopd_graph());
    const auto result = synthesize_topologies(spec);
    ASSERT_FALSE(result.designs.empty());
    const Design_point& dp = result.pick();
    const auto report = validate_design(dp, spec.graph, 1'000, 10'000);
    EXPECT_TRUE(report.drained);
    EXPECT_TRUE(report.bandwidth_met)
        << (report.violations.empty() ? "" : report.violations.front());
    EXPECT_TRUE(report.latency_met)
        << (report.violations.empty() ? "" : report.violations.front());
}

TEST(Synthesis, HigherClockReducesLinkUtilization)
{
    // Ablation knob: doubling the clock doubles link capacity, so the same
    // bandwidth occupies a smaller fraction of it.
    Synthesis_spec slow = base_spec(make_vopd_graph());
    slow.operating_points = {{0.5, 32}};
    Synthesis_spec fast = base_spec(make_vopd_graph());
    fast.operating_points = {{1.0, 32}};
    const auto rs = synthesize_topologies(slow);
    const auto rf = synthesize_topologies(fast);
    ASSERT_FALSE(rs.designs.empty());
    ASSERT_FALSE(rf.designs.empty());
    auto max_util = [](const Synthesis_result& r) {
        double u = 0;
        for (const auto& d : r.designs)
            u = std::max(u, d.max_link_utilization);
        return u;
    };
    EXPECT_LT(max_util(rf), max_util(rs) + 1e-9);
}

TEST(Synthesis, NarrowerFlitsRaiseLinkUtilization)
{
    // Halving the flit width (the §4.1 serialization knob) halves capacity:
    // the synthesized designs run their links hotter.
    Synthesis_spec narrow = base_spec(make_vopd_graph());
    narrow.operating_points = {{1.0, 16}};
    Synthesis_spec wide = base_spec(make_vopd_graph());
    wide.operating_points = {{1.0, 32}};
    const auto rn = synthesize_topologies(narrow);
    const auto rw = synthesize_topologies(wide);
    ASSERT_FALSE(rn.designs.empty());
    ASSERT_FALSE(rw.designs.empty());
    auto max_util = [](const Synthesis_result& r) {
        double u = 0;
        for (const auto& d : r.designs)
            u = std::max(u, d.max_link_utilization);
        return u;
    };
    EXPECT_GT(max_util(rn), max_util(rw));
}

TEST(Synthesis, WideFlitsHitTheRoutabilityWall)
{
    // At 64-bit ports, radix 8-9 switches are no longer routable (the
    // Fig. 2 study is explicitly a *32-bit* scalability result): synthesis
    // must reject big-radix clusters rather than emit an unbuildable NoC,
    // and succeed once the radix cap keeps switches small.
    Synthesis_spec wide = base_spec(make_vopd_graph());
    wide.operating_points = {{1.0, 64}};
    const auto rejected = synthesize_topologies(wide);
    EXPECT_TRUE(rejected.designs.empty());
    bool saw_routability = false;
    for (const auto& r : rejected.rejections)
        if (r.find("not routable") != std::string::npos)
            saw_routability = true;
    EXPECT_TRUE(saw_routability);

    Synthesis_spec capped = base_spec(make_vopd_graph());
    capped.operating_points = {{1.0, 64}};
    capped.max_switch_radix = 6; // clusters stay small -> routable at 64 bit
    capped.min_switches = 4;
    capped.max_switches = 8;
    const auto ok = synthesize_topologies(capped);
    EXPECT_FALSE(ok.designs.empty());
}

TEST(Synthesis, TargetClockBeyondRouterTimingIsRejected)
{
    // 65 nm standard-cell routers close around 1.3 GHz at these radices;
    // a 2 GHz target must be rejected with a timing reason.
    Synthesis_spec fast = base_spec(make_vopd_graph());
    fast.operating_points = {{2.0, 32}};
    const auto r = synthesize_topologies(fast);
    EXPECT_TRUE(r.designs.empty());
    bool saw_timing = false;
    for (const auto& rej : r.rejections)
        if (rej.find("timing") != std::string::npos) saw_timing = true;
    EXPECT_TRUE(saw_timing);
}

TEST(Synthesis, RejectionReasonsAreDescriptive)
{
    Synthesis_spec spec = base_spec(make_mpeg4_graph());
    // Impossible setup: radix too small to host the cores on few switches.
    spec.min_switches = 1;
    spec.max_switches = 1;
    spec.max_switch_radix = 4;
    const auto result = synthesize_topologies(spec);
    EXPECT_TRUE(result.designs.empty());
    ASSERT_FALSE(result.rejections.empty());
    EXPECT_NE(result.rejections.front().find("k=1"), std::string::npos);
}

TEST(Synthesis, SpecValidation)
{
    Synthesis_spec spec = base_spec(make_vopd_graph());
    spec.operating_points.clear();
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec = base_spec(make_vopd_graph());
    spec.link_utilization_cap = 1.5;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec = base_spec(make_vopd_graph());
    spec.max_switch_radix = 2;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Synthesis, CompiledDesignRunsPartialRoutes)
{
    Synthesis_spec spec = base_spec(make_vopd_graph());
    const auto result = synthesize_topologies(spec);
    ASSERT_FALSE(result.designs.empty());
    auto sys = compile_design(result.pick());
    // Non-communicating pairs have no route: sending must fail fast.
    // (vld -> arm has no flow in VOPD.)
    const Core_id vld{0};
    const Core_id arm{11};
    if (result.pick().routes.at(vld, arm).empty()) {
        EXPECT_THROW(sys->ni(vld).enqueue_packet(
                         {arm, 1, Traffic_class::request, Flow_id{},
                          Connection_id{}, 0},
                         0),
                     std::logic_error);
    }
}

} // namespace
} // namespace noc
