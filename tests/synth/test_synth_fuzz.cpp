// Randomized synthesis fuzzing: arbitrary (seeded) core graphs must either
// synthesize into designs that satisfy every structural invariant, or be
// rejected with a reason — never crash, never emit a deadlocking or
// oversubscribed NoC.
#include "common/rng.h"
#include "synth/compiler.h"
#include "synth/topology_synth.h"
#include "topology/deadlock.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

Core_graph random_graph(std::uint64_t seed)
{
    Rng rng{seed};
    const int cores = 6 + static_cast<int>(rng.next_below(16));
    Core_graph g{"fuzz" + std::to_string(seed)};
    for (int c = 0; c < cores; ++c) {
        Core_spec spec;
        spec.name = "c" + std::to_string(c);
        spec.area_mm2 = 0.3 + rng.next_double() * 2.5;
        spec.is_memory = rng.next_bool(0.25);
        g.add_core(std::move(spec));
    }
    const int flows = cores + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(2 * cores)));
    for (int f = 0; f < flows; ++f) {
        const int src = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(cores)));
        int dst = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(cores)));
        if (dst == src) dst = (dst + 1) % cores;
        Flow_spec fs;
        fs.src = src;
        fs.dst = dst;
        fs.bandwidth_mbps = 10 + static_cast<double>(rng.next_below(400));
        fs.packet_bytes = rng.next_bool(0.5) ? 32 : 64;
        if (rng.next_bool(0.3))
            fs.max_latency_ns = 200 + static_cast<double>(
                                          rng.next_below(800));
        g.add_flow(fs);
    }
    g.validate();
    return g;
}

class SynthFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthFuzz, DesignsSatisfyAllInvariantsOrAreRejected)
{
    Synthesis_spec spec;
    spec.graph = random_graph(GetParam());
    spec.tech = make_technology_65nm();
    spec.min_switches = 2;
    spec.max_switches = 8;
    spec.max_switch_radix = 9;

    const auto result = synthesize_topologies(spec);
    // Every candidate is accounted for.
    EXPECT_EQ(result.designs.size() + result.rejections.size(), 7u);
    for (const auto& r : result.rejections) EXPECT_FALSE(r.empty());

    for (const auto& dp : result.designs) {
        dp.topology.validate();
        EXPECT_LE(dp.topology.max_radix(), 9);
        EXPECT_LE(dp.max_link_utilization,
                  spec.link_utilization_cap + 1e-9);
        // Deadlock freedom of the emitted routing function.
        std::vector<std::pair<Core_id, Route>> flows;
        for (const auto& f : spec.graph.flows())
            flows.emplace_back(
                Core_id{static_cast<std::uint32_t>(f.src)},
                dp.routes.at(Core_id{static_cast<std::uint32_t>(f.src)},
                             Core_id{static_cast<std::uint32_t>(f.dst)}));
        EXPECT_TRUE(analyze_deadlock_flows(dp.topology, flows, 1).acyclic);
        // Latency promises respect the declared bounds.
        for (int i = 0; i < spec.graph.flow_count(); ++i) {
            const auto& f = spec.graph.flow(
                Flow_id{static_cast<std::uint32_t>(i)});
            if (f.max_latency_ns > 0) {
                EXPECT_LE(dp.flow_latency_ns[static_cast<std::size_t>(i)],
                          f.max_latency_ns + 1e-9);
            }
        }
        // Floorplan legality.
        ASSERT_TRUE(dp.floorplan.has_value());
        dp.floorplan->validate();
        // The compiled instance constructs (route/port consistency).
        EXPECT_NO_THROW(compile_design(dp));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthFuzz,
                         ::testing::Range<std::uint64_t>(100, 112));

} // namespace
} // namespace noc
