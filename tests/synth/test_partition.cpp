#include "synth/partition.h"
#include "traffic/app_graphs.h"

#include <gtest/gtest.h>

#include <set>

namespace noc {
namespace {

Core_graph two_communities()
{
    // Two 3-core cliques joined by one thin edge: any sane partitioner
    // splits exactly between them.
    Core_graph g{"communities"};
    for (int i = 0; i < 6; ++i)
        g.add_core({"c" + std::to_string(i), false, 1.0, Layer_id{0}});
    auto heavy = [&](int a, int b) {
        g.add_flow({a, b, 500.0, 0.0, 64, false});
    };
    heavy(0, 1);
    heavy(1, 2);
    heavy(2, 0);
    heavy(3, 4);
    heavy(4, 5);
    heavy(5, 3);
    g.add_flow({0, 3, 10.0, 0.0, 64, false}); // thin bridge
    g.validate();
    return g;
}

TEST(Partition, RejectsBadArguments)
{
    const Core_graph g = two_communities();
    EXPECT_THROW(partition_cores(g, 0, 4), std::invalid_argument);
    EXPECT_THROW(partition_cores(g, 7, 4), std::invalid_argument);
    EXPECT_THROW(partition_cores(g, 2, 2), std::invalid_argument); // 2*2 < 6
}

TEST(Partition, FindsNaturalCommunities)
{
    const Core_graph g = two_communities();
    const auto part = partition_cores(g, 2, 3);
    EXPECT_EQ(part.cluster_count, 2);
    // Cores 0-2 together, 3-5 together.
    EXPECT_EQ(part.core_cluster[0], part.core_cluster[1]);
    EXPECT_EQ(part.core_cluster[1], part.core_cluster[2]);
    EXPECT_EQ(part.core_cluster[3], part.core_cluster[4]);
    EXPECT_EQ(part.core_cluster[4], part.core_cluster[5]);
    EXPECT_NE(part.core_cluster[0], part.core_cluster[3]);
    EXPECT_DOUBLE_EQ(part.cut_bandwidth_mbps, 10.0);
}

TEST(Partition, RespectsCapacity)
{
    const Core_graph g = two_communities();
    for (int k = 2; k <= 6; ++k) {
        const auto part = partition_cores(g, k, 3);
        std::vector<int> sizes(static_cast<std::size_t>(k), 0);
        for (const int c : part.core_cluster) {
            ASSERT_GE(c, 0);
            ASSERT_LT(c, k);
            ++sizes[static_cast<std::size_t>(c)];
        }
        for (const int s : sizes) EXPECT_LE(s, 3);
    }
}

TEST(Partition, KEqualsNIsSingletons)
{
    const Core_graph g = two_communities();
    const auto part = partition_cores(g, 6, 1);
    std::set<int> distinct(part.core_cluster.begin(),
                           part.core_cluster.end());
    EXPECT_EQ(distinct.size(), 6u);
    // Every flow crosses clusters now.
    EXPECT_DOUBLE_EQ(part.cut_bandwidth_mbps, g.total_bandwidth_mbps());
}

TEST(Partition, KOneIsAllTogether)
{
    const Core_graph g = two_communities();
    const auto part = partition_cores(g, 1, 6);
    for (const int c : part.core_cluster) EXPECT_EQ(c, 0);
    EXPECT_DOUBLE_EQ(part.cut_bandwidth_mbps, 0.0);
}

TEST(Partition, CutNeverExceedsTotal)
{
    for (const auto& g : {make_vopd_graph(), make_mpeg4_graph(),
                          make_mwd_graph(), make_mobile_soc_graph()}) {
        for (int k = 2; k <= 5; ++k) {
            const auto part = partition_cores(g, k, g.core_count());
            EXPECT_GE(part.cut_bandwidth_mbps, 0.0);
            EXPECT_LE(part.cut_bandwidth_mbps, g.total_bandwidth_mbps());
        }
    }
}

TEST(Partition, PipelineGraphPrefersAdjacentStages)
{
    // VOPD is a pipeline: a 6-way partition should keep the heaviest
    // adjacent stages (362 MB/s chain) together more often than apart.
    const Core_graph g = make_vopd_graph();
    const auto part = partition_cores(g, 6, 2);
    int heavy_pairs_together = 0;
    int heavy_pairs = 0;
    for (const auto& f : g.flows()) {
        if (f.bandwidth_mbps < 300) continue;
        ++heavy_pairs;
        if (part.core_cluster[static_cast<std::size_t>(f.src)] ==
            part.core_cluster[static_cast<std::size_t>(f.dst)])
            ++heavy_pairs_together;
    }
    EXPECT_GT(heavy_pairs_together * 2, heavy_pairs)
        << "expected most >=300MB/s pairs co-clustered";
}

TEST(Partition, DeterministicAcrossRuns)
{
    const Core_graph g = make_mpeg4_graph();
    const auto a = partition_cores(g, 4, 4);
    const auto b = partition_cores(g, 4, 4);
    EXPECT_EQ(a.core_cluster, b.core_cluster);
}

} // namespace
} // namespace noc
