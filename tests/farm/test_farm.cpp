// Farm orchestrator robustness contract (farm/orchestrator.h): crash
// isolation with bounded retry/backoff, heartbeat hang detection,
// straggler re-dispatch with first-completion-wins, atomic publication,
// and checkpoint/resume that trusts only validated published slices.
//
// The workers here are /bin/sh scripts, not bench_sweep: the orchestrator
// speaks an argv-template protocol precisely so its failure machinery is
// testable with workers whose behavior (crash on attempt 0, hang forever,
// dawdle until a duplicate wins) is scripted per attempt. The end-to-end
// farm-vs-single-process byte-identity check with real simulation workers
// lives in CI's farm smoke leg (noc_farm --chaos ... --ref).
#include "farm/orchestrator.h"

#include "explore/slice_io.h"
#include "explore/slice_merge.h"
#include "farm/checkpoint.h"
#include "farm/chaos.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <sys/stat.h>

namespace noc {
namespace {

/// The worker script every test parameterizes: writes a well-formed slice
/// document for [$1, $2) of a 12-point grid — the same shape bench_sweep
/// publishes — atomically (tmp + mv), after running the test's
/// attempt-dependent PRELUDE ($3 = attempt, $5 = heartbeat path).
const char* const publish_body = R"SH(
a=$1; b=$2; dir=$4
f="$dir/BENCH_sweep_points_${a}_${b}.json"
t="$f.tmp.$$"
{
  printf '{\n  "bench": "sweep_points",\n  "spec": "unit",\n'
  printf '  "budget": "w1-m1",\n  "grid_points": "%s",\n' "$GRID"
  printf '  "range": "%s..%s",\n  "points": [\n' "$a" "$b"
  i=$a
  while [ $i -lt $b ]; do
    sep=","
    [ $((i + 1)) -eq $b ] && sep=""
    printf '    {"index": %s, "v": %s}%s\n' "$i" "$((i * 7))" "$sep"
    i=$((i + 1))
  done
  printf '  ]\n}\n'
} > "$t"
mv "$t" "$f"
exit 0
)SH";

struct Rig {
    std::string dir;
    std::string script;

    explicit Rig(const std::string& name)
        : dir("farm_test_" + name), script(dir + "/worker.sh")
    {
        std::system(("rm -rf " + dir).c_str());
        ::mkdir(dir.c_str(), 0755);
    }

    /// Install the worker script: `prelude` runs first with $1=begin
    /// $2=end $3=attempt $4=dir $5=heartbeat; falls through into the
    /// slice-publishing body for a `grid`-point grid.
    void install_worker(const std::string& prelude, std::uint32_t grid = 12)
    {
        std::ofstream out{script};
        out << "#!/bin/sh\nGRID=" << grid << "\n"
            << prelude << "\n" << publish_body;
    }

    [[nodiscard]] Farm_config config(std::uint32_t total,
                                     std::uint32_t slice_points,
                                     std::uint32_t workers) const
    {
        Farm_config cfg;
        cfg.worker_argv = {"/bin/sh", script,    "{begin}", "{end}",
                           "{attempt}", "{dir}", "{heartbeat}"};
        cfg.out_dir = dir;
        cfg.total_points = total;
        cfg.slice_points = slice_points;
        cfg.workers = workers;
        cfg.retry = Retry_policy{5, 20};
        cfg.heartbeat_timeout_s = 60.0; // hang tests lower it
        cfg.poll_interval_s = 0.005;
        cfg.straggler_after_s = 60.0; // straggler test lowers it
        cfg.quiet = true;
        return cfg;
    }

    [[nodiscard]] std::string read(const std::string& name) const
    {
        std::ifstream in{dir + "/" + name, std::ios::binary};
        return {std::istreambuf_iterator<char>{in},
                std::istreambuf_iterator<char>{}};
    }

    void write(const std::string& name, const std::string& content) const
    {
        std::ofstream out{dir + "/" + name, std::ios::binary};
        out << content;
    }

    ~Rig() { std::system(("rm -rf " + dir).c_str()); }
};

/// What the scripted workers' records merge to: the expected full payload
/// for byte-identity checks.
std::string expected_merged(std::uint32_t total)
{
    std::vector<std::string> records;
    for (std::uint32_t i = 0; i < total; ++i)
        records.push_back("    {\"index\": " + std::to_string(i) +
                          ", \"v\": " + std::to_string(i * 7) + "}");
    return slice_payload("unit", "w1-m1", 0, total, total, records);
}

/// One valid slice document exactly as the scripted worker publishes it.
std::string slice_doc(std::uint32_t a, std::uint32_t b, std::uint32_t grid)
{
    std::vector<std::string> records;
    for (std::uint32_t i = a; i < b; ++i)
        records.push_back("    {\"index\": " + std::to_string(i) +
                          ", \"v\": " + std::to_string(i * 7) + "}");
    return slice_payload("unit", "w1-m1", a, b, grid, records);
}

TEST(FarmSlices, ContiguousLayoutCoversGrid)
{
    const auto slices = farm_slices(12, 5);
    ASSERT_EQ(slices.size(), 3u);
    EXPECT_EQ(slices[0].begin, 0u);
    EXPECT_EQ(slices[0].end, 5u);
    EXPECT_EQ(slices[2].begin, 10u);
    EXPECT_EQ(slices[2].end, 12u); // tail slice clipped to the grid
    EXPECT_EQ(farm_slices(12, 12).size(), 1u);
    EXPECT_TRUE(farm_slices(0, 4).empty());
}

TEST(FarmChaos, DeterministicBoundedInjection)
{
    Chaos_spec spec;
    ASSERT_EQ(parse_chaos_spec("kill=0.3,hang=0.2,torn=0.1,seed=7,cap=2",
                               spec),
              "");
    EXPECT_DOUBLE_EQ(spec.p_kill, 0.3);
    EXPECT_DOUBLE_EQ(spec.p_hang, 0.2);
    EXPECT_DOUBLE_EQ(spec.p_torn, 0.1);
    EXPECT_EQ(spec.seed, 7u);
    // Same (slice, attempt) -> same action, reproducible from the seed.
    for (std::uint32_t s = 0; s < 40; s += 3)
        for (std::uint32_t at = 0; at < 2; ++at)
            EXPECT_EQ(spec.action(s, at), spec.action(s, at));
    // The attempt cap guarantees convergence: at and past it, always clean.
    for (std::uint32_t s = 0; s < 40; ++s)
        for (std::uint32_t at = 2; at < 6; ++at)
            EXPECT_EQ(spec.action(s, at), Chaos_action::none);
    // With these probabilities some pre-cap action must fire somewhere.
    bool any = false;
    for (std::uint32_t s = 0; s < 40 && !any; ++s)
        any = spec.action(s, 0) != Chaos_action::none;
    EXPECT_TRUE(any);

    Chaos_spec bad;
    EXPECT_NE(parse_chaos_spec("kill=1.5", bad), "");
    EXPECT_NE(parse_chaos_spec("kill=0.9,hang=0.9", bad), "");
    EXPECT_NE(parse_chaos_spec("flood=0.5", bad), "");
}

TEST(Farm, CleanRunMergesByteIdentical)
{
    Rig rig{"clean"};
    rig.install_worker("");
    const Farm_report r = run_farm(rig.config(12, 3, 3));
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.slices, 4u);
    EXPECT_EQ(r.published, 4u);
    EXPECT_EQ(r.attempts, 4u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(rig.read("merged_points.json"), expected_merged(12));
    EXPECT_EQ(r.spec_name, "unit");
    EXPECT_EQ(r.budget, "w1-m1");
}

TEST(Farm, CrashedWorkersRetryUnderBoundedBudget)
{
    // Every slice crashes (SIGKILL, no output) on attempts 0 and 1, then
    // publishes on attempt 2 — inside the 5-attempt budget.
    Rig rig{"crash"};
    rig.install_worker("if [ $3 -lt 2 ]; then kill -9 $$; fi");
    const Farm_report r = run_farm(rig.config(12, 3, 4));
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.attempts, 12u); // 4 slices x 3 attempts
    EXPECT_EQ(r.retries, 8u);
    EXPECT_EQ(rig.read("merged_points.json"), expected_merged(12));
}

TEST(Farm, AttemptBudgetExhaustionFailsWithCoverageReport)
{
    Rig rig{"budget"};
    rig.install_worker("exit 9"); // deterministic failure, every attempt
    Farm_config cfg = rig.config(12, 6, 2);
    cfg.retry = Retry_policy{2, 5};
    const Farm_report r = run_farm(cfg);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.error.find("failed 2 attempts"), std::string::npos)
        << r.error;
    EXPECT_NE(r.error.find("exit code 9"), std::string::npos) << r.error;
    EXPECT_NE(r.coverage.find("missing"), std::string::npos) << r.coverage;
    EXPECT_TRUE(rig.read("merged_points.json").empty());
}

TEST(Farm, InvalidRequestAbortsWithoutBurningRetries)
{
    // Exit 1 = invalid request by the worker contract: a configuration
    // error cannot resolve by retrying, so the farm aborts on the spot.
    Rig rig{"fatal"};
    rig.install_worker("exit 1");
    const Farm_report r = run_farm(rig.config(12, 3, 2));
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.error.find("invalid request"), std::string::npos)
        << r.error;
    EXPECT_LE(r.attempts, 2u); // no retry storm
}

TEST(Farm, HangDetectedByStaleHeartbeatAndRetried)
{
    // Attempt 0 heartbeats once and wedges (exec sleep keeps the pid);
    // the watchdog must kill it and attempt 1 publishes.
    Rig rig{"hang"};
    rig.install_worker(
        "if [ $3 -eq 0 ]; then echo 0 > $5; exec sleep 30; fi", 3);
    Farm_config cfg = rig.config(3, 3, 2);
    cfg.heartbeat_timeout_s = 0.3;
    const Farm_report r = run_farm(cfg);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.hangs_detected, 1u);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(rig.read("merged_points.json"), expected_merged(3));
}

TEST(Farm, StragglerRedispatchFirstCompletionWins)
{
    // Attempt 0 stays HEALTHY (heartbeats continuously) but dawdles far
    // past the straggler threshold without publishing; with an idle
    // worker available the farm must re-dispatch the slice, let attempt 1
    // publish, and kill the dawdler — not wait for it and not call it
    // hung.
    Rig rig{"straggler"};
    rig.install_worker("if [ $3 -eq 0 ]; then\n"
                       "  i=0\n"
                       "  while [ $i -lt 200 ]; do\n"
                       "    echo $i > $5\n"
                       "    i=$((i + 1))\n"
                       "    sleep 0.05\n"
                       "  done\n"
                       "  exit 9\n"
                       "fi",
                       3);
    Farm_config cfg = rig.config(3, 3, 2);
    cfg.straggler_after_s = 0.25;
    cfg.heartbeat_timeout_s = 30.0; // liveness is not the issue here
    const Farm_report r = run_farm(cfg);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_GE(r.stragglers_redispatched, 1u);
    EXPECT_GE(r.duplicates_cancelled, 1u);
    EXPECT_EQ(r.hangs_detected, 0u);
    EXPECT_LT(r.wall_seconds, 8.0); // did not wait out the dawdler
    EXPECT_EQ(rig.read("merged_points.json"), expected_merged(3));
}

TEST(Farm, ResumeTrustsPublishedIgnoresTornTmpRerunsGaps)
{
    // The crash-mid-write matrix after a hard orchestrator kill:
    //   [0..3)  published slice            -> trusted, NOT re-run
    //   [3..6)  published slice            -> trusted, NOT re-run
    //   [6..9)  torn tmp (crash mid-write) -> ignored + swept, re-run
    //   [9..12) damaged file under the published name (non-atomic
    //           transport) -> invalid, re-run
    Rig rig{"resume"};
    rig.install_worker("touch $4/ran_$1");
    rig.write(slice_file_name(0, 3), slice_doc(0, 3, 12));
    rig.write(slice_file_name(3, 6), slice_doc(3, 6, 12));
    rig.write(slice_file_name(6, 9) + ".tmp.4242",
              slice_doc(6, 9, 12).substr(0, 40));
    rig.write(slice_file_name(9, 12),
              slice_doc(9, 12, 12).substr(0, 60)); // truncated document
    Farm_config cfg = rig.config(12, 3, 4);
    cfg.resume = true;
    const Farm_report r = run_farm(cfg);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.resumed_trusted, 2u);
    EXPECT_EQ(r.resumed_invalid, 1u);
    EXPECT_EQ(r.tmp_ignored, 1u);
    EXPECT_EQ(r.attempts, 2u); // only the two gaps ran
    EXPECT_FALSE(std::ifstream{rig.dir + "/ran_0"}.good());
    EXPECT_FALSE(std::ifstream{rig.dir + "/ran_3"}.good());
    EXPECT_TRUE(std::ifstream{rig.dir + "/ran_6"}.good());
    EXPECT_TRUE(std::ifstream{rig.dir + "/ran_9"}.good());
    // The resumed merge is byte-identical to an uninterrupted full run.
    EXPECT_EQ(rig.read("merged_points.json"), expected_merged(12));
}

TEST(Farm, ResumeRejectsForeignSlices)
{
    // A slice from a different protocol (wrong budget) under the right
    // file name must be re-run, not folded in.
    Rig rig{"foreign"};
    rig.install_worker("touch $4/ran_$1", 6);
    std::string foreign = slice_doc(0, 3, 6);
    const auto at = foreign.find("w1-m1");
    foreign.replace(at, 5, "w9-m9");
    rig.write(slice_file_name(0, 3), foreign);
    rig.write(slice_file_name(3, 6), slice_doc(3, 6, 6));
    Farm_config cfg = rig.config(6, 3, 2);
    cfg.resume = true;
    cfg.expect_spec = "unit";
    cfg.expect_budget = "w1-m1";
    const Farm_report r = run_farm(cfg);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.resumed_trusted, 1u);
    EXPECT_EQ(r.resumed_invalid, 1u);
    EXPECT_TRUE(std::ifstream{rig.dir + "/ran_0"}.good());
    EXPECT_FALSE(std::ifstream{rig.dir + "/ran_3"}.good());
    EXPECT_EQ(rig.read("merged_points.json"), expected_merged(6));
}

TEST(Farm, FreshRunClearsStaleArtifacts)
{
    // Without --resume, results from an earlier run are stale by
    // definition: every slice re-runs and pre-existing files are removed
    // first (a stale slice under a published name must not short-circuit
    // the exit-0 verification).
    Rig rig{"fresh"};
    rig.install_worker("touch $4/ran_$1");
    // Stale content that would be DETECTABLY wrong if trusted.
    std::string stale = slice_doc(0, 3, 12);
    rig.write(slice_file_name(0, 3), stale);
    const Farm_report r = run_farm(rig.config(12, 3, 2));
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.resumed_trusted, 0u);
    EXPECT_EQ(r.attempts, 4u);
    EXPECT_TRUE(std::ifstream{rig.dir + "/ran_0"}.good());
    EXPECT_EQ(rig.read("merged_points.json"), expected_merged(12));
}

TEST(FarmCheckpoint, ValidateSliceFileNamesEveryDefect)
{
    const std::string good = slice_doc(3, 6, 12);
    EXPECT_EQ(validate_slice_file("s.json", good, 3, 6, 12, "unit",
                                  "w1-m1"),
              "");
    // Wrong range header.
    EXPECT_NE(validate_slice_file("s.json", good, 6, 9, 12, "", ""), "");
    // Wrong grid.
    EXPECT_NE(validate_slice_file("s.json", good, 3, 6, 24, "", ""), "");
    // Wrong fingerprints.
    EXPECT_NE(
        validate_slice_file("s.json", good, 3, 6, 12, "other", "w1-m1"),
        "");
    EXPECT_NE(
        validate_slice_file("s.json", good, 3, 6, 12, "unit", "w2-m2"),
        "");
    // Truncated document.
    EXPECT_NE(validate_slice_file("s.json", good.substr(0, 50), 3, 6, 12,
                                  "", ""),
              "");
}

} // namespace
} // namespace noc
