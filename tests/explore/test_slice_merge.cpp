// The distributed-merge hardening contract (explore/slice_merge.h):
// bench_sweep --merge must reject damaged, truncated or mismatched slice
// files with a diagnostic naming the file and the defect, and accept a
// healthy set byte-for-byte. These tests feed the validator synthetic
// slice documents in the exact shape bench_sweep's points_payload writes.
#include "explore/slice_merge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace noc {
namespace {

/// One point record as bench_sweep serializes it: a one-line JSON object
/// opening with the merge key the validator anchors on.
std::string record_line(std::uint32_t index, const std::string& label)
{
    return "    {\"index\": " + std::to_string(index) + ", \"curve\": \"" +
           label + "\", \"load\": 0.1, \"packets\": " +
           std::to_string(1000 + index) + "}";
}

/// A well-formed slice document covering [a, b) of a `grid` point grid —
/// the same layout bench_sweep's points_payload emits.
std::string slice_document(std::uint32_t a, std::uint32_t b,
                           std::uint32_t grid,
                           const std::string& spec = "unit",
                           const std::string& budget = "w300-m1500")
{
    std::string out = "{\n  \"bench\": \"sweep_points\",\n  \"spec\": \"" +
                      spec + "\",\n  \"budget\": \"" + budget +
                      "\",\n  \"grid_points\": \"" + std::to_string(grid) +
                      "\",\n  \"range\": \"" + std::to_string(a) + ".." +
                      std::to_string(b) + "\",\n  \"points\": [\n";
    for (std::uint32_t i = a; i < b; ++i)
        out += record_line(i, "mesh") + (i + 1 < b ? ",\n" : "\n");
    out += "  ]\n}\n";
    return out;
}

TEST(SliceMerge, HealthySlicesMergeInIndexOrder)
{
    Slice_merge acc;
    // Out-of-order arrival (tail slice first) must not matter.
    EXPECT_EQ(merge_slice_document("hi.json", slice_document(2, 4, 4), acc),
              "");
    EXPECT_EQ(merge_slice_document("lo.json", slice_document(0, 2, 4), acc),
              "");
    std::vector<std::string> records;
    EXPECT_EQ(finish_slice_merge(acc, records), "");
    ASSERT_EQ(records.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_NE(records[i].find("\"index\": " + std::to_string(i)),
                  std::string::npos);
        EXPECT_EQ(records[i].back(), '}') << "trailing comma not stripped";
    }
    // Re-reading an identical slice (operator passed the same file twice)
    // is harmless: byte-identical records dedupe silently.
    EXPECT_EQ(merge_slice_document("lo.json", slice_document(0, 2, 4), acc),
              "");
    EXPECT_EQ(finish_slice_merge(acc, records), "");
    EXPECT_EQ(records.size(), 4u);
}

TEST(SliceMerge, RejectsFileWithoutSliceHeader)
{
    Slice_merge acc;
    const std::string diag =
        merge_slice_document("notes.json", "{\n  \"bench\": \"other\"\n}\n",
                             acc);
    EXPECT_NE(diag.find("notes.json"), std::string::npos);
    EXPECT_NE(diag.find("not a bench_sweep slice"), std::string::npos);
    // An empty file (zero-byte write) takes the same path.
    EXPECT_NE(merge_slice_document("empty.json", "", acc)
                  .find("not a bench_sweep slice"),
              std::string::npos);
}

TEST(SliceMerge, RejectsTruncatedDocument)
{
    // Torn write: the file loses its tail mid-document (after the last
    // record, before the closing brace).
    std::string doc = slice_document(0, 4, 4);
    doc.resize(doc.find("  ]"));
    Slice_merge acc;
    const std::string diag = merge_slice_document("torn.json", doc, acc);
    EXPECT_NE(diag.find("torn.json"), std::string::npos);
    EXPECT_NE(diag.find("truncated"), std::string::npos);
}

TEST(SliceMerge, RejectsRecordTornMidLine)
{
    // Damage inside a record: the line opens its object but never closes
    // it (interrupted write padded out by a later append).
    std::string doc = slice_document(0, 4, 4);
    const std::string whole = record_line(2, "mesh") + ",";
    const auto at = doc.find(whole);
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, whole.size(),
                "    {\"index\": 2, \"curve\": \"mesh\", \"loa");
    Slice_merge acc;
    const std::string diag = merge_slice_document("damaged.json", doc, acc);
    EXPECT_NE(diag.find("damaged.json"), std::string::npos);
    EXPECT_NE(diag.find("point 2"), std::string::npos);
    EXPECT_NE(diag.find("does not close its object"), std::string::npos);
}

TEST(SliceMerge, RejectsSlicesFromDifferentRuns)
{
    Slice_merge acc;
    ASSERT_EQ(merge_slice_document("a.json", slice_document(0, 2, 4), acc),
              "");
    // Same spec name, different measurement budget: a smoke slice must not
    // silently mix into a full-budget merge.
    const std::string diag = merge_slice_document(
        "b.json", slice_document(2, 4, 4, "unit", "w100-m200"), acc);
    EXPECT_NE(diag.find("b.json"), std::string::npos);
    EXPECT_NE(diag.find("budget"), std::string::npos);
    EXPECT_NE(diag.find("different runs"), std::string::npos);

    Slice_merge acc2;
    ASSERT_EQ(merge_slice_document("a.json", slice_document(0, 2, 4), acc2),
              "");
    EXPECT_NE(merge_slice_document(
                  "c.json", slice_document(2, 4, 4, "other-spec"), acc2)
                  .find("spec"),
              std::string::npos);
}

TEST(SliceMerge, RejectsDuplicateIndexWithDivergentResults)
{
    Slice_merge acc;
    ASSERT_EQ(merge_slice_document("a.json", slice_document(0, 4, 4), acc),
              "");
    // Same point index, different payload — overlapping slices from a
    // non-deterministic (or mis-ranged) rerun.
    std::string doc = slice_document(2, 4, 4);
    const auto at = doc.find("\"packets\": 1002");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 15, "\"packets\": 9999");
    const std::string diag = merge_slice_document("b.json", doc, acc);
    EXPECT_NE(diag.find("b.json"), std::string::npos);
    EXPECT_NE(diag.find("divergent duplicate"), std::string::npos);
    EXPECT_NE(diag.find("point 2"), std::string::npos);
    EXPECT_NE(diag.find("twice with different results"), std::string::npos);
}

TEST(SliceMerge, CountsByteIdenticalDuplicatesWithoutRejecting)
{
    // First-completion-wins re-dispatch: both workers of a duplicated
    // slice may publish, and determinism makes their bytes identical.
    // The merge folds them silently but keeps the count observable.
    Slice_merge acc;
    ASSERT_EQ(merge_slice_document("a.json", slice_document(0, 2, 4), acc),
              "");
    EXPECT_EQ(acc.duplicate_records, 0u);
    ASSERT_EQ(merge_slice_document("a2.json", slice_document(0, 2, 4), acc),
              "");
    EXPECT_EQ(acc.duplicate_records, 2u); // both records seen twice
    ASSERT_EQ(merge_slice_document("b.json", slice_document(2, 4, 4), acc),
              "");
    EXPECT_EQ(acc.duplicate_records, 2u); // fresh records don't count
    std::vector<std::string> records;
    EXPECT_EQ(finish_slice_merge(acc, records), "");
    EXPECT_EQ(records.size(), 4u); // duplicates deduped, coverage exact
}

TEST(SliceMerge, CoverageReportNamesMissingRanges)
{
    Slice_merge acc;
    ASSERT_EQ(merge_slice_document("a.json", slice_document(0, 4, 12), acc),
              "");
    ASSERT_EQ(merge_slice_document("b.json", slice_document(6, 10, 12), acc),
              "");
    EXPECT_EQ(slice_coverage_report(acc),
              "coverage 8/12 points; missing [4..6) [10..12)");
    const auto gaps = slice_missing_ranges(acc);
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_EQ(gaps[0].first, 4u);
    EXPECT_EQ(gaps[0].second, 6u);
    EXPECT_EQ(gaps[1].first, 10u);
    EXPECT_EQ(gaps[1].second, 12u);

    // Complete coverage: no gaps to name.
    ASSERT_EQ(merge_slice_document("c.json", slice_document(4, 6, 12), acc),
              "");
    ASSERT_EQ(merge_slice_document("d.json", slice_document(10, 12, 12), acc),
              "");
    EXPECT_EQ(slice_coverage_report(acc), "coverage 12/12 points");
    EXPECT_TRUE(slice_missing_ranges(acc).empty());

    // Nothing merged yet: everything is missing.
    Slice_merge empty;
    EXPECT_TRUE(slice_missing_ranges(empty).empty()); // grid unknown
}

TEST(SliceMerge, ReportsCoverageGaps)
{
    // Missing tail slice: records 0..2 of a 4-point grid.
    Slice_merge acc;
    ASSERT_EQ(merge_slice_document("a.json", slice_document(0, 2, 4), acc),
              "");
    std::vector<std::string> records;
    std::string diag = finish_slice_merge(acc, records);
    EXPECT_NE(diag.find("coverage gap"), std::string::npos);
    EXPECT_NE(diag.find("2 of 4"), std::string::npos);

    // Right count, wrong indices: a hole in the middle with a duplicate
    // range elsewhere must name the missing point.
    Slice_merge acc2;
    ASSERT_EQ(merge_slice_document("a.json", slice_document(0, 2, 3), acc2),
              "");
    ASSERT_EQ(
        merge_slice_document("b.json",
                             slice_document(2, 3, 3)
                                 .replace(slice_document(2, 3, 3).find(
                                              "\"index\": 2"),
                                          10, "\"index\": 7"),
                             acc2),
        "");
    diag = finish_slice_merge(acc2, records);
    EXPECT_NE(diag.find("point 2 missing"), std::string::npos);

    // Nothing merged at all.
    Slice_merge acc3;
    EXPECT_NE(finish_slice_merge(acc3, records).find("no point records"),
              std::string::npos);
}

} // namespace
} // namespace noc
