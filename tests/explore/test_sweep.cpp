// The explore subsystem's contract: declarative enumeration with
// spec-derived seeds, worker-count-independent (byte-identical) results,
// per-point bit-identity with direct experiment-harness calls, and a sane
// simulation-backed Pareto front.
#include "explore/sweep_runner.h"

#include "topology/routing.h"
#include "traffic/app_graphs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

namespace noc {
namespace {

Network_params two_vc_params()
{
    Network_params p;
    p.route_vcs = 2; // dateline topologies need 2; meshes just get buffers
    return p;
}

/// Small mesh-vs-torus spec: 2 designs x 2 traffics x 3 loads = 12 points,
/// quick enough for unit tests.
Sweep_spec small_spec()
{
    Sweep_spec spec;
    spec.name = "unit";
    spec.add_mesh(4, 4, two_vc_params(), "vc2");
    spec.add_torus(4, 4, two_vc_params(), "vc2");
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.add_synthetic(Sweep_pattern_kind::transpose);
    spec.loads = {0.05, 0.15, 0.25};
    spec.base.warmup = 300;
    spec.base.measure = 1'500;
    spec.base.drain_limit = 10'000;
    return spec;
}

TEST(SweepSpec, EnumerateShapeAndDeterminism)
{
    const Sweep_spec spec = small_spec();
    const auto points = spec.enumerate();
    ASSERT_EQ(points.size(), 12u); // 2 designs x 2 traffics x 3 loads
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
        EXPECT_LT(points[i].design, 2u);
        EXPECT_LT(points[i].traffic, 2u);
        EXPECT_EQ(points[i].load, spec.loads[points[i].load_index]);
        seeds.insert(points[i].seed);
    }
    EXPECT_EQ(seeds.size(), points.size()) << "per-point seeds collide";
    // Pure function of the spec: a second enumeration is identical...
    const auto again = spec.enumerate();
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].seed, again[i].seed);
    // ...and appending a load leaves existing points' seeds untouched
    // (label-keyed derivation).
    Sweep_spec grown = small_spec();
    grown.loads.push_back(0.35);
    const auto grown_points = grown.enumerate();
    for (const auto& p : points)
        for (const auto& g : grown_points)
            if (g.design == p.design && g.traffic == p.traffic &&
                g.load_index == p.load_index)
                EXPECT_EQ(g.seed, p.seed);
}

TEST(SweepSpec, ValidateRejectsInconsistentSpecs)
{
    Sweep_spec empty;
    EXPECT_THROW(empty.enumerate(), std::invalid_argument);

    Sweep_spec bad_vcs;
    bad_vcs.add_torus(4, 4); // default params: route_vcs = 1, no datelines
    bad_vcs.add_synthetic(Sweep_pattern_kind::uniform);
    bad_vcs.loads = {0.1};
    EXPECT_THROW(bad_vcs.validate(), std::invalid_argument);

    Sweep_spec grid_on_ring;
    grid_on_ring.add_ring(8, two_vc_params());
    grid_on_ring.add_synthetic(Sweep_pattern_kind::transpose);
    grid_on_ring.loads = {0.1};
    EXPECT_THROW(grid_on_ring.validate(), std::invalid_argument);

    Sweep_spec bad_grid = small_spec();
    bad_grid.loads = {0.2, 0.1}; // not ascending
    EXPECT_THROW(bad_grid.validate(), std::invalid_argument);

    Sweep_spec non_square;
    non_square.add_mesh(4, 2);
    non_square.add_synthetic(Sweep_pattern_kind::transpose);
    non_square.loads = {0.1};
    EXPECT_THROW(non_square.validate(), std::invalid_argument);

    // Two designs distinguishable only by an unlabeled knob would share
    // curve labels (and therefore seeds): rejected.
    Sweep_spec dup = small_spec();
    dup.add_mesh(4, 4, two_vc_params(), "vc2");
    EXPECT_THROW(dup.validate(), std::invalid_argument);

    // Custom designs must declare grid dims for grid patterns; a 16-core
    // topology must not silently count as a 4x4 grid.
    Sweep_spec custom_grid;
    Mesh_params mp; // 4x4
    auto topo = std::make_shared<const Topology>(make_mesh(mp));
    auto routes =
        std::make_shared<const Route_set>(xy_routes(*topo, mp));
    custom_grid.add_design("custom16", topo, routes, Network_params{});
    custom_grid.add_synthetic(Sweep_pattern_kind::tornado);
    custom_grid.loads = {0.1};
    EXPECT_THROW(custom_grid.validate(), std::invalid_argument);
    custom_grid.designs[0].width = 4; // explicit dims make it legal
    custom_grid.designs[0].height = 4;
    EXPECT_NO_THROW(custom_grid.validate());
}

TEST(SweepRunner, ByteIdenticalAcrossWorkerCounts)
{
    const Sweep_spec spec = small_spec();
    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result parallel = run_sweep(spec, 4);
    ASSERT_EQ(serial.curves.size(), 4u);
    // The sweep determinism contract: scheduling is invisible, so the
    // serializations match byte for byte.
    EXPECT_EQ(serial.to_json(), parallel.to_json());
    EXPECT_EQ(serial.to_csv(), parallel.to_csv());
    EXPECT_EQ(parallel.worker_threads, 4u);
    for (const auto& c : serial.curves)
        for (const auto& p : c.points) {
            EXPECT_TRUE(p.error.empty())
                << c.label << " @ " << p.point.load << ": " << p.error;
            EXPECT_GT(p.load.packets, 0u);
        }
}

TEST(SweepRunner, PointBitIdenticalToDirectExperimentCall)
{
    const Sweep_spec spec = small_spec();
    const auto points = spec.enumerate();
    const Sweep_result result = run_sweep(spec, 2);

    // Recompute one mid-grid point by hand through the experiment harness:
    // identical seeds + identical config must give the identical bits.
    const Sweep_point& p = points.at(4);
    const Design_variant& d = spec.designs[p.design];
    const Traffic_variant& t = spec.traffics[p.traffic];
    const Topology topo = make_sweep_topology(d);
    const Route_set routes = make_sweep_routes(d, topo);
    const Load_point direct = run_synthetic_load(
        topo, routes, d.params, p.load,
        [&] { return make_sweep_pattern(t, d, topo.core_count()); },
        point_config(spec, d, p.seed));

    const Point_result& swept =
        result.curves.at(p.design * spec.traffics.size() + p.traffic)
            .points.at(p.load_index);
    ASSERT_TRUE(swept.error.empty());
    EXPECT_EQ(swept.load.packets, direct.packets);
    EXPECT_EQ(swept.load.accepted_flits_per_node_cycle,
              direct.accepted_flits_per_node_cycle);
    EXPECT_EQ(swept.load.avg_packet_latency, direct.avg_packet_latency);
    EXPECT_EQ(swept.load.avg_network_latency, direct.avg_network_latency);
    EXPECT_EQ(swept.load.max_latency, direct.max_latency);
    EXPECT_EQ(swept.load.drained, direct.drained);
}

TEST(SweepRunner, ShardedPointsMatchGatedPoints)
{
    // A design may request the sharded kernel for its systems; the
    // schedules are bit-identical, so the whole Sweep_result must be too.
    Sweep_spec gated = small_spec();
    Sweep_spec sharded = small_spec();
    for (auto& d : sharded.designs) d.shard_threads = 2;
    const Sweep_result a = run_sweep(gated, 2);
    const Sweep_result b = run_sweep(sharded, 2);
    EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(SweepResult, ParetoFrontIsNonDominatedAndCoversTheRest)
{
    Sweep_spec spec = small_spec();
    spec.search_saturation = true; // exercise the search tasks too
    const Sweep_result result = run_sweep(spec, 2);
    ASSERT_FALSE(result.pareto.empty());
    for (const std::size_t i : result.pareto) {
        ASSERT_LT(i, result.curves.size());
        EXPECT_TRUE(result.curves[i].on_pareto);
        EXPECT_TRUE(result.curves[i].saturation_searched);
        EXPECT_GT(result.curves[i].saturation_throughput, 0.0);
    }
    // Dominance check straight from the definition: every off-front curve
    // is dominated by some front curve OF THE SAME TRAFFIC on
    // (cost, latency, -throughput) — workloads never compete.
    auto dominates3 = [](const Design_curve& a, const Design_curve& b) {
        const bool no_worse = a.cost_bits <= b.cost_bits &&
                              a.zero_load_latency <= b.zero_load_latency &&
                              a.saturation_throughput >=
                                  b.saturation_throughput;
        const bool better = a.cost_bits < b.cost_bits ||
                            a.zero_load_latency < b.zero_load_latency ||
                            a.saturation_throughput >
                                b.saturation_throughput;
        return no_worse && better;
    };
    for (std::size_t i = 0; i < result.curves.size(); ++i) {
        if (result.curves[i].on_pareto) continue;
        bool dominated = false;
        for (const std::size_t f : result.pareto)
            dominated = dominated ||
                        (result.curves[f].traffic ==
                             result.curves[i].traffic &&
                         dominates3(result.curves[f], result.curves[i]));
        EXPECT_TRUE(dominated) << result.curves[i].label;
    }
    // Report and serializations name every curve.
    const std::string report = result.report();
    const std::string json = result.to_json();
    for (const auto& c : result.curves) {
        EXPECT_NE(report.find(c.label), std::string::npos);
        EXPECT_NE(json.find(c.label), std::string::npos);
    }
}

TEST(SweepRunner, ApplicationTrafficCurves)
{
    // Application traffic: the load grid scales the graph's bandwidths.
    Sweep_spec spec;
    spec.name = "app";
    spec.add_mesh(3, 4); // 12 switches = VOPD's 12 cores
    spec.add_application(
        std::make_shared<const Core_graph>(make_vopd_graph()), "vopd");
    spec.loads = {0.5, 1.0};
    spec.base.warmup = 300;
    spec.base.measure = 2'000;
    spec.base.drain_limit = 20'000;
    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result parallel = run_sweep(spec, 3);
    EXPECT_EQ(serial.to_json(), parallel.to_json());
    ASSERT_EQ(serial.curves.size(), 1u);
    const Design_curve& c = serial.curves[0];
    for (const auto& p : c.points) ASSERT_TRUE(p.error.empty()) << p.error;
    EXPECT_GT(c.points[0].load.packets, 0u);
    EXPECT_FALSE(c.saturation_searched); // no binary search for app curves
    // Offered load scales with the bandwidth scale.
    EXPECT_LT(c.points[0].load.offered_flits_per_node_cycle,
              c.points[1].load.offered_flits_per_node_cycle);
}

TEST(SweepRunner, FailedPointsAreRecordedNotThrown)
{
    // Uniform traffic on a partial route set: the NI throws on the first
    // missing route; the sweep must record the error and carry on.
    Sweep_spec spec;
    spec.name = "errors";
    auto topo = std::make_shared<const Topology>([] {
        Mesh_params mp;
        mp.width = 2;
        mp.height = 2;
        return make_mesh(mp);
    }());
    auto routes = std::make_shared<const Route_set>([&] {
        Mesh_params mp;
        mp.width = 2;
        mp.height = 2;
        Route_set full = xy_routes(*topo, mp);
        Route_set partial{topo->core_count()};
        // Keep only core 0 -> 1; everything else missing.
        partial.set(Core_id{0}, Core_id{1},
                    full.at(Core_id{0}, Core_id{1}));
        return partial;
    }());
    spec.add_design("partial2x2", topo, routes, Network_params{}, true);
    spec.add_mesh(2, 2);
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.loads = {0.1};
    spec.base.warmup = 100;
    spec.base.measure = 500;
    spec.base.drain_limit = 2'000;

    const Sweep_result result = run_sweep(spec, 2);
    ASSERT_EQ(result.curves.size(), 2u);
    EXPECT_FALSE(result.curves[0].points[0].error.empty());
    EXPECT_TRUE(result.curves[1].points[0].error.empty());
    // The broken curve carries no evidence, so the front is the good one.
    ASSERT_EQ(result.pareto.size(), 1u);
    EXPECT_EQ(result.pareto[0], 1u);
    // Serializations stay well-formed and name the error.
    EXPECT_NE(result.to_json().find("\"error\""), std::string::npos);
    EXPECT_NE(result.report().find("Failed points"), std::string::npos);
}

TEST(SweepRunner, PointRangeSlicesMergeToTheFullRun)
{
    // Distributed sweeps (bench_sweep --points a..b): two disjoint slices
    // of the grid, run by separate runners, must merge into exactly the
    // full run — label-keyed seeds make every point independent of which
    // process executes it.
    const Sweep_spec spec = small_spec();
    const auto n =
        static_cast<std::uint32_t>(spec.enumerate().size());
    ASSERT_EQ(n, 12u);
    const Sweep_result full = run_sweep(spec, 1);
    const Sweep_result lo = run_sweep_slice(spec, {0, 5}, 1);
    const Sweep_result hi = run_sweep_slice(spec, {5, n}, 1);

    // Slices mark their out-of-range points skipped (and serialize them
    // as such), never as errors.
    EXPECT_NE(lo.to_json().find("\"skipped\": true"), std::string::npos);
    EXPECT_EQ(full.to_json().find("\"skipped\""), std::string::npos);

    // Merge by enumeration index and reassemble: identical to the full
    // run, byte for byte.
    std::vector<Point_result> merged(n);
    for (const Sweep_result* slice : {&lo, &hi})
        for (const auto& c : slice->curves)
            for (const auto& p : c.points)
                if (!p.skipped) merged[p.point.index] = p;
    const Sweep_result reassembled = assemble_sweep_result(
        spec, std::move(merged), std::vector<double>(spec.curve_count(), -1.0));
    EXPECT_EQ(reassembled.to_json(), full.to_json());
    EXPECT_EQ(reassembled.to_csv(), full.to_csv());

    // And each slice's executed points already match the full run's.
    for (std::size_t c = 0; c < full.curves.size(); ++c)
        for (std::size_t p = 0; p < full.curves[c].points.size(); ++p) {
            const Point_result& a = lo.curves[c].points[p];
            if (a.skipped) continue;
            EXPECT_EQ(a.load.packets, full.curves[c].points[p].load.packets);
        }
}

TEST(SweepRunner, RetryAbsorbsTransientFailures)
{
    // A transient failure (injected through the chaos hook, from the same
    // code path an environmental throw would take) costs one retry and
    // nothing else: the result is byte-identical to an undisturbed run,
    // with only the `retried` execution metadata showing the scar.
    Sweep_spec spec = small_spec();
    const Sweep_result clean = run_sweep(spec, 2);

    Sweep_runner runner{2};
    std::atomic<int> throws{0};
    runner.set_point_attempt_hook([&](const Sweep_point& p, int attempt) {
        if (p.index % 3 == 0 && attempt == 0) {
            ++throws;
            throw std::runtime_error{"injected transient failure"};
        }
    });
    const Sweep_result bumpy = runner.run(spec);
    EXPECT_EQ(throws.load(), 4); // 12 points, every third hit once

    EXPECT_EQ(bumpy.to_json(), clean.to_json());
    EXPECT_EQ(bumpy.to_csv(), clean.to_csv());
    for (const auto& c : bumpy.curves)
        for (const auto& p : c.points) {
            EXPECT_TRUE(p.error.empty());
            EXPECT_EQ(p.retried, p.point.index % 3 == 0);
        }
    // The report mentions the absorbed retries; the clean one does not.
    EXPECT_NE(bumpy.report().find("second attempt"), std::string::npos);
    EXPECT_EQ(clean.report().find("second attempt"), std::string::npos);
}

TEST(SweepRunner, DeterministicFailuresFailBothAttempts)
{
    Sweep_spec spec = small_spec();
    Sweep_runner runner{1};
    std::atomic<int> attempts{0};
    runner.set_point_attempt_hook([&](const Sweep_point& p, int) {
        if (p.index == 5) {
            ++attempts;
            throw std::runtime_error{"deterministic failure"};
        }
    });
    const Sweep_result result = runner.run(spec);
    EXPECT_EQ(attempts.load(), 2); // retried once, failed identically
    int failed = 0;
    for (const auto& c : result.curves)
        for (const auto& p : c.points)
            if (!p.error.empty()) {
                ++failed;
                EXPECT_EQ(p.point.index, 5u);
                EXPECT_EQ(p.error, "deterministic failure");
                EXPECT_TRUE(p.retried);
            }
    EXPECT_EQ(failed, 1);
    // A double failure is a failed point, not an absorbed retry.
    EXPECT_EQ(result.report().find("second attempt"), std::string::npos);
}

TEST(SweepRunner, RetryPolicyExtendsTheAttemptBudget)
{
    // The configurable Retry_policy (shared vocabulary with the farm
    // orchestrator) replaces the historical hardcoded retry-once: with a
    // 3-attempt budget, a point that fails twice still lands, and the
    // result stays byte-identical to a clean run.
    Sweep_spec spec = small_spec();
    const Sweep_result clean = run_sweep(spec, 2);

    Sweep_runner runner{2};
    runner.set_retry_policy(Retry_policy{3, 0});
    EXPECT_EQ(runner.retry_policy().max_attempts, 3u);
    std::atomic<int> throws{0};
    runner.set_point_attempt_hook([&](const Sweep_point& p, int attempt) {
        if (p.index == 5 && attempt < 2) {
            ++throws;
            throw std::runtime_error{"double transient failure"};
        }
    });
    const Sweep_result bumpy = runner.run(spec);
    EXPECT_EQ(throws.load(), 2); // attempts 0 and 1; attempt 2 succeeds
    EXPECT_EQ(bumpy.to_json(), clean.to_json());
    for (const auto& c : bumpy.curves)
        for (const auto& p : c.points) {
            EXPECT_TRUE(p.error.empty()) << p.error;
            EXPECT_EQ(p.retried, p.point.index == 5u);
        }
}

TEST(SweepRunner, RetryPolicySingleAttemptDisablesRetry)
{
    Sweep_spec spec = small_spec();
    Sweep_runner runner{1};
    runner.set_retry_policy(Retry_policy{1, 0});
    std::atomic<int> attempts{0};
    runner.set_point_attempt_hook([&](const Sweep_point& p, int) {
        if (p.index == 5) {
            ++attempts;
            throw std::runtime_error{"transient that would have resolved"};
        }
    });
    const Sweep_result result = runner.run(spec);
    EXPECT_EQ(attempts.load(), 1); // budget of one: no second chance
    for (const auto& c : result.curves)
        for (const auto& p : c.points)
            if (p.point.index == 5) {
                EXPECT_FALSE(p.error.empty());
                EXPECT_FALSE(p.retried);
            }
}

TEST(SweepRunner, FaultScenarioAxisMultipliesCurvesDeterministically)
{
    // The reliability axis: each (design, traffic) curve re-runs under
    // every declared fault scenario, and the per-point Fault_plans derive
    // from the spec's label-keyed seeds — so the same links die on every
    // rerun and worker count, and the whole result stays byte-identical.
    Sweep_spec spec;
    spec.name = "fault-axis";
    spec.add_mesh(4, 4, two_vc_params(), "vc2");
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.loads = {0.05, 0.10};
    spec.base.warmup = 300;
    spec.base.measure = 1'500;
    spec.base.drain_limit = 15'000;
    spec.add_fault_scenario("soft", 6, 0);  // transients only
    spec.add_fault_scenario("frail", 6, 1); // plus a link failure

    const auto points = spec.enumerate();
    ASSERT_EQ(points.size(), 4u); // 1 design x 1 traffic x 2 scen x 2 loads
    EXPECT_NE(points[0].seed, points[2].seed)
        << "scenario must feed the point seed";

    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result parallel = run_sweep(spec, 3);
    EXPECT_EQ(serial.to_json(), parallel.to_json());
    EXPECT_EQ(serial.to_csv(), parallel.to_csv());

    ASSERT_EQ(serial.curves.size(), 2u);
    EXPECT_TRUE(serial.has_fault_axis);
    const Design_curve& soft = serial.curves[0];
    const Design_curve& frail = serial.curves[1];
    EXPECT_EQ(soft.scenario_label, "soft");
    EXPECT_EQ(frail.scenario_label, "frail");
    EXPECT_NE(soft.label.find("/soft"), std::string::npos);
    for (const auto& c : serial.curves)
        for (const auto& p : c.points) {
            ASSERT_TRUE(p.error.empty())
                << c.label << " @ " << p.point.load << ": " << p.error;
            EXPECT_TRUE(p.load.drained)
                << "faulty points must drain, not hang";
            EXPECT_GT(p.load.availability, 0.0);
            EXPECT_LE(p.load.availability, 1.0);
        }
    // Transients never kill links, so the soft scenario needs no reroute;
    // the frail one must heal its permanent failure online, per point.
    for (const auto& p : soft.points) EXPECT_EQ(p.load.recoveries, 0u);
    for (const auto& p : frail.points)
        EXPECT_EQ(p.load.recoveries, 1u) << "permanent failure not healed";
    EXPECT_GT(frail.availability, 0.0);
    EXPECT_LE(frail.availability, 1.0);

    // The reliability columns serialize only under a fault axis, so
    // fault-free sweeps keep their pre-axis byte format.
    EXPECT_NE(serial.to_json().find("\"availability\""), std::string::npos);
    EXPECT_NE(serial.to_csv().find("availability"), std::string::npos);
    const Sweep_result plain = run_sweep(small_spec(), 1);
    EXPECT_FALSE(plain.has_fault_axis);
    EXPECT_EQ(plain.to_json().find("\"availability\""), std::string::npos);
}

TEST(SweepRunner, StormScenarioWithReplayReportsReliabilityColumns)
{
    // A failure-domain scenario: random links, a whole-router death and a
    // two-switch region power-off, with end-to-end replay on. The sweep
    // must survive it deterministically, and replay makes connected-pair
    // availability exactly 1.0 — every drop is conclusively unreachable.
    Sweep_spec spec;
    spec.name = "storm-axis";
    spec.add_mesh(4, 4, two_vc_params(), "vc2");
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.loads = {0.05};
    spec.base.warmup = 300;
    spec.base.measure = 1'500;
    spec.base.drain_limit = 20'000;
    Fault_scenario& storm = spec.add_fault_scenario("storm", 4, 1);
    storm.router_death_count = 1;
    storm.region_switch_count = 2;
    storm.replay = true;

    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result parallel = run_sweep(spec, 3);
    EXPECT_EQ(serial.to_json(), parallel.to_json());
    EXPECT_EQ(serial.to_csv(), parallel.to_csv());

    ASSERT_EQ(serial.curves.size(), 1u);
    for (const auto& p : serial.curves[0].points) {
        ASSERT_TRUE(p.error.empty()) << p.error;
        EXPECT_TRUE(p.load.drained);
        EXPECT_GE(p.load.recoveries, 1u);
        EXPECT_DOUBLE_EQ(p.load.connected_availability, 1.0)
            << "a still-connected pair lost a packet despite replay";
    }
    EXPECT_NE(serial.to_json().find("\"replayed\""), std::string::npos);
    EXPECT_NE(serial.to_json().find("\"connected_availability\""),
              std::string::npos);
    EXPECT_NE(serial.to_csv().find("replayed"), std::string::npos);
    EXPECT_NE(serial.to_csv().find("connected_availability"),
              std::string::npos);
}

TEST(SweepRunner, FaultDrainCapNamesTheTimeout)
{
    // A storm point that cannot drain inside the per-point cap must fail
    // with the named error instead of posing as a merely-slow measurement
    // (or wedging a worker on the full drain_limit).
    Sweep_spec spec;
    spec.name = "drain-cap";
    spec.add_mesh(4, 4, two_vc_params(), "vc2");
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.loads = {0.10};
    spec.base.warmup = 300;
    spec.base.measure = 1'500;
    spec.base.drain_limit = 20'000;
    spec.base.fault_drain_cap = 8; // far below any real drain time
    spec.add_fault_scenario("frail", 0, 1);

    const Sweep_result result = run_sweep(spec, 1);
    ASSERT_EQ(result.curves.size(), 1u);
    for (const auto& p : result.curves[0].points) {
        EXPECT_FALSE(p.load.drained);
        EXPECT_NE(p.error.find("fault drain cap (8 cycles) exceeded"),
                  std::string::npos)
            << "error was: " << p.error;
    }
}

TEST(SweepRunner, CollectiveAxisMultipliesCurvesDeterministically)
{
    // The collective axis: each (design, traffic) curve re-runs under every
    // declared collective workload, the completion cycle joins the curve
    // metrics, and the whole result stays byte-identical across worker
    // counts — same contract as the fault axis.
    Sweep_spec spec;
    spec.name = "collective-axis";
    spec.add_mesh(4, 4, two_vc_params(), "vc2");
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.loads = {0.05, 0.10};
    spec.base.warmup = 300;
    spec.base.measure = 1'500;
    spec.base.drain_limit = 15'000;
    spec.add_collective("ar-tree", Collective_kind::allreduce, true);
    spec.add_collective("ar-naive", Collective_kind::allreduce, false);

    const auto points = spec.enumerate();
    ASSERT_EQ(points.size(), 4u); // 1 design x 1 traffic x 2 coll x 2 loads
    EXPECT_NE(points[0].seed, points[2].seed)
        << "collective must feed the point seed";
    EXPECT_EQ(points[0].collective, 0u);
    EXPECT_EQ(points[2].collective, 1u);

    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result parallel = run_sweep(spec, 3);
    EXPECT_EQ(serial.to_json(), parallel.to_json());
    EXPECT_EQ(serial.to_csv(), parallel.to_csv());

    ASSERT_EQ(serial.curves.size(), 2u);
    EXPECT_TRUE(serial.has_collective_axis);
    const Design_curve& tree = serial.curves[0];
    const Design_curve& naive = serial.curves[1];
    EXPECT_EQ(tree.collective_label, "ar-tree");
    EXPECT_EQ(naive.collective_label, "ar-naive");
    EXPECT_NE(tree.label.find("/ar-tree"), std::string::npos);
    for (const auto& c : serial.curves)
        for (const auto& p : c.points) {
            ASSERT_TRUE(p.error.empty())
                << c.label << " @ " << p.point.load << ": " << p.error;
            EXPECT_TRUE(p.load.drained);
            EXPECT_TRUE(p.load.collective_completed)
                << c.label << " @ " << p.point.load;
            EXPECT_GT(p.load.collective_completion_cycles, 0u);
        }
    EXPECT_GT(tree.collective_latency, 0.0);
    EXPECT_GT(naive.collective_latency, 0.0);
    // The multicast fabric must not lose to serializing one unicast per
    // destination through the root — the subsystem's acceptance gate,
    // visible at the explore layer.
    EXPECT_LE(tree.collective_latency, naive.collective_latency);

    // The collective columns serialize only under the axis, so existing
    // specs keep their byte format.
    EXPECT_NE(serial.to_json().find("\"collective_latency\""),
              std::string::npos);
    EXPECT_NE(serial.to_csv().find("collective_completion"),
              std::string::npos);
    const Sweep_result plain = run_sweep(small_spec(), 1);
    EXPECT_FALSE(plain.has_collective_axis);
    EXPECT_EQ(plain.to_json().find("\"collective"), std::string::npos);
    EXPECT_EQ(plain.to_csv().find("collective"), std::string::npos);
}

TEST(SweepSpec, CollectiveAxisValidation)
{
    auto base = [] {
        Sweep_spec spec;
        spec.name = "coll-validate";
        spec.add_mesh(4, 4, two_vc_params(), "vc2");
        spec.add_synthetic(Sweep_pattern_kind::uniform);
        spec.loads = {0.05};
        return spec;
    };

    {
        Sweep_spec ok = base();
        ok.add_collective("bcast", Collective_kind::broadcast);
        EXPECT_NO_THROW(ok.validate());
    }
    {
        // Multicast composes with neither fault plans nor replay, so the
        // two axes are mutually exclusive.
        Sweep_spec bad = base();
        bad.add_collective("bcast", Collective_kind::broadcast);
        bad.add_fault_scenario("soft", 4, 0);
        EXPECT_THROW(bad.validate(), std::invalid_argument);
    }
    {
        // The driver owns every NI's delivery listener; application
        // traffic needs them for replies.
        Sweep_spec bad;
        bad.name = "coll-app";
        bad.add_mesh(3, 4);
        bad.add_application(
            std::make_shared<const Core_graph>(make_vopd_graph()), "vopd");
        bad.loads = {0.5};
        bad.add_collective("bcast", Collective_kind::broadcast);
        EXPECT_THROW(bad.validate(), std::invalid_argument);
    }
    {
        Sweep_spec bad = base();
        bad.add_collective("dup", Collective_kind::broadcast);
        bad.add_collective("dup", Collective_kind::allreduce);
        EXPECT_THROW(bad.validate(), std::invalid_argument);
    }
    {
        Sweep_spec bad = base();
        bad.add_collective("", Collective_kind::broadcast);
        EXPECT_THROW(bad.validate(), std::invalid_argument);
    }
    {
        Sweep_spec bad = base();
        bad.add_collective("bcast", Collective_kind::broadcast).root = 99;
        EXPECT_THROW(bad.validate(), std::invalid_argument);
    }
    {
        Sweep_spec bad = base();
        bad.add_collective("bcast", Collective_kind::broadcast)
            .payload_flits = 0;
        EXPECT_THROW(bad.validate(), std::invalid_argument);
    }
}

} // namespace
} // namespace noc
