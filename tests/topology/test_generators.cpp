#include "topology/fat_tree.h"
#include "topology/mesh.h"
#include "topology/ring.h"
#include "topology/spidergon.h"
#include "topology/star.h"
#include "topology/torus.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(Mesh, StructureCounts)
{
    Mesh_params p;
    p.width = 3;
    p.height = 4;
    const Topology t = make_mesh(p);
    EXPECT_EQ(t.switch_count(), 12);
    EXPECT_EQ(t.core_count(), 12);
    // Links: horizontal 2*4 + vertical 3*3 = 17 bidir pairs = 34 directed.
    EXPECT_EQ(t.link_count(), 34);
    // Corner switch: 1 core + 2 links.
    EXPECT_EQ(t.output_port_count(mesh_switch_at(p, 0, 0)), 3);
    // Center switch: 1 core + 4 links.
    EXPECT_EQ(t.output_port_count(mesh_switch_at(p, 1, 1)), 5);
}

TEST(Mesh, Concentration)
{
    Mesh_params p;
    p.width = 2;
    p.height = 2;
    p.cores_per_switch = 4;
    const Topology t = make_mesh(p);
    EXPECT_EQ(t.core_count(), 16);
    EXPECT_EQ(t.switch_cores(Switch_id{0}).size(), 4u);
}

TEST(Mesh, RejectsBadParams)
{
    Mesh_params p;
    p.width = 0;
    EXPECT_THROW(make_mesh(p), std::invalid_argument);
}

TEST(Mesh, PositionsFollowGrid)
{
    Mesh_params p;
    p.width = 2;
    p.height = 2;
    p.tile_mm = 2.0;
    const Topology t = make_mesh(p);
    EXPECT_EQ(t.switch_position(mesh_switch_at(p, 1, 1))->x, 2.0);
    EXPECT_EQ(t.switch_position(mesh_switch_at(p, 1, 1))->y, 2.0);
}

TEST(Torus, StructureCounts)
{
    Torus_params p;
    p.width = 4;
    p.height = 4;
    const Topology t = make_torus(p);
    EXPECT_EQ(t.switch_count(), 16);
    // Every switch has exactly 4 out-links (torus regularity): 64 directed.
    EXPECT_EQ(t.link_count(), 64);
    for (int s = 0; s < 16; ++s)
        EXPECT_EQ(
            t.out_links(Switch_id{static_cast<std::uint32_t>(s)}).size(), 4u);
}

TEST(Torus, WrapLinksGetPipelining)
{
    Torus_params p;
    p.width = 4;
    p.height = 4;
    p.wrap_pipeline_stages = 2;
    const Topology t = make_torus(p);
    int pipelined = 0;
    for (const auto& l : t.links())
        if (l.pipeline_stages == 2) ++pipelined;
    // One wrap pair per row and per column: (4+4) * 2 directed = 16.
    EXPECT_EQ(pipelined, 16);
}

TEST(Ring, Structure)
{
    Ring_params p;
    p.node_count = 6;
    const Topology t = make_ring(p);
    EXPECT_EQ(t.switch_count(), 6);
    EXPECT_EQ(t.link_count(), 12);
    EXPECT_THROW(make_ring(Ring_params{2, 1, 1.0}), std::invalid_argument);
}

TEST(Spidergon, Structure)
{
    Spidergon_params p;
    p.node_count = 8;
    const Topology t = make_spidergon(p);
    EXPECT_EQ(t.switch_count(), 8);
    // Ring links 16 + across 8 = 24 directed; constant degree 3.
    EXPECT_EQ(t.link_count(), 24);
    for (int s = 0; s < 8; ++s)
        EXPECT_EQ(
            t.out_links(Switch_id{static_cast<std::uint32_t>(s)}).size(), 3u);
    EXPECT_THROW(make_spidergon(Spidergon_params{6 + 1, 1, 1.0}),
                 std::invalid_argument);
}

TEST(FatTree, KAry2Tree)
{
    Fat_tree_params p;
    p.arity = 2;
    p.levels = 2;
    const Fat_tree ft = make_fat_tree(p);
    EXPECT_EQ(ft.topology.core_count(), 4);
    EXPECT_EQ(ft.topology.switch_count(), 4);
    // Each level-0 switch connects to both roots: 4 bidir = 8 directed.
    EXPECT_EQ(ft.topology.link_count(), 8);
    EXPECT_EQ(ft.switch_rank[0], 0);
    EXPECT_EQ(ft.switch_rank[2], 1);
}

TEST(FatTree, Quaternary3LevelsIsSpinSized)
{
    // SPIN used 4-ary fat trees; 3 levels host 64 cores.
    Fat_tree_params p;
    p.arity = 4;
    p.levels = 3;
    const Fat_tree ft = make_fat_tree(p);
    EXPECT_EQ(ft.topology.core_count(), 64);
    EXPECT_EQ(ft.topology.switch_count(), 48);
    // Level-0 switches have 4 core ports + 4 up links = radix 8; middle
    // switches 4 down + 4 up = 8; roots 4 down.
    EXPECT_EQ(ft.topology.max_radix(), 8);
}

TEST(Star, BoneShape)
{
    // BONE (Fig. 5): 10 RISC processors in clusters, 8 dual-port SRAMs at
    // the root crossbars.
    Star_params p;
    p.clusters = 5;
    p.cores_per_cluster = 2;
    p.cores_at_root = 8;
    p.root_count = 2;
    const Star star = make_star(p);
    EXPECT_EQ(star.topology.core_count(), 18);
    EXPECT_EQ(star.topology.switch_count(), 7);
    EXPECT_EQ(star.root_cores.size(), 8u);
    EXPECT_EQ(star.switch_rank[0], 1);
    EXPECT_EQ(star.switch_rank[2], 0);
    // Every cluster connects to both roots.
    EXPECT_EQ(star.topology.out_links(Switch_id{2}).size(), 2u);
}

} // namespace
} // namespace noc
