// Fault-tolerant rerouting: the §1 reliability claim, tested.
#include "arch/noc_system.h"
#include "common/rng.h"
#include "topology/deadlock.h"
#include "topology/fault.h"
#include "topology/routing.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(Fault, NoFailuresMatchesHealthyConnectivity)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    const Topology t = make_mesh(mp);
    const auto rank = spanning_tree_ranks(t, Switch_id{4});
    const auto result = reroute_around_failures(t, rank, {});
    EXPECT_TRUE(result.fully_connected());
    EXPECT_TRUE(routes_deadlock_free(t, result.routes, 1));
}

TEST(Fault, RejectsBadInputs)
{
    Mesh_params mp;
    const Topology t = make_mesh(mp);
    EXPECT_THROW(reroute_around_failures(t, std::vector<int>(3, 0), {}),
                 std::invalid_argument);
    const auto rank = spanning_tree_ranks(t, Switch_id{0});
    EXPECT_THROW(reroute_around_failures(t, rank, {Link_id{9999}}),
                 std::invalid_argument);
}

TEST(Fault, RoutesAvoidTheFailedLink)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    const Topology t = make_mesh(mp);
    const auto rank = spanning_tree_ranks(t, Switch_id{4});
    const auto healthy = reroute_around_failures(t, rank, {});
    // Fail a link that the healthy routing actually uses.
    const auto used = links_used(t, healthy.routes);
    ASSERT_FALSE(used.empty());
    const Link_id victim = *used.begin();
    const auto rerouted = reroute_around_failures(t, rank, {victim});
    EXPECT_TRUE(rerouted.fully_connected())
        << "a 3x3 mesh is 2-connected between switches";
    EXPECT_EQ(links_used(t, rerouted.routes).count(victim), 0u);
    EXPECT_TRUE(routes_deadlock_free(t, rerouted.routes, 1));
}

TEST(Fault, DisconnectionIsReportedNotHidden)
{
    // A 2-switch line: failing the only forward link disconnects core 0
    // from core 1 but not the reverse direction.
    Topology t{"line2", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    const Link_id fwd = t.add_link(Switch_id{0}, Switch_id{1});
    t.add_link(Switch_id{1}, Switch_id{0});
    const auto rank = spanning_tree_ranks(t, Switch_id{0});
    const auto result = reroute_around_failures(t, rank, {fwd});
    ASSERT_EQ(result.unreachable.size(), 1u);
    EXPECT_EQ(result.unreachable[0].first, Core_id{0});
    EXPECT_EQ(result.unreachable[0].second, Core_id{1});
    // The reverse route survives.
    EXPECT_FALSE(result.routes.at(Core_id{1}, Core_id{0}).empty());
}

class FaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

/// Random single- and double-link failures on a 4x4 mesh: the network
/// stays fully connected (mesh redundancy), deadlock-free, and a
/// simulation on the rerouted tables still conserves packets.
TEST_P(FaultSweep, SurvivesRandomLinkFailures)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology t = make_mesh(mp);
    const auto rank = spanning_tree_ranks(t, Switch_id{5});
    Rng rng{GetParam()};
    std::set<Link_id> failed;
    while (failed.size() < 1 + GetParam() % 2)
        failed.insert(Link_id{static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(t.link_count())))});

    const auto result = reroute_around_failures(t, rank, failed);
    if (!result.fully_connected()) {
        // Up*/down* on a spanning-tree rank can lose turn-limited paths
        // even when the graph stays connected; that is a property of the
        // discipline, not a bug — but it must be *reported*.
        SUCCEED();
        return;
    }
    EXPECT_TRUE(routes_deadlock_free(t, result.routes, 1));
    for (const Link_id l : failed)
        EXPECT_EQ(links_used(t, result.routes).count(l), 0u);

    Noc_system sys{t, result.routes, Network_params{}};
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(t.core_count()));
    for (int c = 0; c < t.core_count(); ++c) {
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.1;
        sp.packet_size_flits = 3;
        sp.seed = GetParam() * 31 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Bernoulli_source>(
                Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
    }
    sys.warmup(300);
    sys.measure(1'500);
    ASSERT_TRUE(sys.drain(30'000));
    EXPECT_EQ(sys.stats().measured_created(),
              sys.stats().measured_delivered());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
} // namespace noc
