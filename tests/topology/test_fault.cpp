// Fault-tolerant rerouting: the §1 reliability claim, tested.
#include "arch/noc_system.h"
#include "common/rng.h"
#include "topology/deadlock.h"
#include "topology/fat_tree.h"
#include "topology/fault.h"
#include "topology/routing.h"
#include "topology/torus.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(Fault, NoFailuresMatchesHealthyConnectivity)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    const Topology t = make_mesh(mp);
    const auto rank = spanning_tree_ranks(t, Switch_id{4});
    const auto result = reroute_around_failures(t, rank, {});
    EXPECT_TRUE(result.fully_connected());
    EXPECT_TRUE(routes_deadlock_free(t, result.routes, 1));
}

TEST(Fault, RejectsBadInputs)
{
    Mesh_params mp;
    const Topology t = make_mesh(mp);
    EXPECT_THROW(reroute_around_failures(t, std::vector<int>(3, 0), {}),
                 std::invalid_argument);
    const auto rank = spanning_tree_ranks(t, Switch_id{0});
    EXPECT_THROW(reroute_around_failures(t, rank, {Link_id{9999}}),
                 std::invalid_argument);
}

TEST(Fault, RoutesAvoidTheFailedLink)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    const Topology t = make_mesh(mp);
    const auto rank = spanning_tree_ranks(t, Switch_id{4});
    const auto healthy = reroute_around_failures(t, rank, {});
    // Fail a link that the healthy routing actually uses.
    const auto used = links_used(t, healthy.routes);
    ASSERT_FALSE(used.empty());
    const Link_id victim = *used.begin();
    const auto rerouted = reroute_around_failures(t, rank, {victim});
    EXPECT_TRUE(rerouted.fully_connected())
        << "a 3x3 mesh is 2-connected between switches";
    EXPECT_EQ(links_used(t, rerouted.routes).count(victim), 0u);
    EXPECT_TRUE(routes_deadlock_free(t, rerouted.routes, 1));
}

TEST(Fault, DisconnectionIsReportedNotHidden)
{
    // A 2-switch line: failing the only forward link disconnects core 0
    // from core 1 but not the reverse direction.
    Topology t{"line2", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    const Link_id fwd = t.add_link(Switch_id{0}, Switch_id{1});
    t.add_link(Switch_id{1}, Switch_id{0});
    const auto rank = spanning_tree_ranks(t, Switch_id{0});
    const auto result = reroute_around_failures(t, rank, {fwd});
    ASSERT_EQ(result.unreachable.size(), 1u);
    EXPECT_EQ(result.unreachable[0].first, Core_id{0});
    EXPECT_EQ(result.unreachable[0].second, Core_id{1});
    // The reverse route survives.
    EXPECT_FALSE(result.routes.at(Core_id{1}, Core_id{0}).empty());
}

class FaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

/// Random single- and double-link failures on a 4x4 mesh: the network
/// stays fully connected (mesh redundancy), deadlock-free, and a
/// simulation on the rerouted tables still conserves packets.
TEST_P(FaultSweep, SurvivesRandomLinkFailures)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology t = make_mesh(mp);
    const auto rank = spanning_tree_ranks(t, Switch_id{5});
    Rng rng{GetParam()};
    std::set<Link_id> failed;
    while (failed.size() < 1 + GetParam() % 2)
        failed.insert(Link_id{static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(t.link_count())))});

    const auto result = reroute_around_failures(t, rank, failed);
    if (!result.fully_connected()) {
        // Up*/down* on a spanning-tree rank can lose turn-limited paths
        // even when the graph stays connected; that is a property of the
        // discipline, not a bug — but it must be *reported*.
        SUCCEED();
        return;
    }
    EXPECT_TRUE(routes_deadlock_free(t, result.routes, 1));
    for (const Link_id l : failed)
        EXPECT_EQ(links_used(t, result.routes).count(l), 0u);

    Noc_system sys{t, result.routes, Network_params{}};
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(t.core_count()));
    for (int c = 0; c < t.core_count(); ++c) {
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.1;
        sp.packet_size_flits = 3;
        sp.seed = GetParam() * 31 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Bernoulli_source>(
                Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
    }
    sys.warmup(300);
    sys.measure(1'500);
    ASSERT_TRUE(sys.drain(30'000));
    EXPECT_EQ(sys.stats().measured_created(),
              sys.stats().measured_delivered());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- failure-aware rank fuzz -------------------------------------------------
// With ranks recomputed on the surviving graph (failure_aware_ranks) and a
// symmetrized failure set, the up*/down* reroute has an exact contract:
// `unreachable` equals BFS reachability on the undirected surviving graph —
// no turn-limited losses, no silent drops — and the surviving routes stay
// deadlock-free on one VC and never touch a retired link. Fuzzed over
// random failure subsets on a mesh, a torus and a fat tree.

/// Union-find-free oracle: component label per switch over links outside
/// `retired` (symmetric, so direction is irrelevant).
std::vector<int> surviving_components(const Topology& t,
                                      const std::set<Link_id>& retired)
{
    std::vector<int> comp(static_cast<std::size_t>(t.switch_count()), -1);
    int next = 0;
    for (int s = 0; s < t.switch_count(); ++s) {
        if (comp[static_cast<std::size_t>(s)] >= 0) continue;
        std::vector<Switch_id> stack{Switch_id{static_cast<std::uint32_t>(s)}};
        comp[static_cast<std::size_t>(s)] = next;
        while (!stack.empty()) {
            const Switch_id u = stack.back();
            stack.pop_back();
            for (const Link_id l : t.out_links(u)) {
                if (retired.count(l) != 0) continue;
                const Switch_id v = t.link(l).to;
                if (comp[v.get()] >= 0) continue;
                comp[v.get()] = next;
                stack.push_back(v);
            }
        }
        ++next;
    }
    return comp;
}

void fuzz_reroute(const Topology& t, const std::vector<int>& healthy_rank,
                  std::uint64_t seed, std::size_t fail_count)
{
    Rng rng{seed};
    std::set<Link_id> failed;
    while (failed.size() < fail_count)
        failed.insert(Link_id{static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(t.link_count())))});
    (void)healthy_rank; // the healthy rank is deliberately NOT used

    const std::set<Link_id> retired = symmetrize_failures(t, failed);
    const auto rank = failure_aware_ranks(t, Switch_id{0}, retired);
    const auto rr = reroute_around_failures(t, rank, retired);

    // Exactness: unreachable == disconnected pairs of the surviving graph.
    const auto comp = surviving_components(t, retired);
    std::set<std::pair<std::uint32_t, std::uint32_t>> reported;
    for (const auto& [src, dst] : rr.unreachable)
        reported.insert({src.get(), dst.get()});
    std::size_t expected = 0;
    for (int s = 0; s < t.core_count(); ++s) {
        for (int d = 0; d < t.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            const bool connected =
                comp[t.core_switch(src).get()] ==
                comp[t.core_switch(dst).get()];
            if (!connected) ++expected;
            EXPECT_NE(connected,
                      reported.count({src.get(), dst.get()}) != 0)
                << "pair " << s << "->" << d << " seed " << seed;
            EXPECT_EQ(connected, !rr.routes.at(src, dst).empty())
                << "pair " << s << "->" << d << " seed " << seed;
        }
    }
    EXPECT_EQ(reported.size(), expected) << "seed " << seed;

    // Safety: deadlock-free on one VC, no retired link touched.
    EXPECT_TRUE(routes_deadlock_free(t, rr.routes, 1)) << "seed " << seed;
    const auto used = links_used(t, rr.routes);
    for (const Link_id l : retired)
        EXPECT_EQ(used.count(l), 0u) << "link " << l.get() << " seed "
                                     << seed;
}

class RerouteFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RerouteFuzz, MeshExactReachability)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology t = make_mesh(mp);
    fuzz_reroute(t, spanning_tree_ranks(t, Switch_id{0}), GetParam(),
                 1 + GetParam() % 5);
}

TEST_P(RerouteFuzz, TorusExactReachability)
{
    Torus_params tp;
    const Topology t = make_torus(tp);
    fuzz_reroute(t, spanning_tree_ranks(t, Switch_id{0}), GetParam() * 7919,
                 1 + GetParam() % 6);
}

TEST_P(RerouteFuzz, FatTreeExactReachability)
{
    Fat_tree_params fp;
    fp.arity = 2;
    fp.levels = 3;
    const Fat_tree ft = make_fat_tree(fp);
    // A fat tree has far less path diversity than a mesh: single failures
    // routinely strand leaves, which is exactly what the exactness
    // contract must report.
    fuzz_reroute(ft.topology, ft.switch_rank, GetParam() * 104729,
                 1 + GetParam() % 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RerouteFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

} // namespace
} // namespace noc
