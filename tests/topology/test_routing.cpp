#include "topology/deadlock.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

namespace noc {
namespace {

/// A named (topology, routes, vc_count) case for the property suite.
struct Routing_case {
    std::string name;
    std::function<std::pair<Topology, Route_set>()> build;
    int vc_count = 1;
};

std::pair<Topology, Route_set> build_mesh_case(int w, int h, int conc = 1)
{
    Mesh_params p;
    p.width = w;
    p.height = h;
    p.cores_per_switch = conc;
    Topology t = make_mesh(p);
    Route_set r = xy_routes(t, p);
    return {std::move(t), std::move(r)};
}

const std::vector<Routing_case>& routing_cases()
{
    static const std::vector<Routing_case> cases = {
        {"mesh2x2", [] { return build_mesh_case(2, 2); }, 1},
        {"mesh4x4", [] { return build_mesh_case(4, 4); }, 1},
        {"mesh8x10_teraflops", [] { return build_mesh_case(8, 10); }, 1},
        {"mesh3x5_rect", [] { return build_mesh_case(3, 5); }, 1},
        {"cmesh2x2x4", [] { return build_mesh_case(2, 2, 4); }, 1},
        {"torus4x4",
         [] {
             Torus_params p;
             p.width = 4;
             p.height = 4;
             Topology t = make_torus(p);
             Route_set r = torus_routes(t, p);
             return std::pair{std::move(t), std::move(r)};
         },
         2},
        {"torus5x3",
         [] {
             Torus_params p;
             p.width = 5;
             p.height = 3;
             Topology t = make_torus(p);
             Route_set r = torus_routes(t, p);
             return std::pair{std::move(t), std::move(r)};
         },
         2},
        {"ring8",
         [] {
             Ring_params p;
             p.node_count = 8;
             Topology t = make_ring(p);
             Route_set r = ring_routes(t, p);
             return std::pair{std::move(t), std::move(r)};
         },
         2},
        {"spidergon8",
         [] {
             Spidergon_params p;
             p.node_count = 8;
             Topology t = make_spidergon(p);
             Route_set r = spidergon_routes(t, p);
             return std::pair{std::move(t), std::move(r)};
         },
         2},
        {"spidergon16",
         [] {
             Spidergon_params p;
             p.node_count = 16;
             Topology t = make_spidergon(p);
             Route_set r = spidergon_routes(t, p);
             return std::pair{std::move(t), std::move(r)};
         },
         2},
        {"fat_tree_2_2",
         [] {
             Fat_tree ft = make_fat_tree({2, 2, 1.0});
             Route_set r = updown_routes(ft.topology, ft.switch_rank);
             return std::pair{std::move(ft.topology), std::move(r)};
         },
         1},
        {"fat_tree_4_2",
         [] {
             Fat_tree ft = make_fat_tree({4, 2, 1.0});
             Route_set r = updown_routes(ft.topology, ft.switch_rank);
             return std::pair{std::move(ft.topology), std::move(r)};
         },
         1},
        {"bone_star",
         [] {
             Star_params p;
             p.clusters = 5;
             p.cores_per_cluster = 2;
             p.cores_at_root = 8;
             p.root_count = 2;
             Star s = make_star(p);
             Route_set r = updown_routes(s.topology, s.switch_rank);
             return std::pair{std::move(s.topology), std::move(r)};
         },
         1},
        {"mesh_updown_spanning_tree",
         [] {
             Mesh_params p;
             p.width = 3;
             p.height = 3;
             Topology t = make_mesh(p);
             const auto rank = spanning_tree_ranks(t, Switch_id{4});
             Route_set r = updown_routes(t, rank);
             return std::pair{std::move(t), std::move(r)};
         },
         1},
    };
    return cases;
}

class RoutingProperty : public ::testing::TestWithParam<Routing_case> {};

/// Every route must start at the source switch, traverse existing links,
/// and end by ejecting at the destination core's switch.
TEST_P(RoutingProperty, RoutesConnectAllPairs)
{
    const auto [topo, routes] = GetParam().build();
    for (int s = 0; s < topo.core_count(); ++s) {
        for (int d = 0; d < topo.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            const Route& r = routes.at(src, dst);
            ASSERT_FALSE(r.empty()) << "missing route " << s << "->" << d;
            Switch_id sw = topo.core_switch(src);
            for (std::size_t h = 0; h < r.size(); ++h) {
                ASSERT_LT(r[h].out_port, topo.output_port_count(sw));
                const Link_id l =
                    topo.link_of_output_port(sw, Port_id{r[h].out_port});
                if (!l.is_valid()) {
                    // Ejection: must be the last hop, at dst's switch, on
                    // dst's ejection port.
                    ASSERT_EQ(h + 1, r.size());
                    ASSERT_EQ(sw, topo.core_switch(dst));
                    ASSERT_EQ(Port_id{r[h].out_port},
                              topo.ejection_port_of_core(dst));
                } else {
                    sw = topo.link(l).to;
                }
            }
        }
    }
}

/// The generated routing function must be deadlock-free on its VC budget.
TEST_P(RoutingProperty, DeadlockFree)
{
    const auto [topo, routes] = GetParam().build();
    const auto report = analyze_deadlock(topo, routes, GetParam().vc_count);
    EXPECT_TRUE(report.acyclic) << report.to_string(topo);
}

/// Minimality where we guarantee it: XY and dimension-order routes never
/// exceed the Manhattan switch distance (checked on route length).
TEST_P(RoutingProperty, RouteLengthsAreSane)
{
    const auto [topo, routes] = GetParam().build();
    const int upper = topo.switch_count() + 1; // generous diameter bound
    for (int s = 0; s < topo.core_count(); ++s) {
        for (int d = 0; d < topo.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            EXPECT_LE(static_cast<int>(routes.at(src, dst).size()), upper);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, RoutingProperty, ::testing::ValuesIn(routing_cases()),
    [](const ::testing::TestParamInfo<Routing_case>& info) {
        return info.param.name;
    });

TEST(XyRoutes, FollowsDimensionOrder)
{
    Mesh_params p;
    p.width = 3;
    p.height = 3;
    const Topology t = make_mesh(p);
    const Route_set r = xy_routes(t, p);
    // Core 0 (0,0) to core 8 (2,2): X first then Y, 4 link hops + ejection.
    const Route& route = r.at(Core_id{0}, Core_id{8});
    EXPECT_EQ(route.size(), 5u);
    const auto path = route_switch_path(t, Core_id{0}, route);
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(path[1], mesh_switch_at(p, 1, 0));
    EXPECT_EQ(path[2], mesh_switch_at(p, 2, 0));
    EXPECT_EQ(path[3], mesh_switch_at(p, 2, 1));
    EXPECT_EQ(path[4], mesh_switch_at(p, 2, 2));
}

TEST(TorusRoutes, UsesWrapAndDateline)
{
    Torus_params p;
    p.width = 4;
    p.height = 4;
    const Topology t = make_torus(p);
    const Route_set r = torus_routes(t, p);
    // (0,0) -> (3,0): one wrap hop in -x direction; the wrap hop uses vc 1.
    const Route& route = r.at(Core_id{0}, Core_id{3});
    ASSERT_EQ(route.size(), 2u); // wrap hop + ejection
    EXPECT_EQ(route[0].out_vc, 1);
}

TEST(TorusRoutes, RequiresMinimumSize)
{
    Torus_params p;
    p.width = 2;
    p.height = 2;
    const Topology t = make_torus(p);
    EXPECT_THROW(torus_routes(t, p), std::invalid_argument);
}

TEST(RingRoutes, TakesShortestDirection)
{
    Ring_params p;
    p.node_count = 8;
    const Topology t = make_ring(p);
    const Route_set r = ring_routes(t, p);
    // 0 -> 2 clockwise: 2 hops + eject; 0 -> 6 counter-clockwise: same.
    EXPECT_EQ(r.at(Core_id{0}, Core_id{2}).size(), 3u);
    EXPECT_EQ(r.at(Core_id{0}, Core_id{6}).size(), 3u);
}

TEST(SpidergonRoutes, AcrossFirstShortensFarPairs)
{
    Spidergon_params p;
    p.node_count = 16;
    const Topology t = make_spidergon(p);
    const Route_set r = spidergon_routes(t, p);
    // Opposite node: a single across hop + ejection.
    EXPECT_EQ(r.at(Core_id{0}, Core_id{8}).size(), 2u);
    // Distance 5 > N/4: across (1) + ring (3) + eject = 5 < ring-only 5+1.
    EXPECT_LE(r.at(Core_id{0}, Core_id{5}).size(), 5u);
}

TEST(UpdownRoutes, RejectsRankSizeMismatch)
{
    Mesh_params p;
    const Topology t = make_mesh(p);
    EXPECT_THROW(updown_routes(t, std::vector<int>(3, 0)),
                 std::invalid_argument);
}

TEST(ShortestPathRoutes, MatchManhattanOnMesh)
{
    Mesh_params p;
    p.width = 4;
    p.height = 4;
    const Topology t = make_mesh(p);
    const Route_set r = shortest_path_routes(t);
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (s == d) continue;
            const int manhattan_hops =
                std::abs(s % 4 - d % 4) + std::abs(s / 4 - d / 4);
            EXPECT_EQ(r.at(Core_id{static_cast<std::uint32_t>(s)},
                           Core_id{static_cast<std::uint32_t>(d)})
                          .size(),
                      static_cast<std::size_t>(manhattan_hops) + 1);
        }
    }
}

TEST(FindLink, ThrowsOnMissing)
{
    Topology t{"t", 3};
    t.add_link(Switch_id{0}, Switch_id{1});
    EXPECT_THROW(find_link(t, Switch_id{1}, Switch_id{0}), std::logic_error);
    EXPECT_NO_THROW(find_link(t, Switch_id{0}, Switch_id{1}));
}

TEST(SpanningTreeRanks, DisconnectedThrows)
{
    Topology t{"t", 2}; // no links
    EXPECT_THROW(spanning_tree_ranks(t, Switch_id{0}), std::logic_error);
}

} // namespace
} // namespace noc
