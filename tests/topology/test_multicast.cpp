// Destination-set tree construction and branching-route deadlock admission
// (topology/multicast.h, analyze_multicast_deadlock in topology/deadlock.h).
#include "topology/deadlock.h"
#include "topology/multicast.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace noc {
namespace {

std::vector<Core_id> ids(std::initializer_list<std::uint32_t> raw)
{
    std::vector<Core_id> out;
    for (const std::uint32_t r : raw) out.emplace_back(r);
    return out;
}

/// 4-switch ring with one core each and naive clockwise routing on one VC —
/// a CYCLIC unicast route set (same rig as the unicast deadlock tests).
std::pair<Topology, Route_set> clockwise_ring()
{
    Topology t{"cw_ring", 4};
    for (int i = 0; i < 4; ++i)
        t.attach_core(Switch_id{static_cast<std::uint32_t>(i)});
    std::vector<Link_id> cw;
    for (int i = 0; i < 4; ++i)
        cw.push_back(t.add_link(Switch_id{static_cast<std::uint32_t>(i)},
                                Switch_id{static_cast<std::uint32_t>(
                                    (i + 1) % 4)}));
    Route_set r{4};
    for (int s = 0; s < 4; ++s)
        for (int d = 0; d < 4; ++d) {
            if (s == d) continue;
            Route route;
            int cur = s;
            while (cur != d) {
                route.push_back(
                    {t.output_port_of_link(cw[static_cast<std::size_t>(cur)])
                         .get(),
                     0});
                cur = (cur + 1) % 4;
            }
            route.push_back({t.ejection_port_of_core(
                                  Core_id{static_cast<std::uint32_t>(d)})
                                 .get(),
                             0});
            r.set(Core_id{static_cast<std::uint32_t>(s)},
                  Core_id{static_cast<std::uint32_t>(d)}, std::move(route));
        }
    return {std::move(t), std::move(r)};
}

std::size_t count_forks(const Mcast_tree& tree)
{
    std::size_t forks = 0;
    for (const auto& seg : tree.segments)
        if (!seg.children.empty()) ++forks;
    return forks;
}

TEST(Multicast, XyMeshTreesForkAndCoverEveryDestination)
{
    Mesh_params mp; // 4x4
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const std::vector<std::vector<Core_id>> dsets{ids({3, 12, 15}),
                                                  ids({0, 1, 2, 3})};
    const Mcast_route_set mroutes =
        multicast_routes(topo, routes, dsets, 1);
    ASSERT_EQ(mroutes.core_count(), 16);
    ASSERT_EQ(mroutes.dset_count(), 2u);

    // Corner source 0 to the spread set: XY unicast routes to 3 (east) and
    // 12 (south) share no prefix, so the trie tree must fork — and on a
    // turn-rule route set it is admitted as a TREE, not the path fallback.
    const Mcast_tree& spread = mroutes.at(Core_id{0}, Dset_id{0});
    ASSERT_FALSE(spread.empty());
    EXPECT_FALSE(spread.path_fallback);
    EXPECT_GE(count_forks(spread), 1u);
    EXPECT_EQ(spread.destinations, ids({3, 12, 15}));

    // The source core is pruned from its own set...
    const Mcast_tree& row = mroutes.at(Core_id{0}, Dset_id{1});
    EXPECT_EQ(row.destinations, ids({1, 2, 3}));
    // ...and a source whose pruned set is empty gets an empty tree only
    // when it was the sole member; core 5 keeps the full row set.
    EXPECT_EQ(mroutes.at(Core_id{5}, Dset_id{1}).destinations,
              ids({0, 1, 2, 3}));

    // Every non-empty tree passes structural validation (Noc_system re-runs
    // this on installation) and the branching CDG union stays acyclic.
    std::vector<const Mcast_tree*> all;
    for (int s = 0; s < 16; ++s)
        for (std::uint32_t d = 0; d < 2; ++d) {
            const Mcast_tree& tree =
                mroutes.at(Core_id{static_cast<std::uint32_t>(s)},
                           Dset_id{d});
            if (tree.empty()) continue;
            EXPECT_NO_THROW(validate_mcast_tree(topo, tree, 1));
            all.push_back(&tree);
        }
    EXPECT_TRUE(analyze_multicast_deadlock(topo, &routes, all, 1).acyclic);
}

TEST(Multicast, LeafSegmentsEndAtTheirDestinationEjection)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Mcast_route_set mroutes =
        multicast_routes(topo, routes, {ids({3, 12, 15})}, 1);
    const Mcast_tree& tree = mroutes.at(Core_id{0}, Dset_id{0});
    std::set<std::uint32_t> leaf_dsts;
    for (const auto& seg : tree.segments) {
        if (!seg.children.empty()) {
            EXPECT_GE(seg.children.size(), 2u) << "degenerate fork";
            continue;
        }
        ASSERT_FALSE(seg.hops.empty());
        EXPECT_EQ(seg.hops.back().out_port,
                  topo.ejection_port_of_core(seg.dst).get());
        leaf_dsts.insert(seg.dst.get());
    }
    EXPECT_EQ(leaf_dsts, (std::set<std::uint32_t>{3, 12, 15}));
}

TEST(Multicast, CyclicUnicastSetStillAdmitsChainTrees)
{
    // The clockwise ring's unicast CDG is cyclic, so trees cannot lean on
    // the turn-rule shortcut: each is admitted through the branching CDG
    // check on its own merits, accumulated across every source of the set.
    // The set {1,2} keeps every source's chain on the arc 2->3->0->1->2 —
    // the link 1->2 feeds no further tree hop, so the accumulated CDG
    // never closes the ring. (The all-cores set would: four wrap-around
    // chains together rebuild the full cycle, and construction throws.)
    const auto [topo, routes] = clockwise_ring();
    ASSERT_FALSE(analyze_deadlock(topo, routes, 1).acyclic);
    EXPECT_THROW(multicast_routes(topo, routes, {ids({0, 1, 2, 3})}, 1),
                 std::invalid_argument);
    const Mcast_route_set mroutes =
        multicast_routes(topo, routes, {ids({1, 2})}, 1);
    const Mcast_tree& tree = mroutes.at(Core_id{0}, Dset_id{0});
    ASSERT_FALSE(tree.empty());
    EXPECT_EQ(tree.destinations, ids({1, 2}));
    std::vector<const Mcast_tree*> trees;
    for (int s = 0; s < 4; ++s) {
        const Mcast_tree& t =
            mroutes.at(Core_id{static_cast<std::uint32_t>(s)}, Dset_id{0});
        ASSERT_FALSE(t.empty()) << "source " << s;
        trees.push_back(&t);
    }
    EXPECT_TRUE(
        analyze_multicast_deadlock(topo, nullptr, trees, 1).acyclic);
    // Unioning with the cyclic unicast set reports the cycle — the union
    // check is what run-time coexistence would need, and it is honest.
    EXPECT_FALSE(
        analyze_multicast_deadlock(topo, &routes, trees, 1).acyclic);
}

TEST(Multicast, ValidateRejectsStructuralViolations)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Mcast_route_set mroutes =
        multicast_routes(topo, routes, {ids({3, 12})}, 1);
    const Mcast_tree& good = mroutes.at(Core_id{0}, Dset_id{0});
    ASSERT_NO_THROW(validate_mcast_tree(topo, good, 1));

    {
        // A fork with one child is a structural error, not a tree.
        Mcast_tree bad = good;
        for (auto& seg : bad.segments)
            if (seg.children.size() >= 2) {
                seg.children.resize(1);
                break;
            }
        EXPECT_THROW(validate_mcast_tree(topo, bad, 1),
                     std::invalid_argument);
    }
    {
        // A declared destination the segments never eject to.
        Mcast_tree bad = good;
        bad.destinations.push_back(Core_id{9});
        EXPECT_THROW(validate_mcast_tree(topo, bad, 1),
                     std::invalid_argument);
    }
    {
        // VC out of range for the configured count.
        Mcast_tree bad = good;
        for (auto& seg : bad.segments)
            for (auto& hop : seg.hops) hop.out_vc = 7;
        EXPECT_THROW(validate_mcast_tree(topo, bad, 1),
                     std::invalid_argument);
    }
}

TEST(Multicast, RejectsDuplicateMembersAndBadSets)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    EXPECT_THROW(multicast_routes(topo, routes, {ids({3, 3, 12})}, 1),
                 std::invalid_argument);
    EXPECT_THROW(multicast_routes(topo, routes, {ids({99})}, 1),
                 std::invalid_argument);
    EXPECT_THROW(multicast_routes(topo, routes, {ids({3, 12})}, 0),
                 std::invalid_argument);
    // An empty set is legal: every source simply gets an empty tree.
    const Mcast_route_set empty_set =
        multicast_routes(topo, routes, {ids({})}, 1);
    EXPECT_TRUE(empty_set.at(Core_id{0}, Dset_id{0}).empty());
}

} // namespace
} // namespace noc
