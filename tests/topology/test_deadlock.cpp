#include "topology/deadlock.h"
#include "topology/fault.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

/// Build a 4-switch ring with one core each and *naive* clockwise routing on
/// a single VC — the textbook deadlocked configuration.
std::pair<Topology, Route_set> clockwise_ring()
{
    Topology t{"cw_ring", 4};
    for (int i = 0; i < 4; ++i)
        t.attach_core(Switch_id{static_cast<std::uint32_t>(i)});
    std::vector<Link_id> cw;
    for (int i = 0; i < 4; ++i)
        cw.push_back(t.add_link(Switch_id{static_cast<std::uint32_t>(i)},
                                Switch_id{static_cast<std::uint32_t>(
                                    (i + 1) % 4)}));
    Route_set r{4};
    for (int s = 0; s < 4; ++s) {
        for (int d = 0; d < 4; ++d) {
            if (s == d) continue;
            Route route;
            int cur = s;
            while (cur != d) {
                route.push_back(
                    {t.output_port_of_link(cw[static_cast<std::size_t>(cur)])
                         .get(),
                     0});
                cur = (cur + 1) % 4;
            }
            route.push_back({t.ejection_port_of_core(
                                  Core_id{static_cast<std::uint32_t>(d)})
                                 .get(),
                             0});
            r.set(Core_id{static_cast<std::uint32_t>(s)},
                  Core_id{static_cast<std::uint32_t>(d)}, std::move(route));
        }
    }
    return {std::move(t), std::move(r)};
}

TEST(Deadlock, DetectsClockwiseRingCycle)
{
    const auto [t, r] = clockwise_ring();
    const auto report = analyze_deadlock(t, r, 1);
    EXPECT_FALSE(report.acyclic);
    // The evidence cycle must involve all four ring links on vc 0.
    EXPECT_EQ(report.cycle.size(), 4u);
    for (const auto& [link, vc] : report.cycle) EXPECT_EQ(vc, 0);
    EXPECT_NE(report.to_string(t).find("cycle"), std::string::npos);
}

TEST(Deadlock, DatelineBreaksRingCycle)
{
    // Same ring, but crossing the 3->0 link switches to vc 1.
    auto [t, r] = clockwise_ring();
    Route_set fixed{4};
    for (int s = 0; s < 4; ++s) {
        for (int d = 0; d < 4; ++d) {
            if (s == d) continue;
            Route route = r.at(Core_id{static_cast<std::uint32_t>(s)},
                               Core_id{static_cast<std::uint32_t>(d)});
            // Walk and flip to vc1 after wrapping past switch 3.
            int cur = s;
            bool wrapped = false;
            for (auto& hop : route) {
                const Link_id l = t.link_of_output_port(
                    Switch_id{static_cast<std::uint32_t>(cur)},
                    Port_id{hop.out_port});
                if (!l.is_valid()) break;
                if (cur == 3) wrapped = true;
                hop.out_vc = wrapped ? 1 : 0;
                cur = (cur + 1) % 4;
            }
            fixed.set(Core_id{static_cast<std::uint32_t>(s)},
                      Core_id{static_cast<std::uint32_t>(d)},
                      std::move(route));
        }
    }
    // A vc beyond the budget is a spec violation, not a deadlock verdict.
    EXPECT_THROW(routes_deadlock_free(t, fixed, 1), std::invalid_argument);
    EXPECT_TRUE(routes_deadlock_free(t, fixed, 2));
}

TEST(Deadlock, VcBeyondBudgetThrows)
{
    const auto [t, r] = clockwise_ring();
    Route_set bad{4};
    Route route;
    route.push_back({t.output_port_of_link(Link_id{0}).get(), 3});
    route.push_back({t.ejection_port_of_core(Core_id{1}).get(), 0});
    bad.set(Core_id{0}, Core_id{1}, route);
    EXPECT_THROW(analyze_deadlock_flows(
                     t, {{Core_id{0}, bad.at(Core_id{0}, Core_id{1})}}, 1),
                 std::invalid_argument);
}

TEST(Deadlock, AcyclicOnLinearChain)
{
    Topology t{"chain", 3};
    for (int i = 0; i < 3; ++i)
        t.attach_core(Switch_id{static_cast<std::uint32_t>(i)});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    t.add_bidir_link(Switch_id{1}, Switch_id{2});
    const Route_set r = shortest_path_routes(t);
    EXPECT_TRUE(routes_deadlock_free(t, r, 1));
}

TEST(Deadlock, FlowsVariantMatchesAllPairs)
{
    const auto [t, r] = clockwise_ring();
    std::vector<std::pair<Core_id, Route>> flows;
    for (int s = 0; s < 4; ++s)
        for (int d = 0; d < 4; ++d)
            if (s != d)
                flows.emplace_back(
                    Core_id{static_cast<std::uint32_t>(s)},
                    r.at(Core_id{static_cast<std::uint32_t>(s)},
                         Core_id{static_cast<std::uint32_t>(d)}));
    EXPECT_FALSE(analyze_deadlock_flows(t, flows, 1).acyclic);

    // Dropping all wrapping routes leaves an acyclic chain of dependencies.
    std::vector<std::pair<Core_id, Route>> partial;
    for (const auto& [src, route] : flows)
        if (route.size() <= 2) partial.emplace_back(src, route);
    EXPECT_TRUE(analyze_deadlock_flows(t, partial, 1).acyclic);
}

TEST(Deadlock, RejectsNonPositiveVcCount)
{
    const auto [t, r] = clockwise_ring();
    EXPECT_THROW(analyze_deadlock(t, r, 0), std::invalid_argument);
}

// --- union analysis (epoch-based live reroute admission) --------------------

TEST(DeadlockUnion, SingletonUnionMatchesSingleSetAnalysis)
{
    const auto [t, r] = clockwise_ring();
    EXPECT_FALSE(analyze_union_deadlock(t, {&r}, 1, {}).acyclic);

    Topology chain{"chain", 3};
    for (int i = 0; i < 3; ++i)
        chain.attach_core(Switch_id{static_cast<std::uint32_t>(i)});
    chain.add_bidir_link(Switch_id{0}, Switch_id{1});
    chain.add_bidir_link(Switch_id{1}, Switch_id{2});
    const Route_set cr = shortest_path_routes(chain);
    EXPECT_TRUE(analyze_union_deadlock(chain, {&cr}, 1, {}).acyclic);
}

TEST(DeadlockUnion, SuffixAfterFailedHopPruningBreaksTheRingCycle)
{
    // Purged packets cannot hold a channel at or before a failed hop, so a
    // route through a failure only contributes its suffix — which breaks
    // the clockwise ring's 4-link cycle once any one link is dead.
    const auto [t, r] = clockwise_ring();
    EXPECT_FALSE(analyze_union_deadlock(t, {&r}, 1, {}).acyclic);
    EXPECT_TRUE(analyze_union_deadlock(t, {&r}, 1, {Link_id{0}}).acyclic);
}

TEST(DeadlockUnion, IdenticalRankUpdownEpochsStayDeadlockFree)
{
    // The live-switchover happy path: retire a duplex mesh link whose loss
    // leaves the BFS ranks unchanged; the failure-aware reroute then obeys
    // the up/down discipline of the SAME rank order as the healthy routes,
    // so old-epoch and new-epoch packets can mix in flight deadlock-free.
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology t = make_mesh(mp);
    const std::vector<int> ranks = spanning_tree_ranks(t, Switch_id{0});
    const Route_set healthy = updown_routes(t, ranks);
    Link_id victim{};
    for (int i = 0; i < t.link_count(); ++i) {
        const Link_id l{static_cast<std::uint32_t>(i)};
        if (failure_aware_ranks(t, Switch_id{0},
                                symmetrize_failures(t, {l})) == ranks) {
            victim = l;
            break;
        }
    }
    ASSERT_TRUE(victim.is_valid());
    const std::set<Link_id> retired = symmetrize_failures(t, {victim});
    const Reroute_result rr = reroute_around_failures(
        t, failure_aware_ranks(t, Switch_id{0}, retired), retired);
    EXPECT_TRUE(rr.unreachable.empty());
    EXPECT_TRUE(
        analyze_union_deadlock(t, {&healthy, &rr.routes}, 1, retired)
            .acyclic);
}

TEST(DeadlockUnion, AcyclicHalvesCanFormACyclicUnion)
{
    // The negative control that makes the admission check necessary: split
    // the clockwise ring's two-hop flows into opposite pairs. Each half is
    // deadlock-free alone (two disjoint chains), but their union closes
    // the classic four-link cycle — exactly the hazard of letting old- and
    // new-epoch packets mix without analysing the combined dependencies.
    const auto [t, full] = clockwise_ring();
    Route_set a{4};
    a.set(Core_id{0}, Core_id{2}, full.at(Core_id{0}, Core_id{2}));
    a.set(Core_id{2}, Core_id{0}, full.at(Core_id{2}, Core_id{0}));
    Route_set b{4};
    b.set(Core_id{1}, Core_id{3}, full.at(Core_id{1}, Core_id{3}));
    b.set(Core_id{3}, Core_id{1}, full.at(Core_id{3}, Core_id{1}));
    EXPECT_TRUE(analyze_union_deadlock(t, {&a}, 1, {}).acyclic);
    EXPECT_TRUE(analyze_union_deadlock(t, {&b}, 1, {}).acyclic);
    EXPECT_FALSE(analyze_union_deadlock(t, {&a, &b}, 1, {}).acyclic);
}

TEST(DeadlockUnion, RejectsNullSetAndBadVcCount)
{
    const auto [t, r] = clockwise_ring();
    EXPECT_THROW(analyze_union_deadlock(t, {&r}, 0, {}),
                 std::invalid_argument);
    EXPECT_THROW(analyze_union_deadlock(t, {nullptr}, 1, {}),
                 std::invalid_argument);
}

} // namespace
} // namespace noc
