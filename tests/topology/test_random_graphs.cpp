// Randomized property testing: up*/down* routing must connect every core
// pair deadlock-free on *arbitrary* connected topologies, and the whole
// sim stack must conserve packets on them. Seeds are fixed, so failures
// reproduce.
#include "arch/noc_system.h"
#include "common/rng.h"
#include "topology/deadlock.h"
#include "topology/routing.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

/// Random connected multigraph: a random spanning tree plus extra links.
Topology random_topology(std::uint64_t seed)
{
    Rng rng{seed};
    const int switches = 3 + static_cast<int>(rng.next_below(10));
    Topology t{"rand" + std::to_string(seed), switches};
    // Cores: 1-2 per switch.
    for (int s = 0; s < switches; ++s) {
        const int cores = 1 + static_cast<int>(rng.next_below(2));
        for (int c = 0; c < cores; ++c)
            t.attach_core(Switch_id{static_cast<std::uint32_t>(s)});
    }
    // Spanning tree (random parent among earlier switches).
    for (int s = 1; s < switches; ++s) {
        const auto parent = static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(s)));
        t.add_bidir_link(Switch_id{static_cast<std::uint32_t>(s)},
                         Switch_id{parent},
                         static_cast<int>(rng.next_below(3)));
    }
    // Extra cross links.
    const int extras = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(switches)));
    for (int e = 0; e < extras; ++e) {
        const auto a = static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(switches)));
        const auto b = static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(switches)));
        if (a == b) continue;
        t.add_bidir_link(Switch_id{a}, Switch_id{b});
    }
    t.validate();
    return t;
}

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomGraphProperty, UpDownRoutesConnectAndAreDeadlockFree)
{
    const Topology t = random_topology(GetParam());
    const auto rank = spanning_tree_ranks(t, Switch_id{0});
    const Route_set routes = updown_routes(t, rank);
    // Connectivity: every pair routed, ending at the right ejection port.
    for (int s = 0; s < t.core_count(); ++s) {
        for (int d = 0; d < t.core_count(); ++d) {
            if (s == d) continue;
            const Core_id src{static_cast<std::uint32_t>(s)};
            const Core_id dst{static_cast<std::uint32_t>(d)};
            const Route& r = routes.at(src, dst);
            ASSERT_FALSE(r.empty());
            const auto path = route_switch_path(t, src, r);
            ASSERT_EQ(path.back(), t.core_switch(dst));
        }
    }
    EXPECT_TRUE(routes_deadlock_free(t, routes, 1));
}

TEST_P(RandomGraphProperty, SimulationConservesPacketsOnRandomGraphs)
{
    const Topology t = random_topology(GetParam());
    const auto rank = spanning_tree_ranks(t, Switch_id{0});
    Route_set routes = updown_routes(t, rank);
    // ON/OFF needs round-trip margin for the random pipeline depths.
    int max_latency = 1;
    for (const auto& l : t.links())
        max_latency = std::max(max_latency, 1 + l.pipeline_stages);
    Network_params p;
    p.fc = GetParam() % 2 == 0 ? Flow_control_kind::credit
                               : Flow_control_kind::on_off;
    p.buffer_depth = 2 * max_latency + 2;

    Noc_system sys{t, std::move(routes), p};
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(t.core_count()));
    for (int c = 0; c < t.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.15;
        sp.packet_size_flits = 3;
        sp.seed = GetParam() * 1009 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    sys.warmup(500);
    sys.measure(2'000);
    ASSERT_TRUE(sys.drain(50'000)) << "possible deadlock on seed "
                                   << GetParam();
    EXPECT_EQ(sys.stats().measured_created(),
              sys.stats().measured_delivered());
    EXPECT_GT(sys.stats().measured_delivered(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace noc
