#include "topology/graph.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(TopologyGraph, RejectsBadConstruction)
{
    EXPECT_THROW(Topology("t", 0), std::invalid_argument);
    EXPECT_THROW(Topology("t", -1), std::invalid_argument);
}

TEST(TopologyGraph, AttachAndQueryCores)
{
    Topology t{"t", 2};
    const Core_id c0 = t.attach_core(Switch_id{0});
    const Core_id c1 = t.attach_core(Switch_id{0});
    const Core_id c2 = t.attach_core(Switch_id{1});
    EXPECT_EQ(t.core_count(), 3);
    EXPECT_EQ(t.core_switch(c0), Switch_id{0});
    EXPECT_EQ(t.core_switch(c2), Switch_id{1});
    EXPECT_EQ(t.switch_cores(Switch_id{0}).size(), 2u);
    EXPECT_EQ(t.switch_cores(Switch_id{0})[1], c1);
}

TEST(TopologyGraph, RejectsSelfLoopAndBadIds)
{
    Topology t{"t", 2};
    EXPECT_THROW(t.add_link(Switch_id{0}, Switch_id{0}), std::invalid_argument);
    EXPECT_THROW(t.add_link(Switch_id{0}, Switch_id{9}), std::out_of_range);
    EXPECT_THROW(t.attach_core(Switch_id{5}), std::out_of_range);
    EXPECT_THROW(t.add_link(Switch_id{0}, Switch_id{1}, -1),
                 std::invalid_argument);
}

TEST(TopologyGraph, PortNumberingConvention)
{
    // Switch 0 hosts two cores and has one outgoing + one incoming link.
    Topology t{"t", 2};
    const Core_id c0 = t.attach_core(Switch_id{0});
    const Core_id c1 = t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    const Link_id l01 = t.add_link(Switch_id{0}, Switch_id{1});
    const Link_id l10 = t.add_link(Switch_id{1}, Switch_id{0});

    // Output ports of switch 0: [eject c0, eject c1, link l01].
    EXPECT_EQ(t.output_port_count(Switch_id{0}), 3);
    EXPECT_EQ(t.ejection_port_of_core(c0), Port_id{0});
    EXPECT_EQ(t.ejection_port_of_core(c1), Port_id{1});
    EXPECT_EQ(t.output_port_of_link(l01), Port_id{2});
    // Input ports of switch 0: [inject c0, inject c1, link l10].
    EXPECT_EQ(t.input_port_count(Switch_id{0}), 3);
    EXPECT_EQ(t.input_port_of_link(l10), Port_id{2});
    // Inverse mapping.
    EXPECT_EQ(t.link_of_output_port(Switch_id{0}, Port_id{2}), l01);
    EXPECT_FALSE(t.link_of_output_port(Switch_id{0}, Port_id{0}).is_valid());
}

TEST(TopologyGraph, BidirAddsBothDirections)
{
    Topology t{"t", 2};
    t.add_bidir_link(Switch_id{0}, Switch_id{1}, 3);
    ASSERT_EQ(t.link_count(), 2);
    EXPECT_EQ(t.link(Link_id{0}).from, Switch_id{0});
    EXPECT_EQ(t.link(Link_id{1}).from, Switch_id{1});
    EXPECT_EQ(t.link(Link_id{0}).pipeline_stages, 3);
    EXPECT_EQ(t.link(Link_id{1}).pipeline_stages, 3);
}

TEST(TopologyGraph, MaxRadix)
{
    Topology t{"t", 3};
    t.attach_core(Switch_id{0});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{2});
    // Switch 0: 1 core + 2 links = 3 ports each way.
    EXPECT_EQ(t.max_radix(), 3);
}

TEST(TopologyGraph, PositionsRoundTrip)
{
    Topology t{"t", 1};
    EXPECT_FALSE(t.switch_position(Switch_id{0}).has_value());
    t.set_switch_position(Switch_id{0}, {1.5, 2.5});
    ASSERT_TRUE(t.switch_position(Switch_id{0}).has_value());
    EXPECT_EQ(t.switch_position(Switch_id{0})->x, 1.5);
}

TEST(TopologyGraph, ValidatePassesOnWellFormed)
{
    Topology t{"t", 2};
    t.attach_core(Switch_id{0});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    EXPECT_NO_THROW(t.validate());
}

} // namespace
} // namespace noc
