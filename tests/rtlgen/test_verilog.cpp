#include "rtlgen/verilog.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(RtlGen, MeshNetlistStructure)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    const Topology t = make_mesh(mp);
    const auto rtl = generate_rtl(t, Network_params{});
    // Router configs on a 3x3 mesh: corner 3x3, edge 4x4, center 5x5
    // (+ NI + pipe + top).
    EXPECT_EQ(rtl.module_count, 3 + 2 + 1);
    // One pipe per link + one router per switch + one NI per core.
    EXPECT_EQ(rtl.instance_count, t.link_count() + 9 + 9);
    EXPECT_GT(rtl.wire_count, 0);
    EXPECT_NE(rtl.text.find("module noc_top"), std::string::npos);
    EXPECT_NE(rtl.text.find("noc_router_5x5"), std::string::npos);
}

TEST(RtlGen, SelfCheckPasses)
{
    Mesh_params mp;
    mp.width = 2;
    mp.height = 2;
    const Topology t = make_mesh(mp);
    const auto rtl = generate_rtl(t, Network_params{});
    const auto chk = check_rtl(rtl.text);
    EXPECT_TRUE(chk.ok) << (chk.problems.empty() ? ""
                                                 : chk.problems.front());
    EXPECT_EQ(chk.modules_defined, rtl.module_count);
    EXPECT_GE(chk.instances, rtl.instance_count);
}

TEST(RtlGen, CheckerCatchesImbalance)
{
    Mesh_params mp;
    const Topology t = make_mesh(mp);
    auto rtl = generate_rtl(t, Network_params{});
    // Drop the last endmodule.
    const auto pos = rtl.text.rfind("endmodule");
    rtl.text.erase(pos);
    const auto chk = check_rtl(rtl.text);
    EXPECT_FALSE(chk.ok);
    ASSERT_FALSE(chk.problems.empty());
    EXPECT_NE(chk.problems.front().find("imbalance"), std::string::npos);
}

TEST(RtlGen, CheckerCatchesUndefinedModule)
{
    const std::string text = "module top (input wire clk);\n"
                             "    ghost_module u_ghost (.clk(clk));\n"
                             "endmodule\n";
    const auto chk = check_rtl(text);
    EXPECT_FALSE(chk.ok);
    bool found = false;
    for (const auto& p : chk.problems)
        if (p.find("ghost_module") != std::string::npos) found = true;
    EXPECT_TRUE(found);
}

TEST(RtlGen, PipelinedLinksGetStageParameters)
{
    Topology t{"p", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1}, 2);
    const auto rtl = generate_rtl(t, Network_params{});
    EXPECT_NE(rtl.text.find(".STAGES(3)"), std::string::npos);
}

TEST(RtlGen, HeterogeneousTopologyEmitsOneModulePerConfig)
{
    // Star: root 5x5-ish, clusters smaller — distinct configs.
    Topology t{"hetero", 3};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    t.attach_core(Switch_id{1});
    t.attach_core(Switch_id{2});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    t.add_bidir_link(Switch_id{1}, Switch_id{2});
    const auto rtl = generate_rtl(t, Network_params{});
    // Configs: sw0 = 1 core + 1 link = 2x2; sw1 = 2 cores + 2 links = 4x4;
    // sw2 = 1 core + 1 link = 2x2 -> two distinct router modules.
    EXPECT_EQ(rtl.module_count, 2 + 2 + 1);
    EXPECT_TRUE(check_rtl(rtl.text).ok);
}

TEST(RtlGen, DeterministicOutput)
{
    Mesh_params mp;
    const Topology t = make_mesh(mp);
    const auto a = generate_rtl(t, Network_params{});
    const auto b = generate_rtl(t, Network_params{});
    EXPECT_EQ(a.text, b.text);
}

TEST(RtlGen, FlitWidthPropagates)
{
    Mesh_params mp;
    const Topology t = make_mesh(mp);
    Network_params p;
    p.flit_width_bits = 64;
    const auto rtl = generate_rtl(t, p);
    EXPECT_NE(rtl.text.find("FLIT_W = 64"), std::string::npos);
    EXPECT_NE(rtl.text.find("wire [63:0]"), std::string::npos);
}

} // namespace
} // namespace noc
