#include "qos/gt_allocator.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

std::pair<Topology, Route_set> mesh33()
{
    Mesh_params p;
    p.width = 3;
    p.height = 3;
    Topology t = make_mesh(p);
    Route_set r = xy_routes(t, p);
    return {std::move(t), std::move(r)};
}

TEST(GtAllocator, RejectsBadConstruction)
{
    const auto [t, r] = mesh33();
    EXPECT_THROW(Gt_allocator(t, r, 1), std::invalid_argument);
    EXPECT_THROW(Gt_allocator(t, r, 16, 0), std::invalid_argument);
}

TEST(GtAllocator, SingleConnectionGetsRequestedSlots)
{
    const auto [t, r] = mesh33();
    const Gt_allocator alloc{t, r, 16};
    const auto a = alloc.allocate(
        {{Connection_id{0}, Core_id{0}, Core_id{8}, 0.25}});
    ASSERT_TRUE(a.feasible) << a.failure_reason;
    ASSERT_EQ(a.grants.size(), 1u);
    EXPECT_EQ(a.grants[0].slots.size(), 4u); // 0.25 * 16
    EXPECT_DOUBLE_EQ(a.grants[0].granted_bandwidth, 0.25);
    EXPECT_EQ(a.grants[0].path_hops, 4); // XY: 2 east + 2 north
    EXPECT_TRUE(alloc.verify(a));
    // NI table of core 0 contains the connection in exactly 4 slots.
    int owned = 0;
    for (const auto c : a.ni_tables[0])
        if (c == Connection_id{0}) ++owned;
    EXPECT_EQ(owned, 4);
}

TEST(GtAllocator, DisjointPathsShareSlots)
{
    const auto [t, r] = mesh33();
    const Gt_allocator alloc{t, r, 8};
    // 0->2 (top row east) and 6->8 (bottom row east) never share a link.
    const auto a = alloc.allocate({
        {Connection_id{0}, Core_id{0}, Core_id{2}, 0.5},
        {Connection_id{1}, Core_id{6}, Core_id{8}, 0.5},
    });
    ASSERT_TRUE(a.feasible) << a.failure_reason;
    EXPECT_TRUE(alloc.verify(a));
}

TEST(GtAllocator, SharedLinkSlotsAreTimeDisjoint)
{
    const auto [t, r] = mesh33();
    const Gt_allocator alloc{t, r, 8};
    // Both use the east link 1->2 (XY routing): slots must not collide at
    // that link, accounting for the different path offsets.
    const auto a = alloc.allocate({
        {Connection_id{0}, Core_id{0}, Core_id{2}, 0.5},
        {Connection_id{1}, Core_id{1}, Core_id{2}, 0.5},
    });
    ASSERT_TRUE(a.feasible) << a.failure_reason;
    EXPECT_TRUE(alloc.verify(a));
}

TEST(GtAllocator, OverSubscriptionFails)
{
    const auto [t, r] = mesh33();
    const Gt_allocator alloc{t, r, 8};
    const auto a = alloc.allocate({
        {Connection_id{0}, Core_id{0}, Core_id{2}, 0.75},
        {Connection_id{1}, Core_id{1}, Core_id{2}, 0.5},
    });
    EXPECT_FALSE(a.feasible);
    EXPECT_NE(a.failure_reason.find("connection 1"), std::string::npos);
}

TEST(GtAllocator, BandwidthOutsideRangeFails)
{
    const auto [t, r] = mesh33();
    const Gt_allocator alloc{t, r, 8};
    EXPECT_FALSE(alloc.allocate({{Connection_id{0}, Core_id{0}, Core_id{1},
                                  0.0}})
                     .feasible);
    EXPECT_FALSE(alloc.allocate({{Connection_id{0}, Core_id{0}, Core_id{1},
                                  1.5}})
                     .feasible);
}

TEST(GtAllocator, LatencyBoundShrinksWithMoreSlots)
{
    const auto [t, r] = mesh33();
    const Gt_allocator alloc{t, r, 16};
    const auto thin = alloc.allocate(
        {{Connection_id{0}, Core_id{0}, Core_id{8}, 1.0 / 16}});
    const auto fat = alloc.allocate(
        {{Connection_id{0}, Core_id{0}, Core_id{8}, 0.5}});
    ASSERT_TRUE(thin.feasible);
    ASSERT_TRUE(fat.feasible);
    EXPECT_GT(thin.grants[0].latency_bound, fat.grants[0].latency_bound);
}

TEST(GtAllocator, VerifyCatchesTamperedTables)
{
    const auto [t, r] = mesh33();
    const Gt_allocator alloc{t, r, 8};
    auto a = alloc.allocate({{Connection_id{0}, Core_id{0}, Core_id{2}, 0.25}});
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(alloc.verify(a));
    // Steal the slot in the NI table.
    a.ni_tables[0][static_cast<std::size_t>(a.grants[0].slots[0])] =
        Connection_id{9};
    EXPECT_FALSE(alloc.verify(a));
}

TEST(GtAllocator, ManyConnectionsOnTeraflopsMesh)
{
    Mesh_params p;
    p.width = 8;
    p.height = 10;
    Topology t = make_mesh(p);
    Route_set r = xy_routes(t, p);
    const Gt_allocator alloc{t, r, 32};
    std::vector<Gt_request> reqs;
    for (std::uint32_t i = 0; i < 20; ++i)
        reqs.push_back({Connection_id{i}, Core_id{i},
                        Core_id{79 - i}, 1.0 / 32});
    const auto a = alloc.allocate(reqs);
    ASSERT_TRUE(a.feasible) << a.failure_reason;
    EXPECT_TRUE(alloc.verify(a));
    EXPECT_EQ(a.grants.size(), 20u);
}

} // namespace
} // namespace noc
