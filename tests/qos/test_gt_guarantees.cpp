// The Æthereal promise, measured: GT connections keep their bandwidth and
// stay under their analytic latency bound no matter how much best-effort
// traffic floods the network.
#include "arch/noc_system.h"
#include "qos/gt_allocator.h"
#include "topology/routing.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

/// GT source: one single-flit packet per owned slot's worth of bandwidth,
/// tagged with flow + connection; paced at `rate` flits/cycle.
class Gt_source final : public Traffic_source {
public:
    Gt_source(Core_id dst, Connection_id conn, Flow_id flow, double rate)
        : dst_{dst}, conn_{conn}, flow_{flow}, rate_{rate}
    {
    }
    std::optional<Packet_desc> poll(Cycle) override
    {
        acc_ += rate_;
        if (acc_ < 1.0) return std::nullopt;
        acc_ -= 1.0;
        Packet_desc d;
        d.dst = dst_;
        d.size_flits = 1;
        d.cls = Traffic_class::gt;
        d.conn = conn_;
        d.flow = flow_;
        return d;
    }

private:
    Core_id dst_;
    Connection_id conn_;
    Flow_id flow_;
    double rate_;
    double acc_ = 0.0;
};

struct Gt_setup {
    Noc_system* sys;
    Gt_allocation allocation;
};

/// 4x4 mesh with two GT connections crossing the center plus saturating BE
/// background from every core.
class GtGuarantee : public ::testing::TestWithParam<double> {};

TEST_P(GtGuarantee, LatencyBoundHoldsUnderBeLoad)
{
    const double be_rate = GetParam();

    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);

    Network_params params;
    params.enable_gt = true;
    params.slot_table_length = 16;
    params.buffer_depth = 4;

    const Gt_allocator alloc{topo, routes, params.slot_table_length};
    const std::vector<Gt_request> reqs = {
        {Connection_id{0}, Core_id{0}, Core_id{15}, 0.25},
        {Connection_id{1}, Core_id{12}, Core_id{3}, 0.125},
    };
    const auto allocation = alloc.allocate(reqs);
    ASSERT_TRUE(allocation.feasible) << allocation.failure_reason;
    ASSERT_TRUE(alloc.verify(allocation));

    Noc_system sys{std::move(topo), std::move(routes), params};
    for (int c = 0; c < sys.topology().core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        sys.ni(core).set_slot_table(allocation.ni_tables[core.get()]);
    }
    // GT sources at 80% of their reserved bandwidth.
    sys.ni(Core_id{0}).set_source(std::make_unique<Gt_source>(
        Core_id{15}, Connection_id{0}, Flow_id{0}, 0.25 * 0.8));
    sys.ni(Core_id{12}).set_source(std::make_unique<Gt_source>(
        Core_id{3}, Connection_id{1}, Flow_id{1}, 0.125 * 0.8));
    // BE background from every other core.
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(sys.topology().core_count()));
    for (int c = 0; c < sys.topology().core_count(); ++c) {
        if (c == 0 || c == 12) continue;
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = be_rate;
        sp.packet_size_flits = 4;
        sp.seed = 77 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }

    sys.warmup(2'000);
    sys.measure(8'000);

    for (std::size_t g = 0; g < allocation.grants.size(); ++g) {
        const auto& grant = allocation.grants[g];
        const auto& lat = sys.stats().flow_latency(Flow_id{
            static_cast<std::uint32_t>(g)});
        ASSERT_GT(lat.count(), 50u) << "GT flow " << g << " starved";
        EXPECT_LE(lat.max(), static_cast<double>(grant.latency_bound))
            << "GT latency bound violated at BE load " << be_rate;
    }
}

INSTANTIATE_TEST_SUITE_P(BeLoads, GtGuarantee,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6, 0.9),
                         [](const ::testing::TestParamInfo<double>& info) {
                             return "be" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

TEST(GtGuarantee, GtBandwidthIsDeliveredAtFullReservation)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.enable_gt = true;
    params.slot_table_length = 8;

    const Gt_allocator alloc{topo, routes, 8};
    const auto allocation = alloc.allocate(
        {{Connection_id{0}, Core_id{0}, Core_id{8}, 0.5}});
    ASSERT_TRUE(allocation.feasible);

    Noc_system sys{std::move(topo), std::move(routes), params};
    for (int c = 0; c < 9; ++c)
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_slot_table(allocation.ni_tables[static_cast<std::size_t>(c)]);
    // Offer exactly the reserved rate.
    sys.ni(Core_id{0}).set_source(std::make_unique<Gt_source>(
        Core_id{8}, Connection_id{0}, Flow_id{0}, 0.5));

    sys.warmup(1'000);
    sys.measure(4'000);
    const auto delivered = sys.stats().flow_flits_delivered(Flow_id{0});
    // 0.5 flits/cycle over 4000 cycles = 2000 flits (small edge slack).
    EXPECT_GT(delivered, 1'900u);
}

TEST(GtGuarantee, MissingSlotTableThrows)
{
    Mesh_params mp;
    mp.width = 2;
    mp.height = 2;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.enable_gt = true;
    Noc_system sys{std::move(topo), std::move(routes), params};
    sys.ni(Core_id{0}).set_source(std::make_unique<Gt_source>(
        Core_id{3}, Connection_id{0}, Flow_id{0}, 0.2));
    EXPECT_THROW(sys.kernel().run(100), std::logic_error);
}

TEST(GtGuarantee, SlotTableLengthMismatchThrows)
{
    Mesh_params mp;
    mp.width = 2;
    mp.height = 2;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.enable_gt = true;
    params.slot_table_length = 16;
    Noc_system sys{std::move(topo), std::move(routes), params};
    EXPECT_THROW(sys.ni(Core_id{0}).set_slot_table(
                     std::vector<Connection_id>(8)),
                 std::invalid_argument);
}

TEST(GtGuarantee, GtPacketsMustBeSingleFlit)
{
    Mesh_params mp;
    mp.width = 2;
    mp.height = 2;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.enable_gt = true;
    Noc_system sys{std::move(topo), std::move(routes), params};
    Packet_desc d;
    d.dst = Core_id{1};
    d.size_flits = 4;
    d.cls = Traffic_class::gt;
    EXPECT_THROW(sys.ni(Core_id{0}).enqueue_packet(d, 0),
                 std::invalid_argument);
}

} // namespace
} // namespace noc
