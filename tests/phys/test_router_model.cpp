// Locks in the Fig. 2 bands: the whole point of the physical model.
#include "phys/router_model.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

Router_phys_params radix(int p, int width = 32)
{
    Router_phys_params rp;
    rp.in_ports = p;
    rp.out_ports = p;
    rp.flit_width_bits = width;
    rp.buffer_depth = 4;
    rp.vcs = 1;
    return rp;
}

TEST(RouterModel, RejectsBadParams)
{
    const Technology t = make_technology_65nm();
    EXPECT_THROW(estimate_router(t, radix(0)), std::invalid_argument);
    Router_phys_params rp = radix(4);
    rp.flit_width_bits = 0;
    EXPECT_THROW(estimate_router(t, rp), std::invalid_argument);
}

TEST(RouterModel, Fig2Band_10x10_RoutableAtHighUtilization)
{
    // "Routers up to 10x10: 85% row utilization or more"
    const Technology t = make_technology_65nm();
    for (const int p : {2, 5, 8, 10}) {
        const auto r = estimate_router(t, radix(p));
        EXPECT_GE(r.max_row_utilization, 0.85)
            << "radix " << p << " should be comfortably routable";
        EXPECT_TRUE(r.drc_feasible);
    }
}

TEST(RouterModel, Fig2Band_14to22_ReducedUtilization)
{
    // "14x14 to 22x22: 70% to 50% row utilization"
    const Technology t = make_technology_65nm();
    const auto r14 = estimate_router(t, radix(14));
    EXPECT_GE(r14.max_row_utilization, 0.60);
    EXPECT_LE(r14.max_row_utilization, 0.78);
    EXPECT_TRUE(r14.drc_feasible);
    const auto r22 = estimate_router(t, radix(22));
    EXPECT_GE(r22.max_row_utilization, 0.45);
    EXPECT_LE(r22.max_row_utilization, 0.58);
    EXPECT_TRUE(r22.drc_feasible);
}

TEST(RouterModel, Fig2Band_26Plus_DrcInfeasible)
{
    // "26x26 and above: DRC violations to tackle manually even at 50%"
    const Technology t = make_technology_65nm();
    for (const int p : {26, 30, 34}) {
        const auto r = estimate_router(t, radix(p));
        EXPECT_FALSE(r.drc_feasible) << "radix " << p;
        EXPECT_LT(r.max_row_utilization, 0.50);
        EXPECT_NE(r.classification.find("DRC"), std::string::npos);
    }
}

TEST(RouterModel, UtilizationMonotoneInRadix)
{
    const Technology t = make_technology_65nm();
    double prev = 2.0;
    for (int p = 4; p <= 34; p += 2) {
        const auto r = estimate_router(t, radix(p));
        EXPECT_LE(r.max_row_utilization, prev + 1e-9) << "radix " << p;
        prev = r.max_row_utilization;
    }
}

TEST(RouterModel, WiderPortsHurtRoutability)
{
    // The crossbar wiring mechanism: doubling the port width at fixed
    // radix must reduce the achievable utilization.
    const Technology t = make_technology_65nm();
    const auto r32 = estimate_router(t, radix(10, 32));
    const auto r64 = estimate_router(t, radix(10, 64));
    const auto r128 = estimate_router(t, radix(10, 128));
    EXPECT_GT(r32.max_row_utilization, r64.max_row_utilization);
    EXPECT_GT(r64.max_row_utilization, r128.max_row_utilization);
    // Bus-width (128+) ports at radix 10 are hopeless — §4.2's point.
    EXPECT_FALSE(r128.drc_feasible);
}

TEST(RouterModel, AreaGrowsWithEverything)
{
    const Technology t = make_technology_65nm();
    const auto base = estimate_router(t, radix(6));
    auto deeper = radix(6);
    deeper.buffer_depth = 16;
    auto more_vcs = radix(6);
    more_vcs.vcs = 4;
    EXPECT_GT(estimate_router(t, radix(12)).cell_area_mm2,
              base.cell_area_mm2);
    EXPECT_GT(estimate_router(t, deeper).cell_area_mm2, base.cell_area_mm2);
    EXPECT_GT(estimate_router(t, more_vcs).cell_area_mm2,
              base.cell_area_mm2);
}

TEST(RouterModel, FrequencyDecreasesWithRadix)
{
    const Technology t = make_technology_65nm();
    const auto r5 = estimate_router(t, radix(5));
    const auto r20 = estimate_router(t, radix(20));
    EXPECT_GT(r5.max_freq_ghz, r20.max_freq_ghz);
    // 65 nm ×pipes-class 5x5 routers closed around 1 GHz.
    EXPECT_GT(r5.max_freq_ghz, 0.8);
    EXPECT_LT(r5.max_freq_ghz, 2.2 + 1e-9);
}

TEST(RouterModel, EnergyPerFlitScalesWithWidthAndRadix)
{
    const Technology t = make_technology_65nm();
    EXPECT_GT(router_energy_per_flit_pj(t, radix(10, 64)),
              router_energy_per_flit_pj(t, radix(10, 32)));
    EXPECT_GT(router_energy_per_flit_pj(t, radix(16, 32)),
              router_energy_per_flit_pj(t, radix(4, 32)));
    // Plausible 65 nm range: ~0.5 - 10 pJ per flit per hop.
    const double e = router_energy_per_flit_pj(t, radix(5, 32));
    EXPECT_GT(e, 0.3);
    EXPECT_LT(e, 10.0);
}

TEST(RouterModel, TechnologyScalingShrinksArea)
{
    const auto a90 = estimate_router(make_technology_90nm(), radix(8));
    const auto a65 = estimate_router(make_technology_65nm(), radix(8));
    const auto a45 = estimate_router(make_technology_45nm(), radix(8));
    EXPECT_GT(a90.cell_area_mm2, a65.cell_area_mm2);
    EXPECT_GT(a65.cell_area_mm2, a45.cell_area_mm2);
}

TEST(RouterModel, GateVsWireRatioWorsensWithScaling)
{
    // §1: "gate delays decrease while global wire delays do not".
    EXPECT_LT(gate_vs_wire_delay_ratio(make_technology_90nm()),
              gate_vs_wire_delay_ratio(make_technology_65nm()));
    EXPECT_LT(gate_vs_wire_delay_ratio(make_technology_65nm()),
              gate_vs_wire_delay_ratio(make_technology_45nm()));
}

} // namespace
} // namespace noc
