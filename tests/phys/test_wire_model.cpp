#include "phys/wire_model.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(WireModel, DelayLinearInLength)
{
    const Technology t = make_technology_65nm();
    EXPECT_DOUBLE_EQ(wire_delay_ps(t, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(wire_delay_ps(t, 2.0), 2.0 * t.wire_delay_ps_per_mm);
    EXPECT_THROW(wire_delay_ps(t, -1.0), std::invalid_argument);
}

TEST(WireModel, MaxSingleCycleLength)
{
    const Technology t = make_technology_65nm();
    // At 1 GHz with 35% margin: 650 ps of budget over 110 ps/mm ~ 5.9 mm.
    const double mm = max_single_cycle_wire_mm(t, 1.0);
    EXPECT_NEAR(mm, 650.0 / 110.0, 0.01);
    // Doubling the clock halves the reach.
    EXPECT_NEAR(max_single_cycle_wire_mm(t, 2.0), mm / 2, 0.01);
    EXPECT_THROW(max_single_cycle_wire_mm(t, 0.0), std::invalid_argument);
}

TEST(WireModel, PipelineStagesCoverLongWires)
{
    const Technology t = make_technology_65nm();
    // Short wire: single cycle, no stages.
    const auto short_wire = pipeline_wire(t, 1.0, 1.0);
    EXPECT_EQ(short_wire.pipeline_stages, 0);
    EXPECT_GE(short_wire.segment_slack_ps, 0.0);
    // 12 mm at 1 GHz, 110 ps/mm = 1320 ps over a 650 ps budget: 2 segments
    // are not enough (660 ps each > 650); 3 segments are.
    const auto long_wire = pipeline_wire(t, 12.0, 1.0);
    EXPECT_EQ(long_wire.pipeline_stages, 3 - 1);
    EXPECT_GE(long_wire.segment_slack_ps, 0.0);
}

TEST(WireModel, EachSegmentMeetsTiming)
{
    const Technology t = make_technology_65nm();
    for (double len = 0.5; len < 20.0; len += 0.7) {
        for (const double clock : {0.5, 1.0, 2.0}) {
            const auto w = pipeline_wire(t, len, clock);
            const double budget = 1000.0 / clock * 0.65;
            const double per_segment =
                wire_delay_ps(t, len) / (w.pipeline_stages + 1);
            EXPECT_LE(per_segment, budget + 1e-9)
                << "len " << len << " clock " << clock;
        }
    }
}

TEST(WireModel, EnergyLinearInBitsAndLength)
{
    const Technology t = make_technology_65nm();
    EXPECT_DOUBLE_EQ(wire_energy_pj(t, 2.0, 32.0),
                     2.0 * 32.0 * t.wire_energy_pj_per_bit_mm);
    EXPECT_THROW(wire_energy_pj(t, -1.0, 1.0), std::invalid_argument);
}

} // namespace
} // namespace noc
