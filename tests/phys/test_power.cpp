#include "phys/power.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

std::unique_ptr<Noc_system> make_loaded_mesh(double rate, Cycle cycles)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    Topology t = make_mesh(mp);
    Route_set r = xy_routes(t, mp);
    auto sys = std::make_unique<Noc_system>(std::move(t), std::move(r),
                                            Network_params{});
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(9));
    for (int c = 0; c < 9; ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.seed = 5 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    sys->kernel().run(cycles);
    return sys;
}

TEST(Power, ZeroCyclesRejected)
{
    auto sys = make_loaded_mesh(0.1, 10);
    EXPECT_THROW(estimate_power(*sys, make_technology_65nm(), 0),
                 std::invalid_argument);
}

TEST(Power, IdleNetworkBurnsOnlyLeakage)
{
    Mesh_params mp;
    Topology t = make_mesh(mp);
    Route_set r = xy_routes(t, mp);
    Noc_system sys{std::move(t), std::move(r), Network_params{}};
    sys.kernel().run(1'000);
    const auto rep = estimate_power(sys, make_technology_65nm(), 1'000);
    EXPECT_DOUBLE_EQ(rep.router_dynamic_mw, 0.0);
    EXPECT_DOUBLE_EQ(rep.link_dynamic_mw, 0.0);
    EXPECT_GT(rep.leakage_mw, 0.0);
}

TEST(Power, DynamicPowerGrowsWithLoad)
{
    const Cycle cycles = 5'000;
    auto low = make_loaded_mesh(0.05, cycles);
    auto high = make_loaded_mesh(0.3, cycles);
    const auto pl = estimate_power(*low, make_technology_65nm(), cycles);
    const auto ph = estimate_power(*high, make_technology_65nm(), cycles);
    EXPECT_GT(ph.router_dynamic_mw, pl.router_dynamic_mw * 2);
    EXPECT_GT(ph.link_dynamic_mw, pl.link_dynamic_mw * 2);
    EXPECT_DOUBLE_EQ(ph.leakage_mw, pl.leakage_mw);
}

TEST(Power, EnergyPerFlitInPlausibleRange)
{
    const Cycle cycles = 5'000;
    auto sys = make_loaded_mesh(0.2, cycles);
    const auto rep = estimate_power(*sys, make_technology_65nm(), cycles);
    // Router + ~1mm wire per hop at 65 nm: a few pJ per flit-hop.
    EXPECT_GT(rep.energy_per_flit_pj, 0.5);
    EXPECT_LT(rep.energy_per_flit_pj, 50.0);
    EXPECT_GT(rep.total_mw(), 0.0);
}

TEST(Power, LinkLengthsFallBackWithoutPositions)
{
    Topology t{"bare", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    const auto lengths = link_lengths_mm(t, 3.5);
    ASSERT_EQ(lengths.size(), 2u);
    EXPECT_DOUBLE_EQ(lengths[0], 3.5);
}

TEST(Power, LinkLengthsUsePositionsWhenPresent)
{
    Topology t{"placed", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    t.set_switch_position(Switch_id{0}, {0, 0});
    t.set_switch_position(Switch_id{1}, {2, 1});
    const auto lengths = link_lengths_mm(t);
    EXPECT_DOUBLE_EQ(lengths[0], 3.0);
}

} // namespace
} // namespace noc
