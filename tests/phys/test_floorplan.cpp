#include "phys/floorplan.h"
#include "traffic/app_graphs.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(Floorplan, RejectsEmptyDie)
{
    EXPECT_THROW(Floorplan({0, 0, 0, 1}), std::invalid_argument);
}

TEST(Floorplan, AddBlockEnforcesBounds)
{
    Floorplan fp{{0, 0, 10, 10}};
    EXPECT_NO_THROW(fp.add_block("a", {1, 1, 2, 2}));
    EXPECT_THROW(fp.add_block("out", {9, 9, 2, 2}), std::invalid_argument);
    EXPECT_THROW(fp.add_block("ovl", {2, 2, 2, 2}), std::invalid_argument);
}

TEST(Floorplan, PlaceNearFindsNearestWhitespace)
{
    Floorplan fp{{0, 0, 10, 10}};
    fp.add_block("a", {4, 4, 2, 2}); // center occupied
    const auto idx = fp.place_near("sw", 1, 1, {5, 5});
    ASSERT_TRUE(idx.has_value());
    // Must be adjacent-ish to the occupied center block.
    const Point c = fp.block_center(*idx);
    EXPECT_LT(manhattan(c, {5, 5}), 4.0);
    EXPECT_NO_THROW(fp.validate());
    EXPECT_TRUE(fp.block(*idx).is_noc_component);
}

TEST(Floorplan, PlaceNearFailsWhenFull)
{
    Floorplan fp{{0, 0, 4, 4}};
    fp.add_block("big", {0, 0, 4, 4});
    EXPECT_FALSE(fp.place_near("sw", 1, 1, {2, 2}).has_value());
}

TEST(Floorplan, WireLengthIsCenterManhattan)
{
    Floorplan fp{{0, 0, 10, 10}};
    const int a = fp.add_block("a", {0, 0, 2, 2}); // center (1,1)
    const int b = fp.add_block("b", {6, 4, 2, 2}); // center (7,5)
    EXPECT_DOUBLE_EQ(fp.wire_length(a, b), 6 + 4);
}

TEST(Floorplan, BlockIndexByName)
{
    Floorplan fp{{0, 0, 10, 10}};
    fp.add_block("alpha", {0, 0, 1, 1});
    fp.add_block("beta", {2, 2, 1, 1});
    EXPECT_EQ(fp.block_index("beta"), 1);
    EXPECT_THROW(fp.block_index("gamma"), std::invalid_argument);
}

TEST(ShelfFloorplan, PacksAllGraphsLegally)
{
    for (const auto& g : {make_vopd_graph(), make_mpeg4_graph(),
                          make_mwd_graph(), make_mobile_soc_graph()}) {
        const Floorplan fp = make_shelf_floorplan(g);
        EXPECT_EQ(fp.block_count(), g.core_count());
        EXPECT_NO_THROW(fp.validate());
        // Block i is core i.
        for (int c = 0; c < g.core_count(); ++c)
            EXPECT_EQ(fp.block(c).name, g.core(c).name);
        // Reasonable utilization: not absurdly sparse, not overfull.
        EXPECT_GT(fp.utilization(), 0.3);
        EXPECT_LT(fp.utilization(), 0.95);
    }
}

TEST(ShelfFloorplan, LeavesWhitespaceForNocInsertion)
{
    const Core_graph g = make_mobile_soc_graph();
    Floorplan fp = make_shelf_floorplan(g);
    // We must be able to drop several switch-sized blocks near the middle.
    int placed = 0;
    for (int i = 0; i < 6; ++i)
        if (fp.place_near("sw" + std::to_string(i), 0.3, 0.3,
                          fp.die().center()))
            ++placed;
    EXPECT_EQ(placed, 6);
    EXPECT_NO_THROW(fp.validate());
}

TEST(ShelfFloorplan, LayerVariantFiltersCores)
{
    const Core_graph g = make_mobile_soc_3d_graph(2);
    const Floorplan l0 = make_shelf_floorplan_layer(g, Layer_id{0});
    const Floorplan l1 = make_shelf_floorplan_layer(g, Layer_id{1});
    int on_l0 = 0;
    for (int c = 0; c < g.core_count(); ++c)
        if (g.core(c).layer == Layer_id{0}) ++on_l0;
    EXPECT_EQ(l0.block_count(), on_l0);
    EXPECT_EQ(l0.block_count() + l1.block_count(), g.core_count());
}

TEST(ShelfFloorplan, GapFractionValidated)
{
    EXPECT_THROW(make_shelf_floorplan(make_vopd_graph(), -0.1),
                 std::invalid_argument);
}

} // namespace
} // namespace noc
