// Retry_policy (common/retry_policy.h): the shared retry/backoff
// vocabulary. The math matters because both Sweep_runner (in-process
// point retries) and the farm orchestrator (process-level slice
// re-dispatch) sleep exactly delay_ms between attempts — an off-by-one
// in the exponent turns a 250ms first backoff into 500ms farm-wide.
#include "common/retry_policy.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(RetryPolicy, DefaultsMatchHistoricalRetryOnce)
{
    const Retry_policy p;
    EXPECT_EQ(p.max_attempts, 2u);
    EXPECT_EQ(p.backoff_ms, 0u);
    EXPECT_EQ(p.delay_ms(1), 0u); // immediate in-process retry
    EXPECT_FALSE(p.exhausted(1));
    EXPECT_TRUE(p.exhausted(2));
}

TEST(RetryPolicy, ExponentialBackoffFromFirstFailure)
{
    const Retry_policy p{5, 250, 2.0, 60'000};
    EXPECT_EQ(p.delay_ms(0), 0u); // no failures yet, no delay
    EXPECT_EQ(p.delay_ms(1), 250u);
    EXPECT_EQ(p.delay_ms(2), 500u);
    EXPECT_EQ(p.delay_ms(3), 1000u);
    EXPECT_EQ(p.delay_ms(4), 2000u);
}

TEST(RetryPolicy, CapBoundsEveryDelay)
{
    const Retry_policy p{20, 1000, 10.0, 5000};
    EXPECT_EQ(p.delay_ms(1), 1000u);
    EXPECT_EQ(p.delay_ms(2), 5000u); // 10'000 capped
    EXPECT_EQ(p.delay_ms(19), 5000u); // deep exponent cannot overflow
    const Retry_policy tight{8, 7000, 2.0, 5000};
    EXPECT_EQ(tight.delay_ms(1), 5000u); // base already above the cap
}

TEST(RetryPolicy, NonIntegerMultiplier)
{
    const Retry_policy p{6, 100, 1.5, 60'000};
    EXPECT_EQ(p.delay_ms(1), 100u);
    EXPECT_EQ(p.delay_ms(2), 150u);
    EXPECT_EQ(p.delay_ms(3), 225u);
}

TEST(RetryPolicy, ZeroBackoffNeverSleeps)
{
    const Retry_policy p{10, 0, 2.0, 60'000};
    for (std::uint32_t f = 0; f < 10; ++f) EXPECT_EQ(p.delay_ms(f), 0u);
}

TEST(RetryPolicy, ExhaustionBoundary)
{
    const Retry_policy p{1, 0, 2.0, 60'000};
    EXPECT_FALSE(p.exhausted(0));
    EXPECT_TRUE(p.exhausted(1)); // max_attempts == 1 means no retry
}

} // namespace
} // namespace noc
