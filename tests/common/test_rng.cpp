#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace noc {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a{1};
    Rng b{2};
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r{7};
    for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.next_below(17), 17u);
    EXPECT_EQ(r.next_below(0), 0u);
    EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r{9};
    for (int i = 0; i < 10'000; ++i) {
        const double x = r.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformMeanApproximatelyHalf)
{
    Rng r{11};
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) sum += r.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksP)
{
    Rng r{13};
    const int n = 100'000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        if (r.next_bool(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r{17};
    const double p = 0.25;
    const int n = 50'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.next_geometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng r{19};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_geometric(1.0), 0u);
}

// Pins the exact next_below value stream of the Lemire nearly-divisionless
// draw (multiply-shift with low-word rejection). Experiments seed their RNGs
// explicitly, so reproducibility is cross-run and cross-platform only if
// this stream never drifts; any intentional algorithm change must update
// these constants (a deliberate re-seed of the fleet's results).
TEST(Rng, LemireStreamIsPinned)
{
    Rng a{42};
    const std::uint64_t expect_small[] = {83ull, 378ull, 680ull, 924ull,
                                          991ull, 769ull, 719ull, 850ull};
    for (const auto e : expect_small) EXPECT_EQ(a.next_below(1000), e);

    Rng b{7};
    const std::uint64_t expect_17[] = {11ull, 4ull, 14ull,
                                       16ull, 16ull, 14ull};
    for (const auto e : expect_17) EXPECT_EQ(b.next_below(17), e);

    // Large bound: exercises the high-word path where the old modulo
    // reduction would have been visibly biased.
    Rng c{123456789};
    const std::uint64_t expect_big[] = {
        3781801318375211824ull, 4066442044099004754ull,
        378580466919829026ull, 2463423368775234928ull};
    for (const auto e : expect_big) EXPECT_EQ(c.next_below(1ull << 62), e);
}

// One next_below draw must consume exactly one underlying u64 outside the
// (astronomically rare for these bounds) rejection path, so interleaved
// consumers stay aligned with the pre-Lemire stream cadence.
TEST(Rng, NextBelowConsumesOneWordPerDraw)
{
    Rng a{99};
    Rng b{99};
    for (int i = 0; i < 1000; ++i) {
        (void)a.next_below(64);
        (void)a.next_u64();
        (void)b.next_u64();
        (void)b.next_u64();
    }
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng r{23};
    std::vector<int> counts(10, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(r.next_below(10))];
    for (const int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

} // namespace
} // namespace noc
