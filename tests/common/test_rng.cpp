#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace noc {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a{1};
    Rng b{2};
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r{7};
    for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.next_below(17), 17u);
    EXPECT_EQ(r.next_below(0), 0u);
    EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r{9};
    for (int i = 0; i < 10'000; ++i) {
        const double x = r.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformMeanApproximatelyHalf)
{
    Rng r{11};
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) sum += r.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksP)
{
    Rng r{13};
    const int n = 100'000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        if (r.next_bool(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r{17};
    const double p = 0.25;
    const int n = 50'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.next_geometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng r{19};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_geometric(1.0), 0u);
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng r{23};
    std::vector<int> counts(10, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(r.next_below(10))];
    for (const int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

} // namespace
} // namespace noc
