#include "common/geometry.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(Geometry, ManhattanDistance)
{
    EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
    EXPECT_DOUBLE_EQ(manhattan({3, 4}, {0, 0}), 7.0);
    EXPECT_DOUBLE_EQ(manhattan({-1, -1}, {1, 1}), 4.0);
    EXPECT_DOUBLE_EQ(manhattan({2, 2}, {2, 2}), 0.0);
}

TEST(Geometry, EuclideanDistance)
{
    EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
}

TEST(Geometry, RectBasics)
{
    const Rect r{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(r.area(), 12.0);
    EXPECT_DOUBLE_EQ(r.right(), 4.0);
    EXPECT_DOUBLE_EQ(r.top(), 6.0);
    EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
}

TEST(Geometry, RectContains)
{
    const Rect r{0, 0, 2, 2};
    EXPECT_TRUE(r.contains({1, 1}));
    EXPECT_TRUE(r.contains({0, 0}));  // boundary included
    EXPECT_TRUE(r.contains({2, 2}));
    EXPECT_FALSE(r.contains({2.1, 1}));
}

TEST(Geometry, OverlapIsStrictInterior)
{
    const Rect a{0, 0, 2, 2};
    const Rect b{2, 0, 2, 2}; // shares an edge only
    const Rect c{1, 1, 2, 2}; // true overlap
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_FALSE(b.overlaps(a));
    EXPECT_TRUE(a.overlaps(c));
    EXPECT_TRUE(c.overlaps(a));
}

TEST(Geometry, ContainedRectOverlaps)
{
    const Rect outer{0, 0, 10, 10};
    const Rect inner{3, 3, 1, 1};
    EXPECT_TRUE(outer.overlaps(inner));
    EXPECT_TRUE(inner.overlaps(outer));
}

TEST(Geometry, UnionWith)
{
    const Rect a{0, 0, 1, 1};
    const Rect b{2, 3, 1, 1};
    const Rect u = a.union_with(b);
    EXPECT_EQ(u, (Rect{0, 0, 3, 4}));
}

} // namespace
} // namespace noc
