#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace noc {
namespace {

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, SingleValue)
{
    Accumulator a;
    a.add(5.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator a;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(a.std_dev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, NegativeValues)
{
    Accumulator a;
    a.add(-3.0);
    a.add(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Accumulator, ClearResets)
{
    Accumulator a;
    a.add(1.0);
    a.add(2.0);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Accumulator, WelfordMatchesNaiveOnLongStream)
{
    Accumulator a;
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 10'000;
    for (int i = 0; i < n; ++i) {
        const double x = static_cast<double>((i * 37) % 101);
        a.add(x);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = (sum_sq - n * mean * mean) / (n - 1);
    EXPECT_NEAR(a.mean(), mean, 1e-9);
    EXPECT_NEAR(a.variance(), var, 1e-6);
}

TEST(Histogram, RejectsBadGeometry)
{
    EXPECT_THROW(Histogram(0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow)
{
    Histogram h{1.0, 4};
    h.add(0.5);  // bin 0
    h.add(1.5);  // bin 1
    h.add(3.5);  // bin 3
    h.add(99.0); // overflow -> last bin
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bins()[0], 1u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[2], 0u);
    EXPECT_EQ(h.bins()[3], 2u);
}

TEST(Histogram, NegativeClampsToFirstBin)
{
    Histogram h{1.0, 4};
    h.add(-2.0);
    EXPECT_EQ(h.bins()[0], 1u);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h{1.0, 100};
    for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
    const double p50 = h.percentile(0.50);
    const double p90 = h.percentile(0.90);
    const double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_NEAR(p50, 50.0, 1.0);
    EXPECT_NEAR(p99, 99.0, 1.0);
}

TEST(Histogram, PercentileOnEmptyIsZero)
{
    const Histogram h{1.0, 4};
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

} // namespace
} // namespace noc
