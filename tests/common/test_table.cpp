#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace noc {
namespace {

TEST(TextTable, RejectsEmptyHeaders)
{
    EXPECT_THROW(Text_table{std::vector<std::string>{}},
                 std::invalid_argument);
}

TEST(TextTable, AddBeforeRowThrows)
{
    Text_table t{{"a"}};
    EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(TextTable, TooManyCellsThrows)
{
    Text_table t{{"a", "b"}};
    t.row().add("1").add("2");
    EXPECT_THROW(t.add("3"), std::logic_error);
}

TEST(TextTable, PrintsAlignedColumns)
{
    Text_table t{{"name", "value"}};
    t.row().add("x").add(3.14159, 2);
    t.row().add("longer_name").add(static_cast<std::uint64_t>(7));
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("longer_name"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    Text_table t{{"a", "b"}};
    t.row().add("1").add("2");
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, FormatDoublePrecision)
{
    EXPECT_EQ(format_double(1.23456, 2), "1.23");
    EXPECT_EQ(format_double(1.0, 0), "1");
    EXPECT_EQ(format_double(-2.5, 1), "-2.5");
}

TEST(TextTable, RowCountTracksRows)
{
    Text_table t{{"a"}};
    EXPECT_EQ(t.row_count(), 0u);
    t.row().add("1");
    t.row().add("2");
    EXPECT_EQ(t.row_count(), 2u);
}

} // namespace
} // namespace noc
