// Live telemetry service contract tests: registry shard partitioning,
// zero-perturbation attach (telemetry-attached runs bit-identical to bare
// ones), byte-deterministic sampler streams (rerun-identical, file ==
// memory, decode round-trip), schedule-invariance of the simulation-state
// entry subset, heatmap determinism, and the live saturation early-stop
// (deterministic, worker-count-invariant, serialization-gated so old specs
// stay byte-identical). The TSan CI leg runs this suite with the sharded
// kernel at 4 shards to prove the capture/encode split is race-free.
#include "telemetry/heatmap.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"

#include "arch/noc_builder.h"
#include "explore/sweep_runner.h"
#include "topology/mesh.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

namespace noc {
namespace {

std::unique_ptr<Noc_system> rigged_mesh(double rate, std::uint32_t shards,
                                        Kernel_mode mode =
                                            Kernel_mode::sharded)
{
    Mesh_params mp; // 4x4
    const Topology topo = make_mesh(mp);
    Noc_builder b;
    b.topology(topo).routes(xy_routes(topo, mp)).params(Network_params{});
    if (shards > 1)
        b.schedule(mode).partition(Partition_plan::contiguous(shards));
    auto sys = b.build();
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(topo.core_count()));
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.seed = 700 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    return sys;
}

// --- registry ---------------------------------------------------------------

TEST(TelemetryRegistry, EntriesPartitionByOwningShard)
{
    Telemetry_registry reg;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    reg.add_counter("s0.a", 0, [&a] { return a; });
    reg.add_gauge("s1.b", 1, [&b] { return b; });
    reg.add_counter("s1.c", 1, [&c] { return c; });
    reg.add_gauge("s3.d", 3, [&d] { return d; });

    ASSERT_EQ(reg.entry_count(), 4u);
    EXPECT_EQ(reg.entry_count_in_shard(0), 1u);
    EXPECT_EQ(reg.entry_count_in_shard(1), 2u);
    EXPECT_EQ(reg.entry_count_in_shard(2), 0u);
    EXPECT_EQ(reg.entry_count_in_shard(3), 1u);

    // The shard slices partition [0, entry_count): disjoint, complete, and
    // in registration order within a shard.
    std::vector<bool> seen(reg.entry_count(), false);
    std::size_t total = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
        const auto idx = reg.entries_in_shard(s);
        EXPECT_EQ(idx.size(), reg.entry_count_in_shard(s));
        for (std::size_t i = 0; i < idx.size(); ++i) {
            EXPECT_FALSE(seen.at(idx[i])) << "entry in two shard slices";
            seen[idx[i]] = true;
            EXPECT_EQ(reg.entry(idx[i]).shard, s);
            if (i > 0) EXPECT_GT(idx[i], idx[i - 1]);
            ++total;
        }
    }
    EXPECT_EQ(total, reg.entry_count());

    EXPECT_EQ(reg.find("s1.c"), 2u);
    EXPECT_EQ(reg.find("absent"), Telemetry_registry::npos);
    EXPECT_EQ(reg.read(3), 4u);

    // capture() reads in registration order and sees live updates.
    EXPECT_EQ(reg.capture(), (std::vector<std::uint64_t>{1, 2, 3, 4}));
    b = 20;
    std::vector<std::uint64_t> buf;
    reg.capture_into(buf);
    EXPECT_EQ(buf, (std::vector<std::uint64_t>{1, 20, 3, 4}));
}

TEST(TelemetryRegistry, SystemSurfaceIsCaptureStableAtASequentialPoint)
{
    auto sys = rigged_mesh(0.15, 2);
    Telemetry_registry reg;
    sys->attach_telemetry(reg);
    ASSERT_GT(reg.entry_count(), 0u);
    sys->warmup(200);
    // Two captures at the same sequential point are identical (pure reads).
    EXPECT_EQ(reg.capture(), reg.capture());
    // Every entry belongs to a real shard.
    for (std::size_t i = 0; i < reg.entry_count(); ++i)
        EXPECT_LT(reg.entry(i).shard, 2u);
}

// --- zero-perturbation attach -----------------------------------------------

TEST(Telemetry, AttachedRunIsBitIdenticalToBareRun)
{
    auto bare = rigged_mesh(0.2, 4);
    bare->warmup(300);
    bare->measure(1'000);
    (void)bare->drain(20'000);

    auto probed = rigged_mesh(0.2, 4);
    Telemetry_registry reg;
    probed->attach_telemetry(reg);
    Telemetry_sampler sampler{&reg, 64};
    probed->attach_sampler(&sampler);
    probed->warmup(300);
    probed->measure(1'000);
    (void)probed->drain(20'000);
    probed->attach_sampler(nullptr);
    sampler.stop();

    EXPECT_EQ(probed->total_flits_routed(), bare->total_flits_routed());
    EXPECT_EQ(probed->stats().packet_latency().mean(),
              bare->stats().packet_latency().mean());
    EXPECT_EQ(probed->stats().packets_delivered(),
              bare->stats().packets_delivered());
    EXPECT_GT(sampler.sample_count(), 0u);
}

// --- sampler stream ---------------------------------------------------------

std::vector<std::uint8_t> sampled_stream(std::uint32_t shards,
                                         Kernel_mode mode,
                                         const std::string& path = {})
{
    auto sys = rigged_mesh(0.2, shards, mode);
    Telemetry_registry reg;
    sys->attach_telemetry(reg);
    Telemetry_sampler sampler{&reg, 64, path};
    sys->attach_sampler(&sampler);
    sys->warmup(256);
    sys->measure(512);
    sys->attach_sampler(nullptr);
    sampler.stop();
    return sampler.stream();
}

TEST(TelemetrySampler, StreamIsByteDeterministicAcrossReruns)
{
    // 4 shards: the TSan leg exercises the capture (sim thread) / encode
    // (background thread) handoff under the real sharded kernel.
    const auto first = sampled_stream(4, Kernel_mode::sharded);
    const auto again = sampled_stream(4, Kernel_mode::sharded);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, again);
}

TEST(TelemetrySampler, FileStreamMatchesMemoryStream)
{
    const std::string path = "test_telemetry_stream.noct";
    const auto mem = sampled_stream(2, Kernel_mode::sharded, path);
    std::ifstream in{path, std::ios::binary};
    ASSERT_TRUE(in.good());
    const std::vector<std::uint8_t> file{
        std::istreambuf_iterator<char>{in},
        std::istreambuf_iterator<char>{}};
    EXPECT_EQ(file, mem);
    in.close();
    std::remove(path.c_str());
}

TEST(TelemetrySampler, DecodeRoundTripsHeaderAndRecords)
{
    const auto bytes = sampled_stream(2, Kernel_mode::sharded);
    const Telemetry_stream stream = decode_telemetry_stream(bytes);
    EXPECT_EQ(stream.period, 64u);
    ASSERT_FALSE(stream.entries.empty());
    ASSERT_FALSE(stream.records.empty());
    for (std::size_t i = 0; i < stream.records.size(); ++i) {
        const auto& r = stream.records[i];
        EXPECT_EQ(r.index, i);
        EXPECT_EQ(r.cycle, (i + 1) * 64); // exact multiples of the period
        EXPECT_EQ(r.values.size(), stream.entries.size());
    }
    // A torn tail (live file caught mid-record) decodes to the same full
    // records with the partial one dropped.
    auto torn = bytes;
    torn.resize(torn.size() - 5);
    const Telemetry_stream partial = decode_telemetry_stream(torn);
    EXPECT_EQ(partial.records.size(), stream.records.size() - 1);

    // Renderers are pure functions of the decoded stream.
    EXPECT_EQ(to_json(stream), to_json(decode_telemetry_stream(bytes)));
    EXPECT_FALSE(render_latest(stream).empty());
}

TEST(TelemetrySampler, SimulationStateEntriesAreScheduleInvariant)
{
    // The registry contract: entries describing simulation state (link
    // occupancy, NI injected/ejected, router routed/occ) are identical
    // across kernel schedules at every sample; only kernel.* scheduling
    // counters and router blocked-sleep entries may differ.
    const auto ref = decode_telemetry_stream(
        sampled_stream(1, Kernel_mode::reference));
    const auto shr = decode_telemetry_stream(
        sampled_stream(4, Kernel_mode::sharded));
    ASSERT_EQ(ref.entries.size(), shr.entries.size());
    ASSERT_EQ(ref.records.size(), shr.records.size());
    for (std::size_t e = 0; e < ref.entries.size(); ++e) {
        const std::string& name = ref.entries[e].name;
        EXPECT_EQ(name, shr.entries[e].name);
        if (name.rfind("kernel.", 0) == 0) continue;
        if (name.size() >= 8 &&
            name.compare(name.size() - 8, 8, ".blocked") == 0)
            continue;
        // Intra-cycle allocation peak: depends on within-cycle component
        // order, which schedules legitimately permute.
        if (name == "pool.high_water") continue;
        for (std::size_t r = 0; r < ref.records.size(); ++r)
            ASSERT_EQ(ref.records[r].values[e], shr.records[r].values[e])
                << name << " diverged at sample " << r;
    }
}

// --- heatmap ----------------------------------------------------------------

TEST(TelemetryHeatmap, RenderIsDeterministicAndSelectsByName)
{
    const auto stream =
        decode_telemetry_stream(sampled_stream(2, Kernel_mode::sharded));
    const std::string routers = render_heatmap(stream, "router", ".occ");
    EXPECT_EQ(routers, render_heatmap(stream, "router", ".occ"));
    EXPECT_NE(routers.find("router0.occ"), std::string::npos);
    EXPECT_EQ(routers.find("link"), std::string::npos);
    // One row per record plus the legend.
    std::size_t rows = 0;
    for (const char ch : routers)
        if (ch == '\n') ++rows;
    EXPECT_GE(rows, stream.records.size());
    const std::string links = render_heatmap(stream, "link", ".occ");
    EXPECT_NE(links.find("link0.occ"), std::string::npos);
}

// --- sampled load points ----------------------------------------------------

Sweep_config point_cfg()
{
    Sweep_config cfg;
    cfg.warmup = 300;
    cfg.measure = 1'500;
    cfg.drain_limit = 10'000;
    return cfg;
}

Load_point mesh_point(double rate, const Sweep_config& cfg)
{
    Mesh_params mp; // 4x4
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const auto cores = topo.core_count();
    return run_synthetic_load(
        topo, routes, Network_params{}, rate,
        [cores] {
            return std::shared_ptr<const Dest_pattern>(
                make_uniform_pattern(cores));
        },
        cfg);
}

TEST(Telemetry, SampledLoadPointEqualsUnsampledLoadPoint)
{
    const Load_point plain = mesh_point(0.2, point_cfg());
    Sweep_config sampled_cfg = point_cfg();
    sampled_cfg.telemetry_period = 64; // side stream only
    const Load_point sampled = mesh_point(0.2, sampled_cfg);
    EXPECT_EQ(sampled.packets, plain.packets);
    EXPECT_EQ(sampled.avg_packet_latency, plain.avg_packet_latency);
    EXPECT_EQ(sampled.accepted_flits_per_node_cycle,
              plain.accepted_flits_per_node_cycle);
    EXPECT_EQ(sampled.drained, plain.drained);
    EXPECT_EQ(sampled.measured_cycles, plain.measured_cycles);
}

// --- live saturation early-stop ---------------------------------------------

TEST(EarlyStop, SaturatedPointStopsEarlyAndHealthyPointRunsFull)
{
    Sweep_config cfg = point_cfg();
    cfg.measure = 4'000;
    cfg.early_stop_check = 200;
    cfg.early_stop_latency_cap = 120.0;

    const Load_point healthy = mesh_point(0.05, cfg);
    EXPECT_FALSE(healthy.early_stopped);
    EXPECT_EQ(healthy.measured_cycles, cfg.measure);

    const Load_point saturated = mesh_point(0.8, cfg);
    EXPECT_TRUE(saturated.early_stopped);
    EXPECT_LT(saturated.measured_cycles, cfg.measure);
    EXPECT_GE(saturated.measured_cycles, cfg.early_stop_check);
    // The truncated window still yields a usable (nonzero) point.
    EXPECT_GT(saturated.packets, 0u);

    // Deterministic: the stop cycle is a pure function of the run.
    const Load_point again = mesh_point(0.8, cfg);
    EXPECT_EQ(again.measured_cycles, saturated.measured_cycles);
    EXPECT_EQ(again.avg_packet_latency, saturated.avg_packet_latency);
}

Sweep_spec saturating_spec()
{
    Sweep_spec spec;
    spec.name = "early-stop-unit";
    spec.add_mesh(4, 4);
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.loads = {0.1, 0.45, 0.8}; // last two sit past 4x4 saturation
    spec.base.warmup = 300;
    spec.base.measure = 4'000;
    spec.base.drain_limit = 12'000;
    return spec;
}

TEST(EarlyStop, SweepIsByteIdenticalAcrossWorkerCountsAndReportsStops)
{
    Sweep_spec spec = saturating_spec();
    spec.base.early_stop_check = 200;
    spec.latency_cap = 120.0; // point_config syncs the early-stop cap

    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result parallel = run_sweep(spec, 4);
    EXPECT_EQ(serial.to_json(), parallel.to_json());
    EXPECT_EQ(serial.to_csv(), parallel.to_csv());

    EXPECT_NE(serial.to_json().find("\"early_stopped\": true"),
              std::string::npos);
    EXPECT_NE(serial.to_csv().find("early_stopped"), std::string::npos);

    // The stop must actually save simulated cycles on the saturated points.
    std::uint64_t saved = 0;
    for (const auto& c : serial.curves)
        for (const auto& p : c.points)
            if (p.load.early_stopped) {
                EXPECT_LT(p.load.measured_cycles, spec.base.measure);
                saved += spec.base.measure - p.load.measured_cycles;
            }
    EXPECT_GT(saved, 0u);
}

TEST(EarlyStop, DisabledSpecSerializesExactlyAsBefore)
{
    // The gate: early_stop_check == 0 must not add keys or columns, so
    // pre-existing specs (and the farm's cmp-based acceptance checks) stay
    // byte-identical.
    const Sweep_result off = run_sweep(saturating_spec(), 2);
    EXPECT_EQ(off.to_json().find("early_stopped"), std::string::npos);
    EXPECT_EQ(off.to_json().find("measured_cycles"), std::string::npos);
    EXPECT_EQ(off.to_csv().find("early_stopped"), std::string::npos);
}

} // namespace
} // namespace noc
