// Windowed / derivative telemetry (telemetry/window.h): rates, Q16 EWMA,
// registry republication and decoded-stream post-processing.
#include "telemetry/heatmap.h"
#include "telemetry/window.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace noc {
namespace {

TEST(TelemetryWindow, EwmaPrimesOnFirstObservationThenSmooths)
{
    Ewma_q16 e;
    EXPECT_EQ(e.value(), 0u);
    e.step(100, 2);
    EXPECT_EQ(e.value(), 100u); // primed, not pulled from 0
    e.step(100, 2);
    EXPECT_EQ(e.value(), 100u); // fixed point of a constant series
    // One observation of 200 with alpha 1/4 pulls 100 -> 125, exactly.
    e.step(200, 2);
    EXPECT_EQ(e.value(), 125u);
    // And back down: 125 + (0 - 125)/4 = 93.75, Q16-exact.
    e.step(0, 2);
    EXPECT_EQ(e.q16, (125u << 16) - ((125u << 16) >> 2));
    EXPECT_EQ(e.value(), 93u);
}

TEST(TelemetryWindow, EwmaIsDeterministicOverLongSeries)
{
    // Two independent runs of the same series must agree bit-for-bit —
    // the property floating point would eventually lose.
    Ewma_q16 a;
    Ewma_q16 b;
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        const std::uint64_t obs = (i * 2654435761u) % 1000;
        a.step(obs, 3);
        b.step(obs, 3);
    }
    EXPECT_EQ(a.q16, b.q16);
}

TEST(TelemetryWindow, WindowsCounterDeltasAndPassesGaugeLevels)
{
    std::uint64_t counter = 0;
    std::uint64_t gauge = 0;
    Telemetry_registry reg;
    reg.add_counter("flits", 0, [&] { return counter; });
    reg.add_gauge("occupancy", 0, [&] { return gauge; });

    Telemetry_window w{&reg, /*ewma_shift=*/2};
    EXPECT_EQ(w.windows(), 0u);
    EXPECT_EQ(w.rate(0), 0u);

    counter = 40;
    gauge = 7;
    w.advance();
    EXPECT_EQ(w.windows(), 1u);
    EXPECT_EQ(w.rate(0), 40u); // implicit 0 base before the first window
    EXPECT_EQ(w.ewma(0), 40u); // primed
    EXPECT_EQ(w.rate(1), 7u);  // gauges pass their level
    EXPECT_EQ(w.ewma(1), 7u);

    counter = 100; // delta 60
    gauge = 3;
    w.advance();
    EXPECT_EQ(w.rate(0), 60u);
    EXPECT_EQ(w.ewma(0), 45u); // 40 + (60-40)/4
    EXPECT_EQ(w.rate(1), 3u);
    EXPECT_EQ(w.ewma(1), 6u); // 7 - (7-3)/4 = 6 (Q16 floor)

    counter = 100; // idle window: rate drops to 0, EWMA decays
    w.advance();
    EXPECT_EQ(w.rate(0), 0u);
    EXPECT_EQ(w.ewma(0), 33u); // 45 - 45/4 = 33.75 -> 33
}

TEST(TelemetryWindow, RegisterIntoPublishesDerivedGauges)
{
    std::uint64_t counter = 0;
    std::uint64_t gauge = 5;
    Telemetry_registry reg;
    reg.add_counter("flits", 1, [&] { return counter; });
    reg.add_gauge("occupancy", 2, [&] { return gauge; });
    Telemetry_window w{&reg};

    Telemetry_registry derived;
    w.register_into(derived);
    // Counters publish ".rate" then ".ewma", gauges ".ewma" only, all as
    // gauges (a rate is a level of the window, not a monotone total).
    ASSERT_EQ(derived.entry_count(), 3u);
    EXPECT_EQ(derived.entry(0).name, "flits.rate");
    EXPECT_EQ(derived.entry(1).name, "flits.ewma");
    EXPECT_EQ(derived.entry(2).name, "occupancy.ewma");
    EXPECT_EQ(derived.entry(0).kind, Telemetry_registry::Kind::gauge);
    EXPECT_EQ(derived.entry(1).kind, Telemetry_registry::Kind::gauge);
    EXPECT_EQ(derived.entry(2).kind, Telemetry_registry::Kind::gauge);
    EXPECT_EQ(derived.entry(0).shard, 1);
    EXPECT_EQ(derived.entry(2).shard, 2);

    counter = 12;
    w.advance();
    const auto values = derived.capture();
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values[0], 12u);
    EXPECT_EQ(values[1], 12u);
    EXPECT_EQ(values[2], 5u);
}

TEST(TelemetryWindow, RejectsBadConstruction)
{
    Telemetry_registry reg;
    EXPECT_THROW((Telemetry_window{nullptr}), std::invalid_argument);
    EXPECT_THROW((Telemetry_window{&reg, 48}), std::invalid_argument);
}

Telemetry_stream make_stream()
{
    Telemetry_stream s;
    s.period = 64;
    s.entries.push_back({"r0.flits", Telemetry_registry::Kind::counter, 0});
    s.entries.push_back({"r0.occ", Telemetry_registry::Kind::gauge, 0});
    const std::uint64_t counters[] = {40, 100, 100};
    const std::uint64_t gauges[] = {7, 3, 3};
    for (std::uint64_t i = 0; i < 3; ++i) {
        Telemetry_stream::Record rec;
        rec.index = i;
        rec.cycle = (i + 1) * 64;
        rec.values = {counters[i], gauges[i]};
        s.records.push_back(rec);
    }
    return s;
}

TEST(TelemetryWindow, WindowedStreamDerivesRatesInPlace)
{
    const Telemetry_stream derived = windowed_stream(make_stream(), 2);
    EXPECT_EQ(derived.period, 64u);
    ASSERT_EQ(derived.entries.size(), 3u);
    EXPECT_EQ(derived.entries[0].name, "r0.flits.rate");
    EXPECT_EQ(derived.entries[1].name, "r0.flits.ewma");
    EXPECT_EQ(derived.entries[2].name, "r0.occ.ewma");
    ASSERT_EQ(derived.records.size(), 3u);
    // Records keep their cycles/indices so heatmaps line up.
    EXPECT_EQ(derived.records[1].index, 1u);
    EXPECT_EQ(derived.records[1].cycle, 128u);
    // Same arithmetic as the live window (shared Ewma_q16 path).
    EXPECT_EQ(derived.records[0].values,
              (std::vector<std::uint64_t>{40, 40, 7}));
    EXPECT_EQ(derived.records[1].values,
              (std::vector<std::uint64_t>{60, 45, 6}));
    EXPECT_EQ(derived.records[2].values,
              (std::vector<std::uint64_t>{0, 33, 5}));
}

TEST(TelemetryWindow, WindowedStreamFeedsHeatmap)
{
    const Telemetry_stream derived = windowed_stream(make_stream(), 2);
    const std::string map = render_heatmap(derived, "r0", ".rate");
    EXPECT_FALSE(map.empty());
}

TEST(TelemetryWindow, WindowedStreamRejectsBadInput)
{
    EXPECT_THROW(windowed_stream(make_stream(), 48), std::invalid_argument);
    Telemetry_stream ragged = make_stream();
    ragged.records[1].values.pop_back();
    EXPECT_THROW(windowed_stream(ragged, 2), std::invalid_argument);
}

} // namespace
} // namespace noc
