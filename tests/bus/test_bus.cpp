#include "bus/crossbar.h"
#include "bus/shared_bus.h"
#include "bus/wiring.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(SharedBus, RejectsBadParams)
{
    Bus_params p;
    p.masters = 0;
    EXPECT_THROW(simulate_shared_bus(p, 0.01, 4, 100), std::invalid_argument);
}

TEST(SharedBus, LowLoadLatencyNearTransferTime)
{
    Bus_params p;
    p.masters = 4;
    const auto pt = simulate_shared_bus(p, 0.002, 8, 200'000);
    EXPECT_GT(pt.transfers, 500u);
    // 8 data beats + 1 arbitration: latency close to 9 when uncontended.
    EXPECT_NEAR(pt.avg_latency, 9.0, 3.0);
}

TEST(SharedBus, SaturatesAtOneWordPerCycle)
{
    Bus_params p;
    p.masters = 8;
    const auto pt = simulate_shared_bus(p, 0.2, 8, 50'000);
    EXPECT_LE(pt.accepted_words_per_cycle, 1.0);
    EXPECT_GT(pt.accepted_words_per_cycle, 0.8); // saturated, ~1 word/cy
}

TEST(SharedBus, MoreMastersMoreContention)
{
    Bus_params few;
    few.masters = 2;
    Bus_params many;
    many.masters = 16;
    const auto pf = simulate_shared_bus(few, 0.01, 8, 100'000);
    const auto pm = simulate_shared_bus(many, 0.01, 8, 100'000);
    EXPECT_GT(pm.avg_latency, pf.avg_latency);
}

TEST(BridgedBus, TwoSegmentsBeatOneBusOnLocalTraffic)
{
    // Mostly-local traffic: two segments serve ~2 words/cycle total.
    Bus_params one;
    one.masters = 8;
    Bridged_bus_params two;
    two.segment.masters = 8;
    two.cross_fraction = 0.1;
    const auto p1 = simulate_shared_bus(one, 0.05, 8, 50'000);
    const auto p2 = simulate_bridged_bus(two, 0.05, 8, 50'000);
    EXPECT_GT(p2.accepted_words_per_cycle,
              1.2 * p1.accepted_words_per_cycle);
}

TEST(BridgedBus, BridgeLatencyHurtsCrossTraffic)
{
    Bridged_bus_params p;
    p.segment.masters = 4;
    p.bridge_latency = 16;
    p.cross_fraction = 1.0; // everything crosses
    const auto all_cross = simulate_bridged_bus(p, 0.01, 4, 50'000);
    p.cross_fraction = 0.0;
    const auto local = simulate_bridged_bus(p, 0.01, 4, 50'000);
    EXPECT_GT(all_cross.avg_latency, local.avg_latency + 10.0);
}

TEST(Crossbar, NonBlockingAcrossDistinctSlaves)
{
    // With as many slaves as masters and uniform targets, a crossbar
    // sustains far more than one word per cycle — the shared bus cannot.
    Crossbar_params xp;
    xp.masters = 8;
    xp.slaves = 8;
    const auto px = simulate_crossbar(xp, 0.05, 8, 50'000);
    Bus_params bp;
    bp.masters = 8;
    const auto pb = simulate_shared_bus(bp, 0.05, 8, 50'000);
    EXPECT_GT(px.accepted_words_per_cycle,
              2.0 * pb.accepted_words_per_cycle);
}

TEST(Crossbar, PhysicalModelShowsTheRoutabilityCliff)
{
    // §4.2: bus-width crossbars beyond ~8x8 are unroutable; 32-bit NoC
    // switches at radix 10 are fine.
    const Technology t = make_technology_65nm();
    Crossbar_params wide;
    wide.width_bits = 150; // a 100-200 wire bus port
    wide.masters = 8;
    wide.slaves = 8;
    const auto r8 = estimate_crossbar_phys(t, wide);
    wide.masters = 16;
    wide.slaves = 16;
    const auto r16 = estimate_crossbar_phys(t, wide);
    EXPECT_FALSE(r16.drc_feasible);
    EXPECT_GT(r8.max_row_utilization, r16.max_row_utilization);

    Crossbar_params noc_like;
    noc_like.width_bits = 32;
    noc_like.masters = 10;
    noc_like.slaves = 10;
    EXPECT_TRUE(estimate_crossbar_phys(t, noc_like).drc_feasible);
}

TEST(Wiring, BusNeeds100To200Wires)
{
    const Bus_wiring bus32; // defaults: 32-bit data paths
    EXPECT_GE(bus32.total_wires(), 100);
    Bus_wiring bus64 = bus32;
    bus64.write_data_bits = 64;
    bus64.read_data_bits = 64;
    EXPECT_LE(bus64.total_wires(), 200);
}

TEST(Wiring, NocLinkIsMuchNarrower)
{
    const Technology t = make_technology_65nm();
    const Bus_wiring bus;
    const Noc_link_wiring link; // 32-bit flits
    const auto cmp = compare_wiring(t, bus, link);
    EXPECT_GT(cmp.wire_reduction_factor, 2.5);
    EXPECT_LT(cmp.noc_area_mm2_per_mm, cmp.bus_area_mm2_per_mm);
    // Serialization price: 64 payload bits over 32 wires = 2 cycles.
    EXPECT_DOUBLE_EQ(cmp.noc_cycles_per_bus_beat, 2.0);
}

TEST(Wiring, CouplingGrowsWithParallelWires)
{
    const Technology t = make_technology_65nm();
    EXPECT_DOUBLE_EQ(coupling_pairs_per_mm(t, 1), 0.0);
    EXPECT_GT(coupling_pairs_per_mm(t, 148), coupling_pairs_per_mm(t, 37));
    EXPECT_THROW(coupling_pairs_per_mm(t, -1), std::invalid_argument);
}

TEST(BusDeterminism, SameSeedSameResult)
{
    Bus_params p;
    p.masters = 4;
    const auto a = simulate_shared_bus(p, 0.05, 8, 10'000, 42);
    const auto b = simulate_shared_bus(p, 0.05, 8, 10'000, 42);
    EXPECT_EQ(a.transfers, b.transfers);
    EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
}

} // namespace
} // namespace noc
