#include "flow/design_flow.h"
#include "traffic/app_graphs.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace noc {
namespace {

Flow_config vopd_flow()
{
    Flow_config cfg;
    cfg.spec.graph = make_vopd_graph();
    cfg.spec.tech = make_technology_65nm();
    cfg.spec.operating_points = {{1.0, 32}};
    cfg.spec.min_switches = 2;
    cfg.spec.max_switches = 5;
    cfg.validation_warmup = 500;
    cfg.validation_cycles = 5'000;
    return cfg;
}

TEST(DesignFlow, EndToEndOnVopd)
{
    const auto result = run_design_flow(vopd_flow());
    EXPECT_FALSE(result.synthesis.designs.empty());
    EXPECT_FALSE(result.pareto_indices.empty());
    EXPECT_LT(result.chosen, result.synthesis.designs.size());
    EXPECT_TRUE(result.rtl_check.ok);
    EXPECT_TRUE(result.validation.bandwidth_met);
    EXPECT_TRUE(result.validation.latency_met);
    // The report mentions the key stages.
    EXPECT_NE(result.report.find("Design space"), std::string::npos);
    EXPECT_NE(result.report.find("Chosen design"), std::string::npos);
    EXPECT_NE(result.report.find("PASSED"), std::string::npos);
}

TEST(DesignFlow, ValidateWithSimulationCrossChecksTheFront)
{
    const auto result = run_design_flow(vopd_flow());
    Sim_sweep_options opts;
    opts.bandwidth_scales = {0.5, 1.0};
    opts.warmup = 300;
    opts.measure = 3'000;
    opts.drain_limit = 20'000;
    opts.worker_threads = 2;
    const auto check =
        validate_with_simulation(result, vopd_flow(), opts);

    // One candidate per analytic-front design, each simulated.
    EXPECT_EQ(check.candidate_designs.size(), result.pareto_indices.size());
    ASSERT_FALSE(check.sim_front_designs.empty());
    for (const std::size_t i : check.sim_front_designs) {
        EXPECT_LT(i, result.synthesis.designs.size());
        // The simulated front is a subset of the analytic candidates.
        EXPECT_NE(std::find(check.candidate_designs.begin(),
                            check.candidate_designs.end(), i),
                  check.candidate_designs.end());
    }
    EXPECT_NE(std::find(check.candidate_designs.begin(),
                        check.candidate_designs.end(), check.sim_best),
              check.candidate_designs.end());
    // Serialized sweep + report carry the evidence.
    EXPECT_NE(check.sweep_json.find("\"curves\""), std::string::npos);
    EXPECT_NE(check.sweep_csv.find("avg_packet_latency"),
              std::string::npos);
    EXPECT_NE(check.report.find("Simulation cross-check"),
              std::string::npos);
    for (const std::size_t i : check.candidate_designs)
        EXPECT_NE(
            check.report.find(result.synthesis.designs[i].name),
            std::string::npos);
    // Determinism: the sweep serialization is worker-count independent.
    Sim_sweep_options serial_opts = opts;
    serial_opts.worker_threads = 1;
    const auto serial =
        validate_with_simulation(result, vopd_flow(), serial_opts);
    EXPECT_EQ(serial.sweep_json, check.sweep_json);
    EXPECT_EQ(serial.sim_front_designs, check.sim_front_designs);
    EXPECT_EQ(serial.sim_best, check.sim_best);
}

TEST(DesignFlow, ChosenDesignIsOnTheFront)
{
    const auto result = run_design_flow(vopd_flow());
    EXPECT_NE(std::find(result.pareto_indices.begin(),
                        result.pareto_indices.end(), result.chosen),
              result.pareto_indices.end());
}

TEST(DesignFlow, WeightsSteerTheChoice)
{
    Flow_config power_biased = vopd_flow();
    power_biased.validate_by_simulation = false;
    power_biased.power_weight = 1.0;
    power_biased.latency_weight = 0.0;
    Flow_config latency_biased = vopd_flow();
    latency_biased.validate_by_simulation = false;
    latency_biased.power_weight = 0.0;
    latency_biased.latency_weight = 1.0;

    const auto rp = run_design_flow(power_biased);
    const auto rl = run_design_flow(latency_biased);
    EXPECT_LE(rp.chosen_design().metrics.power_mw,
              rl.chosen_design().metrics.power_mw);
    EXPECT_GE(rp.chosen_design().metrics.latency_ns,
              rl.chosen_design().metrics.latency_ns);
}

TEST(DesignFlow, InfeasibleSpecThrowsWithReasons)
{
    Flow_config cfg = vopd_flow();
    cfg.spec.operating_points = {{2.5, 32}}; // beyond 65 nm router timing
    try {
        (void)run_design_flow(cfg);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("no feasible design"),
                  std::string::npos);
        EXPECT_NE(std::string{e.what()}.find("timing"), std::string::npos);
    }
}

TEST(DesignFlow, SkippingValidationSkipsSimulation)
{
    Flow_config cfg = vopd_flow();
    cfg.validate_by_simulation = false;
    const auto result = run_design_flow(cfg);
    EXPECT_FALSE(result.validation.drained); // untouched default
    EXPECT_TRUE(result.rtl_check.ok);
}

} // namespace
} // namespace noc
