#include "flow/design_flow.h"
#include "traffic/app_graphs.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace noc {
namespace {

Flow_config vopd_flow()
{
    Flow_config cfg;
    cfg.spec.graph = make_vopd_graph();
    cfg.spec.tech = make_technology_65nm();
    cfg.spec.operating_points = {{1.0, 32}};
    cfg.spec.min_switches = 2;
    cfg.spec.max_switches = 5;
    cfg.validation_warmup = 500;
    cfg.validation_cycles = 5'000;
    return cfg;
}

TEST(DesignFlow, EndToEndOnVopd)
{
    const auto result = run_design_flow(vopd_flow());
    EXPECT_FALSE(result.synthesis.designs.empty());
    EXPECT_FALSE(result.pareto_indices.empty());
    EXPECT_LT(result.chosen, result.synthesis.designs.size());
    EXPECT_TRUE(result.rtl_check.ok);
    EXPECT_TRUE(result.validation.bandwidth_met);
    EXPECT_TRUE(result.validation.latency_met);
    // The report mentions the key stages.
    EXPECT_NE(result.report.find("Design space"), std::string::npos);
    EXPECT_NE(result.report.find("Chosen design"), std::string::npos);
    EXPECT_NE(result.report.find("PASSED"), std::string::npos);
}

TEST(DesignFlow, ChosenDesignIsOnTheFront)
{
    const auto result = run_design_flow(vopd_flow());
    EXPECT_NE(std::find(result.pareto_indices.begin(),
                        result.pareto_indices.end(), result.chosen),
              result.pareto_indices.end());
}

TEST(DesignFlow, WeightsSteerTheChoice)
{
    Flow_config power_biased = vopd_flow();
    power_biased.validate_by_simulation = false;
    power_biased.power_weight = 1.0;
    power_biased.latency_weight = 0.0;
    Flow_config latency_biased = vopd_flow();
    latency_biased.validate_by_simulation = false;
    latency_biased.power_weight = 0.0;
    latency_biased.latency_weight = 1.0;

    const auto rp = run_design_flow(power_biased);
    const auto rl = run_design_flow(latency_biased);
    EXPECT_LE(rp.chosen_design().metrics.power_mw,
              rl.chosen_design().metrics.power_mw);
    EXPECT_GE(rp.chosen_design().metrics.latency_ns,
              rl.chosen_design().metrics.latency_ns);
}

TEST(DesignFlow, InfeasibleSpecThrowsWithReasons)
{
    Flow_config cfg = vopd_flow();
    cfg.spec.operating_points = {{2.5, 32}}; // beyond 65 nm router timing
    try {
        (void)run_design_flow(cfg);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("no feasible design"),
                  std::string::npos);
        EXPECT_NE(std::string{e.what()}.find("timing"), std::string::npos);
    }
}

TEST(DesignFlow, SkippingValidationSkipsSimulation)
{
    Flow_config cfg = vopd_flow();
    cfg.validate_by_simulation = false;
    const auto result = run_design_flow(cfg);
    EXPECT_FALSE(result.validation.drained); // untouched default
    EXPECT_TRUE(result.rtl_check.ok);
}

} // namespace
} // namespace noc
