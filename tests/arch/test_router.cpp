// Router-focused tests: wormhole integrity, GT priority, fairness, and
// failure injection on the flow-control margin machinery.
#include "arch/noc_system.h"
#include "topology/routing.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

/// Two sources share one output link; verify flits of different packets
/// never interleave within a VC (wormhole ownership).
TEST(Router, WormholePacketsNeverInterleaveWithinVc)
{
    Topology t{"y", 2};
    const Core_id a = t.attach_core(Switch_id{0});
    const Core_id b = t.attach_core(Switch_id{0});
    const Core_id sink = t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    Route_set routes = shortest_path_routes(t);
    Noc_system sys{std::move(t), std::move(routes), Network_params{}};

    // Track flit arrival order at the sink via packet ids: once a packet's
    // head arrives, no other packet's flit may arrive until its tail (all
    // on one VC, one ejection port).
    // The Ni's reassembly already asserts this (throws when a tail arrives
    // before the full packet); we just drive contention hard.
    for (int i = 0; i < 30; ++i) {
        sys.ni(a).enqueue_packet({sink, 8, Traffic_class::request, Flow_id{},
                                  Connection_id{}, 0},
                                 0);
        sys.ni(b).enqueue_packet({sink, 8, Traffic_class::request, Flow_id{},
                                  Connection_id{}, 0},
                                 0);
    }
    EXPECT_NO_THROW(sys.kernel().run(3'000));
    EXPECT_EQ(sys.stats().packets_delivered(), 60u);
}

TEST(Router, RoundRobinSharesALinkFairly)
{
    // Cores a and b flood a shared link; delivered flit counts must be
    // within a few percent of each other.
    Topology t{"y", 2};
    const Core_id a = t.attach_core(Switch_id{0});
    const Core_id b = t.attach_core(Switch_id{0});
    const Core_id sink = t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    Route_set routes = shortest_path_routes(t);
    Noc_system sys{std::move(t), std::move(routes), Network_params{}};
    sys.stats().set_measurement_window(0, 20'000);
    for (int i = 0; i < 2'000; ++i) {
        sys.ni(a).enqueue_packet({sink, 4, Traffic_class::request,
                                  Flow_id{0}, Connection_id{}, 0},
                                 0);
        sys.ni(b).enqueue_packet({sink, 4, Traffic_class::request,
                                  Flow_id{1}, Connection_id{}, 0},
                                 0);
    }
    sys.kernel().run(10'000);
    const auto fa = sys.stats().flow_flits_delivered(Flow_id{0});
    const auto fb = sys.stats().flow_flits_delivered(Flow_id{1});
    ASSERT_GT(fa, 1'000u);
    EXPECT_NEAR(static_cast<double>(fa) / static_cast<double>(fb), 1.0,
                0.05);
}

TEST(Router, GtFlitsPreemptBeArbitration)
{
    // A BE flood and a GT trickle share one link: the GT flits must cut
    // through with near-zero queueing while BE saturates.
    Network_params p;
    p.enable_gt = true;
    p.slot_table_length = 4;
    Topology t{"y", 2};
    const Core_id be_src = t.attach_core(Switch_id{0});
    const Core_id gt_src = t.attach_core(Switch_id{0});
    const Core_id sink = t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    Route_set routes = shortest_path_routes(t);
    Noc_system sys{std::move(t), std::move(routes), p};

    std::vector<Connection_id> table(4);
    table[1] = Connection_id{0};
    sys.ni(gt_src).set_slot_table(table);
    // Slot tables are per NI; the BE NI needs one too (all BE slots).
    sys.ni(be_src).set_slot_table(std::vector<Connection_id>(4));

    sys.stats().set_measurement_window(0, 10'000);
    for (int i = 0; i < 1'000; ++i)
        sys.ni(be_src).enqueue_packet({sink, 8, Traffic_class::request,
                                       Flow_id{0}, Connection_id{}, 0},
                                      0);
    sys.kernel().run(500); // let BE saturate the link first
    for (int i = 0; i < 50; ++i) {
        Packet_desc gt;
        gt.dst = sink;
        gt.size_flits = 1;
        gt.cls = Traffic_class::gt;
        gt.conn = Connection_id{0};
        gt.flow = Flow_id{9};
        sys.ni(gt_src).enqueue_packet(gt, sys.kernel().now());
        sys.kernel().run(40);
    }
    const auto& gt_lat = sys.stats().flow_latency(Flow_id{9});
    ASSERT_EQ(gt_lat.count(), 50u);
    // Worst case: wait for the owned slot (4) + pipeline (~5): ~9-10 cy,
    // despite a fully saturated BE backlog on the same physical link.
    EXPECT_LE(gt_lat.max(), 12.0);
}

TEST(Router, OccupancyAndActivityCountersAdvance)
{
    Mesh_params mp;
    mp.width = 2;
    mp.height = 2;
    Topology t = make_mesh(mp);
    Route_set routes = xy_routes(t, mp);
    Noc_system sys{std::move(t), std::move(routes), Network_params{}};
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(4));
    for (int c = 0; c < 4; ++c) {
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.3;
        sp.seed = 3 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Bernoulli_source>(
                Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
    }
    sys.kernel().run(2'000);
    EXPECT_GT(sys.total_flits_routed(), 1'000u);
    EXPECT_EQ(sys.total_router_buffer_writes(),
              sys.total_router_buffer_reads() +
                  [&] {
                      std::uint64_t held = 0;
                      for (int s = 0; s < 4; ++s)
                          held += sys.router(Switch_id{
                                                 static_cast<std::uint32_t>(
                                                     s)})
                                      .total_occupancy();
                      return held;
                  }());
    // Flit conservation at the link level: every link transfer was routed
    // by exactly one upstream router.
    std::uint64_t link_flits = 0;
    for (int l = 0; l < sys.topology().link_count(); ++l)
        link_flits +=
            sys.link_flits(Link_id{static_cast<std::uint32_t>(l)});
    EXPECT_LE(link_flits, sys.total_flits_routed());
}

/// Failure injection: an ON/OFF margin too small for the link round trip
/// must be caught by the buffer-overflow guard, not silently corrupt
/// state. Two upstream routers converge on one ejection port; the
/// downstream inputs are given margin 1 on 3-cycle links (round trip needs
/// 2 * 3 = 6), so the stale OFF signal arrives too late.
TEST(Router, OnOffMarginViolationIsDetected)
{
    Network_params p;
    p.fc = Flow_control_kind::on_off;
    p.buffer_depth = 4;

    Flit_pool pool;
    Flit_channel link_a{3, "link_a"};
    Token_channel link_a_fc{3, "link_a.fc"};
    Flit_channel link_b{3, "link_b"};
    Token_channel link_b_fc{3, "link_b.fc"};
    Flit_channel inj_a{1};
    Token_channel inj_a_fc{1};
    Flit_channel inj_b{1};
    Token_channel inj_b_fc{1};
    Flit_channel ej{1};

    Router up_a{Switch_id{0}, p, &pool, {{&inj_a, &inj_a_fc, 2}},
                {{&link_a, &link_a_fc, false}}};
    Router up_b{Switch_id{1}, p, &pool, {{&inj_b, &inj_b_fc, 2}},
                {{&link_b, &link_b_fc, false}}};
    // Downstream: two link inputs with the BROKEN margin of 1, one
    // ejection output they both contend for.
    Router down{Switch_id{2}, p, &pool,
                {{&link_a, &link_a_fc, 1}, {&link_b, &link_b_fc, 1}},
                {{&ej, nullptr, true}}};

    const Route route{{0, 0}, {0, 0}}; // out port 0 at both hops

    Sim_kernel k;
    for (Component* c :
         std::initializer_list<Component*>{&up_a, &up_b, &down, &link_a,
                                           &link_a_fc, &link_b, &link_b_fc,
                                           &inj_a, &inj_a_fc, &inj_b,
                                           &inj_b_fc, &ej})
        k.add(c);

    // Inject single-flit packets at full rate from both sides, honouring
    // our own injection-port flow control (so the only misconfigured hop
    // is the downstream link input).
    std::uint64_t seq = 0;
    auto inject = [&](Flit_channel& inj, Token_channel& fc) {
        if (fc.out() && (fc.out()->stop_mask & 1u)) return;
        const Flit_ref ref = pool.acquire();
        Flit& flit = pool[ref];
        flit.kind = Flit_kind::head_tail;
        flit.packet = Packet_id{seq++};
        flit.packet_size = 1;
        flit.route = &route;
        inj.write(ref);
    };
    EXPECT_THROW(
        {
            for (int t = 0; t < 300; ++t) {
                inject(inj_a, inj_a_fc);
                inject(inj_b, inj_b_fc);
                k.run(1);
            }
        },
        std::logic_error);
}

} // namespace
} // namespace noc
