// Ring_fifo: wrap-around correctness, logical-vs-physical capacity, growth,
// ordered middle erase, and the write/read counters that feed the power
// model (they must keep the exact semantics Bounded_fifo had).
#include "arch/ring_fifo.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(RingFifo, FifoOrderAcrossManyWraps)
{
    Ring_fifo<int> f{4};
    int next_in = 0;
    int next_out = 0;
    // Staggered pushes/pops force the head/tail positions through many
    // wrap-arounds of the 4-slot physical ring.
    for (int round = 0; round < 100; ++round) {
        while (!f.full()) f.push(next_in++);
        EXPECT_EQ(f.size(), 4u);
        for (int k = 0; k < 3; ++k) EXPECT_EQ(f.pop(), next_out++);
    }
    EXPECT_EQ(f.write_count(), static_cast<std::uint64_t>(next_in));
    EXPECT_EQ(f.read_count(), static_cast<std::uint64_t>(next_out));
}

TEST(RingFifo, LogicalCapacityCanBeBelowPhysical)
{
    // Depth 6 occupies an 8-slot ring but must report full at 6 — the
    // buffer_depth parameter is not constrained to powers of two.
    Ring_fifo<int> f{6};
    EXPECT_EQ(f.capacity(), 6u);
    for (int i = 0; i < 6; ++i) {
        EXPECT_FALSE(f.full());
        EXPECT_EQ(f.free_slots(), 6u - static_cast<std::size_t>(i));
        f.push(i);
    }
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.free_slots(), 0u);
    EXPECT_EQ(f.front(), 0);
}

TEST(RingFifo, GrowablePreservesOrderAcrossGrowthMidWrap)
{
    Ring_fifo<int> f{2, /*growable=*/true};
    // Offset the head so growth happens with a wrapped ring.
    f.push(-2);
    f.push(-1);
    (void)f.pop();
    (void)f.pop();
    for (int i = 0; i < 40; ++i) f.push(i); // several doublings
    EXPECT_EQ(f.size(), 40u);
    EXPECT_FALSE(f.full()); // growable rings are never full
    for (int i = 0; i < 40; ++i) EXPECT_EQ(f.pop(), i);
    EXPECT_TRUE(f.empty());
}

TEST(RingFifo, IndexAndEraseAtKeepOrder)
{
    Ring_fifo<int> f{8};
    for (int i = 0; i < 5; ++i) f.push(i);
    EXPECT_EQ(f[0], 0);
    EXPECT_EQ(f[4], 4);
    EXPECT_EQ(f.erase_at(2), 2); // remove the middle element
    EXPECT_EQ(f.size(), 4u);
    EXPECT_EQ(f.pop(), 0);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_EQ(f.pop(), 4);
}

TEST(RingFifo, CountersFeedThePowerModel)
{
    // write_count/read_count are lifetime totals: erase_at counts as a read
    // (the slot was drained), growth copies do not count at all.
    Ring_fifo<int> f{2, /*growable=*/true};
    for (int i = 0; i < 8; ++i) f.push(i);
    EXPECT_EQ(f.write_count(), 8u);
    (void)f.pop();
    (void)f.erase_at(0);
    EXPECT_EQ(f.read_count(), 2u);
    EXPECT_EQ(f.write_count(), 8u);
}

#ifdef NOC_DEBUG
TEST(RingFifo, DebugBuildCatchesOverflowAndUnderflow)
{
    Ring_fifo<int> f{2};
    EXPECT_THROW((void)f.front(), std::logic_error);
    EXPECT_THROW((void)f.pop(), std::logic_error);
    f.push(1);
    f.push(2);
    EXPECT_THROW(f.push(3), std::logic_error);
    EXPECT_THROW((void)f[2], std::logic_error);
}
#endif

} // namespace
} // namespace noc
