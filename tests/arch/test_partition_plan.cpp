// Partition_plan unit tests: the contiguous plan must reproduce the legacy
// equal-count cut exactly, and the balanced plan must equalize block weight
// to within one maximum switch weight of the ideal (the linear-partition
// bound) while keeping blocks contiguous and every shard non-empty.
#include "arch/partition_plan.h"
#include "topology/mesh.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace noc {
namespace {

/// Max block-weight of an assignment, plus structural checks.
std::uint64_t check_blocks(const std::vector<std::uint32_t>& shard_of,
                           const std::vector<std::uint64_t>& weights,
                           std::uint32_t expected_shards)
{
    EXPECT_EQ(shard_of.size(), weights.size());
    std::uint32_t prev = 0;
    std::vector<std::uint64_t> block(expected_shards, 0);
    std::vector<bool> seen(expected_shards, false);
    for (std::size_t s = 0; s < shard_of.size(); ++s) {
        EXPECT_GE(shard_of[s], prev) << "blocks must be contiguous";
        EXPECT_LE(shard_of[s] - prev, 1u) << "shard ids must be dense";
        prev = shard_of[s];
        EXPECT_LT(shard_of[s], expected_shards);
        if (shard_of[s] >= expected_shards) return 0;
        block[shard_of[s]] += weights[s];
        seen[shard_of[s]] = true;
    }
    for (std::uint32_t sh = 0; sh < expected_shards; ++sh)
        EXPECT_TRUE(seen[sh]) << "shard " << sh << " empty";
    return *std::max_element(block.begin(), block.end());
}

TEST(PartitionPlan, ContiguousReproducesLegacyEqualCountCut)
{
    const std::uint32_t switches = 16;
    for (const std::uint32_t n : {1u, 2u, 3u, 4u, 7u}) {
        const auto shard_of = Partition_plan::contiguous(n).assign(switches);
        for (std::uint32_t s = 0; s < switches; ++s)
            EXPECT_EQ(shard_of[s],
                      static_cast<std::uint32_t>(
                          static_cast<std::uint64_t>(s) * n / switches))
                << "switch " << s << " at " << n << " shards";
    }
}

TEST(PartitionPlan, ClampsToSwitchCount)
{
    const auto shard_of = Partition_plan::contiguous(64).assign(3);
    EXPECT_EQ(shard_of, (std::vector<std::uint32_t>{0, 1, 2}));
    const auto balanced =
        Partition_plan::balanced(64, {5, 1, 1}).assign(3);
    EXPECT_EQ(balanced, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(PartitionPlan, BalancedEqualizesWithinOneMaxSwitchWeight)
{
    // Several adversarial weight shapes: hotspot front, hotspot back,
    // sawtooth, one giant, uniform.
    const std::vector<std::vector<std::uint64_t>> shapes = {
        {100, 90, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
        {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 90, 100},
        {9, 1, 8, 2, 7, 3, 6, 4, 5, 5, 4, 6, 3, 7, 2, 8},
        {1, 1, 1, 1000, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
        std::vector<std::uint64_t>(16, 7),
    };
    for (const auto& w : shapes) {
        const std::uint64_t total =
            std::accumulate(w.begin(), w.end(), std::uint64_t{0});
        const std::uint64_t wmax = *std::max_element(w.begin(), w.end());
        for (const std::uint32_t n : {2u, 3u, 4u, 8u}) {
            const auto shard_of = Partition_plan::balanced(n, w).assign(
                static_cast<std::uint32_t>(w.size()));
            const std::uint64_t max_block = check_blocks(shard_of, w, n);
            // The satellite bound: within one max switch weight of ideal.
            EXPECT_LE(max_block, total / n + wmax)
                << n << " shards, shape total " << total;
        }
    }
}

TEST(PartitionPlan, BalancedBeatsContiguousOnSkewedWeights)
{
    // Front-loaded weights: the equal-count cut piles the load on shard 0.
    std::vector<std::uint64_t> w(16, 1);
    w[0] = 50;
    w[1] = 40;
    const std::uint64_t contiguous_max = check_blocks(
        Partition_plan::contiguous(4).assign(16), w, 4);
    const std::uint64_t balanced_max = check_blocks(
        Partition_plan::balanced(4, w).assign(16), w, 4);
    EXPECT_LT(balanced_max, contiguous_max);
}

TEST(PartitionPlan, AllZeroWeightsDegradeToContiguous)
{
    const auto zero = Partition_plan::balanced(
                          4, std::vector<std::uint64_t>(16, 0))
                          .assign(16);
    EXPECT_EQ(zero, Partition_plan::contiguous(4).assign(16));
}

TEST(PartitionPlan, ErrorPaths)
{
    EXPECT_THROW((void)Partition_plan::contiguous(0), std::invalid_argument);
    EXPECT_THROW((void)Partition_plan::balanced(0, {1, 2}),
                 std::invalid_argument);
    EXPECT_THROW((void)Partition_plan::balanced(2, {}),
                 std::invalid_argument);
    // Weight vector must match the switch count it is resolved against.
    EXPECT_THROW((void)Partition_plan::balanced(2, {1, 2, 3}).assign(4),
                 std::invalid_argument);
    EXPECT_THROW((void)Partition_plan::contiguous(2).assign(0),
                 std::invalid_argument);
}

TEST(PartitionPlan, RouteWeightEstimateCountsTraversals)
{
    // 2x1 mesh, 2 cores: routes 0->1 and 1->0, each crossing both switches
    // (source switch + destination switch with its ejection hop).
    Mesh_params mp;
    mp.width = 2;
    mp.height = 1;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const auto w = route_weight_estimate(topo, routes);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 2u); // 0->1 starts here, 1->0 ejects here
    EXPECT_EQ(w[1], 2u);
    // Estimates are valid balanced-plan weights.
    const auto shard_of = Partition_plan::balanced(2, w).assign(2);
    EXPECT_EQ(shard_of, (std::vector<std::uint32_t>{0, 1}));
}

} // namespace
} // namespace noc
