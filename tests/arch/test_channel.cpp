#include "arch/channel.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(PipelineChannel, RejectsZeroLatency)
{
    EXPECT_THROW(Pipeline_channel<int>(0), std::invalid_argument);
}

TEST(PipelineChannel, LatencyOneDelaysExactlyOneCycle)
{
    Pipeline_channel<int> ch{1};
    EXPECT_FALSE(ch.out().has_value());
    ch.write(42);
    EXPECT_FALSE(ch.out().has_value()); // not visible same cycle
    ch.advance();
    ASSERT_TRUE(ch.out().has_value());
    EXPECT_EQ(*ch.out(), 42);
    ch.advance();
    EXPECT_FALSE(ch.out().has_value()); // one cycle only
}

TEST(PipelineChannel, LatencyThreePipelines)
{
    Pipeline_channel<int> ch{3};
    // Stream 0,1,2,... and observe them 3 advances later, in order.
    for (int cycle = 0; cycle < 10; ++cycle) {
        ch.write(cycle);
        ch.advance();
        if (cycle >= 3) {
            ASSERT_TRUE(ch.out().has_value());
            EXPECT_EQ(*ch.out(), cycle - 2); // written at cycle-2, seen now
        }
    }
}

TEST(PipelineChannel, BubblesPropagate)
{
    Pipeline_channel<int> ch{2};
    ch.write(1);
    ch.advance(); // slot A
    ch.advance(); // bubble written this cycle
    ASSERT_TRUE(ch.out().has_value());
    EXPECT_EQ(*ch.out(), 1);
    ch.advance();
    EXPECT_FALSE(ch.out().has_value()); // the bubble
}

TEST(PipelineChannel, DoubleWriteThrows)
{
    Pipeline_channel<int> ch{1};
    ch.write(1);
    EXPECT_THROW(ch.write(2), std::logic_error);
}

TEST(PipelineChannel, TransferCounter)
{
    Pipeline_channel<int> ch{1, "x"};
    EXPECT_EQ(ch.transfer_count(), 0u);
    ch.count_transfer();
    ch.count_transfer();
    EXPECT_EQ(ch.transfer_count(), 2u);
    EXPECT_EQ(ch.name(), "x");
    EXPECT_EQ(ch.latency(), 1);
}

} // namespace
} // namespace noc
