// End-to-end network integration: zero-load latency exactness, packet
// conservation, per-pair ordering, determinism — across topology x flow
// control x VC configurations.
#include "arch/noc_system.h"
#include "arch/ocp.h"
#include "topology/routing.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <map>

namespace noc {
namespace {

/// Emits `count` fixed-size packets to destinations from a pattern, one
/// every `gap` cycles; silent afterwards. Lets tests drain to a completely
/// idle network so conservation can be checked exactly.
class Finite_source final : public Traffic_source {
public:
    Finite_source(Core_id self, int count, Cycle gap, std::uint32_t size,
                  std::shared_ptr<const Dest_pattern> pattern,
                  std::uint64_t seed)
        : self_{self},
          remaining_{count},
          gap_{gap},
          size_{size},
          pattern_{std::move(pattern)},
          rng_{seed}
    {
    }

    std::optional<Packet_desc> poll(Cycle now) override
    {
        if (remaining_ <= 0 || now < next_) return std::nullopt;
        next_ = now + gap_;
        --remaining_;
        Packet_desc d;
        d.dst = pattern_->pick(self_, rng_);
        d.size_flits = size_;
        return d;
    }

private:
    Core_id self_;
    int remaining_;
    Cycle gap_;
    Cycle next_ = 0;
    std::uint32_t size_;
    std::shared_ptr<const Dest_pattern> pattern_;
    Rng rng_;
};

struct Net_case {
    std::string name;
    std::function<std::pair<Topology, Route_set>()> build;
    Network_params params;
};

Network_params base_params(Flow_control_kind fc, int route_vcs)
{
    Network_params p;
    p.fc = fc;
    p.route_vcs = route_vcs;
    p.buffer_depth = fc == Flow_control_kind::on_off ? 8 : 4;
    p.output_buffer_depth = 8;
    return p;
}

std::vector<Net_case> net_cases()
{
    std::vector<Net_case> cases;
    auto mesh44 = [] {
        Mesh_params p;
        p.width = 4;
        p.height = 4;
        Topology t = make_mesh(p);
        Route_set r = xy_routes(t, p);
        return std::pair{std::move(t), std::move(r)};
    };
    cases.push_back({"mesh44_credit", mesh44,
                     base_params(Flow_control_kind::credit, 1)});
    cases.push_back({"mesh44_onoff", mesh44,
                     base_params(Flow_control_kind::on_off, 1)});
    cases.push_back({"mesh44_acknack", mesh44,
                     base_params(Flow_control_kind::ack_nack, 1)});
    cases.push_back({"torus44_credit",
                     [] {
                         Torus_params p;
                         p.width = 4;
                         p.height = 4;
                         Topology t = make_torus(p);
                         Route_set r = torus_routes(t, p);
                         return std::pair{std::move(t), std::move(r)};
                     },
                     base_params(Flow_control_kind::credit, 2)});
    cases.push_back({"spidergon12_credit",
                     [] {
                         Spidergon_params p;
                         p.node_count = 12;
                         Topology t = make_spidergon(p);
                         Route_set r = spidergon_routes(t, p);
                         return std::pair{std::move(t), std::move(r)};
                     },
                     base_params(Flow_control_kind::credit, 2)});
    cases.push_back({"fat_tree42_onoff",
                     [] {
                         Fat_tree ft = make_fat_tree({4, 2, 1.0});
                         Route_set r =
                             updown_routes(ft.topology, ft.switch_rank);
                         return std::pair{std::move(ft.topology),
                                          std::move(r)};
                     },
                     base_params(Flow_control_kind::on_off, 1)});
    cases.push_back({"bone_star_credit",
                     [] {
                         Star_params p;
                         p.clusters = 5;
                         p.cores_per_cluster = 2;
                         p.cores_at_root = 8;
                         p.root_count = 2;
                         Star s = make_star(p);
                         Route_set r =
                             updown_routes(s.topology, s.switch_rank);
                         return std::pair{std::move(s.topology),
                                          std::move(r)};
                     },
                     base_params(Flow_control_kind::credit, 1)});
    return cases;
}

class NetworkProperty : public ::testing::TestWithParam<Net_case> {};

/// Finite workload: every packet created must be delivered exactly once,
/// with per-(src,dst) packet ids strictly increasing (wormhole preserves
/// per-pair order under deterministic routing).
TEST_P(NetworkProperty, ConservationAndOrdering)
{
    auto [topo, routes] = GetParam().build();
    Noc_system sys{std::move(topo), std::move(routes), GetParam().params};
    const auto& t = sys.topology();

    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(t.core_count()));
    for (int c = 0; c < t.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        sys.ni(core).set_source(std::make_unique<Finite_source>(
            core, 40, 7, 4, pattern, 1000 + static_cast<std::uint64_t>(c)));
    }

    // Per-destination, per-source: last packet id seen (ordering check).
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> last_pid;
    bool order_ok = true;
    for (int c = 0; c < t.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        sys.ni(core).set_delivery_listener(
            [&last_pid, &order_ok, c](const Flit& tail, Cycle) {
                const auto key = std::pair{tail.src.get(),
                                           static_cast<std::uint32_t>(c)};
                const auto it = last_pid.find(key);
                if (it != last_pid.end() && tail.packet.get() <= it->second)
                    order_ok = false;
                last_pid[key] = tail.packet.get();
            });
    }

    const bool done = sys.kernel().run_until(
        [&] {
            if (sys.stats().packets_in_flight() != 0) return false;
            for (int c = 0; c < sys.topology().core_count(); ++c)
                if (!sys.ni(Core_id{static_cast<std::uint32_t>(c)}).idle())
                    return false;
            return true;
        },
        200'000);

    ASSERT_TRUE(done) << "network failed to drain (possible deadlock)";
    EXPECT_EQ(sys.stats().packets_created(),
              static_cast<std::uint64_t>(40 * t.core_count()));
    EXPECT_EQ(sys.stats().packets_created(), sys.stats().packets_delivered());
    EXPECT_TRUE(order_ok) << "per-pair delivery order violated";
}

/// Two identical runs must produce bit-identical statistics.
TEST_P(NetworkProperty, Deterministic)
{
    auto run_once = [&]() {
        auto [topo, routes] = GetParam().build();
        Noc_system sys{std::move(topo), std::move(routes),
                       GetParam().params};
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(sys.topology().core_count()));
        for (int c = 0; c < sys.topology().core_count(); ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = 0.1;
            sp.packet_size_flits = 4;
            sp.seed = 7 + static_cast<std::uint64_t>(c);
            sys.ni(core).set_source(
                std::make_unique<Bernoulli_source>(core, sp, pattern));
        }
        sys.warmup(500);
        sys.measure(2'000);
        return std::tuple{sys.stats().measured_delivered(),
                          sys.stats().packet_latency().mean(),
                          sys.stats().packet_latency().max()};
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, NetworkProperty, ::testing::ValuesIn(net_cases()),
    [](const ::testing::TestParamInfo<Net_case>& info) {
        return info.param.name;
    });

TEST(NetworkLatency, ZeroLoadLatencyIsExact)
{
    // Two switches in a line, one core each: h routers -> 2h+1 cycles for a
    // single flit (1 cycle per link, 2 per router incl. buffering, 1 eject).
    Topology t{"line2", 2};
    const Core_id a = t.attach_core(Switch_id{0});
    const Core_id b = t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    Route_set routes = shortest_path_routes(t);

    Network_params params;
    Noc_system sys{std::move(t), std::move(routes), params};
    sys.stats().set_measurement_window(0, 10);
    sys.ni(a).enqueue_packet({b, 1, Traffic_class::request, Flow_id{0},
                              Connection_id{}, 0},
                             0);
    // NI steps at cycle 0 enqueues... enqueue_packet was called before run;
    // injection happens at cycle 0.
    ASSERT_TRUE(sys.drain(100));
    EXPECT_EQ(sys.stats().measured_delivered(), 1u);
    EXPECT_DOUBLE_EQ(sys.stats().packet_latency().mean(), 5.0);
}

TEST(NetworkLatency, MultiFlitPacketAddsSerialization)
{
    Topology t{"line2", 2};
    const Core_id a = t.attach_core(Switch_id{0});
    const Core_id b = t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    Route_set routes = shortest_path_routes(t);
    Noc_system sys{std::move(t), std::move(routes), Network_params{}};
    sys.stats().set_measurement_window(0, 10);
    sys.ni(a).enqueue_packet({b, 4, Traffic_class::request, Flow_id{0},
                              Connection_id{}, 0},
                             0);
    ASSERT_TRUE(sys.drain(100));
    // Head takes 5 cycles; 3 more flits pipeline one per cycle.
    EXPECT_DOUBLE_EQ(sys.stats().packet_latency().mean(), 8.0);
}

TEST(NetworkLatency, PipelinedLinkAddsItsStages)
{
    Topology t{"line2p", 2};
    const Core_id a = t.attach_core(Switch_id{0});
    const Core_id b = t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1}, 2); // 3-cycle link
    Route_set routes = shortest_path_routes(t);
    Noc_system sys{std::move(t), std::move(routes), Network_params{}};
    sys.stats().set_measurement_window(0, 10);
    sys.ni(a).enqueue_packet({b, 1, Traffic_class::request, Flow_id{0},
                              Connection_id{}, 0},
                             0);
    ASSERT_TRUE(sys.drain(100));
    EXPECT_DOUBLE_EQ(sys.stats().packet_latency().mean(), 7.0);
}

TEST(NocSystem, RejectsRouteVcOverBudget)
{
    Topology t{"line2", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    Route_set routes{2};
    Route r0;
    r0.push_back({t.output_port_of_link(Link_id{0}).get(), 1}); // vc 1
    r0.push_back({t.ejection_port_of_core(Core_id{1}).get(), 0});
    routes.set(Core_id{0}, Core_id{1}, r0);
    Route r1;
    r1.push_back({t.output_port_of_link(Link_id{1}).get(), 0});
    r1.push_back({t.ejection_port_of_core(Core_id{0}).get(), 0});
    routes.set(Core_id{1}, Core_id{0}, r1);

    Network_params p; // route_vcs = 1
    EXPECT_THROW((Noc_system{t, routes, p}), std::invalid_argument);
}

TEST(NocSystem, RejectsMissingRoute)
{
    Topology t{"line2", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    Route_set routes{2}; // all empty
    EXPECT_THROW((Noc_system{t, routes, Network_params{}}),
                 std::invalid_argument);
}

TEST(NocSystem, OnOffRequiresRoundTripBuffers)
{
    Topology t{"line2", 2};
    t.attach_core(Switch_id{0});
    t.attach_core(Switch_id{1});
    t.add_bidir_link(Switch_id{0}, Switch_id{1}, 3); // 4-cycle link
    Route_set routes = shortest_path_routes(t);
    Network_params p;
    p.fc = Flow_control_kind::on_off;
    p.buffer_depth = 4; // needs >= 2*4+2 = 10
    EXPECT_THROW((Noc_system{t, routes, p}), std::invalid_argument);
    p.buffer_depth = 10;
    EXPECT_NO_THROW((Noc_system{t, routes, p}));
}

TEST(ClosedLoop, OcpMastersCompleteAgainstSlaves)
{
    // 2x2 mesh: cores 0,1 are masters, cores 2,3 memory slaves. Responses
    // ride a separate VC class, so the request/response cycle cannot
    // deadlock (message-dependent deadlock avoidance).
    Mesh_params mp;
    mp.width = 2;
    mp.height = 2;
    Topology t = make_mesh(mp);
    Route_set routes = xy_routes(t, mp);
    Network_params p;
    p.separate_response_class = true;
    Noc_system sys{std::move(t), std::move(routes), p};

    std::vector<Ocp_master_source*> masters;
    for (int m = 0; m < 2; ++m) {
        const Core_id core{static_cast<std::uint32_t>(m)};
        Ocp_master_source::Params op;
        op.slaves = {Core_id{2}, Core_id{3}};
        op.max_outstanding = 4;
        op.seed = 11 + static_cast<std::uint64_t>(m);
        auto src = std::make_unique<Ocp_master_source>(op);
        masters.push_back(src.get());
        Ocp_master_source* raw = src.get();
        sys.ni(core).set_source(std::move(src));
        sys.ni(core).set_delivery_listener(
            [raw](const Flit& tail, Cycle now) {
                raw->notify_response(tail.src, now);
            });
    }
    for (int s = 2; s < 4; ++s)
        sys.ni(Core_id{static_cast<std::uint32_t>(s)}).set_reply_latency(5);

    sys.kernel().run(20'000);
    for (auto* m : masters) {
        EXPECT_GT(m->transactions_completed(), 100u);
        EXPECT_LE(m->outstanding(), 4);
        EXPECT_GT(m->round_trip().mean(), 10.0);
    }
}

} // namespace
} // namespace noc
