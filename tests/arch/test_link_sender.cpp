#include "arch/link_sender.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

/// Pool + a factory for pooled flits: what Ni::enqueue_packet does, boiled
/// down to the fields link-level flow control looks at.
struct Flit_rig {
    Flit_pool pool;

    Flit_ref make_flit(std::uint16_t vc = 0)
    {
        const Flit_ref ref = pool.acquire();
        pool[ref].vc = vc;
        return ref;
    }
};

Network_params credit_params()
{
    Network_params p;
    p.fc = Flow_control_kind::credit;
    p.buffer_depth = 2;
    return p;
}

TEST(LinkSender, NullDependenciesRejected)
{
    Flit_rig rig;
    Flit_channel data{1};
    EXPECT_THROW(Link_sender(credit_params(), nullptr, &data, nullptr, false),
                 std::invalid_argument);
    EXPECT_THROW(Link_sender(credit_params(), &rig.pool, nullptr, nullptr,
                             false),
                 std::invalid_argument);
    EXPECT_THROW(Link_sender(credit_params(), &rig.pool, &data, nullptr,
                             false),
                 std::invalid_argument);
    // Ejection may omit the token channel.
    EXPECT_NO_THROW(
        Link_sender(credit_params(), &rig.pool, &data, nullptr, true));
}

TEST(LinkSender, CreditsDecrementAndReplenish)
{
    Flit_rig rig;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{credit_params(), &rig.pool, &data, &tokens, false};

    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0));
    s.send(rig.make_flit());
    data.advance();
    tokens.advance();

    s.begin_cycle();
    s.send(rig.make_flit());
    data.advance();
    tokens.advance();

    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0)); // depth 2 exhausted
    EXPECT_EQ(s.credits(0), 0);

    // Downstream returns one credit.
    tokens.write(Fc_token{Fc_token::Kind::credit, 0, 0, 0});
    data.advance();
    tokens.advance();
    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0));
    EXPECT_EQ(s.credits(0), 1);
}

TEST(LinkSender, PerVcCreditsIndependent)
{
    Flit_rig rig;
    Network_params p = credit_params();
    p.route_vcs = 2;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{p, &rig.pool, &data, &tokens, false};
    s.begin_cycle();
    s.send(rig.make_flit(0));
    data.advance();
    s.begin_cycle();
    s.send(rig.make_flit(0));
    data.advance();
    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0));
    EXPECT_TRUE(s.can_send(1));
}

TEST(LinkSender, SecondSendSameCycleReportedUnavailable)
{
    // The two-sends-per-cycle and send-without-credit guards are NOC_DEBUG
    // assertions now (hot path); the release-mode contract is that
    // can_send() reports the port unavailable and callers check it.
    Flit_rig rig;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{credit_params(), &rig.pool, &data, &tokens, false};
    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0));
    s.send(rig.make_flit());
    EXPECT_FALSE(s.can_send(0));
    EXPECT_FALSE(s.can_send(1)); // the per-cycle limit is port-wide
}

TEST(LinkSender, OnOffRespectsStopMask)
{
    Flit_rig rig;
    Network_params p;
    p.fc = Flow_control_kind::on_off;
    p.route_vcs = 2;
    p.buffer_depth = 8;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{p, &rig.pool, &data, &tokens, false};

    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0)); // default: all on
    tokens.write(Fc_token{Fc_token::Kind::on_off_mask, 0, 0b01, 0});
    tokens.advance();
    data.advance();
    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0));
    EXPECT_TRUE(s.can_send(1));
}

Network_params acknack_params()
{
    Network_params p;
    p.fc = Flow_control_kind::ack_nack;
    p.route_vcs = 1;
    p.output_buffer_depth = 4;
    return p;
}

TEST(LinkSender, AckNackWindowLimitsAndAckFrees)
{
    Flit_rig rig;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{acknack_params(), &rig.pool, &data, &tokens, false};

    // Fill the window of 4: all are buffered and streamed one per cycle.
    // Each transmission is an owned wire COPY; this test plays the receiver
    // and releases each one after inspecting it (see arch/flit.h).
    for (int i = 0; i < 4; ++i) {
        s.begin_cycle();
        ASSERT_TRUE(s.can_send(0));
        s.send(rig.make_flit());
        s.end_cycle();
        data.advance();
        tokens.advance();
        ASSERT_TRUE(data.out().has_value());
        EXPECT_EQ(rig.pool[*data.out()].link_seq,
                  static_cast<std::uint32_t>(i));
        rig.pool.release(*data.out());
    }
    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0)); // window full
    EXPECT_EQ(s.output_buffer_occupancy(), 4u);
    EXPECT_EQ(rig.pool.live(), 4u); // the window owns every slot

    // Cumulative ack for seq 1 frees two slots — in the window AND in the
    // pool (the sender releases retired handles).
    tokens.write(Fc_token{Fc_token::Kind::ack, 0, 0, 1});
    data.advance();
    tokens.advance();
    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0));
    EXPECT_EQ(s.output_buffer_occupancy(), 2u);
    EXPECT_EQ(rig.pool.live(), 2u);
}

TEST(LinkSender, NackRewindsAndRetransmits)
{
    Flit_rig rig;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{acknack_params(), &rig.pool, &data, &tokens, false};

    for (int i = 0; i < 3; ++i) {
        s.begin_cycle();
        s.send(rig.make_flit());
        s.end_cycle();
        data.advance();
        tokens.advance();
    }
    EXPECT_EQ(s.retransmissions(), 0u);
    EXPECT_TRUE(s.is_quiescent()); // caught up: nothing left to transmit

    // NACK for seq 0: everything must be resent from 0.
    tokens.write(Fc_token{Fc_token::Kind::nack, 0, 0, 0});
    data.advance();
    tokens.advance();
    EXPECT_FALSE(s.is_quiescent()); // the rewind re-created work
    for (std::uint32_t expect_seq = 0; expect_seq < 3; ++expect_seq) {
        s.begin_cycle();
        s.end_cycle();
        data.advance();
        tokens.advance();
        ASSERT_TRUE(data.out().has_value());
        EXPECT_EQ(rig.pool[*data.out()].link_seq, expect_seq);
    }
    EXPECT_EQ(s.retransmissions(), 3u);
}

TEST(LinkSender, EjectionAlwaysAccepts)
{
    Flit_rig rig;
    Flit_channel data{1};
    Link_sender s{credit_params(), &rig.pool, &data, nullptr, true};
    for (int i = 0; i < 10; ++i) {
        s.begin_cycle();
        EXPECT_TRUE(s.can_send(0));
        s.send(rig.make_flit());
        data.advance();
    }
    EXPECT_EQ(s.flits_sent(), 10u);
}

/// Always-asleep component: under gating it is descheduled after every
/// step, so the kernel's active count observes sender-initiated wakes.
class Sleepy_owner final : public Component {
public:
    void step(Cycle) override {}
    [[nodiscard]] bool is_quiescent() const override { return true; }
};

/// The saturated fast path's wake contract: while wake_on_token is armed,
/// state-changing tokens re-arm the owner; an unchanged ON/OFF republish
/// never does (an active downstream router emits one per cycle).
TEST(LinkSender, TokenWakeHooksOnOffMask)
{
    Flit_rig rig;
    Network_params p;
    p.fc = Flow_control_kind::on_off;
    p.buffer_depth = 8;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{p, &rig.pool, &data, &tokens, false};

    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    Sleepy_owner owner;
    k.add(&owner);
    s.set_wake_target(&owner);
    k.run(1);
    ASSERT_EQ(k.active_component_count(), 0u);

    // Unarmed: tokens fold silently, no wake.
    s.deliver(Fc_token{Fc_token::Kind::on_off_mask, 0, 0b1, 0});
    EXPECT_FALSE(s.can_send(0));
    EXPECT_EQ(k.active_component_count(), 0u);

    s.set_wake_on_token(true);
    s.deliver(Fc_token{Fc_token::Kind::on_off_mask, 0, 0b1, 0}); // unchanged
    EXPECT_EQ(k.active_component_count(), 0u);
    s.deliver(Fc_token{Fc_token::Kind::on_off_mask, 0, 0, 0}); // change
    EXPECT_EQ(k.active_component_count(), 1u);
    EXPECT_TRUE(s.can_send(0));
}

/// A NACK that rewinds the window re-arms the owner even when the blocked
/// memo is NOT armed — it creates retransmission work out of thin air, and
/// the owner may be sleeping with a caught-up window.
TEST(LinkSender, NackAlwaysWakesOwner)
{
    Flit_rig rig;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{acknack_params(), &rig.pool, &data, &tokens, false};

    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    Sleepy_owner owner;
    k.add(&owner);
    s.set_wake_target(&owner);
    k.run(1);
    ASSERT_EQ(k.active_component_count(), 0u);

    for (int i = 0; i < 2; ++i) {
        s.begin_cycle();
        s.send(rig.make_flit());
        s.end_cycle();
        data.advance();
    }
    ASSERT_TRUE(s.is_quiescent());

    // An ACK while unarmed retires slots without waking anyone.
    s.deliver(Fc_token{Fc_token::Kind::ack, 0, 0, 0});
    EXPECT_EQ(k.active_component_count(), 0u);

    s.deliver(Fc_token{Fc_token::Kind::nack, 0, 0, 1});
    EXPECT_FALSE(s.is_quiescent());
    EXPECT_EQ(k.active_component_count(), 1u);
}

} // namespace
} // namespace noc
