#include "arch/link_sender.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

Flit make_flit(std::uint16_t vc = 0)
{
    Flit f;
    f.vc = vc;
    return f;
}

Network_params credit_params()
{
    Network_params p;
    p.fc = Flow_control_kind::credit;
    p.buffer_depth = 2;
    return p;
}

TEST(LinkSender, NullChannelsRejected)
{
    Flit_channel data{1};
    EXPECT_THROW(Link_sender(credit_params(), nullptr, nullptr, false),
                 std::invalid_argument);
    EXPECT_THROW(Link_sender(credit_params(), &data, nullptr, false),
                 std::invalid_argument);
    // Ejection may omit the token channel.
    EXPECT_NO_THROW(Link_sender(credit_params(), &data, nullptr, true));
}

TEST(LinkSender, CreditsDecrementAndReplenish)
{
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{credit_params(), &data, &tokens, false};

    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0));
    s.send(make_flit());
    data.advance();
    tokens.advance();

    s.begin_cycle();
    s.send(make_flit());
    data.advance();
    tokens.advance();

    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0)); // depth 2 exhausted
    EXPECT_EQ(s.credits(0), 0);

    // Downstream returns one credit.
    tokens.write(Fc_token{Fc_token::Kind::credit, 0, 0, 0});
    data.advance();
    tokens.advance();
    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0));
    EXPECT_EQ(s.credits(0), 1);
}

TEST(LinkSender, PerVcCreditsIndependent)
{
    Network_params p = credit_params();
    p.route_vcs = 2;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{p, &data, &tokens, false};
    s.begin_cycle();
    s.send(make_flit(0));
    data.advance();
    s.begin_cycle();
    s.send(make_flit(0));
    data.advance();
    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0));
    EXPECT_TRUE(s.can_send(1));
}

TEST(LinkSender, TwoSendsSameCycleThrow)
{
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{credit_params(), &data, &tokens, false};
    s.begin_cycle();
    s.send(make_flit());
    EXPECT_THROW(s.send(make_flit()), std::logic_error);
    EXPECT_FALSE(s.can_send(0)); // also reported unavailable
}

TEST(LinkSender, SendWithoutCreditThrows)
{
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{credit_params(), &data, &tokens, false};
    s.begin_cycle();
    s.send(make_flit());
    data.advance();
    s.begin_cycle();
    s.send(make_flit());
    data.advance();
    s.begin_cycle();
    EXPECT_THROW(s.send(make_flit()), std::logic_error);
}

TEST(LinkSender, OnOffRespectsStopMask)
{
    Network_params p;
    p.fc = Flow_control_kind::on_off;
    p.route_vcs = 2;
    p.buffer_depth = 8;
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{p, &data, &tokens, false};

    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0)); // default: all on
    tokens.write(Fc_token{Fc_token::Kind::on_off_mask, 0, 0b01, 0});
    tokens.advance();
    data.advance();
    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0));
    EXPECT_TRUE(s.can_send(1));
}

Network_params acknack_params()
{
    Network_params p;
    p.fc = Flow_control_kind::ack_nack;
    p.route_vcs = 1;
    p.output_buffer_depth = 4;
    return p;
}

TEST(LinkSender, AckNackWindowLimitsAndAckFrees)
{
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{acknack_params(), &data, &tokens, false};

    // Fill the window of 4: all are buffered and streamed one per cycle.
    for (int i = 0; i < 4; ++i) {
        s.begin_cycle();
        ASSERT_TRUE(s.can_send(0));
        s.send(make_flit());
        s.end_cycle();
        data.advance();
        tokens.advance();
        ASSERT_TRUE(data.out().has_value());
        EXPECT_EQ(data.out()->link_seq, static_cast<std::uint32_t>(i));
    }
    s.begin_cycle();
    EXPECT_FALSE(s.can_send(0)); // window full
    EXPECT_EQ(s.output_buffer_occupancy(), 4u);

    // Cumulative ack for seq 1 frees two slots.
    tokens.write(Fc_token{Fc_token::Kind::ack, 0, 0, 1});
    data.advance();
    tokens.advance();
    s.begin_cycle();
    EXPECT_TRUE(s.can_send(0));
    EXPECT_EQ(s.output_buffer_occupancy(), 2u);
}

TEST(LinkSender, NackRewindsAndRetransmits)
{
    Flit_channel data{1};
    Token_channel tokens{1};
    Link_sender s{acknack_params(), &data, &tokens, false};

    for (int i = 0; i < 3; ++i) {
        s.begin_cycle();
        s.send(make_flit());
        s.end_cycle();
        data.advance();
        tokens.advance();
    }
    EXPECT_EQ(s.retransmissions(), 0u);

    // NACK for seq 0: everything must be resent from 0.
    tokens.write(Fc_token{Fc_token::Kind::nack, 0, 0, 0});
    data.advance();
    tokens.advance();
    for (std::uint32_t expect_seq = 0; expect_seq < 3; ++expect_seq) {
        s.begin_cycle();
        s.end_cycle();
        data.advance();
        tokens.advance();
        ASSERT_TRUE(data.out().has_value());
        EXPECT_EQ(data.out()->link_seq, expect_seq);
    }
    EXPECT_EQ(s.retransmissions(), 3u);
}

TEST(LinkSender, EjectionAlwaysAccepts)
{
    Flit_channel data{1};
    Link_sender s{credit_params(), &data, nullptr, true};
    for (int i = 0; i < 10; ++i) {
        s.begin_cycle();
        EXPECT_TRUE(s.can_send(0));
        s.send(make_flit());
        data.advance();
    }
    EXPECT_EQ(s.flits_sent(), 10u);
}

} // namespace
} // namespace noc
