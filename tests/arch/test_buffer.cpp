#include "arch/buffer.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(BoundedFifo, RejectsZeroCapacity)
{
    EXPECT_THROW(Bounded_fifo<int>(0), std::invalid_argument);
}

TEST(BoundedFifo, FifoOrder)
{
    Bounded_fifo<int> f{3};
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
}

TEST(BoundedFifo, OverflowThrows)
{
    Bounded_fifo<int> f{2};
    f.push(1);
    f.push(2);
    EXPECT_TRUE(f.full());
    EXPECT_THROW(f.push(3), std::logic_error);
}

TEST(BoundedFifo, UnderflowThrows)
{
    Bounded_fifo<int> f{2};
    EXPECT_THROW(f.pop(), std::logic_error);
    EXPECT_THROW(f.front(), std::logic_error);
}

TEST(BoundedFifo, FreeSlotsAndCounters)
{
    Bounded_fifo<int> f{4};
    EXPECT_EQ(f.free_slots(), 4u);
    f.push(1);
    f.push(2);
    EXPECT_EQ(f.free_slots(), 2u);
    EXPECT_EQ(f.size(), 2u);
    (void)f.pop();
    EXPECT_EQ(f.write_count(), 2u);
    EXPECT_EQ(f.read_count(), 1u);
}

} // namespace
} // namespace noc
