#include "arch/ocp.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(OcpSizing, ReadRequestIsHeaderOnly)
{
    Ocp_transaction t;
    t.cmd = Ocp_cmd::read;
    t.burst_words = 16;
    EXPECT_EQ(ocp_request_flits(t, 32), 1);
    EXPECT_EQ(ocp_request_flits(t, 128), 1);
}

TEST(OcpSizing, WriteCarriesSerializedPayload)
{
    Ocp_transaction t;
    t.cmd = Ocp_cmd::write;
    t.burst_words = 8; // 256 bits
    EXPECT_EQ(ocp_request_flits(t, 32), 1 + 8);
    EXPECT_EQ(ocp_request_flits(t, 64), 1 + 4);
    EXPECT_EQ(ocp_request_flits(t, 128), 1 + 2);
    EXPECT_EQ(ocp_request_flits(t, 100), 1 + 3); // ceil(256/100)
}

TEST(OcpSizing, ResponseSizes)
{
    Ocp_transaction rd{Ocp_cmd::read, 0, 4}; // 128 bits
    Ocp_transaction wr{Ocp_cmd::write, 0, 4};
    EXPECT_EQ(ocp_response_flits(rd, 32), 1 + 4);
    EXPECT_EQ(ocp_response_flits(wr, 32), 1);
}

TEST(OcpSizing, RejectsBadWidths)
{
    const Ocp_transaction t;
    EXPECT_THROW(ocp_request_flits(t, 0), std::invalid_argument);
    EXPECT_THROW(ocp_response_flits(t, 32, 0), std::invalid_argument);
}

TEST(OcpMaster, RespectsOutstandingLimit)
{
    Ocp_master_source::Params p;
    p.slaves = {Core_id{1}};
    p.max_outstanding = 2;
    Ocp_master_source m{p};
    EXPECT_TRUE(m.poll(0).has_value());
    EXPECT_TRUE(m.poll(1).has_value());
    EXPECT_FALSE(m.poll(2).has_value()); // limit reached
    m.notify_response(Core_id{1}, 10);
    EXPECT_TRUE(m.poll(11).has_value());
    EXPECT_EQ(m.transactions_issued(), 3u);
    EXPECT_EQ(m.transactions_completed(), 1u);
}

TEST(OcpMaster, ThinkTimeSpacesIssues)
{
    Ocp_master_source::Params p;
    p.slaves = {Core_id{1}};
    p.max_outstanding = 10;
    p.think_time = 5;
    Ocp_master_source m{p};
    EXPECT_TRUE(m.poll(0).has_value());
    EXPECT_FALSE(m.poll(1).has_value());
    EXPECT_FALSE(m.poll(4).has_value());
    EXPECT_TRUE(m.poll(5).has_value());
}

TEST(OcpMaster, RoundTripLatencyBookkeeping)
{
    Ocp_master_source::Params p;
    p.slaves = {Core_id{1}};
    p.max_outstanding = 4;
    Ocp_master_source m{p};
    ASSERT_TRUE(m.poll(0).has_value());
    ASSERT_TRUE(m.poll(2).has_value());
    m.notify_response(Core_id{1}, 10); // first: latency 10
    m.notify_response(Core_id{1}, 14); // second: latency 12
    EXPECT_DOUBLE_EQ(m.round_trip().mean(), 11.0);
}

TEST(OcpMaster, UnexpectedResponseThrows)
{
    Ocp_master_source::Params p;
    p.slaves = {Core_id{1}};
    Ocp_master_source m{p};
    EXPECT_THROW(m.notify_response(Core_id{1}, 3), std::logic_error);
}

TEST(OcpMaster, RequestsCarryReplySizes)
{
    Ocp_master_source::Params p;
    p.slaves = {Core_id{1}};
    p.max_outstanding = 100;
    p.read_fraction = 1.0; // all reads
    p.min_burst_words = 4;
    p.max_burst_words = 4;
    Ocp_master_source m{p};
    for (int i = 0; i < 10; ++i) {
        const auto d = m.poll(static_cast<Cycle>(i));
        ASSERT_TRUE(d.has_value());
        EXPECT_EQ(d->size_flits, 1u);      // read request: header only
        EXPECT_EQ(d->reply_flits, 1u + 4u); // read data comes back
    }
}

TEST(OcpMaster, RejectsBadParams)
{
    Ocp_master_source::Params p;
    EXPECT_THROW(Ocp_master_source{p}, std::invalid_argument); // no slaves
    p.slaves = {Core_id{1}};
    p.max_outstanding = 0;
    EXPECT_THROW(Ocp_master_source{p}, std::invalid_argument);
}

} // namespace
} // namespace noc
