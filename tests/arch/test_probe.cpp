// Probe / Trace_probe unit tests: attach semantics, the 16-byte Hop
// record format (flit handle + switch + cycle), ring wrap-around,
// per-shard accounting, the cycle-merged dump, detach, and the
// zero-cost-when-absent contract (probe-free systems route identically).
#include "arch/noc_builder.h"
#include "arch/probe.h"
#include "topology/mesh.h"
#include "topology/routing.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

namespace noc {
namespace {

std::unique_ptr<Noc_system> rigged_mesh(Probe* probe, double rate = 0.2,
                                        std::uint32_t shards = 1)
{
    Mesh_params mp; // 4x4
    const Topology topo = make_mesh(mp);
    Noc_builder b;
    b.topology(topo).routes(xy_routes(topo, mp)).params(Network_params{});
    if (shards > 1)
        b.schedule(Kernel_mode::sharded)
            .partition(Partition_plan::contiguous(shards));
    if (probe != nullptr) b.probe(probe);
    auto sys = b.build();
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(topo.core_count()));
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.seed = 900 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    return sys;
}

/// Counting probe that checks the per-call invariants.
struct Counting_probe final : Probe {
    std::uint64_t hops = 0;
    std::uint32_t bound_shards = 0;
    Cycle last_cycle = 0;
    void bind(std::uint32_t shard_count) override
    {
        bound_shards = shard_count;
    }
    void on_hop(std::uint32_t shard, Cycle now, Switch_id sw,
                Flit_ref flit) override
    {
        EXPECT_LT(shard, bound_shards);
        EXPECT_TRUE(flit.is_valid());
        EXPECT_GE(now, last_cycle);
        last_cycle = now;
        (void)sw;
        ++hops;
    }
};

TEST(Probe, EveryCrossbarTraversalReachesTheProbe)
{
    Counting_probe probe;
    auto sys = rigged_mesh(&probe);
    EXPECT_EQ(probe.bound_shards, 1u);
    sys->warmup(200);
    sys->measure(1'000);
    EXPECT_TRUE(sys->drain(20'000));
    EXPECT_GT(probe.hops, 0u);
    EXPECT_EQ(probe.hops, sys->total_flits_routed());
}

TEST(Probe, AttachIsResultInvisibleAndDetachStopsRecording)
{
    // Probe-free and probed runs of the identical rig must agree bit for
    // bit (observability must never perturb simulation).
    auto bare = rigged_mesh(nullptr);
    bare->warmup(200);
    bare->measure(1'000);
    (void)bare->drain(20'000);

    Trace_probe trace{64};
    auto probed = rigged_mesh(&trace);
    probed->warmup(200);
    probed->measure(1'000);
    (void)probed->drain(20'000);

    EXPECT_EQ(probed->total_flits_routed(), bare->total_flits_routed());
    EXPECT_EQ(probed->stats().packet_latency().mean(),
              bare->stats().packet_latency().mean());
    EXPECT_EQ(trace.total_recorded(), probed->total_flits_routed());

    // Detach: further hops must not be recorded.
    const std::uint64_t at_detach = trace.total_recorded();
    probed->attach_probe(nullptr);
    probed->kernel().run(500);
    EXPECT_EQ(trace.total_recorded(), at_detach);
}

TEST(TraceProbe, RingKeepsOnlyTheLastCapacityRecords)
{
    Trace_probe trace{16}; // tiny ring: guaranteed wrap
    EXPECT_EQ(trace.capacity_per_shard(), 16u);
    auto sys = rigged_mesh(&trace, 0.3);
    sys->warmup(500);
    sys->measure(2'000);
    (void)sys->drain(20'000);
    ASSERT_GT(trace.recorded(0), 16u); // wrapped many times
    const auto recent = trace.recent(0);
    EXPECT_EQ(recent.size(), 16u);
    for (const Flit_ref r : recent) EXPECT_TRUE(r.is_valid());
    trace.clear();
    EXPECT_EQ(trace.total_recorded(), 0u);
    EXPECT_TRUE(trace.recent(0).empty());
}

TEST(TraceProbe, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(Trace_probe{100}.capacity_per_shard(), 128u);
    EXPECT_EQ(Trace_probe{1}.capacity_per_shard(), 16u); // floor
}

TEST(TraceProbe, DumpResolvesRecordsThroughThePool)
{
    Trace_probe trace{64};
    auto sys = rigged_mesh(&trace, 0.1);
    sys->warmup(100);
    sys->measure(500);
    // No drain: leave flits in flight so records resolve to live flits.
    const std::string dump = trace.dump(sys->flit_pool());
    EXPECT_NE(dump.find("shard 0:"), std::string::npos);
    EXPECT_NE(dump.find("hops recorded"), std::string::npos);
}

TEST(TraceProbe, HopRecordsCarrySwitchAndCycle)
{
    Trace_probe trace{4096};
    auto sys = rigged_mesh(&trace, 0.1);
    sys->warmup(100);
    sys->measure(400);
    const auto hops = trace.recent_hops(0);
    ASSERT_FALSE(hops.empty());
    Cycle prev = 0;
    for (const auto& h : hops) {
        EXPECT_TRUE(h.flit.is_valid());
        EXPECT_LT(h.sw.get(), 16u); // 4x4 mesh
        EXPECT_GE(h.now, prev);     // per-shard ring is cycle-ordered
        prev = h.now;
    }
}

TEST(TraceProbe, CycleMergedDumpIsOneGlobalTimeline)
{
    // Two shards record concurrently, so the per-shard (default) dump has
    // two separate timelines. The cycle-merged dump must interleave them
    // into one globally non-decreasing sequence of cycles.
    Trace_probe trace{256};
    auto sys = rigged_mesh(&trace, 0.2, /*shards=*/2);
    ASSERT_EQ(trace.shard_count(), 2u);
    sys->warmup(100);
    sys->measure(500);
    const std::string merged =
        trace.dump(sys->flit_pool(), Trace_probe::Dump_order::cycle_merged);
    EXPECT_NE(merged.find("cycle-merged:"), std::string::npos);
    EXPECT_NE(merged.find("[shard 1]"), std::string::npos);

    Cycle prev = 0;
    std::size_t records = 0;
    std::istringstream is{merged};
    std::string line;
    while (std::getline(is, line)) {
        const auto at = line.find('@');
        if (at == std::string::npos) continue; // header line
        const Cycle now = std::strtoull(line.c_str() + at + 1, nullptr, 10);
        EXPECT_GE(now, prev);
        prev = now;
        ++records;
    }
    EXPECT_GT(records, 0u);

    // Repeating the readout is byte-identical (stable tie-break).
    EXPECT_EQ(merged, trace.dump(sys->flit_pool(),
                                 Trace_probe::Dump_order::cycle_merged));
}

} // namespace
} // namespace noc
