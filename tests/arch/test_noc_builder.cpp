// Noc_builder facade tests: the fluent chain builds the same system the
// Build_options ctor does, partition() implies the sharded schedule,
// error paths fail fast, and the builder is reusable.
#include "arch/noc_builder.h"
#include "arch/probe.h"
#include "topology/mesh.h"
#include "topology/routing.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace noc {
namespace {

Mesh_params mesh4()
{
    Mesh_params mp;
    return mp; // 4x4
}

void rig(Noc_system& sys, double rate = 0.2)
{
    const int cores = sys.topology().core_count();
    auto pattern =
        std::shared_ptr<const Dest_pattern>(make_uniform_pattern(cores));
    for (int c = 0; c < cores; ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.seed = 321 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
}

struct Snapshot {
    Cycle now;
    std::uint64_t delivered;
    std::uint64_t flits_routed;
    double latency_mean;
    bool operator==(const Snapshot&) const = default;
};

Snapshot protocol(Noc_system& sys)
{
    rig(sys);
    sys.warmup(300);
    sys.measure(1'500);
    (void)sys.drain(20'000);
    return {sys.kernel().now(), sys.stats().packets_delivered(),
            sys.total_flits_routed(), sys.stats().packet_latency().mean()};
}

TEST(NocBuilder, BuildsBitIdenticalToDirectConstruction)
{
    const Mesh_params mp = mesh4();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    Noc_system direct{topo, routes, Network_params{}};
    const Snapshot want = protocol(direct);

    auto built = Noc_builder{}
                     .topology(topo)
                     .routes(routes)
                     .params(Network_params{})
                     .build();
    const Snapshot got = protocol(*built);
    EXPECT_TRUE(got == want);
    EXPECT_EQ(built->kernel().mode(), Kernel_mode::activity_gated);
    EXPECT_EQ(built->shard_count(), 1u);
}

TEST(NocBuilder, PartitionImpliesShardedSchedule)
{
    const Mesh_params mp = mesh4();
    const Topology topo = make_mesh(mp);
    auto sys = Noc_builder{}
                   .topology(topo)
                   .routes(xy_routes(topo, mp))
                   .params(Network_params{})
                   .partition(Partition_plan::contiguous(4))
                   .build();
    EXPECT_EQ(sys->kernel().mode(), Kernel_mode::sharded);
    EXPECT_EQ(sys->shard_count(), 4u);

    // ... unless the schedule was pinned explicitly: then the partition is
    // metadata the sequential schedule ignores (single shard built).
    auto gated = Noc_builder{}
                     .topology(topo)
                     .routes(xy_routes(topo, mp))
                     .params(Network_params{})
                     .schedule(Kernel_mode::activity_gated)
                     .partition(Partition_plan::contiguous(4))
                     .build();
    EXPECT_EQ(gated->kernel().mode(), Kernel_mode::activity_gated);
    EXPECT_EQ(gated->shard_count(), 1u);
}

TEST(NocBuilder, OptionsHandoverAndOverride)
{
    const Mesh_params mp = mesh4();
    const Topology topo = make_mesh(mp);
    Build_options opts;
    opts.kernel_mode = Kernel_mode::reference;
    opts.pool_reserve_flits = 4096;
    auto sys = Noc_builder{}
                   .topology(topo)
                   .routes(xy_routes(topo, mp))
                   .params(Network_params{})
                   .options(opts)
                   .build();
    EXPECT_EQ(sys->kernel().mode(), Kernel_mode::reference);
    EXPECT_GE(sys->flit_pool().capacity(), 4096u);
}

TEST(NocBuilder, SequentialSchedulesIgnoreThePartitionPlan)
{
    // The documented Build_options contract: under a sequential schedule
    // the partition is metadata, never consulted — so a balanced plan
    // whose weights were profiled on a DIFFERENT design (wrong length)
    // must not fail a gated build, only a sharded one.
    const Mesh_params mp = mesh4();
    const Topology topo = make_mesh(mp);
    const Partition_plan mismatched =
        Partition_plan::balanced(4, {1, 2, 3}); // 3 weights, 16 switches
    auto gated = Noc_builder{}
                     .topology(topo)
                     .routes(xy_routes(topo, mp))
                     .params(Network_params{})
                     .schedule(Kernel_mode::activity_gated)
                     .partition(mismatched)
                     .build();
    EXPECT_EQ(gated->shard_count(), 1u);
    EXPECT_THROW((void)Noc_builder{}
                     .topology(topo)
                     .routes(xy_routes(topo, mp))
                     .params(Network_params{})
                     .schedule(Kernel_mode::sharded)
                     .partition(mismatched)
                     .build(),
                 std::invalid_argument);
}

TEST(NocBuilder, FailedBuildDoesNotLeaveMovedFromInputs)
{
    // A build that throws inside the Noc_system ctor (route/core
    // mismatch) must disengage topology/routes first: the retry hits the
    // fail-fast missing-input check instead of constructing from
    // moved-from state.
    const Mesh_params mp = mesh4();
    const Topology topo = make_mesh(mp);
    Mesh_params small;
    small.width = 2;
    small.height = 2;
    const Topology small_topo = make_mesh(small);
    Noc_builder b;
    b.topology(topo).routes(xy_routes(small_topo, small))
        .params(Network_params{});
    EXPECT_THROW((void)b.build(), std::invalid_argument); // count mismatch
    EXPECT_THROW((void)b.build(), std::invalid_argument); // inputs gone
    // Re-setting both makes the builder whole again.
    b.topology(topo).routes(xy_routes(topo, mp));
    EXPECT_NO_THROW((void)b.build());
}

TEST(NocBuilder, ProbeIsOneShotAcrossBuilds)
{
    // A reused builder must NOT re-attach the previous build's probe: a
    // second bind() would resize the probe's per-shard state while the
    // first system's routers still hold the pointer.
    const Mesh_params mp = mesh4();
    const Topology topo = make_mesh(mp);
    Trace_probe trace{64};
    Noc_builder b;
    auto first = b.topology(topo)
                     .routes(xy_routes(topo, mp))
                     .params(Network_params{})
                     .partition(Partition_plan::contiguous(4))
                     .probe(&trace)
                     .build();
    EXPECT_EQ(trace.shard_count(), 4u);
    auto second = b.topology(topo).routes(xy_routes(topo, mp)).build();
    // The probe stayed bound to the first system's shard layout...
    EXPECT_EQ(trace.shard_count(), 4u);
    // ...and the second system records nothing into it.
    rig(*second);
    second->warmup(200);
    second->kernel().run(500);
    EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(NocBuilder, MissingInputsFailFast)
{
    const Mesh_params mp = mesh4();
    const Topology topo = make_mesh(mp);
    EXPECT_THROW((void)Noc_builder{}.build(), std::invalid_argument);
    EXPECT_THROW((void)Noc_builder{}.topology(topo).build(),
                 std::invalid_argument);
    // Topology/routes are consumed by build(): a second build without
    // resetting them must fail, not silently reuse moved-from state.
    Noc_builder b;
    b.topology(topo).routes(xy_routes(topo, mp)).params(Network_params{});
    (void)b.build();
    EXPECT_THROW((void)b.build(), std::invalid_argument);
}

} // namespace
} // namespace noc
