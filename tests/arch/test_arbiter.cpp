#include "arch/arbiter.h"

#include <gtest/gtest.h>

#include <map>

namespace noc {
namespace {

TEST(RoundRobin, RejectsBadSize)
{
    EXPECT_THROW(Round_robin_arbiter{0}, std::invalid_argument);
}

TEST(RoundRobin, SizeMismatchThrows)
{
    Round_robin_arbiter arb{3};
    EXPECT_THROW(arb.pick({true, false}), std::invalid_argument);
}

TEST(RoundRobin, NoRequestsReturnsMinusOne)
{
    Round_robin_arbiter arb{3};
    EXPECT_EQ(arb.pick({false, false, false}), -1);
}

TEST(RoundRobin, RotatesAmongPersistentRequesters)
{
    Round_robin_arbiter arb{3};
    const std::vector<bool> all{true, true, true};
    std::map<int, int> grants;
    for (int i = 0; i < 30; ++i) ++grants[arb.pick(all)];
    EXPECT_EQ(grants[0], 10);
    EXPECT_EQ(grants[1], 10);
    EXPECT_EQ(grants[2], 10);
}

TEST(RoundRobin, StrongFairnessUnderPartialRequests)
{
    Round_robin_arbiter arb{4};
    // Requester 3 always asks; 1 asks on even rounds. 3 must not starve.
    int grants_3 = 0;
    for (int round = 0; round < 20; ++round) {
        std::vector<bool> req{false, round % 2 == 0, false, true};
        const int g = arb.pick(req);
        if (g == 3) ++grants_3;
    }
    EXPECT_GE(grants_3, 10);
}

TEST(RoundRobin, SingleRequesterAlwaysWins)
{
    Round_robin_arbiter arb{2};
    for (int i = 0; i < 5; ++i) EXPECT_EQ(arb.pick({false, true}), 1);
}

TEST(FixedPriority, LowestIndexWins)
{
    const Fixed_priority_arbiter arb{3};
    EXPECT_EQ(arb.pick({false, true, true}), 1);
    EXPECT_EQ(arb.pick({true, true, true}), 0);
    EXPECT_EQ(arb.pick({false, false, false}), -1);
}

TEST(FixedPriority, CanStarveUnlikeRoundRobin)
{
    // Demonstrates why BE traffic uses round-robin: under a persistent
    // high-priority requester, fixed priority starves index 1 forever.
    const Fixed_priority_arbiter fp{2};
    Round_robin_arbiter rr{2};
    int fp_low = 0;
    int rr_low = 0;
    for (int i = 0; i < 10; ++i) {
        if (fp.pick({true, true}) == 1) ++fp_low;
        if (rr.pick({true, true}) == 1) ++rr_low;
    }
    EXPECT_EQ(fp_low, 0);
    EXPECT_EQ(rr_low, 5);
}

} // namespace
} // namespace noc
