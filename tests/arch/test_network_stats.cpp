#include "arch/network_stats.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(NetworkStats, WindowValidation)
{
    Network_stats s;
    EXPECT_THROW(s.set_measurement_window(10, 5), std::invalid_argument);
    s.set_measurement_window(10, 20);
    EXPECT_FALSE(s.in_measurement(9));
    EXPECT_TRUE(s.in_measurement(10));
    EXPECT_TRUE(s.in_measurement(19));
    EXPECT_FALSE(s.in_measurement(20));
}

TEST(NetworkStats, OnlyMeasuredPacketsEnterAccumulators)
{
    Network_stats s;
    s.set_measurement_window(0, 100);
    s.on_packet_created(Flow_id{0}, 5, true);
    s.on_packet_created(Flow_id{0}, 6, false); // warmup packet
    s.on_packet_delivered(Flow_id{0}, 4, 5, 6, 25, true);
    s.on_packet_delivered(Flow_id{0}, 4, 6, 7, 30, false);
    EXPECT_EQ(s.packets_created(), 2u);
    EXPECT_EQ(s.packets_delivered(), 2u);
    EXPECT_EQ(s.measured_created(), 1u);
    EXPECT_EQ(s.measured_delivered(), 1u);
    EXPECT_EQ(s.measured_flits_delivered(), 4u);
    EXPECT_DOUBLE_EQ(s.packet_latency().mean(), 20.0);  // 25 - 5
    EXPECT_DOUBLE_EQ(s.network_latency().mean(), 19.0); // 25 - 6
}

TEST(NetworkStats, InFlightBookkeeping)
{
    Network_stats s;
    s.set_measurement_window(0, 100);
    s.on_packet_created(Flow_id{}, 1, true);
    s.on_packet_created(Flow_id{}, 2, true);
    EXPECT_EQ(s.measured_in_flight(), 2u);
    EXPECT_EQ(s.packets_in_flight(), 2u);
    s.on_packet_delivered(Flow_id{}, 1, 1, 1, 9, true);
    EXPECT_EQ(s.measured_in_flight(), 1u);
}

TEST(NetworkStats, PerFlowAccounting)
{
    Network_stats s;
    s.set_measurement_window(0, 100);
    s.on_packet_delivered(Flow_id{3}, 2, 0, 0, 10, true);
    s.on_packet_delivered(Flow_id{3}, 2, 0, 0, 14, true);
    s.on_packet_delivered(Flow_id{5}, 8, 0, 0, 20, true);
    EXPECT_EQ(s.flow_flits_delivered(Flow_id{3}), 4u);
    EXPECT_EQ(s.flow_flits_delivered(Flow_id{5}), 8u);
    EXPECT_EQ(s.flow_flits_delivered(Flow_id{99}), 0u);
    EXPECT_DOUBLE_EQ(s.flow_latency(Flow_id{3}).mean(), 12.0);
    EXPECT_EQ(s.flow_latency(Flow_id{99}).count(), 0u);
    // Invalid flow ids are not tracked per flow.
    s.on_packet_delivered(Flow_id{}, 2, 0, 0, 30, true);
    EXPECT_EQ(s.flow_flits_delivered(Flow_id{}), 0u);
}

TEST(NetworkStats, AcceptedThroughput)
{
    Network_stats s;
    s.set_measurement_window(100, 300); // 200-cycle window
    s.on_packet_delivered(Flow_id{}, 50, 100, 100, 200, true);
    s.on_packet_delivered(Flow_id{}, 50, 110, 110, 210, true);
    EXPECT_DOUBLE_EQ(s.accepted_flits_per_cycle(), 100.0 / 200.0);
    Network_stats empty;
    EXPECT_DOUBLE_EQ(empty.accepted_flits_per_cycle(), 0.0);
}

} // namespace
} // namespace noc
