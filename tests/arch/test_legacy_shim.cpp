// THE one legacy-shim test. The deprecated construction surface — the
// positional (bool allow_partial_routes, uint32 shard_count) ctor tail and
// Sweep_config's kernel_mode / kernel_threads / allow_partial_routes alias
// fields — lives exactly one PR as a migration shim, and this file is its
// only sanctioned in-tree caller: everything else builds clean under
// -Wdeprecated-declarations -Werror (the CI leg), proving the migration is
// complete. The pragma below scopes the exemption to this file alone.
#include "arch/noc_system.h"
#include "topology/mesh.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/patterns.h"

#include <gtest/gtest.h>

#include <memory>

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace noc {
namespace {

TEST(LegacyShim, PositionalCtorMatchesBuildOptionsSemantics)
{
    Mesh_params mp; // 4x4
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    // shard_count > 1 => sharded schedule with a contiguous plan.
    Noc_system legacy{topo, routes, Network_params{}, false, 4};
    EXPECT_EQ(legacy.kernel().mode(), Kernel_mode::sharded);
    EXPECT_EQ(legacy.shard_count(), 4u);

    Build_options opts;
    opts.kernel_mode = Kernel_mode::sharded;
    opts.partition = Partition_plan::contiguous(4);
    Noc_system modern{topo, routes, Network_params{}, opts};
    for (int s = 0; s < topo.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        EXPECT_EQ(legacy.shard_of_switch(sw), modern.shard_of_switch(sw));
    }

    // shard_count == 1 => the gated sequential schedule.
    Noc_system single{topo, routes, Network_params{}, false, 1};
    EXPECT_EQ(single.kernel().mode(), Kernel_mode::activity_gated);
    EXPECT_EQ(single.shard_count(), 1u);

    EXPECT_THROW((Noc_system{topo, routes, Network_params{}, false, 0}),
                 std::invalid_argument);

    // Legacy clamp semantics: the schedule keyed on the CLAMPED count, so
    // a multi-shard request on a single-switch topology stays sequential.
    Mesh_params one;
    one.width = 1;
    one.height = 1;
    const Topology tiny = make_mesh(one);
    Noc_system clamped{tiny, xy_routes(tiny, one), Network_params{}, false,
                       4};
    EXPECT_EQ(clamped.shard_count(), 1u);
    EXPECT_EQ(clamped.kernel().mode(), Kernel_mode::activity_gated);
}

TEST(LegacyShim, SweepConfigAliasesFoldIntoBuildOptions)
{
    // Untouched aliases: effective_build() is just `build`.
    {
        Sweep_config cfg;
        cfg.build.kernel_mode = Kernel_mode::reference;
        cfg.build.allow_partial_routes = true;
        const Build_options b = cfg.effective_build();
        EXPECT_EQ(b.kernel_mode, Kernel_mode::reference);
        EXPECT_TRUE(b.allow_partial_routes);
    }
    // Changed aliases override the embedded options (legacy callers keep
    // their behavior for the shim PR).
    {
        Sweep_config cfg;
        cfg.kernel_mode = Kernel_mode::sharded;
        cfg.kernel_threads = 3;
        cfg.allow_partial_routes = true;
        const Build_options b = cfg.effective_build();
        EXPECT_EQ(b.kernel_mode, Kernel_mode::sharded);
        EXPECT_EQ(b.partition.requested_shards(), 3u);
        EXPECT_TRUE(b.allow_partial_routes);
        EXPECT_EQ(b.build_shards(), 3u);
    }
    // A legacy run through the harness must still produce traffic.
    {
        Mesh_params mp;
        mp.width = 2;
        mp.height = 2;
        const Topology topo = make_mesh(mp);
        const Route_set routes = xy_routes(topo, mp);
        Sweep_config cfg;
        cfg.warmup = 100;
        cfg.measure = 500;
        cfg.drain_limit = 5'000;
        cfg.kernel_mode = Kernel_mode::sharded;
        cfg.kernel_threads = 2;
        const Load_point pt = run_synthetic_load(
            topo, routes, Network_params{}, 0.1,
            [&] {
                return std::shared_ptr<const Dest_pattern>(
                    make_uniform_pattern(topo.core_count()));
            },
            cfg);
        EXPECT_GT(pt.packets, 0u);
        EXPECT_TRUE(pt.drained);
    }
}

} // namespace
} // namespace noc

#pragma GCC diagnostic pop
