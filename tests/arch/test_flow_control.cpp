// Flow-control stress: each scheme must survive saturation without buffer
// overflow (Router::deliver_arrival throws on violation) and deliver
// everything.
#include "arch/noc_system.h"
#include "topology/routing.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

struct Fc_case {
    std::string name;
    Flow_control_kind fc;
    int buffer_depth;
};

class FlowControlStress : public ::testing::TestWithParam<Fc_case> {};

TEST_P(FlowControlStress, SurvivesSaturationLoad)
{
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    Topology t = make_mesh(mp);
    Route_set routes = xy_routes(t, mp);
    Network_params p;
    p.fc = GetParam().fc;
    p.buffer_depth = GetParam().buffer_depth;
    p.output_buffer_depth = 8;
    Noc_system sys{std::move(t), std::move(routes), p};

    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(sys.topology().core_count()));
    for (int c = 0; c < sys.topology().core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.9; // far beyond saturation
        sp.packet_size_flits = 4;
        sp.seed = 31 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    // Any flow-control violation throws out of run(); reaching the end with
    // deliveries proves the scheme held together at saturation.
    ASSERT_NO_THROW(sys.kernel().run(10'000));
    EXPECT_GT(sys.stats().packets_delivered(), 1'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, FlowControlStress,
    ::testing::Values(Fc_case{"credit", Flow_control_kind::credit, 4},
                      Fc_case{"credit_deep", Flow_control_kind::credit, 16},
                      Fc_case{"onoff", Flow_control_kind::on_off, 8},
                      Fc_case{"onoff_min", Flow_control_kind::on_off, 4},
                      Fc_case{"acknack", Flow_control_kind::ack_nack, 4}),
    [](const ::testing::TestParamInfo<Fc_case>& info) {
        return info.param.name;
    });

TEST(FlowControl, AckNackRetransmitsUnderContention)
{
    // Three switches in a line; a (at s0) and b (at s1) both stream to the
    // sink (at s2). At s1 the through-traffic from a shares the s1->s2
    // output with b's local injection, so the s0->s1 receiver backs up:
    // the speculative ACK/NACK sender at s0 overruns the 2-deep receive
    // buffer, forcing drops + go-back-N retransmissions — while delivery
    // stays lossless at the packet level.
    Topology t{"line3", 3};
    const Core_id a = t.attach_core(Switch_id{0});
    const Core_id b = t.attach_core(Switch_id{1});
    const Core_id sink = t.attach_core(Switch_id{2});
    t.add_bidir_link(Switch_id{0}, Switch_id{1});
    t.add_bidir_link(Switch_id{1}, Switch_id{2});
    Route_set routes = shortest_path_routes(t);
    Network_params p;
    p.fc = Flow_control_kind::ack_nack;
    p.buffer_depth = 2;
    p.output_buffer_depth = 8;
    Noc_system sys{std::move(t), std::move(routes), p};

    sys.stats().set_measurement_window(0, 5'000);
    for (const Core_id src : {a, b}) {
        for (int i = 0; i < 50; ++i)
            sys.ni(src).enqueue_packet(
                {sink, 6, Traffic_class::request, Flow_id{}, Connection_id{},
                 0},
                0);
    }
    ASSERT_TRUE(sys.kernel().run_until(
        [&] { return sys.stats().packets_delivered() == 100; }, 50'000));
    std::uint64_t retx = 0;
    for (int s = 0; s < 3; ++s)
        for (int o = 0;
             o < sys.router(Switch_id{static_cast<std::uint32_t>(s)})
                     .output_count();
             ++o)
            retx += sys.router(Switch_id{static_cast<std::uint32_t>(s)})
                        .output_sender(o)
                        .retransmissions();
    EXPECT_GT(retx, 0u) << "expected go-back-N retransmissions under "
                           "contention with 2-deep receive buffers";
    EXPECT_EQ(sys.stats().packets_delivered(), 100u);
}

TEST(FlowControl, GtVcRequiresEnableFlag)
{
    Network_params p;
    EXPECT_THROW(p.effective_vc(Traffic_class::gt, 0), std::logic_error);
    p.enable_gt = true;
    EXPECT_EQ(p.effective_vc(Traffic_class::gt, 0), p.gt_vc());
}

TEST(FlowControl, EffectiveVcMapping)
{
    Network_params p;
    p.route_vcs = 2;
    p.separate_response_class = true;
    p.enable_gt = true;
    EXPECT_EQ(p.total_vcs(), 5);
    EXPECT_EQ(p.effective_vc(Traffic_class::request, 1), 1);
    EXPECT_EQ(p.effective_vc(Traffic_class::response, 0), 2);
    EXPECT_EQ(p.effective_vc(Traffic_class::response, 1), 3);
    EXPECT_EQ(p.effective_vc(Traffic_class::gt, 0), 4);
}

TEST(FlowControl, AckNackRejectsMultipleVcs)
{
    Network_params p;
    p.fc = Flow_control_kind::ack_nack;
    p.route_vcs = 2;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

} // namespace
} // namespace noc
