// Flit_pool: acquire/release/reuse semantics, growth behaviour, and the
// accounting the bench reports (live / high-water / total-acquired).
#include "arch/flit_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace noc {
namespace {

TEST(FlitPool, AcquireReturnsFreshDefaultInitializedSlots)
{
    Flit_pool pool;
    const Flit_ref a = pool.acquire();
    ASSERT_TRUE(a.is_valid());
    EXPECT_EQ(pool[a].kind, Flit_kind::head_tail);
    EXPECT_EQ(pool[a].route, nullptr);
    EXPECT_EQ(pool[a].birth, invalid_cycle);

    // Dirty the slot, release, re-acquire: the recycled slot must be reset.
    pool[a].index = 77;
    pool[a].vc = 3;
    pool.release(a);
    const Flit_ref b = pool.acquire();
    EXPECT_EQ(pool[b].index, 0u);
    EXPECT_EQ(pool[b].vc, 0u);
}

TEST(FlitPool, ReuseIsLifoAndAccountingTracksIt)
{
    Flit_pool pool;
    EXPECT_EQ(pool.live(), 0u);
    const Flit_ref a = pool.acquire();
    const Flit_ref b = pool.acquire();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.live(), 2u);
    EXPECT_EQ(pool.high_water(), 2u);

    pool.release(b);
    EXPECT_EQ(pool.live(), 1u);
    EXPECT_EQ(pool.high_water(), 2u); // high water never decreases
    // LIFO free list: the most recently released slot is handed out next
    // (cache warmth on the hot path).
    const Flit_ref c = pool.acquire();
    EXPECT_EQ(c, b);
    EXPECT_EQ(pool.total_acquired(), 3u);
    pool.release(a);
    pool.release(c);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(FlitPool, ExhaustionGrowsByWholeChunksAndKeepsHandlesValid)
{
    Flit_pool pool{Flit_pool::chunk_size};
    EXPECT_EQ(pool.capacity(), Flit_pool::chunk_size);

    // Acquire past the initial capacity: the pool must grow, not fail, and
    // previously handed-out references must stay valid (chunked storage
    // never relocates).
    std::vector<Flit_ref> refs;
    const std::uint32_t n = Flit_pool::chunk_size + 3;
    refs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const Flit_ref r = pool.acquire();
        pool[r].index = i;
        refs.push_back(r);
    }
    EXPECT_EQ(pool.capacity(), 2 * Flit_pool::chunk_size);
    EXPECT_EQ(pool.live(), n);
    EXPECT_EQ(pool.high_water(), n);
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(pool[refs[i]].index, i);
    for (const Flit_ref r : refs) pool.release(r);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.high_water(), n);
}

TEST(FlitPool, HandlesStayStableAcrossGrowth)
{
    // A Flit& taken before a growth-triggering acquire must still point at
    // the same flit afterwards (delivery listeners hold the delivered tail
    // while enqueueing replies).
    Flit_pool pool{Flit_pool::chunk_size};
    const Flit_ref a = pool.acquire();
    Flit& before = pool[a];
    before.packet = Packet_id{42};
    std::vector<Flit_ref> refs;
    for (std::uint32_t i = 0; i < Flit_pool::chunk_size; ++i)
        refs.push_back(pool.acquire()); // forces a new chunk
    EXPECT_EQ(&pool[a], &before);
    EXPECT_EQ(before.packet, Packet_id{42});
}

#ifdef NOC_DEBUG
TEST(FlitPool, DebugBuildCatchesDoubleReleaseAndDanglingDeref)
{
    Flit_pool pool;
    const Flit_ref a = pool.acquire();
    pool.release(a);
    EXPECT_THROW(pool.release(a), std::logic_error);     // double free
    EXPECT_THROW((void)pool[a], std::logic_error);       // dangling deref
    EXPECT_THROW(pool.release(Flit_ref{9999999}), std::logic_error);
}
#endif

} // namespace
} // namespace noc
