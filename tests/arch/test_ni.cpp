// NI-focused unit tests: packetization, queue separation, reply service,
// error paths.
#include "arch/noc_system.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

struct Line_fixture {
    Line_fixture(Network_params params = {})
        : sys{[] {
                  Topology t{"line2", 2};
                  t.attach_core(Switch_id{0});
                  t.attach_core(Switch_id{1});
                  t.add_bidir_link(Switch_id{0}, Switch_id{1});
                  return t;
              }(),
              [] {
                  Topology t{"line2", 2};
                  t.attach_core(Switch_id{0});
                  t.attach_core(Switch_id{1});
                  t.add_bidir_link(Switch_id{0}, Switch_id{1});
                  return shortest_path_routes(t);
              }(),
              params}
    {
    }
    Noc_system sys;
};

TEST(Ni, RejectsSelfAndEmptyPackets)
{
    Line_fixture f;
    EXPECT_THROW(f.sys.ni(Core_id{0}).enqueue_packet(
                     {Core_id{0}, 1, Traffic_class::request, Flow_id{},
                      Connection_id{}, 0},
                     0),
                 std::invalid_argument);
    EXPECT_THROW(f.sys.ni(Core_id{0}).enqueue_packet(
                     {Core_id{1}, 0, Traffic_class::request, Flow_id{},
                      Connection_id{}, 0},
                     0),
                 std::invalid_argument);
}

TEST(Ni, FlitSerializationKindsAreCorrect)
{
    // Deliver a 1-flit and a 3-flit packet and inspect kinds via the
    // delivery listener (tail flit carries the packet size).
    Line_fixture f;
    std::vector<std::uint32_t> sizes;
    f.sys.ni(Core_id{1}).set_delivery_listener(
        [&](const Flit& tail, Cycle) {
            sizes.push_back(tail.packet_size);
            EXPECT_TRUE(is_tail(tail.kind));
        });
    f.sys.ni(Core_id{0}).enqueue_packet({Core_id{1}, 1,
                                         Traffic_class::request, Flow_id{},
                                         Connection_id{}, 0},
                                        0);
    f.sys.ni(Core_id{0}).enqueue_packet({Core_id{1}, 3,
                                         Traffic_class::request, Flow_id{},
                                         Connection_id{}, 0},
                                        0);
    f.sys.kernel().run(50);
    ASSERT_EQ(sizes.size(), 2u);
    EXPECT_EQ(sizes[0], 1u);
    EXPECT_EQ(sizes[1], 3u);
}

TEST(Ni, ReplyLatencyDelaysResponse)
{
    auto round_trip_with = [](Cycle reply_latency) {
        Line_fixture f;
        f.sys.ni(Core_id{1}).set_reply_latency(reply_latency);
        f.sys.stats().set_measurement_window(0, 1'000);
        Packet_desc d;
        d.dst = Core_id{1};
        d.size_flits = 1;
        d.reply_flits = 1;
        f.sys.ni(Core_id{0}).enqueue_packet(d, 0);
        Cycle response_at = 0;
        f.sys.ni(Core_id{0}).set_delivery_listener(
            [&](const Flit&, Cycle now) { response_at = now; });
        f.sys.kernel().run(200);
        return response_at;
    };
    const Cycle fast = round_trip_with(0);
    const Cycle slow = round_trip_with(25);
    EXPECT_GT(fast, 0u);
    // The NI has a 1-cycle minimum turnaround (the reply is enqueued the
    // cycle after the tail arrives), so the marginal cost of 25 cycles of
    // service latency is 24 cycles.
    EXPECT_EQ(slow, fast + 24);
}

TEST(Ni, SourceQueueCountsAllClasses)
{
    Network_params p;
    p.enable_gt = true;
    p.slot_table_length = 8;
    Line_fixture f{p};
    // No slot table: GT flit enqueues but cannot inject -> counted, idle()
    // false, and stepping the NI throws (explicit misconfiguration).
    Packet_desc gt;
    gt.dst = Core_id{1};
    gt.size_flits = 1;
    gt.cls = Traffic_class::gt;
    gt.conn = Connection_id{0};
    f.sys.ni(Core_id{0}).enqueue_packet(gt, 0);
    EXPECT_EQ(f.sys.ni(Core_id{0}).source_queue_flits(), 1u);
    EXPECT_FALSE(f.sys.ni(Core_id{0}).idle());
    EXPECT_THROW(f.sys.kernel().run(1), std::logic_error);
}

TEST(Ni, GtDoesNotSufferBeHeadOfLineBlocking)
{
    Network_params p;
    p.enable_gt = true;
    p.slot_table_length = 4;
    Line_fixture f{p};
    // Slot table: connection 0 owns slot 0 of 4.
    std::vector<Connection_id> table(4);
    table[0] = Connection_id{0};
    f.sys.ni(Core_id{0}).set_slot_table(table);
    f.sys.stats().set_measurement_window(0, 1'000);
    // Queue a pile of BE flits first, then one GT flit.
    for (int i = 0; i < 8; ++i)
        f.sys.ni(Core_id{0}).enqueue_packet({Core_id{1}, 4,
                                             Traffic_class::request,
                                             Flow_id{0}, Connection_id{}, 0},
                                            0);
    Packet_desc gt;
    gt.dst = Core_id{1};
    gt.size_flits = 1;
    gt.cls = Traffic_class::gt;
    gt.conn = Connection_id{0};
    gt.flow = Flow_id{9};
    f.sys.ni(Core_id{0}).enqueue_packet(gt, 0);
    f.sys.kernel().run(100);
    // The GT flit left in its first owned slot (cycle 0 or 4), so it was
    // delivered within ~10 cycles, far before the 32-flit BE backlog.
    const auto& gt_lat = f.sys.stats().flow_latency(Flow_id{9});
    ASSERT_EQ(gt_lat.count(), 1u);
    EXPECT_LT(gt_lat.max(), 15.0);
}

TEST(Ni, DeliveryListenerSeesTailMetadata)
{
    Line_fixture f;
    Flit seen;
    f.sys.ni(Core_id{1}).set_delivery_listener(
        [&](const Flit& tail, Cycle) { seen = tail; });
    Packet_desc d;
    d.dst = Core_id{1};
    d.size_flits = 2;
    d.flow = Flow_id{7};
    f.sys.ni(Core_id{0}).enqueue_packet(d, 0);
    f.sys.kernel().run(50);
    EXPECT_EQ(seen.src, Core_id{0});
    EXPECT_EQ(seen.flow, Flow_id{7});
    EXPECT_EQ(seen.packet_size, 2u);
}

} // namespace
} // namespace noc
