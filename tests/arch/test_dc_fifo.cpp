#include "arch/dc_fifo.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(DcFifo, RejectsBadParams)
{
    Dc_fifo_params p;
    p.depth = 1;
    EXPECT_THROW(simulate_dc_fifo(p, 10), std::invalid_argument);
    p = {};
    p.writer_period_ns = 0;
    EXPECT_THROW(simulate_dc_fifo(p, 10), std::invalid_argument);
}

TEST(DcFifo, EqualClocksLatencyNearSyncStages)
{
    Dc_fifo_params p;
    p.writer_period_ns = 1.0;
    p.reader_period_ns = 1.0;
    p.sync_stages = 2;
    const auto r = simulate_dc_fifo(p, 1'000);
    // Crossing costs at least sync_stages reader periods, at most one more.
    EXPECT_GE(r.min_latency_ns, 2.0);
    EXPECT_LE(r.max_latency_ns, 3.0 + 1e-9);
    EXPECT_EQ(r.items, 1'000u);
}

TEST(DcFifo, SlowReaderBoundsThroughput)
{
    Dc_fifo_params p;
    p.writer_period_ns = 1.0;
    p.reader_period_ns = 4.0; // reader 4x slower
    const auto r = simulate_dc_fifo(p, 2'000);
    EXPECT_NEAR(r.throughput_per_ns, 1.0 / 4.0, 0.02);
}

TEST(DcFifo, FastReaderBoundedByWriter)
{
    Dc_fifo_params p;
    p.writer_period_ns = 2.0;
    p.reader_period_ns = 1.0;
    const auto r = simulate_dc_fifo(p, 2'000);
    EXPECT_NEAR(r.throughput_per_ns, 1.0 / 2.0, 0.02);
}

TEST(DcFifo, MoreSyncStagesMoreLatency)
{
    Dc_fifo_params p2;
    p2.sync_stages = 2;
    Dc_fifo_params p4 = p2;
    p4.sync_stages = 4;
    const auto r2 = simulate_dc_fifo(p2, 500);
    const auto r4 = simulate_dc_fifo(p4, 500);
    EXPECT_GT(r4.avg_latency_ns, r2.avg_latency_ns);
}

TEST(DcFifo, SynchronousBaseline)
{
    EXPECT_DOUBLE_EQ(synchronous_link_latency_ns(1.0, 1), 1.0);
    EXPECT_DOUBLE_EQ(synchronous_link_latency_ns(0.5, 3), 1.5);
    EXPECT_THROW(synchronous_link_latency_ns(0.0, 1), std::invalid_argument);
}

} // namespace
} // namespace noc
