// Collective driver semantics: completion, per-NI delivery accounting,
// multicast vs unicast-emulation, and validation (src/collective).
#include "collective/collective.h"
#include "topology/routing.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace noc {
namespace {

struct Rig {
    Topology topo;
    Route_set routes;
    Network_params params;
    Build_options opts;

    static Rig mesh()
    {
        Mesh_params mp; // 4x4
        Rig r{make_mesh(mp), {}, {}, {}};
        r.routes = xy_routes(r.topo, mp);
        return r;
    }
};

Cycle run_collective(Rig& rig, const Collective_config& cfg,
                     Noc_system* out_sys = nullptr)
{
    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    Collective_driver driver{sys, cfg};
    const Cycle done = driver.run_to_completion(100'000);
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(driver.completion_cycle(), done);
    (void)out_sys;
    return done;
}

TEST(Collective, BroadcastDeliversOncePerNonRootCore)
{
    Rig rig = Rig::mesh();
    Collective_config cfg;
    cfg.kind = Collective_kind::broadcast;
    cfg.root = Core_id{5};

    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    Collective_driver driver{sys, cfg};
    const Cycle done = driver.run_to_completion(100'000);
    ASSERT_NE(done, invalid_cycle);
    EXPECT_TRUE(driver.done());

    const int cores = rig.topo.core_count();
    // One multicast packet from the root, one delivery at every other NI.
    EXPECT_EQ(sys.stats().multicast_packets(), 1u);
    EXPECT_EQ(sys.stats().multicast_destinations(),
              static_cast<std::uint64_t>(cores - 1));
    EXPECT_EQ(sys.stats().multicast_deliveries(),
              static_cast<std::uint64_t>(cores - 1));
    for (int c = 0; c < cores; ++c)
        EXPECT_EQ(sys.ni(Core_id{static_cast<std::uint32_t>(c)})
                      .mcast_deliveries(),
                  c == 5 ? 0u : 1u)
            << "core " << c;
}

TEST(Collective, ReduceConvergesOnRoot)
{
    Rig rig = Rig::mesh();
    Collective_config cfg;
    cfg.kind = Collective_kind::reduce;
    cfg.root = Core_id{0};
    cfg.fanin = 2;

    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    Collective_driver driver{sys, cfg};
    EXPECT_FALSE(driver.done());
    EXPECT_EQ(driver.completion_cycle(), invalid_cycle);
    const Cycle done = driver.run_to_completion(100'000);
    ASSERT_NE(done, invalid_cycle);
    // Reduce is unicast-only: no multicast packets regardless of the flag.
    EXPECT_EQ(sys.stats().multicast_packets(), 0u);
    // A k-ary reduce over n cores carries exactly n-1 contributions.
    EXPECT_EQ(sys.stats().packets_delivered(),
              static_cast<std::uint64_t>(rig.topo.core_count() - 1));
}

TEST(Collective, AllgatherDeliversAllToAll)
{
    Rig rig = Rig::mesh();
    Collective_config cfg;
    cfg.kind = Collective_kind::allgather;
    cfg.root = Core_id{0}; // validated even where the phase plan ignores it

    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    Collective_driver driver{sys, cfg};
    const Cycle done = driver.run_to_completion(100'000);
    ASSERT_NE(done, invalid_cycle);
    const auto n = static_cast<std::uint64_t>(rig.topo.core_count());
    EXPECT_EQ(sys.stats().multicast_packets(), n);
    EXPECT_EQ(sys.stats().multicast_deliveries(), n * (n - 1));
    for (int c = 0; c < rig.topo.core_count(); ++c)
        EXPECT_EQ(sys.ni(Core_id{static_cast<std::uint32_t>(c)})
                      .mcast_deliveries(),
                  n - 1);
}

TEST(Collective, AllreduceMulticastNoSlowerThanEmulation)
{
    // The acceptance gate of the subsystem, in miniature: the tree
    // multicast broadcast phase must complete no later than serializing
    // one unicast packet per destination through the root's injection
    // link.
    Rig rig = Rig::mesh();
    Collective_config cfg;
    cfg.kind = Collective_kind::allreduce;
    cfg.root = Core_id{0};

    cfg.use_multicast = true;
    const Cycle tree = run_collective(rig, cfg);
    cfg.use_multicast = false;
    const Cycle emulated = run_collective(rig, cfg);
    ASSERT_NE(tree, invalid_cycle);
    ASSERT_NE(emulated, invalid_cycle);
    EXPECT_LE(tree, emulated);
}

TEST(Collective, BroadcastEmulationMatchesDeliveryCount)
{
    Rig rig = Rig::mesh();
    Collective_config cfg;
    cfg.kind = Collective_kind::broadcast;
    cfg.root = Core_id{0};
    cfg.use_multicast = false;

    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    Collective_driver driver{sys, cfg};
    const Cycle done = driver.run_to_completion(100'000);
    ASSERT_NE(done, invalid_cycle);
    EXPECT_EQ(sys.stats().multicast_packets(), 0u);
    EXPECT_EQ(sys.stats().packets_delivered(),
              static_cast<std::uint64_t>(rig.topo.core_count() - 1));
}

TEST(Collective, SingleCoreCompletesImmediately)
{
    Topology topo{"solo", 1};
    topo.attach_core(Switch_id{0});
    Route_set routes{1};
    Network_params params;
    Build_options opts;
    Noc_system sys{topo, routes, params, opts};
    Collective_config cfg;
    cfg.kind = Collective_kind::broadcast;
    cfg.root = Core_id{0};
    Collective_driver driver{sys, cfg};
    const Cycle done = driver.run_to_completion(1'000);
    EXPECT_NE(done, invalid_cycle);
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(sys.stats().packets_created(), 0u);
}

TEST(Collective, DoubleStartThrows)
{
    Rig rig = Rig::mesh();
    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    Collective_config cfg;
    cfg.kind = Collective_kind::broadcast;
    cfg.root = Core_id{0};
    Collective_driver driver{sys, cfg};
    driver.start();
    EXPECT_THROW(driver.start(), std::logic_error);
}

TEST(Collective, RejectsBadConfig)
{
    Rig rig = Rig::mesh();
    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    {
        Collective_config cfg;
        cfg.root = Core_id{99}; // out of range
        EXPECT_THROW((Collective_driver{sys, cfg}), std::invalid_argument);
    }
    {
        Collective_config cfg;
        cfg.root = Core_id{0};
        cfg.payload_flits = 0;
        EXPECT_THROW((Collective_driver{sys, cfg}), std::invalid_argument);
    }
    {
        Collective_config cfg;
        cfg.kind = Collective_kind::reduce;
        cfg.root = Core_id{0};
        cfg.fanin = 0;
        EXPECT_THROW((Collective_driver{sys, cfg}), std::invalid_argument);
    }
}

TEST(Collective, RunToCompletionTimesOutGracefully)
{
    Rig rig = Rig::mesh();
    Noc_system sys{rig.topo, rig.routes, rig.params, rig.opts};
    Collective_config cfg;
    cfg.kind = Collective_kind::allreduce;
    cfg.root = Core_id{0};
    Collective_driver driver{sys, cfg};
    // 1 cycle cannot possibly finish a 16-core allreduce.
    EXPECT_EQ(driver.run_to_completion(1), invalid_cycle);
    EXPECT_FALSE(driver.done());
}

} // namespace
} // namespace noc
