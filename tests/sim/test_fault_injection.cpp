// Fault injection vs kernel-schedule equivalence.
//
// The fault engine (arch/fault_plan.h, Noc_system's reconfiguration points)
// mutates the network only at sequential points between kernel run() calls,
// so a fixed Fault_plan must produce bit-identical results under the
// reference, activity-gated and sharded schedules at any shard count —
// exactly the bar the fault-free KernelEquivalence tests set. These tests
// live in the same suite so the TSan CI leg (filter KernelEquivalence.*)
// races the fault path through the sharded kernel too.
//
// Also here: the non-hang guarantee — a failure that disconnects cores
// drops the unreachable traffic and drains instead of timing out — and the
// Probe fault-event hook.
#include "arch/fault_plan.h"
#include "arch/probe.h"
#include "topology/fault.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace noc {
namespace {

/// Every observable the fault-free equivalence suite diffs, plus the fault
/// counters the engine maintains.
struct Fault_snapshot {
    Cycle now = 0;
    bool drained = false;
    std::uint64_t created = 0;
    std::uint64_t delivered = 0;
    std::uint64_t measured_created = 0;
    std::uint64_t measured_delivered = 0;
    std::uint64_t measured_dropped = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t packets_unreachable = 0;
    std::uint64_t packets_replayed = 0;
    std::uint64_t measured_unreachable = 0;
    std::uint64_t flits_dropped = 0;
    std::uint64_t corrupted_flits = 0;
    std::uint64_t retransmissions = 0;
    double packet_latency_mean = 0.0;
    std::uint64_t buffer_writes = 0;
    std::size_t recovery_count = 0;
    std::vector<Cycle> recovered_at;
    std::vector<bool> live_switchovers;
    std::vector<std::uint64_t> per_router_flits;
    std::vector<std::uint64_t> per_ni_injected;
    std::vector<std::uint64_t> per_link_flits;
    std::vector<std::pair<Core_id, Core_id>> unreachable_pairs;

    bool operator==(const Fault_snapshot&) const = default;
};

Fault_snapshot snapshot(Noc_system& sys, bool drained)
{
    Fault_snapshot s;
    s.now = sys.kernel().now();
    s.drained = drained;
    const Network_stats& st = sys.stats();
    s.created = st.packets_created();
    s.delivered = st.packets_delivered();
    s.measured_created = st.measured_created();
    s.measured_delivered = st.measured_delivered();
    s.measured_dropped = st.measured_dropped();
    s.packets_dropped = st.packets_dropped();
    s.packets_unreachable = st.packets_unreachable();
    s.packets_replayed = st.packets_replayed();
    s.measured_unreachable = st.measured_unreachable();
    s.flits_dropped = st.flits_dropped();
    s.corrupted_flits = st.corrupted_flits();
    s.retransmissions = st.retransmissions();
    s.packet_latency_mean = st.packet_latency().mean();
    s.buffer_writes = sys.total_router_buffer_writes();
    s.recovery_count = st.recoveries().size();
    for (const auto& r : st.recoveries()) {
        s.recovered_at.push_back(r.recovered_at);
        s.live_switchovers.push_back(r.live_switchover);
    }
    for (int r = 0; r < sys.topology().switch_count(); ++r)
        s.per_router_flits.push_back(
            sys.router(Switch_id{static_cast<std::uint32_t>(r)})
                .flits_routed());
    for (int l = 0; l < sys.topology().link_count(); ++l)
        s.per_link_flits.push_back(
            sys.link_flits(Link_id{static_cast<std::uint32_t>(l)}));
    for (int c = 0; c < sys.topology().core_count(); ++c)
        s.per_ni_injected.push_back(
            sys.ni(Core_id{static_cast<std::uint32_t>(c)}).flits_injected());
    s.unreachable_pairs = sys.unreachable_pairs();
    return s;
}

auto bernoulli_rig(double rate, std::uint32_t packet_flits = 4)
{
    return [rate, packet_flits](Noc_system& sys) {
        const int cores = sys.topology().core_count();
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(cores));
        for (int c = 0; c < cores; ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = rate;
            sp.packet_size_flits = packet_flits;
            sp.seed = 4242 + static_cast<std::uint64_t>(c);
            sys.ni(core).set_source(
                std::make_unique<Bernoulli_source>(core, sp, pattern));
        }
    };
}

template<typename Rig>
Fault_snapshot run_mode(const Topology& topo, const Route_set& routes,
                        const Network_params& params, Kernel_mode mode,
                        const Rig& rig,
                        std::shared_ptr<const Fault_plan> plan,
                        Partition_plan partition = Partition_plan::single())
{
    Build_options opts;
    opts.kernel_mode = mode;
    opts.partition = std::move(partition);
    opts.fault_plan = std::move(plan);
    Noc_system sys{topo, routes, params, opts};
    rig(sys);
    sys.warmup(500);
    sys.measure(2'000);
    const bool drained = sys.drain(30'000);
    sys.kernel().run(32);
    return snapshot(sys, drained);
}

/// The faulted analogue of expect_equivalent: the same plan through every
/// schedule, diffed against reference. Returns the reference snapshot so
/// callers can additionally assert recovery-specific facts (live
/// switchover, replay counts) without re-running the simulation.
template<typename Rig>
Fault_snapshot expect_fault_equivalent(const Topology& topo,
                                       const Route_set& routes,
                                       const Network_params& params,
                                       const Rig& rig,
                                       std::shared_ptr<const Fault_plan> plan)
{
    const Fault_snapshot ref = run_mode(topo, routes, params,
                                        Kernel_mode::reference, rig, plan);
    EXPECT_GT(ref.delivered, 0u);
    const Fault_snapshot gated = run_mode(
        topo, routes, params, Kernel_mode::activity_gated, rig, plan);
    EXPECT_TRUE(gated == ref);
    // Headline fields individually, for readable failures.
    EXPECT_EQ(gated.now, ref.now);
    EXPECT_EQ(gated.delivered, ref.delivered);
    EXPECT_EQ(gated.packets_dropped, ref.packets_dropped);
    EXPECT_EQ(gated.corrupted_flits, ref.corrupted_flits);
    EXPECT_EQ(gated.retransmissions, ref.retransmissions);
    EXPECT_EQ(gated.recovered_at, ref.recovered_at);
    EXPECT_EQ(gated.per_link_flits, ref.per_link_flits);
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
        const Fault_snapshot sharded =
            run_mode(topo, routes, params, Kernel_mode::sharded, rig, plan,
                     Partition_plan::contiguous(shards));
        EXPECT_TRUE(sharded == ref) << shards << " shards";
        EXPECT_EQ(sharded.now, ref.now) << shards << " shards";
        EXPECT_EQ(sharded.packets_dropped, ref.packets_dropped)
            << shards << " shards";
        EXPECT_EQ(sharded.recovered_at, ref.recovered_at)
            << shards << " shards";
        EXPECT_EQ(sharded.per_router_flits, ref.per_router_flits)
            << shards << " shards";
        EXPECT_EQ(sharded.per_link_flits, ref.per_link_flits)
            << shards << " shards";
        EXPECT_EQ(sharded.per_ni_injected, ref.per_ni_injected)
            << shards << " shards";
    }
    return ref;
}

/// The busiest duplex mesh link whose retirement leaves the BFS ranks
/// from switch 0 unchanged. The failure-aware reroute then obeys the
/// up/down discipline of the SAME rank order as the healthy up*/down*
/// routes, so the union admission check passes and the episode takes the
/// live epoch path instead of pausing to drain. "Busiest" (most src-dst
/// routes crossing it) so in-flight packets actually straddle the failure
/// and the purge/replay machinery has work to do.
Link_id rank_preserving_victim(const Topology& topo,
                               const std::vector<int>& ranks,
                               const Route_set& routes)
{
    const auto usage = [&](Link_id l) {
        std::uint32_t uses = 0;
        for (int s = 0; s < routes.core_count(); ++s)
            for (int d = 0; d < routes.core_count(); ++d) {
                if (s == d) continue;
                const Core_id src{static_cast<std::uint32_t>(s)};
                Switch_id sw = topo.core_switch(src);
                for (const auto& h :
                     routes.at(src, Core_id{static_cast<std::uint32_t>(d)})) {
                    const Link_id link =
                        topo.link_of_output_port(sw, Port_id{h.out_port});
                    if (!link.is_valid()) break;
                    if (link == l) {
                        ++uses;
                        break;
                    }
                    sw = topo.link(link).to;
                }
            }
        return uses;
    };
    Link_id best{};
    std::uint32_t best_uses = 0;
    for (int i = 0; i < topo.link_count(); ++i) {
        const Link_id l{static_cast<std::uint32_t>(i)};
        if (failure_aware_ranks(topo, Switch_id{0},
                                symmetrize_failures(topo, {l})) != ranks)
            continue;
        const std::uint32_t u = usage(l);
        if (!best.is_valid() || u > best_uses) {
            best = l;
            best_uses = u;
        }
    }
    return best;
}

/// A deterministic mixed plan: a sprinkle of transients over the warmup
/// and measurement window, plus one permanent two-link failure
/// mid-measurement.
std::shared_ptr<const Fault_plan> mixed_plan(const Topology& topo,
                                             std::uint32_t transients,
                                             std::uint32_t dead_links)
{
    return std::make_shared<const Fault_plan>(Fault_plan::random_plan(
        topo, /*seed=*/20100607, transients, dead_links,
        /*horizon=*/2'500));
}

TEST(KernelEquivalence, TransientFaultsCreditMesh)
{
    // No ACK/NACK window under credit flow control: corruption marks the
    // flit and delivery accounting still matches across schedules.
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    expect_fault_equivalent(topo, routes, params, bernoulli_rig(0.10),
                            mixed_plan(topo, 24, 0));
}

TEST(KernelEquivalence, TransientFaultsAckNackMesh)
{
    // Go-back-N retransmission actually fires: the corrupted flit is
    // NACKed, the window rewinds, and the retransmission counters must
    // agree bit-for-bit everywhere.
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = Flow_control_kind::ack_nack;
    expect_fault_equivalent(topo, routes, params, bernoulli_rig(0.10),
                            mixed_plan(topo, 24, 0));
}

TEST(KernelEquivalence, PermanentFailureCreditMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    expect_fault_equivalent(topo, routes, params, bernoulli_rig(0.10),
                            mixed_plan(topo, 0, 2));
}

TEST(KernelEquivalence, PermanentFailureOnOffMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = Flow_control_kind::on_off;
    params.buffer_depth = 6;
    expect_fault_equivalent(topo, routes, params, bernoulli_rig(0.10),
                            mixed_plan(topo, 0, 2));
}

TEST(KernelEquivalence, MixedFaultsAckNackMesh)
{
    // The hardest case: transients racing a permanent failure under the
    // scheme with retransmission state — window purges, credit repairs and
    // the online reroute all in one run.
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = Flow_control_kind::ack_nack;
    expect_fault_equivalent(topo, routes, params, bernoulli_rig(0.10),
                            mixed_plan(topo, 16, 2));
}

TEST(KernelEquivalence, PermanentFailureTorus)
{
    Torus_params tp;
    const Topology topo = make_torus(tp);
    const Route_set routes = torus_routes(topo, tp);
    Network_params params;
    params.route_vcs = 2; // dateline VCs
    expect_fault_equivalent(topo, routes, params, bernoulli_rig(0.08),
                            mixed_plan(topo, 0, 2));
}

/// Disconnecting a corner core must not hang the drain: its traffic is
/// dropped as unreachable, the drain completes, and the pairs are
/// reported. Also exercises the Probe fault-event hook.
TEST(KernelEquivalence, DisconnectedCoreDrainsAndReports)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;

    // Kill every outbound link of switch 0; symmetrization retires the
    // inbound directions too, so core 0 ends up fully disconnected.
    auto plan = std::make_shared<Fault_plan>();
    std::vector<Link_id> dead;
    for (const Link_id l : topo.out_links(Switch_id{0})) dead.push_back(l);
    ASSERT_FALSE(dead.empty());
    plan->add_permanent(1'000, dead);

    Build_options opts;
    opts.fault_plan = plan;
    Noc_system sys{topo, routes, params, opts};
    Trace_probe probe;
    sys.attach_probe(&probe);
    bernoulli_rig(0.10)(sys);
    sys.warmup(500);
    sys.measure(2'000);
    EXPECT_TRUE(sys.drain(30'000)) << "disconnected-core drain hung";

    EXPECT_EQ(sys.failed_links().size(), dead.size());
    // Core 0 can reach nobody and nobody can reach it: 2*(cores-1) pairs.
    const std::size_t cores =
        static_cast<std::size_t>(topo.core_count());
    EXPECT_EQ(sys.unreachable_pairs().size(), 2 * (cores - 1));
    for (const auto& [src, dst] : sys.unreachable_pairs())
        EXPECT_TRUE(src == Core_id{0} || dst == Core_id{0});
    // Offered traffic to/from the island was dropped, not lost track of.
    EXPECT_GT(sys.stats().packets_unreachable(), 0u);
    EXPECT_EQ(sys.stats().recoveries().size(), 1u);

    // The probe saw the failure and the reroute, in order.
    const auto& events = probe.fault_events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, Fault_event::Kind::link_failed);
    EXPECT_EQ(events[0].at, 1'000u);
    EXPECT_EQ(events[1].kind, Fault_event::Kind::rerouted);
    EXPECT_GE(events[1].at, 1'000u + plan->reroute_latency);
    EXPECT_EQ(events[1].unreachable_pairs, 2 * (cores - 1));
}

/// Surviving traffic keeps flowing after a reroute: the post-recovery
/// routes avoid every retired link, so dead wires carry nothing after the
/// failure cycle (their counters freeze).
TEST(KernelEquivalence, DeadLinksCarryNothingAfterFailure)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;
    auto plan = mixed_plan(topo, 0, 2);

    Build_options opts;
    opts.fault_plan = plan;
    Noc_system sys{topo, routes, params, opts};
    bernoulli_rig(0.10)(sys);
    sys.warmup(500);
    sys.measure(2'000);
    ASSERT_TRUE(sys.drain(30'000));

    ASSERT_FALSE(sys.failed_links().empty());
    std::vector<std::uint64_t> at_death;
    for (const Link_id l : sys.failed_links())
        at_death.push_back(sys.link_flits(l));
    // Keep running well past the recovery: the frozen counters must not
    // move, while the network as a whole still delivers.
    const std::uint64_t delivered_before = sys.stats().packets_delivered();
    sys.kernel().run(2'000);
    std::size_t i = 0;
    for (const Link_id l : sys.failed_links())
        EXPECT_EQ(sys.link_flits(l), at_death[i++]) << "dead link " << l.get();
    EXPECT_GT(sys.stats().packets_delivered(), delivered_before);
}

TEST(KernelEquivalence, EpochLiveRerouteUpdownMesh)
{
    // Up*/down* routes plus a rank-preserving victim: the union deadlock
    // check admits the new routes while old-epoch packets are still in
    // flight, so recovery completes in exactly reroute_latency cycles with
    // no drain pause — and must do so identically on every schedule.
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const std::vector<int> ranks = spanning_tree_ranks(topo, Switch_id{0});
    const Route_set routes = updown_routes(topo, ranks);
    const Link_id victim = rank_preserving_victim(topo, ranks, routes);
    ASSERT_TRUE(victim.is_valid());
    auto plan = std::make_shared<Fault_plan>();
    plan->add_permanent(1'250, {victim});
    plan->reroute_latency = 8;
    const Network_params params;
    const Fault_snapshot ref = expect_fault_equivalent(
        topo, routes, params, bernoulli_rig(0.10), plan);
    ASSERT_EQ(ref.recovery_count, 1u);
    EXPECT_EQ(ref.live_switchovers, std::vector<bool>{true});
    EXPECT_EQ(ref.recovered_at[0], 1'250 + plan->reroute_latency);
    EXPECT_TRUE(ref.drained);
}

TEST(KernelEquivalence, EpochReplayDropsNothingUpdownMesh)
{
    // Same live switchover, with end-to-end replay on: every packet purged
    // at the failure is rescheduled from its source NI, so the run ends
    // with zero drops and a positive replay count, bit-identically across
    // schedules.
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const std::vector<int> ranks = spanning_tree_ranks(topo, Switch_id{0});
    const Route_set routes = updown_routes(topo, ranks);
    const Link_id victim = rank_preserving_victim(topo, ranks, routes);
    ASSERT_TRUE(victim.is_valid());
    auto plan = std::make_shared<Fault_plan>();
    plan->add_permanent(1'250, {victim});
    plan->reroute_latency = 8;
    plan->replay = true;
    const Network_params params;
    // Heavier load and longer wormholes than the sibling test: 8-flit
    // packets occupy the victim for whole windows, so the failure is
    // guaranteed to catch straddlers and exercise the replay path.
    const Fault_snapshot ref = expect_fault_equivalent(
        topo, routes, params, bernoulli_rig(0.20, 8), plan);
    ASSERT_EQ(ref.recovery_count, 1u);
    EXPECT_EQ(ref.live_switchovers, std::vector<bool>{true});
    EXPECT_TRUE(ref.drained);
    EXPECT_EQ(ref.packets_dropped, 0u);
    EXPECT_EQ(ref.packets_unreachable, 0u);
    EXPECT_GT(ref.packets_replayed, 0u);
}

TEST(KernelEquivalence, RouterDeathCreditMesh)
{
    // Whole-router death: every attached link retires and the local NI
    // powers off. With one core per mesh switch, every pair touching the
    // dead core becomes unreachable; the survivors keep running and the
    // purge/reroute stays schedule-identical.
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    auto plan = std::make_shared<Fault_plan>();
    plan->add_router_death(1'250, Switch_id{5});
    const Network_params params;
    const Fault_snapshot ref = expect_fault_equivalent(
        topo, routes, params, bernoulli_rig(0.10), plan);
    ASSERT_EQ(ref.recovery_count, 1u);
    EXPECT_TRUE(ref.drained);
    const auto cores = static_cast<std::size_t>(topo.core_count());
    EXPECT_EQ(ref.unreachable_pairs.size(), 2 * (cores - 1));
    EXPECT_GT(ref.packets_unreachable, 0u);
}

TEST(KernelEquivalence, RegionPowerOffReplayMesh)
{
    // A corner region powers off while replay is on: survivor-to-survivor
    // packets purged by the storm are replayed (never dropped — the only
    // losses are conclusively-unreachable traffic touching the region,
    // which counts as dropped AND unreachable), and every unreachable pair
    // involves a powered-off switch.
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const std::set<Switch_id> region{Switch_id{0}, Switch_id{1},
                                     Switch_id{4}};
    auto plan = std::make_shared<Fault_plan>();
    plan->add_region_off(1'250,
                         {Switch_id{0}, Switch_id{1}, Switch_id{4}});
    plan->replay = true;
    const Network_params params;
    const Fault_snapshot ref = expect_fault_equivalent(
        topo, routes, params, bernoulli_rig(0.10), plan);
    ASSERT_EQ(ref.recovery_count, 1u);
    EXPECT_TRUE(ref.drained);
    EXPECT_EQ(ref.packets_dropped, ref.packets_unreachable);
    EXPECT_FALSE(ref.unreachable_pairs.empty());
    for (const auto& [src, dst] : ref.unreachable_pairs)
        EXPECT_TRUE(
            region.count(topo.core_switch(src)) != 0 ||
            region.count(topo.core_switch(dst)) != 0)
            << "pair " << src.get() << "->" << dst.get();
}

/// The probe narrates a router death end to end: a router_failed event
/// naming the dead switch, a packet_replayed event for the purged traffic,
/// and the rerouted event closing the episode — all visible in dump().
TEST(KernelEquivalence, RouterDeathProbeEventsAndReplay)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;
    auto plan = std::make_shared<Fault_plan>();
    plan->add_router_death(1'250, Switch_id{5});
    plan->replay = true;

    Build_options opts;
    opts.fault_plan = plan;
    Noc_system sys{topo, routes, params, opts};
    Trace_probe probe;
    sys.attach_probe(&probe);
    bernoulli_rig(0.10)(sys);
    sys.warmup(500);
    sys.measure(2'000);
    EXPECT_TRUE(sys.drain(30'000));

    const auto& events = probe.fault_events();
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events[0].kind, Fault_event::Kind::router_failed);
    EXPECT_EQ(events[0].at, 1'250u);
    EXPECT_EQ(events[0].switches, std::vector<Switch_id>{Switch_id{5}});
    EXPECT_EQ(events.back().kind, Fault_event::Kind::rerouted);
    EXPECT_EQ(events.back().switches,
              std::vector<Switch_id>{Switch_id{5}});
    if (sys.stats().packets_replayed() > 0) {
        bool saw_replay = false;
        for (const auto& e : events)
            saw_replay |= e.kind == Fault_event::Kind::packet_replayed;
        EXPECT_TRUE(saw_replay);
    }
    const std::string dump = probe.dump(sys.flit_pool());
    EXPECT_NE(dump.find("router_failed"), std::string::npos);
    EXPECT_NE(dump.find("rerouted"), std::string::npos);
}

} // namespace
} // namespace noc
