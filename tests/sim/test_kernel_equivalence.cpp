// Activity-gated and sharded vs reference kernel equivalence.
//
// The gating refactor (sim/kernel.h) must be a pure scheduling optimization:
// for any configuration, running the identical network under
// Kernel_mode::activity_gated and Kernel_mode::reference has to produce
// bit-identical measured statistics, per-router activity counters, and final
// cycle counts. The same holds for Kernel_mode::sharded at ANY shard count:
// the two-phase read-committed discipline makes the shard-parallel schedule
// a pure re-interleaving of the gated one, so every configuration here is
// additionally swept through the sharded kernel at 1, 2 and 4 shards
// (1 shard = the degenerate case that must equal the gated schedule).
// These tests sweep the flow-control schemes, load levels, source models
// and a dateline-VC topology through the kernels and diff every observable
// counter. Every configuration is additionally re-run with a telemetry
// registry + async sampler attached (telemetry/registry.h): the pull-based
// surface must be result-invisible on every schedule, so the attached runs
// are held to the same bit-identity bar.
#include "arch/traffic_source.h"
#include "collective/collective.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"
#include "topology/multicast.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/flow_traffic.h"
#include "traffic/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

namespace noc {
namespace {

struct Snapshot {
    Cycle now = 0;
    bool drained = false;
    std::uint64_t created = 0;
    std::uint64_t delivered = 0;
    std::uint64_t measured_created = 0;
    std::uint64_t measured_delivered = 0;
    std::uint64_t measured_flits = 0;
    double packet_latency_mean = 0.0;
    double packet_latency_max = 0.0;
    double network_latency_mean = 0.0;
    std::uint64_t buffer_writes = 0;
    std::uint64_t buffer_reads = 0;
    std::vector<std::uint64_t> per_router_flits;
    std::vector<std::uint64_t> per_ni_injected;
    std::vector<std::uint64_t> per_link_flits;
    // Multicast surface (all zero on unicast-only runs, so the defaulted
    // comparison stays meaningful for the historical tests).
    std::uint64_t mcast_packets = 0;
    std::uint64_t mcast_destinations = 0;
    std::uint64_t mcast_deliveries = 0;
    std::uint64_t mcast_forks = 0;
    std::uint64_t mcast_copies = 0;
    std::vector<std::uint64_t> per_ni_mcast_deliveries;

    bool operator==(const Snapshot&) const = default;
};

Snapshot snapshot(Noc_system& sys, Cycle now, bool drained)
{
    Snapshot s;
    s.now = now;
    s.drained = drained;
    const Network_stats& st = sys.stats();
    s.created = st.packets_created();
    s.delivered = st.packets_delivered();
    s.measured_created = st.measured_created();
    s.measured_delivered = st.measured_delivered();
    s.measured_flits = st.measured_flits_delivered();
    s.packet_latency_mean = st.packet_latency().mean();
    s.packet_latency_max = st.packet_latency().max();
    s.network_latency_mean = st.network_latency().mean();
    s.buffer_writes = sys.total_router_buffer_writes();
    s.buffer_reads = sys.total_router_buffer_reads();
    for (int r = 0; r < sys.topology().switch_count(); ++r)
        s.per_router_flits.push_back(
            sys.router(Switch_id{static_cast<std::uint32_t>(r)})
                .flits_routed());
    for (int l = 0; l < sys.topology().link_count(); ++l)
        s.per_link_flits.push_back(
            sys.link_flits(Link_id{static_cast<std::uint32_t>(l)}));
    for (int c = 0; c < sys.topology().core_count(); ++c)
        s.per_ni_injected.push_back(
            sys.ni(Core_id{static_cast<std::uint32_t>(c)}).flits_injected());
    s.mcast_packets = st.multicast_packets();
    s.mcast_destinations = st.multicast_destinations();
    s.mcast_deliveries = st.multicast_deliveries();
    s.mcast_forks = st.multicast_forks();
    s.mcast_copies = st.multicast_copies();
    for (int c = 0; c < sys.topology().core_count(); ++c)
        s.per_ni_mcast_deliveries.push_back(
            sys.ni(Core_id{static_cast<std::uint32_t>(c)})
                .mcast_deliveries());
    return s;
}

struct Run_result {
    Snapshot snap;
    std::size_t active_after_drain = 0;
    std::size_t component_count = 0;
};

/// Ramp weights for balanced-partition runs: deterministic, deliberately
/// lopsided so the balanced cut lands somewhere the equal-count cut never
/// would. (Which partition is chosen must be invisible in results.)
std::vector<std::uint64_t> ramp_weights(int switches)
{
    std::vector<std::uint64_t> w;
    for (int s = 0; s < switches; ++s)
        w.push_back(1 + static_cast<std::uint64_t>(s) * s % 17);
    return w;
}

/// Build the configured system, install sources via `rig`, run the standard
/// warmup/measure/drain protocol under `mode`, and snapshot every counter.
/// `plan` partitions the system (only meaningful with
/// Kernel_mode::sharded). With `telemetry` a registry + async sampler ride
/// along (period 64) — the snapshot must not notice.
template<typename Rig>
Run_result run_mode(const Topology& topo, const Route_set& routes,
                    const Network_params& params, Kernel_mode mode,
                    const Rig& rig,
                    Partition_plan plan = Partition_plan::single(),
                    bool telemetry = false)
{
    Build_options opts;
    opts.kernel_mode = mode;
    opts.partition = std::move(plan);
    Noc_system sys{topo, routes, params, opts};
    rig(sys);
    Telemetry_registry reg;
    std::unique_ptr<Telemetry_sampler> sampler;
    if (telemetry) {
        sys.attach_telemetry(reg);
        sampler = std::make_unique<Telemetry_sampler>(&reg, 64);
        sys.attach_sampler(sampler.get());
    }
    sys.warmup(500);
    sys.measure(2'000);
    const bool drained = sys.drain(30'000);
    if (sampler) {
        sys.attach_sampler(nullptr);
        sampler->stop();
        EXPECT_GT(sampler->sample_count(), 0u);
    }
    // A handful of settle cycles so components woken by the very last
    // in-flight tokens get the step in which they go back to sleep.
    sys.kernel().run(32);
    Run_result r;
    r.snap = snapshot(sys, sys.kernel().now(), drained);
    r.active_after_drain = sys.kernel().active_component_count();
    r.component_count = sys.kernel().component_count();
    return r;
}

template<typename Rig>
void expect_equivalent(const Topology& topo, const Route_set& routes,
                       const Network_params& params, const Rig& rig,
                       bool expect_traffic = true)
{
    const Run_result gated =
        run_mode(topo, routes, params, Kernel_mode::activity_gated, rig);
    const Run_result ref =
        run_mode(topo, routes, params, Kernel_mode::reference, rig);
    EXPECT_TRUE(gated.snap == ref.snap);
    // Diff the headline fields individually too, for readable failures.
    EXPECT_EQ(gated.snap.now, ref.snap.now);
    EXPECT_EQ(gated.snap.created, ref.snap.created);
    EXPECT_EQ(gated.snap.delivered, ref.snap.delivered);
    EXPECT_EQ(gated.snap.measured_flits, ref.snap.measured_flits);
    EXPECT_EQ(gated.snap.packet_latency_mean, ref.snap.packet_latency_mean);
    EXPECT_EQ(gated.snap.buffer_writes, ref.snap.buffer_writes);
    EXPECT_EQ(gated.snap.per_router_flits, ref.snap.per_router_flits);
    EXPECT_EQ(gated.snap.per_link_flits, ref.snap.per_link_flits);
    EXPECT_EQ(gated.snap.per_ni_injected, ref.snap.per_ni_injected);
    EXPECT_TRUE(gated.snap.drained);
    // The sharded schedule must reproduce the same run bit-for-bit at any
    // partition width — including the degenerate single shard — and for
    // ANY cut placement: each width runs under both the equal-count
    // contiguous plan and a weight-balanced plan with lopsided ramp
    // weights (partition choice is metadata, never simulation state).
    const auto weights = ramp_weights(topo.switch_count());
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
        for (const bool balanced : {false, true}) {
            const Partition_plan plan =
                balanced ? Partition_plan::balanced(shards, weights)
                         : Partition_plan::contiguous(shards);
            const char* kind = balanced ? "balanced" : "contiguous";
            const Run_result sharded = run_mode(
                topo, routes, params, Kernel_mode::sharded, rig, plan);
            EXPECT_TRUE(sharded.snap == ref.snap)
                << shards << " shards " << kind;
            EXPECT_EQ(sharded.snap.now, ref.snap.now)
                << shards << " shards " << kind;
            EXPECT_EQ(sharded.snap.delivered, ref.snap.delivered)
                << shards << " shards " << kind;
            EXPECT_EQ(sharded.snap.packet_latency_mean,
                      ref.snap.packet_latency_mean)
                << shards << " shards " << kind;
            EXPECT_EQ(sharded.snap.per_router_flits,
                      ref.snap.per_router_flits)
                << shards << " shards " << kind;
            EXPECT_EQ(sharded.snap.per_link_flits, ref.snap.per_link_flits)
                << shards << " shards " << kind;
            EXPECT_EQ(sharded.snap.per_ni_injected,
                      ref.snap.per_ni_injected)
                << shards << " shards " << kind;
        }
    }
    // Telemetry attach (registry + async sampler) must be result-invisible
    // on every schedule — the registry's zero-perturbation contract, held
    // to the same bit-identity bar as the schedules themselves.
    const Run_result tele_ref =
        run_mode(topo, routes, params, Kernel_mode::reference, rig,
                 Partition_plan::single(), /*telemetry=*/true);
    EXPECT_TRUE(tele_ref.snap == ref.snap) << "telemetry-attached reference";
    const Run_result tele_gated =
        run_mode(topo, routes, params, Kernel_mode::activity_gated, rig,
                 Partition_plan::single(), /*telemetry=*/true);
    EXPECT_TRUE(tele_gated.snap == ref.snap) << "telemetry-attached gated";
    const Run_result tele_sharded =
        run_mode(topo, routes, params, Kernel_mode::sharded, rig,
                 Partition_plan::contiguous(4), /*telemetry=*/true);
    EXPECT_TRUE(tele_sharded.snap == ref.snap)
        << "telemetry-attached sharded x4";
    // Open-loop sources keep injecting after the measurement window, so no
    // bound on the post-drain active set holds here — the "gating actually
    // gates" check lives in TraceDrivenSystemSleepsWhenDone, where traffic
    // provably stops.
    if (expect_traffic) EXPECT_GT(gated.snap.delivered, 0u);
}

/// Bernoulli sources on every core, uniform destinations, deterministic
/// per-core seeds.
auto bernoulli_rig(double rate, std::uint32_t packet_flits = 4)
{
    return [rate, packet_flits](Noc_system& sys) {
        const int cores = sys.topology().core_count();
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(cores));
        for (int c = 0; c < cores; ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = rate;
            sp.packet_size_flits = packet_flits;
            sp.seed = 4242 + static_cast<std::uint64_t>(c);
            sys.ni(core).set_source(
                std::make_unique<Bernoulli_source>(core, sp, pattern));
        }
    };
}

TEST(KernelEquivalence, CreditMeshLowLoad)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    expect_equivalent(topo, routes, params, bernoulli_rig(0.05));
}

TEST(KernelEquivalence, CreditMeshNearSaturation)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    expect_equivalent(topo, routes, params, bernoulli_rig(0.40));
}

TEST(KernelEquivalence, OnOffMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = Flow_control_kind::on_off;
    params.buffer_depth = 6;
    expect_equivalent(topo, routes, params, bernoulli_rig(0.10));
}

TEST(KernelEquivalence, AckNackMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = Flow_control_kind::ack_nack;
    expect_equivalent(topo, routes, params, bernoulli_rig(0.10));
}

TEST(KernelEquivalence, BurstyTrafficMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;
    auto rig = [](Noc_system& sys) {
        const int cores = sys.topology().core_count();
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(cores));
        for (int c = 0; c < cores; ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            Burst_source::Params bp;
            bp.on_rate_flits_per_cycle = 0.4;
            bp.seed = 999 + static_cast<std::uint64_t>(c);
            sys.ni(core).set_source(
                std::make_unique<Burst_source>(core, bp, pattern));
        }
    };
    expect_equivalent(topo, routes, params, rig);
}

TEST(KernelEquivalence, RingWithDatelineVcs)
{
    Ring_params rp;
    rp.node_count = 8;
    const Topology topo = make_ring(rp);
    const Route_set routes = ring_routes(topo, rp);
    Network_params params;
    params.route_vcs = 2;
    expect_equivalent(topo, routes, params, bernoulli_rig(0.08));
}

/// Trace-driven cores go fully quiescent once the trace is replayed, so
/// after drain the entire system must be asleep under gating.
TEST(KernelEquivalence, TraceDrivenSystemSleepsWhenDone)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;

    auto rig = [&](Noc_system& sys) {
        for (int c = 0; c < topo.core_count(); ++c) {
            std::vector<Trace_event> events;
            for (Cycle t = 10; t < 400; t += 37) {
                Trace_event e;
                e.at = t + static_cast<Cycle>(c);
                e.dst = Core_id{
                    static_cast<std::uint32_t>((c + 5) % topo.core_count())};
                e.size_flits = 3;
                events.push_back(e);
            }
            sys.ni(Core_id{static_cast<std::uint32_t>(c)})
                .set_source(std::make_unique<Trace_source>(std::move(events)));
        }
    };
    const Run_result gated =
        run_mode(topo, routes, params, Kernel_mode::activity_gated, rig);
    const Run_result ref =
        run_mode(topo, routes, params, Kernel_mode::reference, rig);
    EXPECT_TRUE(gated.snap == ref.snap);
    EXPECT_GT(gated.snap.delivered, 0u);
    EXPECT_TRUE(gated.snap.drained);
    EXPECT_EQ(gated.active_after_drain, 0u); // everything asleep
    // The sharded schedule must gate (and skip idle regions) just as well.
    const Run_result sharded =
        run_mode(topo, routes, params, Kernel_mode::sharded, rig,
                 Partition_plan::contiguous(4));
    EXPECT_TRUE(sharded.snap == ref.snap);
    EXPECT_EQ(sharded.active_after_drain, 0u);
}

/// Hotspot traffic on a mesh under Partition_plan::balanced with weights
/// from a real profiling run (switch_load_profile of a prior identical
/// run): the weight-balanced cut must be bit-identical to reference at 2
/// and 4 shards — the correctness bar for the ROADMAP's load-balanced
/// partitioning. Also checks the balanced plan actually moved a cut point
/// on this deliberately skewed load.
TEST(KernelEquivalence, HotspotMeshBalancedPartition)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;
    auto rig = [&](Noc_system& sys) {
        const int cores = sys.topology().core_count();
        // All traffic converges on core 0's corner: row 0 switches carry
        // far more work than the opposite edge.
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_hotspot_pattern(cores, {Core_id{0}, Core_id{1}}, 0.8));
        for (int c = 0; c < cores; ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = 0.10;
            sp.packet_size_flits = 4;
            sp.seed = 77 + static_cast<std::uint64_t>(c);
            sys.ni(core).set_source(
                std::make_unique<Bernoulli_source>(core, sp, pattern));
        }
    };

    const Run_result ref =
        run_mode(topo, routes, params, Kernel_mode::reference, rig);

    // Profiling run: same rig under the gated schedule; its per-switch
    // flits_routed is the balanced plan's weight vector.
    std::vector<std::uint64_t> profile;
    {
        Build_options opts;
        Noc_system sys{topo, routes, params, opts};
        rig(sys);
        sys.warmup(500);
        sys.measure(2'000);
        (void)sys.drain(30'000);
        profile = sys.switch_load_profile();
    }
    ASSERT_EQ(profile.size(),
              static_cast<std::size_t>(topo.switch_count()));
    EXPECT_GT(*std::max_element(profile.begin(), profile.end()), 0u);

    for (const std::uint32_t shards : {2u, 4u}) {
        const Partition_plan plan = Partition_plan::balanced(shards, profile);
        const Run_result bal =
            run_mode(topo, routes, params, Kernel_mode::sharded, rig, plan);
        EXPECT_TRUE(bal.snap == ref.snap) << shards << " shards";
        EXPECT_EQ(bal.snap.per_router_flits, ref.snap.per_router_flits)
            << shards << " shards";
        // The skewed profile must move at least one cut vs equal-count.
        EXPECT_NE(plan.assign(static_cast<std::uint32_t>(
                      topo.switch_count())),
                  Partition_plan::contiguous(shards).assign(
                      static_cast<std::uint32_t>(topo.switch_count())))
            << shards << " shards";
    }
}

/// Application-graph traffic (Flow_source) through every kernel schedule:
/// the event-driven rewrite (flow_traffic.h) must leave the gated and
/// sharded runs bit-identical to reference, now with NIs sleeping through
/// the inter-injection gaps the flows promise.
TEST(KernelEquivalence, FlowSourceApplicationGraph)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;

    auto rig = [&](Noc_system& sys) {
        const int cores = sys.topology().core_count();
        Core_graph g{"equiv"};
        for (int c = 0; c < cores; ++c) g.add_core({"c", false, 1.0, {}});
        for (int c = 0; c < cores; ++c) {
            Flow_spec f;
            f.src = c;
            f.dst = (c + 3) % cores;
            f.bandwidth_mbps = 150.0 + 40.0 * (c % 4);
            f.packet_bytes = 16;
            g.add_flow(f);
        }
        for (int c = 0; c < cores; ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            Flow_source::Params fp;
            fp.seed = 2024 + static_cast<std::uint64_t>(c);
            sys.ni(core).set_source(
                std::make_unique<Flow_source>(core, g, fp));
        }
    };
    expect_equivalent(topo, routes, params, rig);
}

// --- multicast / collective -------------------------------------------------

/// Bounded periodic multicast source: one dset-0 packet every `period`
/// cycles starting at `phase`, `count` packets total, then quiescent — so
/// the run drains and activity gating can prove the NI sleeps through the
/// gaps (next_poll_at promises them side-effect-free).
class Mcast_burst_source final : public Traffic_source {
public:
    Mcast_burst_source(Cycle phase, Cycle period, std::uint32_t count,
                       std::uint32_t size_flits)
        : phase_{phase}, period_{period}, remaining_{count},
          size_flits_{size_flits}
    {
    }

    std::optional<Packet_desc> poll(Cycle now) override
    {
        if (remaining_ == 0 || now < phase_ || (now - phase_) % period_ != 0)
            return std::nullopt;
        --remaining_;
        Packet_desc d;
        d.size_flits = size_flits_;
        d.dset = Dset_id{0};
        return d;
    }

    [[nodiscard]] Cycle next_poll_at(Cycle now) const override
    {
        if (remaining_ == 0) return invalid_cycle;
        if (now < phase_) return phase_;
        return phase_ + ((now - phase_) / period_ + 1) * period_;
    }

private:
    Cycle phase_;
    Cycle period_;
    std::uint32_t remaining_;
    std::uint32_t size_flits_;
};

/// Multicast bursts on two cores (dset 0 spans both mesh diagonals' ends)
/// over Bernoulli background everywhere else. The rig installs the
/// destination-set trees exactly like production callers do — through
/// multicast_routes + Noc_system::set_mcast_routes.
auto multicast_rig(const Topology& topo, const Route_set& routes,
                   const Network_params& params)
{
    return [&topo, &routes, &params](Noc_system& sys) {
        sys.set_mcast_routes(multicast_routes(
            topo, routes,
            {{Core_id{0}, Core_id{3}, Core_id{5}, Core_id{12}, Core_id{15}}},
            params.route_vcs));
        const int cores = sys.topology().core_count();
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(cores));
        for (int c = 0; c < cores; ++c) {
            const Core_id core{static_cast<std::uint32_t>(c)};
            if (c == 0 || c == 5) {
                sys.ni(core).set_source(std::make_unique<Mcast_burst_source>(
                    /*phase=*/100 + static_cast<Cycle>(c), /*period=*/40,
                    /*count=*/55, /*size_flits=*/4));
                continue;
            }
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = 0.05;
            sp.packet_size_flits = 4;
            sp.seed = 4242 + static_cast<std::uint64_t>(c);
            sys.ni(core).set_source(
                std::make_unique<Bernoulli_source>(core, sp, pattern));
        }
    };
}

TEST(KernelEquivalence, MulticastCreditMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    const auto rig = multicast_rig(topo, routes, params);
    // The rig actually exercises the multicast fabric: packets fork in the
    // switches and every destination of a drained run is delivered.
    const Run_result probe =
        run_mode(topo, routes, params, Kernel_mode::reference, rig);
    ASSERT_TRUE(probe.snap.drained);
    EXPECT_GT(probe.snap.mcast_packets, 0u);
    EXPECT_GT(probe.snap.mcast_forks, 0u);
    EXPECT_EQ(probe.snap.mcast_deliveries, probe.snap.mcast_destinations);
    expect_equivalent(topo, routes, params, rig);
}

TEST(KernelEquivalence, MulticastOnOffMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = Flow_control_kind::on_off;
    params.buffer_depth = 6;
    expect_equivalent(topo, routes, params,
                      multicast_rig(topo, routes, params));
}

TEST(KernelEquivalence, MulticastAckNackMesh)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = Flow_control_kind::ack_nack;
    expect_equivalent(topo, routes, params,
                      multicast_rig(topo, routes, params));
}

struct Collective_result {
    Snapshot snap;
    Cycle completion = invalid_cycle;
};

/// Build the system under `mode`, run one collective to completion, and
/// snapshot everything. No background traffic: the completion cycle is the
/// schedule-invariant observable under test.
Collective_result run_collective(const Topology& topo,
                                 const Route_set& routes,
                                 const Network_params& params,
                                 Kernel_mode mode,
                                 const Collective_config& cfg,
                                 Partition_plan plan =
                                     Partition_plan::single())
{
    Build_options opts;
    opts.kernel_mode = mode;
    opts.partition = std::move(plan);
    Noc_system sys{topo, routes, params, opts};
    Collective_driver driver{sys, cfg};
    Collective_result r;
    r.completion = driver.run_to_completion(50'000);
    r.snap = snapshot(sys, sys.kernel().now(), driver.done());
    return r;
}

/// Broadcast and allreduce completion cycles (and every counter) must be
/// bit-identical across reference / gated / sharded at 1, 2 and 4 shards
/// under both cut placements — the collective analogue of the synthetic
/// equivalence sweeps above.
TEST(KernelEquivalence, CollectiveCompletionAllSchedules)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;
    const auto weights = ramp_weights(topo.switch_count());
    for (const Collective_kind kind :
         {Collective_kind::broadcast, Collective_kind::allreduce}) {
        Collective_config cfg;
        cfg.kind = kind;
        cfg.root = Core_id{0};
        const Collective_result ref = run_collective(
            topo, routes, params, Kernel_mode::reference, cfg);
        ASSERT_NE(ref.completion, invalid_cycle)
            << collective_kind_name(kind);
        EXPECT_GT(ref.snap.mcast_packets, 0u) << collective_kind_name(kind);
        const Collective_result gated = run_collective(
            topo, routes, params, Kernel_mode::activity_gated, cfg);
        EXPECT_EQ(gated.completion, ref.completion)
            << collective_kind_name(kind);
        EXPECT_TRUE(gated.snap == ref.snap) << collective_kind_name(kind);
        for (const std::uint32_t shards : {1u, 2u, 4u}) {
            for (const bool balanced : {false, true}) {
                const Partition_plan plan =
                    balanced ? Partition_plan::balanced(shards, weights)
                             : Partition_plan::contiguous(shards);
                const Collective_result sharded =
                    run_collective(topo, routes, params,
                                   Kernel_mode::sharded, cfg, plan);
                EXPECT_EQ(sharded.completion, ref.completion)
                    << collective_kind_name(kind) << " " << shards
                    << " shards " << (balanced ? "balanced" : "contiguous");
                EXPECT_TRUE(sharded.snap == ref.snap)
                    << collective_kind_name(kind) << " " << shards
                    << " shards " << (balanced ? "balanced" : "contiguous");
            }
        }
    }
}

/// The collective completion invariant holds for every flow-control
/// scheme, including the unicast-emulation fallback (no multicast fabric
/// involved at all).
TEST(KernelEquivalence, CollectiveAllreduceEveryFlowControl)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    for (const Flow_control_kind fc :
         {Flow_control_kind::credit, Flow_control_kind::on_off,
          Flow_control_kind::ack_nack}) {
        Network_params params;
        params.fc = fc;
        if (fc == Flow_control_kind::on_off) params.buffer_depth = 6;
        for (const bool use_multicast : {true, false}) {
            Collective_config cfg;
            cfg.kind = Collective_kind::allreduce;
            cfg.root = Core_id{0};
            cfg.use_multicast = use_multicast;
            const Collective_result ref = run_collective(
                topo, routes, params, Kernel_mode::reference, cfg);
            ASSERT_NE(ref.completion, invalid_cycle);
            if (!use_multicast) EXPECT_EQ(ref.snap.mcast_packets, 0u);
            const Collective_result gated = run_collective(
                topo, routes, params, Kernel_mode::activity_gated, cfg);
            EXPECT_EQ(gated.completion, ref.completion);
            EXPECT_TRUE(gated.snap == ref.snap);
            const Collective_result sharded = run_collective(
                topo, routes, params, Kernel_mode::sharded, cfg,
                Partition_plan::contiguous(4));
            EXPECT_EQ(sharded.completion, ref.completion);
            EXPECT_TRUE(sharded.snap == ref.snap);
        }
    }
}

} // namespace
} // namespace noc
