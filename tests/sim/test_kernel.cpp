#include "arch/channel.h"
#include "sim/kernel.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

/// Counts its step/advance calls and records the cycle values it saw.
class Probe final : public Component {
public:
    void step(Cycle now) override
    {
        ++steps;
        last_cycle = now;
    }
    void advance() override { ++advances; }
    bool uses_advance() const override { return true; }
    std::string name() const override { return "probe"; }

    int steps = 0;
    int advances = 0;
    Cycle last_cycle = 0;
};

TEST(SimKernel, RejectsNullComponent)
{
    Sim_kernel k;
    EXPECT_THROW(k.add(nullptr), std::invalid_argument);
}

TEST(SimKernel, RunsEveryComponentEveryCycle)
{
    Sim_kernel k;
    Probe a;
    Probe b;
    k.add(&a);
    k.add(&b);
    k.run(5);
    EXPECT_EQ(k.now(), 5u);
    EXPECT_EQ(a.steps, 5);
    EXPECT_EQ(a.advances, 5);
    EXPECT_EQ(b.steps, 5);
    EXPECT_EQ(a.last_cycle, 4u);
    EXPECT_EQ(k.component_count(), 2u);
}

TEST(SimKernel, RunZeroCyclesIsNoop)
{
    Sim_kernel k;
    Probe a;
    k.add(&a);
    k.run(0);
    EXPECT_EQ(a.steps, 0);
    EXPECT_EQ(k.now(), 0u);
}

TEST(SimKernel, RunUntilStopsEarly)
{
    Sim_kernel k;
    Probe a;
    k.add(&a);
    const bool hit = k.run_until([&] { return a.steps >= 10; }, 1'000, 4);
    EXPECT_TRUE(hit);
    // Checked every 4 cycles: stops at the first multiple of 4 >= 10.
    EXPECT_EQ(a.steps, 12);
}

TEST(SimKernel, RunUntilTimesOut)
{
    Sim_kernel k;
    Probe a;
    k.add(&a);
    const bool hit = k.run_until([] { return false; }, 100, 16);
    EXPECT_FALSE(hit);
    EXPECT_EQ(k.now(), 100u);
}

/// The two-phase contract: a value written during step() must not be
/// observable until the next cycle, regardless of registration order.
class Writer final : public Component {
public:
    explicit Writer(Pipeline_channel<int>* ch) : ch_{ch} {}
    void step(Cycle now) override
    {
        ch_->write(static_cast<int>(now));
    }

private:
    Pipeline_channel<int>* ch_;
};

class Reader final : public Component {
public:
    explicit Reader(Pipeline_channel<int>* ch) : ch_{ch} {}
    void step(Cycle now) override
    {
        if (ch_->out())
            observed.push_back({now, *ch_->out()});
    }
    std::vector<std::pair<Cycle, int>> observed;

private:
    Pipeline_channel<int>* ch_;
};

/// Pure-reactive reader: quiescent whenever asked, so under activity gating
/// it only runs when a channel wake re-arms it.
class Sink final : public Component {
public:
    explicit Sink(Pipeline_channel<int>* ch) : ch_{ch} {}
    void step(Cycle now) override
    {
        ++steps;
        if (ch_->out()) observed.push_back({now, *ch_->out()});
    }
    bool is_quiescent() const override { return true; }

    int steps = 0;
    std::vector<std::pair<Cycle, int>> observed;

private:
    Pipeline_channel<int>* ch_;
};

/// Sleeper with an externally controlled quiescence flag and a public
/// request_wake forwarder.
class Sleeper final : public Component {
public:
    void step(Cycle) override { ++steps; }
    bool is_quiescent() const override { return quiescent; }
    void poke() { request_wake(); }

    bool quiescent = true;
    int steps = 0;
};

TEST(SimKernel, DefaultModeIsReferenceAndNeverGates)
{
    Sim_kernel k;
    EXPECT_EQ(k.mode(), Kernel_mode::reference);
    Sleeper s;
    k.add(&s);
    k.run(5);
    EXPECT_EQ(s.steps, 5); // quiescence is ignored by the naive schedule
}

TEST(SimKernel, GatedComponentSleepsAfterReportingQuiescent)
{
    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    Sleeper s;
    k.add(&s);
    EXPECT_EQ(k.active_component_count(), 1u);
    k.run(5);
    EXPECT_EQ(s.steps, 1); // stepped once, then descheduled
    EXPECT_EQ(k.active_component_count(), 0u);
    s.poke();
    EXPECT_EQ(k.active_component_count(), 1u);
    k.run(5);
    EXPECT_EQ(s.steps, 2); // one wake buys exactly one step while quiescent
}

TEST(SimKernel, ChannelCommitWakesReaderExactlyWhenValueIsVisible)
{
    Pipeline_channel<int> ch{2};
    Sink sink{&ch};
    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    k.add(&sink);
    k.add_channel(&ch);
    ch.set_reader(&sink);
    EXPECT_EQ(k.channel_count(), 1u);

    k.run(3);
    EXPECT_EQ(sink.steps, 1); // initial step at cycle 0, then asleep
    EXPECT_TRUE(ch.quiet());

    ch.write(7); // written "during" cycle 3; latency 2 -> visible at cycle 5
    k.run(4);
    ASSERT_EQ(sink.observed.size(), 1u);
    EXPECT_EQ(sink.observed[0], (std::pair<Cycle, int>{5, 7}));
    EXPECT_EQ(sink.steps, 2); // woken for the visibility cycle only
    EXPECT_EQ(k.active_component_count(), 0u);
}

TEST(SimKernel, ModeSwitchRearmsSleepers)
{
    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    Sleeper s;
    k.add(&s);
    k.run(3);
    EXPECT_EQ(s.steps, 1);
    k.set_mode(Kernel_mode::reference);
    k.run(3);
    EXPECT_EQ(s.steps, 4); // naive schedule steps it every cycle again
    k.set_mode(Kernel_mode::activity_gated);
    k.run(3);
    EXPECT_EQ(s.steps, 5); // re-armed once by the switch, then sleeps
}

/// The devirtualized group commit and the legacy virtual advance must give
/// byte-identical observation sequences, including across idle gaps that
/// exercise the empty-pipeline fast path.
TEST(SimKernel, GroupCommitMatchesLegacyAdvance)
{
    for (int latency = 1; latency <= 4; ++latency) {
        auto drive = [latency](bool grouped) {
            Pipeline_channel<int> ch{latency};
            Sink sink{&ch};
            Sim_kernel k;
            k.add(&sink);
            if (grouped) {
                k.set_mode(Kernel_mode::activity_gated);
                k.add_channel(&ch);
                ch.set_reader(&sink);
            } else {
                k.add(&ch); // legacy: channel is a stepped component
            }
            // Sparse writes with long quiet gaps between them.
            for (Cycle t = 0; t < 40; ++t) {
                if (t == 0 || t == 1 || t == 13 || t == 29)
                    ch.write(static_cast<int>(100 + t));
                k.run(1);
            }
            return sink.observed;
        };
        const auto gated = drive(true);
        const auto naive = drive(false);
        EXPECT_EQ(gated, naive) << "latency " << latency;
        ASSERT_EQ(gated.size(), 4u);
        for (const auto& [when, value] : gated)
            EXPECT_EQ(static_cast<int>(when),
                      value - 100 + latency); // written at value-100
    }
}

/// Idle-region skip-ahead: with the active set empty and every channel
/// quiet, the gated kernel jumps now_ to the next timer instead of ticking
/// cycle-by-cycle — and a component's timed wake still fires on exactly the
/// promised cycle, so behaviour is unchanged.
class Timed_sleeper final : public Component {
public:
    void step(Cycle now) override
    {
        stepped_at.push_back(now);
        request_wake_at(now + 1'000);
    }
    [[nodiscard]] bool is_quiescent() const override { return true; }
    std::vector<Cycle> stepped_at;
};

TEST(SimKernel, IdleRegionSkipAheadPreservesTimedWakes)
{
    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    Timed_sleeper s;
    k.add(&s);
    k.run(3'500); // covers steps at 0, 1000, 2000, 3000 with idle gaps
    EXPECT_EQ(k.now(), 3'500u);
    EXPECT_EQ(s.stepped_at,
              (std::vector<Cycle>{0, 1'000, 2'000, 3'000}));
}

TEST(SimKernel, SkipAheadStopsAtRunBoundary)
{
    // A fully-idle system must still advance now_ by exactly the requested
    // cycles (run(n) is a contract, not a hint).
    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    Sleeper s;
    k.add(&s);
    k.run(7);
    EXPECT_EQ(k.now(), 7u);
    EXPECT_EQ(s.steps, 1); // stepped once at cycle 0, then skipped
    k.run(5);
    EXPECT_EQ(k.now(), 12u);
}

/// Skip-ahead must NOT fire while a channel still has values in flight:
/// a long-latency channel with a sleeping reader is the trap.
TEST(SimKernel, SkipAheadWaitsForInFlightChannelValues)
{
    Pipeline_channel<int> ch{5};
    Sink sink{&ch};
    Sim_kernel k;
    k.set_mode(Kernel_mode::activity_gated);
    k.add(&sink);
    k.add_channel(&ch);
    ch.set_reader(&sink);
    k.run(1); // sink sleeps immediately
    ch.write(9); // written during cycle 1 -> visible at cycle 6
    k.run(10);
    ASSERT_EQ(sink.observed.size(), 1u);
    EXPECT_EQ(sink.observed[0], (std::pair<Cycle, int>{6, 9}));
}

TEST(SimKernel, TwoPhaseOrderIndependence)
{
    // Reader before writer and writer before reader must observe identical
    // sequences: value written at t arrives at t+1.
    auto run = [](bool reader_first) {
        Pipeline_channel<int> ch{1};
        Writer w{&ch};
        Reader r{&ch};
        Sim_kernel k;
        if (reader_first) {
            k.add(&r);
            k.add(&w);
        } else {
            k.add(&w);
            k.add(&r);
        }
        k.add(&ch);
        k.run(5);
        return r.observed;
    };
    const auto a = run(true);
    const auto b = run(false);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a.size(), 4u);
    for (const auto& [when, value] : a)
        EXPECT_EQ(static_cast<int>(when), value + 1);
}

} // namespace
} // namespace noc
