#include "arch/channel.h"
#include "sim/kernel.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

/// Counts its step/advance calls and records the cycle values it saw.
class Probe final : public Component {
public:
    void step(Cycle now) override
    {
        ++steps;
        last_cycle = now;
    }
    void advance() override { ++advances; }
    std::string name() const override { return "probe"; }

    int steps = 0;
    int advances = 0;
    Cycle last_cycle = 0;
};

TEST(SimKernel, RejectsNullComponent)
{
    Sim_kernel k;
    EXPECT_THROW(k.add(nullptr), std::invalid_argument);
}

TEST(SimKernel, RunsEveryComponentEveryCycle)
{
    Sim_kernel k;
    Probe a;
    Probe b;
    k.add(&a);
    k.add(&b);
    k.run(5);
    EXPECT_EQ(k.now(), 5u);
    EXPECT_EQ(a.steps, 5);
    EXPECT_EQ(a.advances, 5);
    EXPECT_EQ(b.steps, 5);
    EXPECT_EQ(a.last_cycle, 4u);
    EXPECT_EQ(k.component_count(), 2u);
}

TEST(SimKernel, RunZeroCyclesIsNoop)
{
    Sim_kernel k;
    Probe a;
    k.add(&a);
    k.run(0);
    EXPECT_EQ(a.steps, 0);
    EXPECT_EQ(k.now(), 0u);
}

TEST(SimKernel, RunUntilStopsEarly)
{
    Sim_kernel k;
    Probe a;
    k.add(&a);
    const bool hit = k.run_until([&] { return a.steps >= 10; }, 1'000, 4);
    EXPECT_TRUE(hit);
    // Checked every 4 cycles: stops at the first multiple of 4 >= 10.
    EXPECT_EQ(a.steps, 12);
}

TEST(SimKernel, RunUntilTimesOut)
{
    Sim_kernel k;
    Probe a;
    k.add(&a);
    const bool hit = k.run_until([] { return false; }, 100, 16);
    EXPECT_FALSE(hit);
    EXPECT_EQ(k.now(), 100u);
}

/// The two-phase contract: a value written during step() must not be
/// observable until the next cycle, regardless of registration order.
class Writer final : public Component {
public:
    explicit Writer(Pipeline_channel<int>* ch) : ch_{ch} {}
    void step(Cycle now) override
    {
        ch_->write(static_cast<int>(now));
    }

private:
    Pipeline_channel<int>* ch_;
};

class Reader final : public Component {
public:
    explicit Reader(Pipeline_channel<int>* ch) : ch_{ch} {}
    void step(Cycle now) override
    {
        if (ch_->out())
            observed.push_back({now, *ch_->out()});
    }
    std::vector<std::pair<Cycle, int>> observed;

private:
    Pipeline_channel<int>* ch_;
};

TEST(SimKernel, TwoPhaseOrderIndependence)
{
    // Reader before writer and writer before reader must observe identical
    // sequences: value written at t arrives at t+1.
    auto run = [](bool reader_first) {
        Pipeline_channel<int> ch{1};
        Writer w{&ch};
        Reader r{&ch};
        Sim_kernel k;
        if (reader_first) {
            k.add(&r);
            k.add(&w);
        } else {
            k.add(&w);
            k.add(&r);
        }
        k.add(&ch);
        k.run(5);
        return r.observed;
    };
    const auto a = run(true);
    const auto b = run(false);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a.size(), 4u);
    for (const auto& [when, value] : a)
        EXPECT_EQ(static_cast<int>(when), value + 1);
}

} // namespace
} // namespace noc
