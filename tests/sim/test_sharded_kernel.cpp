// Sharded-kernel mechanics: the shard partitioner (every component and
// channel assigned exactly once, to the shard the threading model requires)
// and the cross-shard wake mailboxes (a value or token crossing shards
// wakes its reader on the exact cycle a local wake would).
//
// Bit-identity of whole-system runs lives in test_kernel_equivalence.cpp;
// these tests poke the machinery directly.
#include "arch/channel.h"
#include "arch/noc_builder.h"
#include "arch/noc_system.h"
#include "arch/probe.h"
#include "sim/kernel.h"
#include "topology/mesh.h"
#include "topology/routing.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace noc {
namespace {

// --- partitioner -----------------------------------------------------------

TEST(ShardPartitioner, EveryComponentAndChannelAssignedExactlyOnce)
{
    Mesh_params mp; // 4x4 mesh, 16 switches / cores
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    for (const std::uint32_t shards : {1u, 2u, 3u, 4u}) {
        Build_options opts;
        opts.kernel_mode = shards > 1 ? Kernel_mode::sharded
                                      : Kernel_mode::activity_gated;
        opts.partition = Partition_plan::contiguous(shards);
        Noc_system sys{topo, routes, Network_params{}, opts};
        ASSERT_EQ(sys.shard_count(), shards);
        const Sim_kernel& k = sys.kernel();

        // Partition: every component / channel lands in exactly one shard.
        std::size_t components = 0;
        std::size_t channels = 0;
        for (std::uint32_t s = 0; s < shards; ++s) {
            components += k.component_count_in_shard(s);
            channels += k.channel_count_in_shard(s);
        }
        EXPECT_EQ(components, k.component_count());
        EXPECT_EQ(channels, k.channel_count());
        // One router + one NI per tile; 3 channels per core (inject
        // data/tokens, eject data) + 2 per link (data, tokens).
        EXPECT_EQ(k.component_count(),
                  static_cast<std::size_t>(topo.switch_count() +
                                           topo.core_count()));
        EXPECT_EQ(k.channel_count(),
                  static_cast<std::size_t>(3 * topo.core_count() +
                                           2 * topo.link_count()));
    }
}

TEST(ShardPartitioner, WriterAndReaderShardsRecordedPerThreadingModel)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const std::uint32_t shards = 4;
    Build_options opts;
    opts.kernel_mode = Kernel_mode::sharded;
    opts.partition = Partition_plan::contiguous(shards);
    Noc_system sys{topo, routes, Network_params{}, opts};
    const Sim_kernel& k = sys.kernel();

    // Switch blocks are contiguous and balanced; an NI shares its
    // router's shard (so every intra-tile edge is shard-local).
    std::uint32_t prev = 0;
    for (int s = 0; s < topo.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        const std::uint32_t sh = sys.shard_of_switch(sw);
        EXPECT_LT(sh, shards);
        EXPECT_GE(sh, prev); // contiguous id ranges
        prev = sh;
        EXPECT_EQ(k.component_shard(&sys.router(sw)), sh);
    }
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        EXPECT_EQ(k.component_shard(&sys.ni(core)),
                  sys.shard_of_switch(topo.core_switch(core)));
    }

    // Channel registration follows the single-writer rule: per shard,
    // 3 core channels per resident core (NI and router of one tile share a
    // shard) + link data in the upstream switch's shard + link tokens in
    // the downstream switch's shard.
    for (std::uint32_t s = 0; s < shards; ++s) {
        std::size_t expected = 0;
        for (int c = 0; c < topo.core_count(); ++c)
            if (sys.shard_of_core(Core_id{static_cast<std::uint32_t>(c)}) ==
                s)
                expected += 3;
        for (const auto& l : topo.links()) {
            if (sys.shard_of_switch(l.from) == s) ++expected; // data
            if (sys.shard_of_switch(l.to) == s) ++expected;   // tokens
        }
        EXPECT_EQ(k.channel_count_in_shard(s), expected) << "shard " << s;
    }
}

TEST(ShardPartitioner, ShardCountClampedToSwitchCount)
{
    Mesh_params mp;
    mp.width = 2;
    mp.height = 1; // 2 switches
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Build_options opts;
    opts.kernel_mode = Kernel_mode::sharded;
    opts.partition = Partition_plan::contiguous(64);
    Noc_system sys{topo, routes, Network_params{}, opts};
    EXPECT_EQ(sys.shard_count(), 2u);
    EXPECT_EQ(sys.kernel().mode(), Kernel_mode::sharded);
}

/// A weight-balanced plan's blocks actually follow the weights: with the
/// weight piled on the first two switches of a 4x4 mesh, a 2-shard
/// balanced partition cuts right after switch 0 (max block weight 114,
/// the optimum), where the equal-count plan would cut at 8 — and the
/// partitioner invariants (contiguity, NI follows switch) hold for the
/// skewed cut too.
TEST(ShardPartitioner, BalancedPlanFollowsWeights)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    std::vector<std::uint64_t> weights(
        static_cast<std::size_t>(topo.switch_count()), 1);
    weights[0] = 100;
    weights[1] = 100;
    Build_options opts;
    opts.kernel_mode = Kernel_mode::sharded;
    opts.partition = Partition_plan::balanced(2, weights);
    Noc_system sys{topo, routes, Network_params{}, opts};
    ASSERT_EQ(sys.shard_count(), 2u);
    EXPECT_EQ(sys.shard_of_switch(Switch_id{0}), 0u);
    EXPECT_EQ(sys.shard_of_switch(Switch_id{1}), 1u); // skewed cut at 1
    std::uint32_t prev = 0;
    for (int s = 0; s < topo.switch_count(); ++s) {
        const std::uint32_t sh =
            sys.shard_of_switch(Switch_id{static_cast<std::uint32_t>(s)});
        EXPECT_GE(sh, prev);
        prev = sh;
    }
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        EXPECT_EQ(sys.kernel().component_shard(&sys.ni(core)),
                  sys.shard_of_switch(topo.core_switch(core)));
    }
}

// --- cross-shard wake mailboxes -------------------------------------------

/// Pure-reactive reader: quiescent whenever asked, so it only runs when a
/// channel wake re-arms it; records the cycles it stepped and observed.
class Sink final : public Component {
public:
    explicit Sink(Pipeline_channel<int>* ch) : ch_{ch} {}
    void step(Cycle now) override
    {
        stepped_at.push_back(now);
        if (ch_->out()) observed.push_back({now, *ch_->out()});
    }
    bool is_quiescent() const override { return true; }

    std::vector<Cycle> stepped_at;
    std::vector<std::pair<Cycle, int>> observed;

private:
    Pipeline_channel<int>* ch_;
};

/// Writes a fixed schedule of values into its channel.
class Scripted_writer final : public Component {
public:
    Scripted_writer(Pipeline_channel<int>* ch, std::vector<Cycle> at)
        : ch_{ch}, at_{std::move(at)}
    {
    }
    void step(Cycle now) override
    {
        for (const Cycle t : at_)
            if (t == now) ch_->write(static_cast<int>(now));
    }

private:
    Pipeline_channel<int>* ch_;
    std::vector<Cycle> at_;
};

/// A wake crossing shards through the mailbox must arm the reader for the
/// exact cycle the committed value becomes visible — the same cycle the
/// gated (single-thread) schedule arms it.
TEST(ShardedWakeMailbox, CrossShardCommitWakesReaderOnExactCycle)
{
    const std::vector<Cycle> writes{3, 4, 17, 40};
    for (const int latency : {1, 2, 5}) {
        auto drive = [&](Kernel_mode mode, std::uint32_t shards,
                         std::uint32_t reader_shard) {
            Pipeline_channel<int> ch{latency};
            Scripted_writer writer{&ch, writes};
            Sink sink{&ch};
            Sim_kernel k;
            k.set_shard_count(shards);
            k.add(&writer, 0);
            k.add(&sink, reader_shard);
            k.add_channel(&ch, 0); // writer's shard
            ch.set_reader(&sink);
            k.set_mode(mode);
            k.run(60);
            return std::pair{sink.stepped_at, sink.observed};
        };
        const auto gated = drive(Kernel_mode::activity_gated, 1, 0);
        const auto local = drive(Kernel_mode::sharded, 2, 0);
        const auto cross = drive(Kernel_mode::sharded, 2, 1);
        EXPECT_EQ(cross, gated) << "latency " << latency;
        EXPECT_EQ(local, gated) << "latency " << latency;
        // Sanity: the value written at t is observed at t + latency.
        for (const auto& [when, value] : gated.second)
            EXPECT_EQ(static_cast<int>(when), value + latency);
    }
}

TEST(ShardedWakeMailbox, CrossShardWakesAreCountedAndLocalOnesAreNot)
{
    const std::vector<Cycle> writes{2, 9};
    auto count = [&](std::uint32_t reader_shard) {
        Pipeline_channel<int> ch{1};
        Scripted_writer writer{&ch, writes};
        Sink sink{&ch};
        Sim_kernel k;
        k.set_shard_count(2);
        k.add(&writer, 0);
        k.add(&sink, reader_shard);
        k.add_channel(&ch, 0);
        ch.set_reader(&sink);
        k.set_mode(Kernel_mode::sharded);
        k.run(20);
        return k.cross_shard_wake_count();
    };
    EXPECT_EQ(count(0), 0u);
    EXPECT_EQ(count(1), static_cast<std::uint64_t>(writes.size()));
}

/// Never-quiescent do-nothing component (keeps a shard's cycle loop busy).
class Busy final : public Component {
public:
    void step(Cycle) override {}
};

/// Throws partway through a run.
class Thrower final : public Component {
public:
    explicit Thrower(Cycle at) : at_{at} {}
    void step(Cycle now) override
    {
        if (now == at_) throw std::runtime_error{"thrower"};
    }

private:
    Cycle at_;
};

/// An exception inside a sharded phase must reach run()'s caller — from
/// either the calling thread's shard or a worker's — without leaving any
/// thread blocked at the barrier (the test would hang or terminate
/// otherwise; kernel destruction joins the workers cleanly).
TEST(ShardedKernel, PhaseExceptionPropagatesWithoutDeadlock)
{
    for (const std::uint32_t throwing_shard : {0u, 1u}) {
        Sim_kernel k;
        k.set_shard_count(2);
        Thrower thrower{5};
        Busy busy;
        k.add(&thrower, throwing_shard);
        k.add(&busy, 1 - throwing_shard);
        k.set_mode(Kernel_mode::sharded);
        EXPECT_THROW(k.run(20), std::runtime_error)
            << "shard " << throwing_shard;
    }
}

/// Full-system variant: a two-shard mesh whose only traffic crosses the
/// shard boundary. The flow-control tokens crossing back are folded by the
/// writer shard's commit into the upstream sender and must wake it through
/// the mailbox on the right cycle — delivery timing is compared against
/// reference, and the mailbox path must actually have been exercised.
TEST(ShardedWakeMailbox, TokensCrossingShardsMatchReferenceTiming)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 1; // a line: shard 0 = switches 0..1, shard 1 = 2..3
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.buffer_depth = 2; // tight credits: token wakes do the work

    auto rig = [](Noc_system& sys) {
        // Only core 0 talks, only to core 3 — every flit and every credit
        // crosses the shard boundary between switches 1 and 2.
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.9;
        sp.packet_size_flits = 4;
        sp.seed = 7;
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_hotspot_pattern(4, {Core_id{3}}, 1.0));
        sys.ni(Core_id{0}).set_source(
            std::make_unique<Bernoulli_source>(Core_id{0}, sp, pattern));
    };

    auto run = [&](Kernel_mode mode, std::uint32_t shards) {
        Build_options opts;
        opts.kernel_mode = mode;
        opts.partition = Partition_plan::contiguous(shards);
        Noc_system sys{topo, routes, params, opts};
        rig(sys);
        sys.warmup(200);
        sys.measure(1'000);
        sys.drain(10'000);
        struct Out {
            std::uint64_t delivered;
            double latency_mean;
            double latency_max;
            std::uint64_t cross_wakes;
        } o{sys.stats().packets_delivered(),
            sys.stats().packet_latency().mean(),
            sys.stats().packet_latency().max(),
            sys.kernel().cross_shard_wake_count()};
        return o;
    };

    const auto ref = run(Kernel_mode::reference, 1);
    const auto sharded = run(Kernel_mode::sharded, 2);
    EXPECT_GT(ref.delivered, 0u);
    EXPECT_EQ(sharded.delivered, ref.delivered);
    EXPECT_EQ(sharded.latency_mean, ref.latency_mean);
    EXPECT_EQ(sharded.latency_max, ref.latency_max);
    EXPECT_GT(sharded.cross_wakes, 0u); // the mailbox actually carried wakes
}

// --- idle-shard fast path --------------------------------------------------

/// A shard whose active set, inbound mailboxes and timer queue are all
/// quiet skips its step-phase member walk (kernel.cpp's fast path). Rig: a
/// two-shard 4x4 mesh where all traffic lives in rows 0-1 (shard 0) — XY
/// routes between those cores never leave the top half, so shard 1 stays
/// permanently idle. The skip must not perturb results: identical bits to
/// the gated schedule, with the skip counter proving the path was taken.
TEST(ShardedKernel, IdleShardFastPathSkipsWalkAndStaysBitIdentical)
{
    Mesh_params mp; // 4x4
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    auto rig = [&](Noc_system& sys) {
        // Sources on the 8 top-half cores, destinations confined to the
        // same 8 (hot_fraction 1.0 => only hotspots are ever picked).
        std::vector<Core_id> top;
        for (std::uint32_t c = 0; c < 8; ++c) top.push_back(Core_id{c});
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_hotspot_pattern(topo.core_count(), top, 1.0));
        for (std::uint32_t c = 0; c < 8; ++c) {
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = 0.2;
            sp.seed = 100 + c;
            sys.ni(Core_id{c}).set_source(
                std::make_unique<Bernoulli_source>(Core_id{c}, sp,
                                                   pattern));
        }
    };

    auto run = [&](Kernel_mode mode, std::uint32_t shards) {
        Build_options opts;
        opts.kernel_mode = mode;
        opts.partition = Partition_plan::contiguous(shards);
        Noc_system sys{topo, routes, Network_params{}, opts};
        rig(sys);
        sys.warmup(500);
        sys.measure(2'000);
        sys.drain(10'000);
        struct Out {
            std::uint64_t delivered;
            std::uint64_t flits_routed;
            double latency_mean;
            double latency_max;
            std::uint64_t idle_skips;
        } o{sys.stats().packets_delivered(), sys.total_flits_routed(),
            sys.stats().packet_latency().mean(),
            sys.stats().packet_latency().max(),
            sys.kernel().idle_shard_skip_count()};
        return o;
    };

    const auto gated = run(Kernel_mode::activity_gated, 1);
    const auto sharded = run(Kernel_mode::sharded, 2);
    EXPECT_GT(gated.delivered, 0u);
    EXPECT_EQ(sharded.delivered, gated.delivered);
    EXPECT_EQ(sharded.flits_routed, gated.flits_routed);
    EXPECT_EQ(sharded.latency_mean, gated.latency_mean);
    EXPECT_EQ(sharded.latency_max, gated.latency_max);
    // Shard 1 is idle from the first cycle (its sources never arm), so it
    // must have taken the fast path for the bulk of the run; a couple of
    // start-of-run cycles step everything while the initial arm decays.
    EXPECT_GT(sharded.idle_skips, 2'000u);
    EXPECT_EQ(gated.idle_skips, 0u); // sequential schedules never count
}

/// Traffic crossing INTO a previously idle shard must cut the fast path
/// short on exactly the right cycle (the mailbox drain is part of the
/// fast-path check). The existing cross-shard timing tests pin exactness;
/// this pins coexistence of skipping and delivery in one run.
TEST(ShardedKernel, IdleShardStillReceivesCrossShardTraffic)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 1; // line: shard 1 = switches 2..3
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    auto run = [&](Kernel_mode mode, std::uint32_t shards) {
        Build_options opts;
        opts.kernel_mode = mode;
        opts.partition = Partition_plan::contiguous(shards);
        Noc_system sys{topo, routes, Network_params{}, opts};
        // One low-rate flow 0 -> 3: long idle gaps on both shards between
        // packets, every packet crosses the boundary.
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.01;
        sp.seed = 11;
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_hotspot_pattern(4, {Core_id{3}}, 1.0));
        sys.ni(Core_id{0}).set_source(
            std::make_unique<Bernoulli_source>(Core_id{0}, sp, pattern));
        sys.warmup(200);
        sys.measure(3'000);
        sys.drain(10'000);
        return std::tuple{sys.stats().packets_delivered(),
                          sys.stats().packet_latency().mean(),
                          sys.kernel().idle_shard_skip_count()};
    };

    const auto [gated_delivered, gated_latency, gated_skips] =
        run(Kernel_mode::activity_gated, 1);
    const auto [delivered, latency, skips] = run(Kernel_mode::sharded, 2);
    EXPECT_GT(gated_delivered, 0u);
    EXPECT_EQ(delivered, gated_delivered);
    EXPECT_EQ(latency, gated_latency);
    EXPECT_GT(skips, 0u);
    (void)gated_skips;
}

// --- trace probe under the sharded schedule --------------------------------

/// Trace_probe's per-shard rings are written concurrently by the shard
/// workers during phase 1; this runs a 4-shard mesh with the probe
/// attached (the TSan CI job covers this test, so any probe race fails the
/// build) and checks the accounting: every crossbar traversal lands in
/// exactly one shard's ring, per-shard counts match the shard's routers,
/// and the retained records resolve to real flits.
TEST(ShardedKernel, TraceProbeRecordsEveryHopAcrossFourShards)
{
    Mesh_params mp; // 4x4
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    Trace_probe trace{256};
    auto sys = Noc_builder{}
                   .topology(topo)
                   .routes(routes)
                   .params(Network_params{})
                   .partition(Partition_plan::contiguous(4))
                   .probe(&trace)
                   .build();
    ASSERT_EQ(sys->shard_count(), 4u);
    ASSERT_EQ(trace.shard_count(), 4u);

    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(topo.core_count()));
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.15;
        sp.seed = 500 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    sys->warmup(300);
    sys->measure(2'000);
    EXPECT_TRUE(sys->drain(20'000));

    EXPECT_GT(sys->total_flits_routed(), 0u);
    EXPECT_EQ(trace.total_recorded(), sys->total_flits_routed());
    for (std::uint32_t s = 0; s < 4; ++s) {
        std::uint64_t shard_hops = 0;
        for (int sw = 0; sw < topo.switch_count(); ++sw) {
            const Switch_id id{static_cast<std::uint32_t>(sw)};
            if (sys->shard_of_switch(id) == s)
                shard_hops += sys->router(id).flits_routed();
        }
        EXPECT_EQ(trace.recorded(s), shard_hops) << "shard " << s;
        const auto recent = trace.recent(s);
        EXPECT_EQ(static_cast<std::uint64_t>(recent.size()),
                  std::min<std::uint64_t>(shard_hops,
                                          trace.capacity_per_shard()));
        for (const Flit_ref r : recent) EXPECT_TRUE(r.is_valid());
    }
}

} // namespace
} // namespace noc
