// Randomized fault-storm fuzzing across topologies and kernel schedules.
//
// Each storm draws a seeded Random_fault_shape plan — permanent link
// failures, whole-router deaths and one region power-off, with transients
// sprinkled on top — and drives it through warmup/measure/drain with the
// end-to-end replay protocol on. The invariants checked per storm:
//
//   1. The survivors stay deadlock-free: the drain completes (a cycle in
//      the post-failure routes, or a purge that leaks wormhole state,
//      wedges the network and fails this).
//   2. Dead links carry nothing after the failure cycle — their flit
//      counters freeze at the purge.
//   3. Connected-pair availability is exactly 1.0: with replay on, the
//      only losses are conclusively-unreachable packets, so
//      packets_dropped == packets_unreachable.
//   4. The whole storm is bit-identical across the reference,
//      activity-gated and sharded (1/2/4 shards) kernel schedules.
//
// The seeds-per-topology count is capped by the NOC_FAULT_STORM_SEEDS
// environment variable (CI smoke legs set it low; sanitizer legs run the
// default).
#include "arch/fault_plan.h"
#include "arch/noc_system.h"
#include "topology/fat_tree.h"
#include "topology/routing.h"
#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace noc {
namespace {

/// Storm observables: every counter the schedules must agree on, plus the
/// per-component tallies that catch a divergent purge.
struct Storm_snapshot {
    Cycle now = 0;
    bool drained = false;
    std::uint64_t created = 0;
    std::uint64_t delivered = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t packets_unreachable = 0;
    std::uint64_t packets_replayed = 0;
    std::uint64_t corrupted_flits = 0;
    std::size_t recovery_count = 0;
    std::vector<Cycle> recovered_at;
    std::vector<std::uint64_t> per_link_flits;
    std::vector<std::uint64_t> per_ni_injected;
    std::vector<std::pair<Core_id, Core_id>> unreachable_pairs;

    bool operator==(const Storm_snapshot&) const = default;
};

/// Seeds fuzzed per topology; NOC_FAULT_STORM_SEEDS caps it for smoke CI.
int storm_seed_count()
{
    constexpr int default_seeds = 4;
    if (const char* env = std::getenv("NOC_FAULT_STORM_SEEDS")) {
        const int n = std::atoi(env);
        if (n > 0) return n;
    }
    return default_seeds;
}

void rig_sources(Noc_system& sys, double rate)
{
    const int cores = sys.topology().core_count();
    auto pattern =
        std::shared_ptr<const Dest_pattern>(make_uniform_pattern(cores));
    for (int c = 0; c < cores; ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.packet_size_flits = 4;
        sp.seed = 77'000 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
}

Storm_snapshot run_storm(const Topology& topo, const Route_set& routes,
                         const Network_params& params, Kernel_mode mode,
                         std::shared_ptr<const Fault_plan> plan,
                         Partition_plan partition = Partition_plan::single())
{
    Build_options opts;
    opts.kernel_mode = mode;
    opts.partition = std::move(partition);
    opts.fault_plan = std::move(plan);
    Noc_system sys{topo, routes, params, opts};
    rig_sources(sys, 0.08);
    sys.warmup(500);
    sys.measure(2'000);
    const bool drained = sys.drain(40'000);
    sys.kernel().run(32);

    Storm_snapshot s;
    s.now = sys.kernel().now();
    s.drained = drained;
    const Network_stats& st = sys.stats();
    s.created = st.packets_created();
    s.delivered = st.packets_delivered();
    s.packets_dropped = st.packets_dropped();
    s.packets_unreachable = st.packets_unreachable();
    s.packets_replayed = st.packets_replayed();
    s.corrupted_flits = st.corrupted_flits();
    s.recovery_count = st.recoveries().size();
    for (const auto& r : st.recoveries())
        s.recovered_at.push_back(r.recovered_at);
    for (int l = 0; l < topo.link_count(); ++l)
        s.per_link_flits.push_back(
            sys.link_flits(Link_id{static_cast<std::uint32_t>(l)}));
    for (int c = 0; c < topo.core_count(); ++c)
        s.per_ni_injected.push_back(
            sys.ni(Core_id{static_cast<std::uint32_t>(c)}).flits_injected());
    s.unreachable_pairs = sys.unreachable_pairs();
    return s;
}

/// Invariants 1-3 on a dedicated instrumented run, sampling the dead-link
/// counters at the purge and again well after recovery.
void check_storm_invariants(const Topology& topo, const Route_set& routes,
                            const Network_params& params,
                            std::shared_ptr<const Fault_plan> plan,
                            const std::string& label)
{
    Build_options opts;
    opts.fault_plan = plan;
    Noc_system sys{topo, routes, params, opts};
    rig_sources(sys, 0.08);
    sys.warmup(500);
    sys.measure(2'000);
    EXPECT_TRUE(sys.drain(40'000)) << label << ": survivors wedged";

    // Dead wires froze at the purge: running past the recovery must not
    // move their counters while the network still operates.
    std::vector<std::uint64_t> at_death;
    for (const Link_id l : sys.failed_links())
        at_death.push_back(sys.link_flits(l));
    sys.kernel().run(1'000);
    std::size_t i = 0;
    for (const Link_id l : sys.failed_links())
        EXPECT_EQ(sys.link_flits(l), at_death[i++])
            << label << ": dead link " << l.get() << " carried traffic";

    // Replay makes connected-pair availability exactly 1.0: nothing is
    // dropped except conclusively-unreachable traffic.
    EXPECT_EQ(sys.stats().packets_dropped(),
              sys.stats().packets_unreachable())
        << label << ": a still-connected pair lost a packet";
    EXPECT_GE(sys.stats().recoveries().size(), 1u) << label;
}

void fuzz_storms(const Topology& topo, const Route_set& routes,
                 const Network_params& params,
                 const Random_fault_shape& shape, std::uint64_t seed_base,
                 const std::string& label)
{
    const int seeds = storm_seed_count();
    for (int s = 0; s < seeds; ++s) {
        auto plan = std::make_shared<Fault_plan>(Fault_plan::random_plan(
            topo, seed_base + static_cast<std::uint64_t>(s), shape,
            /*horizon=*/2'500));
        plan->replay = true;
        const std::string tag =
            label + " seed " + std::to_string(seed_base + s);

        check_storm_invariants(topo, routes, params, plan, tag);

        // Invariant 4: the identical storm through every schedule.
        const Storm_snapshot ref = run_storm(
            topo, routes, params, Kernel_mode::reference, plan);
        EXPECT_TRUE(ref.drained) << tag;
        const Storm_snapshot gated = run_storm(
            topo, routes, params, Kernel_mode::activity_gated, plan);
        EXPECT_TRUE(gated == ref) << tag << " (gated)";
        for (const std::uint32_t shards : {1u, 2u, 4u}) {
            const Storm_snapshot sharded =
                run_storm(topo, routes, params, Kernel_mode::sharded, plan,
                          Partition_plan::contiguous(shards));
            EXPECT_TRUE(sharded == ref)
                << tag << " (" << shards << " shards)";
        }
    }
}

TEST(FaultStorm, MeshLinksRoutersAndRegion)
{
    Mesh_params mp;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const Network_params params;
    Random_fault_shape shape;
    shape.transient_count = 4;
    shape.permanent_link_count = 2;
    shape.router_death_count = 1;
    shape.region_switch_count = 3;
    fuzz_storms(topo, routes, params, shape, 9'100, "mesh");
}

TEST(FaultStorm, TorusLinksAndRouters)
{
    Torus_params tp;
    const Topology topo = make_torus(tp);
    const Route_set routes = torus_routes(topo, tp);
    Network_params params;
    params.route_vcs = 2; // dateline VCs
    Random_fault_shape shape;
    shape.transient_count = 4;
    shape.permanent_link_count = 2;
    shape.router_death_count = 1;
    shape.region_switch_count = 2;
    fuzz_storms(topo, routes, params, shape, 9'200, "torus");
}

TEST(FaultStorm, FatTreeLinksAndRegion)
{
    const Fat_tree ft = make_fat_tree({2, 3, 1.0});
    const Route_set routes = updown_routes(ft.topology, ft.switch_rank);
    const Network_params params;
    Random_fault_shape shape;
    shape.transient_count = 4;
    shape.permanent_link_count = 1;
    shape.router_death_count = 1;
    shape.region_switch_count = 2;
    fuzz_storms(ft.topology, routes, params, shape, 9'300, "fat-tree");
}

} // namespace
} // namespace noc
