#include "arch/noc_system.h"
#include "topology/routing.h"
#include "traffic/trace.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(TraceSource, RejectsUnsortedAndEmptyPackets)
{
    EXPECT_THROW(Trace_source({{10, Core_id{1}, 1, Traffic_class::request,
                                Flow_id{}},
                               {5, Core_id{1}, 1, Traffic_class::request,
                                Flow_id{}}}),
                 std::invalid_argument);
    EXPECT_THROW(Trace_source({{0, Core_id{1}, 0, Traffic_class::request,
                                Flow_id{}}}),
                 std::invalid_argument);
}

TEST(TraceSource, ReleasesAtTimestamps)
{
    Trace_source src{{{5, Core_id{1}, 2, Traffic_class::request, Flow_id{}},
                      {5, Core_id{2}, 3, Traffic_class::request, Flow_id{}},
                      {9, Core_id{1}, 1, Traffic_class::request, Flow_id{}}}};
    EXPECT_FALSE(src.poll(4).has_value());
    const auto a = src.poll(5);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->dst, Core_id{1});
    const auto b = src.poll(6); // second same-cycle event, released late
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->size_flits, 3u);
    EXPECT_FALSE(src.poll(7).has_value());
    EXPECT_TRUE(src.poll(9).has_value());
    EXPECT_TRUE(src.done());
}

TEST(TraceParse, ParsesWithComments)
{
    const std::string text = "# cycle src dst size\n"
                             "0 0 1 4\n"
                             "\n"
                             "7 1 0 2   # reply\n"
                             "9 0 2 1\n";
    const auto per_core = parse_trace(text, 3);
    ASSERT_EQ(per_core.size(), 3u);
    EXPECT_EQ(per_core[0].size(), 2u);
    EXPECT_EQ(per_core[1].size(), 1u);
    EXPECT_EQ(per_core[0][1].at, 9u);
    EXPECT_EQ(per_core[1][0].size_flits, 2u);
}

TEST(TraceParse, RejectsMalformedInput)
{
    EXPECT_THROW(parse_trace("0 0 1", 2), std::invalid_argument);   // short
    EXPECT_THROW(parse_trace("0 0 5 1", 2), std::invalid_argument); // id
    EXPECT_THROW(parse_trace("0 1 1 4", 2), std::invalid_argument); // self
    EXPECT_THROW(parse_trace("5 0 1 1\n1 0 1 1", 2),
                 std::invalid_argument); // unsorted per core
    EXPECT_THROW(parse_trace("", 0), std::invalid_argument);
}

TEST(TraceReplay, DrivesANetworkDeterministically)
{
    const std::string text = "0 0 3 4\n"
                             "2 1 2 4\n"
                             "10 0 2 2\n"
                             "11 3 0 6\n"
                             "30 2 1 1\n";
    auto run = [&] {
        Mesh_params mp;
        mp.width = 2;
        mp.height = 2;
        Topology t = make_mesh(mp);
        Route_set r = xy_routes(t, mp);
        Noc_system sys{std::move(t), std::move(r), Network_params{}};
        sys.stats().set_measurement_window(0, 1'000);
        const auto per_core = parse_trace(text, 4);
        for (int c = 0; c < 4; ++c)
            sys.ni(Core_id{static_cast<std::uint32_t>(c)})
                .set_source(std::make_unique<Trace_source>(
                    per_core[static_cast<std::size_t>(c)]));
        EXPECT_TRUE(sys.drain(1'000));
        return std::pair{sys.stats().packets_delivered(),
                         sys.stats().packet_latency().mean()};
    };
    const auto a = run();
    EXPECT_EQ(a.first, 5u);
    EXPECT_EQ(a, run()); // bit-identical replay
}

} // namespace
} // namespace noc
