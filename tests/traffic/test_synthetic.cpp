#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace noc {
namespace {

TEST(Bernoulli, RateMatchesOffered)
{
    Bernoulli_source::Params p;
    p.flits_per_cycle = 0.2;
    p.packet_size_flits = 4;
    p.seed = 3;
    Bernoulli_source src{Core_id{0},
                         p,
                         std::shared_ptr<const Dest_pattern>(
                             make_uniform_pattern(8))};
    const int cycles = 100'000;
    std::uint64_t flits = 0;
    for (int i = 0; i < cycles; ++i)
        if (const auto d = src.poll(static_cast<Cycle>(i)))
            flits += d->size_flits;
    EXPECT_NEAR(static_cast<double>(flits) / cycles, 0.2, 0.01);
}

TEST(Bernoulli, ZeroRateGeneratesNothing)
{
    Bernoulli_source::Params p;
    p.flits_per_cycle = 0.0;
    Bernoulli_source src{Core_id{0},
                         p,
                         std::shared_ptr<const Dest_pattern>(
                             make_uniform_pattern(4))};
    for (int i = 0; i < 1'000; ++i)
        EXPECT_FALSE(src.poll(static_cast<Cycle>(i)).has_value());
}

TEST(Bernoulli, RejectsBadParams)
{
    Bernoulli_source::Params p;
    p.packet_size_flits = 0;
    EXPECT_THROW(Bernoulli_source(Core_id{0}, p,
                                  std::shared_ptr<const Dest_pattern>(
                                      make_uniform_pattern(4))),
                 std::invalid_argument);
    EXPECT_THROW(Bernoulli_source(Core_id{0}, Bernoulli_source::Params{},
                                  nullptr),
                 std::invalid_argument);
}

TEST(Burst, AverageLoadMatchesOnFraction)
{
    Burst_source::Params p;
    p.on_rate_flits_per_cycle = 0.6;
    p.p_on_to_off = 0.02;
    p.p_off_to_on = 0.02; // p_on = 0.5
    p.packet_size_flits = 2;
    p.seed = 11;
    Burst_source src{Core_id{1},
                     p,
                     std::shared_ptr<const Dest_pattern>(
                         make_uniform_pattern(8))};
    const int cycles = 400'000;
    std::uint64_t flits = 0;
    for (int i = 0; i < cycles; ++i)
        if (const auto d = src.poll(static_cast<Cycle>(i)))
            flits += d->size_flits;
    EXPECT_NEAR(static_cast<double>(flits) / cycles, 0.3, 0.02);
}

TEST(Burst, BurstinessExceedsBernoulliVariance)
{
    // Compare windowed variance of generated flits: the MMPP source must be
    // burstier than Bernoulli at the same mean rate.
    const auto windowed_variance = [](auto& src) {
        const int windows = 2'000;
        const int window = 100;
        double sum = 0.0;
        double sum_sq = 0.0;
        Cycle now = 0;
        for (int w = 0; w < windows; ++w) {
            int cnt = 0;
            for (int i = 0; i < window; ++i)
                if (src.poll(now++).has_value()) ++cnt;
            sum += cnt;
            sum_sq += static_cast<double>(cnt) * cnt;
        }
        const double mean = sum / windows;
        return std::pair{mean, sum_sq / windows - mean * mean};
    };

    Bernoulli_source::Params bp;
    bp.flits_per_cycle = 0.3;
    bp.packet_size_flits = 1;
    bp.seed = 5;
    Bernoulli_source b{Core_id{0},
                       bp,
                       std::shared_ptr<const Dest_pattern>(
                           make_uniform_pattern(8))};
    Burst_source::Params sp;
    sp.on_rate_flits_per_cycle = 0.6;
    sp.p_on_to_off = 0.01;
    sp.p_off_to_on = 0.01;
    sp.packet_size_flits = 1;
    sp.seed = 5;
    Burst_source s{Core_id{0},
                   sp,
                   std::shared_ptr<const Dest_pattern>(
                       make_uniform_pattern(8))};

    const auto [bm, bv] = windowed_variance(b);
    const auto [sm, sv] = windowed_variance(s);
    EXPECT_NEAR(bm, sm, 3.0); // similar mean load
    EXPECT_GT(sv, 2.0 * bv);  // much burstier
}

/// The activity-gating contract (Traffic_source::next_poll_at): polling
/// only at the promised cycles must produce the identical packet sequence
/// to polling every cycle — the skipped polls are side-effect-free nullopts.
TEST(Burst, SleepingThroughPromisedGapsIsLossless)
{
    Burst_source::Params p;
    p.on_rate_flits_per_cycle = 0.5;
    p.p_on_to_off = 0.05;
    p.p_off_to_on = 0.03;
    p.packet_size_flits = 2;
    p.seed = 77;
    auto pattern =
        std::shared_ptr<const Dest_pattern>(make_uniform_pattern(16));
    Burst_source every_cycle{Core_id{2}, p, pattern};
    Burst_source event_driven{Core_id{2}, p, pattern};

    std::vector<std::pair<Cycle, Core_id>> dense;
    for (Cycle t = 0; t < 50'000; ++t)
        if (const auto d = every_cycle.poll(t)) dense.push_back({t, d->dst});

    std::vector<std::pair<Cycle, Core_id>> sparse;
    Cycle t = 0;
    std::uint64_t polls = 0;
    while (t < 50'000) {
        ++polls;
        if (const auto d = event_driven.poll(t)) sparse.push_back({t, d->dst});
        const Cycle next = event_driven.next_poll_at(t);
        ASSERT_GT(next, t);
        t = next;
    }
    EXPECT_EQ(dense, sparse);
    // The point of the exercise: bursty NIs sleep through OFF dwells and
    // intra-burst gaps instead of polling 50k times.
    EXPECT_LT(polls, dense.size() * 3 + 1'000);
}

/// Degenerate transition probabilities must not wedge next_poll_at.
TEST(Burst, PermanentOffPromisesSilenceForever)
{
    Burst_source::Params p;
    p.p_off_to_on = 0.0; // never turns on
    Burst_source src{Core_id{0},
                     p,
                     std::shared_ptr<const Dest_pattern>(
                         make_uniform_pattern(4))};
    EXPECT_FALSE(src.poll(0).has_value());
    EXPECT_EQ(src.next_poll_at(0), invalid_cycle);
}

} // namespace
} // namespace noc
