#include "traffic/experiment.h"
#include "traffic/app_graphs.h"
#include "traffic/flow_traffic.h"

#include "topology/routing.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(FlitsPerCycle, UnitConversion)
{
    // 400 MB/s at 1 GHz on 32-bit flits: 3.2e9 bits/s over 32e9 bits/s
    // of link capacity = 0.1 flits/cycle.
    std::uint32_t fpp = 0;
    const double fpc = flits_per_cycle_for(400.0, 1.0, 32, 64, &fpp);
    EXPECT_NEAR(fpc, 0.1, 1e-9);
    EXPECT_EQ(fpp, 16u); // 64 bytes = 512 bits = 16 flits of 32 bits
}

TEST(FlitsPerCycle, RejectsBadArgs)
{
    EXPECT_THROW(flits_per_cycle_for(1.0, 0.0, 32, 64),
                 std::invalid_argument);
    EXPECT_THROW(flits_per_cycle_for(1.0, 1.0, 32, 0),
                 std::invalid_argument);
}

TEST(Experiment, LoadCurveMonotoneInLatency)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    Sweep_config cfg;
    cfg.warmup = 500;
    cfg.measure = 3'000;

    const auto factory = [&] {
        return std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(topo.core_count()));
    };
    const Load_point low =
        run_synthetic_load(topo, routes, params, 0.05, factory, cfg);
    const Load_point high =
        run_synthetic_load(topo, routes, params, 0.35, factory, cfg);
    EXPECT_TRUE(low.drained);
    EXPECT_GT(low.packets, 100u);
    EXPECT_GT(high.avg_packet_latency, low.avg_packet_latency);
    // At low load, accepted ~= offered.
    EXPECT_NEAR(low.accepted_flits_per_node_cycle, 0.05, 0.01);
}

TEST(Experiment, SaturationSearchIsInPlausibleRange)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    Sweep_config cfg;
    cfg.warmup = 300;
    cfg.measure = 2'000;
    cfg.drain_limit = 20'000;

    const double sat = find_saturation_throughput(
        topo, routes, params,
        [&] {
            return std::shared_ptr<const Dest_pattern>(
                make_uniform_pattern(topo.core_count()));
        },
        cfg);
    // XY on 4x4 uniform saturates around 0.3-0.6 flits/node/cycle.
    EXPECT_GT(sat, 0.15);
    EXPECT_LT(sat, 0.8);
}

/// The activity-gating contract (Traffic_source::next_poll_at) for the
/// event-driven Flow_source: polling only at the promised cycles must
/// produce the identical packet sequence to polling every cycle — the
/// skipped polls are side-effect-free nullopts. Exercised in both jitter
/// (geometric gaps) and periodic (accumulator pre-run) modes.
TEST(FlowSource, SleepingThroughPromisedGapsIsLossless)
{
    Core_graph g{"gaps"};
    for (int c = 0; c < 8; ++c) g.add_core({"c", false, 1.0, {}});
    for (int c = 0; c < 3; ++c) {
        Flow_spec f;
        f.src = 0;
        f.dst = c + 1;
        f.bandwidth_mbps = 120.0 * (c + 1);
        f.packet_bytes = 16;
        g.add_flow(f);
    }
    for (const bool jitter : {true, false}) {
        Flow_source::Params p;
        p.jitter = jitter;
        p.seed = 99;
        Flow_source every_cycle{Core_id{0}, g, p};
        Flow_source event_driven{Core_id{0}, g, p};

        std::vector<std::pair<Cycle, std::uint32_t>> dense;
        for (Cycle t = 0; t < 30'000; ++t)
            if (const auto d = every_cycle.poll(t))
                dense.push_back({t, d->flow.get()});

        std::vector<std::pair<Cycle, std::uint32_t>> sparse;
        Cycle t = 0;
        std::uint64_t polls = 0;
        while (t < 30'000) {
            ++polls;
            if (const auto d = event_driven.poll(t))
                sparse.push_back({t, d->flow.get()});
            const Cycle next = event_driven.next_poll_at(t);
            ASSERT_GT(next, t);
            t = next;
        }
        EXPECT_EQ(dense, sparse) << (jitter ? "jitter" : "periodic");
        // The point of the exercise: application-graph NIs sleep through
        // inter-injection gaps instead of polling 30k times.
        EXPECT_LT(polls, dense.size() * 3 + 1'000);
    }
}

/// A periodic flow whose rate is below one ulp of the accumulator can never
/// reach the firing threshold — the per-cycle formulation would silently
/// never fire, and the event-driven pre-run must reach the same verdict in
/// bounded time instead of spinning in the accumulator loop.
TEST(FlowSource, VanishinglySlowPeriodicFlowPromisesSilence)
{
    Core_graph g{"slow"};
    for (int c = 0; c < 2; ++c) g.add_core({"c", false, 1.0, {}});
    Flow_spec f;
    f.src = 0;
    f.dst = 1;
    f.bandwidth_mbps = 1e-12;
    f.packet_bytes = 16;
    g.add_flow(f);
    Flow_source::Params p;
    p.jitter = false;
    Flow_source src{Core_id{0}, g, p};
    EXPECT_FALSE(src.poll(0).has_value()); // must return, not hang
    EXPECT_EQ(src.next_poll_at(0), invalid_cycle);
}

/// A silent graph (no flows from this core) must promise silence forever so
/// the owning NI can sleep for good.
TEST(FlowSource, NoFlowsPromisesSilenceForever)
{
    Core_graph g{"silent"};
    for (int c = 0; c < 4; ++c) g.add_core({"c", false, 1.0, {}});
    Flow_source src{Core_id{2}, g, {}};
    EXPECT_FALSE(src.poll(0).has_value());
    EXPECT_EQ(src.next_poll_at(0), invalid_cycle);
}

/// The Sweep_config kernel knobs: every schedule the config can pick must
/// produce bit-identical Load_points (the schedules are equivalent; the
/// knob exists so explore points choose gated or sharded per point).
TEST(Experiment, KernelModeKnobIsBitInvisible)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    const auto factory = [&] {
        return std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(topo.core_count()));
    };

    auto run = [&](Kernel_mode mode, Partition_plan plan) {
        Sweep_config cfg;
        cfg.warmup = 300;
        cfg.measure = 2'000;
        cfg.build.kernel_mode = mode;
        cfg.build.partition = std::move(plan);
        return run_synthetic_load(topo, routes, params, 0.2, factory, cfg);
    };

    const Load_point gated =
        run(Kernel_mode::activity_gated, Partition_plan::single());
    const Load_point reference =
        run(Kernel_mode::reference, Partition_plan::single());
    const Load_point sharded =
        run(Kernel_mode::sharded, Partition_plan::contiguous(4));
    // A weight-balanced partition is equally invisible in results.
    std::vector<std::uint64_t> weights;
    for (int s = 0; s < topo.switch_count(); ++s)
        weights.push_back(1 + static_cast<std::uint64_t>(s % 5));
    const Load_point balanced =
        run(Kernel_mode::sharded, Partition_plan::balanced(4, weights));
    EXPECT_GT(gated.packets, 0u);
    for (const Load_point* p : {&reference, &sharded, &balanced}) {
        EXPECT_EQ(p->packets, gated.packets);
        EXPECT_EQ(p->accepted_flits_per_node_cycle,
                  gated.accepted_flits_per_node_cycle);
        EXPECT_EQ(p->avg_packet_latency, gated.avg_packet_latency);
        EXPECT_EQ(p->max_latency, gated.max_latency);
    }
}

TEST(Experiment, VopdOnMeshMeetsBandwidth)
{
    // Map VOPD onto a 4x3 mesh in core-id order and check every flow
    // achieves its demanded bandwidth at 1 GHz / 32-bit.
    Mesh_params mp;
    mp.width = 4;
    mp.height = 3;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    Network_params params;
    const Core_graph g = make_vopd_graph();

    Sweep_config cfg;
    cfg.warmup = 1'000;
    cfg.measure = 20'000;
    const Load_point pt =
        run_application_load(topo, routes, params, g, 1.0, cfg);
    EXPECT_TRUE(pt.drained);
    EXPECT_GT(pt.packets, 100u);
    // Accepted must match offered within statistical noise (network is
    // far from saturation for VOPD at these parameters).
    EXPECT_NEAR(pt.accepted_flits_per_node_cycle,
                pt.offered_flits_per_node_cycle,
                0.15 * pt.offered_flits_per_node_cycle);
}

} // namespace
} // namespace noc
