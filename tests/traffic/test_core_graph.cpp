#include "traffic/app_graphs.h"
#include "traffic/core_graph.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

TEST(CoreGraph, BuildAndQuery)
{
    Core_graph g{"t"};
    const int a = g.add_core({"a", false, 1.0, Layer_id{0}});
    const int b = g.add_core({"b", true, 2.0, Layer_id{0}});
    g.add_flow({a, b, 100.0, 0.0, 64, false});
    EXPECT_EQ(g.core_count(), 2);
    EXPECT_EQ(g.flow_count(), 1);
    EXPECT_EQ(g.core_index("b"), 1);
    EXPECT_THROW(g.core_index("zzz"), std::invalid_argument);
    EXPECT_DOUBLE_EQ(g.total_bandwidth_mbps(), 100.0);
    EXPECT_EQ(g.flows_from(a).size(), 1u);
    EXPECT_EQ(g.flows_from(b).size(), 0u);
    EXPECT_NO_THROW(g.validate());
}

TEST(CoreGraph, ValidateCatchesBadFlows)
{
    Core_graph g{"t"};
    const int a = g.add_core({"a", false, 1.0, Layer_id{0}});
    g.add_flow({a, a, 100.0, 0.0, 64, false});
    EXPECT_THROW(g.validate(), std::logic_error);

    Core_graph g2{"t2"};
    const int x = g2.add_core({"x", false, 1.0, Layer_id{0}});
    const int y = g2.add_core({"y", false, 1.0, Layer_id{0}});
    g2.add_flow({x, y, -5.0, 0.0, 64, false});
    EXPECT_THROW(g2.validate(), std::logic_error);
}

TEST(AppGraphs, VopdShape)
{
    const Core_graph g = make_vopd_graph();
    EXPECT_EQ(g.core_count(), 12);
    EXPECT_GE(g.flow_count(), 12);
    // The pipeline dominates: heaviest flow is 362 MB/s.
    double max_bw = 0;
    for (const auto& f : g.flows()) max_bw = std::max(max_bw, f.bandwidth_mbps);
    EXPECT_DOUBLE_EQ(max_bw, 362.0);
}

TEST(AppGraphs, Mpeg4HasSdramHotspot)
{
    const Core_graph g = make_mpeg4_graph();
    const int sdram = g.core_index("sdram");
    double at_sdram = 0;
    for (const auto& f : g.flows())
        if (f.src == sdram || f.dst == sdram) at_sdram += f.bandwidth_mbps;
    EXPECT_GT(at_sdram / g.total_bandwidth_mbps(), 0.7);
}

TEST(AppGraphs, FaustAggregateIsTenPointSixGbps)
{
    const Core_graph g = make_faust_receiver_graph();
    EXPECT_EQ(g.core_count(), 10);
    EXPECT_DOUBLE_EQ(g.total_bandwidth_mbps() * 8.0 / 1000.0, 10.6);
    for (const auto& f : g.flows()) {
        EXPECT_TRUE(f.is_critical);
        EXPECT_GT(f.max_latency_ns, 0.0);
    }
}

TEST(AppGraphs, MobileSocShape)
{
    const Core_graph g = make_mobile_soc_graph();
    EXPECT_EQ(g.core_count(), 26);
    EXPECT_GE(g.flow_count(), 38);
    EXPECT_EQ(g.layer_count(), 1);
    EXPECT_NO_THROW(g.validate());
}

TEST(AppGraphs, MobileSoc3dAssignsLayers)
{
    const Core_graph g = make_mobile_soc_3d_graph(2);
    EXPECT_EQ(g.layer_count(), 2);
    EXPECT_THROW(make_mobile_soc_3d_graph(1), std::invalid_argument);
}

TEST(AppGraphs, AllGraphsValidate)
{
    for (const auto& g :
         {make_vopd_graph(), make_mpeg4_graph(), make_mwd_graph(),
          make_faust_receiver_graph(), make_mobile_soc_graph(),
          make_mobile_soc_3d_graph(4)})
        EXPECT_NO_THROW(g.validate());
}

} // namespace
} // namespace noc
