#include "traffic/patterns.h"

#include <gtest/gtest.h>

#include <map>

namespace noc {
namespace {

TEST(Patterns, UniformNeverPicksSelfAndCoversAll)
{
    const auto p = make_uniform_pattern(8);
    Rng rng{5};
    std::map<std::uint32_t, int> hits;
    for (int i = 0; i < 8'000; ++i) {
        const Core_id d = p->pick(Core_id{3}, rng);
        EXPECT_NE(d, Core_id{3});
        EXPECT_LT(d.get(), 8u);
        ++hits[d.get()];
    }
    EXPECT_EQ(hits.size(), 7u); // every other core reached
    for (const auto& [core, n] : hits) EXPECT_NEAR(n, 8'000 / 7, 200);
}

TEST(Patterns, UniformRejectsTinySystems)
{
    EXPECT_THROW(make_uniform_pattern(1), std::invalid_argument);
}

TEST(Patterns, BitComplement)
{
    const auto p = make_bit_complement_pattern(16);
    Rng rng{1};
    EXPECT_EQ(p->pick(Core_id{0}, rng), Core_id{15});
    EXPECT_EQ(p->pick(Core_id{5}, rng), Core_id{10});
    EXPECT_THROW(make_bit_complement_pattern(12), std::invalid_argument);
}

TEST(Patterns, TransposeSwapsCoordinates)
{
    const auto p = make_transpose_pattern(4, 4);
    Rng rng{1};
    // (1,0) = core 1 -> (0,1) = core 4.
    EXPECT_EQ(p->pick(Core_id{1}, rng), Core_id{4});
    // (3,2) = core 11 -> (2,3) = core 14.
    EXPECT_EQ(p->pick(Core_id{11}, rng), Core_id{14});
    // Diagonal falls back to some other core.
    EXPECT_NE(p->pick(Core_id{5}, rng), Core_id{5});
    EXPECT_THROW(make_transpose_pattern(4, 3), std::invalid_argument);
}

TEST(Patterns, ShuffleRotatesBits)
{
    const auto p = make_shuffle_pattern(8);
    Rng rng{1};
    // 3 bits: 0b011 -> 0b110.
    EXPECT_EQ(p->pick(Core_id{3}, rng), Core_id{6});
    // 0b100 -> 0b001.
    EXPECT_EQ(p->pick(Core_id{4}, rng), Core_id{1});
    // 0 and 7 are fixed points -> fallback.
    EXPECT_NE(p->pick(Core_id{0}, rng), Core_id{0});
    EXPECT_NE(p->pick(Core_id{7}, rng), Core_id{7});
}

TEST(Patterns, NeighborPicksAdjacentOnly)
{
    const auto p = make_neighbor_pattern(4, 4);
    Rng rng{3};
    for (int i = 0; i < 1'000; ++i) {
        const Core_id d = p->pick(Core_id{5}, rng); // (1,1)
        const int dx = std::abs(static_cast<int>(d.get()) % 4 - 1);
        const int dy = std::abs(static_cast<int>(d.get()) / 4 - 1);
        EXPECT_EQ(dx + dy, 1);
    }
    // Corner has exactly two neighbors.
    std::map<std::uint32_t, int> hits;
    for (int i = 0; i < 1'000; ++i) ++hits[p->pick(Core_id{0}, rng).get()];
    EXPECT_EQ(hits.size(), 2u);
}

TEST(Patterns, HotspotConcentratesTraffic)
{
    const auto p = make_hotspot_pattern(16, {Core_id{0}}, 0.5);
    Rng rng{7};
    int hot = 0;
    const int n = 10'000;
    for (int i = 0; i < n; ++i)
        if (p->pick(Core_id{9}, rng) == Core_id{0}) ++hot;
    // 50% direct + (50% * 1/15) uniform spillover.
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.5 + 0.5 / 15, 0.02);
}

TEST(Patterns, TornadoHalfWayShift)
{
    const auto p = make_tornado_pattern(8, 1);
    Rng rng{1};
    // x=0 -> x + ceil(8/2)-1 = 3.
    EXPECT_EQ(p->pick(Core_id{0}, rng), Core_id{3});
    EXPECT_EQ(p->pick(Core_id{6}, rng), Core_id{1}); // wraps
}

} // namespace
} // namespace noc
