#include "synth3d/synth3d.h"
#include "traffic/app_graphs.h"

#include <gtest/gtest.h>

namespace noc {
namespace {

Synthesis3d_spec spec_3d(int layers, int serialization = 1)
{
    Synthesis3d_spec s;
    s.base.graph = make_mobile_soc_3d_graph(layers);
    s.base.tech = make_technology_65nm();
    s.base.operating_points = {{1.0, 32}};
    s.base.min_switches = layers;
    s.base.max_switches = 8;
    s.base.max_switch_radix = 10;
    s.vertical_serialization = serialization;
    return s;
}

TEST(TsvCount, SerializationDividesDataVias)
{
    EXPECT_EQ(tsvs_per_vertical_link(32, 1, 6), 38);
    EXPECT_EQ(tsvs_per_vertical_link(32, 2, 6), 22);
    EXPECT_EQ(tsvs_per_vertical_link(32, 4, 6), 14);
    EXPECT_EQ(tsvs_per_vertical_link(32, 8, 6), 10);
    EXPECT_THROW(tsvs_per_vertical_link(0, 1, 6), std::invalid_argument);
    EXPECT_THROW(tsvs_per_vertical_link(32, 0, 6), std::invalid_argument);
}

TEST(Synth3d, RejectsSingleLayerGraphs)
{
    Synthesis3d_spec s;
    s.base.graph = make_mobile_soc_graph();
    s.base.tech = make_technology_65nm();
    EXPECT_THROW(synthesize_3d(s), std::invalid_argument);
}

TEST(Synth3d, TwoLayerStackSynthesizes)
{
    const auto result = synthesize_3d(spec_3d(2));
    ASSERT_FALSE(result.designs.empty())
        << (result.rejections.empty() ? "?" : result.rejections.front());
    for (const auto& d : result.designs) {
        // Inter-layer traffic exists, so TSVs must exist.
        EXPECT_GT(d.total_tsvs, 0);
        EXPECT_FALSE(d.vertical_links.empty());
        EXPECT_GT(d.stack_yield, 0.0);
        EXPECT_LE(d.stack_yield, 1.0);
        // Vertical links must connect different layers.
        for (const auto& v : d.vertical_links)
            EXPECT_NE(v.from_layer, v.to_layer);
    }
}

TEST(Synth3d, SerializationTradesTsvsForUtilization)
{
    const auto s1 = synthesize_3d(spec_3d(2, 1));
    const auto s2 = synthesize_3d(spec_3d(2, 2));
    ASSERT_FALSE(s1.designs.empty());
    ASSERT_FALSE(s2.designs.empty());
    // Compare the same switch count where both exist.
    for (const auto& d1 : s1.designs) {
        for (const auto& d2 : s2.designs) {
            if (d1.base.switch_count != d2.base.switch_count) continue;
            EXPECT_LT(d2.total_tsvs, d1.total_tsvs);
            EXPECT_GE(d2.max_vertical_utilization,
                      d1.max_vertical_utilization);
            EXPECT_GE(d2.stack_yield, d1.stack_yield);
            // Serialization adds latency.
            EXPECT_GE(d2.base.metrics.latency_ns,
                      d1.base.metrics.latency_ns);
        }
    }
}

TEST(Synth3d, ExcessiveSerializationOversubscribesVerticals)
{
    // At s = 16 the vertical capacity (1/16 flit/cycle) cannot carry the
    // CPU-DRAM streams: designs get rejected for vertical oversubscription.
    const auto result = synthesize_3d(spec_3d(2, 16));
    bool saw_oversubscription = false;
    for (const auto& r : result.rejections)
        if (r.find("oversubscribed") != std::string::npos)
            saw_oversubscription = true;
    EXPECT_TRUE(saw_oversubscription || result.designs.empty());
}

TEST(Synth3d, FourLayerStackHasMoreTsvsThanTwoLayer)
{
    const auto s2 = synthesize_3d(spec_3d(2));
    auto spec4 = spec_3d(4);
    spec4.base.min_switches = 4;
    const auto s4 = synthesize_3d(spec4);
    ASSERT_FALSE(s2.designs.empty());
    ASSERT_FALSE(s4.designs.empty());
    auto min_tsvs = [](const Synthesis3d_result& r) {
        int m = 1 << 30;
        for (const auto& d : r.designs) m = std::min(m, d.total_tsvs);
        return m;
    };
    // Spreading the same flows over more layers cannot reduce the best
    // achievable TSV count.
    EXPECT_GE(min_tsvs(s4), min_tsvs(s2));
}

TEST(Synth3d, LayerPureClustering)
{
    const auto result = synthesize_3d(spec_3d(2));
    ASSERT_FALSE(result.designs.empty());
    const auto& d = result.designs.front();
    const Core_graph& g = make_mobile_soc_3d_graph(2);
    // Every pair of cores sharing a switch must share a layer.
    for (int a = 0; a < g.core_count(); ++a) {
        for (int b = a + 1; b < g.core_count(); ++b) {
            if (d.base.core_cluster[static_cast<std::size_t>(a)] ==
                d.base.core_cluster[static_cast<std::size_t>(b)]) {
                EXPECT_EQ(g.core(a).layer, g.core(b).layer);
            }
        }
    }
}

} // namespace
} // namespace noc
