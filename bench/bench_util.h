// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary prints the table/series corresponding to one paper
// figure or claim (with the paper's qualitative expectation alongside the
// measured value), then runs its registered google-benchmark kernels so the
// computational cost of the underlying engine is tracked too.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace noc::bench {

inline void print_banner(const std::string& experiment_id,
                         const std::string& paper_claim)
{
    std::cout << "==================================================="
                 "=============\n"
              << experiment_id << "\n"
              << "Paper: " << paper_claim << "\n"
              << "==================================================="
                 "=============\n\n";
}

inline void print_verdict(bool shape_holds, const std::string& summary)
{
    std::cout << "\n[" << (shape_holds ? "SHAPE-OK" : "SHAPE-MISMATCH")
              << "] " << summary << "\n\n";
}

/// Print the table, then hand over to google-benchmark.
inline int run_benchmarks(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace noc::bench
