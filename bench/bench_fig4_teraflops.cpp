// Figure 4 — the Intel Teraflops 80-core prototype: "routers are connected
// in a 2D mesh topology ... The aggregate bandwidth supported by the chip
// at 3.16 GHz operating speed is around 1.62 Terabits/s."
//
// We rebuild the 8x10 mesh of 5-port routers cycle-accurately, push it to
// saturation under uniform and nearest-neighbour traffic, and convert the
// accepted flit rate into aggregate terabits/s at 3.16 GHz.
#include "bench_util.h"

#include "common/table.h"
#include "topology/deadlock.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

using namespace noc;

namespace {

constexpr double clock_ghz = 3.16;
constexpr int flit_bits = 32; // Teraflops used 38-bit phits; 32 data bits

double aggregate_tbps(double accepted_flits_per_node_cycle, int nodes)
{
    return accepted_flits_per_node_cycle * nodes * flit_bits * clock_ghz /
           1000.0;
}

void run_figure()
{
    bench::print_banner(
        "F4 / Figure 4 — Intel Teraflops-class 80-core 2D mesh",
        "80 cores, 5-port routers, 2D mesh; aggregate bandwidth ~1.62 Tb/s "
        "at 3.16 GHz");

    Mesh_params mp;
    mp.width = 8;
    mp.height = 10;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    std::cout << "mesh 8x10: " << topo.switch_count() << " routers, radix "
              << topo.max_radix() << " (5-port incl. core port), "
              << analyze_deadlock(topo, routes, 1).to_string(topo) << "\n\n";

    Network_params params;
    params.flit_width_bits = flit_bits;
    params.clock_ghz = clock_ghz;
    Sweep_config cfg;
    cfg.warmup = 1'500;
    cfg.measure = 6'000;
    cfg.packet_size_flits = 2; // Teraflops messages are short

    Text_table table{{"pattern", "offered(f/n/cy)", "accepted(f/n/cy)",
                      "avg lat(cy)", "aggregate(Tb/s)"}};
    double best_tbps = 0.0;
    for (const bool neighbor : {false, true}) {
        auto factory = [&]() -> std::shared_ptr<const Dest_pattern> {
            if (neighbor)
                return std::shared_ptr<const Dest_pattern>(
                    make_neighbor_pattern(8, 10));
            return std::shared_ptr<const Dest_pattern>(
                make_uniform_pattern(topo.core_count()));
        };
        for (const double rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
            const Load_point pt = run_synthetic_load(topo, routes, params,
                                                     rate, factory, cfg);
            const double tbps =
                aggregate_tbps(pt.accepted_flits_per_node_cycle, 80);
            best_tbps = std::max(best_tbps, tbps);
            table.row()
                .add(neighbor ? "neighbor" : "uniform")
                .add(rate, 2)
                .add(pt.accepted_flits_per_node_cycle, 3)
                .add(pt.avg_packet_latency, 1)
                .add(tbps, 2);
        }
    }
    table.print(std::cout);
    std::cout << "\npeak sustained aggregate bandwidth: "
              << format_double(best_tbps, 2)
              << " Tb/s (paper reports ~1.62 Tb/s for the 80-core chip; "
                 "theoretical injection-limited ceiling at 1 flit/node/cycle "
                 "= "
              << format_double(aggregate_tbps(1.0, 80), 2) << " Tb/s)\n";
    bench::print_verdict(best_tbps > 1.0 && best_tbps < 8.09,
                         "mesh sustains terabit-class aggregate bandwidth "
                         "at 3.16 GHz, same order as the silicon");
}

void bm_teraflops_sim_cycles(benchmark::State& state)
{
    Mesh_params mp;
    mp.width = 8;
    mp.height = 10;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.flit_width_bits = flit_bits;
    Noc_system sys{std::move(topo), std::move(routes), params};
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(80));
    for (int c = 0; c < 80; ++c) {
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.3;
        sp.seed = 9 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Bernoulli_source>(
                Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
    }
    for (auto _ : state) sys.kernel().run(100);
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(bm_teraflops_sim_cycles)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
