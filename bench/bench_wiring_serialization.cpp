// C3 / §4.1 — structured wiring: "A typical on-chip bus requires around 100
// to 200 wires... a NoC sends packets, and can do so by splitting them over
// multiple cycles in flits... By deploying highly serialized links, routing
// can be simplified, while area and crosstalk can be minimized."
#include "bench_util.h"

#include "bus/wiring.h"
#include "common/table.h"

using namespace noc;

namespace {

void run_figure()
{
    bench::print_banner(
        "C3 / §4.1 — bus wires vs serialized NoC links",
        "bus = 100-200 wires; NoC link = flit width + handshake, freely "
        "serializable; area & crosstalk drop, serialization cycles rise");

    const Technology tech = make_technology_65nm();

    std::cout << "Reference buses:\n";
    Text_table bus_table{{"bus", "write", "read", "addr", "ctrl", "wires"}};
    const Bus_wiring bus32;
    Bus_wiring bus64 = bus32;
    bus64.write_data_bits = 64;
    bus64.read_data_bits = 64;
    bus_table.row()
        .add("32-bit AHB-class")
        .add(bus32.write_data_bits)
        .add(bus32.read_data_bits)
        .add(bus32.address_bits)
        .add(bus32.control_bits)
        .add(bus32.total_wires());
    bus_table.row()
        .add("64-bit AXI-class")
        .add(bus64.write_data_bits)
        .add(bus64.read_data_bits)
        .add(bus64.address_bits)
        .add(bus64.control_bits)
        .add(bus64.total_wires());
    bus_table.print(std::cout);

    std::cout << "\nNoC links vs the 64-bit bus (" << bus64.total_wires()
              << " wires):\n";
    Text_table table{{"flit width", "link wires", "reduction(x)",
                      "area(mm2/mm)", "coupling pairs/mm",
                      "cycles per bus beat"}};
    bool shape = true;
    double prev_wires = 1e9;
    for (const int w : {128, 64, 32, 16, 8}) {
        Noc_link_wiring link;
        link.flit_width_bits = w;
        const auto cmp = compare_wiring(tech, bus64, link);
        table.row()
            .add(w)
            .add(cmp.noc_wires)
            .add(cmp.wire_reduction_factor, 2)
            .add(cmp.noc_area_mm2_per_mm, 4)
            .add(coupling_pairs_per_mm(tech, cmp.noc_wires), 0)
            .add(cmp.noc_cycles_per_bus_beat, 1);
        if (cmp.noc_wires >= prev_wires) shape = false;
        prev_wires = cmp.noc_wires;
        if (w == 32 && (cmp.noc_wires < 32 || cmp.noc_wires > 48))
            shape = false; // "e.g. 32"-wire class links
    }
    table.print(std::cout);
    std::cout << "\nThe paper's example: fixed 32-bit flits give ~"
              << compare_wiring(tech, bus64, Noc_link_wiring{})
                     .wire_reduction_factor
              << "x fewer wires than a 64-bit bus; the price is "
              << compare_wiring(tech, bus64, Noc_link_wiring{})
                     .noc_cycles_per_bus_beat
              << " cycles of serialization per bus beat.\n";
    bench::print_verdict(shape,
                         "wire count, routing area and coupling fall "
                         "monotonically with serialization");
}

void bm_compare_wiring(benchmark::State& state)
{
    const Technology tech = make_technology_65nm();
    const Bus_wiring bus;
    Noc_link_wiring link;
    for (auto _ : state) {
        auto c = compare_wiring(tech, bus, link);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(bm_compare_wiring);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
