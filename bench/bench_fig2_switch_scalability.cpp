// Figure 2 — "Study on 65nm, 32-bit switch scalability. Routers up to
// 10x10: 85% row utilization or more; 14x14 to 22x22: 70% to 50% row
// utilization; 26x26 and above: DRC violations to tackle manually even at
// 50% row utilization."
#include "bench_util.h"

#include "common/table.h"
#include "phys/router_model.h"

using namespace noc;

namespace {

void run_figure()
{
    bench::print_banner(
        "F2 / Figure 2 — 65 nm 32-bit switch scalability",
        "<=10x10 routable at >=85% utilization; 14x14..22x22 at 70-50%; "
        ">=26x26 DRC-infeasible even at 50%");

    const Technology tech = make_technology_65nm();
    Text_table table{{"radix", "cell area(mm2)", "fmax(GHz)",
                      "max row util(%)", "footprint(mm2)", "classification"}};
    bool shape = true;
    for (const int p : {2, 4, 6, 8, 10, 14, 18, 22, 26, 30, 34}) {
        Router_phys_params rp;
        rp.in_ports = p;
        rp.out_ports = p;
        rp.flit_width_bits = 32;
        rp.buffer_depth = 4;
        const auto r = estimate_router(tech, rp);
        table.row()
            .add(std::to_string(p) + "x" + std::to_string(p))
            .add(r.cell_area_mm2, 4)
            .add(r.max_freq_ghz, 2)
            .add(r.max_row_utilization * 100.0, 1)
            .add(r.footprint_mm2, 4)
            .add(r.classification);
        if (p <= 10 && r.max_row_utilization < 0.85) shape = false;
        if (p >= 14 && p <= 22 &&
            (r.max_row_utilization < 0.45 || r.max_row_utilization > 0.78))
            shape = false;
        if (p >= 26 && r.drc_feasible) shape = false;
    }
    table.print(std::cout);
    bench::print_verdict(shape,
                         "utilization bands match the published study "
                         "(>=85% / 70-50% / DRC wall at 26x26)");
}

void bm_estimate_router(benchmark::State& state)
{
    const Technology tech = make_technology_65nm();
    Router_phys_params rp;
    rp.in_ports = static_cast<int>(state.range(0));
    rp.out_ports = rp.in_ports;
    rp.flit_width_bits = 32;
    for (auto _ : state) {
        auto r = estimate_router(tech, rp);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(bm_estimate_router)->Arg(5)->Arg(17)->Arg(33);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
