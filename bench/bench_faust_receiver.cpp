// C7 / §5 — the FAUST telecom SoC: "The implemented topology is a
// quasi-mesh as on some routers connect more than one core. In the receiver
// matrix — which consists of only 10 cores — the aggregate required
// bandwidth is 10.6 Gbits/s to maintain real time communication."
//
// We map the 10-core receiver chain onto a 2x3 quasi-mesh (cores doubled up
// on some switches), give every stream a GT connection sized to its
// bandwidth, and verify the 10.6 Gb/s aggregate is sustained in real time.
#include "bench_util.h"

#include "common/table.h"
#include "qos/gt_allocator.h"
#include "topology/routing.h"
#include "traffic/app_graphs.h"
#include "traffic/experiment.h"
#include "traffic/flow_traffic.h"

using namespace noc;

namespace {

void run_figure()
{
    bench::print_banner(
        "C7 / §5 — FAUST receiver matrix on a quasi-mesh",
        "10 cores, every stream hard real-time, aggregate 10.6 Gb/s "
        "sustained");

    const Core_graph g = make_faust_receiver_graph();
    std::cout << "graph: " << g.core_count() << " cores, " << g.flow_count()
              << " flows, aggregate "
              << format_double(g.total_bandwidth_mbps() * 8e-3, 2)
              << " Gb/s (paper: 10.6)\n\n";

    // Quasi-mesh (§5): 6 switches in a 2x3 grid, 10 cores — "some routers
    // connect more than one core".
    Topology quasi{"faust_quasi_mesh", 6};
    const int cores_at[6] = {2, 2, 2, 2, 1, 1};
    for (int s = 0; s < 6; ++s)
        for (int c = 0; c < cores_at[s]; ++c)
            quasi.attach_core(Switch_id{static_cast<std::uint32_t>(s)});
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 3; ++x) {
            const Switch_id sw{static_cast<std::uint32_t>(y * 3 + x)};
            quasi.set_switch_position(sw, {x * 1.2, y * 1.2});
            if (x + 1 < 3)
                quasi.add_bidir_link(
                    sw, Switch_id{static_cast<std::uint32_t>(y * 3 + x + 1)});
            if (y + 1 < 2)
                quasi.add_bidir_link(
                    sw,
                    Switch_id{static_cast<std::uint32_t>((y + 1) * 3 + x)});
        }
    quasi.validate();
    const auto rank = spanning_tree_ranks(quasi, Switch_id{1});
    Route_set routes = updown_routes(quasi, rank);

    Network_params params;
    params.enable_gt = true;
    params.slot_table_length = 32;
    params.clock_ghz = 0.5; // FAUST-era clock

    // One GT connection per flow, sized to its bandwidth.
    const Gt_allocator alloc{quasi, routes, params.slot_table_length};
    std::vector<Gt_request> reqs;
    for (int i = 0; i < g.flow_count(); ++i) {
        const auto& f = g.flow(Flow_id{static_cast<std::uint32_t>(i)});
        const double load = flits_per_cycle_for(
            f.bandwidth_mbps, params.clock_ghz, params.flit_width_bits,
            f.packet_bytes);
        reqs.push_back({Connection_id{static_cast<std::uint32_t>(i)},
                        Core_id{static_cast<std::uint32_t>(f.src)},
                        Core_id{static_cast<std::uint32_t>(f.dst)},
                        std::min(1.0, load * 1.3)}); // 30% headroom
    }
    const auto allocation = alloc.allocate(reqs);
    std::cout << "GT admission: "
              << (allocation.feasible ? "all connections admitted"
                                      : allocation.failure_reason)
              << "\n\n";
    if (!allocation.feasible) {
        bench::print_verdict(false, "GT admission failed");
        return;
    }

    Noc_system sys{std::move(quasi), std::move(routes), params};
    for (int c = 0; c < 10; ++c)
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_slot_table(
                allocation.ni_tables[static_cast<std::size_t>(c)]);
    for (int c = 0; c < 10; ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Flow_source::Params fp;
        fp.clock_ghz = params.clock_ghz;
        fp.flit_width_bits = params.flit_width_bits;
        fp.critical_as_gt = true;
        fp.jitter = false; // periodic real-time streams
        fp.seed = 41 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Flow_source>(core, g, fp));
    }

    const Cycle measure = 40'000;
    sys.warmup(4'000);
    sys.measure(measure);

    Text_table table{{"flow", "bw req(MB/s)", "delivered(MB/s)",
                      "avg lat(ns)", "bound(ns)", "ok"}};
    bool all_ok = true;
    double delivered_total_gbps = 0.0;
    for (int i = 0; i < g.flow_count(); ++i) {
        const Flow_id fid{static_cast<std::uint32_t>(i)};
        const auto& f = g.flow(fid);
        const auto flits = sys.stats().flow_flits_delivered(fid);
        const double mbps = static_cast<double>(flits) *
                            params.flit_width_bits / 8.0 /
                            (measure / (params.clock_ghz * 1e9)) / 1e6;
        const double lat_ns =
            sys.stats().flow_latency(fid).mean() / params.clock_ghz;
        const bool ok = mbps >= 0.9 * f.bandwidth_mbps &&
                        (f.max_latency_ns <= 0 || lat_ns <= f.max_latency_ns);
        all_ok = all_ok && ok;
        delivered_total_gbps += mbps * 8e-3;
        table.row()
            .add(g.core(f.src).name + "->" + g.core(f.dst).name)
            .add(f.bandwidth_mbps, 0)
            .add(mbps, 1)
            .add(lat_ns, 0)
            .add(f.max_latency_ns, 0)
            .add(ok ? "yes" : "NO");
    }
    table.print(std::cout);
    std::cout << "\naggregate delivered: "
              << format_double(delivered_total_gbps, 2)
              << " Gb/s (required 10.6)\n";
    bench::print_verdict(all_ok && delivered_total_gbps >= 10.6 * 0.9,
                         "the quasi-mesh sustains the 10.6 Gb/s real-time "
                         "aggregate with per-stream guarantees");
}

void bm_faust_sim(benchmark::State& state)
{
    const Core_graph g = make_faust_receiver_graph();
    Mesh_params mp;
    mp.width = 3;
    mp.height = 2;
    mp.cores_per_switch = 2;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.clock_ghz = 0.5;
    Noc_system sys{std::move(topo), std::move(routes), params};
    for (int c = 0; c < 10; ++c) {
        Flow_source::Params fp;
        fp.clock_ghz = 0.5;
        fp.seed = 51 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Flow_source>(
                Core_id{static_cast<std::uint32_t>(c)}, g, fp));
    }
    for (auto _ : state) sys.kernel().run(100);
}
BENCHMARK(bm_faust_sim)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
