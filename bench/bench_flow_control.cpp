// C1 / §3 — flow-control trade-offs: "If ACK/NACK flow control is used then
// output buffers are required, as flits have to be retransmitted... If
// ON/OFF flow control is used, backpressure from the downstream switch
// stalls the transmission... In this case, output buffers can be omitted."
//
// We compare credit, ON/OFF and ACK/NACK on the same 4x4 mesh: latency at
// fixed load, saturation throughput, the buffer bits each scheme spends,
// and the ACK/NACK retransmission traffic that appears near saturation.
#include "bench_util.h"

#include "common/table.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

using namespace noc;

namespace {

struct Scheme {
    std::string name;
    Flow_control_kind fc;
    int buffer_depth;
    int output_buffer_depth; // ack_nack only
};

int buffer_bits_per_port(const Scheme& s, int flit_bits)
{
    const int in = s.buffer_depth * flit_bits;
    const int out = s.fc == Flow_control_kind::ack_nack
                        ? s.output_buffer_depth * flit_bits
                        : 0;
    return in + out;
}

void run_figure()
{
    bench::print_banner(
        "C1 / §3 — link-level flow control: credit vs ON/OFF vs ACK/NACK",
        "ACK/NACK needs output (retransmission) buffers; ON/OFF omits them "
        "but needs round-trip input margin; credit is the reference");

    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    const std::vector<Scheme> schemes = {
        {"credit", Flow_control_kind::credit, 4, 0},
        {"on_off", Flow_control_kind::on_off, 6, 0},
        {"ack_nack", Flow_control_kind::ack_nack, 4, 8},
    };

    Sweep_config cfg;
    cfg.warmup = 1'000;
    cfg.measure = 5'000;
    auto factory = [&] {
        return std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(topo.core_count()));
    };

    Text_table table{{"scheme", "buffer bits/port", "lat@0.1 (cy)",
                      "lat@0.25 (cy)", "saturation(f/n/cy)"}};
    double sat_credit = 0.0;
    double sat_acknack = 0.0;
    for (const auto& s : schemes) {
        Network_params params;
        params.fc = s.fc;
        params.buffer_depth = s.buffer_depth;
        params.output_buffer_depth = std::max(4, s.output_buffer_depth);
        const Load_point p10 =
            run_synthetic_load(topo, routes, params, 0.10, factory, cfg);
        const Load_point p25 =
            run_synthetic_load(topo, routes, params, 0.25, factory, cfg);
        const double sat = find_saturation_throughput(topo, routes, params,
                                                      factory, cfg);
        if (s.fc == Flow_control_kind::credit) sat_credit = sat;
        if (s.fc == Flow_control_kind::ack_nack) sat_acknack = sat;
        table.row()
            .add(s.name)
            .add(buffer_bits_per_port(s, params.flit_width_bits))
            .add(p10.avg_packet_latency, 1)
            .add(p25.avg_packet_latency, 1)
            .add(sat, 3);
    }
    table.print(std::cout);
    std::cout
        << "\nACK/NACK pays " << 8 * 32
        << " extra output-buffer bits per port and loses throughput to "
           "go-back-N retransmissions; ON/OFF needs deeper input FIFOs "
           "(round-trip margin) but no output buffer — matching §3.\n";
    bench::print_verdict(sat_acknack <= sat_credit + 0.02,
                         "credit >= ack/nack in saturation throughput; "
                         "buffer-cost ordering as described in the paper");
}

void bm_mesh_step_per_fc(benchmark::State& state)
{
    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Network_params params;
    params.fc = static_cast<Flow_control_kind>(state.range(0));
    params.buffer_depth = params.fc == Flow_control_kind::on_off ? 6 : 4;
    Noc_system sys{std::move(topo), std::move(routes), params};
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(16));
    for (int c = 0; c < 16; ++c) {
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.2;
        sp.seed = 17 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Bernoulli_source>(
                Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
    }
    for (auto _ : state) sys.kernel().run(100);
}
BENCHMARK(bm_mesh_step_per_fc)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
