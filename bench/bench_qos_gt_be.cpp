// C2 / §3 — Æthereal-style QoS: "GT connections ... provide bandwidth and
// latency guarantees on that connection", via TDMA slot tables in the NIs,
// while best-effort traffic uses the leftover capacity.
//
// Two GT connections cross a 4x4 mesh while every other core floods the
// network with BE traffic from zero to beyond saturation. GT latency must
// stay flat (below its analytic bound); BE latency explodes.
#include "bench_util.h"

#include "common/table.h"
#include "arch/noc_system.h"
#include "qos/gt_allocator.h"
#include "topology/routing.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

using namespace noc;

namespace {

class Gt_source final : public Traffic_source {
public:
    Gt_source(Core_id dst, Connection_id conn, Flow_id flow, double rate)
        : dst_{dst}, conn_{conn}, flow_{flow}, rate_{rate}
    {
    }
    std::optional<Packet_desc> poll(Cycle) override
    {
        acc_ += rate_;
        if (acc_ < 1.0) return std::nullopt;
        acc_ -= 1.0;
        return Packet_desc{dst_, 1, Traffic_class::gt, flow_, conn_, 0};
    }

private:
    Core_id dst_;
    Connection_id conn_;
    Flow_id flow_;
    double rate_;
    double acc_ = 0.0;
};

void run_figure()
{
    bench::print_banner(
        "C2 / §3 — GT vs BE under load (Æthereal TDMA slot tables)",
        "GT connections keep bandwidth/latency guarantees regardless of BE "
        "load; BE degrades towards saturation");

    Mesh_params mp;
    mp.width = 4;
    mp.height = 4;
    Topology topo0 = make_mesh(mp);
    Route_set routes0 = xy_routes(topo0, mp);

    Network_params params;
    params.enable_gt = true;
    params.slot_table_length = 16;

    const Gt_allocator alloc{topo0, routes0, params.slot_table_length};
    const auto allocation = alloc.allocate({
        {Connection_id{0}, Core_id{0}, Core_id{15}, 0.25},
        {Connection_id{1}, Core_id{12}, Core_id{3}, 0.125},
    });
    if (!allocation.feasible) {
        std::cout << "allocation failed: " << allocation.failure_reason
                  << "\n";
        return;
    }
    std::cout << "GT0: 0->15, 4/16 slots, bound "
              << allocation.grants[0].latency_bound << " cy;  GT1: 12->3, "
              << "2/16 slots, bound " << allocation.grants[1].latency_bound
              << " cy\n\n";

    Text_table table{{"BE load(f/n/cy)", "GT0 avg(cy)", "GT0 max(cy)",
                      "GT1 avg(cy)", "GT1 max(cy)", "BE avg(cy)"}};
    bool guarantees_hold = true;
    double gt0_max_low = 0.0;
    double gt0_max_high = 0.0;
    for (const double be : {0.0, 0.1, 0.2, 0.4, 0.6, 0.9}) {
        Noc_system sys{topo0, routes0, params};
        for (int c = 0; c < 16; ++c)
            sys.ni(Core_id{static_cast<std::uint32_t>(c)})
                .set_slot_table(
                    allocation.ni_tables[static_cast<std::size_t>(c)]);
        sys.ni(Core_id{0}).set_source(std::make_unique<Gt_source>(
            Core_id{15}, Connection_id{0}, Flow_id{1000}, 0.2));
        sys.ni(Core_id{12}).set_source(std::make_unique<Gt_source>(
            Core_id{3}, Connection_id{1}, Flow_id{1001}, 0.1));
        auto pattern = std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(16));
        for (int c = 0; c < 16; ++c) {
            if (c == 0 || c == 12) continue;
            Bernoulli_source::Params sp;
            sp.flits_per_cycle = be;
            sp.packet_size_flits = 4;
            sp.seed = 21 + static_cast<std::uint64_t>(c);
            sys.ni(Core_id{static_cast<std::uint32_t>(c)})
                .set_source(std::make_unique<Bernoulli_source>(
                    Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
        }
        sys.warmup(2'000);
        sys.measure(8'000);
        const auto& gt0 = sys.stats().flow_latency(Flow_id{1000});
        const auto& gt1 = sys.stats().flow_latency(Flow_id{1001});
        // BE latency = overall packet latency dominated by BE flits.
        table.row()
            .add(be, 2)
            .add(gt0.mean(), 1)
            .add(gt0.max(), 0)
            .add(gt1.mean(), 1)
            .add(gt1.max(), 0)
            .add(sys.stats().packet_latency().mean(), 1);
        guarantees_hold =
            guarantees_hold &&
            gt0.max() <=
                static_cast<double>(allocation.grants[0].latency_bound) &&
            gt1.max() <=
                static_cast<double>(allocation.grants[1].latency_bound);
        if (be == 0.0) gt0_max_low = gt0.max();
        if (be == 0.9) gt0_max_high = gt0.max();
    }
    table.print(std::cout);
    bench::print_verdict(
        guarantees_hold && gt0_max_high <= gt0_max_low + 1e-9,
        "GT worst-case latency is load-independent and under the "
        "slot-table bound; BE latency grows with load");
}

void bm_slot_allocation(benchmark::State& state)
{
    Mesh_params mp;
    mp.width = 8;
    mp.height = 10;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    const Gt_allocator alloc{topo, routes, 32};
    std::vector<Gt_request> reqs;
    for (std::uint32_t i = 0; i < 24; ++i)
        reqs.push_back(
            {Connection_id{i}, Core_id{i}, Core_id{79 - i}, 1.0 / 32});
    for (auto _ : state) {
        auto a = alloc.allocate(reqs);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(bm_slot_allocation)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
