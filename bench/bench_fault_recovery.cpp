// Live fault injection and online recovery (§1: "reconfigurable NoCs can
// support component redundancy in a transparent fashion").
//
// Three runs of the same 8x8 mesh under uniform Bernoulli traffic:
//   * baseline        — no faults: the reference for latency/throughput;
//   * transients      — random flit corruptions under ACK/NACK flow
//     control: the link-level go-back-N window retransmits, so packets
//     still all arrive (availability stays 1.0) at a small latency cost;
//   * link-failure    — a permanent multi-link kill mid-measurement:
//     in-flight packets on the dead links are dropped and accounted, the
//     online reroute rewrites the NI route LUTs after the plan's
//     reroute_latency, and traffic keeps flowing on the survivor paths —
//     degraded, but alive and fully drained.
// Plus the recovery-mode comparison that motivates epoch-based reroute:
// the same up*/down*-routed mesh loses one carefully chosen duplex link
// (one whose retirement leaves the BFS ranks unchanged, so the union of
// the old and new routing functions provably stays deadlock-free) under
// both completion paths —
//   * epoch leg — the union check admits a LIVE switchover: time to
//     recover is exactly reroute_latency, old-epoch packets finish on
//     their old routes while new traffic takes the detours;
//   * drain leg — Recovery_mode::drain forces the PR-6 behavior: pause,
//     drain the whole network, then swap — strictly slower.
// Both legs run the NI end-to-end replay protocol, so every purged packet
// on the still-connected mesh is re-queued and delivered: packets_dropped
// ends at 0 and availability at 1.0.
// Plus a saturation comparison: binary-searched saturation throughput of
// the healthy mesh vs the same mesh with the failed links — the paper's
// graceful-degradation story in one number.
//
// Results land in BENCH_fault_recovery.json for cross-PR trending. The
// verdict gates on recovery behavior (reroute completed, drained, nonzero
// degraded throughput), not on absolute figures.
#include "bench_util.h"

#include "arch/fault_plan.h"
#include "topology/fault.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/patterns.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace noc;

namespace {

struct Fixture {
    Topology topo;
    Route_set routes;
    Network_params params;
    Sweep_config cfg;
};

Fixture make_fixture(bool smoke, Flow_control_kind fc)
{
    Mesh_params mp;
    mp.width = 8;
    mp.height = 8;
    Fixture f{make_mesh(mp), {}, {}, {}};
    f.routes = xy_routes(f.topo, mp);
    f.params.fc = fc;
    f.cfg.warmup = smoke ? 300 : 1'000;
    f.cfg.measure = smoke ? 2'000 : 10'000;
    f.cfg.drain_limit = smoke ? 20'000 : 60'000;
    f.cfg.seed = 20100607; // DAC'10
    return f;
}

Load_point run_at(const Fixture& f, double load,
                  std::shared_ptr<const Fault_plan> plan)
{
    Sweep_config cfg = f.cfg;
    cfg.build.fault_plan = std::move(plan);
    return run_synthetic_load(
        f.topo, f.routes, f.params, load,
        [&] { return make_uniform_pattern(f.topo.core_count()); }, cfg);
}

void print_row(const char* label, const Load_point& pt)
{
    std::printf("%-14s %8.3f %9.1f %7llu %7llu %6llu %6llu %5llu %7.1f "
                "%6.4f %s\n",
                label, pt.accepted_flits_per_node_cycle,
                pt.avg_packet_latency,
                static_cast<unsigned long long>(pt.packets),
                static_cast<unsigned long long>(pt.packets_dropped),
                static_cast<unsigned long long>(pt.packets_unreachable),
                static_cast<unsigned long long>(pt.corrupted_flits),
                static_cast<unsigned long long>(pt.retransmissions),
                pt.avg_time_to_recover, pt.availability,
                pt.drained ? "yes" : "NO");
}

} // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

    bench::print_banner(
        "R1 / §1 — live fault injection and online reconfiguration",
        "reconfigurable NoCs support component redundancy transparently: "
        "transient corruption is absorbed by link-level retransmission, "
        "permanent link failures trigger an online reroute that keeps the "
        "network running at degraded but nonzero capacity");

    const double load = 0.10;
    const Fixture mesh = make_fixture(smoke, Flow_control_kind::credit);
    const Fixture mesh_an = make_fixture(smoke, Flow_control_kind::ack_nack);
    const Cycle horizon = mesh.cfg.warmup + mesh.cfg.measure;

    // Faults land mid-measurement by construction of random_plan: the
    // permanent kill at horizon/2, transients spread over the run.
    auto transient_plan = std::make_shared<Fault_plan>(Fault_plan::random_plan(
        mesh_an.topo, mesh_an.cfg.seed, /*transient_count=*/32,
        /*permanent_count=*/0, horizon));
    auto failure_plan = std::make_shared<Fault_plan>(Fault_plan::random_plan(
        mesh.topo, mesh.cfg.seed, /*transient_count=*/0,
        /*permanent_count=*/2, horizon));

    const Load_point baseline = run_at(mesh, load, nullptr);
    const Load_point transients = run_at(mesh_an, load, transient_plan);
    const Load_point failure = run_at(mesh, load, failure_plan);

    // Epoch vs drain recovery on an up*/down*-routed mesh. The victim is
    // the first duplex link whose retirement leaves the BFS ranks from
    // root 0 unchanged: the failure-aware reroute then obeys the up/down
    // discipline of the SAME rank order as the healthy routes, the union
    // CDG is acyclic, and the epoch leg's live switchover is admitted.
    Fixture mesh_ud = make_fixture(smoke, Flow_control_kind::credit);
    const std::vector<int> ud_ranks =
        spanning_tree_ranks(mesh_ud.topo, Switch_id{0});
    mesh_ud.routes = updown_routes(mesh_ud.topo, ud_ranks);
    Link_id victim{};
    for (int i = 0; i < mesh_ud.topo.link_count(); ++i) {
        const Link_id l{static_cast<std::uint32_t>(i)};
        const std::set<Link_id> retired =
            symmetrize_failures(mesh_ud.topo, {l});
        if (failure_aware_ranks(mesh_ud.topo, Switch_id{0}, retired) ==
            ud_ranks) {
            victim = l;
            break;
        }
    }
    auto epoch_plan = std::make_shared<Fault_plan>();
    epoch_plan->add_permanent(horizon / 2, {victim});
    epoch_plan->reroute_latency = 8;
    epoch_plan->replay = true;
    epoch_plan->recovery = Recovery_mode::epoch;
    auto drain_plan = std::make_shared<Fault_plan>(*epoch_plan);
    drain_plan->recovery = Recovery_mode::drain;
    const Load_point epoch_leg = run_at(mesh_ud, load, epoch_plan);
    const Load_point drain_leg = run_at(mesh_ud, load, drain_plan);

    std::printf("%-14s %8s %9s %7s %7s %6s %6s %5s %7s %6s %s\n", "run",
                "acc/n/cy", "lat(cy)", "pkts", "drop", "unrch", "corr",
                "retx", "ttr(cy)", "avail", "drained");
    print_row("baseline", baseline);
    print_row("transients", transients);
    print_row("link-failure", failure);
    print_row("epoch-reroute", epoch_leg);
    print_row("drain-reroute", drain_leg);
    std::printf("\nepoch recovery %.1f cy (%llu live switchover(s), %llu "
                "replayed) vs drain recovery %.1f cy (%llu replayed)\n",
                epoch_leg.avg_time_to_recover,
                static_cast<unsigned long long>(epoch_leg.live_switchovers),
                static_cast<unsigned long long>(epoch_leg.packets_replayed),
                drain_leg.avg_time_to_recover,
                static_cast<unsigned long long>(drain_leg.packets_replayed));

    // Graceful degradation: saturation of the healthy mesh vs the same
    // mesh carrying the permanent failure the whole run.
    const auto pattern = [&] {
        return make_uniform_pattern(mesh.topo.core_count());
    };
    Sweep_config sat_cfg = mesh.cfg;
    const double sat_healthy = find_saturation_throughput(
        mesh.topo, mesh.routes, mesh.params, pattern, sat_cfg);
    sat_cfg.build.fault_plan = failure_plan;
    const double sat_degraded = find_saturation_throughput(
        mesh.topo, mesh.routes, mesh.params, pattern, sat_cfg);
    std::printf("\nsaturation healthy %.4f -> degraded %.4f flits/node/cycle "
                "(%zu dead links)\n",
                sat_healthy, sat_degraded,
                failure_plan->permanents().front().links.size());

    std::string json =
        "{\n  \"bench\": \"fault_recovery\",\n  \"smoke\": " +
        std::string{smoke ? "true" : "false"} +
        ",\n  \"load\": 0.10,\n  \"baseline_latency\": " +
        std::to_string(baseline.avg_packet_latency) +
        ",\n  \"failure_latency\": " +
        std::to_string(failure.avg_packet_latency) +
        ",\n  \"packets_dropped\": " +
        std::to_string(failure.packets_dropped) +
        ",\n  \"packets_unreachable\": " +
        std::to_string(failure.packets_unreachable) +
        ",\n  \"corrupted_flits\": " +
        std::to_string(transients.corrupted_flits) +
        ",\n  \"retransmissions\": " +
        std::to_string(transients.retransmissions) +
        ",\n  \"recoveries\": " + std::to_string(failure.recoveries) +
        ",\n  \"time_to_recover\": " +
        std::to_string(failure.avg_time_to_recover) +
        ",\n  \"availability\": " + std::to_string(failure.availability) +
        ",\n  \"epoch_time_to_recover\": " +
        std::to_string(epoch_leg.avg_time_to_recover) +
        ",\n  \"epoch_live_switchovers\": " +
        std::to_string(epoch_leg.live_switchovers) +
        ",\n  \"epoch_packets_dropped\": " +
        std::to_string(epoch_leg.packets_dropped) +
        ",\n  \"epoch_packets_replayed\": " +
        std::to_string(epoch_leg.packets_replayed) +
        ",\n  \"epoch_availability\": " +
        std::to_string(epoch_leg.availability) +
        ",\n  \"drain_time_to_recover\": " +
        std::to_string(drain_leg.avg_time_to_recover) +
        ",\n  \"drain_packets_replayed\": " +
        std::to_string(drain_leg.packets_replayed) +
        ",\n  \"saturation_healthy\": " + std::to_string(sat_healthy) +
        ",\n  \"saturation_degraded\": " + std::to_string(sat_degraded) +
        "\n}\n";
    if (std::FILE* f = std::fopen("BENCH_fault_recovery.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_fault_recovery.json\n");
    }

    const bool ok =
        baseline.drained && transients.drained && failure.drained &&
        // transient corruption is fully absorbed by retransmission
        transients.availability >= 1.0 &&
        // the permanent failure triggered exactly one completed reroute
        failure.recoveries == 1 &&
        failure.avg_time_to_recover >= 1.0 &&
        // the wounded network still moves traffic, at most mildly degraded
        failure.accepted_flits_per_node_cycle > 0.0 && sat_degraded > 0.0 &&
        sat_degraded <= sat_healthy + 1e-9 &&
        // epoch leg: the live switchover fired and beat the drain path
        epoch_leg.drained && drain_leg.drained &&
        epoch_leg.recoveries == 1 && drain_leg.recoveries == 1 &&
        epoch_leg.live_switchovers == 1 &&
        drain_leg.live_switchovers == 0 &&
        epoch_leg.avg_time_to_recover < drain_leg.avg_time_to_recover &&
        // end-to-end replay: every purged packet on the still-connected
        // mesh was re-queued and delivered
        epoch_leg.packets_dropped == 0 && drain_leg.packets_dropped == 0 &&
        epoch_leg.packets_unreachable == 0 &&
        epoch_leg.availability >= 1.0 && drain_leg.availability >= 1.0;
    bench::print_verdict(
        ok, "transients absorbed (availability " +
                std::to_string(transients.availability) +
                "), link failure rerouted in " +
                std::to_string(failure.avg_time_to_recover) +
                " cycles, epoch switchover in " +
                std::to_string(epoch_leg.avg_time_to_recover) +
                " cycles vs drain " +
                std::to_string(drain_leg.avg_time_to_recover) +
                " with zero dropped after replay, degraded saturation " +
                std::to_string(sat_degraded) + " vs healthy " +
                std::to_string(sat_healthy));
    return ok ? 0 : 1;
}
