// Live fault injection and online recovery (§1: "reconfigurable NoCs can
// support component redundancy in a transparent fashion").
//
// Three runs of the same 8x8 mesh under uniform Bernoulli traffic:
//   * baseline        — no faults: the reference for latency/throughput;
//   * transients      — random flit corruptions under ACK/NACK flow
//     control: the link-level go-back-N window retransmits, so packets
//     still all arrive (availability stays 1.0) at a small latency cost;
//   * link-failure    — a permanent multi-link kill mid-measurement:
//     in-flight packets on the dead links are dropped and accounted, the
//     online reroute rewrites the NI route LUTs after the plan's
//     reroute_latency, and traffic keeps flowing on the survivor paths —
//     degraded, but alive and fully drained.
// Plus a saturation comparison: binary-searched saturation throughput of
// the healthy mesh vs the same mesh with the failed links — the paper's
// graceful-degradation story in one number.
//
// Results land in BENCH_fault_recovery.json for cross-PR trending. The
// verdict gates on recovery behavior (reroute completed, drained, nonzero
// degraded throughput), not on absolute figures.
#include "bench_util.h"

#include "arch/fault_plan.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/patterns.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace noc;

namespace {

struct Fixture {
    Topology topo;
    Route_set routes;
    Network_params params;
    Sweep_config cfg;
};

Fixture make_fixture(bool smoke, Flow_control_kind fc)
{
    Mesh_params mp;
    mp.width = 8;
    mp.height = 8;
    Fixture f{make_mesh(mp), {}, {}, {}};
    f.routes = xy_routes(f.topo, mp);
    f.params.fc = fc;
    f.cfg.warmup = smoke ? 300 : 1'000;
    f.cfg.measure = smoke ? 2'000 : 10'000;
    f.cfg.drain_limit = smoke ? 20'000 : 60'000;
    f.cfg.seed = 20100607; // DAC'10
    return f;
}

Load_point run_at(const Fixture& f, double load,
                  std::shared_ptr<const Fault_plan> plan)
{
    Sweep_config cfg = f.cfg;
    cfg.build.fault_plan = std::move(plan);
    return run_synthetic_load(
        f.topo, f.routes, f.params, load,
        [&] { return make_uniform_pattern(f.topo.core_count()); }, cfg);
}

void print_row(const char* label, const Load_point& pt)
{
    std::printf("%-14s %8.3f %9.1f %7llu %7llu %6llu %6llu %5llu %7.1f "
                "%6.4f %s\n",
                label, pt.accepted_flits_per_node_cycle,
                pt.avg_packet_latency,
                static_cast<unsigned long long>(pt.packets),
                static_cast<unsigned long long>(pt.packets_dropped),
                static_cast<unsigned long long>(pt.packets_unreachable),
                static_cast<unsigned long long>(pt.corrupted_flits),
                static_cast<unsigned long long>(pt.retransmissions),
                pt.avg_time_to_recover, pt.availability,
                pt.drained ? "yes" : "NO");
}

} // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

    bench::print_banner(
        "R1 / §1 — live fault injection and online reconfiguration",
        "reconfigurable NoCs support component redundancy transparently: "
        "transient corruption is absorbed by link-level retransmission, "
        "permanent link failures trigger an online reroute that keeps the "
        "network running at degraded but nonzero capacity");

    const double load = 0.10;
    const Fixture mesh = make_fixture(smoke, Flow_control_kind::credit);
    const Fixture mesh_an = make_fixture(smoke, Flow_control_kind::ack_nack);
    const Cycle horizon = mesh.cfg.warmup + mesh.cfg.measure;

    // Faults land mid-measurement by construction of random_plan: the
    // permanent kill at horizon/2, transients spread over the run.
    auto transient_plan = std::make_shared<Fault_plan>(Fault_plan::random_plan(
        mesh_an.topo, mesh_an.cfg.seed, /*transient_count=*/32,
        /*permanent_count=*/0, horizon));
    auto failure_plan = std::make_shared<Fault_plan>(Fault_plan::random_plan(
        mesh.topo, mesh.cfg.seed, /*transient_count=*/0,
        /*permanent_count=*/2, horizon));

    const Load_point baseline = run_at(mesh, load, nullptr);
    const Load_point transients = run_at(mesh_an, load, transient_plan);
    const Load_point failure = run_at(mesh, load, failure_plan);

    std::printf("%-14s %8s %9s %7s %7s %6s %6s %5s %7s %6s %s\n", "run",
                "acc/n/cy", "lat(cy)", "pkts", "drop", "unrch", "corr",
                "retx", "ttr(cy)", "avail", "drained");
    print_row("baseline", baseline);
    print_row("transients", transients);
    print_row("link-failure", failure);

    // Graceful degradation: saturation of the healthy mesh vs the same
    // mesh carrying the permanent failure the whole run.
    const auto pattern = [&] {
        return make_uniform_pattern(mesh.topo.core_count());
    };
    Sweep_config sat_cfg = mesh.cfg;
    const double sat_healthy = find_saturation_throughput(
        mesh.topo, mesh.routes, mesh.params, pattern, sat_cfg);
    sat_cfg.build.fault_plan = failure_plan;
    const double sat_degraded = find_saturation_throughput(
        mesh.topo, mesh.routes, mesh.params, pattern, sat_cfg);
    std::printf("\nsaturation healthy %.4f -> degraded %.4f flits/node/cycle "
                "(%zu dead links)\n",
                sat_healthy, sat_degraded,
                failure_plan->permanents().front().links.size());

    std::string json =
        "{\n  \"bench\": \"fault_recovery\",\n  \"smoke\": " +
        std::string{smoke ? "true" : "false"} +
        ",\n  \"load\": 0.10,\n  \"baseline_latency\": " +
        std::to_string(baseline.avg_packet_latency) +
        ",\n  \"failure_latency\": " +
        std::to_string(failure.avg_packet_latency) +
        ",\n  \"packets_dropped\": " +
        std::to_string(failure.packets_dropped) +
        ",\n  \"packets_unreachable\": " +
        std::to_string(failure.packets_unreachable) +
        ",\n  \"corrupted_flits\": " +
        std::to_string(transients.corrupted_flits) +
        ",\n  \"retransmissions\": " +
        std::to_string(transients.retransmissions) +
        ",\n  \"recoveries\": " + std::to_string(failure.recoveries) +
        ",\n  \"time_to_recover\": " +
        std::to_string(failure.avg_time_to_recover) +
        ",\n  \"availability\": " + std::to_string(failure.availability) +
        ",\n  \"saturation_healthy\": " + std::to_string(sat_healthy) +
        ",\n  \"saturation_degraded\": " + std::to_string(sat_degraded) +
        "\n}\n";
    if (std::FILE* f = std::fopen("BENCH_fault_recovery.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_fault_recovery.json\n");
    }

    const bool ok =
        baseline.drained && transients.drained && failure.drained &&
        // transient corruption is fully absorbed by retransmission
        transients.availability >= 1.0 &&
        // the permanent failure triggered exactly one completed reroute
        failure.recoveries == 1 &&
        failure.avg_time_to_recover >= 1.0 &&
        // the wounded network still moves traffic, at most mildly degraded
        failure.accepted_flits_per_node_cycle > 0.0 && sat_degraded > 0.0 &&
        sat_degraded <= sat_healthy + 1e-9;
    bench::print_verdict(
        ok, "transients absorbed (availability " +
                std::to_string(transients.availability) +
                "), link failure rerouted in " +
                std::to_string(failure.avg_time_to_recover) +
                " cycles with degraded saturation " +
                std::to_string(sat_degraded) + " vs healthy " +
                std::to_string(sat_healthy));
    return ok ? 0 : 1;
}
