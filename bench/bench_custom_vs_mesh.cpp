// C6 / §2, §6 — custom synthesized topologies vs standard meshes: the
// ×pipesCompiler/SunFloor line "strongly differentiated from earlier
// approaches that were targeting only standard topologies, such as meshes,
// as these do not map well to SoCs that are usually heterogeneous".
//
// For each classic SoC graph we compare (a) the application mapped onto a
// mesh in core-id order with XY routing against (b) the SunFloor-style
// synthesized topology, on analytic power and weighted latency, and
// cross-check the synthesized design by cycle-accurate simulation.
#include "bench_util.h"

#include "common/table.h"
#include "phys/power.h"
#include "phys/router_model.h"
#include "phys/wire_model.h"
#include "synth/compiler.h"
#include "synth/topology_synth.h"
#include "topology/routing.h"
#include "traffic/app_graphs.h"
#include "traffic/experiment.h"
#include "traffic/flow_traffic.h"

using namespace noc;

namespace {

struct Mesh_shape {
    int w;
    int h;
};

Mesh_shape mesh_for(int cores)
{
    for (int w = 1; w <= cores; ++w) {
        const int h = (cores + w - 1) / w;
        if (w * h >= cores && w >= h) return {w, h};
    }
    return {cores, 1};
}

/// Analytic mesh metrics computed the same way synthesis scores designs:
/// bandwidth-weighted hop latency and activity-based power.
struct Mesh_metrics {
    double power_mw;
    double latency_ns;
    int switches;
};

Mesh_metrics evaluate_mesh(const Core_graph& g, const Technology& tech)
{
    const auto [w, h] = mesh_for(g.core_count());
    Mesh_params mp;
    mp.width = w;
    mp.height = h;
    mp.tile_mm = 1.2;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    Router_phys_params rp;
    rp.in_ports = 5;
    rp.out_ports = 5;
    const double e_router = router_energy_per_flit_pj(tech, rp);
    double leakage = 0.0;
    for (int s = 0; s < topo.switch_count(); ++s)
        leakage += estimate_router(tech, rp).leakage_mw;

    double power = leakage;
    double weighted_lat = 0.0;
    double weight = 0.0;
    // NI wires: a mesh core sits next to its router, ~half a tile each way
    // (the synthesized designs are charged their floorplan NI distances).
    const double ni_wire_mm = mp.tile_mm / 2.0;
    for (const auto& f : g.flows()) {
        std::uint32_t fpp = 0;
        const double load = flits_per_cycle_for(f.bandwidth_mbps, 1.0, 32,
                                                f.packet_bytes, &fpp);
        const Route& r = routes.at(Core_id{static_cast<std::uint32_t>(f.src)},
                                   Core_id{static_cast<std::uint32_t>(f.dst)});
        const int hops = static_cast<int>(r.size()); // routers traversed
        const double wire_mm = 1.2 * (hops - 1) + 2.0 * ni_wire_mm;
        power += load * (hops * e_router +
                         wire_energy_pj(tech, wire_mm, 32.0));
        const double lat_cycles = 2.0 * hops + 1.0 + (fpp - 1);
        weighted_lat += lat_cycles * f.bandwidth_mbps;
        weight += f.bandwidth_mbps;
    }
    return {power, weighted_lat / weight, topo.switch_count()};
}

void run_figure()
{
    bench::print_banner(
        "C6 / §2+§6 — synthesized custom topology vs mesh mapping",
        "application-specific topologies beat standard meshes on power and "
        "latency for heterogeneous SoCs");

    const Technology tech = make_technology_65nm();
    Text_table table{{"graph", "fabric", "switches", "power(mW)",
                      "latency(ns)", "sim check"}};
    int wins = 0;
    int graphs = 0;
    for (const auto& g : {make_vopd_graph(), make_mpeg4_graph(),
                          make_mwd_graph(), make_mobile_soc_graph()}) {
        ++graphs;
        const Mesh_metrics mesh = evaluate_mesh(g, tech);
        table.row()
            .add(g.name())
            .add("mesh (XY, id-order map)")
            .add(mesh.switches)
            .add(mesh.power_mw, 2)
            .add(mesh.latency_ns, 1)
            .add("-");

        Synthesis_spec spec;
        spec.graph = g;
        spec.tech = tech;
        spec.min_switches = 2;
        spec.max_switches = std::min(10, g.core_count());
        spec.max_switch_radix = 8;
        const auto result = synthesize_topologies(spec);
        if (result.designs.empty()) {
            table.row().add(g.name()).add("synthesized").add("-").add("-").add(
                "-").add("infeasible");
            continue;
        }
        const Design_point& dp = result.pick();
        const auto validation = validate_design(dp, g, 1'000, 6'000);
        table.row()
            .add(g.name())
            .add("custom (" + dp.name + ")")
            .add(dp.switch_count)
            .add(dp.metrics.power_mw, 2)
            .add(dp.metrics.latency_ns, 1)
            .add(validation.bandwidth_met && validation.latency_met
                     ? "PASS"
                     : "FAIL");
        if (dp.metrics.power_mw < mesh.power_mw &&
            dp.metrics.latency_ns < mesh.latency_ns + 1e-9)
            ++wins;
    }
    table.print(std::cout);
    std::cout << "\ncustom topology dominates the mesh on " << wins << "/"
              << graphs << " SoC graphs\n";
    bench::print_verdict(wins >= 3,
                         "custom topologies win on power (and latency) for "
                         "heterogeneous SoC traffic, as the SunFloor line "
                         "of work reports");
}

void bm_synthesize_vopd(benchmark::State& state)
{
    Synthesis_spec spec;
    spec.graph = make_vopd_graph();
    spec.tech = make_technology_65nm();
    spec.max_switches = 6;
    for (auto _ : state) {
        auto r = synthesize_topologies(spec);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(bm_synthesize_vopd)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
