// C4 / §4.2 — routability: "if the inputs and outputs of the crossbars are
// 100- to 200-wires wide as in buses, crossbars may exhibit serious
// physical wire routability issues. Due to this, commercial tools often
// constrain the maximum crossbar size to 8x8 or less. NoCs permit wire
// serialization, largely obviating the issue... NoC switches of radix
// 10x10 can be efficiently designed."
#include "bench_util.h"

#include "bus/crossbar.h"
#include "common/table.h"

using namespace noc;

namespace {

void run_figure()
{
    bench::print_banner(
        "C4 / §4.2 — bus-width crossbars vs 32-bit NoC switches",
        "bus crossbars die beyond ~8x8; serialized NoC switches are fine "
        "at 10x10 and beyond");

    const Technology tech = make_technology_65nm();
    Text_table table{{"fabric", "size", "port wires", "max row util(%)",
                      "feasible", "classification"}};
    bool bus_cliff = false;
    bool bus8_ok = false;
    bool noc10_ok = false;
    for (const int size : {4, 8, 12, 16}) {
        Crossbar_params xp;
        xp.masters = size;
        xp.slaves = size;
        xp.width_bits = 150; // 100-200 wire bus port
        const auto r = estimate_crossbar_phys(tech, xp);
        table.row()
            .add("bus crossbar")
            .add(std::to_string(size) + "x" + std::to_string(size))
            .add(xp.width_bits)
            .add(r.max_row_utilization * 100.0, 1)
            .add(r.drc_feasible ? "yes" : "NO")
            .add(r.classification);
        if (size == 8) bus8_ok = r.drc_feasible;
        if (size > 8 && !r.drc_feasible) bus_cliff = true;
    }
    for (const int size : {8, 10, 14, 20}) {
        Crossbar_params xp;
        xp.masters = size;
        xp.slaves = size;
        xp.width_bits = 32; // serialized NoC link
        const auto r = estimate_crossbar_phys(tech, xp);
        table.row()
            .add("NoC switch")
            .add(std::to_string(size) + "x" + std::to_string(size))
            .add(xp.width_bits)
            .add(r.max_row_utilization * 100.0, 1)
            .add(r.drc_feasible ? "yes" : "NO")
            .add(r.classification);
        if (size == 10) noc10_ok = r.drc_feasible;
    }
    table.print(std::cout);
    bench::print_verdict(bus8_ok && bus_cliff && noc10_ok,
                         "bus crossbars hit the wall just past 8x8; 32-bit "
                         "NoC switches are routable at 10x10+");
}

void bm_crossbar_sim(benchmark::State& state)
{
    Crossbar_params xp;
    xp.masters = 8;
    xp.slaves = 8;
    for (auto _ : state) {
        auto r = simulate_crossbar(xp, 0.02, 8, 5'000);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(bm_crossbar_sim)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
