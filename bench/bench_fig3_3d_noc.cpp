// Figure 3 — "3D IC with NoC for communication": vertical-link
// serialization minimizes TSV count ("area and yield have been optimized by
// suitably serializing vertical links, to minimize the number of required
// vertical vias"), routing tables support a 2D-only test mode.
#include "bench_util.h"

#include "common/table.h"
#include "synth3d/synth3d.h"
#include "traffic/app_graphs.h"

using namespace noc;

namespace {

Synthesis3d_spec stack_spec(int layers, int serialization)
{
    Synthesis3d_spec s;
    s.base.graph = make_mobile_soc_3d_graph(layers);
    s.base.tech = make_technology_65nm();
    s.base.operating_points = {{1.0, 32}};
    s.base.min_switches = layers;
    s.base.max_switches = 8;
    s.base.max_switch_radix = 10;
    s.vertical_serialization = serialization;
    return s;
}

void run_figure()
{
    bench::print_banner(
        "F3 / Figure 3 — 3D NoC with TSV-minimizing vertical links",
        "serializing vertical links divides the TSV count (improving area "
        "and stack yield) at a latency/capacity cost; routing tables allow "
        "2D-only test mode");

    Text_table table{{"layers", "serial.", "k", "TSVs", "stack yield",
                      "vert util", "latency(ns)", "power(mW)",
                      "2D test mode"}};
    // Compare serialization factors at a matched switch count: pick the
    // smallest k feasible at s = 1 for the 2-layer stack, then track that
    // same design point as s grows.
    int matched_k = -1;
    int tsvs_s1 = 0;
    int tsvs_s2 = 0;
    double lat_s1 = 0.0;
    double lat_s2 = 0.0;
    double yield_s1 = 0.0;
    double yield_s2 = 0.0;
    bool capacity_wall_seen = false;
    for (const int layers : {2, 4}) {
        for (const int s : {1, 2, 4, 8}) {
            const auto result = synthesize_3d(stack_spec(layers, s));
            const Design_point_3d* pick = nullptr;
            for (const auto& d : result.designs) {
                if (layers == 2 && matched_k >= 0 &&
                    d.base.switch_count != matched_k)
                    continue;
                if (pick == nullptr || d.total_tsvs < pick->total_tsvs)
                    pick = &d;
            }
            if (pick == nullptr) {
                table.row()
                    .add(layers)
                    .add(s)
                    .add("-")
                    .add("infeasible (vertical capacity)")
                    .add("-")
                    .add("-")
                    .add("-")
                    .add("-")
                    .add("-");
                capacity_wall_seen = capacity_wall_seen || layers == 2;
                continue;
            }
            if (layers == 2 && s == 1) matched_k = pick->base.switch_count;
            table.row()
                .add(layers)
                .add(s)
                .add(pick->base.switch_count)
                .add(static_cast<std::uint64_t>(pick->total_tsvs))
                .add(pick->stack_yield, 4)
                .add(pick->max_vertical_utilization, 2)
                .add(pick->base.metrics.latency_ns, 1)
                .add(pick->base.metrics.power_mw, 1)
                .add(pick->two_d_test_mode_ok ? "yes" : "no");
            if (layers == 2 && s == 1) {
                tsvs_s1 = pick->total_tsvs;
                lat_s1 = pick->base.metrics.latency_ns;
                yield_s1 = pick->stack_yield;
            }
            if (layers == 2 && s == 2) {
                tsvs_s2 = pick->total_tsvs;
                lat_s2 = pick->base.metrics.latency_ns;
                yield_s2 = pick->stack_yield;
            }
        }
    }
    table.print(std::cout);
    const bool shape = tsvs_s2 > 0 && tsvs_s2 < tsvs_s1 &&
                       lat_s2 >= lat_s1 && yield_s2 >= yield_s1;
    std::cout << "\n2-layer stack at k=" << matched_k
              << ": serialization 2 cuts TSVs "
              << (tsvs_s2 > 0
                      ? format_double(
                            static_cast<double>(tsvs_s1) / tsvs_s2, 2)
                      : std::string{"-"})
              << "x and improves stack yield "
              << format_double(yield_s2 - yield_s1, 4)
              << "; latency rises " << format_double(lat_s2 - lat_s1, 1)
              << " ns. Aggressive serialization (s=4/8) hits the vertical "
                 "bandwidth wall — the trade is bounded by link capacity.\n";
    bench::print_verdict(shape,
                         "TSV count falls and yield improves with "
                         "serialization, latency pays — the Fig. 3 trade");
}

void bm_synthesize_3d(benchmark::State& state)
{
    const auto spec = stack_spec(2, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = synthesize_3d(spec);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(bm_synthesize_3d)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
