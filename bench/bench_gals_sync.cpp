// C5 / §4.3 — synchronization schemes: GALS designs cross clock domains
// through dual-clock FIFOs; the NoC "natively decouples transaction
// injection and transaction transport times" and absorbs the cost.
//
// Sweep the frequency ratio between a producer island and the NoC clock and
// report the crossing latency/throughput of the gray-pointer dual-clock
// FIFO against a synchronous link baseline.
#include "bench_util.h"

#include "arch/dc_fifo.h"
#include "common/table.h"

using namespace noc;

namespace {

void run_figure()
{
    bench::print_banner(
        "C5 / §4.3 — GALS clock-domain crossing cost",
        "dual-clock FIFO adds ~sync_stages reader cycles of latency; "
        "throughput is bounded by the slower domain — the cost NoCs absorb "
        "natively at their boundaries");

    Text_table table{{"writer(GHz)", "reader(GHz)", "sync stages",
                      "avg lat(ns)", "max lat(ns)", "thruput(items/ns)",
                      "sync link(ns)"}};
    bool shape = true;
    const double reader_ghz = 1.0;
    for (const double writer_ghz : {0.25, 0.5, 1.0, 1.6, 2.0}) {
        for (const int stages : {2, 3}) {
            Dc_fifo_params p;
            p.writer_period_ns = 1.0 / writer_ghz;
            p.reader_period_ns = 1.0 / reader_ghz;
            p.sync_stages = stages;
            const auto r = simulate_dc_fifo(p, 20'000);
            const double baseline =
                synchronous_link_latency_ns(p.reader_period_ns, 1);
            table.row()
                .add(writer_ghz, 2)
                .add(reader_ghz, 2)
                .add(stages)
                .add(r.avg_latency_ns, 2)
                .add(r.max_latency_ns, 2)
                .add(r.throughput_per_ns, 3)
                .add(baseline, 2);
            // Crossing must cost at least the synchronizer depth but stay
            // bounded; throughput must track min(writer, reader).
            if (r.min_latency_ns < stages * p.reader_period_ns - 1e-9)
                shape = false;
            const double expected_tp = std::min(writer_ghz, reader_ghz);
            if (std::abs(r.throughput_per_ns - expected_tp) >
                0.15 * expected_tp)
                shape = false;
        }
    }
    table.print(std::cout);
    bench::print_verdict(shape,
                         "latency >= sync depth, bounded; throughput = "
                         "min(writer, reader) clock");
}

void bm_dc_fifo(benchmark::State& state)
{
    Dc_fifo_params p;
    p.writer_period_ns = 0.8;
    for (auto _ : state) {
        auto r = simulate_dc_fifo(p, 10'000);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(bm_dc_fifo)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
