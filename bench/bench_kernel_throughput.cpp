// Kernel throughput: activity-gated vs reference schedule, plus the
// sharded (multi-threaded) schedule's thread-scaling sweep.
//
// The design-flow argument for NoC products (§6) is fast design-space
// exploration: sweeps evaluate many (topology, load, parameter) points, so
// simulated cycles/sec is the bottleneck resource. This bench drives an 8x8
// mesh with uniform-random Bernoulli traffic at four injection rates — the
// highest (0.5) past saturation, where pooled flit storage and the
// blocked-router memo carry the load — through both kernel schedules,
// checks the runs are bit-identical, and reports simulated cycles/sec and
// flit-hops/sec. The headline saturation metric is gated flit-hops/sec at
// rate 0.5 (absolute simulation throughput is what bounds a sweep; the
// gated/reference ratio compresses toward 1 at saturation because both
// schedules share the same storage layer). Results are written to
// BENCH_kernel.json to track the performance trajectory across PRs,
// together with the flit-pool high-water mark — the buffer-provisioning
// cost of the run now that pool slots are held only by in-network flits.
//
// The thread-scaling sweep then runs the SATURATED point through
// Kernel_mode::sharded at 1, 2 and 4 shards on the 8x8 mesh and on a 16x16
// mesh (the TILE-Gx / teraflops scale the paper's case studies need; large
// enough to amortize the two barriers per cycle), checking every run
// bit-identical to the gated schedule and reporting parallel speedup.
// A partition-balance figure follows: row-0 hotspot traffic profiled into
// Partition_plan::balanced weights, reporting how much the weight-balanced
// cut reduces the max-shard share of routed flits vs the equal-count
// partition (the barrier-bound work of the hottest shard).
// Speedup is only meaningful with >= `threads` hardware threads — the JSON
// records hardware_concurrency so trend tooling can judge. `--threads`
// runs just this sweep (no rate figure, no JSON) for quick scaling checks.
//
// `--smoke` runs a tiny cycle budget and asserts only the bit-identical
// flags (including a 2-shard sharded run) — a CI guard that storage or
// kernel refactors cannot silently diverge the schedules; timing on a
// loaded CI box is noise, so no JSON is written.
#include "bench_util.h"

#include "arch/noc_builder.h"
#include "telemetry/registry.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

#include <algorithm>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace noc;

namespace {

constexpr int kMeshW = 8;
constexpr int kMeshH = 8;
const double kRates[] = {0.05, 0.15, 0.30, 0.50};
constexpr double kSaturationRate = 0.50;

struct Bench_budget {
    Cycle warmup = 2'000;
    Cycle measure = 50'000;
    bool write_json = true;
    /// False under --smoke: the cycle budget is too small for cycles/sec
    /// to mean anything, so the verdict asserts bit-identity only.
    bool timing_meaningful = true;
};

struct Mode_result {
    double cycles_per_sec = 0.0;
    double flit_hops_per_sec = 0.0;
    std::uint64_t flit_hops = 0;       // total_flits_routed
    std::uint64_t packets_delivered = 0;
    double packet_latency_mean = 0.0;
    std::uint32_t pool_high_water = 0;
    // Kernel scheduling counters, read through the telemetry registry
    // (telemetry/registry.h) — how each schedule earned its speed. NOT in
    // any bit-identity check: schedules legitimately skip differently.
    std::uint64_t idle_shard_skips = 0;   // sharded: whole-shard idle skips
    std::uint64_t skip_ahead_regions = 0; // gated/sharded quiet regions
    std::uint64_t skip_ahead_cycles = 0;  // cycles those regions covered
    std::uint64_t cross_shard_wakes = 0;  // sharded: mailbox wake messages
};

std::uint64_t reg_read(const Telemetry_registry& reg, const char* name)
{
    const std::size_t i = reg.find(name);
    return i == Telemetry_registry::npos ? 0 : reg.read(i);
}

Mesh_params mesh_params()
{
    Mesh_params mp;
    mp.width = kMeshW;
    mp.height = kMeshH;
    return mp;
}

std::unique_ptr<Noc_system> build(
    const Topology& topo, const Route_set& routes, double rate,
    Kernel_mode mode, Partition_plan plan = Partition_plan::single(),
    std::shared_ptr<const Dest_pattern> pattern = nullptr)
{
    auto sys = Noc_builder{}
                   .topology(topo)
                   .routes(routes)
                   .params(Network_params{})
                   .schedule(mode)
                   .partition(std::move(plan))
                   .build();
    if (!pattern)
        pattern = std::shared_ptr<const Dest_pattern>(
            make_uniform_pattern(topo.core_count()));
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.seed = 31337 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    return sys;
}

Mode_result run_mode(const Topology& topo, const Route_set& routes,
                     double rate, Kernel_mode mode,
                     const Bench_budget& budget,
                     Partition_plan plan = Partition_plan::single())
{
    auto sys = build(topo, routes, rate, mode, std::move(plan));
    sys->warmup(budget.warmup);
    const auto t0 = std::chrono::steady_clock::now();
    sys->measure(budget.measure);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    Mode_result r;
    r.cycles_per_sec = static_cast<double>(budget.measure) / secs;
    r.flit_hops = sys->total_flits_routed();
    r.flit_hops_per_sec = static_cast<double>(r.flit_hops) / secs;
    r.packets_delivered = sys->stats().packets_delivered();
    r.packet_latency_mean = sys->stats().packet_latency().mean();
    r.pool_high_water = sys->flit_pool().high_water();
    Telemetry_registry reg;
    sys->attach_telemetry(reg);
    r.idle_shard_skips = reg_read(reg, "kernel.idle_shard_skips");
    r.skip_ahead_regions = reg_read(reg, "kernel.skip_ahead_regions");
    r.skip_ahead_cycles = reg_read(reg, "kernel.skip_ahead_cycles");
    r.cross_shard_wakes = reg_read(reg, "kernel.cross_shard_wakes");
    return r;
}

/// Thread-scaling sweep at the saturation rate: Kernel_mode::sharded at 1,
/// 2 and 4 shards against the gated baseline on the same mesh. Returns
/// false on any divergence from the gated run (hard CI failure); appends
/// its JSON rows to `json`. Pool high water is excluded from the identity
/// check: per-shard free-list segments make it a (reported) upper bound,
/// not a bit-stable quantity.
bool run_threads_sweep(int mesh_w, int mesh_h, const Bench_budget& budget,
                       std::string& json, bool last_mesh)
{
    Mesh_params mp;
    mp.width = mesh_w;
    mp.height = mesh_h;
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    const Mode_result gated = run_mode(topo, routes, kSaturationRate,
                                       Kernel_mode::activity_gated, budget);
    std::printf("\n%dx%d mesh, rate %.2f (saturation), %u hw threads:\n",
                mesh_w, mesh_h, kSaturationRate,
                std::thread::hardware_concurrency());
    std::printf("%-8s %13s %15s %9s %9s %10s %10s %9s\n", "threads",
                "cyc/s", "flit-hops/s", "vs gated", "vs 1-thr",
                "idle-skips", "x-wakes", "identical");
    std::printf("%-8s %13.3e %15.3e %9s %9s %10s %10s %9s\n", "gated",
                gated.cycles_per_sec, gated.flit_hops_per_sec, "-", "-",
                "-", "-", "-");

    bool all_identical = true;
    double base_1thread = 0.0;
    const std::uint32_t threads_sweep[] = {1, 2, 4};
    for (std::size_t i = 0; i < std::size(threads_sweep); ++i) {
        const std::uint32_t threads = threads_sweep[i];
        const Mode_result r =
            run_mode(topo, routes, kSaturationRate, Kernel_mode::sharded,
                     budget, Partition_plan::contiguous(threads));
        const bool identical =
            r.flit_hops == gated.flit_hops &&
            r.packets_delivered == gated.packets_delivered &&
            r.packet_latency_mean == gated.packet_latency_mean;
        all_identical = all_identical && identical;
        if (threads == 1) base_1thread = r.flit_hops_per_sec;
        const double vs_gated = r.flit_hops_per_sec / gated.flit_hops_per_sec;
        const double vs_1 = r.flit_hops_per_sec / base_1thread;
        std::printf("%-8u %13.3e %15.3e %8.2fx %8.2fx %10llu %10llu %9s\n",
                    threads, r.cycles_per_sec, r.flit_hops_per_sec,
                    vs_gated, vs_1,
                    static_cast<unsigned long long>(r.idle_shard_skips),
                    static_cast<unsigned long long>(r.cross_shard_wakes),
                    identical ? "yes" : "NO");
        char buf[640];
        std::snprintf(
            buf, sizeof buf,
            "    {\"mesh\": \"%dx%d\", \"threads\": %u, \"rate\": %.2f, "
            "\"flit_hops_per_sec\": %.1f, \"speedup_vs_gated\": %.3f, "
            "\"speedup_vs_1_thread\": %.3f, \"idle_shard_skips\": %llu, "
            "\"skip_ahead_cycles\": %llu, \"cross_shard_wakes\": %llu, "
            "\"bit_identical\": %s}%s\n",
            mesh_w, mesh_h, threads, kSaturationRate, r.flit_hops_per_sec,
            vs_gated, vs_1,
            static_cast<unsigned long long>(r.idle_shard_skips),
            static_cast<unsigned long long>(r.skip_ahead_cycles),
            static_cast<unsigned long long>(r.cross_shard_wakes),
            identical ? "true" : "false",
            (last_mesh && i + 1 == std::size(threads_sweep)) ? "" : ",");
        json += buf;
    }
    return all_identical;
}

/// Weight-balanced partitioning on a hotspot mesh (ROADMAP "load-balanced
/// shard partitioning"): drive the 8x8 mesh with row-0 hotspot traffic,
/// profile per-switch flits_routed under the gated schedule, and compare
/// the max-shard share of routed flits between the equal-count contiguous
/// partition and Partition_plan::balanced on the profile — then run the
/// balanced partition through the sharded kernel and require bit-identity
/// to the gated run (partition choice must be invisible in results).
/// Appends a "partition_balance" record to `json` when asked. Returns
/// false on divergence or if balancing failed to reduce the max share.
bool run_partition_balance(const Bench_budget& budget, std::string* json)
{
    const Mesh_params mp = mesh_params();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    constexpr std::uint32_t kShards = 4;
    constexpr double kRate = 0.30;

    std::vector<Core_id> hot;
    for (std::uint32_t c = 0; c < static_cast<std::uint32_t>(kMeshW); ++c)
        hot.push_back(Core_id{c}); // row 0: one edge of the die
    const auto pattern = std::shared_ptr<const Dest_pattern>(
        make_hotspot_pattern(topo.core_count(), hot, 0.75));

    auto drive = [&](Kernel_mode mode, Partition_plan plan) {
        auto sys = build(topo, routes, kRate, mode, std::move(plan), pattern);
        sys->warmup(budget.warmup);
        sys->measure(budget.measure);
        return sys;
    };

    // Profiling run: the gated baseline also supplies the reference
    // counters and the balanced plan's weights.
    const auto gated = drive(Kernel_mode::activity_gated,
                             Partition_plan::single());
    const std::vector<std::uint64_t> profile = gated->switch_load_profile();

    // Max-shard share of routed flits under each partition (pure
    // arithmetic on the profile: per-switch counters are bit-identical
    // across partitions, only the grouping changes).
    auto max_share = [&](const std::vector<std::uint32_t>& shard_of) {
        std::vector<std::uint64_t> per_shard(kShards, 0);
        std::uint64_t total = 0;
        for (std::size_t s = 0; s < profile.size(); ++s) {
            per_shard[shard_of[s]] += profile[s];
            total += profile[s];
        }
        std::uint64_t worst = 0;
        for (const std::uint64_t v : per_shard) worst = std::max(worst, v);
        return total > 0 ? static_cast<double>(worst) /
                               static_cast<double>(total)
                         : 0.0;
    };
    const std::uint32_t switches =
        static_cast<std::uint32_t>(topo.switch_count());
    const double contiguous_share =
        max_share(Partition_plan::contiguous(kShards).assign(switches));
    const Partition_plan balanced =
        Partition_plan::balanced(kShards, profile);
    const double balanced_share = max_share(balanced.assign(switches));

    // The balanced partition must be a pure re-interleaving: bit-identical
    // counters to the gated run.
    const auto bal_sys = drive(Kernel_mode::sharded, balanced);
    const bool identical =
        bal_sys->total_flits_routed() == gated->total_flits_routed() &&
        bal_sys->stats().packets_delivered() ==
            gated->stats().packets_delivered() &&
        bal_sys->stats().packet_latency().mean() ==
            gated->stats().packet_latency().mean();
    const bool reduced = balanced_share < contiguous_share;

    std::printf("\nhotspot %dx%d mesh, %u shards: max-shard flits_routed "
                "share %.3f contiguous -> %.3f balanced (%s), "
                "bit-identical: %s\n",
                kMeshW, kMeshH, kShards, contiguous_share, balanced_share,
                reduced ? "reduced" : "NOT REDUCED",
                identical ? "yes" : "NO");
    if (json != nullptr) {
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "  \"partition_balance\": {\"mesh\": \"%dx%d\", "
            "\"traffic\": \"hotspot-row0\", \"shards\": %u, "
            "\"max_shard_share_contiguous\": %.4f, "
            "\"max_shard_share_balanced\": %.4f, "
            "\"bit_identical\": %s},\n",
            kMeshW, kMeshH, kShards, contiguous_share, balanced_share,
            identical ? "true" : "false");
        *json += buf;
    }
    return identical && reduced;
}

/// Returns false on a gated-vs-reference divergence (deterministic, so a
/// hard failure for CI); speedup numbers are reported but not gated on —
/// they depend on the machine.
bool run_figure(const Bench_budget& budget)
{
    bench::print_banner(
        "K1 / §6 — simulation-kernel throughput: activity gating",
        "design-space exploration is bounded by simulator speed; gating "
        "idle components (software clock gating) pays most at the "
        "low-to-medium loads that dominate sweeps, while pooled flit "
        "storage carries the saturated points");

    const Mesh_params mp = mesh_params();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    std::printf("%-8s %13s %13s %9s %15s %10s %9s\n", "rate", "ref cyc/s",
                "gated cyc/s", "speedup", "flit-hops/s", "pool hwm",
                "identical");

    bool all_identical = true;
    double speedup_at_low = 0.0;
    double speedup_at_high = 0.0;
    double headline_hops_per_sec = 0.0;
    std::string json = "{\n  \"bench\": \"kernel_throughput\",\n"
                       "  \"mesh\": \"" +
                       std::to_string(kMeshW) + "x" +
                       std::to_string(kMeshH) +
                       "\",\n  \"measure_cycles\": " +
                       std::to_string(budget.measure) + ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < std::size(kRates); ++i) {
        const double rate = kRates[i];
        const Mode_result ref =
            run_mode(topo, routes, rate, Kernel_mode::reference, budget);
        const Mode_result gated =
            run_mode(topo, routes, rate, Kernel_mode::activity_gated,
                     budget);
        // Identical seeds + two-phase discipline => the two schedules must
        // agree on every simulated quantity, bit for bit.
        const bool identical =
            ref.flit_hops == gated.flit_hops &&
            ref.packets_delivered == gated.packets_delivered &&
            ref.packet_latency_mean == gated.packet_latency_mean &&
            ref.pool_high_water == gated.pool_high_water;
        all_identical = all_identical && identical;
        const double speedup = gated.cycles_per_sec / ref.cycles_per_sec;
        if (i == 0) speedup_at_low = speedup;
        speedup_at_high = speedup;
        if (rate == kSaturationRate)
            headline_hops_per_sec = gated.flit_hops_per_sec;
        std::printf("%-8.2f %13.3e %13.3e %8.2fx %15.3e %10u %9s\n", rate,
                    ref.cycles_per_sec, gated.cycles_per_sec, speedup,
                    gated.flit_hops_per_sec, gated.pool_high_water,
                    identical ? "yes" : "NO");
        char buf[640];
        std::snprintf(
            buf, sizeof buf,
            "    {\"rate\": %.2f, \"ref_cycles_per_sec\": %.1f, "
            "\"gated_cycles_per_sec\": %.1f, \"speedup\": %.3f, "
            "\"gated_flit_hops_per_sec\": %.1f, \"flit_hops\": %llu, "
            "\"pool_high_water\": %u, "
            "\"gated_skip_ahead_regions\": %llu, "
            "\"gated_skip_ahead_cycles\": %llu, "
            "\"bit_identical\": %s}%s\n",
            rate, ref.cycles_per_sec, gated.cycles_per_sec, speedup,
            gated.flit_hops_per_sec,
            static_cast<unsigned long long>(gated.flit_hops),
            gated.pool_high_water,
            static_cast<unsigned long long>(gated.skip_ahead_regions),
            static_cast<unsigned long long>(gated.skip_ahead_cycles),
            identical ? "true" : "false",
            i + 1 < std::size(kRates) ? "," : "");
        json += buf;
    }
    json += "  ],\n";

    if (!budget.timing_meaningful) {
        // Smoke: one tiny sharded run must also match the gated schedule
        // bit for bit; skip the timing sweep entirely.
        const Mode_result gated =
            run_mode(topo, routes, kSaturationRate,
                     Kernel_mode::activity_gated, budget);
        const Mode_result sharded =
            run_mode(topo, routes, kSaturationRate, Kernel_mode::sharded,
                     budget, Partition_plan::contiguous(2));
        const bool sharded_identical =
            sharded.flit_hops == gated.flit_hops &&
            sharded.packets_delivered == gated.packets_delivered &&
            sharded.packet_latency_mean == gated.packet_latency_mean;
        const bool balance_ok = run_partition_balance(budget, nullptr);
        all_identical = all_identical && sharded_identical && balance_ok;
        bench::print_verdict(
            all_identical,
            "SMOKE: gated kernel bit-identical to reference, 2-shard "
            "sharded kernel and the profile-balanced partition "
            "bit-identical to gated (pooled storage active in all) at "
            "every rate, balanced partition reduces the hotspot max-shard "
            "share; timing not checked under the tiny smoke budget");
        return all_identical;
    }

    // Thread-scaling sweep at saturation: the 8x8 figure mesh plus a 16x16
    // mesh big enough to amortize the per-cycle barriers.
    json += "  \"hardware_threads\": " +
            std::to_string(std::thread::hardware_concurrency()) +
            ",\n  \"threads_sweep\": [\n";
    const bool sweep8_ok = run_threads_sweep(8, 8, budget, json, false);
    const bool sweep16_ok = run_threads_sweep(16, 16, budget, json, true);
    json += "  ],\n";
    const bool balance_ok = run_partition_balance(budget, &json);
    all_identical =
        all_identical && sweep8_ok && sweep16_ok && balance_ok;

    json += "  \"headline_saturation_flit_hops_per_sec\": " +
            std::to_string(headline_hops_per_sec) + "\n}\n";
    if (budget.write_json) {
        if (std::FILE* f = std::fopen("BENCH_kernel.json", "w")) {
            std::fputs(json.c_str(), f);
            std::fclose(f);
            std::printf("\nwrote BENCH_kernel.json\n");
        }
    }

    const bool timing_ok =
        speedup_at_low >= 2.0 && speedup_at_high >= 0.95;
    bench::print_verdict(
        all_identical && timing_ok,
        "gated and sharded kernels bit-identical to reference at every "
        "rate, mesh and thread count; >= 2x cycles/sec at 5% injection, no "
        "regression past saturation (measured " +
            std::to_string(speedup_at_low) + "x low, " +
            std::to_string(speedup_at_high) + "x at rate 0.5)");
    return all_identical;
}

void bm_kernel_cycles(benchmark::State& state)
{
    const auto mode = static_cast<Kernel_mode>(state.range(0));
    const double rate =
        static_cast<double>(state.range(1)) / 100.0;
    const Mesh_params mp = mesh_params();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    auto sys = build(topo, routes, rate, mode);
    sys->warmup(2'000);
    for (auto _ : state) sys->kernel().run(1'000);
    state.SetItemsProcessed(state.iterations() * 1'000); // simulated cycles
}
BENCHMARK(bm_kernel_cycles)
    ->ArgsProduct({{static_cast<long>(Kernel_mode::activity_gated),
                    static_cast<long>(Kernel_mode::reference)},
                   {5, 15, 30, 50}})
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    Bench_budget budget;
    bool smoke = false;
    bool threads_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            budget.warmup = 500;
            budget.measure = 2'000;
            budget.write_json = false;
            budget.timing_meaningful = false;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            threads_only = true;
        }
    }
    if (threads_only) {
        // Just the thread-scaling sweep (still a hard failure on any
        // gated-vs-sharded divergence).
        std::string json;
        const bool ok = run_threads_sweep(8, 8, budget, json, false) &&
                        run_threads_sweep(16, 16, budget, json, true);
        bench::print_verdict(
            ok, "sharded kernel bit-identical to gated at every mesh and "
                "thread count");
        return ok ? 0 : 1;
    }
    if (!run_figure(budget)) return 1; // equivalence break: fail CI
    if (smoke) return 0; // tiny budget verified; skip the timing harness
    return bench::run_benchmarks(argc, argv);
}
