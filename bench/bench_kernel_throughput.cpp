// Kernel throughput: activity-gated vs reference schedule.
//
// The design-flow argument for NoC products (§6) is fast design-space
// exploration: sweeps evaluate many (topology, load, parameter) points, so
// simulated cycles/sec is the bottleneck resource. This bench drives an 8x8
// mesh with uniform-random Bernoulli traffic at three injection rates
// through both kernel schedules, checks the runs are bit-identical, and
// reports simulated cycles/sec and flit-hops/sec. Results are also written
// to BENCH_kernel.json to seed the performance trajectory across PRs.
#include "bench_util.h"

#include "topology/routing.h"
#include "traffic/experiment.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace noc;

namespace {

constexpr int kMeshW = 8;
constexpr int kMeshH = 8;
constexpr Cycle kWarmup = 2'000;
constexpr Cycle kMeasure = 50'000;
const double kRates[] = {0.05, 0.15, 0.30};

struct Mode_result {
    double cycles_per_sec = 0.0;
    double flit_hops_per_sec = 0.0;
    std::uint64_t flit_hops = 0;       // total_flits_routed
    std::uint64_t packets_delivered = 0;
    double packet_latency_mean = 0.0;
};

Mesh_params mesh_params()
{
    Mesh_params mp;
    mp.width = kMeshW;
    mp.height = kMeshH;
    return mp;
}

std::unique_ptr<Noc_system> build(const Topology& topo,
                                  const Route_set& routes, double rate,
                                  Kernel_mode mode)
{
    auto sys = std::make_unique<Noc_system>(topo, routes, Network_params{});
    sys->kernel().set_mode(mode);
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(topo.core_count()));
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.seed = 31337 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    return sys;
}

Mode_result run_mode(const Topology& topo, const Route_set& routes,
                     double rate, Kernel_mode mode)
{
    auto sys = build(topo, routes, rate, mode);
    sys->warmup(kWarmup);
    const auto t0 = std::chrono::steady_clock::now();
    sys->measure(kMeasure);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    Mode_result r;
    r.cycles_per_sec = static_cast<double>(kMeasure) / secs;
    r.flit_hops = sys->total_flits_routed();
    r.flit_hops_per_sec = static_cast<double>(r.flit_hops) / secs;
    r.packets_delivered = sys->stats().packets_delivered();
    r.packet_latency_mean = sys->stats().packet_latency().mean();
    return r;
}

/// Returns false on a gated-vs-reference divergence (deterministic, so a
/// hard failure for CI); speedup numbers are reported but not gated on —
/// they depend on the machine.
bool run_figure()
{
    bench::print_banner(
        "K1 / §6 — simulation-kernel throughput: activity gating",
        "design-space exploration is bounded by simulator speed; gating "
        "idle components (software clock gating) should pay most at the "
        "low-to-medium loads that dominate sweeps");

    const Mesh_params mp = mesh_params();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    std::printf("%-8s %15s %15s %15s %15s %9s\n", "rate", "ref cyc/s",
                "gated cyc/s", "speedup", "flit-hops/s", "identical");

    bool all_identical = true;
    double speedup_at_low = 0.0;
    double speedup_at_high = 0.0;
    std::string json = "{\n  \"bench\": \"kernel_throughput\",\n"
                       "  \"mesh\": \"" +
                       std::to_string(kMeshW) + "x" +
                       std::to_string(kMeshH) +
                       "\",\n  \"measure_cycles\": " +
                       std::to_string(kMeasure) + ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < std::size(kRates); ++i) {
        const double rate = kRates[i];
        const Mode_result ref =
            run_mode(topo, routes, rate, Kernel_mode::reference);
        const Mode_result gated =
            run_mode(topo, routes, rate, Kernel_mode::activity_gated);
        // Identical seeds + two-phase discipline => the two schedules must
        // agree on every simulated quantity, bit for bit.
        const bool identical =
            ref.flit_hops == gated.flit_hops &&
            ref.packets_delivered == gated.packets_delivered &&
            ref.packet_latency_mean == gated.packet_latency_mean;
        all_identical = all_identical && identical;
        const double speedup = gated.cycles_per_sec / ref.cycles_per_sec;
        if (i == 0) speedup_at_low = speedup;
        speedup_at_high = speedup;
        std::printf("%-8.2f %15.3e %15.3e %14.2fx %15.3e %9s\n", rate,
                    ref.cycles_per_sec, gated.cycles_per_sec, speedup,
                    gated.flit_hops_per_sec, identical ? "yes" : "NO");
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "    {\"rate\": %.2f, \"ref_cycles_per_sec\": %.1f, "
            "\"gated_cycles_per_sec\": %.1f, \"speedup\": %.3f, "
            "\"gated_flit_hops_per_sec\": %.1f, \"flit_hops\": %llu, "
            "\"bit_identical\": %s}%s\n",
            rate, ref.cycles_per_sec, gated.cycles_per_sec, speedup,
            gated.flit_hops_per_sec,
            static_cast<unsigned long long>(gated.flit_hops),
            identical ? "true" : "false",
            i + 1 < std::size(kRates) ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";
    if (std::FILE* f = std::fopen("BENCH_kernel.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_kernel.json\n");
    }

    bench::print_verdict(
        all_identical && speedup_at_low >= 2.0 && speedup_at_high >= 0.95,
        "gated kernel bit-identical to reference; >= 2x cycles/sec at 5% "
        "injection, no regression at the highest rate (measured " +
            std::to_string(speedup_at_low) + "x low, " +
            std::to_string(speedup_at_high) + "x high)");
    return all_identical;
}

void bm_kernel_cycles(benchmark::State& state)
{
    const auto mode = static_cast<Kernel_mode>(state.range(0));
    const double rate =
        static_cast<double>(state.range(1)) / 100.0;
    const Mesh_params mp = mesh_params();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    auto sys = build(topo, routes, rate, mode);
    sys->warmup(kWarmup);
    for (auto _ : state) sys->kernel().run(1'000);
    state.SetItemsProcessed(state.iterations() * 1'000); // simulated cycles
}
BENCHMARK(bm_kernel_cycles)
    ->ArgsProduct({{static_cast<long>(Kernel_mode::activity_gated),
                    static_cast<long>(Kernel_mode::reference)},
                   {5, 15, 30}})
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    if (!run_figure()) return 1; // equivalence break: fail the CI smoke
    return bench::run_benchmarks(argc, argv);
}
