// Kernel throughput: activity-gated vs reference schedule.
//
// The design-flow argument for NoC products (§6) is fast design-space
// exploration: sweeps evaluate many (topology, load, parameter) points, so
// simulated cycles/sec is the bottleneck resource. This bench drives an 8x8
// mesh with uniform-random Bernoulli traffic at four injection rates — the
// highest (0.5) past saturation, where pooled flit storage and the
// blocked-router memo carry the load — through both kernel schedules,
// checks the runs are bit-identical, and reports simulated cycles/sec and
// flit-hops/sec. The headline saturation metric is gated flit-hops/sec at
// rate 0.5 (absolute simulation throughput is what bounds a sweep; the
// gated/reference ratio compresses toward 1 at saturation because both
// schedules share the same storage layer). Results are written to
// BENCH_kernel.json to track the performance trajectory across PRs,
// together with the flit-pool high-water mark — the buffer-provisioning
// cost of the run now that pool slots are held only by in-network flits.
//
// `--smoke` runs a tiny cycle budget and asserts only the bit-identical
// flag — a CI guard that storage refactors cannot silently diverge the two
// schedules; timing on a loaded CI box is noise, so no JSON is written.
#include "bench_util.h"

#include "topology/routing.h"
#include "traffic/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace noc;

namespace {

constexpr int kMeshW = 8;
constexpr int kMeshH = 8;
const double kRates[] = {0.05, 0.15, 0.30, 0.50};
constexpr double kSaturationRate = 0.50;

struct Bench_budget {
    Cycle warmup = 2'000;
    Cycle measure = 50'000;
    bool write_json = true;
    /// False under --smoke: the cycle budget is too small for cycles/sec
    /// to mean anything, so the verdict asserts bit-identity only.
    bool timing_meaningful = true;
};

struct Mode_result {
    double cycles_per_sec = 0.0;
    double flit_hops_per_sec = 0.0;
    std::uint64_t flit_hops = 0;       // total_flits_routed
    std::uint64_t packets_delivered = 0;
    double packet_latency_mean = 0.0;
    std::uint32_t pool_high_water = 0;
};

Mesh_params mesh_params()
{
    Mesh_params mp;
    mp.width = kMeshW;
    mp.height = kMeshH;
    return mp;
}

std::unique_ptr<Noc_system> build(const Topology& topo,
                                  const Route_set& routes, double rate,
                                  Kernel_mode mode)
{
    auto sys = std::make_unique<Noc_system>(topo, routes, Network_params{});
    sys->kernel().set_mode(mode);
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(topo.core_count()));
    for (int c = 0; c < topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate;
        sp.seed = 31337 + static_cast<std::uint64_t>(c);
        sys->ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
    return sys;
}

Mode_result run_mode(const Topology& topo, const Route_set& routes,
                     double rate, Kernel_mode mode,
                     const Bench_budget& budget)
{
    auto sys = build(topo, routes, rate, mode);
    sys->warmup(budget.warmup);
    const auto t0 = std::chrono::steady_clock::now();
    sys->measure(budget.measure);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    Mode_result r;
    r.cycles_per_sec = static_cast<double>(budget.measure) / secs;
    r.flit_hops = sys->total_flits_routed();
    r.flit_hops_per_sec = static_cast<double>(r.flit_hops) / secs;
    r.packets_delivered = sys->stats().packets_delivered();
    r.packet_latency_mean = sys->stats().packet_latency().mean();
    r.pool_high_water = sys->flit_pool().high_water();
    return r;
}

/// Returns false on a gated-vs-reference divergence (deterministic, so a
/// hard failure for CI); speedup numbers are reported but not gated on —
/// they depend on the machine.
bool run_figure(const Bench_budget& budget)
{
    bench::print_banner(
        "K1 / §6 — simulation-kernel throughput: activity gating",
        "design-space exploration is bounded by simulator speed; gating "
        "idle components (software clock gating) pays most at the "
        "low-to-medium loads that dominate sweeps, while pooled flit "
        "storage carries the saturated points");

    const Mesh_params mp = mesh_params();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);

    std::printf("%-8s %13s %13s %9s %15s %10s %9s\n", "rate", "ref cyc/s",
                "gated cyc/s", "speedup", "flit-hops/s", "pool hwm",
                "identical");

    bool all_identical = true;
    double speedup_at_low = 0.0;
    double speedup_at_high = 0.0;
    double headline_hops_per_sec = 0.0;
    std::string json = "{\n  \"bench\": \"kernel_throughput\",\n"
                       "  \"mesh\": \"" +
                       std::to_string(kMeshW) + "x" +
                       std::to_string(kMeshH) +
                       "\",\n  \"measure_cycles\": " +
                       std::to_string(budget.measure) + ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < std::size(kRates); ++i) {
        const double rate = kRates[i];
        const Mode_result ref =
            run_mode(topo, routes, rate, Kernel_mode::reference, budget);
        const Mode_result gated =
            run_mode(topo, routes, rate, Kernel_mode::activity_gated,
                     budget);
        // Identical seeds + two-phase discipline => the two schedules must
        // agree on every simulated quantity, bit for bit.
        const bool identical =
            ref.flit_hops == gated.flit_hops &&
            ref.packets_delivered == gated.packets_delivered &&
            ref.packet_latency_mean == gated.packet_latency_mean &&
            ref.pool_high_water == gated.pool_high_water;
        all_identical = all_identical && identical;
        const double speedup = gated.cycles_per_sec / ref.cycles_per_sec;
        if (i == 0) speedup_at_low = speedup;
        speedup_at_high = speedup;
        if (rate == kSaturationRate)
            headline_hops_per_sec = gated.flit_hops_per_sec;
        std::printf("%-8.2f %13.3e %13.3e %8.2fx %15.3e %10u %9s\n", rate,
                    ref.cycles_per_sec, gated.cycles_per_sec, speedup,
                    gated.flit_hops_per_sec, gated.pool_high_water,
                    identical ? "yes" : "NO");
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "    {\"rate\": %.2f, \"ref_cycles_per_sec\": %.1f, "
            "\"gated_cycles_per_sec\": %.1f, \"speedup\": %.3f, "
            "\"gated_flit_hops_per_sec\": %.1f, \"flit_hops\": %llu, "
            "\"pool_high_water\": %u, \"bit_identical\": %s}%s\n",
            rate, ref.cycles_per_sec, gated.cycles_per_sec, speedup,
            gated.flit_hops_per_sec,
            static_cast<unsigned long long>(gated.flit_hops),
            gated.pool_high_water, identical ? "true" : "false",
            i + 1 < std::size(kRates) ? "," : "");
        json += buf;
    }
    json += "  ],\n  \"headline_saturation_flit_hops_per_sec\": " +
            std::to_string(headline_hops_per_sec) + "\n}\n";
    if (budget.write_json) {
        if (std::FILE* f = std::fopen("BENCH_kernel.json", "w")) {
            std::fputs(json.c_str(), f);
            std::fclose(f);
            std::printf("\nwrote BENCH_kernel.json\n");
        }
    }

    if (!budget.timing_meaningful) {
        bench::print_verdict(
            all_identical,
            "SMOKE: gated kernel bit-identical to reference (pooled "
            "storage active in both) at every rate; timing not checked "
            "under the tiny smoke budget");
        return all_identical;
    }
    const bool timing_ok =
        speedup_at_low >= 2.0 && speedup_at_high >= 0.95;
    bench::print_verdict(
        all_identical && timing_ok,
        "gated kernel bit-identical to reference (pooled storage active in "
        "both); >= 2x cycles/sec at 5% injection, no regression past "
        "saturation (measured " +
            std::to_string(speedup_at_low) + "x low, " +
            std::to_string(speedup_at_high) + "x at rate 0.5)");
    return all_identical;
}

void bm_kernel_cycles(benchmark::State& state)
{
    const auto mode = static_cast<Kernel_mode>(state.range(0));
    const double rate =
        static_cast<double>(state.range(1)) / 100.0;
    const Mesh_params mp = mesh_params();
    const Topology topo = make_mesh(mp);
    const Route_set routes = xy_routes(topo, mp);
    auto sys = build(topo, routes, rate, mode);
    sys->warmup(2'000);
    for (auto _ : state) sys->kernel().run(1'000);
    state.SetItemsProcessed(state.iterations() * 1'000); // simulated cycles
}
BENCHMARK(bm_kernel_cycles)
    ->ArgsProduct({{static_cast<long>(Kernel_mode::activity_gated),
                    static_cast<long>(Kernel_mode::reference)},
                   {5, 15, 30, 50}})
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    Bench_budget budget;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            budget.warmup = 500;
            budget.measure = 2'000;
            budget.write_json = false;
            budget.timing_meaningful = false;
        }
    }
    if (!run_figure(budget)) return 1; // equivalence break: fail CI
    if (smoke) return 0; // tiny budget verified; skip the timing harness
    return bench::run_benchmarks(argc, argv);
}
