// C9 / §1, §4.1 — "with technology scaling, gate delays decrease while
// global wire delays do not. Thus in current advanced technologies the
// delay on the wires has an increasingly significant impact"; NoC links
// "can be explicitly segmented to further break critical paths".
#include "bench_util.h"

#include "common/table.h"
#include "phys/wire_model.h"

using namespace noc;

namespace {

void run_figure()
{
    bench::print_banner(
        "C9 / §1+§4.1 — wire delay vs gate delay; link pipelining",
        "wire delay per mm (in gate delays) worsens with scaling; link "
        "segmentation restores the clock at a latency cost");

    std::cout << "scaling of wire vs gate delay:\n";
    Text_table scaling{{"node", "FO4(ps)", "wire(ps/mm)",
                        "wire delay of 1mm (FO4s)"}};
    double ratio90 = 0.0;
    double ratio45 = 0.0;
    for (const auto& tech : {make_technology_90nm(), make_technology_65nm(),
                             make_technology_45nm()}) {
        const double ratio = gate_vs_wire_delay_ratio(tech);
        scaling.row()
            .add(tech.name)
            .add(tech.fo4_ps, 1)
            .add(tech.wire_delay_ps_per_mm, 1)
            .add(ratio, 2);
        if (tech.name == "90nm") ratio90 = ratio;
        if (tech.name == "45nm") ratio45 = ratio;
    }
    scaling.print(std::cout);

    std::cout << "\nlink pipelining at 65 nm, 1 GHz:\n";
    Text_table pipeline{{"length(mm)", "delay(ps)", "stages needed",
                         "latency(cycles)", "slack/segment(ps)"}};
    const Technology tech = make_technology_65nm();
    bool monotone = true;
    int prev_stages = -1;
    for (const double mm : {0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
        const auto w = pipeline_wire(tech, mm, 1.0);
        pipeline.row()
            .add(mm, 1)
            .add(w.delay_ps, 0)
            .add(w.pipeline_stages)
            .add(w.pipeline_stages + 1)
            .add(w.segment_slack_ps, 0);
        if (w.pipeline_stages < prev_stages) monotone = false;
        prev_stages = w.pipeline_stages;
    }
    pipeline.print(std::cout);
    std::cout << "\nsingle-cycle reach at 1 GHz: "
              << format_double(max_single_cycle_wire_mm(tech, 1.0), 1)
              << " mm; at 2 GHz: "
              << format_double(max_single_cycle_wire_mm(tech, 2.0), 1)
              << " mm\n";
    bench::print_verdict(ratio45 > ratio90 && monotone,
                         "wire/gate delay ratio worsens with each node; "
                         "pipeline stages grow with wire length");
}

void bm_pipeline_wire(benchmark::State& state)
{
    const Technology tech = make_technology_65nm();
    for (auto _ : state) {
        auto w = pipeline_wire(tech, 7.3, 1.1);
        benchmark::DoNotOptimize(w);
    }
}
BENCHMARK(bm_pipeline_wire);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
