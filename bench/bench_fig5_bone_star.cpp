// Figure 5 — the BONE memory-centric hierarchical star: "8 dual port
// memories, crossbar switches and ten RISC processors ... connected in a
// hierarchical star topology ... providing better performance than a
// conventional 2D mesh-based CMP."
//
// We build both fabrics with identical router parameters and drive them
// with the same memory-centric workload (processors read/write the shared
// SRAMs); the star should win on latency at matched load.
#include "bench_util.h"

#include "common/table.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

using namespace noc;

namespace {

struct Fabric {
    std::string name;
    Topology topo;
    Route_set routes;
    std::vector<Core_id> memories;
    std::vector<Core_id> processors;
};

Fabric make_bone()
{
    Star_params sp;
    sp.clusters = 5;
    sp.cores_per_cluster = 2; // 10 RISC processors
    sp.cores_at_root = 8;     // 8 dual-port SRAMs at the crossbars
    sp.root_count = 2;
    Star star = make_star(sp);
    Fabric f{"bone_star", star.topology,
             updown_routes(star.topology, star.switch_rank),
             star.root_cores,
             {}};
    for (int c = 0; c < f.topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        bool is_mem = false;
        for (const Core_id m : f.memories) is_mem = is_mem || m == core;
        if (!is_mem) f.processors.push_back(core);
    }
    return f;
}

Fabric make_cmp_mesh()
{
    // 18 cores on a 3x3 concentrated mesh (2 cores/switch), same totals.
    Mesh_params mp;
    mp.width = 3;
    mp.height = 3;
    mp.cores_per_switch = 2;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Fabric f{"mesh3x3c2", std::move(topo), std::move(routes), {}, {}};
    // The first 8 cores play the memories, the rest the processors.
    for (int c = 0; c < f.topo.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        if (c < 8)
            f.memories.push_back(core);
        else
            f.processors.push_back(core);
    }
    return f;
}

Load_point run_memory_centric(const Fabric& f, double rate)
{
    Network_params params;
    Sweep_config cfg;
    cfg.warmup = 1'000;
    cfg.measure = 6'000;
    cfg.packet_size_flits = 4;
    // Hotspot pattern onto the memories: 85% of traffic targets an SRAM.
    return run_synthetic_load(
        f.topo, f.routes, params, rate,
        [&]() -> std::shared_ptr<const Dest_pattern> {
            return std::shared_ptr<const Dest_pattern>(make_hotspot_pattern(
                f.topo.core_count(), f.memories, 0.85));
        },
        cfg);
}

void run_figure()
{
    bench::print_banner(
        "F5 / Figure 5 — BONE hierarchical star vs 2D-mesh CMP",
        "memory-centric star (10 RISC + 8 SRAM via crossbars) outperforms "
        "a conventional 2D mesh CMP");

    const Fabric star = make_bone();
    const Fabric mesh = make_cmp_mesh();
    std::cout << "star: " << star.topo.switch_count() << " switches, "
              << star.topo.link_count() << " links, max radix "
              << star.topo.max_radix() << "\n"
              << "mesh: " << mesh.topo.switch_count() << " switches, "
              << mesh.topo.link_count() << " links, max radix "
              << mesh.topo.max_radix() << "\n\n";

    Text_table table{{"fabric", "offered(f/n/cy)", "accepted", "avg lat(cy)",
                      "p99~(cy)"}};
    double star_lat_sum = 0.0;
    double mesh_lat_sum = 0.0;
    int points = 0;
    for (const double rate : {0.02, 0.05, 0.08, 0.12}) {
        const Load_point ps = run_memory_centric(star, rate);
        const Load_point pm = run_memory_centric(mesh, rate);
        table.row()
            .add("star  " + star.topo.name())
            .add(rate, 3)
            .add(ps.accepted_flits_per_node_cycle, 3)
            .add(ps.avg_packet_latency, 1)
            .add(ps.p99_estimate, 1);
        table.row()
            .add("mesh  " + mesh.topo.name())
            .add(rate, 3)
            .add(pm.accepted_flits_per_node_cycle, 3)
            .add(pm.avg_packet_latency, 1)
            .add(pm.p99_estimate, 1);
        star_lat_sum += ps.avg_packet_latency;
        mesh_lat_sum += pm.avg_packet_latency;
        ++points;
    }
    table.print(std::cout);
    const double star_avg = star_lat_sum / points;
    const double mesh_avg = mesh_lat_sum / points;
    std::cout << "\nmean latency: star " << format_double(star_avg, 1)
              << " cy vs mesh " << format_double(mesh_avg, 1) << " cy ("
              << format_double(mesh_avg / star_avg, 2) << "x)\n";
    bench::print_verdict(star_avg < mesh_avg,
                         "hierarchical star beats the 2D mesh CMP on "
                         "memory-centric traffic");
}

void bm_star_simulation(benchmark::State& state)
{
    const Fabric star = make_bone();
    Noc_system sys{star.topo, star.routes, Network_params{}};
    auto pattern = std::shared_ptr<const Dest_pattern>(make_hotspot_pattern(
        star.topo.core_count(), star.memories, 0.85));
    for (int c = 0; c < star.topo.core_count(); ++c) {
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.05;
        sp.seed = 3 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Bernoulli_source>(
                Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
    }
    for (auto _ : state) sys.kernel().run(100);
}
BENCHMARK(bm_star_simulation)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
