// C8 / §5 — TILE-Gx-scale CMP: "The Tilera TILE-Gx processor has 100 cores
// integrated onto a chip, with the cores connected by a 2D mesh network."
//
// Load sweep on the 10x10 mesh plus a scaling series (mesh size vs
// saturation throughput and zero-load latency) showing why a mesh remains
// the fabric of choice at this scale: per-node bandwidth degrades only
// slowly while the bisection grows with the side.
#include "bench_util.h"

#include "common/table.h"
#include "topology/routing.h"
#include "traffic/experiment.h"

using namespace noc;

namespace {

void run_figure()
{
    bench::print_banner(
        "C8 / §5 — 100-core TILE-Gx-class mesh",
        "a 2D mesh scales to 100 cores: bounded zero-load latency growth "
        "(~sqrt(N)) and stable per-node saturation throughput");

    Sweep_config cfg;
    cfg.warmup = 1'000;
    cfg.measure = 4'000;
    Network_params params;

    std::cout << "10x10 mesh load sweep (uniform random):\n";
    {
        Mesh_params mp;
        mp.width = 10;
        mp.height = 10;
        const Topology topo = make_mesh(mp);
        const Route_set routes = xy_routes(topo, mp);
        auto factory = [&] {
            return std::shared_ptr<const Dest_pattern>(
                make_uniform_pattern(topo.core_count()));
        };
        Text_table table{{"offered(f/n/cy)", "accepted", "avg lat(cy)",
                          "p99~(cy)"}};
        for (const double rate : {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35}) {
            const Load_point pt = run_synthetic_load(topo, routes, params,
                                                     rate, factory, cfg);
            table.row()
                .add(rate, 3)
                .add(pt.accepted_flits_per_node_cycle, 3)
                .add(pt.avg_packet_latency, 1)
                .add(pt.p99_estimate, 1);
        }
        table.print(std::cout);
    }

    std::cout << "\nmesh scaling series:\n";
    Text_table scale{{"mesh", "cores", "zero-load lat(cy)",
                      "saturation(f/n/cy)", "bisection(links)"}};
    double lat4 = 0.0;
    double lat10 = 0.0;
    double sat10 = 0.0;
    for (const int side : {4, 6, 8, 10}) {
        Mesh_params mp;
        mp.width = side;
        mp.height = side;
        const Topology topo = make_mesh(mp);
        const Route_set routes = xy_routes(topo, mp);
        auto factory = [&] {
            return std::shared_ptr<const Dest_pattern>(
                make_uniform_pattern(topo.core_count()));
        };
        const Load_point low = run_synthetic_load(topo, routes, params,
                                                  0.02, factory, cfg);
        const double sat = find_saturation_throughput(topo, routes, params,
                                                      factory, cfg);
        scale.row()
            .add(std::to_string(side) + "x" + std::to_string(side))
            .add(side * side)
            .add(low.avg_packet_latency, 1)
            .add(sat, 3)
            .add(side);
        if (side == 4) lat4 = low.avg_packet_latency;
        if (side == 10) {
            lat10 = low.avg_packet_latency;
            sat10 = sat;
        }
    }
    scale.print(std::cout);
    // Zero-load latency should grow roughly linearly in the side (average
    // hop count ~ 2/3 * side), i.e. ~2.5x from 4x4 to 10x10, and the
    // saturation throughput stays a usable fraction of a flit/node/cycle.
    const double growth = lat10 / lat4;
    std::cout << "\nzero-load latency growth 4x4 -> 10x10: "
              << format_double(growth, 2) << "x (hop-count ratio is 2.5x)\n";
    bench::print_verdict(growth > 1.6 && growth < 3.5 && sat10 > 0.1,
                         "latency grows ~linearly with mesh side; per-node "
                         "throughput remains usable at 100 cores");
}

void bm_100core_sim(benchmark::State& state)
{
    Mesh_params mp;
    mp.width = 10;
    mp.height = 10;
    Topology topo = make_mesh(mp);
    Route_set routes = xy_routes(topo, mp);
    Noc_system sys{std::move(topo), std::move(routes), Network_params{}};
    auto pattern = std::shared_ptr<const Dest_pattern>(
        make_uniform_pattern(100));
    for (int c = 0; c < 100; ++c) {
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = 0.15;
        sp.seed = 61 + static_cast<std::uint64_t>(c);
        sys.ni(Core_id{static_cast<std::uint32_t>(c)})
            .set_source(std::make_unique<Bernoulli_source>(
                Core_id{static_cast<std::uint32_t>(c)}, sp, pattern));
    }
    for (auto _ : state) sys.kernel().run(100);
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(bm_100core_sim)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
