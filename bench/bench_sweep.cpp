// Design-space sweep throughput: system-per-thread parallel exploration.
//
// The products argument (§6) is that NoC design flows win by evaluating
// many (topology, parameter, load) points quickly; src/explore turns the
// simulator into that evaluation engine. This bench runs the acceptance
// sweep — 2 topologies (mesh vs torus) x 2 synthetic patterns x 3 loads =
// 12 points plus 4 saturation searches — once on 1 worker thread and once
// on 4, asserts the two Sweep_results serialize byte-identically (the
// determinism contract: worker scheduling must be invisible), and records
// the wall-clock speedup plus each curve's headline figures into
// BENCH_sweep.json for cross-PR trending, alongside BENCH_kernel.json.
// Speedup is only meaningful with >= 4 hardware threads; the JSON records
// hardware_threads so trend tooling can judge.
//
// `--smoke` shrinks the cycle budget and uses 2 worker threads — the CI
// guard that the sweep engine stays deterministic under parallelism; on a
// loaded CI box the timing is noise, so the JSON still records the headline
// points but the verdict gates only on byte-identity.
#include "bench_util.h"

#include "explore/sweep_runner.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace noc;

namespace {

Sweep_spec acceptance_spec(bool smoke)
{
    Network_params vc2;
    vc2.route_vcs = 2; // datelines for the torus; same buffers for the mesh
    Sweep_spec spec;
    spec.name = "mesh-vs-torus-8x8";
    spec.add_mesh(8, 8, vc2, "vc2");
    spec.add_torus(8, 8, vc2, "vc2");
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.add_synthetic(Sweep_pattern_kind::tornado);
    spec.loads = {0.05, 0.20, 0.35};
    spec.search_saturation = !smoke; // 4 extra binary-search tasks
    if (smoke) {
        spec.base.warmup = 200;
        spec.base.measure = 1'000;
        spec.base.drain_limit = 8'000;
    } else {
        spec.base.warmup = 1'000;
        spec.base.measure = 8'000;
        spec.base.drain_limit = 50'000;
    }
    return spec;
}

} // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

    bench::print_banner(
        "E1 / §6 — design-space sweep engine: system-per-thread scaling",
        "automated flows explore many design points before committing to "
        "silicon; independent points are embarrassingly parallel, so the "
        "sweep engine should scale with worker threads while staying "
        "bit-deterministic");

    const Sweep_spec spec = acceptance_spec(smoke);
    const std::uint32_t threaded_workers = smoke ? 2 : 4;

    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result threaded = run_sweep(spec, threaded_workers);

    const bool identical = serial.to_json() == threaded.to_json() &&
                           serial.to_csv() == threaded.to_csv();
    bool all_ran = true;
    for (const auto& c : serial.curves)
        for (const auto& p : c.points) all_ran = all_ran && p.error.empty();

    std::printf("%s", serial.report().c_str());
    const double speedup = threaded.wall_seconds > 0.0
                               ? serial.wall_seconds / threaded.wall_seconds
                               : 0.0;
    std::printf("\n%-24s %10s %10s\n", "run", "workers", "wall(s)");
    std::printf("%-24s %10u %10.3f\n", "serial", serial.worker_threads,
                serial.wall_seconds);
    std::printf("%-24s %10u %10.3f\n", "threaded", threaded.worker_threads,
                threaded.wall_seconds);
    std::printf("speedup %.2fx on %u hardware threads, byte-identical: %s\n",
                speedup, std::thread::hardware_concurrency(),
                identical ? "yes" : "NO");

    // BENCH_sweep.json: headline per-curve figures (from the serial run —
    // the threaded one is byte-identical or we fail) + the scaling record.
    std::string json =
        "{\n  \"bench\": \"sweep\",\n  \"spec\": \"" + spec.name +
        "\",\n  \"points\": " +
        std::to_string(spec.curve_count() * spec.loads.size()) +
        ",\n  \"measure_cycles\": " + std::to_string(spec.base.measure) +
        ",\n  \"smoke\": " + (smoke ? "true" : "false") +
        ",\n  \"hardware_threads\": " +
        std::to_string(std::thread::hardware_concurrency()) +
        ",\n  \"curves\": [\n";
    for (std::size_t i = 0; i < serial.curves.size(); ++i) {
        const Design_curve& c = serial.curves[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "    {\"curve\": \"%s\", \"zero_load_latency\": %.3f, "
                      "\"saturation_throughput\": %.4f, "
                      "\"saturation_searched\": %s, \"on_pareto\": %s}%s\n",
                      c.label.c_str(), c.zero_load_latency,
                      c.saturation_throughput,
                      c.saturation_searched ? "true" : "false",
                      c.on_pareto ? "true" : "false",
                      i + 1 < serial.curves.size() ? "," : "");
        json += buf;
    }
    char tail[256];
    std::snprintf(tail, sizeof tail,
                  "  ],\n  \"serial_wall_seconds\": %.3f,\n"
                  "  \"threaded_workers\": %u,\n"
                  "  \"threaded_wall_seconds\": %.3f,\n"
                  "  \"speedup_vs_1_worker\": %.3f,\n"
                  "  \"byte_identical\": %s\n}\n",
                  serial.wall_seconds, threaded.worker_threads,
                  threaded.wall_seconds, speedup,
                  identical ? "true" : "false");
    json += tail;
    if (std::FILE* f = std::fopen("BENCH_sweep.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_sweep.json\n");
    }

    bench::print_verdict(
        identical && all_ran,
        "sweep of " +
            std::to_string(spec.curve_count() * spec.loads.size()) +
            " points byte-identical between 1 and " +
            std::to_string(threaded_workers) +
            " worker threads; speedup recorded (meaningful only with >= " +
            std::to_string(threaded_workers) + " hardware threads)");
    return identical && all_ran ? 0 : 1;
}
