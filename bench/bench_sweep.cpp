// Design-space sweep throughput: system-per-thread parallel exploration.
//
// The products argument (§6) is that NoC design flows win by evaluating
// many (topology, parameter, load) points quickly; src/explore turns the
// simulator into that evaluation engine. This bench runs the acceptance
// sweep — 2 topologies (mesh vs torus) x 2 synthetic patterns x 3 loads =
// 12 points plus 4 saturation searches — once on 1 worker thread and once
// on 4, asserts the two Sweep_results serialize byte-identically (the
// determinism contract: worker scheduling must be invisible), and records
// the wall-clock speedup plus each curve's headline figures into
// BENCH_sweep.json for cross-PR trending, alongside BENCH_kernel.json.
// Speedup is only meaningful with >= 4 hardware threads; the JSON records
// hardware_threads so trend tooling can judge.
//
// `--smoke` shrinks the cycle budget and uses 2 worker threads — the CI
// guard that the sweep engine stays deterministic under parallelism; on a
// loaded CI box the timing is noise, so the JSON still records the headline
// points but the verdict gates only on byte-identity.
//
// Distributed sweeps (first step of the ROADMAP item): `--points a..b`
// runs only the grid points with enumeration index in [a, b) and writes
// them as one deterministic record per line into
// BENCH_sweep_points_<a>_<b>.json — label-keyed seeds make every point
// independent of which process runs it, so disjoint slices can be farmed
// to separate machines with no coordination. `--merge out.json in1 in2 ...`
// concatenates slice files back into one full point set, verifying the
// slices agree on the spec, cover every index exactly once, and sorting by
// index — the merged file is byte-identical to what a single
// `--points 0..N` run would have written.
//
// == Sweep farm: the worker protocol ==
//
// `--points` doubles as the WORKER MODE of the fault-tolerant farm driver
// (`noc_farm`, src/farm/orchestrator.h): the orchestrator fork/execs one
// `bench_sweep --points a..b` per slice and supervises it. The contract a
// worker honors:
//
//   --slice-dir DIR     Publish the slice into DIR instead of the CWD.
//                       Publication is ATOMIC: the payload is written to
//                       `<file>.tmp.<pid>` and renamed over the published
//                       name only when complete (explore/slice_io.h), so a
//                       crash mid-write can never leave a half-slice under
//                       the published name — torn bytes stay under the tmp
//                       name, which every consumer ignores.
//   --heartbeat PATH    Liveness channel: a background thread rewrites
//                       PATH with an incrementing counter every ~50ms for
//                       as long as the worker makes progress. An attempt
//                       whose heartbeat goes stale past the orchestrator's
//                       timeout is presumed hung, killed, and retried.
//   --chaos-act ACT     Fault-injection hook (none|kill|hang|torn) — the
//                       farm's chaos harness, mirroring the simulator's
//                       Fault_plan one layer up. `kill` crashes (SIGKILL)
//                       before any output; `hang` stops heartbeating and
//                       sleeps forever (exercises hang detection); `torn`
//                       computes the slice, writes HALF the payload to the
//                       tmp file, and crashes (exercises atomic-publication
//                       and resume's torn-tmp sweep). The orchestrator
//                       decides actions deterministically from the chaos
//                       seed, so chaos runs are reproducible.
//   --grid-total        Probe mode: print "<points> <spec> <budget>" for
//                       the acceptance spec and exit — the farm uses it to
//                       size its slices and pin resume fingerprints.
//   --telemetry-dir D   (points mode) Attach the live telemetry registry +
//                       async sampler (src/telemetry) to every point,
//                       sampling each 64 cycles into D/point_<seed>.noct
//                       for live viewing with tools/noc_top. Samples go to
//                       that side stream ONLY: the published slice bytes
//                       are identical with or without this flag, and CI
//                       gates on exactly that with cmp.
//
// Exit codes: 0 = slice published; 1 = invalid request (NOT retryable —
// the farm aborts); anything else, or death by signal = transient failure
// (the farm retries with backoff under a bounded attempt budget).
// Checkpoint/resume: the published slice files ARE the checkpoint;
// `noc_farm --resume` re-validates them and re-runs only the gaps.
#include "bench_util.h"

#include "explore/slice_io.h"
#include "explore/slice_merge.h"
#include "explore/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace noc;

namespace {

Sweep_spec acceptance_spec(bool smoke)
{
    Network_params vc2;
    vc2.route_vcs = 2; // datelines for the torus; same buffers for the mesh
    Sweep_spec spec;
    spec.name = "mesh-vs-torus-8x8";
    spec.add_mesh(8, 8, vc2, "vc2");
    spec.add_torus(8, 8, vc2, "vc2");
    spec.add_synthetic(Sweep_pattern_kind::uniform);
    spec.add_synthetic(Sweep_pattern_kind::tornado);
    spec.loads = {0.05, 0.20, 0.35};
    spec.search_saturation = !smoke; // 4 extra binary-search tasks
    if (smoke) {
        spec.base.warmup = 200;
        spec.base.measure = 1'000;
        spec.base.drain_limit = 8'000;
    } else {
        spec.base.warmup = 1'000;
        spec.base.measure = 8'000;
        spec.base.drain_limit = 50'000;
    }
    return spec;
}

// Slice serialization (record/payload/file-name/budget formats) lives in
// explore/slice_io.h, shared with the farm orchestrator so a farmed merge
// is byte-identical to this binary's own output by construction.

/// Heartbeat writer for farm-supervised runs: rewrites `path` with an
/// incrementing counter until stopped. The orchestrator watches for
/// CHANGING content, not timestamps, so coarse filesystem clocks cannot
/// fake liveness. With a progress counter attached the content is the
/// extended "beat done total" format — the orchestrator parses it into
/// live per-slice progress lines, and heartbeats without it still satisfy
/// the watchdog (liveness needs only changing bytes).
class Heartbeat {
public:
    explicit Heartbeat(std::string path,
                       const std::atomic<std::uint32_t>* done = nullptr,
                       std::uint32_t total = 0)
        : path_(std::move(path)), done_(done), total_(total)
    {
        if (path_.empty()) return;
        thread_ = std::thread{[this] {
            std::uint64_t beat = 0;
            while (!stop_.load(std::memory_order_relaxed)) {
                if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
                    if (done_ != nullptr)
                        std::fprintf(
                            f, "%llu %u %u\n",
                            static_cast<unsigned long long>(beat++),
                            done_->load(std::memory_order_relaxed),
                            total_);
                    else
                        std::fprintf(f, "%llu\n",
                                     static_cast<unsigned long long>(
                                         beat++));
                    std::fclose(f);
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{50});
            }
        }};
    }
    ~Heartbeat()
    {
        stop_.store(true, std::memory_order_relaxed);
        if (thread_.joinable()) thread_.join();
    }

private:
    std::string path_;
    const std::atomic<std::uint32_t>* done_;
    std::uint32_t total_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// `--points a..b`: run one slice of the acceptance spec on a single
/// worker and write its per-point records — the process-level shard of a
/// distributed sweep, and the farm's worker mode (protocol in the header
/// comment). Exit codes: 0 published, 1 invalid request, 3 retryable IO
/// failure.
int run_points_slice(bool smoke, std::uint32_t a, std::uint32_t b,
                     const std::string& slice_dir,
                     const std::string& heartbeat_path,
                     const std::string& chaos_act,
                     const std::string& telemetry_dir)
{
    // Chaos `kill`: crash before any output exists — the pure worker-loss
    // case the farm's retry path must absorb.
    if (chaos_act == "kill") raise(SIGKILL);

    Sweep_spec spec = acceptance_spec(smoke);
    // Per-curve saturation searches belong to whole-grid runs; a slice
    // serializes point records only, so searching here would burn ~7 full
    // simulations per curve and discard the result.
    spec.search_saturation = false;
    const auto total =
        static_cast<std::uint32_t>(spec.enumerate().size());
    if (a >= b || a >= total) {
        std::fprintf(stderr, "--points %u..%u: empty slice (grid has %u)\n",
                     a, b, total);
        return 1;
    }
    b = std::min(b, total);

    // Chaos `hang`: one beat, then silence — a livelocked worker as the
    // orchestrator's heartbeat watchdog sees it. (The real heartbeat
    // thread is never started, so the file goes stale by construction.)
    if (chaos_act == "hang") {
        if (!heartbeat_path.empty())
            if (std::FILE* f = std::fopen(heartbeat_path.c_str(), "w")) {
                std::fputs("0\n", f);
                std::fclose(f);
            }
        for (;;) std::this_thread::sleep_for(std::chrono::hours{1});
    }

    // Live telemetry (CI's sampled-vs-unsampled gate, tools/noc_top):
    // sampling goes to side streams under telemetry_dir only, so the slice
    // bytes below must be identical with or without it.
    if (!telemetry_dir.empty()) {
        ::mkdir(telemetry_dir.c_str(), 0755); // EEXIST is fine
        spec.base.telemetry_period = 64;
        spec.base.telemetry_dir = telemetry_dir;
    }

    // Extended heartbeat: the runner's point-done hook streams per-slice
    // progress to the orchestrator through the liveness file.
    std::atomic<std::uint32_t> done{0};
    const Heartbeat heartbeat{heartbeat_path, &done, b - a};
    Sweep_runner runner{1};
    runner.set_point_done_hook(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    const Sweep_result result = runner.run(spec, {a, b});

    std::vector<std::string> records;
    std::map<std::uint32_t, std::string> by_index;
    for (const auto& c : result.curves)
        for (const auto& p : c.points)
            if (!p.skipped)
                by_index[p.point.index] = slice_point_record(c.label, p);
    for (auto& [idx, line] : by_index) records.push_back(std::move(line));

    const std::string name = slice_file_name(a, b);
    const std::string path =
        slice_dir.empty() ? name : slice_dir + "/" + name;
    const std::string payload = slice_payload(
        spec.name, slice_budget_tag(spec), a, b, total, records);

    // Chaos `torn`: crash mid-write — half the payload lands under the
    // TMP name and the process dies before the rename, so the published
    // name never appears. Resume must sweep the tmp file, never trust it.
    if (chaos_act == "torn") {
        const std::string tmp =
            path + ".tmp." + std::to_string(static_cast<int>(getpid()));
        if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
            std::fwrite(payload.data(), 1, payload.size() / 2, f);
            std::fclose(f);
        }
        raise(SIGKILL);
    }

    const std::string err = write_file_atomic(path, payload);
    if (!err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 3; // retryable by the farm's exit-code contract
    }
    std::printf("ran points [%u, %u) of %u (%zu records) -> %s\n", a, b,
                total, records.size(), path.c_str());
    return 0;
}

/// `--merge out.json in1 in2 ...`: concatenate slice files into the full
/// deterministic point set (verifying spec agreement and exact coverage).
int run_merge(const std::string& out_name,
              const std::vector<std::string>& inputs)
{
    // All validation lives in explore/slice_merge.h (unit tested with
    // deliberately damaged documents); this wrapper only does file IO.
    Slice_merge acc;
    for (const auto& in_name : inputs) {
        std::ifstream in{in_name};
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", in_name.c_str());
            return 1;
        }
        std::string content{std::istreambuf_iterator<char>{in},
                            std::istreambuf_iterator<char>{}};
        const std::string err = merge_slice_document(in_name, content, acc);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    std::vector<std::string> records;
    const std::string err = finish_slice_merge(acc, records);
    if (!err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    const auto count = static_cast<std::uint32_t>(records.size());
    const std::string payload =
        slice_payload(acc.spec_name, acc.budget, 0, count, count, records);
    const std::string werr = write_file_atomic(out_name, payload);
    if (!werr.empty()) {
        std::fprintf(stderr, "%s\n", werr.c_str());
        return 1;
    }
    std::printf("merged %zu slice files, %u points -> %s\n", inputs.size(),
                count, out_name.c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    std::uint32_t points_a = 0;
    std::uint32_t points_b = 0;
    bool points_mode = false;
    bool grid_total = false;
    std::string slice_dir;
    std::string heartbeat_path;
    std::string chaos_act = "none";
    std::string telemetry_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
        if (std::strcmp(argv[i], "--grid-total") == 0) grid_total = true;
        if (std::strcmp(argv[i], "--slice-dir") == 0 && i + 1 < argc)
            slice_dir = argv[i + 1];
        if (std::strcmp(argv[i], "--telemetry-dir") == 0 && i + 1 < argc)
            telemetry_dir = argv[i + 1];
        if (std::strcmp(argv[i], "--heartbeat") == 0 && i + 1 < argc)
            heartbeat_path = argv[i + 1];
        if (std::strcmp(argv[i], "--chaos-act") == 0 && i + 1 < argc)
            chaos_act = argv[i + 1];
        if (std::strcmp(argv[i], "--points") == 0) {
            const char* range = i + 1 < argc ? argv[i + 1] : nullptr;
            const char* dots =
                range != nullptr ? std::strstr(range, "..") : nullptr;
            if (dots == nullptr) {
                std::fprintf(stderr, "usage: bench_sweep --points a..b\n");
                return 1;
            }
            points_a = static_cast<std::uint32_t>(
                std::strtoul(range, nullptr, 10));
            points_b = static_cast<std::uint32_t>(
                std::strtoul(dots + 2, nullptr, 10));
            points_mode = true;
        }
        if (std::strcmp(argv[i], "--merge") == 0) {
            if (i + 2 >= argc) {
                std::fprintf(stderr,
                             "usage: bench_sweep --merge out.json in1.json "
                             "[in2.json ...]\n");
                return 1;
            }
            std::vector<std::string> inputs;
            for (int j = i + 2; j < argc; ++j) inputs.emplace_back(argv[j]);
            return run_merge(argv[i + 1], inputs);
        }
    }
    if (chaos_act != "none" && chaos_act != "kill" &&
        chaos_act != "hang" && chaos_act != "torn") {
        std::fprintf(stderr,
                     "--chaos-act %s: expected none|kill|hang|torn\n",
                     chaos_act.c_str());
        return 1;
    }
    if (grid_total) {
        // Farm probe: grid size + protocol fingerprints, one line.
        Sweep_spec spec = acceptance_spec(smoke);
        spec.search_saturation = false;
        std::printf("%zu %s %s\n", spec.enumerate().size(),
                    spec.name.c_str(), slice_budget_tag(spec).c_str());
        return 0;
    }
    if (points_mode)
        return run_points_slice(smoke, points_a, points_b, slice_dir,
                                heartbeat_path, chaos_act, telemetry_dir);

    bench::print_banner(
        "E1 / §6 — design-space sweep engine: system-per-thread scaling",
        "automated flows explore many design points before committing to "
        "silicon; independent points are embarrassingly parallel, so the "
        "sweep engine should scale with worker threads while staying "
        "bit-deterministic");

    const Sweep_spec spec = acceptance_spec(smoke);
    const std::uint32_t threaded_workers = smoke ? 2 : 4;

    const Sweep_result serial = run_sweep(spec, 1);
    const Sweep_result threaded = run_sweep(spec, threaded_workers);

    const bool identical = serial.to_json() == threaded.to_json() &&
                           serial.to_csv() == threaded.to_csv();

    // Live-saturation early-stop leg: the same grid with
    // Sweep_config::early_stop_check armed. Saturated points cut their
    // measurement window short the moment mean latency crosses the cap
    // while still rising; the decision is deterministic, so 1 worker and
    // N workers must stay byte-identical, and the cycles actually
    // measured (vs the full window) are the savings ledger.
    Sweep_spec es_spec = acceptance_spec(smoke);
    es_spec.search_saturation = false;
    es_spec.base.early_stop_check = smoke ? 200 : 500;
    const Sweep_result es_serial = run_sweep(es_spec, 1);
    const Sweep_result es_threaded = run_sweep(es_spec, threaded_workers);
    const bool es_identical =
        es_serial.to_json() == es_threaded.to_json() &&
        es_serial.to_csv() == es_threaded.to_csv();
    std::uint64_t es_points = 0;
    std::uint64_t es_stopped = 0;
    std::uint64_t es_measured_cycles = 0;
    for (const auto& c : es_serial.curves)
        for (const auto& p : c.points)
            if (p.error.empty() && !p.skipped) {
                ++es_points;
                es_measured_cycles += p.load.measured_cycles;
                if (p.load.early_stopped) ++es_stopped;
            }
    const std::uint64_t es_full_cycles = es_points * es_spec.base.measure;
    bool all_ran = true;
    for (const auto& c : serial.curves)
        for (const auto& p : c.points) all_ran = all_ran && p.error.empty();

    std::printf("%s", serial.report().c_str());
    const double speedup = threaded.wall_seconds > 0.0
                               ? serial.wall_seconds / threaded.wall_seconds
                               : 0.0;
    std::printf("\n%-24s %10s %10s\n", "run", "workers", "wall(s)");
    std::printf("%-24s %10u %10.3f\n", "serial", serial.worker_threads,
                serial.wall_seconds);
    std::printf("%-24s %10u %10.3f\n", "threaded", threaded.worker_threads,
                threaded.wall_seconds);
    std::printf("speedup %.2fx on %u hardware threads, byte-identical: %s\n",
                speedup, std::thread::hardware_concurrency(),
                identical ? "yes" : "NO");
    std::printf("early-stop leg (check every %llu cycles): %llu/%llu points "
                "stopped early, %llu of %llu measure cycles simulated "
                "(%.1f%% saved), byte-identical 1 vs %u workers: %s\n",
                static_cast<unsigned long long>(
                    es_spec.base.early_stop_check),
                static_cast<unsigned long long>(es_stopped),
                static_cast<unsigned long long>(es_points),
                static_cast<unsigned long long>(es_measured_cycles),
                static_cast<unsigned long long>(es_full_cycles),
                es_full_cycles > 0
                    ? 100.0 * (1.0 - static_cast<double>(es_measured_cycles) /
                                         static_cast<double>(es_full_cycles))
                    : 0.0,
                threaded_workers, es_identical ? "yes" : "NO");

    // BENCH_sweep.json: headline per-curve figures (from the serial run —
    // the threaded one is byte-identical or we fail) + the scaling record.
    std::string json =
        "{\n  \"bench\": \"sweep\",\n  \"spec\": \"" + spec.name +
        "\",\n  \"points\": " +
        std::to_string(spec.curve_count() * spec.loads.size()) +
        ",\n  \"measure_cycles\": " + std::to_string(spec.base.measure) +
        ",\n  \"smoke\": " + (smoke ? "true" : "false") +
        ",\n  \"hardware_threads\": " +
        std::to_string(std::thread::hardware_concurrency()) +
        ",\n  \"curves\": [\n";
    for (std::size_t i = 0; i < serial.curves.size(); ++i) {
        const Design_curve& c = serial.curves[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "    {\"curve\": \"%s\", \"zero_load_latency\": %.3f, "
                      "\"saturation_throughput\": %.4f, "
                      "\"saturation_searched\": %s, \"on_pareto\": %s}%s\n",
                      c.label.c_str(), c.zero_load_latency,
                      c.saturation_throughput,
                      c.saturation_searched ? "true" : "false",
                      c.on_pareto ? "true" : "false",
                      i + 1 < serial.curves.size() ? "," : "");
        json += buf;
    }
    char tail[640];
    std::snprintf(tail, sizeof tail,
                  "  ],\n  \"early_stop\": {\"check_cycles\": %llu, "
                  "\"points\": %llu, \"early_stopped\": %llu, "
                  "\"measured_cycles\": %llu, \"full_cycles\": %llu, "
                  "\"byte_identical\": %s},\n"
                  "  \"serial_wall_seconds\": %.3f,\n"
                  "  \"threaded_workers\": %u,\n"
                  "  \"threaded_wall_seconds\": %.3f,\n"
                  "  \"speedup_vs_1_worker\": %.3f,\n"
                  "  \"byte_identical\": %s\n}\n",
                  static_cast<unsigned long long>(
                      es_spec.base.early_stop_check),
                  static_cast<unsigned long long>(es_points),
                  static_cast<unsigned long long>(es_stopped),
                  static_cast<unsigned long long>(es_measured_cycles),
                  static_cast<unsigned long long>(es_full_cycles),
                  es_identical ? "true" : "false", serial.wall_seconds,
                  threaded.worker_threads, threaded.wall_seconds, speedup,
                  identical ? "true" : "false");
    json += tail;
    if (std::FILE* f = std::fopen("BENCH_sweep.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_sweep.json\n");
    }

    bench::print_verdict(
        identical && all_ran && es_identical,
        "sweep of " +
            std::to_string(spec.curve_count() * spec.loads.size()) +
            " points byte-identical between 1 and " +
            std::to_string(threaded_workers) +
            " worker threads (early-stop leg included); speedup recorded "
            "(meaningful only with >= " +
            std::to_string(threaded_workers) + " hardware threads)");
    return identical && all_ran && es_identical ? 0 : 1;
}
