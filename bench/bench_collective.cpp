// Collective traffic on the multicast fabric (src/collective): broadcast
// and allreduce completion on an 8x8 mesh, destination-set trees vs the
// naive one-unicast-per-destination emulation.
//
// The tree fabric's claim is structural: a broadcast is ONE packet forked
// in the switches instead of N-1 packets serialized through the root's
// injection link, so completion time should drop from O(N) injection
// serialization to roughly the tree depth. The bench measures completion
// cycles for both modes on a quiet network, repeats allreduce under a
// Bernoulli background load (the explore layer's collective axis in one
// point), and gates on the acceptance criterion: tree allreduce completes
// no later than its unicast emulation.
//
// Results land in BENCH_collective.json for cross-PR trending. The verdict
// gates on shape (completion, tree <= naive), not absolute figures.
#include "bench_util.h"

#include "collective/collective.h"
#include "topology/routing.h"
#include "traffic/experiment.h"
#include "traffic/patterns.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace noc;

namespace {

struct Fixture {
    Topology topo;
    Route_set routes;
    Network_params params;
};

Fixture make_fixture()
{
    Mesh_params mp;
    mp.width = 8;
    mp.height = 8;
    Fixture f{make_mesh(mp), {}, {}};
    f.routes = xy_routes(f.topo, mp);
    return f;
}

/// Completion cycles of one collective on an otherwise quiet system.
Cycle quiet_completion(const Fixture& f, Collective_kind kind,
                       bool use_multicast)
{
    Build_options opts;
    Noc_system sys{f.topo, f.routes, f.params, opts};
    Collective_config cfg;
    cfg.kind = kind;
    cfg.root = Core_id{0};
    cfg.use_multicast = use_multicast;
    Collective_driver driver{sys, cfg};
    return driver.run_to_completion(1'000'000);
}

void print_row(const char* label, Cycle tree, Cycle naive)
{
    std::printf("%-12s %10llu %10llu %9.2fx\n", label,
                static_cast<unsigned long long>(tree),
                static_cast<unsigned long long>(naive),
                tree != 0 ? static_cast<double>(naive) /
                                static_cast<double>(tree)
                          : 0.0);
}

} // namespace

int main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

    bench::print_banner(
        "Collective traffic — broadcast/reduce trees vs unicast emulation",
        "one-to-many traffic (invalidations, barrier releases) forked in "
        "the switches beats serializing one unicast per destination "
        "through the source's injection link");

    const Fixture f = make_fixture();
    const Cycle bcast_tree =
        quiet_completion(f, Collective_kind::broadcast, true);
    const Cycle bcast_naive =
        quiet_completion(f, Collective_kind::broadcast, false);
    const Cycle ar_tree =
        quiet_completion(f, Collective_kind::allreduce, true);
    const Cycle ar_naive =
        quiet_completion(f, Collective_kind::allreduce, false);
    const Cycle ag_tree =
        quiet_completion(f, Collective_kind::allgather, true);
    const Cycle ag_naive =
        quiet_completion(f, Collective_kind::allgather, false);

    std::printf("%-12s %10s %10s %9s\n", "collective", "tree(cy)",
                "naive(cy)", "speedup");
    print_row("broadcast", bcast_tree, bcast_naive);
    print_row("allreduce", ar_tree, ar_naive);
    print_row("allgather", ag_tree, ag_naive);

    // Allreduce riding on a background Bernoulli load — the explore
    // layer's collective axis in a single point.
    Sweep_config cfg;
    cfg.warmup = smoke ? 300 : 1'000;
    cfg.measure = smoke ? 2'000 : 10'000;
    cfg.drain_limit = smoke ? 20'000 : 60'000;
    cfg.seed = 20100607; // DAC'10
    Collective_config loaded_cfg;
    loaded_cfg.kind = Collective_kind::allreduce;
    loaded_cfg.root = Core_id{0};
    const Load_point loaded = run_synthetic_load_with_collective(
        f.topo, f.routes, f.params, 0.05,
        [&] { return make_uniform_pattern(f.topo.core_count()); }, cfg,
        loaded_cfg);
    std::printf("\nallreduce under 0.05 flits/node/cycle background: "
                "%llu cycles (completed: %s, background drained: %s)\n",
                static_cast<unsigned long long>(
                    loaded.collective_completion_cycles),
                loaded.collective_completed ? "yes" : "NO",
                loaded.drained ? "yes" : "NO");

    const std::string json =
        "{\n  \"bench\": \"collective\",\n  \"smoke\": " +
        std::string{smoke ? "true" : "false"} +
        ",\n  \"broadcast_tree_cycles\": " + std::to_string(bcast_tree) +
        ",\n  \"broadcast_naive_cycles\": " + std::to_string(bcast_naive) +
        ",\n  \"allreduce_tree_cycles\": " + std::to_string(ar_tree) +
        ",\n  \"allreduce_naive_cycles\": " + std::to_string(ar_naive) +
        ",\n  \"allgather_tree_cycles\": " + std::to_string(ag_tree) +
        ",\n  \"allgather_naive_cycles\": " + std::to_string(ag_naive) +
        ",\n  \"allreduce_loaded_cycles\": " +
        std::to_string(loaded.collective_completion_cycles) +
        ",\n  \"allreduce_loaded_completed\": " +
        (loaded.collective_completed ? "true" : "false") + "\n}\n";
    if (std::FILE* out = std::fopen("BENCH_collective.json", "w")) {
        std::fputs(json.c_str(), out);
        std::fclose(out);
        std::printf("\nwrote BENCH_collective.json\n");
    }

    // Shape gate: everything completed, and the tree fabric never loses to
    // its own unicast emulation (the subsystem's acceptance criterion).
    const bool ok = bcast_tree != invalid_cycle &&
                    bcast_naive != invalid_cycle &&
                    ar_tree != invalid_cycle && ar_naive != invalid_cycle &&
                    ag_tree != invalid_cycle && ag_naive != invalid_cycle &&
                    loaded.collective_completed && loaded.drained &&
                    bcast_tree <= bcast_naive && ar_tree <= ar_naive &&
                    ag_tree <= ag_naive;
    bench::print_verdict(
        ok, "broadcast " + std::to_string(bcast_tree) + " vs " +
                std::to_string(bcast_naive) + " cy, allreduce " +
                std::to_string(ar_tree) + " vs " + std::to_string(ar_naive) +
                " cy, allgather " + std::to_string(ag_tree) + " vs " +
                std::to_string(ag_naive) +
                " cy (tree vs naive); loaded allreduce " +
                std::to_string(loaded.collective_completion_cycles) + " cy");
    return ok ? 0 : 1;
}
