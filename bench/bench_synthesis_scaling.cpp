// C10 / §6 — "In order to handle the design complexity and meet the tight
// time-to-market constraints, it is important to automate most of these NoC
// design phases": the synthesis engine must scale to ~100-core SoCs.
//
// Synthetic SoC generator: pipelines + memory hotspots, parameterized core
// count; measure synthesis wall time vs core count with google-benchmark.
#include "bench_util.h"

#include "common/rng.h"
#include "common/table.h"
#include "synth/topology_synth.h"

using namespace noc;

namespace {

Core_graph synthetic_soc(int cores, std::uint64_t seed)
{
    Core_graph g{"synthetic" + std::to_string(cores)};
    Rng rng{seed};
    for (int c = 0; c < cores; ++c) {
        Core_spec spec;
        spec.name = "ip" + std::to_string(c);
        spec.area_mm2 = 0.5 + rng.next_double() * 2.0;
        spec.is_memory = c % 7 == 0;
        g.add_core(std::move(spec));
    }
    // Pipeline chains plus hotspot flows into the memories.
    for (int c = 0; c + 1 < cores; ++c) {
        Flow_spec f;
        f.src = c;
        f.dst = c + 1;
        f.bandwidth_mbps = 50 + static_cast<double>(rng.next_below(300));
        g.add_flow(f);
    }
    for (int c = 0; c < cores; ++c) {
        if (c % 7 == 0 || c % 3 != 0) continue;
        Flow_spec f;
        f.src = c;
        f.dst = (c / 7) * 7; // nearest memory below
        f.bandwidth_mbps = 100 + static_cast<double>(rng.next_below(400));
        g.add_flow(f);
    }
    g.validate();
    return g;
}

Synthesis_spec spec_for(int cores)
{
    Synthesis_spec spec;
    spec.graph = synthetic_soc(cores, 99);
    spec.tech = make_technology_65nm();
    spec.min_switches = std::max(2, cores / 6);
    spec.max_switches = std::max(3, cores / 4);
    spec.max_switch_radix = 8;
    return spec;
}

void run_figure()
{
    bench::print_banner(
        "C10 / §6 — synthesis scalability",
        "the automated flow handles SoCs up to ~100 cores in interactive "
        "time (the reason the flow can replace manual design)");

    Text_table table{{"cores", "flows", "switch range", "feasible designs",
                      "best power(mW)"}};
    bool all_produced = true;
    for (const int cores : {12, 24, 48, 96}) {
        const Synthesis_spec spec = spec_for(cores);
        const auto result = synthesize_topologies(spec);
        double best_power = 0.0;
        if (!result.designs.empty())
            best_power = result.pick().metrics.power_mw;
        else
            all_produced = false;
        table.row()
            .add(cores)
            .add(spec.graph.flow_count())
            .add(std::to_string(spec.min_switches) + ".." +
                 std::to_string(spec.max_switches))
            .add(static_cast<std::uint64_t>(result.designs.size()))
            .add(best_power, 1);
    }
    table.print(std::cout);
    std::cout << "\n(wall-clock scaling measured by the google-benchmark "
                 "cases below)\n";
    bench::print_verdict(all_produced,
                         "feasible designs found at every scale up to 96 "
                         "cores");
}

void bm_synthesis(benchmark::State& state)
{
    const Synthesis_spec spec = spec_for(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = synthesize_topologies(spec);
        benchmark::DoNotOptimize(r);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_synthesis)
    ->Arg(12)
    ->Arg(24)
    ->Arg(48)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
