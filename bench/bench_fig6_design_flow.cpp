// Figure 6 — the iNoCs design tool flow: application spec (+floorplan)
// -> topology synthesis across switch counts and architectural parameters
// -> Pareto-optimal design points -> RTL + simulation-model generation.
//
// We run the full flow on a 26-core mobile-phone SoC (the §1 OMAP/Nomadik/
// X-Gold class of platform) and print the design space the paper's Fig. 6
// pipeline produces.
#include "bench_util.h"

#include "flow/design_flow.h"
#include "traffic/app_graphs.h"

using namespace noc;

namespace {

Flow_config mobile_flow()
{
    Flow_config cfg;
    cfg.spec.graph = make_mobile_soc_graph();
    cfg.spec.tech = make_technology_65nm();
    cfg.spec.operating_points = {{0.8, 32}, {1.0, 32}, {1.0, 64}};
    cfg.spec.min_switches = 4;
    cfg.spec.max_switches = 10;
    cfg.spec.max_switch_radix = 8;
    cfg.validation_warmup = 1'000;
    cfg.validation_cycles = 8'000;
    return cfg;
}

void run_figure()
{
    bench::print_banner(
        "F6 / Figure 6 — end-to-end NoC design flow",
        "spec + floorplan -> topologies with different switch counts -> "
        "Pareto points -> RTL + simulation models, validated");

    const auto result = run_design_flow(mobile_flow());
    std::cout << result.report << "\n";

    const bool shape = !result.synthesis.designs.empty() &&
                       result.pareto_indices.size() >= 2 &&
                       result.rtl_check.ok &&
                       result.validation.bandwidth_met &&
                       result.validation.latency_met;
    bench::print_verdict(
        shape,
        "flow yields a multi-point Pareto set, generated RTL passes its "
        "structural check, and the simulation model meets the spec");
}

void bm_full_design_flow(benchmark::State& state)
{
    Flow_config cfg = mobile_flow();
    cfg.validate_by_simulation = false; // time synthesis + RTL only
    for (auto _ : state) {
        auto r = run_design_flow(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(bm_full_design_flow)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    run_figure();
    return bench::run_benchmarks(argc, argv);
}
