// noc_top — terminal viewer for telemetry streams (src/telemetry).
//
// Reads a .noct stream file written by a Telemetry_sampler (bench_sweep
// --telemetry-dir, or any Noc_system with a sampler attached), decodes it
// and renders:
//
//   * the latest sample as a per-entry table (counter deltas vs the
//     previous sample), and
//   * a queue-depth heatmap over time for a name prefix/suffix selection
//     (default: router ".occ" gauges — buffered flits per router).
//
// Because the sampler flushes record-by-record and the decoder ignores a
// torn trailing record, the viewer can watch a live file while the
// simulation is still running:
//
//   ./noc_top telemetry/point_42.noct            # one-shot snapshot
//   ./noc_top --follow telemetry/point_42.noct   # live top-style refresh
//   ./noc_top --json telemetry/point_42.noct     # full decode as JSON
//   ./noc_top --heatmap link --suffix .occ FILE  # per-link heatmap
//
// Exit code 0 on a decodable stream, 1 on usage / unreadable / malformed.
#include "telemetry/heatmap.h"
#include "telemetry/sampler.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace noc;

namespace {

bool read_bytes(const std::string& path, std::vector<std::uint8_t>& out)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>{in},
               std::istreambuf_iterator<char>{});
    return true;
}

int usage()
{
    std::fprintf(
        stderr,
        "usage: noc_top [--json] [--follow] [--interval MS]\n"
        "               [--heatmap PREFIX] [--suffix SUFFIX] STREAM.noct\n"
        "\n"
        "  --json          dump the full decoded stream as JSON and exit\n"
        "  --follow        re-read and re-render until interrupted\n"
        "  --interval MS   refresh period for --follow (default 500)\n"
        "  --heatmap P     heatmap entry-name prefix (default \"router\")\n"
        "  --suffix S      heatmap entry-name suffix (default \".occ\")\n");
    return 1;
}

/// One rendered frame: latest-sample table plus the selected heatmap.
std::string render_frame(const Telemetry_stream& stream,
                         const std::string& prefix,
                         const std::string& suffix)
{
    std::string out = render_latest(stream);
    out += "\n";
    out += render_heatmap(stream, prefix, suffix);
    return out;
}

} // namespace

int main(int argc, char** argv)
{
    std::string path;
    std::string prefix = "router";
    std::string suffix = ".occ";
    bool json = false;
    bool follow = false;
    long interval_ms = 500;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json") {
            json = true;
        } else if (a == "--follow") {
            follow = true;
        } else if (a == "--interval" && i + 1 < argc) {
            interval_ms = std::strtol(argv[++i], nullptr, 10);
            if (interval_ms < 1) interval_ms = 1;
        } else if (a == "--heatmap" && i + 1 < argc) {
            prefix = argv[++i];
        } else if (a == "--suffix" && i + 1 < argc) {
            suffix = argv[++i];
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else {
            path = a;
        }
    }
    if (path.empty()) return usage();

    std::uint64_t last_rendered = ~std::uint64_t{0};
    do {
        std::vector<std::uint8_t> bytes;
        if (!read_bytes(path, bytes)) {
            std::fprintf(stderr, "noc_top: cannot read %s\n", path.c_str());
            return 1;
        }
        Telemetry_stream stream;
        try {
            stream = decode_telemetry_stream(bytes);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "noc_top: %s: %s\n", path.c_str(),
                         e.what());
            return 1;
        }
        if (json) {
            std::fputs(to_json(stream).c_str(), stdout);
            std::fputc('\n', stdout);
            return 0;
        }
        // In follow mode only redraw when a new record landed (the decoder
        // skips a torn tail, so record count is the stable progress mark).
        const std::uint64_t have = stream.records.size();
        if (!follow || have != last_rendered) {
            last_rendered = have;
            if (follow) std::fputs("\x1b[2J\x1b[H", stdout); // clear screen
            std::printf("%s  (%llu sample(s), period %llu cycles)\n\n",
                        path.c_str(), static_cast<unsigned long long>(have),
                        static_cast<unsigned long long>(stream.period));
            std::fputs(render_frame(stream, prefix, suffix).c_str(),
                       stdout);
            std::fflush(stdout);
        }
        if (follow)
            std::this_thread::sleep_for(
                std::chrono::milliseconds{interval_ms});
    } while (follow);
    return 0;
}
