// noc_farm — fault-tolerant sweep farm driver (src/farm/orchestrator.h).
//
// Shards the bench_sweep acceptance spec's point grid into slices, runs
// each slice in a crash-isolated `bench_sweep --points a..b` worker
// process, survives worker crashes / hangs / torn writes (retry with
// exponential backoff, heartbeat hang detection, straggler re-dispatch,
// atomic publication), and reassembles the merged point set — byte-
// identical to a fault-free single-process `bench_sweep --points 0..N`
// run, which is the acceptance check CI performs with `cmp`.
//
//   ./noc_farm --smoke --workers 4 --out-dir farm_out \
//              --chaos kill=0.3,hang=0.2,torn=0.2
//   ./noc_farm --resume farm_out        # after an orchestrator crash:
//                                       # trusts validated slices, re-runs
//                                       # only the gaps
//
// `--ref FILE` compares the merged bytes against FILE (the single-process
// run's output) and fails the verdict on any difference. `--bench PATH`
// records the farm's robustness figures (wall time, retries, stragglers,
// chaos survival) for cross-PR trending — BENCH_farm.json at the repo
// root is committed from a fault-free full run plus a chaos smoke check.
#include "explore/slice_io.h"
#include "farm/orchestrator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

using namespace noc;

namespace {

bool read_whole(const std::string& path, std::string& out)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>{in},
               std::istreambuf_iterator<char>{});
    return true;
}

/// Ask the worker binary for the grid size and protocol fingerprints
/// (`bench_sweep --grid-total`): the farm sizes its slices from the
/// worker's own answer, so the two can never disagree about the grid.
bool probe_worker(const std::string& worker_bin, bool smoke,
                  std::uint32_t& total, std::string& spec,
                  std::string& budget)
{
    const std::string cmd =
        worker_bin + (smoke ? " --smoke" : "") + " --grid-total";
    std::FILE* p = ::popen(cmd.c_str(), "r");
    if (p == nullptr) return false;
    char line[512] = {0};
    const bool got = std::fgets(line, sizeof line, p) != nullptr;
    const int rc = ::pclose(p);
    if (!got || rc != 0) return false;
    char spec_buf[256] = {0};
    char budget_buf[128] = {0};
    unsigned long t = 0;
    if (std::sscanf(line, "%lu %255s %127s", &t, spec_buf, budget_buf) != 3)
        return false;
    total = static_cast<std::uint32_t>(t);
    spec = spec_buf;
    budget = budget_buf;
    return total > 0;
}

int fail_usage(const char* why)
{
    std::fprintf(
        stderr,
        "noc_farm: %s\n"
        "usage: noc_farm [--smoke] [--workers N] [--slice-points K]\n"
        "                [--out-dir DIR | --resume DIR]\n"
        "                [--worker-bin PATH]\n"
        "                [--chaos kill=p,hang=p,torn=p[,seed=s][,cap=n]]\n"
        "                [--retries N] [--backoff-ms B]\n"
        "                [--heartbeat-timeout-ms T] [--straggler-after-ms S]\n"
        "                [--max-wall-s W] [--merged PATH] [--ref FILE]\n"
        "                [--bench PATH] [--quiet]\n",
        why);
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    Farm_config cfg;
    bool smoke = false;
    std::string worker_bin = "./bench_sweep";
    std::string ref_path;
    std::string bench_path;
    cfg.out_dir = "farm_out";
    cfg.workers = 4;
    cfg.slice_points = 3;
    cfg.retry = Retry_policy{6, 100};
    cfg.heartbeat_timeout_s = 5.0;
    cfg.poll_interval_s = 0.01;
    cfg.straggler_after_s = 20.0;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char* name) {
            return std::strcmp(argv[i], name) == 0;
        };
        const auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg("--smoke")) {
            smoke = true;
        } else if (arg("--workers")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--workers needs a count");
            cfg.workers = static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg("--slice-points")) {
            const char* v = value();
            if (v == nullptr)
                return fail_usage("--slice-points needs a count");
            cfg.slice_points = static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg("--out-dir")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--out-dir needs a path");
            cfg.out_dir = v;
        } else if (arg("--resume")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--resume needs a dir");
            cfg.out_dir = v;
            cfg.resume = true;
        } else if (arg("--worker-bin")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--worker-bin needs a path");
            worker_bin = v;
        } else if (arg("--chaos")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--chaos needs a spec");
            const std::string err = parse_chaos_spec(v, cfg.chaos);
            if (!err.empty()) return fail_usage(err.c_str());
        } else if (arg("--retries")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--retries needs a count");
            cfg.retry.max_attempts =
                static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg("--backoff-ms")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--backoff-ms needs ms");
            cfg.retry.backoff_ms = static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg("--heartbeat-timeout-ms")) {
            const char* v = value();
            if (v == nullptr)
                return fail_usage("--heartbeat-timeout-ms needs ms");
            cfg.heartbeat_timeout_s = std::atoi(v) / 1000.0;
        } else if (arg("--straggler-after-ms")) {
            const char* v = value();
            if (v == nullptr)
                return fail_usage("--straggler-after-ms needs ms");
            cfg.straggler_after_s = std::atoi(v) / 1000.0;
        } else if (arg("--max-wall-s")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--max-wall-s needs secs");
            cfg.max_wall_s = std::atof(v);
        } else if (arg("--merged")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--merged needs a path");
            cfg.merged_path = v;
        } else if (arg("--ref")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--ref needs a file");
            ref_path = v;
        } else if (arg("--bench")) {
            const char* v = value();
            if (v == nullptr) return fail_usage("--bench needs a path");
            bench_path = v;
        } else if (arg("--quiet")) {
            cfg.quiet = true;
        } else {
            return fail_usage(
                (std::string{"unknown argument "} + argv[i]).c_str());
        }
    }

    std::uint32_t total = 0;
    if (!probe_worker(worker_bin, smoke, total, cfg.expect_spec,
                      cfg.expect_budget)) {
        std::fprintf(stderr,
                     "noc_farm: cannot probe worker '%s --grid-total' — "
                     "is the worker binary next to noc_farm?\n",
                     worker_bin.c_str());
        return 1;
    }
    cfg.total_points = total;
    cfg.worker_argv = {worker_bin};
    if (smoke) cfg.worker_argv.push_back("--smoke");
    for (const char* a : {"--points", "{begin}..{end}", "--slice-dir",
                          "{dir}", "--heartbeat", "{heartbeat}",
                          "--chaos-act", "{chaos}"})
        cfg.worker_argv.emplace_back(a);

    std::printf("noc_farm: %u points, %u-point slices, %u workers, "
                "retry budget %u (backoff %ums), chaos kill=%.2f "
                "hang=%.2f torn=%.2f%s\n",
                cfg.total_points, cfg.slice_points, cfg.workers,
                cfg.retry.max_attempts, cfg.retry.backoff_ms,
                cfg.chaos.p_kill, cfg.chaos.p_hang, cfg.chaos.p_torn,
                cfg.resume ? " [RESUME]" : "");

    const Farm_report r = run_farm(cfg);

    std::printf(
        "\nfarm: %s in %.2fs\n"
        "  slices %u/%u published, %u attempts (%u retries, %u straggler "
        "re-dispatches, %u duplicates cancelled)\n"
        "  failures survived: %u hangs detected; chaos injected: %u kill, "
        "%u hang, %u torn\n"
        "  checkpoint: %u slices trusted on resume, %u invalid re-run, %u "
        "tmp/beat files swept, %u duplicate records deduped\n",
        r.success ? "COMPLETE" : ("FAILED — " + r.error).c_str(),
        r.wall_seconds, r.published, r.slices, r.attempts, r.retries,
        r.stragglers_redispatched, r.duplicates_cancelled,
        r.hangs_detected, r.chaos_killed, r.chaos_hung, r.chaos_torn,
        r.resumed_trusted, r.resumed_invalid, r.tmp_ignored,
        static_cast<std::uint32_t>(r.duplicate_records));
    if (!r.coverage.empty()) std::printf("  %s\n", r.coverage.c_str());

    // Per-slice ledger: every slice's dispatch/failure/straggler history
    // and how it ultimately got its bytes (which attempt, or the resume
    // checkpoint) — the table form of Farm_report::slice_stats.
    if (!r.slice_stats.empty()) {
        std::printf("\n  %-14s %9s %6s %6s %-22s %8s\n", "slice",
                    "attempts", "fails", "dups", "published by", "wall(s)");
        for (const auto& s : r.slice_stats) {
            const std::string range = "[" + std::to_string(s.begin) + ".." +
                                      std::to_string(s.end) + ")";
            const std::string how =
                s.trusted_on_resume
                    ? "resume checkpoint"
                    : (s.published
                           ? "attempt " +
                                 std::to_string(s.published_by_attempt)
                           : "NOT PUBLISHED");
            std::printf("  %-14s %9u %6u %6u %-22s %8.2f\n", range.c_str(),
                        s.dispatches, s.failures, s.straggler_dups,
                        how.c_str(), s.wall_seconds);
        }
    }

    bool ref_identical = true;
    if (r.success && !ref_path.empty()) {
        std::string merged, ref;
        ref_identical = read_whole(r.merged_path, merged) &&
                        read_whole(ref_path, ref) && merged == ref;
        std::printf("  merged vs %s: %s\n", ref_path.c_str(),
                    ref_identical ? "byte-identical"
                                  : "DIFFERENT (determinism violation)");
    }

    const bool ok = r.success && ref_identical;
    if (!bench_path.empty()) {
        std::string json =
            "{\n  \"bench\": \"farm\",\n  \"smoke\": " +
            std::string{smoke ? "true" : "false"} +
            ",\n  \"total_points\": " + std::to_string(cfg.total_points) +
            ",\n  \"slice_points\": " + std::to_string(cfg.slice_points) +
            ",\n  \"workers\": " + std::to_string(cfg.workers) +
            ",\n  \"hardware_threads\": " +
            std::to_string(std::thread::hardware_concurrency()) +
            ",\n  \"retry_max_attempts\": " +
            std::to_string(cfg.retry.max_attempts) +
            ",\n  \"retry_backoff_ms\": " +
            std::to_string(cfg.retry.backoff_ms) +
            ",\n  \"chaos\": {\"kill\": " + shortest_double(cfg.chaos.p_kill) +
            ", \"hang\": " + shortest_double(cfg.chaos.p_hang) +
            ", \"torn\": " + shortest_double(cfg.chaos.p_torn) +
            ", \"seed\": " + std::to_string(cfg.chaos.seed) +
            ", \"attempt_cap\": " + std::to_string(cfg.chaos.attempt_cap) +
            "},\n  \"chaos_injected\": {\"kill\": " +
            std::to_string(r.chaos_killed) +
            ", \"hang\": " + std::to_string(r.chaos_hung) +
            ", \"torn\": " + std::to_string(r.chaos_torn) +
            "},\n  \"slices\": " + std::to_string(r.slices) +
            ",\n  \"attempts\": " + std::to_string(r.attempts) +
            ",\n  \"retries\": " + std::to_string(r.retries) +
            ",\n  \"hangs_detected\": " + std::to_string(r.hangs_detected) +
            ",\n  \"stragglers_redispatched\": " +
            std::to_string(r.stragglers_redispatched) +
            ",\n  \"duplicates_cancelled\": " +
            std::to_string(r.duplicates_cancelled) +
            ",\n  \"resumed_trusted\": " +
            std::to_string(r.resumed_trusted) +
            ",\n  \"tmp_ignored\": " + std::to_string(r.tmp_ignored) +
            ",\n  \"wall_seconds\": " + shortest_double(r.wall_seconds) +
            ",\n  \"merged_identical_to_ref\": " +
            (ref_path.empty() ? "null"
                              : (ref_identical ? "true" : "false")) +
            ",\n  \"chaos_survived\": " +
            (cfg.chaos.any() && ok ? "true"
                                   : (cfg.chaos.any() ? "false" : "null")) +
            ",\n  \"success\": " + (ok ? "true" : "false") + "\n}\n";
        const std::string err = write_file_atomic(bench_path, json);
        if (err.empty()) std::printf("wrote %s\n", bench_path.c_str());
        else std::fprintf(stderr, "%s\n", err.c_str());
    }

    std::printf("\n[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH",
                ok ? "farm completed; merged result verified"
                   : "farm did not converge to a verified merged result");
    return ok ? 0 : 1;
}
