// Telemetry_sampler — the async half of the live telemetry service: a
// background thread that encodes periodic snapshots of a Telemetry_registry
// into a byte-deterministic binary stream while the simulation runs.
//
// Division of labour (the mgsim monitor/binarysampler pattern):
//
//   * CAPTURE happens on the simulation thread, at sequential points only.
//     Noc_system::attach_sampler splits its kernel runs at the sampler's
//     next_sample_at() cycles, so sample() always observes the registry at
//     an exact multiple of the period — the sample INDEX and CYCLE are
//     pure functions of the simulated run, independent of wall time, outer
//     run() chunking, worker count or how fast the encoder drains.
//   * ENCODING and I/O happen on the background thread: sample() hands the
//     captured vector to a mutex-guarded FIFO and returns; the encoder
//     appends records to the in-memory stream (and, when streaming to a
//     file, writes + flushes so a live viewer — tools/noc_top — can tail
//     it mid-run).
//
// Determinism: records are encoded in FIFO order, each holding only the
// sample index, the simulated cycle and the captured values — wall-clock
// time never enters the stream. Two runs of the same configuration on the
// same schedule therefore produce byte-identical streams. (Across
// schedules, kernel.* scheduling counters may differ; see the contract in
// telemetry/registry.h.)
//
// Fault-determinism caveat for integrators: splitting a kernel run at a
// sample cycle is NOT the same as adding a fault-engine sequential point.
// Noc_system services fault events on its own cadence (fault stops, drain
// chunks) and runs the sampler splits strictly INSIDE those chunks, so
// attaching a sampler can never change when a reroute completes — sampled
// and unsampled runs stay bit-identical.
//
// Binary stream layout (all integers little-endian):
//   header:  magic "NOCT" | u32 version (1) | u64 period | u32 entry_count
//            then per entry: u8 kind | u32 shard | u16 name_len | name bytes
//   records: u64 sample_index | u64 cycle | entry_count x u64 values
#pragma once

#include "common/types.h"
#include "telemetry/registry.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace noc {

class Telemetry_sampler {
public:
    /// Sample every `period` cycles (first sample at cycle `period`). The
    /// registry must outlive the sampler or stop() must be called first.
    /// When `stream_path` is non-empty the stream is also written (and
    /// flushed record-by-record) to that file for live viewing.
    explicit Telemetry_sampler(const Telemetry_registry* registry,
                               Cycle period, std::string stream_path = {});
    ~Telemetry_sampler();
    Telemetry_sampler(const Telemetry_sampler&) = delete;
    Telemetry_sampler& operator=(const Telemetry_sampler&) = delete;

    /// Next cycle a sample is due at. Noc_system splits kernel runs here.
    [[nodiscard]] Cycle next_sample_at() const { return next_; }

    /// Capture one sample at cycle `now` (must be called at a sequential
    /// point, from the thread that calls kernel run()). Advances
    /// next_sample_at() past `now`. Cheap: one registry capture plus one
    /// queue push; encoding happens on the background thread.
    void sample(Cycle now);

    /// Drain the queue, stop the encoder thread and close the file stream.
    /// Idempotent. After stop() the full stream is available via stream().
    void stop();

    /// Samples captured so far.
    [[nodiscard]] std::uint64_t sample_count() const { return sample_index_; }

    /// The encoded stream. Call only after stop() (the encoder owns the
    /// buffer while running).
    [[nodiscard]] const std::vector<std::uint8_t>& stream() const
    {
        return stream_;
    }

private:
    void encoder_main();
    void encode_header();
    void encode_record(std::uint64_t index, Cycle cycle,
                       const std::vector<std::uint64_t>& values);
    void append_u64(std::uint64_t v);
    void flush_to_file(std::size_t from);

    struct Pending_sample {
        std::uint64_t index = 0;
        Cycle cycle = 0;
        std::vector<std::uint64_t> values;
    };

    const Telemetry_registry* registry_;
    Cycle period_;
    Cycle next_;
    std::uint64_t sample_index_ = 0;
    std::string stream_path_;

    std::vector<std::uint8_t> stream_; ///< encoder thread only (until stop)
    std::size_t flushed_ = 0;          ///< stream_ bytes written to the file

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Pending_sample> queue_; ///< guarded by mutex_
    bool shutdown_ = false;            ///< guarded by mutex_
    bool stopped_ = false;             ///< caller thread only
    std::thread encoder_;
};

// --- stream decoding (noc_top, heatmaps, tests) -----------------------------

/// A fully decoded telemetry stream.
struct Telemetry_stream {
    struct Entry {
        std::string name;
        Telemetry_registry::Kind kind = Telemetry_registry::Kind::counter;
        std::uint32_t shard = 0;
    };
    struct Record {
        std::uint64_t index = 0;
        Cycle cycle = 0;
        std::vector<std::uint64_t> values; ///< parallel to entries
    };
    Cycle period = 0;
    std::vector<Entry> entries;
    std::vector<Record> records;
};

/// Decode `bytes`; throws std::runtime_error on a malformed header. A
/// trailing partial record (a live file caught mid-write) is ignored, so
/// tailing viewers can decode snapshots of a growing file.
[[nodiscard]] Telemetry_stream
decode_telemetry_stream(const std::vector<std::uint8_t>& bytes);

/// JSON rendering of a decoded stream (entries + records), deterministic.
[[nodiscard]] std::string to_json(const Telemetry_stream& stream);

/// Human-readable per-entry table of the LAST record (deltas vs the
/// previous record for counters), the noc_top "live" view.
[[nodiscard]] std::string render_latest(const Telemetry_stream& stream);

} // namespace noc
