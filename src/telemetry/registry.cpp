#include "telemetry/registry.h"

namespace noc {

std::size_t Telemetry_registry::find(const std::string& name) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].name == name) return i;
    return npos;
}

std::size_t Telemetry_registry::entry_count_in_shard(std::uint32_t s) const
{
    std::size_t n = 0;
    for (const auto& e : entries_)
        if (e.shard == s) ++n;
    return n;
}

std::vector<std::size_t>
Telemetry_registry::entries_in_shard(std::uint32_t s) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].shard == s) out.push_back(i);
    return out;
}

std::vector<std::uint64_t> Telemetry_registry::capture() const
{
    std::vector<std::uint64_t> out;
    capture_into(out);
    return out;
}

void Telemetry_registry::capture_into(std::vector<std::uint64_t>& out) const
{
    out.resize(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) out[i] = entries_[i].read();
}

} // namespace noc
