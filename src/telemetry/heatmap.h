// Queue-depth heatmaps over time — a regression-grade consumer of the
// telemetry stream. Rows are samples (one per record), columns are the
// registry entries matching a name prefix+suffix (e.g. "router"+".occ" for
// per-router buffered flits, "link"+".occ" for per-channel occupancy), and
// each cell is a single scale character: '.' for zero, '1'..'9' linearly up
// to the observed maximum, '#' for the maximum itself. The render is a pure
// function of the decoded stream, so it is byte-deterministic — the tests
// gate on it across kernel schedules (gauge entries are simulation state;
// see the determinism contract in telemetry/registry.h).
#pragma once

#include "telemetry/sampler.h"

#include <string>

namespace noc {

/// Render the entries whose names start with `prefix` and end with
/// `suffix` (either may be empty = match all). Column order is entry
/// registration order; the legend line maps columns to entry names.
[[nodiscard]] std::string render_heatmap(const Telemetry_stream& stream,
                                         const std::string& prefix,
                                         const std::string& suffix);

} // namespace noc
