#include "telemetry/window.h"

#include <stdexcept>

namespace noc {

Telemetry_window::Telemetry_window(const Telemetry_registry* source,
                                   std::uint32_t ewma_shift)
    : source_{source}, shift_{ewma_shift}
{
    if (source_ == nullptr)
        throw std::invalid_argument{"Telemetry_window: null source"};
    if (shift_ >= 48)
        throw std::invalid_argument{
            "Telemetry_window: ewma_shift out of range"};
    previous_.assign(source_->entry_count(), 0);
    rates_.assign(source_->entry_count(), 0);
    ewma_.assign(source_->entry_count(), Ewma_q16{});
}

void Telemetry_window::advance()
{
    source_->capture_into(scratch_);
    if (scratch_.size() != previous_.size())
        throw std::logic_error{
            "Telemetry_window: source registry changed size"};
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
        const bool counter = source_->entry(i).kind ==
                             Telemetry_registry::Kind::counter;
        // Counters window their delta (the previous capture is the window
        // base; the implicit base before the first advance is 0, matching
        // counters that start at 0 at cycle 0). Gauges pass their level
        // through — the EWMA does the smoothing.
        rates_[i] = counter ? scratch_[i] - previous_[i] : scratch_[i];
        ewma_[i].step(rates_[i], shift_);
        previous_[i] = scratch_[i];
    }
    ++windows_;
}

std::uint64_t Telemetry_window::rate(std::size_t i) const
{
    return rates_.at(i);
}

std::uint64_t Telemetry_window::ewma(std::size_t i) const
{
    return ewma_.at(i).value();
}

void Telemetry_window::register_into(Telemetry_registry& out) const
{
    for (std::size_t i = 0; i < previous_.size(); ++i) {
        const Telemetry_registry::Entry& e = source_->entry(i);
        if (e.kind == Telemetry_registry::Kind::counter)
            out.add_gauge(e.name + ".rate", e.shard,
                          [this, i] { return rate(i); });
        out.add_gauge(e.name + ".ewma", e.shard,
                      [this, i] { return ewma(i); });
    }
}

Telemetry_stream windowed_stream(const Telemetry_stream& in,
                                 std::uint32_t ewma_shift)
{
    if (ewma_shift >= 48)
        throw std::invalid_argument{
            "windowed_stream: ewma_shift out of range"};
    Telemetry_stream out;
    out.period = in.period;

    // Derived entry layout: source order, counters contributing a ".rate"
    // then a ".ewma" column, gauges a ".ewma" column only.
    std::vector<bool> is_counter(in.entries.size(), false);
    for (std::size_t i = 0; i < in.entries.size(); ++i) {
        const auto& e = in.entries[i];
        is_counter[i] = e.kind == Telemetry_registry::Kind::counter;
        if (is_counter[i])
            out.entries.push_back({e.name + ".rate",
                                   Telemetry_registry::Kind::gauge, e.shard});
        out.entries.push_back(
            {e.name + ".ewma", Telemetry_registry::Kind::gauge, e.shard});
    }

    std::vector<std::uint64_t> previous(in.entries.size(), 0);
    std::vector<Ewma_q16> ewma(in.entries.size());
    out.records.reserve(in.records.size());
    for (const auto& rec : in.records) {
        if (rec.values.size() != in.entries.size())
            throw std::invalid_argument{
                "windowed_stream: record width mismatch"};
        Telemetry_stream::Record d;
        d.index = rec.index;
        d.cycle = rec.cycle;
        d.values.reserve(out.entries.size());
        for (std::size_t i = 0; i < rec.values.size(); ++i) {
            const std::uint64_t rate =
                is_counter[i] ? rec.values[i] - previous[i] : rec.values[i];
            ewma[i].step(rate, ewma_shift);
            if (is_counter[i]) d.values.push_back(rate);
            d.values.push_back(ewma[i].value());
            previous[i] = rec.values[i];
        }
        out.records.push_back(std::move(d));
    }
    return out;
}

} // namespace noc
