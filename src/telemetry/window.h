// Windowed / derivative telemetry — rates and EWMA over the counter
// surface, so heatmaps can show FLOW, not just level.
//
// The registry's counters are monotonic totals: a heatmap over
// "ni3.injected" shows cumulative work, which saturates the scale and hides
// where traffic is moving NOW. This module derives per-window views:
//
//   * rate — the counter's delta over the last completed window (flits
//     routed in the last N cycles, not since boot);
//   * ewma — an exponentially weighted moving average with alpha = 1/2^k,
//     computed in Q16 fixed point so the smoothed series is exact integer
//     arithmetic, bit-identical across platforms and kernel schedules
//     (floating-point EWMA would accumulate rounding that depends on the
//     sample count). Counters smooth their rate; gauges smooth their level.
//
// Two consumers, same math:
//
//   * Telemetry_window wraps a live registry: advance() captures the source
//     at a sequential point and updates the window state; register_into()
//     publishes "<name>.rate" / "<name>.ewma" entries into a second
//     registry, so a sampler can stream derivatives like any other entry.
//   * windowed_stream() post-processes an already decoded .noct stream into
//     a derived stream with the same record cycles, feeding render_heatmap
//     directly: render_heatmap(windowed_stream(s), "router", ".rate") is
//     the flow view of the classic occupancy heatmap.
//
// Determinism: both paths are pure integer functions of the captured
// values, so the derived entries inherit the source's schedule-invariance
// (kernel.* scheduling counters stay schedule-sensitive, exactly as in the
// source — see the contract in telemetry/registry.h).
#pragma once

#include "common/types.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"

#include <cstdint>
#include <vector>

namespace noc {

/// One EWMA state cell: Q16 fixed point, alpha = 1/2^shift.
/// step() folds a new observation in; value() rounds back to integer.
struct Ewma_q16 {
    std::uint64_t q16 = 0;
    bool primed = false;

    void step(std::uint64_t observation, std::uint32_t shift)
    {
        const std::uint64_t obs_q16 = observation << 16;
        if (!primed) {
            q16 = obs_q16;
            primed = true;
            return;
        }
        // q16 += (obs - q16) / 2^shift with the division computed on the
        // magnitude, so the pull toward the observation never overshoots
        // regardless of sign.
        if (obs_q16 >= q16)
            q16 += (obs_q16 - q16) >> shift;
        else
            q16 -= (q16 - obs_q16) >> shift;
    }

    [[nodiscard]] std::uint64_t value() const { return q16 >> 16; }
};

/// Live windowed view over a Telemetry_registry. Capture the source with
/// advance() at sequential points (typically every sampler period); read
/// the derived values directly or publish them into a second registry.
/// Derived-entry order is source registration order: for every source
/// counter a ".rate" then a ".ewma" entry, for every source gauge a
/// ".ewma" entry only (a level's delta can go negative, which a uint64
/// surface cannot represent — smooth the level instead).
class Telemetry_window {
public:
    /// `ewma_shift` sets alpha = 1/2^shift (default 2 → alpha 0.25). The
    /// source registry must outlive the window.
    explicit Telemetry_window(const Telemetry_registry* source,
                              std::uint32_t ewma_shift = 2);

    /// Capture the source and roll the window forward. Sequential points
    /// only (same contract as Telemetry_registry::capture).
    void advance();

    /// Windows completed so far (rates are 0 until the first advance()).
    [[nodiscard]] std::uint64_t windows() const { return windows_; }

    /// Last window's delta of source counter entry `i` (source entry
    /// index). Gauges report their last sampled level.
    [[nodiscard]] std::uint64_t rate(std::size_t i) const;

    /// EWMA (rounded to integer) of source entry `i`'s rate (counters) or
    /// level (gauges).
    [[nodiscard]] std::uint64_t ewma(std::size_t i) const;

    /// Publish the derived entries into `out` as gauges named
    /// "<source-name>.rate" / "<source-name>.ewma" (shard ownership is
    /// copied from the source entry; reads refer to this window's state, so
    /// the window must outlive `out`'s consumers).
    void register_into(Telemetry_registry& out) const;

private:
    const Telemetry_registry* source_;
    std::uint32_t shift_;
    std::uint64_t windows_ = 0;
    std::vector<std::uint64_t> previous_; ///< last captured values
    std::vector<std::uint64_t> rates_;    ///< last window's deltas/levels
    std::vector<Ewma_q16> ewma_;
    mutable std::vector<std::uint64_t> scratch_;
};

/// Derive a windowed stream from a decoded one: every source counter entry
/// becomes "<name>.rate" (per-record delta; the first record's rate is its
/// value — counters start at 0) and "<name>.ewma"; every gauge becomes
/// "<name>.ewma" of its level. All derived entries are gauges. Records keep
/// their cycles/indices, so the result feeds render_heatmap directly.
[[nodiscard]] Telemetry_stream windowed_stream(const Telemetry_stream& in,
                                               std::uint32_t ewma_shift = 2);

} // namespace noc
