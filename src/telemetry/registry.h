// Telemetry_registry — the counter surface of the live telemetry service.
//
// Components REGISTER named exact-integer counters and gauges; consumers
// (the async Telemetry_sampler, heatmap renderers, ad-hoc dumps) CAPTURE
// the whole surface in one call. Registration hands the registry a
// read-function over a counter the component already maintains — the
// registry never owns counter storage and never sits on the simulation hot
// path. Noc_system::attach_telemetry populates a registry with the full
// metric surface of one system: per-channel occupancy, per-NI
// injection/ejection/replay, per-router routed/occupancy/blocked, kernel
// scheduling counters (idle-shard skips, skip-ahead regions, cross-shard
// mailbox wakes) and flit-pool liveness.
//
// ---------------------------------------------------------------------------
// Threading and determinism contract (mirrors sim/kernel.h)
//
// * Zero hot-path cost, enabled or not. The probe discipline of
//   arch/probe.h is one predictable branch per hop when disabled; the
//   registry is stricter — it is PULL-based, so there is no per-cycle cost
//   at all. Every registered read-function reads a counter the component
//   maintains anyway (channel occupancy, Link_sender::flits_sent, router
//   flits_routed, ...). Attaching a registry therefore cannot perturb
//   simulation state: a telemetry-attached run is bit-identical to a bare
//   one on the reference, activity-gated and sharded schedules alike (the
//   KernelEquivalence suite proves it).
//
// * capture() is legal ONLY at sequential points — between two kernel
//   run() calls, on the thread that calls run(). At a sequential point
//   every shard worker is parked at the job barrier and all phase-2 commits
//   are published (the same happens-before edge the fault engine relies
//   on), so reading per-shard counters needs no synchronization and is
//   TSan-clean by construction. Calling capture() from inside a phase, or
//   from any other thread, races with the shard workers and is undefined.
//
// * Shard ownership is metadata, not synchronization. Each entry records
//   the shard that WRITES its underlying counter (the channel's writer
//   shard, the NI's/router's registration shard, 0 for global kernel
//   state). Consumers use it to slice the surface spatially (per-shard
//   load views, partition debugging); it grants no license to read an
//   entry mid-run from the owning thread either — capture is sequential,
//   full stop.
//
// * Determinism. Entries are captured in registration order, and
//   Noc_system registers in fixed topology order, so two captures of the
//   same system at the same cycle yield identical vectors, and the sampler
//   stream built from them is byte-deterministic. Values that describe
//   SIMULATION state (occupancy, injected/ejected flits, routed flits) are
//   schedule-invariant — identical across kernel modes and shard counts at
//   any sequential point. Values that describe SCHEDULING (kernel.* skip
//   and wake counters, router blocked-sleep entries, and pool.high_water —
//   an INTRA-cycle allocation peak, sensitive to the within-cycle
//   component order schedules legitimately permute) differ between
//   schedules for the same bit-identical run; consumers that diff streams
//   across schedules must filter to the simulation-state subset.
//
// * Counter vs gauge is display semantics only: a counter is monotonic
//   over a run (rates are meaningful), a gauge is an instantaneous level
//   (occupancy heatmaps are meaningful). Both capture as uint64.
#pragma once

#include "common/types.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace noc {

class Telemetry_registry {
public:
    enum class Kind : std::uint8_t {
        counter, ///< monotonic total (flits routed, packets injected)
        gauge,   ///< instantaneous level (queue depth, pool liveness)
    };

    /// One registered metric: a name, the shard that writes the underlying
    /// counter, and the read-function that samples it.
    struct Entry {
        std::string name;
        Kind kind = Kind::counter;
        std::uint32_t shard = 0;
        std::function<std::uint64_t()> read;
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Register a monotonic counter owned by shard `shard`. Names should be
    /// stable and unique ("link3.flits", "ni5.injected", "kernel.skips");
    /// duplicates are allowed but make find() ambiguous.
    void add_counter(std::string name, std::uint32_t shard,
                     std::function<std::uint64_t()> read)
    {
        entries_.push_back(
            {std::move(name), Kind::counter, shard, std::move(read)});
    }

    /// Register an instantaneous gauge owned by shard `shard`.
    void add_gauge(std::string name, std::uint32_t shard,
                   std::function<std::uint64_t()> read)
    {
        entries_.push_back(
            {std::move(name), Kind::gauge, shard, std::move(read)});
    }

    [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
    [[nodiscard]] const Entry& entry(std::size_t i) const
    {
        return entries_.at(i);
    }

    /// Index of the first entry named `name`, or npos.
    [[nodiscard]] std::size_t find(const std::string& name) const;

    /// Number of entries whose underlying counter is written by shard `s`.
    [[nodiscard]] std::size_t entry_count_in_shard(std::uint32_t s) const;

    /// Indices of the entries owned by shard `s`, in registration order.
    [[nodiscard]] std::vector<std::size_t>
    entries_in_shard(std::uint32_t s) const;

    /// Read every entry in registration order. Sequential points only (see
    /// the contract above).
    [[nodiscard]] std::vector<std::uint64_t> capture() const;

    /// capture() into a caller-owned buffer (resized to entry_count());
    /// lets a periodic sampler reuse one allocation.
    void capture_into(std::vector<std::uint64_t>& out) const;

    /// Read one entry by index. Sequential points only.
    [[nodiscard]] std::uint64_t read(std::size_t i) const
    {
        return entries_.at(i).read();
    }

    void clear() { entries_.clear(); }

private:
    std::vector<Entry> entries_;
};

} // namespace noc
