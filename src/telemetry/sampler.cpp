#include "telemetry/sampler.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace noc {

namespace {

constexpr std::uint8_t stream_magic[4] = {'N', 'O', 'C', 'T'};
constexpr std::uint32_t stream_version = 1;

std::uint64_t read_u64(const std::vector<std::uint8_t>& b, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[at + static_cast<std::size_t>(i)];
    return v;
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& b, std::size_t at)
{
    return static_cast<std::uint32_t>(b[at]) |
           static_cast<std::uint32_t>(b[at + 1]) << 8 |
           static_cast<std::uint32_t>(b[at + 2]) << 16 |
           static_cast<std::uint32_t>(b[at + 3]) << 24;
}

} // namespace

Telemetry_sampler::Telemetry_sampler(const Telemetry_registry* registry,
                                     Cycle period, std::string stream_path)
    : registry_{registry},
      period_{period == 0 ? 1 : period},
      next_{period == 0 ? 1 : period},
      stream_path_{std::move(stream_path)}
{
    encode_header();
    flush_to_file(0);
    encoder_ = std::thread{[this] { encoder_main(); }};
}

Telemetry_sampler::~Telemetry_sampler()
{
    stop();
}

void Telemetry_sampler::sample(Cycle now)
{
    Pending_sample s;
    s.index = sample_index_++;
    s.cycle = now;
    registry_->capture_into(s.values);
    while (next_ <= now) next_ += period_;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        queue_.push_back(std::move(s));
    }
    cv_.notify_one();
}

void Telemetry_sampler::stop()
{
    if (stopped_) return;
    stopped_ = true;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        shutdown_ = true;
    }
    cv_.notify_one();
    if (encoder_.joinable()) encoder_.join();
}

void Telemetry_sampler::encoder_main()
{
    for (;;) {
        Pending_sample s;
        {
            std::unique_lock<std::mutex> lock{mutex_};
            cv_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
            if (queue_.empty()) return; // shutdown and drained
            s = std::move(queue_.front());
            queue_.pop_front();
        }
        const std::size_t before = stream_.size();
        encode_record(s.index, s.cycle, s.values);
        flush_to_file(before);
    }
}

void Telemetry_sampler::append_u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        stream_.push_back(static_cast<std::uint8_t>(v & 0xff));
        v >>= 8;
    }
}

void Telemetry_sampler::encode_header()
{
    stream_.insert(stream_.end(), std::begin(stream_magic),
                   std::end(stream_magic));
    std::uint32_t ver = stream_version;
    for (int i = 0; i < 4; ++i) {
        stream_.push_back(static_cast<std::uint8_t>(ver & 0xff));
        ver >>= 8;
    }
    append_u64(period_);
    std::uint32_t n = static_cast<std::uint32_t>(registry_->entry_count());
    for (int i = 0; i < 4; ++i) {
        stream_.push_back(static_cast<std::uint8_t>(n & 0xff));
        n >>= 8;
    }
    for (std::size_t e = 0; e < registry_->entry_count(); ++e) {
        const auto& entry = registry_->entry(e);
        stream_.push_back(static_cast<std::uint8_t>(entry.kind));
        std::uint32_t shard = entry.shard;
        for (int i = 0; i < 4; ++i) {
            stream_.push_back(static_cast<std::uint8_t>(shard & 0xff));
            shard >>= 8;
        }
        const auto len = static_cast<std::uint16_t>(entry.name.size());
        stream_.push_back(static_cast<std::uint8_t>(len & 0xff));
        stream_.push_back(static_cast<std::uint8_t>(len >> 8));
        stream_.insert(stream_.end(), entry.name.begin(), entry.name.end());
    }
}

void Telemetry_sampler::encode_record(std::uint64_t index, Cycle cycle,
                                      const std::vector<std::uint64_t>& values)
{
    append_u64(index);
    append_u64(cycle);
    for (const std::uint64_t v : values) append_u64(v);
}

void Telemetry_sampler::flush_to_file(std::size_t from)
{
    if (stream_path_.empty()) return;
    // Append-only with a flush per record so a live viewer tailing the file
    // always sees a whole-record prefix (decode ignores a torn tail).
    std::FILE* f = std::fopen(stream_path_.c_str(), from == 0 ? "wb" : "ab");
    if (f == nullptr) return; // telemetry must never kill the run
    std::fwrite(stream_.data() + from, 1, stream_.size() - from, f);
    std::fclose(f);
    flushed_ = stream_.size();
}

// --- decoding ---------------------------------------------------------------

Telemetry_stream
decode_telemetry_stream(const std::vector<std::uint8_t>& bytes)
{
    Telemetry_stream out;
    std::size_t at = 0;
    const auto need = [&](std::size_t n) {
        if (at + n > bytes.size())
            throw std::runtime_error{"telemetry stream: truncated header"};
    };
    need(4);
    for (int i = 0; i < 4; ++i)
        if (bytes[at + static_cast<std::size_t>(i)] != stream_magic[i])
            throw std::runtime_error{"telemetry stream: bad magic"};
    at += 4;
    need(4);
    const std::uint32_t version = read_u32(bytes, at);
    at += 4;
    if (version != stream_version)
        throw std::runtime_error{"telemetry stream: unsupported version"};
    need(8);
    out.period = read_u64(bytes, at);
    at += 8;
    need(4);
    const std::uint32_t entry_count = read_u32(bytes, at);
    at += 4;
    out.entries.reserve(entry_count);
    for (std::uint32_t e = 0; e < entry_count; ++e) {
        need(7);
        Telemetry_stream::Entry entry;
        entry.kind = static_cast<Telemetry_registry::Kind>(bytes[at]);
        ++at;
        entry.shard = read_u32(bytes, at);
        at += 4;
        const std::size_t len = static_cast<std::size_t>(bytes[at]) |
                                static_cast<std::size_t>(bytes[at + 1]) << 8;
        at += 2;
        need(len);
        entry.name.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                          bytes.begin() +
                              static_cast<std::ptrdiff_t>(at + len));
        at += len;
        out.entries.push_back(std::move(entry));
    }
    const std::size_t record_bytes = 8 * (2 + out.entries.size());
    while (at + record_bytes <= bytes.size()) {
        Telemetry_stream::Record rec;
        rec.index = read_u64(bytes, at);
        at += 8;
        rec.cycle = read_u64(bytes, at);
        at += 8;
        rec.values.reserve(out.entries.size());
        for (std::size_t e = 0; e < out.entries.size(); ++e) {
            rec.values.push_back(read_u64(bytes, at));
            at += 8;
        }
        out.records.push_back(std::move(rec));
    }
    return out; // a trailing partial record (live tail) is ignored
}

std::string to_json(const Telemetry_stream& stream)
{
    std::string out = "{\n  \"period\": " + std::to_string(stream.period) +
                      ",\n  \"entries\": [";
    for (std::size_t e = 0; e < stream.entries.size(); ++e) {
        const auto& entry = stream.entries[e];
        out += e == 0 ? "\n" : ",\n";
        out += "    {\"name\": \"" + entry.name + "\", \"kind\": \"" +
               (entry.kind == Telemetry_registry::Kind::counter ? "counter"
                                                                : "gauge") +
               "\", \"shard\": " + std::to_string(entry.shard) + "}";
    }
    out += "\n  ],\n  \"records\": [";
    for (std::size_t r = 0; r < stream.records.size(); ++r) {
        const auto& rec = stream.records[r];
        out += r == 0 ? "\n" : ",\n";
        out += "    {\"index\": " + std::to_string(rec.index) +
               ", \"cycle\": " + std::to_string(rec.cycle) + ", \"values\": [";
        for (std::size_t v = 0; v < rec.values.size(); ++v) {
            if (v != 0) out += ", ";
            out += std::to_string(rec.values[v]);
        }
        out += "]}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string render_latest(const Telemetry_stream& stream)
{
    if (stream.records.empty()) return "(no samples)\n";
    const auto& last = stream.records.back();
    const Telemetry_stream::Record* prev =
        stream.records.size() > 1
            ? &stream.records[stream.records.size() - 2]
            : nullptr;
    std::string out = "sample " + std::to_string(last.index) + " @ cycle " +
                      std::to_string(last.cycle) + "\n";
    for (std::size_t e = 0; e < stream.entries.size(); ++e) {
        const auto& entry = stream.entries[e];
        out += "  " + entry.name;
        if (entry.name.size() < 26) out.append(26 - entry.name.size(), ' ');
        out += std::to_string(last.values[e]);
        if (entry.kind == Telemetry_registry::Kind::counter &&
            prev != nullptr && last.values[e] >= prev->values[e])
            out += " (+" + std::to_string(last.values[e] - prev->values[e]) +
                   ")";
        out += " [shard " + std::to_string(entry.shard) + "]\n";
    }
    return out;
}

} // namespace noc
