#include "telemetry/heatmap.h"

#include <algorithm>
#include <vector>

namespace noc {

namespace {

bool matches(const std::string& name, const std::string& prefix,
             const std::string& suffix)
{
    if (name.size() < prefix.size() + suffix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    return name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

char scale_char(std::uint64_t v, std::uint64_t max)
{
    if (v == 0) return '.';
    if (v >= max) return '#';
    // 1..9 linear bands over (0, max).
    const std::uint64_t band = 1 + (v * 9 - 1) / max;
    return static_cast<char>('0' + std::min<std::uint64_t>(band, 9));
}

} // namespace

std::string render_heatmap(const Telemetry_stream& stream,
                           const std::string& prefix,
                           const std::string& suffix)
{
    std::vector<std::size_t> cols;
    for (std::size_t e = 0; e < stream.entries.size(); ++e)
        if (matches(stream.entries[e].name, prefix, suffix))
            cols.push_back(e);
    std::string out = "heatmap " + prefix + "*" + suffix + ": " +
                      std::to_string(cols.size()) + " columns, " +
                      std::to_string(stream.records.size()) + " samples\n";
    if (cols.empty() || stream.records.empty()) return out;

    std::uint64_t max = 0;
    for (const auto& rec : stream.records)
        for (const std::size_t c : cols) max = std::max(max, rec.values[c]);
    out += "max " + std::to_string(max) + " ('#'), '.'=0, '1'..'9' linear\n";
    out += "columns: ";
    for (std::size_t i = 0; i < cols.size(); ++i) {
        if (i != 0) out += ",";
        out += stream.entries[cols[i]].name;
    }
    out += "\n";
    for (const auto& rec : stream.records) {
        std::string cycle = std::to_string(rec.cycle);
        if (cycle.size() < 10) cycle.insert(0, 10 - cycle.size(), ' ');
        out += cycle + " |";
        for (const std::size_t c : cols)
            out += max == 0 ? '.' : scale_char(rec.values[c], max);
        out += "|\n";
    }
    return out;
}

} // namespace noc
