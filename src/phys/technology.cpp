#include "phys/technology.h"

namespace noc {

Technology make_technology_65nm()
{
    return Technology{}; // defaults are the 65 nm calibration
}

Technology make_technology_90nm()
{
    Technology t;
    t.name = "90nm";
    t.feature_nm = 90.0;
    t.fo4_ps = 36.0;
    t.wire_delay_ps_per_mm = 100.0; // fatter wires, slightly better RC
    t.wire_energy_pj_per_bit_mm = 0.24;
    t.gate_area_um2 = 3.1;
    t.buffer_bit_area_um2 = 7.8;
    t.buffer_energy_pj_per_bit = 0.019;
    t.xbar_energy_pj_per_bit = 0.005;
    t.arbiter_energy_pj = 0.55;
    t.leakage_uw_per_kgate = 1.6;
    t.cell_height_um = 2.5;
    t.metal_pitch_um = 0.28;
    t.signal_layers = 3;
    t.max_clock_ghz = 1.4;
    return t;
}

Technology make_technology_45nm()
{
    Technology t;
    t.name = "45nm";
    t.feature_nm = 45.0;
    t.fo4_ps = 17.0;
    t.wire_delay_ps_per_mm = 125.0; // thinner wires: RC per mm worsens
    t.wire_energy_pj_per_bit_mm = 0.14;
    t.gate_area_um2 = 0.8;
    t.buffer_bit_area_um2 = 2.0;
    t.buffer_energy_pj_per_bit = 0.007;
    t.xbar_energy_pj_per_bit = 0.002;
    t.arbiter_energy_pj = 0.22;
    t.leakage_uw_per_kgate = 3.5;
    t.cell_height_um = 1.3;
    t.metal_pitch_um = 0.14;
    t.signal_layers = 5;
    t.max_clock_ghz = 3.0;
    return t;
}

double gate_vs_wire_delay_ratio(const Technology& t)
{
    // Delay of one mm of wire measured in FO4 gate delays: grows as
    // technology scales down — the §1 motivation for NoCs.
    return t.wire_delay_ps_per_mm / t.fo4_ps;
}

} // namespace noc
