#include "phys/power.h"

#include "phys/router_model.h"
#include "phys/wire_model.h"

#include <stdexcept>

namespace noc {

std::vector<double> link_lengths_mm(const Topology& topo, double fallback_mm)
{
    std::vector<double> lengths;
    lengths.reserve(static_cast<std::size_t>(topo.link_count()));
    for (const auto& l : topo.links()) {
        const auto a = topo.switch_position(l.from);
        const auto b = topo.switch_position(l.to);
        lengths.push_back(a && b ? manhattan(*a, *b) : fallback_mm);
    }
    return lengths;
}

Power_report estimate_power(const Noc_system& sys, const Technology& tech,
                            Cycle cycles, double fallback_link_mm)
{
    if (cycles == 0)
        throw std::invalid_argument{"estimate_power: zero cycles"};
    const Topology& topo = sys.topology();
    const Network_params& np = sys.params();

    Power_report rep;
    double energy_pj = 0.0;
    std::uint64_t flits = 0;

    for (int s = 0; s < topo.switch_count(); ++s) {
        const Switch_id sw{static_cast<std::uint32_t>(s)};
        Router_phys_params rp;
        rp.in_ports = topo.input_port_count(sw);
        rp.out_ports = topo.output_port_count(sw);
        rp.flit_width_bits = np.flit_width_bits;
        rp.buffer_depth = np.buffer_depth;
        rp.vcs = np.total_vcs();
        const auto phys = estimate_router(tech, rp);
        const std::uint64_t routed = sys.router(sw).flits_routed();
        energy_pj += static_cast<double>(routed) * phys.energy_per_flit_pj;
        rep.router_dynamic_mw += static_cast<double>(routed) *
                                 phys.energy_per_flit_pj * np.clock_ghz /
                                 static_cast<double>(cycles);
        rep.leakage_mw += phys.leakage_mw;
        flits += routed;
    }

    const auto lengths = link_lengths_mm(topo, fallback_link_mm);
    for (int l = 0; l < topo.link_count(); ++l) {
        const auto transfers =
            sys.link_flits(Link_id{static_cast<std::uint32_t>(l)});
        const double e = wire_energy_pj(
            tech, lengths[static_cast<std::size_t>(l)],
            static_cast<double>(transfers) * np.flit_width_bits);
        energy_pj += e;
        rep.link_dynamic_mw +=
            e * np.clock_ghz / static_cast<double>(cycles);
    }

    rep.total_energy_pj = energy_pj;
    rep.energy_per_flit_pj =
        flits > 0 ? energy_pj / static_cast<double>(flits) : 0.0;
    return rep;
}

} // namespace noc
