// Analytic router area / timing / routability model — reproduces the
// shape of Fig. 2 ("Study on 65nm, 32-bit switch scalability").
//
// Mechanism, not curve fit: a P x P wormhole switch is dominated by
//   * input buffers  — P * V * B * W bit cells, area linear in P;
//   * crossbar       — W * P_in * P_out crosspoints, area quadratic in P;
//   * crossbar WIRES — each output must see every input's W bits, and the
//     wire length grows with the macro side, so total wiring demand grows
//     faster than the routing supply the macro's own area provides.
// Lowering row utilization inflates the footprint, buying wiring supply at
// the cost of area — exactly the knob the physical-design study turned. The
// model solves for the highest utilization at which supply covers demand;
// one dimensionless calibration constant is fitted to the published bands
// (10x10 @ >= 85%, 14x14-22x22 @ 70-50%, >= 26x26 infeasible) and the test
// suite locks those bands in.
#pragma once

#include "phys/technology.h"

#include <string>

namespace noc {

struct Router_phys_params {
    int in_ports = 5;
    int out_ports = 5;
    int flit_width_bits = 32;
    int buffer_depth = 4;
    int vcs = 1;
    /// Wiring-demand divisor for datapath-disciplined (bit-sliced)
    /// placement. Random-logic NoC switches use 1.0; wide bus crossbars are
    /// laid out as regular bit slices, roughly halving effective congestion
    /// (estimate_crossbar_phys sets 2.0).
    double wiring_discipline = 1.0;
};

struct Router_phys_result {
    double gate_count = 0.0;          ///< NAND2 equivalents (logic only)
    double cell_area_mm2 = 0.0;       ///< placed cells at 100% utilization
    double buffer_area_mm2 = 0.0;
    double crossbar_area_mm2 = 0.0;
    double control_area_mm2 = 0.0;
    double max_freq_ghz = 0.0;        ///< from arbitration + xbar + wire path
    double max_row_utilization = 0.0; ///< highest routable utilization
    bool drc_feasible = true;         ///< false: violations even at 50%
    double footprint_mm2 = 0.0;       ///< cell area / achievable utilization
    std::string classification;       ///< Fig. 2 band, human readable
    double energy_per_flit_pj = 0.0;  ///< buffer r+w, xbar, arbitration
    double leakage_mw = 0.0;
};

[[nodiscard]] Router_phys_result estimate_router(const Technology& tech,
                                                 const Router_phys_params& p);

/// Energy of one flit traversing a router with these parameters (also
/// available inside Router_phys_result; exposed for the synthesis cost
/// function's hot loop).
[[nodiscard]] double router_energy_per_flit_pj(const Technology& tech,
                                               const Router_phys_params& p);

} // namespace noc
