// Floorplan substrate (§6: the flow "optionally takes the floorplan of the
// SoC without the interconnect as an input ... the tool also produces an
// output floorplan for the topology point, with the NoC components placed
// at the ideal locations").
//
// Two pieces:
//   * Floorplan — rectangles on a die with overlap-free invariants, nearest
//     -whitespace insertion (the "incremental floorplanning" of SunFloor
//     [11][12]: NoC blocks are added while only marginally perturbing the
//     input floorplan), and wire-length queries;
//   * make_shelf_floorplan — a deterministic shelf packer that generates
//     the "early floorplan of the SoC" from a core graph when the designer
//     does not supply one.
#pragma once

#include "common/geometry.h"
#include "traffic/core_graph.h"

#include <optional>
#include <string>
#include <vector>

namespace noc {

struct Fp_block {
    std::string name;
    Rect rect;
    bool is_noc_component = false; ///< inserted by the flow, not the input
};

class Floorplan {
public:
    explicit Floorplan(Rect die);

    /// Place a block at a fixed position; throws if it leaves the die or
    /// overlaps an existing block.
    int add_block(std::string name, Rect r, bool is_noc_component = false);

    /// Find the free location nearest `near` for a w x h block (spiral
    /// search over a grid), add it, and return its index; nullopt when the
    /// die has no room.
    [[nodiscard]] std::optional<int> place_near(std::string name, double w,
                                                double h, Point near,
                                                bool is_noc_component = true);

    [[nodiscard]] int block_count() const
    {
        return static_cast<int>(blocks_.size());
    }
    [[nodiscard]] const Fp_block& block(int i) const
    {
        return blocks_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] int block_index(const std::string& name) const;
    [[nodiscard]] Point block_center(int i) const
    {
        return block(i).rect.center();
    }
    /// Manhattan distance between block centers — the wire-length estimate.
    [[nodiscard]] double wire_length(int a, int b) const;

    [[nodiscard]] const Rect& die() const { return die_; }
    [[nodiscard]] double occupied_area() const;
    [[nodiscard]] double utilization() const
    {
        return occupied_area() / die_.area();
    }
    /// Sum of displacement applied to pre-existing blocks (always 0 here:
    /// insertion never moves input blocks — the "marginal perturbation" is
    /// zero by construction; exposed for reporting).
    [[nodiscard]] double perturbation() const { return 0.0; }

    /// No overlaps, everything inside the die.
    void validate() const;

private:
    [[nodiscard]] bool fits(const Rect& r) const;

    Rect die_;
    std::vector<Fp_block> blocks_;
};

/// Deterministic shelf packing of the core graph's blocks (squares of the
/// specified areas), with `gap_frac` spacing channels reserved around each
/// block as whitespace for later NoC insertion.
[[nodiscard]] Floorplan make_shelf_floorplan(const Core_graph& graph,
                                             double gap_frac = 0.18);

/// Shelf-pack only the cores on `layer` (3D flows keep one floorplan per
/// die).
[[nodiscard]] Floorplan make_shelf_floorplan_layer(const Core_graph& graph,
                                                   Layer_id layer,
                                                   double gap_frac = 0.18);

} // namespace noc
