#include "phys/router_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace noc {

namespace {

// Demand-exponent and scale of the crossbar wiring model, fitted once to
// the published 65 nm study [43] (Fig. 2): 10x10 routable at >= 85% row
// utilization, 14x14..22x22 at ~70..50%, 26x26+ infeasible even at 50%.
// gamma < 2 reflects that real crossbars are folded mux trees, not flat
// point-to-point fabrics.
constexpr double k_demand_gamma = 1.2;
constexpr double k_demand_scale = 1.824;
/// Fraction of metal capacity actually usable for signal over the macro.
constexpr double k_signal_fraction = 0.35;
/// Below this row utilization the study hit un-fixable DRC violations.
constexpr double k_drc_floor = 0.50;
/// Practical ceiling (pin access, filler, CTS keep-outs).
constexpr double k_util_ceiling = 0.95;

struct Area_breakdown {
    double buffer_bits;
    double gates; // logic NAND2 equivalents (xbar + control)
    double buffer_um2;
    double xbar_um2;
    double control_um2;
};

Area_breakdown compute_area(const Technology& tech,
                            const Router_phys_params& p)
{
    Area_breakdown a{};
    a.buffer_bits = static_cast<double>(p.in_ports) * p.vcs *
                    p.buffer_depth * p.flit_width_bits;
    const double xbar_gates =
        1.5 * p.flit_width_bits * p.in_ports * p.out_ports;
    const double control_gates =
        4.0 * p.in_ports * p.vcs * p.out_ports + // request matrix
        8.0 * p.in_ports * p.out_ports +         // arbiters
        32.0 * p.in_ports * p.vcs;               // per-VC state
    a.gates = xbar_gates + control_gates;
    a.buffer_um2 = a.buffer_bits * tech.buffer_bit_area_um2;
    a.xbar_um2 = xbar_gates * tech.gate_area_um2;
    a.control_um2 = control_gates * tech.gate_area_um2;
    return a;
}

} // namespace

Router_phys_result estimate_router(const Technology& tech,
                                   const Router_phys_params& p)
{
    if (p.in_ports < 1 || p.out_ports < 1 || p.flit_width_bits < 1 ||
        p.buffer_depth < 1 || p.vcs < 1)
        throw std::invalid_argument{"estimate_router: bad parameters"};

    const Area_breakdown a = compute_area(tech, p);
    Router_phys_result r;
    r.gate_count = a.gates;
    r.buffer_area_mm2 = a.buffer_um2 * 1e-6;
    r.crossbar_area_mm2 = a.xbar_um2 * 1e-6;
    r.control_area_mm2 = a.control_um2 * 1e-6;
    r.cell_area_mm2 =
        r.buffer_area_mm2 + r.crossbar_area_mm2 + r.control_area_mm2;

    // Routability: supply(u) = area/u * layers * sigma / pitch (mm of wire)
    // vs demand(u) = k * W * P^gamma * sqrt(area/u). Equality solves to
    //   u* = area * C^2 / (k * W * P^gamma)^2,  C = layers*sigma/pitch.
    const double p_eff = std::sqrt(static_cast<double>(p.in_ports) *
                                   static_cast<double>(p.out_ports));
    if (p.wiring_discipline < 1.0)
        throw std::invalid_argument{"estimate_router: discipline < 1"};
    const double supply_c = tech.signal_layers * k_signal_fraction /
                            (tech.metal_pitch_um * 1e-3);
    const double demand_c = k_demand_scale * p.flit_width_bits *
                            std::pow(p_eff, k_demand_gamma) /
                            p.wiring_discipline;
    const double u_star =
        r.cell_area_mm2 * supply_c * supply_c / (demand_c * demand_c);
    r.max_row_utilization = std::min(u_star, k_util_ceiling);
    r.drc_feasible = r.max_row_utilization >= k_drc_floor;
    r.footprint_mm2 =
        r.cell_area_mm2 / std::max(r.max_row_utilization, k_drc_floor);

    if (r.max_row_utilization >= 0.85)
        r.classification = "routable at >=85% row utilization";
    else if (r.drc_feasible)
        r.classification = "routable at reduced (50-85%) utilization";
    else
        r.classification = "DRC violations even at 50% utilization";

    // Timing: arbitration depth grows with log2(radix); crossbar traversal
    // spans the macro, so the wire term grows with the footprint side.
    const double logic_ps =
        tech.fo4_ps * (12.0 + 6.0 * std::log2(std::max(2.0, p_eff)));
    const double wire_ps =
        0.5 * std::sqrt(r.footprint_mm2) * tech.wire_delay_ps_per_mm;
    r.max_freq_ghz = std::min(1000.0 / (logic_ps + wire_ps),
                              tech.max_clock_ghz);

    r.energy_per_flit_pj = router_energy_per_flit_pj(tech, p);
    r.leakage_mw = (a.gates + 2.0 * a.buffer_bits) / 1000.0 *
                   tech.leakage_uw_per_kgate / 1000.0;
    return r;
}

double router_energy_per_flit_pj(const Technology& tech,
                                 const Router_phys_params& p)
{
    const double p_eff = std::sqrt(static_cast<double>(p.in_ports) *
                                   static_cast<double>(p.out_ports));
    const double buffer_pj =
        p.flit_width_bits * tech.buffer_energy_pj_per_bit;
    const double xbar_pj =
        p.flit_width_bits * tech.xbar_energy_pj_per_bit * p_eff;
    return buffer_pj + xbar_pj + tech.arbiter_energy_pj;
}

} // namespace noc
