#include "phys/floorplan.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace noc {

Floorplan::Floorplan(Rect die) : die_{die}
{
    if (die.w <= 0 || die.h <= 0)
        throw std::invalid_argument{"Floorplan: empty die"};
}

bool Floorplan::fits(const Rect& r) const
{
    if (r.x < die_.x || r.y < die_.y || r.right() > die_.right() + 1e-9 ||
        r.top() > die_.top() + 1e-9)
        return false;
    for (const auto& b : blocks_)
        if (b.rect.overlaps(r)) return false;
    return true;
}

int Floorplan::add_block(std::string name, Rect r, bool is_noc_component)
{
    if (!fits(r))
        throw std::invalid_argument{"Floorplan::add_block: '" + name +
                                    "' does not fit"};
    blocks_.push_back({std::move(name), r, is_noc_component});
    return static_cast<int>(blocks_.size()) - 1;
}

std::optional<int> Floorplan::place_near(std::string name, double w, double h,
                                         Point near, bool is_noc_component)
{
    if (w <= 0 || h <= 0)
        throw std::invalid_argument{"Floorplan::place_near: empty block"};
    const double step = std::max(std::min(w, h) / 2.0, 1e-3);
    const double max_radius =
        std::hypot(die_.w, die_.h); // covers the whole die
    // Spiral: rings of candidate centers at increasing radius.
    for (double radius = 0.0; radius <= max_radius; radius += step) {
        const int points =
            radius == 0.0
                ? 1
                : std::max(8, static_cast<int>(radius * 8.0 / step));
        for (int i = 0; i < points; ++i) {
            const double angle = 2.0 * 3.141592653589793 * i / points;
            const double cx = near.x + radius * std::cos(angle);
            const double cy = near.y + radius * std::sin(angle);
            Rect candidate{cx - w / 2, cy - h / 2, w, h};
            // Clamp into the die.
            candidate.x = std::clamp(candidate.x, die_.x, die_.right() - w);
            candidate.y = std::clamp(candidate.y, die_.y, die_.top() - h);
            if (fits(candidate)) {
                blocks_.push_back(
                    {std::move(name), candidate, is_noc_component});
                return static_cast<int>(blocks_.size()) - 1;
            }
        }
    }
    return std::nullopt;
}

int Floorplan::block_index(const std::string& name) const
{
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        if (blocks_[i].name == name) return static_cast<int>(i);
    throw std::invalid_argument{"Floorplan: unknown block " + name};
}

double Floorplan::wire_length(int a, int b) const
{
    return manhattan(block_center(a), block_center(b));
}

double Floorplan::occupied_area() const
{
    return std::accumulate(blocks_.begin(), blocks_.end(), 0.0,
                           [](double acc, const Fp_block& b) {
                               return acc + b.rect.area();
                           });
}

void Floorplan::validate() const
{
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        const Rect& r = blocks_[i].rect;
        if (r.x < die_.x - 1e-9 || r.y < die_.y - 1e-9 ||
            r.right() > die_.right() + 1e-9 || r.top() > die_.top() + 1e-9)
            throw std::logic_error{"Floorplan: block outside die: " +
                                   blocks_[i].name};
        for (std::size_t j = i + 1; j < blocks_.size(); ++j)
            if (r.overlaps(blocks_[j].rect))
                throw std::logic_error{"Floorplan: overlap between " +
                                       blocks_[i].name + " and " +
                                       blocks_[j].name};
    }
}

namespace {

Floorplan shelf_pack(const Core_graph& graph, const std::vector<int>& cores,
                     double gap_frac)
{
    if (gap_frac < 0 || gap_frac > 1)
        throw std::invalid_argument{"make_shelf_floorplan: bad gap_frac"};
    if (cores.empty())
        throw std::invalid_argument{"make_shelf_floorplan: no cores"};

    struct Item {
        int core;
        double side;
    };
    std::vector<Item> items;
    double inflated_area = 0.0;
    for (const int c : cores) {
        const double side = std::sqrt(graph.core(c).area_mm2);
        items.push_back({c, side});
        const double inflated = side * (1.0 + gap_frac);
        inflated_area += inflated * inflated;
    }

    // Affinity-aware ordering (§6: the floorplan estimate reflects "the
    // communication among cores"): greedily chain cores so that heavy
    // communicators sit in adjacent shelf slots. Start from the core with
    // the largest total traffic; repeatedly append the unplaced core with
    // the strongest ties to the last few placed ones.
    {
        const auto n = items.size();
        std::vector<double> affinity(n * n, 0.0);
        std::vector<int> index_of(static_cast<std::size_t>(
                                      graph.core_count()),
                                  -1);
        for (std::size_t i = 0; i < n; ++i)
            index_of[static_cast<std::size_t>(items[i].core)] =
                static_cast<int>(i);
        std::vector<double> total(n, 0.0);
        for (const auto& f : graph.flows()) {
            const int a = index_of[static_cast<std::size_t>(f.src)];
            const int b = index_of[static_cast<std::size_t>(f.dst)];
            if (a < 0 || b < 0) continue;
            affinity[static_cast<std::size_t>(a) * n +
                     static_cast<std::size_t>(b)] += f.bandwidth_mbps;
            affinity[static_cast<std::size_t>(b) * n +
                     static_cast<std::size_t>(a)] += f.bandwidth_mbps;
            total[static_cast<std::size_t>(a)] += f.bandwidth_mbps;
            total[static_cast<std::size_t>(b)] += f.bandwidth_mbps;
        }
        std::vector<char> placed(n, 0);
        std::vector<Item> ordered;
        ordered.reserve(n);
        std::size_t seed = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (total[i] > total[seed]) seed = i;
        ordered.push_back(items[seed]);
        placed[seed] = 1;
        while (ordered.size() < n) {
            std::size_t best = n;
            double best_score = -1.0;
            for (std::size_t cand = 0; cand < n; ++cand) {
                if (placed[cand]) continue;
                double score = 0.0;
                const std::size_t window =
                    std::min<std::size_t>(3, ordered.size());
                for (std::size_t w = 0; w < window; ++w) {
                    const auto prev = static_cast<std::size_t>(
                        index_of[static_cast<std::size_t>(
                            ordered[ordered.size() - 1 - w].core)]);
                    score += affinity[prev * n + cand] / (1.0 + w);
                }
                if (score > best_score ||
                    (score == best_score && best < n &&
                     items[cand].core < items[best].core)) {
                    best_score = score;
                    best = cand;
                }
            }
            ordered.push_back(items[best]);
            placed[best] = 1;
        }
        items = std::move(ordered);
    }

    const double target_width = std::sqrt(inflated_area) * 1.12;

    // First pass: compute extents; second pass: build the real floorplan.
    struct Placement {
        int core;
        Rect rect;
    };
    std::vector<Placement> placements;
    double x = 0.0;
    double y = 0.0;
    double shelf_h = 0.0;
    double max_x = 0.0;
    for (const auto& it : items) {
        const double gap = it.side * gap_frac;
        const double w = it.side + gap;
        const double h = it.side + gap;
        if (x + w > target_width && x > 0.0) {
            x = 0.0;
            y += shelf_h;
            shelf_h = 0.0;
        }
        placements.push_back(
            {it.core, {x + gap / 2, y + gap / 2, it.side, it.side}});
        x += w;
        shelf_h = std::max(shelf_h, h);
        max_x = std::max(max_x, x);
    }
    const double die_w = max_x + 0.2;
    const double die_h = y + shelf_h + 0.2;

    Floorplan fp{{0, 0, die_w, die_h}};
    // Insert in core order so block index == position within `cores`.
    std::sort(placements.begin(), placements.end(),
              [](const Placement& a, const Placement& b) {
                  return a.core < b.core;
              });
    for (const auto& pl : placements)
        fp.add_block(graph.core(pl.core).name, pl.rect, false);
    fp.validate();
    return fp;
}

} // namespace

Floorplan make_shelf_floorplan(const Core_graph& graph, double gap_frac)
{
    std::vector<int> cores(static_cast<std::size_t>(graph.core_count()));
    std::iota(cores.begin(), cores.end(), 0);
    return shelf_pack(graph, cores, gap_frac);
}

Floorplan make_shelf_floorplan_layer(const Core_graph& graph, Layer_id layer,
                                     double gap_frac)
{
    std::vector<int> cores;
    for (int c = 0; c < graph.core_count(); ++c)
        if (graph.core(c).layer == layer) cores.push_back(c);
    return shelf_pack(graph, cores, gap_frac);
}

} // namespace noc
