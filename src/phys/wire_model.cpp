#include "phys/wire_model.h"

#include <cmath>
#include <stdexcept>

namespace noc {

double wire_delay_ps(const Technology& t, double length_mm)
{
    if (length_mm < 0)
        throw std::invalid_argument{"wire_delay_ps: negative length"};
    // Optimal repeater insertion linearizes the quadratic RC delay.
    return t.wire_delay_ps_per_mm * length_mm;
}

double max_single_cycle_wire_mm(const Technology& t, double clock_ghz,
                                double margin)
{
    if (clock_ghz <= 0 || margin < 0 || margin >= 1)
        throw std::invalid_argument{"max_single_cycle_wire_mm: bad args"};
    const double period_ps = 1000.0 / clock_ghz;
    return period_ps * (1.0 - margin) / t.wire_delay_ps_per_mm;
}

Wire_timing pipeline_wire(const Technology& t, double length_mm,
                          double clock_ghz, double margin)
{
    Wire_timing w;
    w.delay_ps = wire_delay_ps(t, length_mm);
    const double budget_ps = 1000.0 / clock_ghz * (1.0 - margin);
    if (budget_ps <= 0)
        throw std::invalid_argument{"pipeline_wire: no timing budget"};
    // n+1 segments of length/(n+1) each must fit the budget.
    const int segments =
        std::max(1, static_cast<int>(std::ceil(w.delay_ps / budget_ps)));
    w.pipeline_stages = segments - 1;
    w.segment_slack_ps = budget_ps - w.delay_ps / segments;
    return w;
}

double wire_energy_pj(const Technology& t, double length_mm, double bits)
{
    if (length_mm < 0 || bits < 0)
        throw std::invalid_argument{"wire_energy_pj: negative input"};
    return t.wire_energy_pj_per_bit_mm * length_mm * bits;
}

} // namespace noc
