// Technology parameters for the physical models.
//
// Values are representative of published 90/65/45 nm standard-cell
// processes (ITRS-era, same vintage as the paper's studies). They feed the
// router area/timing model (Fig. 2), the repeated-wire model (§4.1) and the
// power rollup; everything downstream depends only on this struct, so a
// different process is one function away.
#pragma once

#include <string>

namespace noc {

struct Technology {
    std::string name = "65nm";
    double feature_nm = 65.0;
    /// Fanout-of-4 inverter delay — the canonical logic-depth unit.
    double fo4_ps = 25.0;
    /// Optimally repeated global wire delay.
    double wire_delay_ps_per_mm = 110.0;
    /// Energy of one bit toggling over one mm of repeated wire.
    double wire_energy_pj_per_bit_mm = 0.18;
    /// Two-input NAND-equivalent gate area.
    double gate_area_um2 = 1.6;
    /// Register/FIFO bit cell area (flop-based NoC buffers).
    double buffer_bit_area_um2 = 4.0;
    /// Read+write energy per buffer bit access.
    double buffer_energy_pj_per_bit = 0.011;
    /// Crossbar traversal energy per bit (per-port normalized).
    double xbar_energy_pj_per_bit = 0.003;
    /// Arbitration energy per flit.
    double arbiter_energy_pj = 0.35;
    /// Leakage per thousand gate-equivalents.
    double leakage_uw_per_kgate = 2.4;
    /// Standard-cell row height.
    double cell_height_um = 1.8;
    /// Signal-routing pitch on intermediate metal.
    double metal_pitch_um = 0.20;
    /// Metal layers usable for signal routing over the macro.
    int signal_layers = 4;
    /// Practical clock ceiling for standard-cell design at this node.
    double max_clock_ghz = 2.2;
};

/// 65 nm — the node of the paper's Fig. 2 study [43].
[[nodiscard]] Technology make_technology_65nm();
/// 90 nm — one node back (first ×pipes silicon).
[[nodiscard]] Technology make_technology_90nm();
/// 45 nm — "most high-end SoC products ... fabricated with the 45nm node".
[[nodiscard]] Technology make_technology_45nm();

/// Scaling sanity: gate delay shrinks with the node while wire delay per mm
/// does not (§1: "gate delays decrease while global wire delays do not").
[[nodiscard]] double gate_vs_wire_delay_ratio(const Technology& t);

} // namespace noc
