// Power rollup: turns simulation activity counters into a dynamic + leakage
// power report using the technology models (§6: the NoC's "power
// consumption can be evaluated and reduced" during design).
#pragma once

#include "arch/noc_system.h"
#include "phys/technology.h"

#include <vector>

namespace noc {

struct Power_report {
    double router_dynamic_mw = 0.0;
    double link_dynamic_mw = 0.0;
    double leakage_mw = 0.0;
    [[nodiscard]] double total_mw() const
    {
        return router_dynamic_mw + link_dynamic_mw + leakage_mw;
    }
    /// Average network energy spent per delivered flit.
    double energy_per_flit_pj = 0.0;
    double total_energy_pj = 0.0;
};

/// Power of `sys` over the `cycles` it has simulated so far. Link lengths
/// come from topology switch positions when available (`fallback_mm`
/// otherwise).
[[nodiscard]] Power_report estimate_power(const Noc_system& sys,
                                          const Technology& tech,
                                          Cycle cycles,
                                          double fallback_link_mm = 1.0);

/// Link lengths used by estimate_power, exposed for reporting.
[[nodiscard]] std::vector<double> link_lengths_mm(const Topology& topo,
                                                  double fallback_mm = 1.0);

} // namespace noc
