// Repeated-wire delay / energy / pipelining model (§4.1 "Structured
// Wiring": NoC links are point-to-point and can be "explicitly segmented to
// further break critical paths").
#pragma once

#include "phys/technology.h"

namespace noc {

struct Wire_timing {
    double delay_ps = 0.0;
    /// Register stages that must be inserted so each segment fits in the
    /// clock period (0 = single cycle).
    int pipeline_stages = 0;
    /// Slack of the worst segment at the target clock, ps (>= 0 feasible).
    double segment_slack_ps = 0.0;
};

/// Delay of an optimally repeated wire of `length_mm`.
[[nodiscard]] double wire_delay_ps(const Technology& t, double length_mm);

/// Longest wire that still closes timing in one cycle at `clock_ghz`,
/// leaving `margin` of the period for the driving/receiving logic.
[[nodiscard]] double max_single_cycle_wire_mm(const Technology& t,
                                              double clock_ghz,
                                              double margin = 0.35);

/// Pipeline a wire of `length_mm` for `clock_ghz`: how many register
/// stages are needed and the resulting slack (§4.1 link segmentation).
[[nodiscard]] Wire_timing pipeline_wire(const Technology& t, double length_mm,
                                        double clock_ghz,
                                        double margin = 0.35);

/// Energy for `bits` crossing `length_mm` of wire.
[[nodiscard]] double wire_energy_pj(const Technology& t, double length_mm,
                                    double bits);

} // namespace noc
