#include "explore/sweep_spec.h"

#include "arch/fault_plan.h"
#include "topology/routing.h"
#include "traffic/patterns.h"

#include <set>
#include <stdexcept>

namespace noc {

namespace {

/// FNV-1a over a label, then a SplitMix64 finalizer — the same portable
/// mixing discipline as common/rng.h. Point seeds must be a pure function
/// of the spec (never of thread scheduling), bit-stable across platforms.
std::uint64_t hash_label(std::uint64_t h, const std::string& s)
{
    for (const char c : s) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

bool is_grid_pattern(Sweep_pattern_kind k)
{
    return k == Sweep_pattern_kind::transpose ||
           k == Sweep_pattern_kind::neighbor ||
           k == Sweep_pattern_kind::tornado;
}

bool is_power_of_two(int n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

} // namespace

Design_variant& Sweep_spec::add_mesh(int w, int h, Network_params params,
                                     std::string params_label)
{
    Design_variant d;
    d.label = "mesh" + std::to_string(w) + "x" + std::to_string(h);
    d.kind = Sweep_topology_kind::mesh;
    d.width = w;
    d.height = h;
    d.params = params;
    d.params_label = std::move(params_label);
    designs.push_back(std::move(d));
    return designs.back();
}

Design_variant& Sweep_spec::add_torus(int w, int h, Network_params params,
                                      std::string params_label)
{
    Design_variant d;
    d.label = "torus" + std::to_string(w) + "x" + std::to_string(h);
    d.kind = Sweep_topology_kind::torus;
    d.width = w;
    d.height = h;
    d.params = params;
    d.params_label = std::move(params_label);
    designs.push_back(std::move(d));
    return designs.back();
}

Design_variant& Sweep_spec::add_ring(int nodes, Network_params params,
                                     std::string params_label)
{
    Design_variant d;
    d.label = "ring" + std::to_string(nodes);
    d.kind = Sweep_topology_kind::ring;
    d.width = nodes;
    d.height = 1;
    d.params = params;
    d.params_label = std::move(params_label);
    designs.push_back(std::move(d));
    return designs.back();
}

Design_variant& Sweep_spec::add_design(
    std::string label, std::shared_ptr<const Topology> topology,
    std::shared_ptr<const Route_set> routes, Network_params params,
    bool allow_partial_routes)
{
    Design_variant d;
    d.label = std::move(label);
    d.kind = Sweep_topology_kind::custom;
    // Sentinel dims: a custom topology has no implied grid, so grid-shaped
    // patterns demand explicit width/height (validate() enforces it) —
    // inheriting the 4x4 defaults would silently misinterpret any
    // 16-core topology as a grid.
    d.width = 0;
    d.height = 0;
    d.custom_topology = std::move(topology);
    d.custom_routes = std::move(routes);
    d.allow_partial_routes = allow_partial_routes;
    d.params = params;
    designs.push_back(std::move(d));
    return designs.back();
}

void Sweep_spec::cross_params(
    const std::vector<std::pair<std::string, Network_params>>& variants)
{
    if (variants.empty())
        throw std::invalid_argument{"Sweep_spec: empty params cross"};
    std::vector<Design_variant> crossed;
    crossed.reserve(designs.size() * variants.size());
    for (const auto& d : designs)
        for (const auto& [label, params] : variants) {
            Design_variant v = d;
            v.params = params;
            v.params_label = label;
            crossed.push_back(std::move(v));
        }
    designs = std::move(crossed);
}

Traffic_variant& Sweep_spec::add_synthetic(Sweep_pattern_kind pattern)
{
    static const char* names[] = {"uniform",  "transpose", "bitcomp",
                                  "shuffle",  "neighbor",  "tornado",
                                  "hotspot"};
    Traffic_variant t;
    t.pattern = pattern;
    t.label = names[static_cast<std::size_t>(pattern)];
    traffics.push_back(std::move(t));
    return traffics.back();
}

Traffic_variant& Sweep_spec::add_hotspot(std::vector<Core_id> hotspots,
                                         double hot_fraction)
{
    Traffic_variant t;
    t.pattern = Sweep_pattern_kind::hotspot;
    t.label = "hotspot" + std::to_string(hotspots.size());
    t.hotspots = std::move(hotspots);
    t.hot_fraction = hot_fraction;
    traffics.push_back(std::move(t));
    return traffics.back();
}

Traffic_variant& Sweep_spec::add_application(
    std::shared_ptr<const Core_graph> graph, std::string label)
{
    Traffic_variant t;
    t.is_application = true;
    t.graph = std::move(graph);
    t.label = std::move(label);
    traffics.push_back(std::move(t));
    return traffics.back();
}

Fault_scenario& Sweep_spec::add_fault_scenario(
    std::string label, std::uint32_t transient_count,
    std::uint32_t permanent_link_count, Cycle reroute_latency)
{
    Fault_scenario s;
    s.label = std::move(label);
    s.transient_count = transient_count;
    s.permanent_link_count = permanent_link_count;
    s.reroute_latency = reroute_latency;
    fault_scenarios.push_back(std::move(s));
    return fault_scenarios.back();
}

Collective_workload& Sweep_spec::add_collective(std::string label,
                                                Collective_kind kind,
                                                bool use_multicast)
{
    Collective_workload c;
    c.label = std::move(label);
    c.kind = kind;
    c.use_multicast = use_multicast;
    collectives.push_back(std::move(c));
    return collectives.back();
}

void Sweep_spec::validate() const
{
    if (designs.empty())
        throw std::invalid_argument{"Sweep_spec: no designs"};
    if (traffics.empty())
        throw std::invalid_argument{"Sweep_spec: no traffics"};
    if (loads.empty())
        throw std::invalid_argument{"Sweep_spec: empty load grid"};
    for (const double l : loads)
        if (l <= 0.0)
            throw std::invalid_argument{"Sweep_spec: loads must be > 0"};
    for (std::size_t i = 1; i < loads.size(); ++i)
        if (loads[i] <= loads[i - 1])
            throw std::invalid_argument{
                "Sweep_spec: load grid must be strictly ascending"};
    for (const auto& d : designs) {
        if (d.label.empty())
            throw std::invalid_argument{"Sweep_spec: unlabeled design"};
        d.params.validate();
        switch (d.kind) {
        case Sweep_topology_kind::mesh:
            if (d.width < 1 || d.height < 1)
                throw std::invalid_argument{"Sweep_spec: bad mesh dims"};
            break;
        case Sweep_topology_kind::torus:
            if (d.width < 2 || d.height < 2)
                throw std::invalid_argument{"Sweep_spec: bad torus dims"};
            if (d.routing == Sweep_routing_kind::dimension_order &&
                d.params.route_vcs < 2)
                throw std::invalid_argument{
                    "Sweep_spec: torus dateline routing needs route_vcs >= "
                    "2 on design '" +
                    d.label + "'"};
            break;
        case Sweep_topology_kind::ring:
            if (d.width < 3)
                throw std::invalid_argument{"Sweep_spec: ring needs >= 3"};
            if (d.routing == Sweep_routing_kind::dimension_order &&
                d.params.route_vcs < 2)
                throw std::invalid_argument{
                    "Sweep_spec: ring dateline routing needs route_vcs >= 2 "
                    "on design '" +
                    d.label + "'"};
            break;
        case Sweep_topology_kind::custom:
            if (!d.custom_topology || !d.custom_routes)
                throw std::invalid_argument{
                    "Sweep_spec: custom design '" + d.label +
                    "' missing topology or routes"};
            break;
        }
    }
    // Curve labels are the identity results (and seeds!) key on, so
    // "design/params" pairs and traffic labels must be unique — two
    // designs differing only in an unlabeled knob (e.g. routing) would
    // otherwise share seeds and serialize indistinguishably.
    {
        std::set<std::string> seen;
        for (const auto& d : designs)
            if (!seen.insert(d.label + "/" + d.params_label).second)
                throw std::invalid_argument{
                    "Sweep_spec: duplicate design identity '" + d.label +
                    "/" + d.params_label +
                    "' (distinguish via label or params_label)"};
    }
    {
        std::set<std::string> seen;
        for (const auto& t : traffics)
            if (!seen.insert(t.label).second)
                throw std::invalid_argument{
                    "Sweep_spec: duplicate traffic label '" + t.label + "'"};
    }
    {
        std::set<std::string> seen;
        for (const auto& s : fault_scenarios) {
            if (s.label.empty())
                throw std::invalid_argument{
                    "Sweep_spec: unlabeled fault scenario"};
            if (!seen.insert(s.label).second)
                throw std::invalid_argument{
                    "Sweep_spec: duplicate fault scenario label '" +
                    s.label + "'"};
            if (s.transient_count == 0 && s.permanent_link_count == 0 &&
                s.router_death_count == 0 && s.region_switch_count == 0)
                throw std::invalid_argument{
                    "Sweep_spec: fault scenario '" + s.label +
                    "' injects nothing (declare no scenarios for the "
                    "fault-free baseline)"};
        }
    }
    if (!collectives.empty()) {
        // Multicast composes with neither fault plans nor replay
        // (arch/noc_system.h), and the collective driver owns the delivery
        // listeners a dependency-driven application source would need.
        if (!fault_scenarios.empty())
            throw std::invalid_argument{
                "Sweep_spec: collectives cannot combine with fault "
                "scenarios"};
        for (const auto& t : traffics)
            if (t.is_application)
                throw std::invalid_argument{
                    "Sweep_spec: collectives compose with synthetic "
                    "background traffic only (application traffic '" +
                    t.label + "')"};
        std::set<std::string> seen;
        for (const auto& c : collectives) {
            if (c.label.empty())
                throw std::invalid_argument{
                    "Sweep_spec: unlabeled collective workload"};
            if (!seen.insert(c.label).second)
                throw std::invalid_argument{
                    "Sweep_spec: duplicate collective label '" + c.label +
                    "'"};
            if (c.payload_flits == 0)
                throw std::invalid_argument{
                    "Sweep_spec: collective '" + c.label +
                    "' has an empty payload"};
            if (c.fanin == 0)
                throw std::invalid_argument{"Sweep_spec: collective '" +
                                            c.label + "' has zero fan-in"};
            for (const auto& d : designs) {
                const int cores =
                    d.kind == Sweep_topology_kind::custom
                        ? d.custom_topology->core_count()
                        : d.width * d.height;
                if (static_cast<int>(c.root) >= cores)
                    throw std::invalid_argument{
                        "Sweep_spec: collective '" + c.label +
                        "' root out of range on design '" + d.label + "'"};
            }
        }
    }
    for (const auto& t : traffics) {
        if (t.label.empty())
            throw std::invalid_argument{"Sweep_spec: unlabeled traffic"};
        if (t.is_application) {
            if (!t.graph)
                throw std::invalid_argument{
                    "Sweep_spec: application traffic '" + t.label +
                    "' has no core graph"};
            continue;
        }
        if (t.pattern == Sweep_pattern_kind::hotspot && t.hotspots.empty())
            throw std::invalid_argument{
                "Sweep_spec: hotspot traffic with no hotspots"};
        for (const auto& d : designs) {
            if (is_grid_pattern(t.pattern)) {
                if (d.kind == Sweep_topology_kind::ring)
                    throw std::invalid_argument{
                        "Sweep_spec: grid pattern '" + t.label +
                        "' on non-grid design '" + d.label + "'"};
                // Custom designs must declare their grid dims explicitly
                // for grid-shaped patterns (add_design sets the 0 sentinel).
                if (d.kind == Sweep_topology_kind::custom &&
                    (d.width < 1 || d.height < 1 ||
                     d.width * d.height !=
                         d.custom_topology->core_count()))
                    throw std::invalid_argument{
                        "Sweep_spec: grid pattern '" + t.label +
                        "' needs explicit width*height == core count on "
                        "custom design '" +
                        d.label + "'"};
                if (t.pattern == Sweep_pattern_kind::transpose &&
                    d.width != d.height)
                    throw std::invalid_argument{
                        "Sweep_spec: transpose needs a square grid on "
                        "design '" +
                        d.label + "'"};
            }
            if ((t.pattern == Sweep_pattern_kind::bit_complement ||
                 t.pattern == Sweep_pattern_kind::shuffle)) {
                const int cores =
                    d.kind == Sweep_topology_kind::custom
                        ? d.custom_topology->core_count()
                        : d.width * d.height;
                if (!is_power_of_two(cores))
                    throw std::invalid_argument{
                        "Sweep_spec: pattern '" + t.label +
                        "' needs a power-of-2 core count on design '" +
                        d.label + "'"};
            }
        }
    }
    if (latency_cap <= 0.0)
        throw std::invalid_argument{"Sweep_spec: latency_cap must be > 0"};
}

std::string Sweep_spec::curve_label(std::uint32_t design,
                                    std::uint32_t traffic,
                                    std::uint32_t scenario,
                                    std::uint32_t collective) const
{
    std::string label = designs.at(design).label + "/" +
                        designs.at(design).params_label + "/" +
                        traffics.at(traffic).label;
    // The implicit fault-free scenario adds no suffix, so specs without a
    // reliability axis keep their historical labels (and therefore seeds);
    // the implicit no-collective axis behaves identically.
    if (!fault_scenarios.empty())
        label += "/" + fault_scenarios.at(scenario).label;
    if (!collectives.empty())
        label += "/" + collectives.at(collective).label;
    return label;
}

std::uint64_t sweep_seed(const Sweep_spec& spec, const std::string& key)
{
    const std::uint64_t h =
        hash_label(hash_label(0xcbf29ce484222325ull, spec.name), key);
    return mix64(h ^ mix64(spec.base.seed));
}

std::vector<Sweep_point> Sweep_spec::enumerate() const
{
    validate();
    std::vector<Sweep_point> points;
    points.reserve(curve_count() * loads.size());
    for (std::uint32_t d = 0; d < designs.size(); ++d)
        for (std::uint32_t t = 0; t < traffics.size(); ++t)
            for (std::uint32_t s = 0; s < scenario_count(); ++s)
                for (std::uint32_t c = 0; c < collective_count(); ++c)
                    for (std::uint32_t li = 0; li < loads.size(); ++li) {
                        Sweep_point p;
                        p.index = static_cast<std::uint32_t>(points.size());
                        p.design = d;
                        p.traffic = t;
                        p.scenario = s;
                        p.collective = c;
                        p.load_index = li;
                        p.load = loads[li];
                        // Label-keyed: the seed survives reordering/
                        // appending of designs, traffics, scenarios,
                        // collectives and loads (only the point's own
                        // identity feeds it), so growing a spec never
                        // perturbs existing points.
                        p.seed = sweep_seed(*this,
                                            curve_label(d, t, s, c) + "@" +
                                                std::to_string(li));
                        points.push_back(p);
                    }
    return points;
}

Topology make_sweep_topology(const Design_variant& d)
{
    switch (d.kind) {
    case Sweep_topology_kind::mesh: {
        Mesh_params mp;
        mp.width = d.width;
        mp.height = d.height;
        mp.link_pipeline_stages = d.link_pipeline_stages;
        return make_mesh(mp);
    }
    case Sweep_topology_kind::torus: {
        Torus_params tp;
        tp.width = d.width;
        tp.height = d.height;
        return make_torus(tp);
    }
    case Sweep_topology_kind::ring: {
        Ring_params rp;
        rp.node_count = d.width;
        return make_ring(rp);
    }
    case Sweep_topology_kind::custom: return *d.custom_topology;
    }
    throw std::logic_error{"make_sweep_topology: bad kind"};
}

Route_set make_sweep_routes(const Design_variant& d, const Topology& topo)
{
    if (d.kind == Sweep_topology_kind::custom) return *d.custom_routes;
    if (d.routing == Sweep_routing_kind::shortest_path)
        return shortest_path_routes(topo);
    switch (d.kind) {
    case Sweep_topology_kind::mesh: {
        Mesh_params mp;
        mp.width = d.width;
        mp.height = d.height;
        mp.link_pipeline_stages = d.link_pipeline_stages;
        return xy_routes(topo, mp);
    }
    case Sweep_topology_kind::torus: {
        Torus_params tp;
        tp.width = d.width;
        tp.height = d.height;
        return torus_routes(topo, tp);
    }
    case Sweep_topology_kind::ring: {
        Ring_params rp;
        rp.node_count = d.width;
        return ring_routes(topo, rp);
    }
    case Sweep_topology_kind::custom: break; // handled above
    }
    throw std::logic_error{"make_sweep_routes: bad kind"};
}

std::shared_ptr<const Dest_pattern> make_sweep_pattern(
    const Traffic_variant& t, const Design_variant& d, int core_count)
{
    if (t.is_application)
        throw std::logic_error{
            "make_sweep_pattern: application traffic has no pattern"};
    switch (t.pattern) {
    case Sweep_pattern_kind::uniform:
        return make_uniform_pattern(core_count);
    case Sweep_pattern_kind::transpose:
        return make_transpose_pattern(d.width, d.height);
    case Sweep_pattern_kind::bit_complement:
        return make_bit_complement_pattern(core_count);
    case Sweep_pattern_kind::shuffle:
        return make_shuffle_pattern(core_count);
    case Sweep_pattern_kind::neighbor:
        return make_neighbor_pattern(d.width, d.height);
    case Sweep_pattern_kind::tornado:
        return make_tornado_pattern(d.width, d.height);
    case Sweep_pattern_kind::hotspot:
        return make_hotspot_pattern(core_count, t.hotspots, t.hot_fraction);
    }
    throw std::logic_error{"make_sweep_pattern: bad kind"};
}

Sweep_config point_config(const Sweep_spec& spec, const Design_variant& d,
                          std::uint64_t seed, const Topology* topo,
                          std::uint32_t scenario)
{
    Sweep_config cfg = spec.base;
    cfg.seed = seed;
    // The early-stop threshold is the spec's saturation cap: a point the
    // sweep would classify as saturated anyway is exactly the one worth
    // cutting short (base.early_stop_check arms the protocol; the spec owns
    // the cap so the two classifications can never disagree).
    if (cfg.early_stop_check != 0)
        cfg.early_stop_latency_cap = spec.latency_cap;
    cfg.build.allow_partial_routes = d.allow_partial_routes;
    if (d.shard_threads > 1) {
        cfg.build.kernel_mode = Kernel_mode::sharded;
        cfg.build.partition = Partition_plan::contiguous(d.shard_threads);
    } else if (d.shard_threads == 1) {
        cfg.build.kernel_mode = Kernel_mode::activity_gated;
        cfg.build.partition = Partition_plan::single();
    }
    if (!spec.fault_scenarios.empty() && topo != nullptr) {
        const Fault_scenario& sc = spec.fault_scenarios.at(scenario);
        // Scenario shapes are declarative; the concrete victims come from a
        // random plan over the point's actual topology, seeded from the
        // point's label-keyed seed + the scenario label so every worker
        // (and every rerun) kills the same links, routers and region.
        Random_fault_shape shape;
        shape.transient_count = sc.transient_count;
        shape.permanent_link_count = sc.permanent_link_count;
        shape.router_death_count = sc.router_death_count;
        shape.region_switch_count = sc.region_switch_count;
        Fault_plan plan = Fault_plan::random_plan(
            *topo, mix64(seed ^ hash_label(0xcbf29ce484222325ull, sc.label)),
            shape, cfg.warmup + cfg.measure);
        plan.reroute_latency = sc.reroute_latency;
        plan.replay = sc.replay;
        cfg.build.fault_plan = std::make_shared<const Fault_plan>(
            std::move(plan));
    }
    return cfg;
}

} // namespace noc
