#include "explore/sweep_result.h"

#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace noc {

std::string shortest_double(double v)
{
    for (int prec = 6; prec < 17; ++prec) {
        char shorter[64];
        std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v || (std::isnan(back) && std::isnan(v)))
            return shorter;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string json_escape_string(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            // RFC 8259 forbids raw control characters inside strings.
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

namespace {

/// RFC 4180 quoting for fields that carry free-form text (labels, error
/// messages): wrap in quotes when the field contains a separator, a quote
/// or a newline, doubling embedded quotes.
std::string csv_escape(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out += "\"";
    return out;
}

/// A point that contributes to curve metrics: ran, drained, under the cap.
bool usable(const Point_result& p, double latency_cap)
{
    return p.error.empty() && !p.skipped && p.load.drained &&
           p.load.avg_packet_latency <= latency_cap &&
           p.load.packets > 0;
}

double curve_cost_bits(const Design_variant& d, const Topology& topo)
{
    const double width = d.params.flit_width_bits;
    double wiring = static_cast<double>(topo.link_count()) * width;
    double buffering = 0.0;
    for (int s = 0; s < topo.switch_count(); ++s)
        buffering += static_cast<double>(topo.input_port_count(
                         Switch_id{static_cast<std::uint32_t>(s)})) *
                     d.params.total_vcs() * d.params.buffer_depth * width;
    return wiring + buffering;
}

} // namespace

Sweep_result assemble_sweep_result(const Sweep_spec& spec,
                                   std::vector<Point_result> point_results,
                                   const std::vector<double>& saturation)
{
    const std::size_t loads = spec.loads.size();
    if (point_results.size() != spec.curve_count() * loads)
        throw std::invalid_argument{
            "assemble_sweep_result: point count does not match the spec"};
    if (saturation.size() != spec.curve_count())
        throw std::invalid_argument{
            "assemble_sweep_result: saturation count does not match"};

    Sweep_result result;
    result.spec_name = spec.name;
    result.has_fault_axis = !spec.fault_scenarios.empty();
    result.has_early_stop = spec.base.early_stop_check != 0;
    result.has_collective_axis = !spec.collectives.empty();
    result.curves.reserve(spec.curve_count());

    std::size_t next = 0;
    for (std::uint32_t d = 0; d < spec.designs.size(); ++d) {
        const Topology topo = make_sweep_topology(spec.designs[d]);
        for (std::uint32_t t = 0; t < spec.traffics.size(); ++t)
            for (std::uint32_t s = 0;
                 s < static_cast<std::uint32_t>(spec.scenario_count()); ++s)
            for (std::uint32_t co = 0;
                 co < static_cast<std::uint32_t>(spec.collective_count());
                 ++co) {
                Design_curve curve;
                curve.design = d;
                curve.traffic = t;
                curve.scenario = s;
                curve.collective = co;
                curve.label = spec.curve_label(d, t, s, co);
                curve.design_label = spec.designs[d].label;
                curve.params_label = spec.designs[d].params_label;
                curve.traffic_label = spec.traffics[t].label;
                if (result.has_fault_axis)
                    curve.scenario_label = spec.fault_scenarios[s].label;
                if (result.has_collective_axis)
                    curve.collective_label = spec.collectives[co].label;
                curve.cost_bits = curve_cost_bits(spec.designs[d], topo);
                for (std::size_t li = 0; li < loads; ++li)
                    curve.points.push_back(std::move(point_results[next++]));

                // Zero-load latency: first usable grid point (lowest load).
                for (const auto& p : curve.points)
                    if (usable(p, spec.latency_cap)) {
                        curve.zero_load_latency = p.load.avg_packet_latency;
                        break;
                    }
                // Saturation: binary-search result when available, else the
                // best accepted throughput over usable grid points.
                const std::size_t ci = result.curves.size();
                if (saturation[ci] >= 0.0) {
                    curve.saturation_throughput = saturation[ci];
                    curve.saturation_searched = true;
                } else {
                    for (const auto& p : curve.points)
                        if (usable(p, spec.latency_cap) &&
                            p.load.accepted_flits_per_node_cycle >
                                curve.saturation_throughput)
                            curve.saturation_throughput =
                                p.load.accepted_flits_per_node_cycle;
                }
                // Availability: mean over usable points (each already the
                // measured-window delivered/(delivered+dropped) ratio).
                double avail_sum = 0.0;
                std::size_t avail_n = 0;
                for (const auto& p : curve.points)
                    if (usable(p, spec.latency_cap)) {
                        avail_sum += p.load.availability;
                        ++avail_n;
                    }
                if (avail_n > 0)
                    curve.availability =
                        avail_sum / static_cast<double>(avail_n);
                // Collective completion: lowest usable load whose
                // collective finished (the zero-load analogue).
                if (result.has_collective_axis)
                    for (const auto& p : curve.points)
                        if (usable(p, spec.latency_cap) &&
                            p.load.collective_completed) {
                            curve.collective_latency = static_cast<double>(
                                p.load.collective_completion_cycles);
                            break;
                        }
                result.curves.push_back(std::move(curve));
            }
    }

    // Simulation-backed Pareto front over (cost, zero-load latency,
    // -saturation throughput, -availability, collective latency): the
    // synth layer's dominance rule (no worse everywhere, strictly better
    // somewhere) extended by the reliability and collective axes — with no
    // fault scenarios every availability is 1.0, with no collectives every
    // collective_latency is 0.0, and the filter is exactly the historical
    // three-dimensional one. Designs compete only WITHIN one (traffic,
    // scenario, collective) workload (a design's tornado curve must not
    // shadow its own uniform curve, nor a faulted curve its fault-free
    // baseline, nor an allreduce curve a broadcast one — those answer
    // different questions), so fronts are computed per triple and reported
    // as one sorted union. Curves with no usable point carry no evidence
    // and are excluded.
    const auto dominates5 = [](const Design_curve& a, const Design_curve& b) {
        if (a.cost_bits > b.cost_bits) return false;
        if (a.zero_load_latency > b.zero_load_latency) return false;
        if (a.saturation_throughput < b.saturation_throughput) return false;
        if (a.availability < b.availability) return false;
        if (a.collective_latency > b.collective_latency) return false;
        return a.cost_bits < b.cost_bits ||
               a.zero_load_latency < b.zero_load_latency ||
               a.saturation_throughput > b.saturation_throughput ||
               a.availability > b.availability ||
               a.collective_latency < b.collective_latency;
    };
    for (std::uint32_t t = 0; t < spec.traffics.size(); ++t)
        for (std::uint32_t s = 0;
             s < static_cast<std::uint32_t>(spec.scenario_count()); ++s)
        for (std::uint32_t co = 0;
             co < static_cast<std::uint32_t>(spec.collective_count());
             ++co) {
            std::vector<std::size_t> candidates;
            for (std::size_t i = 0; i < result.curves.size(); ++i) {
                const Design_curve& c = result.curves[i];
                if (c.traffic != t || c.scenario != s ||
                    c.collective != co)
                    continue;
                // A curve without a single usable grid point has no
                // latency evidence (zero_load_latency kept its 0.0
                // sentinel, which would read as PERFECT latency to the
                // dominance filter) — excluded even when a saturation
                // search returned a throughput. With a collective axis the
                // same applies to a curve whose collective never finished
                // (collective_latency 0.0 would read as instantaneous).
                if (c.zero_load_latency <= 0.0) continue;
                if (result.has_collective_axis &&
                    c.collective_latency <= 0.0)
                    continue;
                candidates.push_back(i);
            }
            for (const std::size_t i : candidates) {
                bool dominated = false;
                for (const std::size_t j : candidates)
                    if (j != i && dominates5(result.curves[j],
                                             result.curves[i])) {
                        dominated = true;
                        break;
                    }
                if (!dominated) {
                    result.pareto.push_back(i);
                    result.curves[i].on_pareto = true;
                }
            }
        }
    std::sort(result.pareto.begin(), result.pareto.end());
    return result;
}

std::string Sweep_result::to_json() const
{
    std::string json = "{\n  \"sweep\": \"" + json_escape_string(spec_name) +
                       "\",\n  \"curves\": [\n";
    for (std::size_t i = 0; i < curves.size(); ++i) {
        const Design_curve& c = curves[i];
        json += "    {\"label\": \"" + json_escape_string(c.label) +
                "\", \"design\": \"" + json_escape_string(c.design_label) +
                "\", \"params\": \"" + json_escape_string(c.params_label) +
                "\", \"traffic\": \"" + json_escape_string(c.traffic_label) +
                "\",";
        if (has_fault_axis)
            json += " \"scenario\": \"" +
                    json_escape_string(c.scenario_label) + "\",";
        if (has_collective_axis)
            json += " \"collective\": \"" +
                    json_escape_string(c.collective_label) + "\",";
        json += "\n     \"cost_bits\": " + shortest_double(c.cost_bits) +
                ", \"zero_load_latency\": " + shortest_double(c.zero_load_latency) +
                ", \"saturation_throughput\": " +
                shortest_double(c.saturation_throughput) +
                ", \"saturation_searched\": " +
                (c.saturation_searched ? "true" : "false") +
                (has_fault_axis
                     ? ", \"availability\": " + shortest_double(c.availability)
                     : std::string{}) +
                (has_collective_axis
                     ? ", \"collective_latency\": " +
                           shortest_double(c.collective_latency)
                     : std::string{}) +
                ", \"on_pareto\": " + (c.on_pareto ? "true" : "false") +
                ",\n     \"points\": [\n";
        for (std::size_t p = 0; p < c.points.size(); ++p) {
            const Point_result& pr = c.points[p];
            json += "       {\"load\": " + shortest_double(pr.point.load);
            if (pr.skipped) {
                json += ", \"skipped\": true}";
            } else if (!pr.error.empty()) {
                json += ", \"error\": \"" + json_escape_string(pr.error) + "\"}";
            } else {
                json +=
                    ", \"offered\": " +
                    shortest_double(pr.load.offered_flits_per_node_cycle) +
                    ", \"accepted\": " +
                    shortest_double(pr.load.accepted_flits_per_node_cycle) +
                    ", \"avg_packet_latency\": " +
                    shortest_double(pr.load.avg_packet_latency) +
                    ", \"avg_network_latency\": " +
                    shortest_double(pr.load.avg_network_latency) +
                    ", \"p99_estimate\": " + shortest_double(pr.load.p99_estimate) +
                    ", \"max_latency\": " + shortest_double(pr.load.max_latency) +
                    ", \"packets\": " + std::to_string(pr.load.packets) +
                    ", \"drained\": " +
                    (pr.load.drained ? "true" : "false");
                if (has_early_stop)
                    json += std::string{", \"early_stopped\": "} +
                            (pr.load.early_stopped ? "true" : "false") +
                            ", \"measured_cycles\": " +
                            std::to_string(pr.load.measured_cycles);
                if (has_collective_axis)
                    json += ", \"collective_completion\": " +
                            std::to_string(
                                pr.load.collective_completion_cycles) +
                            ", \"collective_completed\": " +
                            (pr.load.collective_completed ? "true"
                                                          : "false");
                if (has_fault_axis)
                    json +=
                        ", \"dropped\": " +
                        std::to_string(pr.load.packets_dropped) +
                        ", \"unreachable\": " +
                        std::to_string(pr.load.packets_unreachable) +
                        ", \"corrupted_flits\": " +
                        std::to_string(pr.load.corrupted_flits) +
                        ", \"retransmissions\": " +
                        std::to_string(pr.load.retransmissions) +
                        ", \"recoveries\": " +
                        std::to_string(pr.load.recoveries) +
                        ", \"replayed\": " +
                        std::to_string(pr.load.packets_replayed) +
                        ", \"live_switchovers\": " +
                        std::to_string(pr.load.live_switchovers) +
                        ", \"availability\": " +
                        shortest_double(pr.load.availability) +
                        ", \"connected_availability\": " +
                        shortest_double(pr.load.connected_availability);
                json += "}";
            }
            json += p + 1 < c.points.size() ? ",\n" : "\n";
        }
        json += "     ]}";
        json += i + 1 < curves.size() ? ",\n" : "\n";
    }
    json += "  ],\n  \"pareto\": [";
    for (std::size_t i = 0; i < pareto.size(); ++i) {
        json += "\"" + json_escape_string(curves[pareto[i]].label) + "\"";
        if (i + 1 < pareto.size()) json += ", ";
    }
    json += "]\n}\n";
    return json;
}

std::string Sweep_result::to_csv() const
{
    std::string csv = "curve,design,params,traffic,";
    if (has_fault_axis) csv += "scenario,";
    if (has_collective_axis) csv += "collective,";
    csv +=
        "load,offered,accepted,"
        "avg_packet_latency,avg_network_latency,p99_estimate,max_latency,"
        "packets,drained,";
    if (has_early_stop) csv += "early_stopped,measured_cycles,";
    if (has_collective_axis)
        csv += "collective_completion,collective_completed,";
    if (has_fault_axis)
        csv += "dropped,unreachable,corrupted_flits,retransmissions,"
               "recoveries,replayed,live_switchovers,availability,"
               "connected_availability,";
    csv += "error\n";
    // Six empty value columns for rows with no measurement (skipped /
    // errored), plus the early-stop / collective / reliability ones when
    // those axes are on.
    std::string empty_values = ",,,,,,0,false,";
    if (has_early_stop) empty_values += ",,";
    if (has_collective_axis) empty_values += ",,";
    if (has_fault_axis) empty_values += ",,,,,,,,,";
    for (const auto& c : curves)
        for (const auto& p : c.points) {
            csv += csv_escape(c.label) + "," + csv_escape(c.design_label) +
                   "," + csv_escape(c.params_label) + "," +
                   csv_escape(c.traffic_label) + ",";
            if (has_fault_axis) csv += csv_escape(c.scenario_label) + ",";
            if (has_collective_axis)
                csv += csv_escape(c.collective_label) + ",";
            csv += shortest_double(p.point.load) + ",";
            if (p.skipped) {
                csv += empty_values + "skipped";
            } else if (!p.error.empty()) {
                csv += empty_values + csv_escape(p.error);
            } else {
                csv += shortest_double(p.load.offered_flits_per_node_cycle) + "," +
                       shortest_double(p.load.accepted_flits_per_node_cycle) + "," +
                       shortest_double(p.load.avg_packet_latency) + "," +
                       shortest_double(p.load.avg_network_latency) + "," +
                       shortest_double(p.load.p99_estimate) + "," +
                       shortest_double(p.load.max_latency) + "," +
                       std::to_string(p.load.packets) + "," +
                       (p.load.drained ? "true" : "false") + ",";
                if (has_early_stop)
                    csv += std::string{p.load.early_stopped ? "true"
                                                            : "false"} +
                           "," + std::to_string(p.load.measured_cycles) +
                           ",";
                if (has_collective_axis)
                    csv += std::to_string(
                               p.load.collective_completion_cycles) +
                           "," +
                           (p.load.collective_completed ? "true" : "false") +
                           ",";
                if (has_fault_axis)
                    csv += std::to_string(p.load.packets_dropped) + "," +
                           std::to_string(p.load.packets_unreachable) + "," +
                           std::to_string(p.load.corrupted_flits) + "," +
                           std::to_string(p.load.retransmissions) + "," +
                           std::to_string(p.load.recoveries) + "," +
                           std::to_string(p.load.packets_replayed) + "," +
                           std::to_string(p.load.live_switchovers) + "," +
                           shortest_double(p.load.availability) + "," +
                           shortest_double(p.load.connected_availability) +
                           ",";
            }
            csv += "\n";
        }
    return csv;
}

std::string Sweep_result::report() const
{
    std::ostringstream os;
    os << "# Design-space sweep — " << spec_name << "\n\n"
       << curves.size() << " design curves, " << pareto.size()
       << " on the simulation-backed Pareto front (" << worker_threads
       << " worker threads, " << format_double(wall_seconds, 2)
       << " s wall)\n\n";
    {
        std::vector<std::string> headers{"curve", "cost(bits)", "lat0(cy)",
                                         "sat(fl/n/cy)", "sat src"};
        if (has_fault_axis) headers.emplace_back("avail");
        if (has_collective_axis) headers.emplace_back("coll(cy)");
        headers.emplace_back("pareto");
        Text_table table{std::move(headers)};
        for (const auto& c : curves) {
            table.row()
                .add(c.label)
                .add(c.cost_bits, 0)
                .add(c.zero_load_latency, 1)
                .add(c.saturation_throughput, 3)
                .add(c.saturation_searched ? "search" : "grid");
            if (has_fault_axis) table.add(c.availability, 4);
            if (has_collective_axis) table.add(c.collective_latency, 0);
            table.add(c.on_pareto ? "*" : "");
        }
        table.print(os);
    }
    if (has_early_stop) {
        std::uint64_t stopped = 0;
        std::uint64_t measured_cycles = 0;
        std::size_t ran = 0;
        for (const auto& c : curves)
            for (const auto& p : c.points)
                if (p.error.empty() && !p.skipped) {
                    ++ran;
                    measured_cycles += p.load.measured_cycles;
                    if (p.load.early_stopped) ++stopped;
                }
        os << "\n" << stopped << " of " << ran
           << " point(s) early-stopped at live saturation; "
           << measured_cycles << " cycles measured in total\n";
    }
    std::size_t retried = 0;
    for (const auto& c : curves)
        for (const auto& p : c.points)
            if (p.retried && p.error.empty()) ++retried;
    if (retried > 0)
        os << "\n" << retried
           << " point(s) succeeded only on the runner's second attempt\n";
    bool errors = false;
    for (const auto& c : curves)
        for (const auto& p : c.points)
            if (!p.error.empty()) {
                if (!errors) os << "\nFailed points:\n";
                errors = true;
                os << "- " << c.label << " @ " << p.point.load << ": "
                   << p.error << "\n";
            }
    return os.str();
}

} // namespace noc
