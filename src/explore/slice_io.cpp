#include "explore/slice_io.h"

#include <cstdio>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace noc {

std::string slice_file_name(std::uint32_t a, std::uint32_t b)
{
    return "BENCH_sweep_points_" + std::to_string(a) + "_" +
           std::to_string(b) + ".json";
}

std::string slice_point_record(const std::string& curve_label,
                               const Point_result& pr)
{
    std::string line = "    {\"index\": " +
                       std::to_string(pr.point.index) + ", \"curve\": \"" +
                       json_escape_string(curve_label) + "\", \"load\": " +
                       shortest_double(pr.point.load);
    if (!pr.error.empty())
        return line + ", \"error\": \"" + json_escape_string(pr.error) +
               "\"}";
    return line + ", \"offered\": " +
           shortest_double(pr.load.offered_flits_per_node_cycle) +
           ", \"accepted\": " +
           shortest_double(pr.load.accepted_flits_per_node_cycle) +
           ", \"avg_packet_latency\": " +
           shortest_double(pr.load.avg_packet_latency) +
           ", \"p99_estimate\": " + shortest_double(pr.load.p99_estimate) +
           ", \"packets\": " + std::to_string(pr.load.packets) +
           ", \"drained\": " + (pr.load.drained ? "true" : "false") + "}";
}

std::string slice_budget_tag(const Sweep_spec& spec)
{
    return "w" + std::to_string(spec.base.warmup) + "-m" +
           std::to_string(spec.base.measure) + "-d" +
           std::to_string(spec.base.drain_limit) + "-s" +
           std::to_string(spec.base.seed);
}

std::string slice_payload(const std::string& spec_name,
                          const std::string& budget, std::uint32_t a,
                          std::uint32_t b, std::uint32_t grid_points,
                          const std::vector<std::string>& records)
{
    std::string out = "{\n  \"bench\": \"sweep_points\",\n  \"spec\": \"" +
                      spec_name + "\",\n  \"budget\": \"" + budget +
                      "\",\n  \"grid_points\": \"" +
                      std::to_string(grid_points) + "\",\n  \"range\": \"" +
                      std::to_string(a) + ".." + std::to_string(b) +
                      "\",\n  \"points\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i)
        out += records[i] + (i + 1 < records.size() ? ",\n" : "\n");
    out += "  ]\n}\n";
    return out;
}

std::string write_file_atomic(const std::string& path,
                              const std::string& content)
{
#ifdef _WIN32
    const int pid = _getpid();
#else
    const int pid = static_cast<int>(getpid());
#endif
    const std::string tmp = path + ".tmp." + std::to_string(pid);
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return "cannot open " + tmp + " for writing";
    const std::size_t wrote =
        std::fwrite(content.data(), 1, content.size(), f);
    const bool flushed = std::fflush(f) == 0;
    if (std::fclose(f) != 0 || wrote != content.size() || !flushed) {
        std::remove(tmp.c_str());
        return "short or failed write to " + tmp;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return "cannot rename " + tmp + " over " + path;
    }
    return {};
}

} // namespace noc
