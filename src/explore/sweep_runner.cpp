#include "explore/sweep_runner.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

namespace noc {

namespace {

/// Execute one grid point: build the whole system fresh (topology, routes,
/// traffic) and run the standard warmup/measure/drain protocol. Every input
/// derives from the spec + the point's seed, so any worker produces the
/// identical Load_point.
/// Materialize a spec-level collective workload as a driver config.
Collective_config make_collective_config(const Collective_workload& w)
{
    Collective_config cc;
    cc.kind = w.kind;
    cc.root = Core_id{w.root};
    cc.payload_flits = w.payload_flits;
    cc.fanin = w.fanin;
    cc.use_multicast = w.use_multicast;
    return cc;
}

Load_point run_point(const Sweep_spec& spec, const Sweep_point& p)
{
    const Design_variant& d = spec.designs[p.design];
    const Traffic_variant& t = spec.traffics[p.traffic];
    const Topology topo = make_sweep_topology(d);
    const Route_set routes = make_sweep_routes(d, topo);
    const Sweep_config cfg = point_config(spec, d, p.seed, &topo, p.scenario);
    if (t.is_application)
        return run_application_load(topo, routes, d.params, *t.graph,
                                    p.load, cfg);
    if (!spec.collectives.empty())
        return run_synthetic_load_with_collective(
            topo, routes, d.params, p.load,
            [&] { return make_sweep_pattern(t, d, topo.core_count()); }, cfg,
            make_collective_config(spec.collectives[p.collective]));
    return run_synthetic_load(
        topo, routes, d.params, p.load,
        [&] { return make_sweep_pattern(t, d, topo.core_count()); }, cfg);
}

/// Per-curve saturation binary search (synthetic traffic only). One
/// sequential task: the search's iterations depend on each other. The
/// search measures the BACKGROUND channel, so it runs without the curve's
/// collective (the label-keyed seed still distinguishes collective curves).
double search_saturation(const Sweep_spec& spec, std::uint32_t design,
                         std::uint32_t traffic, std::uint32_t scenario,
                         std::uint32_t collective)
{
    const Design_variant& d = spec.designs[design];
    const Traffic_variant& t = spec.traffics[traffic];
    const Topology topo = make_sweep_topology(d);
    const Route_set routes = make_sweep_routes(d, topo);
    const Sweep_config cfg = point_config(
        spec, d,
        sweep_seed(spec,
                   spec.curve_label(design, traffic, scenario, collective) +
                       "@saturation"),
        &topo, scenario);
    return find_saturation_throughput(
        topo, routes, d.params,
        [&] { return make_sweep_pattern(t, d, topo.core_count()); }, cfg,
        spec.latency_cap);
}

} // namespace

Sweep_runner::Sweep_runner(std::uint32_t worker_threads)
{
    if (worker_threads == 0) {
        worker_threads = std::thread::hardware_concurrency();
        if (worker_threads == 0) worker_threads = 1;
    }
    workers_.reserve(worker_threads - 1);
    for (std::uint32_t w = 1; w < worker_threads; ++w)
        workers_.emplace_back([this] { worker_main(); });
}

Sweep_runner::~Sweep_runner()
{
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        shutdown_ = true;
    }
    job_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void Sweep_runner::worker_main()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock{mutex_};
            // Park; run() waits for a full park before mutating job state,
            // so a worker can never observe a half-built job.
            ++parked_;
            done_cv_.notify_all();
            job_cv_.wait(lock,
                         [&] { return shutdown_ || job_epoch_ != seen; });
            --parked_;
            if (shutdown_) return;
            seen = job_epoch_;
        }
        execute_tasks();
    }
}

void Sweep_runner::execute_tasks()
{
    for (;;) {
        const std::uint32_t i =
            next_task_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks_.size()) return;
        run_task(tasks_[i]);
        // The release part of the final decrement publishes every task's
        // writes to the run() thread's acquire read of 0.
        if (tasks_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            const std::lock_guard<std::mutex> lock{mutex_};
            done_cv_.notify_all();
        }
    }
}

void Sweep_runner::run_task(const Task& t)
{
    const auto scenarios =
        static_cast<std::uint32_t>(spec_->scenario_count());
    const auto collectives =
        static_cast<std::uint32_t>(spec_->collective_count());
    const auto traffics = static_cast<std::uint32_t>(spec_->traffics.size());
    if (t.is_saturation) {
        try {
            // Curve index decomposes as d*(T*S*C) + t*(S*C) + s*C + c —
            // the enumeration order of Sweep_spec::enumerate().
            saturation_[t.curve] = search_saturation(
                *spec_, t.curve / (traffics * scenarios * collectives),
                (t.curve / (scenarios * collectives)) % traffics,
                (t.curve / collectives) % scenarios, t.curve % collectives);
        } catch (...) {
            saturation_[t.curve] = -1.0; // fall back to the grid estimate
        }
        return;
    }
    Point_result& out = results_[t.point_index];
    out.point = points_[t.point_index];
    const auto t0 = std::chrono::steady_clock::now();
    // Retry on failure under the runner's Retry_policy (default: one
    // immediate retry): the inputs are deterministic, so further attempts
    // only help against environmental failures (allocation pressure from
    // sibling workers, thread-creation limits for a sharded point) —
    // exactly the ones worth absorbing instead of poisoning a long sweep.
    // A deterministic throw exhausts the budget failing identically and
    // keeps its message; `retried` records that the point needed more than
    // one attempt. Backoff (when configured) sleeps only this worker;
    // results land by index, so the delay is invisible in the output.
    const std::uint32_t attempts =
        retry_.max_attempts == 0 ? 1 : retry_.max_attempts;
    for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            const std::uint32_t delay = retry_.delay_ms(attempt);
            if (delay > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{delay});
        }
        out.error.clear();
        try {
            // The chaos hook (set_point_attempt_hook) throws from the same
            // place an environmental failure would, so the retry path is
            // testable without one.
            if (point_attempt_hook_)
                point_attempt_hook_(out.point, static_cast<int>(attempt));
            out.load = run_point(*spec_, out.point);
        } catch (const std::exception& e) {
            out.error = e.what();
        } catch (...) {
            out.error = "unknown exception";
        }
        if (out.error.empty()) break;
        // `retried` records a retry actually dispatched — under a
        // single-attempt budget a failure is just a failure.
        if (attempt + 1 < attempts) out.retried = true;
    }
    // A fault point that hit the per-point drain cap (Sweep_config::
    // fault_drain_cap) records a named error rather than posing as a
    // merely-saturated measurement: a storm can legitimately leave a point
    // unable to drain, and the cap plus this label keep the worker from
    // wedging on drain_limit while making the cause visible in reports.
    if (out.error.empty() && !out.load.drained &&
        spec_->base.fault_drain_cap != 0 && !spec_->fault_scenarios.empty())
        out.error = "fault drain cap (" +
                    std::to_string(spec_->base.fault_drain_cap) +
                    " cycles) exceeded before the point drained";
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (point_done_hook_) point_done_hook_();
}

Sweep_result Sweep_runner::run(const Sweep_spec& spec, Point_range range)
{
    // A previous job's workers may still be draining their last claim
    // attempt; job state may only be rebuilt once every worker is parked.
    {
        std::unique_lock<std::mutex> lock{mutex_};
        done_cv_.wait(lock, [&] { return parked_ == workers_.size(); });
    }

    const auto t0 = std::chrono::steady_clock::now();
    points_ = spec.enumerate(); // validates
    spec_ = &spec;
    results_.assign(points_.size(), Point_result{});
    saturation_.assign(spec.curve_count(), -1.0);
    tasks_.clear();
    const bool full_grid =
        range.begin == 0 && range.end >= points_.size();
    // Saturation searches go FIRST: each is ~7 grid points of sequential
    // work, so starting them last would leave the tail of the job bounded
    // by one search with every other worker idle. Claim order only affects
    // wall time — results land by index either way. A slice run skips
    // them: per-curve searches would be duplicated by every slice.
    if (spec.search_saturation && full_grid)
        for (std::uint32_t c = 0;
             c < static_cast<std::uint32_t>(spec.curve_count()); ++c)
            if (!spec.traffics[(c / (spec.scenario_count() *
                                     spec.collective_count())) %
                               spec.traffics.size()]
                     .is_application)
                tasks_.push_back({true, 0, c});
    for (std::uint32_t i = 0; i < points_.size(); ++i) {
        if (i >= range.begin && i < range.end) {
            tasks_.push_back({false, i, 0});
        } else {
            results_[i].point = points_[i];
            results_[i].skipped = true;
        }
    }
    next_task_.store(0, std::memory_order_relaxed);
    tasks_left_.store(static_cast<std::uint32_t>(tasks_.size()),
                      std::memory_order_relaxed);

    {
        const std::lock_guard<std::mutex> lock{mutex_};
        ++job_epoch_;
    }
    job_cv_.notify_all();
    execute_tasks(); // the calling thread is an executor too
    {
        std::unique_lock<std::mutex> lock{mutex_};
        done_cv_.wait(lock, [&] {
            return tasks_left_.load(std::memory_order_acquire) == 0;
        });
    }

    Sweep_result result =
        assemble_sweep_result(spec, std::move(results_), saturation_);
    result.worker_threads = worker_threads();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    spec_ = nullptr;
    return result;
}

Sweep_result run_sweep(const Sweep_spec& spec, std::uint32_t worker_threads)
{
    Sweep_runner runner{worker_threads};
    return runner.run(spec);
}

Sweep_result run_sweep_slice(const Sweep_spec& spec,
                             Sweep_runner::Point_range range,
                             std::uint32_t worker_threads)
{
    Sweep_runner runner{worker_threads};
    return runner.run(spec, range);
}

} // namespace noc
