// Slice-file protocol for distributed sweeps — the byte-level contract
// between the producers (`bench_sweep --points a..b` worker processes, one
// per farm slice) and the consumers (`bench_sweep --merge`, the farm
// orchestrator's checkpoint scan and final merge).
//
// Everything here used to live inside bench_sweep; it moved into the
// library so the farm layer (src/farm) reassembles slices with the SAME
// serialization code the workers used to write them — byte-identity of a
// farmed sweep against a single-process run is a function call away, not a
// re-implementation. The formatting primitives (shortest_double,
// json_escape_string) come from sweep_result.h, so slice files written on
// different machines agree byte-for-byte on identical results.
//
// Publication is ATOMIC: write_file_atomic writes `<path>.tmp.<pid>` and
// renames it over `<path>` only when the full payload is on disk. A worker
// that crashes mid-write can therefore never produce a half-slice under
// the published name — the torn bytes stay under the tmp name, which every
// consumer ignores (and the farm's resume scan deletes). slice_merge's
// torn-document diagnostics still exist as defense in depth against
// non-atomic transports (a partial download, a truncated copy).
#pragma once

#include "explore/sweep_result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace noc {

/// Canonical file name of the published slice covering points [a, b).
[[nodiscard]] std::string slice_file_name(std::uint32_t a, std::uint32_t b);

/// One deterministic record line for an executed point (no trailing comma
/// or newline; the payload assembler adds those).
[[nodiscard]] std::string slice_point_record(const std::string& curve_label,
                                             const Point_result& pr);

/// Measurement-budget fingerprint of a spec. Slices are only mergeable
/// when the whole protocol matches — the spec NAME alone would let a
/// --smoke slice (same name, 8x smaller measurement window) silently mix
/// with full-budget slices.
[[nodiscard]] std::string slice_budget_tag(const Sweep_spec& spec);

/// Assemble the slice-file payload from records already sorted by index.
/// A full merge is the same document with a == 0, b == grid_points.
[[nodiscard]] std::string slice_payload(
    const std::string& spec_name, const std::string& budget, std::uint32_t a,
    std::uint32_t b, std::uint32_t grid_points,
    const std::vector<std::string>& records);

/// Atomic publication: write `path + ".tmp." + pid`, flush, rename over
/// `path`. Returns "" on success, else a diagnostic; on failure the target
/// is untouched (a leftover tmp file may exist and is safe to ignore).
[[nodiscard]] std::string write_file_atomic(const std::string& path,
                                            const std::string& content);

} // namespace noc
