// Sweep results: per-design latency/throughput curves assembled from
// per-point Load_points, simulated saturation, and the simulation-backed
// Pareto front (see the subsystem overview in sweep_spec.h).
#pragma once

#include "explore/sweep_spec.h"

#include <cstddef>
#include <string>
#include <vector>

namespace noc {

/// One executed point. wall_seconds is execution metadata — it is reported
/// by report() but deliberately excluded from to_json()/to_csv(), which
/// must be byte-identical regardless of worker count or machine load.
struct Point_result {
    Sweep_point point;
    Load_point load;
    double wall_seconds = 0.0;
    /// Non-empty when the point threw (bad combo, simulation invariant
    /// violation); the load fields are then meaningless and the point is
    /// excluded from curve metrics.
    std::string error;
    /// True when a Point_range run left this point to another process
    /// (distributed sweeps); the load fields are untouched and the point
    /// is excluded from curve metrics, serialized as {"skipped": true}.
    bool skipped = false;
    /// True when the first execution attempt threw and the runner re-ran
    /// the point (execution metadata, like wall_seconds: reported, never
    /// serialized — a retried point's load fields are byte-identical to a
    /// first-try success by determinism of the inputs).
    bool retried = false;
};

/// One (design, traffic) curve over the load grid.
struct Design_curve {
    std::uint32_t design = 0;  ///< index into Sweep_spec::designs
    std::uint32_t traffic = 0; ///< index into Sweep_spec::traffics
    /// Index into Sweep_spec::fault_scenarios (0, with an empty
    /// scenario_label, when the spec declares none).
    std::uint32_t scenario = 0;
    /// Index into Sweep_spec::collectives (0, with an empty
    /// collective_label, when the spec declares none).
    std::uint32_t collective = 0;
    std::string label; ///< "design/params/traffic[/scenario][/collective]"
    std::string design_label;
    std::string params_label;
    std::string traffic_label;
    std::string scenario_label;   ///< empty without a fault axis
    std::string collective_label; ///< empty without a collective axis
    /// Implementation-cost proxy in storage bits: wiring (links x flit
    /// width) + buffering (input ports x VCs x depth x flit width). The
    /// cost axis of the simulation-backed Pareto front — simulation
    /// measures performance, this stands in for the area/power the synth
    /// flow computes analytically.
    double cost_bits = 0.0;
    std::vector<Point_result> points; ///< load-grid order
    /// Mean packet latency at the lowest drained, unsaturated load.
    double zero_load_latency = 0.0;
    /// Accepted flits/node/cycle at saturation: the binary-search result
    /// when the spec asked for it, else the best drained grid point under
    /// the latency cap.
    double saturation_throughput = 0.0;
    bool saturation_searched = false;
    /// Measured-window delivery fraction delivered/(delivered+dropped),
    /// aggregated over the curve's usable points. 1.0 on fault-free runs;
    /// under a fault scenario this is the reliability dimension the Pareto
    /// front trades against cost/latency/throughput.
    double availability = 1.0;
    /// Collective completion latency (cycles) at the lowest usable load
    /// whose collective completed — the zero-load analogue for the
    /// collective dimension. 0.0 without a collective axis (or when no
    /// usable point's collective finished), which excludes the curve from
    /// the collective Pareto comparison rather than flattering it.
    double collective_latency = 0.0;
    /// On its workload's Pareto front (designs compete only within one
    /// (traffic, fault scenario, collective) triple; see
    /// Sweep_result::pareto).
    bool on_pareto = false;
};

/// Everything a sweep produced. Deterministic for a given spec: curves are
/// in spec enumeration order and every simulated quantity derives from
/// per-point seeds fixed by the spec, so two runs with different worker
/// counts serialize to byte-identical JSON/CSV.
struct Sweep_result {
    std::string spec_name;
    std::vector<Design_curve> curves;
    /// True when the spec declared fault scenarios; gates the reliability
    /// columns in to_json()/to_csv() so fault-free sweeps serialize
    /// byte-identically to builds that predate the fault axis.
    bool has_fault_axis = false;
    /// True when the spec armed the live saturation early-stop
    /// (Sweep_config::early_stop_check); gates the early_stopped /
    /// measured_cycles columns the same way has_fault_axis gates the
    /// reliability ones, so specs that never opt in serialize
    /// byte-identically to builds that predate the protocol.
    bool has_early_stop = false;
    /// True when the spec declared collective workloads; gates the
    /// collective columns in to_json()/to_csv() (same contract as the two
    /// bools above) and arms the collective-latency Pareto dimension.
    bool has_collective_axis = false;
    /// Curve indices (ascending) on the simulation-backed front over
    /// (cost_bits, zero_load_latency, -saturation_throughput,
    /// -availability, collective_latency), computed per (traffic,
    /// scenario, collective) triple: a design's curves under different
    /// workloads, fault scenarios or collectives answer different
    /// questions and never dominate each other. Without a fault axis every
    /// availability is 1.0, and without a collective axis every
    /// collective_latency is 0.0, so the filter degenerates to the
    /// historical three-dimensional front.
    std::vector<std::size_t> pareto;
    // Execution metadata (not serialized; see Point_result::wall_seconds).
    std::uint32_t worker_threads = 1;
    double wall_seconds = 0.0;

    /// Machine-readable result (bench trending). Byte-deterministic.
    [[nodiscard]] std::string to_json() const;
    /// One row per point: label, load, accepted, latencies... Deterministic.
    [[nodiscard]] std::string to_csv() const;
    /// Human-readable summary (markdown): curve table, Pareto front,
    /// execution metadata.
    [[nodiscard]] std::string report() const;
};

/// Shortest-round-trip double formatting — THE deterministic-bytes
/// contract every sweep serialization (to_json/to_csv and the bench-level
/// slice files) must share, so results written on different machines agree
/// byte-for-byte. Exposed so tooling never re-implements it.
[[nodiscard]] std::string shortest_double(double v);

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared for the same reason.
[[nodiscard]] std::string json_escape_string(const std::string& s);

/// Assemble curves, saturation figures and the Pareto front from executed
/// points (library-internal; Sweep_runner calls it, tests may too).
/// `point_results` must be in enumeration order; `saturation` holds the
/// per-curve binary-search results when the spec requested them (indexed by
/// curve, < 0 = not searched).
[[nodiscard]] Sweep_result assemble_sweep_result(
    const Sweep_spec& spec, std::vector<Point_result> point_results,
    const std::vector<double>& saturation);

} // namespace noc
