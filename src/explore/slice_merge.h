// Validation and merging of distributed sweep slice documents.
//
// A slice file (bench_sweep --points a..b) is one complete JSON document:
// a header object carrying (spec, budget, grid_points), one-line point
// records, and a closing brace. Merging must reject a damaged slice — a
// torn write from a straggler machine, a wrong file, a partial download —
// with a diagnostic rather than fold a plausible-looking fragment into a
// "complete" merge. The checks live here, in the library, so they are unit
// tested with deliberately damaged documents; bench_sweep --merge is a
// thin file-reading wrapper around them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace noc {

/// Accumulator across slice documents. Feed every document through
/// merge_slice_document, then call finish_slice_merge for the coverage
/// check and the final index-ordered record list.
struct Slice_merge {
    std::string spec_name;   ///< header "spec" — must agree across slices
    std::string budget;      ///< header "budget" — must agree across slices
    std::string grid_points; ///< header "grid_points" — total point count
    std::map<std::uint32_t, std::string> by_index; ///< normalized records
};

/// Validate one slice document and fold its records into `acc`. `name` is
/// used only for diagnostics (a file name, usually). Returns the empty
/// string on success, else a human-readable diagnostic; on failure `acc`
/// may hold records already folded from this document, so callers must
/// treat the whole merge as poisoned.
[[nodiscard]] std::string merge_slice_document(const std::string& name,
                                               const std::string& content,
                                               Slice_merge& acc);

/// Exact-coverage check: every index in [0, grid_points) present exactly
/// once. On success returns "" and fills `records` in index order; else a
/// diagnostic (missing tail slice, empty merge, unparseable total).
[[nodiscard]] std::string finish_slice_merge(const Slice_merge& acc,
                                             std::vector<std::string>& records);

} // namespace noc
