// Validation and merging of distributed sweep slice documents.
//
// A slice file (bench_sweep --points a..b) is one complete JSON document:
// a header object carrying (spec, budget, grid_points), one-line point
// records, and a closing brace. Merging must reject a damaged slice — a
// torn write from a straggler machine, a wrong file, a partial download —
// with a diagnostic rather than fold a plausible-looking fragment into a
// "complete" merge. The checks live here, in the library, so they are unit
// tested with deliberately damaged documents; bench_sweep --merge is a
// thin file-reading wrapper around them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace noc {

/// Accumulator across slice documents. Feed every document through
/// merge_slice_document, then call finish_slice_merge for the coverage
/// check and the final index-ordered record list.
struct Slice_merge {
    std::string spec_name;   ///< header "spec" — must agree across slices
    std::string budget;      ///< header "budget" — must agree across slices
    std::string grid_points; ///< header "grid_points" — total point count
    std::map<std::uint32_t, std::string> by_index; ///< normalized records
    /// Byte-identical records seen more than once. LEGITIMATE, not an
    /// error: the farm's straggler re-dispatch runs the same slice on two
    /// workers and publishes whichever finishes first — the loser may
    /// still land its (byte-identical, by determinism of the inputs) file,
    /// and an operator may pass the same file twice. They dedupe silently;
    /// this counter keeps them observable. A duplicate index with
    /// DIFFERENT bytes remains the fatal "divergent duplicate" diagnostic.
    std::uint64_t duplicate_records = 0;
};

/// Validate one slice document and fold its records into `acc`. `name` is
/// used only for diagnostics (a file name, usually). Returns the empty
/// string on success, else a human-readable diagnostic; on failure `acc`
/// may hold records already folded from this document, so callers must
/// treat the whole merge as poisoned.
[[nodiscard]] std::string merge_slice_document(const std::string& name,
                                               const std::string& content,
                                               Slice_merge& acc);

/// Exact-coverage check: every index in [0, grid_points) present exactly
/// once. On success returns "" and fills `records` in index order; else a
/// diagnostic (missing tail slice, empty merge, unparseable total).
[[nodiscard]] std::string finish_slice_merge(const Slice_merge& acc,
                                             std::vector<std::string>& records);

/// Partial-coverage report for an (incomplete) merge: which index ranges
/// are present and which are missing, e.g.
/// "coverage 8/12 points; missing [4..6) [10..12)". Used by the farm's
/// resume scan and failure reports so an aborted sweep names its gaps
/// instead of just failing the exact-coverage check.
[[nodiscard]] std::string slice_coverage_report(const Slice_merge& acc);

/// The missing half-open index ranges of [0, grid_points) — the re-run
/// work list for checkpoint/resume.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
slice_missing_ranges(const Slice_merge& acc);

} // namespace noc
