// src/explore — parallel design-space exploration over the cycle-accurate
// simulator.
//
// The paper's products story (§6) is that NoCs shipped because automated
// design flows could explore large (topology, operating-point, parameter)
// spaces before committing to silicon. The synth/ and flow/ layers explore
// that space ANALYTICALLY — fast closed-form power/latency/area models over
// thousands of candidates. This subsystem closes the loop the tool-flow
// literature (SunFloor/×pipesCompiler, the Kao & Fink Pareto framework)
// says a usable NoC tool needs: take the handful of designs that survive
// the analytic screen, or a hand-declared grid of generator-built ones, and
// validate them against the cycle-accurate simulator at scale —
// latency/throughput curves per design, simulated saturation, and a
// simulation-backed Pareto front that can cross-check the analytic pick
// (flow/design_flow.h's validate_with_simulation).
//
// The three pieces:
//   * Sweep_spec (this header) — declaratively enumerates points as the
//     cross product  designs × traffics × load grid,  where a design is a
//     (topology generator or prebuilt topology, routing, Network_params)
//     triple and a traffic is a synthetic destination pattern or an
//     application core graph. enumerate() assigns every point a
//     deterministic seed derived from the spec alone, so results never
//     depend on which worker runs which point.
//   * Sweep_runner (sweep_runner.h) — executes whole independent
//     Noc_system instances one-per-worker on a persistent thread pool
//     (embarrassingly parallel, the complement of the sharded kernel:
//     shard the 16x16 points, pack the 4x4 points — a design may request
//     both via shard_threads).
//   * Sweep_result (sweep_result.h) — assembles per-point Load_points into
//     per-design curves, computes simulated saturation, ranks designs on a
//     simulation-backed Pareto front, and serializes to JSON/CSV for bench
//     trending.
#pragma once

#include "collective/collective.h"
#include "topology/graph.h"
#include "topology/route.h"
#include "traffic/core_graph.h"
#include "traffic/experiment.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace noc {

/// Generator used to build a design's topology (custom = prebuilt pair).
enum class Sweep_topology_kind : std::uint8_t { mesh, torus, ring, custom };

/// Routing function for generator-built designs. dimension_order picks the
/// canonical deadlock-free function per generator (XY on meshes, dateline
/// dimension-order on tori, dateline shortest-direction on rings);
/// shortest_path is the BFS baseline with no deadlock guarantee — sweeps
/// report its undrained points honestly rather than hiding them.
enum class Sweep_routing_kind : std::uint8_t { dimension_order, shortest_path };

/// One design under evaluation: topology source + routing + parameters.
struct Design_variant {
    std::string label;
    Sweep_topology_kind kind = Sweep_topology_kind::mesh;
    /// Grid dims for mesh/torus; ring uses width*height switches. For
    /// custom designs add_design() resets both to 0 — set them explicitly
    /// (matching the core count) to use grid-shaped traffic patterns.
    int width = 4;
    int height = 4;
    int link_pipeline_stages = 0;
    Sweep_routing_kind routing = Sweep_routing_kind::dimension_order;
    /// Prebuilt topology/routes for kind == custom (e.g. a synthesized
    /// Design_point); shared so many points can reference one copy.
    std::shared_ptr<const Topology> custom_topology;
    std::shared_ptr<const Route_set> custom_routes;
    /// Synthesized designs route only the application's flows.
    bool allow_partial_routes = false;
    Network_params params{};
    /// Names the params variant inside design labels ("credit-vc1").
    std::string params_label = "default";
    /// Worker threads for THIS design's systems: 0 inherits the spec's
    /// base config; > 1 runs the point on the sharded kernel with a
    /// contiguous Partition_plan (large meshes shard while small points
    /// pack the sweep pool).
    std::uint32_t shard_threads = 0;
};

/// Synthetic destination pattern kinds (traffic/patterns.h). Grid-shaped
/// patterns (transpose/neighbor/tornado) take their dims from the design.
enum class Sweep_pattern_kind : std::uint8_t {
    uniform,
    transpose,
    bit_complement,
    shuffle,
    neighbor,
    tornado,
    hotspot,
};

/// One traffic workload: a synthetic pattern or an application core graph.
/// For synthetic traffic the load grid is in flits/node/cycle; for
/// application traffic it scales the graph's flow bandwidths.
struct Traffic_variant {
    std::string label;
    bool is_application = false;
    Sweep_pattern_kind pattern = Sweep_pattern_kind::uniform;
    std::vector<Core_id> hotspots; ///< hotspot pattern only
    double hot_fraction = 0.5;     ///< hotspot pattern only
    std::shared_ptr<const Core_graph> graph; ///< application traffic only
};

/// One reliability scenario: every point under it runs with a
/// Fault_plan::random_plan of this shape built against the point's actual
/// topology (arch/fault_plan.h), seeded from the point's label-keyed seed
/// so the same scenario hits the same links on every rerun and worker
/// count. An empty Sweep_spec::fault_scenarios list means the implicit
/// fault-free scenario — existing specs enumerate, seed and serialize
/// exactly as before the axis existed.
struct Fault_scenario {
    std::string label;
    std::uint32_t transient_count = 0;      ///< random flit corruptions
    std::uint32_t permanent_link_count = 0; ///< links killed mid-measure
    std::uint32_t router_death_count = 0;   ///< whole switches killed
    /// Switches powered off as one contiguous region (failure domain:
    /// all incident links plus the local NIs die together).
    std::uint32_t region_switch_count = 0;
    Cycle reroute_latency = 64; ///< failure-detection + LUT-rewrite delay
    /// Source NIs keep end-to-end replay records and re-queue purged
    /// packets after the reroute (Fault_plan::replay): drops on
    /// still-connected pairs become packets_replayed.
    bool replay = false;
};

/// One collective workload (src/collective): every point under it
/// additionally runs one collective operation on the background load —
/// started at the measurement boundary — and reports its completion
/// latency, the explore layer's collective dimension. An empty
/// Sweep_spec::collectives list means no collective axis: existing specs
/// enumerate, seed and serialize exactly as before the axis existed.
/// Collectives compose with synthetic background traffic only, and not
/// with fault scenarios (the multicast fabric composes with neither fault
/// plans nor replay — validate() enforces both).
struct Collective_workload {
    std::string label;
    Collective_kind kind = Collective_kind::broadcast;
    std::uint32_t root = 0;          ///< broadcast/reduce tree root core
    std::uint32_t payload_flits = 4; ///< collective packet size
    std::uint32_t fanin = 4;         ///< reduction-tree fan-in
    /// Tree multicast vs naive per-destination unicast emulation — declare
    /// one workload of each to sweep the fabric against its baseline.
    bool use_multicast = true;
};

/// One enumerated simulation point: indices into the spec plus the seed
/// derived from it. (design, traffic) identifies the curve the point's
/// Load_point lands on; load_index its position along the load grid.
struct Sweep_point {
    std::uint32_t index = 0; ///< dense, enumeration order
    std::uint32_t design = 0;
    std::uint32_t traffic = 0;
    std::uint32_t scenario = 0; ///< into fault_scenarios (0 when none)
    std::uint32_t collective = 0; ///< into collectives (0 when none)
    std::uint32_t load_index = 0;
    double load = 0.0;
    std::uint64_t seed = 0; ///< deterministic function of the spec alone
};

/// Declarative sweep description. Fill the three axes (or use the add_*
/// helpers), then hand the spec to a Sweep_runner. enumerate() is the
/// single source of truth for what gets simulated and with which seeds.
struct Sweep_spec {
    std::string name = "sweep";
    std::vector<Design_variant> designs;
    std::vector<Traffic_variant> traffics;
    /// Load grid, ascending: flits/node/cycle (synthetic) or bandwidth
    /// scale (application traffic).
    std::vector<double> loads;
    /// Measurement protocol + base seed + default Build_options (kernel
    /// schedule, partition plan, pool sizing) for every point — see
    /// traffic/experiment.h. Per-design shard_threads override the
    /// schedule/partition knobs. The live-saturation early-stop
    /// (base.early_stop_check) and telemetry sampling knobs
    /// (base.telemetry_period / telemetry_dir) ride here too; with
    /// early-stop armed, point_config syncs its latency cap to this spec's
    /// latency_cap so "stopped early" and "saturated" can never disagree.
    Sweep_config base;
    /// Reliability axis: every (design, traffic) curve is additionally run
    /// under each scenario, multiplying the curve count. Empty = the
    /// implicit fault-free scenario (no extra curves, labels unchanged).
    std::vector<Fault_scenario> fault_scenarios;
    /// Collective axis: every curve is additionally run with each
    /// collective workload riding on the background load, multiplying the
    /// curve count like the fault axis does. Empty = no collective (no
    /// extra curves, labels unchanged). Mutually exclusive with
    /// fault_scenarios and with application traffic.
    std::vector<Collective_workload> collectives;
    /// Also binary-search each synthetic design's saturation throughput
    /// (one extra worker task per curve); application curves always derive
    /// saturation from the measured grid.
    bool search_saturation = false;
    /// Latency (cycles) past which a point counts as saturated.
    double latency_cap = 200.0;

    // --- builder helpers (plain push_backs; fields stay assignable) --------
    Design_variant& add_mesh(int w, int h, Network_params params = {},
                             std::string params_label = "default");
    Design_variant& add_torus(int w, int h, Network_params params = {},
                              std::string params_label = "default");
    Design_variant& add_ring(int nodes, Network_params params = {},
                             std::string params_label = "default");
    Design_variant& add_design(std::string label,
                               std::shared_ptr<const Topology> topology,
                               std::shared_ptr<const Route_set> routes,
                               Network_params params,
                               bool allow_partial_routes = true);
    /// Cross every design added so far with `variants`: designs.size()
    /// multiplies by variants.size(). The declarative way to sweep
    /// Network_params (VC counts, buffer depths, flow control) per topology.
    void cross_params(
        const std::vector<std::pair<std::string, Network_params>>& variants);
    Traffic_variant& add_synthetic(Sweep_pattern_kind pattern);
    Traffic_variant& add_hotspot(std::vector<Core_id> hotspots,
                                 double hot_fraction);
    Traffic_variant& add_application(std::shared_ptr<const Core_graph> graph,
                                     std::string label);
    Fault_scenario& add_fault_scenario(std::string label,
                                       std::uint32_t transient_count,
                                       std::uint32_t permanent_link_count,
                                       Cycle reroute_latency = 64);
    Collective_workload& add_collective(std::string label,
                                        Collective_kind kind,
                                        bool use_multicast = true);

    /// Throws std::invalid_argument on an inconsistent spec (empty axes,
    /// grid pattern on a non-grid design, application traffic without a
    /// graph, dateline topologies without the 2 VCs they need...).
    void validate() const;

    /// All points in deterministic order (validates first). Point seeds mix
    /// base.seed with the point's labels and load index, so they are stable
    /// under reordering of worker execution and under appending new designs
    /// or loads to the spec.
    [[nodiscard]] std::vector<Sweep_point> enumerate() const;

    /// Scenario axis length with the implicit fault-free scenario folded in.
    [[nodiscard]] std::size_t scenario_count() const
    {
        return fault_scenarios.empty() ? 1 : fault_scenarios.size();
    }
    /// Collective axis length with the implicit no-collective folded in.
    [[nodiscard]] std::size_t collective_count() const
    {
        return collectives.empty() ? 1 : collectives.size();
    }
    [[nodiscard]] std::size_t curve_count() const
    {
        return designs.size() * traffics.size() * scenario_count() *
               collective_count();
    }
    /// Curve label "design/params/traffic" — the identity results key on.
    /// With fault scenarios declared, "design/params/traffic/scenario";
    /// with collectives, the collective label is appended the same way.
    [[nodiscard]] std::string curve_label(std::uint32_t design,
                                          std::uint32_t traffic,
                                          std::uint32_t scenario = 0,
                                          std::uint32_t collective = 0) const;
};

/// Deterministic seed for any sweep entity, derived from the spec's name,
/// base seed and `key` alone (label-keyed, so appending designs/loads to a
/// spec never perturbs existing points). enumerate() uses
/// "curve_label@load_index"; the runner's saturation searches use
/// "curve_label@saturation".
[[nodiscard]] std::uint64_t sweep_seed(const Sweep_spec& spec,
                                       const std::string& key);

/// Build a design variant's topology (generators or the custom pair).
[[nodiscard]] Topology make_sweep_topology(const Design_variant& d);
/// Build its route set (must be passed the topology from the line above).
[[nodiscard]] Route_set make_sweep_routes(const Design_variant& d,
                                          const Topology& topo);
/// Build a traffic variant's destination pattern for a design (synthetic
/// traffic only; grid patterns use the design's dims).
[[nodiscard]] std::shared_ptr<const Dest_pattern> make_sweep_pattern(
    const Traffic_variant& t, const Design_variant& d, int core_count);

/// Effective per-point Sweep_config: base protocol, the point's seed, the
/// design's partial-route flag and its kernel-schedule override. When the
/// spec declares fault scenarios and `topo` is non-null, the point's
/// scenario is materialized as a Fault_plan::random_plan against `topo`
/// (seeded from `seed` + the scenario label, horizon = warmup + measure)
/// and installed in the returned config's build options.
[[nodiscard]] Sweep_config point_config(const Sweep_spec& spec,
                                        const Design_variant& d,
                                        std::uint64_t seed,
                                        const Topology* topo = nullptr,
                                        std::uint32_t scenario = 0);

} // namespace noc
