#include "explore/slice_merge.h"

#include <cstdlib>
#include <sstream>
#include <utility>

namespace noc {

std::string merge_slice_document(const std::string& name,
                                 const std::string& content,
                                 Slice_merge& acc)
{
    std::vector<std::string> lines;
    {
        std::istringstream in{content};
        std::string line;
        while (std::getline(in, line)) lines.push_back(line);
    }
    bool has_header = false;
    for (const auto& l : lines)
        if (l.find("\"bench\": \"sweep_points\"") != std::string::npos)
            has_header = true;
    if (!has_header)
        return name +
               ": not a bench_sweep slice file (no \"bench\": "
               "\"sweep_points\" header — wrong, empty or truncated file?)";
    // A complete document ends with its closing brace; a torn write loses
    // it (records are written before the brace, so any tail damage shows
    // here or in a record check below).
    std::string last_line;
    for (auto it = lines.rbegin(); it != lines.rend(); ++it)
        if (it->find_first_not_of(" \t\r") != std::string::npos) {
            last_line = *it;
            break;
        }
    while (!last_line.empty() && last_line.back() == '\r')
        last_line.pop_back();
    if (last_line != "}")
        return name +
               ": truncated slice file (document does not end with its "
               "closing brace — incomplete write?)";

    auto header_field = [](const std::string& line, const std::string& key) {
        const std::string marker = "\"" + key + "\": \"";
        const auto at = line.find(marker);
        if (at == std::string::npos) return std::string{};
        const auto start = at + marker.size();
        return line.substr(start, line.find('"', start) - start);
    };

    for (const std::string& l : lines) {
        // Slices are mergeable only when they agree on the spec AND the
        // full measurement budget (the budget tag folds warmup/measure/
        // drain/seed, so half-budget smoke slices never mix into a full
        // run).
        for (const auto& [key, slot] :
             {std::pair<const char*, std::string*>{"spec", &acc.spec_name},
              std::pair<const char*, std::string*>{"budget", &acc.budget},
              std::pair<const char*, std::string*>{"grid_points",
                                                   &acc.grid_points}}) {
            const std::string value = header_field(l, key);
            if (value.empty()) continue;
            if (slot->empty()) *slot = value;
            if (value != *slot)
                return name + ": " + key + " '" + value +
                       "' does not match '" + *slot +
                       "' — slices from different runs?";
        }
        const auto idx_at = l.find("{\"index\": ");
        if (idx_at == std::string::npos) continue;
        const auto idx = static_cast<std::uint32_t>(
            std::strtoul(l.c_str() + idx_at + 10, nullptr, 10));
        // Normalize: strip the slice-local trailing comma.
        std::string record = l;
        while (!record.empty() &&
               (record.back() == ',' || record.back() == '\r'))
            record.pop_back();
        // Every record is a one-line JSON object; a line that lost its
        // tail (torn write inside a record) must not survive the merge.
        if (record.empty() || record.back() != '}')
            return name + ": corrupted record for point " +
                   std::to_string(idx) +
                   " (line does not close its object — truncated write?)";
        // Duplicate coverage is legitimate (straggler re-dispatch,
        // first-completion-wins: both attempts may publish byte-identical
        // slices) — dedupe and count. Divergent bytes for the same index
        // stay fatal: that is a non-deterministic worker or a mis-ranged
        // rerun, and silently picking one answer would corrupt the merge.
        if (const auto it = acc.by_index.find(idx);
            it != acc.by_index.end()) {
            if (it->second != record)
                return name + ": divergent duplicate — point " +
                       std::to_string(idx) +
                       " appears twice with different results "
                       "(non-deterministic slice?)";
            ++acc.duplicate_records;
            continue;
        }
        acc.by_index[idx] = std::move(record);
    }
    return {};
}

std::string finish_slice_merge(const Slice_merge& acc,
                               std::vector<std::string>& records)
{
    if (acc.by_index.empty()) return "no point records found";
    const auto count = static_cast<std::uint32_t>(acc.by_index.size());
    const auto expected = static_cast<std::uint32_t>(
        std::strtoul(acc.grid_points.c_str(), nullptr, 10));
    // Exact coverage: the slice headers carry the grid total, so a missing
    // TAIL slice (straggler machine) is a hard error, not a silently
    // shorter "complete" file.
    if (expected == 0 || count != expected)
        return "coverage gap: " + std::to_string(count) + " of " +
               (acc.grid_points.empty() ? std::string{"?"}
                                        : acc.grid_points) +
               " grid points present";
    for (std::uint32_t i = 0; i < count; ++i)
        if (acc.by_index.count(i) == 0)
            return "coverage gap: point " + std::to_string(i) +
                   " missing (have " + std::to_string(count) + " records)";
    records.clear();
    for (const auto& [idx, line] : acc.by_index) records.push_back(line);
    return {};
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
slice_missing_ranges(const Slice_merge& acc)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> gaps;
    const auto total = static_cast<std::uint32_t>(
        std::strtoul(acc.grid_points.c_str(), nullptr, 10));
    std::uint32_t gap_start = 0;
    bool in_gap = false;
    for (std::uint32_t i = 0; i < total; ++i) {
        const bool present = acc.by_index.count(i) != 0;
        if (!present && !in_gap) {
            gap_start = i;
            in_gap = true;
        } else if (present && in_gap) {
            gaps.emplace_back(gap_start, i);
            in_gap = false;
        }
    }
    if (in_gap) gaps.emplace_back(gap_start, total);
    return gaps;
}

std::string slice_coverage_report(const Slice_merge& acc)
{
    const std::string total =
        acc.grid_points.empty() ? std::string{"?"} : acc.grid_points;
    std::string out = "coverage " + std::to_string(acc.by_index.size()) +
                      "/" + total + " points";
    const auto gaps = slice_missing_ranges(acc);
    if (gaps.empty()) return out;
    out += "; missing";
    for (const auto& [a, b] : gaps)
        out += " [" + std::to_string(a) + ".." + std::to_string(b) + ")";
    return out;
}

} // namespace noc
