// Sweep_runner — system-per-thread parallel execution of a Sweep_spec.
//
// The execution complement of the sharded kernel (sim/kernel.h): a sweep's
// points are whole independent Noc_system instances, so instead of sharding
// one system across threads, each worker builds, runs and tears down entire
// systems — embarrassingly parallel, no barriers on the simulation path.
// The two compose per design: a Design_variant with shard_threads > 1 runs
// its (large) systems on the sharded kernel while the pool packs the small
// ones, so a mixed sweep keeps every hardware thread busy either way.
//
// The pool itself follows the kernel's worker-pool discipline: persistent
// threads parked on a condition variable between jobs (a run() call is one
// job), work claimed from a shared atomic cursor, completion signalled back
// to the caller — the calling thread also executes tasks, so worker_threads
// counts TOTAL concurrent executors, and a worker_threads == 1 runner is
// the plain sequential loop with no pool at all.
//
// Determinism: results are stored by point index into a pre-sized vector
// and every point's RNG seed comes from the spec (Sweep_spec::enumerate),
// so the claim order — which depends on thread scheduling — is invisible:
// a 1-worker run and an N-worker run of the same spec produce byte-identical
// Sweep_result serializations. A point that throws is re-executed under the
// runner's Retry_policy (default: one immediate retry — environmental
// failures like allocation pressure or thread limits resolve; deterministic
// ones fail identically) and then records its exception message in
// Point_result::error instead of poisoning the job. Because the inputs are
// deterministic, the policy is invisible in serialized output: any attempt
// budget and backoff produce byte-identical results across worker counts.
#pragma once

#include "common/retry_policy.h"
#include "explore/sweep_result.h"
#include "explore/sweep_spec.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace noc {

class Sweep_runner {
public:
    /// `worker_threads` total executors (>= 1); 0 = hardware concurrency.
    explicit Sweep_runner(std::uint32_t worker_threads = 1);
    ~Sweep_runner();
    Sweep_runner(const Sweep_runner&) = delete;
    Sweep_runner& operator=(const Sweep_runner&) = delete;

    [[nodiscard]] std::uint32_t worker_threads() const
    {
        return static_cast<std::uint32_t>(workers_.size()) + 1;
    }

    /// Half-open slice [begin, end) of the enumerated point grid — the
    /// unit of distributed sweeps: the spec's label-keyed deterministic
    /// seeds mean disjoint slices can be farmed to separate processes (or
    /// machines) and the results merged without any coordination
    /// (`bench_sweep --points a..b` + `--merge`). The default covers every
    /// point.
    struct Point_range {
        std::uint32_t begin = 0;
        std::uint32_t end = 0xffff'ffffu;
    };

    /// Execute every point of the spec (plus one saturation search per
    /// synthetic curve when the spec asks), assemble curves and the Pareto
    /// front. Throws std::invalid_argument on an inconsistent spec; points
    /// that fail at runtime are recorded per point, not thrown.
    [[nodiscard]] Sweep_result run(const Sweep_spec& spec)
    {
        return run(spec, Point_range{});
    }

    /// Execute only the points whose enumeration index lands in `range`.
    /// Out-of-range points appear in the result with
    /// Point_result::skipped set (excluded from curve metrics); the
    /// per-curve saturation searches run only when the range covers the
    /// whole grid, so disjoint slices never duplicate work.
    [[nodiscard]] Sweep_result run(const Sweep_spec& spec,
                                   Point_range range);

    /// Retry/backoff policy for failed grid points, shared vocabulary with
    /// the farm orchestrator (common/retry_policy.h). Default: the
    /// historical retry-once with no backoff. Must be set while no run()
    /// is in flight.
    void set_retry_policy(Retry_policy policy) { retry_ = policy; }
    [[nodiscard]] const Retry_policy& retry_policy() const
    {
        return retry_;
    }

    /// Chaos/test seam for the retry path: called before each execution
    /// attempt of every grid point (attempt 0, then 1, 2, ... only after
    /// failures, bounded by the Retry_policy) from the executing worker. A
    /// throw is handled exactly like a failure of the point itself — which
    /// is the point: tests (and fault drills) inject transient failures
    /// here and assert the runner absorbs them. Must be set while no run()
    /// is in flight; the hook must be thread-safe when worker_threads > 1.
    void set_point_attempt_hook(
        std::function<void(const Sweep_point&, int attempt)> hook)
    {
        point_attempt_hook_ = std::move(hook);
    }

    /// Progress seam: called once after every grid point finishes (success
    /// or recorded error) from the executing worker — the farm's worker
    /// heartbeat streams live per-slice progress through it. Must be
    /// thread-safe when worker_threads > 1 (an atomic counter is the
    /// intended shape) and set while no run() is in flight. Purely
    /// observational: results land by index regardless.
    void set_point_done_hook(std::function<void()> hook)
    {
        point_done_hook_ = std::move(hook);
    }

private:
    /// One schedulable unit: a grid point, or a whole per-curve saturation
    /// binary search (internally sequential, so it is a single task).
    struct Task {
        bool is_saturation = false;
        std::uint32_t point_index = 0; ///< into points_ (grid task)
        std::uint32_t curve = 0;       ///< curve index (saturation task)
    };

    void worker_main();
    void execute_tasks(); ///< claim-and-run loop shared by all executors
    void run_task(const Task& t);

    Retry_policy retry_{};

    // Job state, valid while a run() is in flight.
    std::function<void(const Sweep_point&, int)> point_attempt_hook_;
    std::function<void()> point_done_hook_;
    const Sweep_spec* spec_ = nullptr;
    std::vector<Sweep_point> points_;
    std::vector<Task> tasks_;
    std::vector<Point_result> results_;    ///< indexed by point index
    std::vector<double> saturation_;       ///< per curve; -1 = not searched
    std::atomic<std::uint32_t> next_task_{0};
    std::atomic<std::uint32_t> tasks_left_{0};

    std::vector<std::thread> workers_; ///< the other worker_threads-1
    std::mutex mutex_;
    std::condition_variable job_cv_;  ///< workers wait for a new job
    std::condition_variable done_cv_; ///< run() waits for tasks_left_ == 0
    std::uint64_t job_epoch_ = 0;     ///< guarded by mutex_
    std::size_t parked_ = 0;          ///< workers at the cv; guarded by mutex_
    bool shutdown_ = false;           ///< guarded by mutex_
};

/// Convenience wrapper: one-shot runner with `worker_threads` executors.
[[nodiscard]] Sweep_result run_sweep(const Sweep_spec& spec,
                                     std::uint32_t worker_threads = 1);

/// One-shot slice run (see Sweep_runner::Point_range).
[[nodiscard]] Sweep_result run_sweep_slice(const Sweep_spec& spec,
                                           Sweep_runner::Point_range range,
                                           std::uint32_t worker_threads = 1);

} // namespace noc
