// Crash isolation for the sweep farm: each slice runs in its own child
// process (fork/exec), so a worker that segfaults, leaks, wedges a thread
// pool, or gets OOM-killed takes down exactly one slice attempt — never
// the orchestrator and never its sibling slices. This is the process-level
// analogue of Sweep_runner's per-point try/catch: the catch block becomes
// waitpid, and "exception message" becomes an exit status.
//
// Exit-status contract (shared with bench_sweep's worker mode):
//   0         — slice published (the supervisor still verifies the file).
//   1         — invalid request (bad flags, empty range): NOT retryable;
//               the farm aborts instead of burning the attempt budget on a
//               configuration error.
//   other / killed by signal — transient worker failure: retryable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace noc {

/// Outcome of polling one child.
struct Child_status {
    enum class State : std::uint8_t { running, exited, signaled } state =
        State::running;
    int exit_code = 0; ///< valid when exited
    int signal = 0;    ///< valid when signaled
};

class Process_supervisor {
public:
    /// fork/exec `argv` (argv[0] resolved via PATH). stdout/stderr are
    /// redirected to `log_path` when non-empty (appended — retries of a
    /// slice share one log), so a crashing worker leaves evidence without
    /// interleaving into the orchestrator's output. Returns the pid, or -1
    /// with `error` set.
    [[nodiscard]] pid_t spawn(const std::vector<std::string>& argv,
                              const std::string& log_path,
                              std::string& error);

    /// Non-blocking status poll; reaps the child when it has exited.
    [[nodiscard]] Child_status poll(pid_t pid);

    /// SIGKILL — for hang detection and first-completion-wins duplicate
    /// cancellation. The child is NOT reaped here; the caller keeps
    /// polling until the kill is reflected (so every exit funnels through
    /// one code path).
    void kill_child(pid_t pid);

    /// SIGKILL + blocking reap of every still-live child this supervisor
    /// spawned — the farm's abort path and destructor guarantee: no
    /// orphaned workers outlive the orchestrator.
    void kill_all();

    ~Process_supervisor() { kill_all(); }

private:
    std::vector<pid_t> live_; ///< spawned and not yet reaped
};

} // namespace noc
