#include "farm/orchestrator.h"

#include "explore/slice_io.h"
#include "explore/slice_merge.h"
#include "farm/process_supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>

namespace noc {

std::vector<Slice_range> farm_slices(std::uint32_t total_points,
                                     std::uint32_t slice_points)
{
    std::vector<Slice_range> slices;
    if (slice_points == 0) slice_points = 1;
    for (std::uint32_t a = 0; a < total_points; a += slice_points)
        slices.push_back({a, std::min(a + slice_points, total_points)});
    return slices;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool read_small_file(const std::string& path, std::string& out)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>{in},
               std::istreambuf_iterator<char>{});
    return true;
}

/// One live worker attempt of a slice.
struct Live_attempt {
    pid_t pid = -1;
    std::uint32_t attempt = 0; ///< dispatch index for this slice
    Clock::time_point start{};
    std::string beat_path;
    std::string last_beat;       ///< last observed heartbeat content
    Clock::time_point last_change{};
    bool cancelled = false; ///< killed because a sibling published first
    bool hung = false;      ///< killed by the heartbeat watchdog
    /// Live per-slice progress piggybacked on the heartbeat: workers that
    /// speak the extended "beat done total" format stream their finished
    /// point count through the same file the liveness watchdog reads.
    std::uint32_t done = 0;
    std::uint32_t total = 0;
};

struct Slice_state {
    Slice_range range;
    bool published = false;
    bool trusted = false; ///< adopted from the resume checkpoint scan
    std::uint32_t dispatches = 0; ///< total spawns (budgeted)
    std::uint32_t failures = 0;
    std::uint32_t straggler_dups = 0;
    std::uint32_t published_by_attempt = 0;
    double publish_wall = 0.0; ///< winning attempt's wall seconds
    Clock::time_point eligible{}; ///< backoff gate for the next dispatch
    std::vector<Live_attempt> live;
    std::string last_failure;
};

std::string substituted(std::string arg, const Slice_state& s,
                        std::uint32_t attempt, const Farm_config& cfg,
                        const std::string& beat_path,
                        const std::string& chaos)
{
    const auto replace_all = [&arg](const std::string& key,
                                    const std::string& value) {
        for (std::size_t at = arg.find(key); at != std::string::npos;
             at = arg.find(key, at + value.size()))
            arg.replace(at, key.size(), value);
    };
    replace_all("{begin}", std::to_string(s.range.begin));
    replace_all("{end}", std::to_string(s.range.end));
    replace_all("{attempt}", std::to_string(attempt));
    replace_all("{dir}", cfg.out_dir);
    replace_all("{slice}", cfg.out_dir + "/" +
                               slice_file_name(s.range.begin, s.range.end));
    replace_all("{heartbeat}", beat_path);
    replace_all("{chaos}", chaos);
    return arg;
}

class Farm {
public:
    explicit Farm(const Farm_config& cfg) : cfg_(cfg) {}
    Farm_report run();

private:
    void dispatch(Slice_state& s, bool straggler);
    void reap_and_account(Slice_state& s, Live_attempt& a,
                          const Child_status& st);
    void on_failure(Slice_state& s, std::uint32_t attempt,
                    const std::string& why);
    void check_heartbeats();
    [[nodiscard]] bool try_dispatch_work();
    [[nodiscard]] double straggler_threshold() const;
    void abort_farm(const std::string& why);
    void merge_published();
    void sweep_leftovers();
    void fill_coverage();
    void progress(const std::string& line) const;

    const Farm_config& cfg_;
    Farm_report report_;
    Process_supervisor supervisor_;
    std::vector<Slice_state> slices_;
    std::vector<double> completed_wall_; ///< per published attempt
    std::string spec_name_;              ///< adopted fingerprints
    std::string budget_;
    Clock::time_point t0_{};
    bool aborted_ = false;
};

void Farm::progress(const std::string& line) const
{
    if (cfg_.quiet) return;
    std::printf("[farm %7.2fs] %s\n", seconds_since(t0_), line.c_str());
    std::fflush(stdout);
}

double Farm::straggler_threshold() const
{
    double median = 0.0;
    if (!completed_wall_.empty()) {
        std::vector<double> sorted = completed_wall_;
        const auto mid = sorted.begin() +
                         static_cast<std::ptrdiff_t>(sorted.size() / 2);
        std::nth_element(sorted.begin(), mid, sorted.end());
        median = *mid;
    }
    return std::max(cfg_.straggler_after_s, cfg_.straggler_factor * median);
}

void Farm::dispatch(Slice_state& s, bool straggler)
{
    const std::uint32_t attempt = s.dispatches;
    const std::string beat_path =
        cfg_.out_dir + "/hb_" + std::to_string(s.range.begin) + "_" +
        std::to_string(attempt) + ".beat";
    const Chaos_action act = cfg_.chaos.action(s.range.begin, attempt);
    switch (act) {
    case Chaos_action::kill: ++report_.chaos_killed; break;
    case Chaos_action::hang: ++report_.chaos_hung; break;
    case Chaos_action::torn: ++report_.chaos_torn; break;
    case Chaos_action::none: break;
    }
    std::vector<std::string> argv;
    argv.reserve(cfg_.worker_argv.size());
    for (const auto& a : cfg_.worker_argv)
        argv.push_back(
            substituted(a, s, attempt, cfg_, beat_path,
                        chaos_action_name(act)));
    const std::string log_path =
        cfg_.out_dir + "/worker_" + std::to_string(s.range.begin) + "_" +
        std::to_string(s.range.end) + ".log";
    std::string err;
    const pid_t pid = supervisor_.spawn(argv, log_path, err);
    ++s.dispatches;
    ++report_.attempts;
    if (straggler) {
        ++report_.stragglers_redispatched;
        ++s.straggler_dups;
    } else if (s.failures > 0) {
        ++report_.retries;
    }
    if (pid < 0) {
        // Spawning itself failed (fd/process limits) — an environmental
        // failure like any other: burn the attempt, back off, retry.
        on_failure(s, attempt, err);
        return;
    }
    Live_attempt a;
    a.pid = pid;
    a.attempt = attempt;
    a.start = Clock::now();
    a.last_change = a.start;
    a.beat_path = beat_path;
    s.live.push_back(std::move(a));
    progress("slice [" + std::to_string(s.range.begin) + ".." +
             std::to_string(s.range.end) + ") attempt " +
             std::to_string(attempt) + (straggler ? " (straggler dup)" : "") +
             (act == Chaos_action::none
                  ? std::string{}
                  : " chaos=" + std::string{chaos_action_name(act)}) +
             " -> pid " + std::to_string(pid));
}

void Farm::on_failure(Slice_state& s, std::uint32_t attempt,
                      const std::string& why)
{
    ++s.failures;
    s.last_failure = why;
    const std::uint32_t delay = cfg_.retry.delay_ms(s.failures);
    s.eligible = Clock::now() + std::chrono::milliseconds{delay};
    progress("slice [" + std::to_string(s.range.begin) + ".." +
             std::to_string(s.range.end) + ") attempt " +
             std::to_string(attempt) + " FAILED: " + why +
             (s.dispatches < cfg_.retry.max_attempts
                  ? " (retry in " + std::to_string(delay) + "ms)"
                  : " (attempt budget spent)"));
    if (cfg_.retry.exhausted(s.dispatches) && s.live.empty() &&
        !s.published)
        abort_farm("slice [" + std::to_string(s.range.begin) + ".." +
                   std::to_string(s.range.end) + ") failed " +
                   std::to_string(s.dispatches) +
                   " attempts; last failure: " + why);
}

void Farm::reap_and_account(Slice_state& s, Live_attempt& a,
                            const Child_status& st)
{
    std::remove(a.beat_path.c_str());
    if (a.cancelled) return; // already counted when it was killed
    if (s.published) return; // late sibling of a published slice
    if (a.hung) {
        ++report_.hangs_detected;
        on_failure(s, a.attempt,
                   "heartbeat stale for > " +
                       std::to_string(cfg_.heartbeat_timeout_s) +
                       "s (hang) — killed");
        return;
    }
    if (st.state == Child_status::State::signaled) {
        on_failure(s, a.attempt,
                   "killed by signal " + std::to_string(st.signal));
        return;
    }
    if (st.exit_code == 1) {
        // Contract: 1 = invalid request. Retrying a configuration error
        // would burn the budget on a failure that cannot resolve.
        abort_farm("worker rejected slice [" +
                   std::to_string(s.range.begin) + ".." +
                   std::to_string(s.range.end) +
                   ") as an invalid request (exit 1) — see " + cfg_.out_dir +
                   "/worker_" + std::to_string(s.range.begin) + "_" +
                   std::to_string(s.range.end) + ".log");
        return;
    }
    if (st.exit_code != 0) {
        on_failure(s, a.attempt, "exit code " +
                                     std::to_string(st.exit_code));
        return;
    }
    // Exit 0: trust, but verify — the published file must exist and pass
    // the same validation resume applies. A worker that exited 0 without
    // publishing (or published damage through a non-atomic path) is a
    // failure, not a success.
    const std::string path =
        cfg_.out_dir + "/" + slice_file_name(s.range.begin, s.range.end);
    std::string content;
    if (!read_small_file(path, content)) {
        on_failure(s, a.attempt, "exited 0 but " + path + " is missing");
        return;
    }
    const std::string err =
        validate_slice_file(slice_file_name(s.range.begin, s.range.end),
                            content, s.range.begin, s.range.end,
                            cfg_.total_points, spec_name_, budget_);
    if (!err.empty()) {
        on_failure(s, a.attempt, "published slice invalid: " + err);
        return;
    }
    if (spec_name_.empty() || budget_.empty()) {
        Slice_merge acc;
        if (merge_slice_document(path, content, acc).empty()) {
            spec_name_ = acc.spec_name;
            budget_ = acc.budget;
        }
    }
    s.published = true;
    s.published_by_attempt = a.attempt;
    s.publish_wall = seconds_since(a.start);
    ++report_.published;
    completed_wall_.push_back(s.publish_wall);
    progress("slice [" + std::to_string(s.range.begin) + ".." +
             std::to_string(s.range.end) + ") PUBLISHED by attempt " +
             std::to_string(a.attempt) + " (" +
             std::to_string(report_.published) + "/" +
             std::to_string(report_.slices) + ")");
    // First completion wins: siblings still running the same slice are
    // duplicates now — kill them (their output, had they finished, would
    // be byte-identical anyway). Counted here, not at reap time: when the
    // LAST slice publishes, the run loop exits before the sibling is
    // reaped and a reap-side count would lose it.
    for (auto& other : s.live)
        if (other.pid != a.pid && !other.cancelled) {
            other.cancelled = true;
            supervisor_.kill_child(other.pid);
            ++report_.duplicates_cancelled;
        }
}

void Farm::check_heartbeats()
{
    const auto now = Clock::now();
    for (auto& s : slices_)
        for (auto& a : s.live) {
            if (a.cancelled || a.hung) continue;
            std::string beat;
            if (read_small_file(a.beat_path, beat) && beat != a.last_beat) {
                a.last_beat = std::move(beat);
                a.last_change = now;
                // Extended heartbeat "beat done total": a per-slice
                // progress stream riding the liveness channel. Workers
                // that only write the bare counter parse as 1 field and
                // stay silent here — both formats satisfy the watchdog.
                unsigned long long b = 0;
                unsigned done = 0;
                unsigned total = 0;
                if (std::sscanf(a.last_beat.c_str(), "%llu %u %u", &b,
                                &done, &total) == 3 &&
                    total > 0 &&
                    (done != a.done || total != a.total)) {
                    a.done = done;
                    a.total = total;
                    progress("slice [" + std::to_string(s.range.begin) +
                             ".." + std::to_string(s.range.end) +
                             ") attempt " + std::to_string(a.attempt) +
                             ": " + std::to_string(done) + "/" +
                             std::to_string(total) + " points done");
                }
            }
            const double stale =
                std::chrono::duration<double>(now - a.last_change).count();
            if (stale > cfg_.heartbeat_timeout_s) {
                a.hung = true;
                supervisor_.kill_child(a.pid);
            }
        }
}

bool Farm::try_dispatch_work()
{
    std::size_t live_total = 0;
    for (const auto& s : slices_) live_total += s.live.size();
    bool dispatched = false;
    while (live_total < cfg_.workers && !aborted_) {
        const auto now = Clock::now();
        // Fresh work first: the lowest un-attempted-or-retryable slice
        // with no live attempt and an elapsed backoff.
        Slice_state* fresh = nullptr;
        for (auto& s : slices_)
            if (!s.published && s.live.empty() &&
                !cfg_.retry.exhausted(s.dispatches) && s.eligible <= now) {
                fresh = &s;
                break;
            }
        if (fresh != nullptr) {
            dispatch(*fresh, false);
            ++live_total;
            dispatched = true;
            continue;
        }
        // No fresh work but idle workers: consider straggler re-dispatch.
        // Duplicate the oldest-running live slice once its current attempt
        // has outlived the threshold — first completion wins.
        Slice_state* straggler = nullptr;
        double oldest = 0.0;
        const double threshold = straggler_threshold();
        for (auto& s : slices_) {
            if (s.published || s.live.empty()) continue;
            if (s.live.size() >= cfg_.max_live_per_slice) continue;
            if (cfg_.retry.exhausted(s.dispatches)) continue;
            for (const auto& a : s.live) {
                if (a.cancelled || a.hung) continue;
                const double age = seconds_since(a.start);
                if (age > threshold && age > oldest) {
                    oldest = age;
                    straggler = &s;
                }
            }
        }
        if (straggler == nullptr) break;
        dispatch(*straggler, true);
        ++live_total;
        dispatched = true;
    }
    return dispatched;
}

void Farm::abort_farm(const std::string& why)
{
    if (aborted_) return;
    aborted_ = true;
    report_.error = why;
    supervisor_.kill_all();
    fill_coverage();
    progress("ABORT: " + why);
}

void Farm::fill_coverage()
{
    Slice_merge acc;
    acc.grid_points = std::to_string(cfg_.total_points);
    for (const auto& s : slices_) {
        if (!s.published) continue;
        std::string content;
        const std::string path =
            cfg_.out_dir + "/" + slice_file_name(s.range.begin, s.range.end);
        if (read_small_file(path, content))
            (void)merge_slice_document(path, content, acc);
    }
    report_.coverage = slice_coverage_report(acc);
}

void Farm::merge_published()
{
    Slice_merge acc;
    acc.spec_name = spec_name_;
    acc.budget = budget_;
    acc.grid_points = std::to_string(cfg_.total_points);
    for (const auto& s : slices_) {
        const std::string path =
            cfg_.out_dir + "/" + slice_file_name(s.range.begin, s.range.end);
        std::string content;
        if (!read_small_file(path, content)) {
            abort_farm("published slice vanished before merge: " + path);
            return;
        }
        const std::string err = merge_slice_document(path, content, acc);
        if (!err.empty()) {
            abort_farm("merge failed: " + err);
            return;
        }
    }
    std::vector<std::string> records;
    const std::string err = finish_slice_merge(acc, records);
    if (!err.empty()) {
        abort_farm("merge failed: " + err);
        return;
    }
    report_.duplicate_records = acc.duplicate_records;
    const std::string merged_path =
        cfg_.merged_path.empty() ? cfg_.out_dir + "/merged_points.json"
                                 : cfg_.merged_path;
    const auto count = static_cast<std::uint32_t>(records.size());
    const std::string payload = slice_payload(acc.spec_name, acc.budget, 0,
                                              count, count, records);
    const std::string werr = write_file_atomic(merged_path, payload);
    if (!werr.empty()) {
        abort_farm("cannot write merged result: " + werr);
        return;
    }
    report_.merged_path = merged_path;
    report_.spec_name = acc.spec_name;
    report_.budget = acc.budget;
    report_.coverage = slice_coverage_report(acc);
}

void Farm::sweep_leftovers()
{
    // Cancelled duplicates may have left tmp files (killed between write
    // and rename) and the run leaves per-attempt logs; tmp and beat files
    // are garbage by contract — sweep and count them.
    DIR* d = ::opendir(cfg_.out_dir.c_str());
    if (d == nullptr) return;
    std::vector<std::string> doomed;
    while (const dirent* e = ::readdir(d)) {
        const std::string entry = e->d_name;
        if (entry.find(".tmp.") != std::string::npos ||
            (entry.size() > 5 &&
             entry.compare(entry.size() - 5, 5, ".beat") == 0))
            doomed.push_back(cfg_.out_dir + "/" + entry);
    }
    ::closedir(d);
    for (const auto& path : doomed)
        if (std::remove(path.c_str()) == 0) ++report_.tmp_ignored;
}

Farm_report Farm::run()
{
    t0_ = Clock::now();
    spec_name_ = cfg_.expect_spec;
    budget_ = cfg_.expect_budget;

    if (cfg_.worker_argv.empty() || cfg_.workers == 0 ||
        cfg_.total_points == 0 || cfg_.retry.max_attempts == 0) {
        report_.error = "farm config: worker_argv, workers, total_points "
                        "and retry.max_attempts must all be non-zero";
        return report_;
    }
    ::mkdir(cfg_.out_dir.c_str(), 0755); // EEXIST is fine

    const std::vector<Slice_range> slices =
        farm_slices(cfg_.total_points, cfg_.slice_points);
    report_.slices = static_cast<std::uint32_t>(slices.size());

    // The out-dir is the checkpoint. Resume trusts validated published
    // slices; a fresh run clears recognized artifacts so stale results
    // cannot leak in.
    const Checkpoint_scan scan =
        scan_checkpoint(cfg_.out_dir, slices, cfg_.total_points, spec_name_,
                        budget_, cfg_.resume);
    if (!scan.error.empty()) {
        report_.error = scan.error;
        return report_;
    }
    report_.resumed_trusted = scan.trusted_count;
    report_.resumed_invalid = scan.invalid;
    report_.tmp_ignored = scan.tmp_removed;
    spec_name_ = scan.spec_name;
    budget_ = scan.budget;

    slices_.resize(slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) {
        slices_[i].range = slices[i];
        slices_[i].published = cfg_.resume && scan.trusted[i];
        slices_[i].trusted = slices_[i].published;
        if (slices_[i].published) ++report_.published;
    }
    if (cfg_.resume) {
        progress("resume: " + std::to_string(scan.trusted_count) + "/" +
                 std::to_string(slices.size()) + " slices trusted, " +
                 std::to_string(scan.invalid) + " invalid, " +
                 std::to_string(scan.tmp_removed) + " tmp/beat swept");
        // Name every decision: which slices the checkpoint satisfied and
        // which must re-run, so a resumed farm's plan is auditable from
        // the log alone.
        for (const auto& s : slices_)
            progress("resume: slice [" + std::to_string(s.range.begin) +
                     ".." + std::to_string(s.range.end) + ") " +
                     (s.trusted ? "TRUSTED (validated checkpoint)"
                                : "re-run (missing or invalid)"));
    }

    while (!aborted_) {
        if (report_.published == report_.slices) break;
        if (cfg_.max_wall_s > 0.0 && seconds_since(t0_) > cfg_.max_wall_s) {
            abort_farm("farm deadline (" + std::to_string(cfg_.max_wall_s) +
                       "s) exceeded");
            break;
        }
        // Reap finished children. Index-based with erase-before-account:
        // reap_and_account mutates the live list (cancels siblings) as
        // slices publish, so the finished attempt leaves the list first.
        for (auto& s : slices_) {
            for (std::size_t i = 0; i < s.live.size();) {
                const Child_status st = supervisor_.poll(s.live[i].pid);
                if (st.state == Child_status::State::running) {
                    ++i;
                    continue;
                }
                Live_attempt done = s.live[i];
                s.live.erase(s.live.begin() +
                             static_cast<std::ptrdiff_t>(i));
                reap_and_account(s, done, st);
                if (aborted_) break;
            }
            if (aborted_) break;
        }
        if (aborted_) break;
        check_heartbeats();
        if (!try_dispatch_work())
            std::this_thread::sleep_for(std::chrono::duration<double>(
                cfg_.poll_interval_s));
    }

    if (!aborted_) {
        supervisor_.kill_all(); // cancelled duplicates still draining
        merge_published();
    }
    sweep_leftovers();
    report_.success = !aborted_ && report_.published == report_.slices &&
                      !report_.merged_path.empty();
    report_.wall_seconds = seconds_since(t0_);
    report_.slice_stats.reserve(slices_.size());
    for (const auto& s : slices_) {
        Farm_slice_stats st;
        st.begin = s.range.begin;
        st.end = s.range.end;
        st.dispatches = s.dispatches;
        st.failures = s.failures;
        st.straggler_dups = s.straggler_dups;
        st.trusted_on_resume = s.trusted;
        st.published = s.published;
        st.published_by_attempt = s.published_by_attempt;
        st.wall_seconds = s.publish_wall;
        report_.slice_stats.push_back(st);
    }
    return report_;
}

} // namespace

Farm_report run_farm(const Farm_config& cfg)
{
    Farm farm{cfg};
    return farm.run();
}

} // namespace noc
