#include "farm/process_supervisor.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace noc {

pid_t Process_supervisor::spawn(const std::vector<std::string>& argv,
                                const std::string& log_path,
                                std::string& error)
{
    if (argv.empty()) {
        error = "spawn: empty argv";
        return -1;
    }
    // Open the log in the parent so a failure is reportable; the fd is
    // inherited across fork and dup2'd onto stdout/stderr in the child.
    int log_fd = -1;
    if (!log_path.empty()) {
        log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                        0644);
        if (log_fd < 0) {
            error = "spawn: cannot open log " + log_path + ": " +
                    std::strerror(errno);
            return -1;
        }
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv)
        cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        error = std::string{"spawn: fork failed: "} + std::strerror(errno);
        if (log_fd >= 0) ::close(log_fd);
        return -1;
    }
    if (pid == 0) {
        // Child: only async-signal-safe calls between fork and exec.
        if (log_fd >= 0) {
            ::dup2(log_fd, 1);
            ::dup2(log_fd, 2);
            ::close(log_fd);
        }
        ::execvp(cargv[0], cargv.data());
        _exit(127); // exec failed; 127 is retryable by contract
    }
    if (log_fd >= 0) ::close(log_fd);
    live_.push_back(pid);
    error.clear();
    return pid;
}

Child_status Process_supervisor::poll(pid_t pid)
{
    Child_status st;
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == 0) return st; // still running
    // r == pid (reaped) or r < 0 (not our child anymore — treat as gone
    // with an error exit so the farm's failure path handles it).
    live_.erase(std::remove(live_.begin(), live_.end(), pid), live_.end());
    if (r == pid && WIFEXITED(status)) {
        st.state = Child_status::State::exited;
        st.exit_code = WEXITSTATUS(status);
    } else if (r == pid && WIFSIGNALED(status)) {
        st.state = Child_status::State::signaled;
        st.signal = WTERMSIG(status);
    } else {
        st.state = Child_status::State::exited;
        st.exit_code = 126;
    }
    return st;
}

void Process_supervisor::kill_child(pid_t pid)
{
    ::kill(pid, SIGKILL);
}

void Process_supervisor::kill_all()
{
    for (const pid_t pid : live_) ::kill(pid, SIGKILL);
    for (const pid_t pid : live_) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    live_.clear();
}

} // namespace noc
