#include "farm/checkpoint.h"

#include "explore/slice_io.h"
#include "explore/slice_merge.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include <dirent.h>

namespace noc {

namespace {

bool read_whole_file(const std::string& path, std::string& out)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>{in},
               std::istreambuf_iterator<char>{});
    return true;
}

} // namespace

std::string validate_slice_file(const std::string& name,
                                const std::string& content,
                                std::uint32_t begin, std::uint32_t end,
                                std::uint32_t grid_points,
                                const std::string& expect_spec,
                                const std::string& expect_budget)
{
    Slice_merge acc;
    // Pre-seeding the fingerprints turns "matches the expectation" into
    // the merge layer's own mismatch diagnostics.
    acc.spec_name = expect_spec;
    acc.budget = expect_budget;
    acc.grid_points = std::to_string(grid_points);
    const std::string err = merge_slice_document(name, content, acc);
    if (!err.empty()) return err;
    // The header must claim exactly this slice's range...
    if (content.find("\"range\": \"" + std::to_string(begin) + ".." +
                     std::to_string(end) + "\"") == std::string::npos)
        return name + ": header range does not match slice [" +
               std::to_string(begin) + ".." + std::to_string(end) + ")";
    // ...and the records must cover it exactly.
    if (acc.by_index.size() != end - begin)
        return name + ": " + std::to_string(acc.by_index.size()) +
               " records for a " + std::to_string(end - begin) +
               "-point slice";
    for (const auto& [idx, record] : acc.by_index)
        if (idx < begin || idx >= end)
            return name + ": record " + std::to_string(idx) +
                   " outside slice range [" + std::to_string(begin) +
                   ".." + std::to_string(end) + ")";
    return {};
}

Checkpoint_scan scan_checkpoint(const std::string& dir,
                                const std::vector<Slice_range>& slices,
                                std::uint32_t grid_points,
                                const std::string& expect_spec,
                                const std::string& expect_budget,
                                bool trust_published)
{
    Checkpoint_scan scan;
    scan.trusted.assign(slices.size(), false);
    scan.spec_name = expect_spec;
    scan.budget = expect_budget;

    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
        scan.error = "cannot open checkpoint dir " + dir;
        return scan;
    }
    std::vector<std::string> entries;
    while (const dirent* e = ::readdir(d)) entries.emplace_back(e->d_name);
    ::closedir(d);

    for (const auto& entry : entries) {
        const std::string path = dir + "/" + entry;
        // Torn/orphaned artifacts first: a tmp file is by construction an
        // interrupted write, a .beat file a dead attempt's heartbeat.
        if (entry.find(".tmp.") != std::string::npos ||
            (entry.size() > 5 &&
             entry.compare(entry.size() - 5, 5, ".beat") == 0)) {
            if (std::remove(path.c_str()) == 0) ++scan.tmp_removed;
            continue;
        }
        // A published slice file of this farm's layout?
        for (std::size_t s = 0; s < slices.size(); ++s) {
            if (entry != slice_file_name(slices[s].begin, slices[s].end))
                continue;
            if (!trust_published) {
                std::remove(path.c_str());
                break;
            }
            std::string content;
            if (!read_whole_file(path, content)) {
                ++scan.invalid;
                break;
            }
            const std::string err = validate_slice_file(
                entry, content, slices[s].begin, slices[s].end,
                grid_points, scan.spec_name, scan.budget);
            if (!err.empty()) {
                ++scan.invalid;
                break;
            }
            // Adopt fingerprints from the first trusted slice so later
            // slices must agree with it, not just with the (possibly
            // empty) external expectation.
            if (scan.spec_name.empty() || scan.budget.empty()) {
                Slice_merge acc;
                if (merge_slice_document(entry, content, acc).empty()) {
                    scan.spec_name = acc.spec_name;
                    scan.budget = acc.budget;
                }
            }
            scan.trusted[s] = true;
            ++scan.trusted_count;
            break;
        }
    }
    return scan;
}

} // namespace noc
