#include "farm/chaos.h"

#include <cstdlib>

namespace noc {

namespace {

/// splitmix64 — the same cheap, well-mixed hash the seeding layers use;
/// good enough to make (seed, slice, attempt) draws independent.
std::uint64_t chaos_mix(std::uint64_t x)
{
    x += 0x9e37'79b9'7f4a'7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebull;
    return x ^ (x >> 31);
}

} // namespace

Chaos_action Chaos_spec::action(std::uint32_t slice_begin,
                                std::uint32_t attempt) const
{
    if (!any() || attempt >= attempt_cap) return Chaos_action::none;
    const std::uint64_t h = chaos_mix(
        chaos_mix(seed ^ (static_cast<std::uint64_t>(slice_begin) << 32)) ^
        attempt);
    // 53-bit mantissa draw in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u < p_kill) return Chaos_action::kill;
    if (u < p_kill + p_hang) return Chaos_action::hang;
    if (u < p_kill + p_hang + p_torn) return Chaos_action::torn;
    return Chaos_action::none;
}

const char* chaos_action_name(Chaos_action a)
{
    switch (a) {
    case Chaos_action::kill: return "kill";
    case Chaos_action::hang: return "hang";
    case Chaos_action::torn: return "torn";
    case Chaos_action::none: break;
    }
    return "none";
}

std::string parse_chaos_spec(const std::string& text, Chaos_spec& out)
{
    std::size_t at = 0;
    while (at < text.size()) {
        auto comma = text.find(',', at);
        if (comma == std::string::npos) comma = text.size();
        const std::string item = text.substr(at, comma - at);
        at = comma + 1;
        if (item.empty()) continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            return "chaos: '" + item + "' is not key=value";
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        char* end = nullptr;
        if (key == "kill" || key == "hang" || key == "torn") {
            const double p = std::strtod(val.c_str(), &end);
            if (end == val.c_str() || *end != '\0' || p < 0.0 || p > 1.0)
                return "chaos: " + key + "=" + val +
                       " is not a probability in [0, 1]";
            (key == "kill" ? out.p_kill
                           : key == "hang" ? out.p_hang : out.p_torn) = p;
        } else if (key == "seed") {
            out.seed = std::strtoull(val.c_str(), &end, 10);
            if (end == val.c_str() || *end != '\0')
                return "chaos: seed=" + val + " is not an integer";
        } else if (key == "cap") {
            const unsigned long cap = std::strtoul(val.c_str(), &end, 10);
            if (end == val.c_str() || *end != '\0')
                return "chaos: cap=" + val + " is not an integer";
            out.attempt_cap = static_cast<std::uint32_t>(cap);
        } else {
            return "chaos: unknown key '" + key +
                   "' (expected kill/hang/torn/seed/cap)";
        }
    }
    if (out.p_kill + out.p_hang + out.p_torn > 1.0)
        return "chaos: kill+hang+torn probabilities exceed 1";
    return {};
}

} // namespace noc
