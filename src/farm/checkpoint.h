// Checkpoint/resume for the sweep farm. The out-dir IS the checkpoint:
// every published slice file is a durable record of completed work
// (publication is atomic — explore/slice_io.h — so a file under the
// published name is either whole or absent). Resuming after an
// orchestrator crash is therefore a directory scan, not a log replay:
// validate each published slice against the expected protocol
// fingerprints, trust the ones that check out, re-run only the gaps.
//
// Tmp files (`*.tmp.<pid>`) are torn or orphaned writes by definition —
// a crashed worker died mid-write, or a cancelled duplicate never got to
// rename. The scan deletes them (counted, reported); they are never
// trusted. A file under a published slice name that fails validation
// (foreign spec, wrong budget, damaged content smuggled in by a non-atomic
// transport) is counted invalid and its slice re-run — the re-run's atomic
// rename simply replaces it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace noc {

/// Half-open point range of one farm slice.
struct Slice_range {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
};

struct Checkpoint_scan {
    std::vector<bool> trusted; ///< per expected slice: published and valid
    std::uint32_t trusted_count = 0;
    std::uint32_t invalid = 0;     ///< published-name files failing checks
    std::uint32_t tmp_removed = 0; ///< torn/orphaned tmp files deleted
    std::string spec_name; ///< fingerprint adopted from trusted slices
    std::string budget;    ///< fingerprint adopted from trusted slices
    std::string error;     ///< fatal scan problem (unreadable dir, ...)
};

/// Scan `dir` for the farm's slice files. `slices` is the expected slice
/// layout; `grid_points` the full grid size. `expect_spec`/`expect_budget`
/// (either may be empty = adopt from the first valid slice) pin the
/// protocol fingerprints a trusted slice must carry. With
/// `trust_published` false (a fresh, non-resume run) every recognized
/// slice/tmp/heartbeat file is deleted instead — stale results from an
/// earlier run must not leak into a new one.
[[nodiscard]] Checkpoint_scan scan_checkpoint(
    const std::string& dir, const std::vector<Slice_range>& slices,
    std::uint32_t grid_points, const std::string& expect_spec,
    const std::string& expect_budget, bool trust_published);

/// Validate one published slice document for [begin, end) of a
/// `grid_points` grid: parseable, internally consistent, exactly covering
/// its range, and matching the (possibly empty = unconstrained) spec and
/// budget fingerprints. Returns "" when trustworthy, else the reason.
[[nodiscard]] std::string validate_slice_file(
    const std::string& name, const std::string& content,
    std::uint32_t begin, std::uint32_t end, std::uint32_t grid_points,
    const std::string& expect_spec, const std::string& expect_budget);

} // namespace noc
