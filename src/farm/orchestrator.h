// Farm orchestrator — the cluster-scale sweep driver (ROADMAP: "sweep
// farm"). Shards a sweep's point grid into contiguous slices, runs each
// slice in a crash-isolated worker process (farm/process_supervisor.h),
// and reassembles the byte-deterministic merged result with the same
// slice-merge code path `bench_sweep --merge` uses.
//
// Robustness model — worker failures are the COMMON case at farm scale,
// so every one has a bounded, observable recovery path:
//
//   crash   (exit != 0, killed, OOM)  -> retry with exponential backoff
//                                        under a bounded Retry_policy
//                                        attempt budget.
//   hang    (live pid, no progress)   -> per-attempt heartbeat files; an
//                                        attempt whose heartbeat goes
//                                        stale past the timeout is killed
//                                        and retried like a crash.
//   torn    (crash mid-write)         -> atomic publication (tmp+rename,
//                                        explore/slice_io.h): a half-slice
//                                        can never appear under the
//                                        published name; leftover tmp
//                                        files are ignored and swept.
//   straggler (slow, not dead)        -> when workers idle and a live
//                                        slice has run well past the
//                                        median completed attempt, the
//                                        slice is re-dispatched to a
//                                        second worker; first completion
//                                        wins and the loser is killed —
//                                        byte-determinism makes the
//                                        duplicate free (identical bytes
//                                        even if both publish).
//   orchestrator crash                -> the out-dir is the checkpoint:
//                                        --resume trusts validated
//                                        published slices and re-runs
//                                        only the gaps
//                                        (farm/checkpoint.h).
//
// The worker command is an argv TEMPLATE with placeholders substituted
// per dispatch, so any protocol-conforming binary can be farmed (tests
// drive the orchestrator with /bin/sh scripts):
//   {begin} {end}  — the slice's half-open point range
//   {attempt}      — 0-based dispatch index for this slice
//   {dir}          — the out-dir (workers publish
//                    slice_file_name(begin, end) inside it, atomically)
//   {slice}        — convenience: the full published-slice path
//   {heartbeat}    — file the worker must rewrite (any changing content)
//                    at sub-timeout intervals while it makes progress
//   {chaos}        — none|kill|hang|torn: the chaos action the worker
//                    must perform (farm/chaos.h decides, deterministically
//                    from the seed, so chaos runs are reproducible).
#pragma once

#include "common/retry_policy.h"
#include "farm/chaos.h"
#include "farm/checkpoint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace noc {

struct Farm_config {
    /// Worker argv template (see placeholder table above).
    std::vector<std::string> worker_argv;
    std::string out_dir;            ///< slice files, heartbeats, logs
    std::uint32_t total_points = 0; ///< full grid size
    std::uint32_t slice_points = 0; ///< points per slice (>= 1)
    std::uint32_t workers = 4;      ///< concurrent worker processes
    /// Attempt budget + backoff per slice (shared vocabulary with
    /// Sweep_runner's per-point retries). max_attempts bounds ALL
    /// dispatches of a slice, straggler duplicates included.
    Retry_policy retry{4, 250};
    Chaos_spec chaos; ///< failure injection into children (off by default)
    double heartbeat_timeout_s = 30.0; ///< stale heartbeat = hung
    double poll_interval_s = 0.02;
    /// Straggler re-dispatch fires only for attempts older than
    /// max(straggler_after_s, straggler_factor * median completed attempt
    /// wall time), and only when a worker slot is idle.
    double straggler_after_s = 5.0;
    double straggler_factor = 3.0;
    std::uint32_t max_live_per_slice = 2;
    double max_wall_s = 0.0; ///< 0 = no farm-level deadline
    bool resume = false;     ///< trust validated published slices
    /// Protocol fingerprints a resumed slice must match (empty = adopt
    /// from the first valid slice; see farm/checkpoint.h).
    std::string expect_spec;
    std::string expect_budget;
    std::string merged_path; ///< default: <out_dir>/merged_points.json
    bool quiet = false;      ///< suppress per-event progress lines
};

/// Per-slice execution ledger for the final summary table (noc_farm) —
/// how many dispatches each slice took, which attempt won, and whether
/// resume trusted it from the checkpoint instead of re-running.
struct Farm_slice_stats {
    std::uint32_t begin = 0;
    std::uint32_t end = 0; ///< half-open point range
    std::uint32_t dispatches = 0; ///< total spawns, stragglers included
    std::uint32_t failures = 0;   ///< crash/hang/invalid-publish events
    std::uint32_t straggler_dups = 0; ///< speculative duplicate dispatches
    bool trusted_on_resume = false;   ///< adopted from the checkpoint scan
    bool published = false;
    /// Dispatch index of the attempt that published (first-completion
    /// wins); meaningless when trusted_on_resume.
    std::uint32_t published_by_attempt = 0;
    double wall_seconds = 0.0; ///< winning attempt's wall (0 when trusted)
};

struct Farm_report {
    bool success = false;
    std::string error;       ///< why the farm failed (success == false)
    std::string merged_path; ///< written only on success
    std::string coverage;    ///< partial-coverage report (failure paths)
    std::uint32_t slices = 0;
    std::uint32_t published = 0;
    std::uint32_t attempts = 0; ///< total worker dispatches
    std::uint32_t retries = 0;  ///< failure-driven re-dispatches
    std::uint32_t hangs_detected = 0;
    std::uint32_t stragglers_redispatched = 0;
    std::uint32_t duplicates_cancelled = 0; ///< first-completion-wins kills
    std::uint32_t chaos_killed = 0; ///< chaos actions handed to workers
    std::uint32_t chaos_hung = 0;
    std::uint32_t chaos_torn = 0;
    std::uint32_t resumed_trusted = 0; ///< slices trusted by --resume scan
    std::uint32_t resumed_invalid = 0; ///< published-name files re-run
    std::uint32_t tmp_ignored = 0;     ///< torn/orphaned tmp files swept
    std::uint64_t duplicate_records = 0; ///< byte-identical merge dupes
    double wall_seconds = 0.0;
    std::string spec_name; ///< adopted protocol fingerprints
    std::string budget;
    /// One entry per slice, slice order — the attempt/retry/straggler
    /// ledger noc_farm renders as its final summary table.
    std::vector<Farm_slice_stats> slice_stats;
};

/// Run the farm to completion (or bounded failure). Never throws for
/// worker-side problems — those are the job; configuration errors (no
/// workers, empty template, unwritable out-dir) fail fast in the report.
[[nodiscard]] Farm_report run_farm(const Farm_config& cfg);

/// The slice layout run_farm uses: contiguous [k*slice_points,
/// min((k+1)*slice_points, total)) ranges. Exposed for checkpoint tooling
/// and tests.
[[nodiscard]] std::vector<Slice_range> farm_slices(
    std::uint32_t total_points, std::uint32_t slice_points);

} // namespace noc
