// Chaos harness for the sweep farm — the Fault_plan philosophy one layer
// up: instead of corrupting flits on simulated links (arch/fault_plan.h),
// it injects process-level failures into slice workers so the orchestrator
// is exercised against the failure modes it claims to survive.
//
// The orchestrator rolls the dice — deterministically, from (seed, slice
// begin, attempt) — and passes the chosen action to the child as a plain
// `--chaos-act` argument; the worker then crashes, hangs, or tears its
// write at the scripted point. Decisions live on the orchestrator side so
// a chaos run is reproducible from the seed alone and so the harness works
// with ANY worker that honors the argument, not just bench_sweep.
//
// `attempt_cap` bounds the injection: once a slice has burned that many
// attempts, chaos stands down and the worker runs clean. That keeps a
// chaos run convergent by construction — the retry budget only has to
// exceed the cap — while still forcing every recovery path to fire.
#pragma once

#include <cstdint>
#include <string>

namespace noc {

enum class Chaos_action : std::uint8_t { none, kill, hang, torn };

struct Chaos_spec {
    double p_kill = 0.0; ///< crash before any output is written
    double p_hang = 0.0; ///< stop heartbeating and sleep forever
    double p_torn = 0.0; ///< write a partial tmp file, then crash
    std::uint64_t seed = 1;
    std::uint32_t attempt_cap = 3; ///< attempts >= cap always run clean

    [[nodiscard]] bool any() const
    {
        return p_kill > 0.0 || p_hang > 0.0 || p_torn > 0.0;
    }

    /// Deterministic action for one (slice, attempt) dispatch.
    [[nodiscard]] Chaos_action action(std::uint32_t slice_begin,
                                      std::uint32_t attempt) const;
};

/// The `--chaos-act` vocabulary shared with workers.
[[nodiscard]] const char* chaos_action_name(Chaos_action a);

/// Parse "kill=0.3,hang=0.2,torn=0.1,seed=7,cap=3" (any subset of keys,
/// any order) into `out`. Returns "" on success, else a diagnostic.
[[nodiscard]] std::string parse_chaos_spec(const std::string& text,
                                           Chaos_spec& out);

} // namespace noc
