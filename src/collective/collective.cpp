#include "collective/collective.h"

#include "topology/multicast.h"

#include <algorithm>
#include <stdexcept>

namespace noc {

const char* collective_kind_name(Collective_kind k)
{
    switch (k) {
    case Collective_kind::broadcast: return "broadcast";
    case Collective_kind::reduce: return "reduce";
    case Collective_kind::allreduce: return "allreduce";
    case Collective_kind::allgather: return "allgather";
    }
    return "unknown";
}

Collective_driver::Collective_driver(Noc_system& sys, Collective_config cfg)
    : sys_{&sys}, cfg_{cfg}
{
    const int n = sys.topology().core_count();
    if (n < 1) throw std::invalid_argument{"Collective_driver: no cores"};
    if (cfg_.root.get() >= static_cast<std::uint32_t>(n))
        throw std::invalid_argument{"Collective_driver: root out of range"};
    if (cfg_.payload_flits == 0)
        throw std::invalid_argument{"Collective_driver: empty payload"};
    if (cfg_.fanin == 0)
        throw std::invalid_argument{"Collective_driver: zero fan-in"};

    // Flow stamps are how listeners tell collective packets (and the two
    // allreduce phases) apart from background traffic.
    reduce_flow_ =
        cfg_.flow.is_valid() ? cfg_.flow : Flow_id{0xC0110000u};
    bcast_flow_ = Flow_id{reduce_flow_.get() + 1};

    // Rank order: root first, then the remaining cores ascending by id —
    // deterministic, so the k-ary tree (children of rank r are ranks
    // r*k+1 .. r*k+k) is too.
    ranks_.reserve(static_cast<std::size_t>(n));
    ranks_.push_back(cfg_.root);
    for (int c = 0; c < n; ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        if (core != cfg_.root) ranks_.push_back(core);
    }
    rank_of_.assign(static_cast<std::size_t>(n), 0);
    for (std::uint32_t r = 0; r < ranks_.size(); ++r)
        rank_of_[ranks_[r].get()] = r;
    slots_.assign(static_cast<std::size_t>(n), Slot{});

    // Broadcast-shaped phases under use_multicast ride one destination set
    // holding every core: multicast_routes prunes each source out of its
    // own tree, so the same set serves any root (and allgather's N roots).
    const bool needs_mcast =
        cfg_.use_multicast && cfg_.kind != Collective_kind::reduce && n > 1;
    if (needs_mcast) {
        std::vector<std::vector<Core_id>> dsets(1);
        for (int c = 0; c < n; ++c)
            dsets[0].push_back(Core_id{static_cast<std::uint32_t>(c)});
        sys.set_mcast_routes(multicast_routes(sys.topology(), sys.routes(),
                                              dsets,
                                              sys.params().route_vcs));
    }

    for (int c = 0; c < n; ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        sys.ni(core).set_delivery_listener(
            [this, core](const Flit& f, Cycle now) {
                on_delivery(core, f, now);
            });
    }
}

std::uint32_t Collective_driver::child_count(std::uint32_t rank) const
{
    const auto n = static_cast<std::uint64_t>(ranks_.size());
    const std::uint64_t first =
        static_cast<std::uint64_t>(rank) * cfg_.fanin + 1;
    if (first >= n) return 0;
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(cfg_.fanin,
                                                              n - first));
}

Core_id Collective_driver::parent_core(std::uint32_t rank) const
{
    return ranks_[(rank - 1) / cfg_.fanin];
}

void Collective_driver::enqueue_broadcast(Core_id src, Cycle now)
{
    Packet_desc d;
    d.size_flits = cfg_.payload_flits;
    d.flow = bcast_flow_;
    if (cfg_.use_multicast) {
        d.dset = Dset_id{0};
        sys_->ni(src).enqueue_packet(d, now);
        return;
    }
    // Naive emulation: one unicast per destination, serialized through the
    // source's injection link — the baseline the tree fabric must beat.
    for (const Core_id dst : ranks_) {
        if (dst == src) continue;
        d.dst = dst;
        sys_->ni(src).enqueue_packet(d, now);
    }
}

void Collective_driver::send_contribution(Core_id c, Cycle now)
{
    Packet_desc d;
    d.dst = parent_core(rank_of_[c.get()]);
    d.size_flits = cfg_.payload_flits;
    d.flow = reduce_flow_;
    sys_->ni(c).enqueue_packet(d, now);
}

void Collective_driver::start()
{
    if (started_)
        throw std::logic_error{"Collective_driver: already started"};
    started_ = true;
    const Cycle now = sys_->kernel().now();
    const auto n = static_cast<std::uint32_t>(ranks_.size());
    if (n == 1) { // degenerate single-core network: nothing to move
        slots_[cfg_.root.get()].completed_at = now;
        return;
    }
    switch (cfg_.kind) {
    case Collective_kind::broadcast:
        // Root's role ends at the send; everyone else expects the payload.
        slots_[cfg_.root.get()].completed_at = now;
        for (std::uint32_t r = 1; r < n; ++r)
            slots_[ranks_[r].get()].expected = 1;
        enqueue_broadcast(cfg_.root, now);
        break;
    case Collective_kind::reduce:
    case Collective_kind::allreduce:
        for (std::uint32_t r = 0; r < n; ++r) {
            Slot& s = slots_[ranks_[r].get()];
            const std::uint32_t kids = child_count(r);
            s.expected = kids;
            if (kids != 0) continue;
            // Leaves contribute immediately; their reduce role is done
            // (allreduce leaves still await the broadcast, phase 2).
            if (cfg_.kind == Collective_kind::reduce)
                s.completed_at = now;
            send_contribution(ranks_[r], now);
        }
        break;
    case Collective_kind::allgather:
        for (std::uint32_t r = 0; r < n; ++r) {
            slots_[ranks_[r].get()].expected = n - 1;
            enqueue_broadcast(ranks_[r], now);
        }
        break;
    }
}

void Collective_driver::on_delivery(Core_id c, const Flit& f, Cycle now)
{
    Slot& s = slots_[c.get()];
    switch (cfg_.kind) {
    case Collective_kind::broadcast:
    case Collective_kind::allgather:
        if (f.flow != bcast_flow_) return;
        ++s.received;
        if (s.received == s.expected) s.completed_at = now;
        break;
    case Collective_kind::reduce:
        if (f.flow != reduce_flow_) return;
        ++s.received;
        if (s.received == s.expected) {
            s.completed_at = now;
            if (c != cfg_.root) send_contribution(c, now);
        }
        break;
    case Collective_kind::allreduce:
        if (f.flow == reduce_flow_) {
            ++s.received;
            if (s.received == s.expected) {
                if (c == cfg_.root) {
                    // Reduce phase complete at the root: fire the result
                    // broadcast. Enqueued on the root's own NI from the
                    // root's own listener (shard-safe, like replies).
                    s.completed_at = now;
                    enqueue_broadcast(cfg_.root, now);
                } else {
                    send_contribution(c, now);
                }
            }
        } else if (f.flow == bcast_flow_) {
            s.completed_at = now;
        }
        break;
    }
}

bool Collective_driver::done() const
{
    if (!started_) return false;
    for (const Slot& s : slots_)
        if (s.completed_at == invalid_cycle) return false;
    return true;
}

Cycle Collective_driver::completion_cycle() const
{
    if (!done()) return invalid_cycle;
    Cycle last = 0;
    for (const Slot& s : slots_) last = std::max(last, s.completed_at);
    return last;
}

Cycle Collective_driver::run_to_completion(Cycle max_cycles)
{
    start();
    // Fixed 64-cycle chunks, matching the drain cadence, so the sequence
    // of sequential points — and the observed completion — is identical
    // across kernel schedules.
    constexpr Cycle chunk = 64;
    const Cycle deadline = sys_->kernel().now() + max_cycles;
    while (!done() && sys_->kernel().now() < deadline)
        sys_->advance(std::min(chunk, deadline - sys_->kernel().now()));
    return completion_cycle();
}

} // namespace noc
