// Collective traffic — broadcast/reduce trees as a first-class workload.
//
// MPSoC traffic is not all point-to-point: cache-coherence invalidations,
// barrier releases and DNN parameter updates are one-to-many and
// many-to-one patterns whose cost is a COMPLETION time, not a steady-state
// latency distribution. This module models the four standard collectives
// as deterministic phase schedules over one Noc_system:
//
//   broadcast  — root sends one payload to every other core;
//   reduce     — every core contributes one payload up a k-ary tree of
//                unicast packets; an interior node forwards to its parent
//                once all of its children's contributions arrived;
//   allreduce  — reduce to the root, then broadcast of the result
//                (the classic two-phase emulation);
//   allgather  — every core broadcasts its payload to every other core.
//
// Broadcast-shaped phases use the multicast fabric when
// Collective_config::use_multicast is set (one packet per source routed
// along its destination-set tree, forked in the switches —
// topology/multicast.h); with it clear they fall back to NAIVE UNICAST
// EMULATION (one packet per destination serialized through the source's
// injection link), which is the baseline a multicast fabric must beat —
// bench_collective gates on tree allreduce completing no later than its
// emulation.
//
// ## Determinism and threading
//
// The driver is a set of per-core delivery-listener state machines wired
// through Ni::set_delivery_listener. Listeners run on shard worker
// threads (inside Ni::eject), so the discipline mirrors Trace_probe's:
// core c's listener writes ONLY core c's state slot and enqueues ONLY on
// core c's own NI (same shard thread — exactly how reply packets already
// enqueue from inside eject). done() / completion_cycle() read the slots
// at sequential points only. Deliveries land on schedule-invariant cycles
// (the tri-schedule bit-identity invariant), so the completion cycle is
// bit-identical across kernel schedules and shard counts — the
// KernelEquivalence collective rig proves it.
#pragma once

#include "arch/noc_system.h"

#include <cstdint>
#include <vector>

namespace noc {

enum class Collective_kind : std::uint8_t {
    broadcast,
    reduce,
    allreduce,
    allgather,
};

[[nodiscard]] const char* collective_kind_name(Collective_kind k);

struct Collective_config {
    Collective_kind kind = Collective_kind::broadcast;
    /// Root of the broadcast / reduce tree (ignored by allgather).
    Core_id root{};
    /// Payload size of every collective packet, flits.
    std::uint32_t payload_flits = 4;
    /// Reduction-tree fan-in: interior nodes combine up to this many
    /// children (reduce / allreduce).
    std::uint32_t fanin = 4;
    /// Tree multicast (default) vs naive per-destination unicast emulation
    /// for the broadcast-shaped phases — the bench gate's baseline.
    bool use_multicast = true;
    /// Flow id stamped on reduce-phase packets; broadcast-phase packets use
    /// flow + 1. Invalid (the default) picks a high id unlikely to collide
    /// with background traffic.
    Flow_id flow{};
};

/// One collective operation over a live system. Construction installs the
/// destination-set tree routes (when use_multicast and the kind needs
/// them; replaces any previously installed set, so build the driver before
/// any multicast packet is in flight) and takes over every NI's delivery
/// listener — one driver per system at a time, and it must outlive the
/// packets it causes. start() is a sequential-point call; then advance the
/// system (or call run_to_completion) and poll done().
class Collective_driver {
public:
    Collective_driver(Noc_system& sys, Collective_config cfg);

    /// Kick the collective off at the CURRENT kernel cycle (sequential
    /// point): leaves / roots / every core enqueue their phase-0 packets.
    /// One-shot — a second start() throws.
    void start();

    /// All participating cores finished their role. Sequential points only.
    [[nodiscard]] bool done() const;

    /// Cycle the last core finished at (the collective's completion time);
    /// invalid_cycle until done(). Schedule-invariant.
    [[nodiscard]] Cycle completion_cycle() const;

    /// start() + advance the system in drain-sized chunks until done or
    /// `max_cycles` elapse. Returns the completion cycle, or invalid_cycle
    /// on timeout.
    [[nodiscard]] Cycle run_to_completion(Cycle max_cycles);

    [[nodiscard]] const Collective_config& config() const { return cfg_; }

private:
    /// Per-core listener state. Written only by the owning core's listener
    /// (its shard thread); read at sequential points.
    struct Slot {
        std::uint32_t received = 0; ///< phase arrivals counted so far
        std::uint32_t expected = 0; ///< arrivals that complete the role
        Cycle completed_at = invalid_cycle;
    };

    void on_delivery(Core_id c, const Flit& f, Cycle now);
    void enqueue_broadcast(Core_id src, Cycle now);
    void send_contribution(Core_id c, Cycle now);

    /// Reduction-tree helpers over the rank order (rank 0 = root, then the
    /// remaining cores ascending by id — deterministic by construction).
    [[nodiscard]] std::uint32_t child_count(std::uint32_t rank) const;
    [[nodiscard]] Core_id parent_core(std::uint32_t rank) const;

    Noc_system* sys_;
    Collective_config cfg_;
    Flow_id reduce_flow_{};
    Flow_id bcast_flow_{};
    std::vector<Core_id> ranks_;        ///< rank -> core
    std::vector<std::uint32_t> rank_of_; ///< core -> rank
    std::vector<Slot> slots_;
    bool started_ = false;
};

} // namespace noc
