// The iNoCs-style end-to-end tool flow of Fig. 6:
//
//   application architecture + constraints (+ optional floorplan)
//       -> topology synthesis across switch counts / operating points
//       -> Pareto set -> designer pick (weighted)
//       -> RTL generation + structural check
//       -> simulation-model generation + run-time validation
//       -> reports.
#pragma once

#include "rtlgen/verilog.h"
#include "synth/compiler.h"
#include "synth/topology_synth.h"

#include <string>

namespace noc {

struct Flow_config {
    Synthesis_spec spec;
    /// Designer weights used to pick from the Pareto front.
    double power_weight = 1.0;
    double latency_weight = 0.3;
    double area_weight = 0.1;
    /// Run the generated simulation model against the spec.
    bool validate_by_simulation = true;
    Cycle validation_warmup = 2'000;
    Cycle validation_cycles = 20'000;
    /// Construction options for the validation systems (kernel schedule,
    /// Partition_plan, pool sizing; arch/build_options.h). Partial routes
    /// are always allowed — synthesized designs route only the
    /// application's flows.
    Build_options build;
    std::string top_name = "noc_top";
};

struct Flow_result {
    Synthesis_result synthesis;
    std::vector<std::size_t> pareto_indices;
    /// Index of the chosen design inside synthesis.designs.
    std::size_t chosen = 0;
    Rtl_output rtl;
    Rtl_check rtl_check;
    Validation_report validation;
    /// Human-readable flow report (markdown).
    std::string report;

    [[nodiscard]] const Design_point& chosen_design() const
    {
        return synthesis.designs.at(chosen);
    }
};

/// Run the complete flow; throws std::runtime_error when no feasible design
/// exists (with the rejection log in the message).
[[nodiscard]] Flow_result run_design_flow(const Flow_config& config);

// --- simulation-backed cross-check (src/explore) ---------------------------

/// Budget for sweeping the analytic Pareto front through the simulator.
struct Sim_sweep_options {
    /// Bandwidth scales applied to the application graph (the load grid of
    /// the underlying Sweep_spec), strictly ascending.
    std::vector<double> bandwidth_scales{0.5, 0.75, 1.0};
    Cycle warmup = 1'000;
    Cycle measure = 8'000;
    Cycle drain_limit = 40'000;
    /// Sweep worker threads (whole systems in parallel; see
    /// explore/sweep_runner.h). 0 = hardware concurrency.
    std::uint32_t worker_threads = 1;
    /// Latency (cycles) past which a point counts as saturated.
    double latency_cap = 500.0;
    /// Construction options for every validation-sweep system (becomes
    /// the sweep's Sweep_config::build; per-design flags still apply).
    Build_options build;
};

/// The analytic picks re-ranked by cycle-accurate simulation.
struct Sim_cross_check {
    /// Serialized curves/front over the candidate designs (curve i
    /// corresponds to candidate_designs[i]); the full Sweep_result stays in
    /// explore/ — this header carries only its serializations.
    std::string sweep_json; ///< Sweep_result::to_json() of the sweep
    std::string sweep_csv;  ///< Sweep_result::to_csv()
    /// Indices into Flow_result::synthesis.designs, analytic-front order.
    std::vector<std::size_t> candidate_designs;
    /// Candidates on the SIMULATION-backed Pareto front (subset of
    /// candidate_designs, same index space as synthesis.designs).
    std::vector<std::size_t> sim_front_designs;
    /// Candidate with the best simulated weighted rank (same weights as
    /// the analytic pick over cost / measured latency / saturation
    /// shortfall; index into synthesis.designs). Falls back to the
    /// analytic chosen design when no candidate produced usable
    /// simulation evidence.
    std::size_t sim_best = 0;
    /// Did the analytic chosen design survive onto the simulated front?
    bool analytic_pick_on_sim_front = false;
    std::string report; ///< human-readable summary (markdown)
};

/// Validate the flow's analytic Pareto front against the cycle-accurate
/// simulator: every front design runs the application graph across
/// `bandwidth_scales` on a Sweep_runner, producing a simulation-backed
/// front to cross-check the analytic pick. Requires a Flow_result whose
/// synthesis succeeded.
[[nodiscard]] Sim_cross_check validate_with_simulation(
    const Flow_result& flow, const Flow_config& config,
    const Sim_sweep_options& options = {});

} // namespace noc
