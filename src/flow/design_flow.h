// The iNoCs-style end-to-end tool flow of Fig. 6:
//
//   application architecture + constraints (+ optional floorplan)
//       -> topology synthesis across switch counts / operating points
//       -> Pareto set -> designer pick (weighted)
//       -> RTL generation + structural check
//       -> simulation-model generation + run-time validation
//       -> reports.
#pragma once

#include "rtlgen/verilog.h"
#include "synth/compiler.h"
#include "synth/topology_synth.h"

#include <string>

namespace noc {

struct Flow_config {
    Synthesis_spec spec;
    /// Designer weights used to pick from the Pareto front.
    double power_weight = 1.0;
    double latency_weight = 0.3;
    double area_weight = 0.1;
    /// Run the generated simulation model against the spec.
    bool validate_by_simulation = true;
    Cycle validation_warmup = 2'000;
    Cycle validation_cycles = 20'000;
    std::string top_name = "noc_top";
};

struct Flow_result {
    Synthesis_result synthesis;
    std::vector<std::size_t> pareto_indices;
    /// Index of the chosen design inside synthesis.designs.
    std::size_t chosen = 0;
    Rtl_output rtl;
    Rtl_check rtl_check;
    Validation_report validation;
    /// Human-readable flow report (markdown).
    std::string report;

    [[nodiscard]] const Design_point& chosen_design() const
    {
        return synthesis.designs.at(chosen);
    }
};

/// Run the complete flow; throws std::runtime_error when no feasible design
/// exists (with the rejection log in the message).
[[nodiscard]] Flow_result run_design_flow(const Flow_config& config);

} // namespace noc
