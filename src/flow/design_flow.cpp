#include "flow/design_flow.h"

#include "common/table.h"
#include "explore/sweep_runner.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace noc {

Flow_result run_design_flow(const Flow_config& config)
{
    Flow_result result;

    // 1. Topology synthesis across the architectural parameter sweep.
    result.synthesis = synthesize_topologies(config.spec);
    if (result.synthesis.designs.empty()) {
        std::string msg = "design flow: no feasible design.";
        for (const auto& r : result.synthesis.rejections)
            msg += "\n  " + r;
        throw std::runtime_error{msg};
    }

    // 2. Pareto extraction and the designer's weighted pick.
    result.pareto_indices = result.synthesis.pareto();
    {
        std::vector<Design_metrics> metrics;
        for (const auto i : result.pareto_indices)
            metrics.push_back(result.synthesis.designs[i].metrics);
        result.chosen = result.pareto_indices[pick_weighted(
            metrics, config.power_weight, config.latency_weight,
            config.area_weight)];
    }
    const Design_point& dp = result.synthesis.designs[result.chosen];

    // 3. RTL generation + structural self-check.
    result.rtl = generate_rtl(dp.topology,
                              network_params_for(dp, config.spec.buffer_depth),
                              config.top_name);
    result.rtl_check = check_rtl(result.rtl.text);

    // 4. Simulation-model validation against the application constraints.
    if (config.validate_by_simulation)
        result.validation =
            validate_design(dp, config.spec.graph, config.validation_warmup,
                            config.validation_cycles,
                            config.spec.buffer_depth, config.build);

    // 5. Report.
    std::ostringstream os;
    os << "# NoC design flow report — " << config.spec.graph.name() << "\n\n"
       << "Cores: " << config.spec.graph.core_count()
       << ", flows: " << config.spec.graph.flow_count()
       << ", aggregate bandwidth: "
       << format_double(config.spec.graph.total_bandwidth_mbps() * 8e-3, 2)
       << " Gb/s\n\n"
       << "## Design space (" << result.synthesis.designs.size()
       << " feasible, " << result.synthesis.rejections.size()
       << " rejected, " << result.pareto_indices.size() << " on front)\n\n";
    Text_table table{{"design", "switches", "clock(GHz)", "width", "power(mW)",
                      "latency(ns)", "area(mm2)", "pareto", "chosen"}};
    for (std::size_t i = 0; i < result.synthesis.designs.size(); ++i) {
        const auto& d = result.synthesis.designs[i];
        const bool on_front =
            std::find(result.pareto_indices.begin(),
                      result.pareto_indices.end(),
                      i) != result.pareto_indices.end();
        table.row()
            .add(d.name)
            .add(d.switch_count)
            .add(d.op.clock_ghz, 2)
            .add(d.op.flit_width_bits)
            .add(d.metrics.power_mw, 2)
            .add(d.metrics.latency_ns, 1)
            .add(d.metrics.area_mm2, 3)
            .add(on_front ? "*" : "")
            .add(i == result.chosen ? "<==" : "");
    }
    table.print(os);
    os << "\n## Chosen design: " << dp.name << "\n"
       << "- links: " << dp.topology.link_count()
       << ", max radix: " << dp.topology.max_radix()
       << ", pipeline stages: " << dp.total_pipeline_stages << "\n"
       << "- max link utilization: "
       << format_double(dp.max_link_utilization, 2) << "\n"
       << "- RTL: " << result.rtl.module_count << " modules, "
       << result.rtl.instance_count << " instances, structural check "
       << (result.rtl_check.ok ? "PASSED" : "FAILED") << "\n";
    if (config.validate_by_simulation) {
        os << "- simulation validation: "
           << (result.validation.bandwidth_met && result.validation.latency_met
                   ? "PASSED"
                   : "FAILED")
           << " (accepted "
           << format_double(result.validation.accepted_flits_per_cycle, 3)
           << " / offered "
           << format_double(result.validation.offered_flits_per_cycle, 3)
           << " flits/cycle)\n";
        for (const auto& v : result.validation.violations)
            os << "  - violation: " << v << "\n";
    }
    result.report = os.str();
    return result;
}

Sim_cross_check validate_with_simulation(const Flow_result& flow,
                                         const Flow_config& config,
                                         const Sim_sweep_options& options)
{
    if (flow.pareto_indices.empty())
        throw std::invalid_argument{
            "validate_with_simulation: flow has no Pareto designs"};

    // One sweep design per analytic-front candidate: its synthesized
    // topology and (partial) route table, its operating point's network
    // parameters, the application graph as traffic, bandwidth scales as
    // the load grid. The sweep's own Pareto front — zero-load latency and
    // saturated throughput measured by the simulator against the design's
    // storage cost — is the simulation-backed counterpart of the analytic
    // (power, latency, area) front the flow picked from.
    Sim_cross_check check;
    Sweep_spec spec;
    spec.name = "flow-validate:" + config.spec.graph.name();
    const auto graph =
        std::make_shared<const Core_graph>(config.spec.graph);
    for (const std::size_t i : flow.pareto_indices) {
        const Design_point& dp = flow.synthesis.designs[i];
        spec.add_design(dp.name,
                        std::make_shared<const Topology>(dp.topology),
                        std::make_shared<const Route_set>(dp.routes),
                        network_params_for(dp, config.spec.buffer_depth));
        check.candidate_designs.push_back(i);
    }
    spec.add_application(graph, config.spec.graph.name());
    spec.loads = options.bandwidth_scales;
    spec.base.warmup = options.warmup;
    spec.base.measure = options.measure;
    spec.base.drain_limit = options.drain_limit;
    spec.base.build = options.build;
    spec.latency_cap = options.latency_cap;

    const Sweep_result sweep = run_sweep(spec, options.worker_threads);
    check.sweep_json = sweep.to_json();
    check.sweep_csv = sweep.to_csv();

    // Map sweep curves (one per candidate, single traffic) back onto
    // synthesis.designs indices.
    for (const std::size_t c : sweep.pareto)
        check.sim_front_designs.push_back(
            check.candidate_designs[sweep.curves[c].design]);
    check.analytic_pick_on_sim_front =
        std::find(check.sim_front_designs.begin(),
                  check.sim_front_designs.end(),
                  flow.chosen) != check.sim_front_designs.end();

    // Simulated weighted pick, same weights as the analytic one: cost
    // under the power weight, measured zero-load latency under the latency
    // weight, and saturation SHORTFALL (best candidate's throughput minus
    // this one's — positive and minimized, as pick_weighted's
    // max-normalization requires) under the area weight. Candidates with
    // no usable simulation evidence (all points failed/saturated) are
    // excluded, matching the Pareto assembly; with no evidence at all the
    // analytic pick stands.
    {
        std::vector<Design_metrics> metrics;
        std::vector<std::size_t> evidenced; // curve indices
        double best_sat = 0.0;
        for (const auto& c : sweep.curves)
            if (c.zero_load_latency > 0.0)
                best_sat = std::max(best_sat, c.saturation_throughput);
        for (std::size_t i = 0; i < sweep.curves.size(); ++i) {
            const auto& c = sweep.curves[i];
            if (c.zero_load_latency <= 0.0) continue;
            metrics.push_back({c.cost_bits, c.zero_load_latency,
                               best_sat - c.saturation_throughput});
            evidenced.push_back(i);
        }
        check.sim_best =
            metrics.empty()
                ? flow.chosen
                : check.candidate_designs
                      [sweep.curves[evidenced[pick_weighted(
                                        metrics, config.power_weight,
                                        config.latency_weight,
                                        config.area_weight)]]
                           .design];
    }

    std::ostringstream os;
    os << "# Simulation cross-check — " << config.spec.graph.name() << "\n\n"
       << check.candidate_designs.size()
       << " analytic Pareto designs swept through the cycle-accurate "
          "simulator ("
       << options.bandwidth_scales.size() << " bandwidth scales, "
       << sweep.worker_threads << " sweep workers)\n\n";
    Text_table table{{"design", "cost(bits)", "sim lat0(cy)",
                      "sim sat(fl/n/cy)", "sim front", "analytic pick"}};
    for (std::size_t c = 0; c < sweep.curves.size(); ++c) {
        const auto& curve = sweep.curves[c];
        table.row()
            .add(curve.design_label)
            .add(curve.cost_bits, 0)
            .add(curve.zero_load_latency, 1)
            .add(curve.saturation_throughput, 3)
            .add(curve.on_pareto ? "*" : "")
            .add(check.candidate_designs[curve.design] == flow.chosen
                     ? "<=="
                     : "");
    }
    table.print(os);
    os << "\nanalytic pick "
       << flow.synthesis.designs[flow.chosen].name
       << (check.analytic_pick_on_sim_front
               ? " CONFIRMED on the simulation-backed front"
               : " NOT on the simulation-backed front")
       << "; simulated weighted pick: "
       << flow.synthesis.designs[check.sim_best].name << "\n";
    check.report = os.str();
    return check;
}

} // namespace noc
