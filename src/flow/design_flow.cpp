#include "flow/design_flow.h"

#include "common/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace noc {

Flow_result run_design_flow(const Flow_config& config)
{
    Flow_result result;

    // 1. Topology synthesis across the architectural parameter sweep.
    result.synthesis = synthesize_topologies(config.spec);
    if (result.synthesis.designs.empty()) {
        std::string msg = "design flow: no feasible design.";
        for (const auto& r : result.synthesis.rejections)
            msg += "\n  " + r;
        throw std::runtime_error{msg};
    }

    // 2. Pareto extraction and the designer's weighted pick.
    result.pareto_indices = result.synthesis.pareto();
    {
        std::vector<Design_metrics> metrics;
        for (const auto i : result.pareto_indices)
            metrics.push_back(result.synthesis.designs[i].metrics);
        result.chosen = result.pareto_indices[pick_weighted(
            metrics, config.power_weight, config.latency_weight,
            config.area_weight)];
    }
    const Design_point& dp = result.synthesis.designs[result.chosen];

    // 3. RTL generation + structural self-check.
    result.rtl = generate_rtl(dp.topology,
                              network_params_for(dp, config.spec.buffer_depth),
                              config.top_name);
    result.rtl_check = check_rtl(result.rtl.text);

    // 4. Simulation-model validation against the application constraints.
    if (config.validate_by_simulation)
        result.validation =
            validate_design(dp, config.spec.graph, config.validation_warmup,
                            config.validation_cycles,
                            config.spec.buffer_depth);

    // 5. Report.
    std::ostringstream os;
    os << "# NoC design flow report — " << config.spec.graph.name() << "\n\n"
       << "Cores: " << config.spec.graph.core_count()
       << ", flows: " << config.spec.graph.flow_count()
       << ", aggregate bandwidth: "
       << format_double(config.spec.graph.total_bandwidth_mbps() * 8e-3, 2)
       << " Gb/s\n\n"
       << "## Design space (" << result.synthesis.designs.size()
       << " feasible, " << result.synthesis.rejections.size()
       << " rejected, " << result.pareto_indices.size() << " on front)\n\n";
    Text_table table{{"design", "switches", "clock(GHz)", "width", "power(mW)",
                      "latency(ns)", "area(mm2)", "pareto", "chosen"}};
    for (std::size_t i = 0; i < result.synthesis.designs.size(); ++i) {
        const auto& d = result.synthesis.designs[i];
        const bool on_front =
            std::find(result.pareto_indices.begin(),
                      result.pareto_indices.end(),
                      i) != result.pareto_indices.end();
        table.row()
            .add(d.name)
            .add(d.switch_count)
            .add(d.op.clock_ghz, 2)
            .add(d.op.flit_width_bits)
            .add(d.metrics.power_mw, 2)
            .add(d.metrics.latency_ns, 1)
            .add(d.metrics.area_mm2, 3)
            .add(on_front ? "*" : "")
            .add(i == result.chosen ? "<==" : "");
    }
    table.print(os);
    os << "\n## Chosen design: " << dp.name << "\n"
       << "- links: " << dp.topology.link_count()
       << ", max radix: " << dp.topology.max_radix()
       << ", pipeline stages: " << dp.total_pipeline_stages << "\n"
       << "- max link utilization: "
       << format_double(dp.max_link_utilization, 2) << "\n"
       << "- RTL: " << result.rtl.module_count << " modules, "
       << result.rtl.instance_count << " instances, structural check "
       << (result.rtl_check.ok ? "PASSED" : "FAILED") << "\n";
    if (config.validate_by_simulation) {
        os << "- simulation validation: "
           << (result.validation.bandwidth_met && result.validation.latency_met
                   ? "PASSED"
                   : "FAILED")
           << " (accepted "
           << format_double(result.validation.accepted_flits_per_cycle, 3)
           << " / offered "
           << format_double(result.validation.offered_flits_per_cycle, 3)
           << " flits/cycle)\n";
        for (const auto& v : result.validation.violations)
            os << "  - violation: " << v << "\n";
    }
    result.report = os.str();
    return result;
}

} // namespace noc
