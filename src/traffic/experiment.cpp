#include "traffic/experiment.h"

#include "collective/collective.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"
#include "traffic/flow_traffic.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace noc {

namespace {

/// Run the measurement window, honouring the early-stop protocol when
/// Sweep_config::early_stop_check is set. Returns true when the point was
/// stopped early (window truncated at the stop cycle).
bool run_measurement(Noc_system& sys, const Sweep_config& cfg)
{
    if (cfg.early_stop_check == 0) {
        sys.measure(cfg.measure);
        return false;
    }
    // Chunked measure with live saturation detection: stop when mean
    // packet latency is above the cap AND rose since the previous check.
    // Both reads are exact-integer-derived at sequential points, so the
    // stop cycle is a pure function of the point configuration —
    // deterministic and worker-count-invariant.
    sys.open_measurement(cfg.measure);
    const Cycle end = sys.kernel().now() + cfg.measure;
    double prev_latency = -1.0;
    while (sys.kernel().now() < end) {
        sys.advance(std::min(cfg.early_stop_check,
                             end - sys.kernel().now()));
        if (sys.kernel().now() >= end) break;
        if (sys.stats().measured_delivered() == 0) continue;
        const double latency = sys.stats().packet_latency().mean();
        if (latency > cfg.early_stop_latency_cap &&
            latency > prev_latency && prev_latency >= 0.0) {
            sys.close_measurement();
            return true;
        }
        prev_latency = latency;
    }
    return false;
}

Load_point collect(Noc_system& sys, double offered, const Sweep_config& cfg,
                   Collective_driver* collective = nullptr)
{
    // Telemetry attach (one branch, off by default): registry + async
    // sampler, samples to a side stream only — the Load_point below reads
    // exactly the same stats either way.
    Telemetry_registry registry;
    std::unique_ptr<Telemetry_sampler> sampler;
    if (cfg.telemetry_period != 0) {
        sys.attach_telemetry(registry);
        std::string path;
        if (!cfg.telemetry_dir.empty())
            path = cfg.telemetry_dir + "/point_" + std::to_string(cfg.seed) +
                   ".noct";
        sampler = std::make_unique<Telemetry_sampler>(
            &registry, cfg.telemetry_period, path);
        sys.attach_sampler(sampler.get());
    }
    sys.warmup(cfg.warmup);
    // The collective starts at the measurement boundary (a sequential
    // point), so its completion latency shares the window's origin.
    const Cycle collective_start = sys.kernel().now();
    if (collective != nullptr) collective->start();
    const bool early_stopped = run_measurement(sys, cfg);
    Load_point pt;
    pt.early_stopped = early_stopped;
    pt.measured_cycles = sys.stats().measurement_window_cycles();
    const Cycle drain_limit =
        cfg.fault_drain_cap != 0 && cfg.build.fault_plan != nullptr
            ? std::min(cfg.drain_limit, cfg.fault_drain_cap)
            : cfg.drain_limit;
    pt.drained = sys.drain(drain_limit);
    if (collective != nullptr) {
        // Reduce-tree cascades enqueued during the drain are created after
        // the window closed, so drain()'s measured-in-flight test does not
        // wait for them: grant the collective its own drain-sized budget in
        // the same 64-cycle chunks (schedule-invariant cadence).
        const Cycle deadline = sys.kernel().now() + cfg.drain_limit;
        while (!collective->done() && sys.kernel().now() < deadline)
            sys.advance(std::min<Cycle>(64, deadline - sys.kernel().now()));
        pt.collective_completed = collective->done();
        if (pt.collective_completed)
            pt.collective_completion_cycles =
                collective->completion_cycle() - collective_start;
    }
    pt.offered_flits_per_node_cycle = offered;
    const auto cores = static_cast<double>(sys.topology().core_count());
    pt.accepted_flits_per_node_cycle =
        sys.stats().accepted_flits_per_cycle() / cores;
    pt.avg_packet_latency = sys.stats().packet_latency().mean();
    pt.avg_network_latency = sys.stats().network_latency().mean();
    pt.p99_estimate = sys.stats().packet_latency().mean() +
                      3.0 * sys.stats().packet_latency().std_dev();
    pt.max_latency = sys.stats().packet_latency().max();
    pt.packets = sys.stats().measured_delivered();
    pt.packets_dropped = sys.stats().packets_dropped();
    pt.packets_unreachable = sys.stats().packets_unreachable();
    pt.corrupted_flits = sys.stats().corrupted_flits();
    pt.retransmissions = sys.stats().retransmissions();
    const auto& recs = sys.stats().recoveries();
    pt.recoveries = recs.size();
    if (!recs.empty()) {
        double sum = 0.0;
        for (const auto& r : recs) {
            sum += static_cast<double>(r.time_to_recover());
            if (r.live_switchover) ++pt.live_switchovers;
        }
        pt.avg_time_to_recover = sum / static_cast<double>(recs.size());
    }
    pt.packets_replayed = sys.stats().packets_replayed();
    const double measured_delivered =
        static_cast<double>(sys.stats().measured_delivered());
    const double measured_dropped =
        static_cast<double>(sys.stats().measured_dropped());
    if (measured_delivered + measured_dropped > 0.0)
        pt.availability =
            measured_delivered / (measured_delivered + measured_dropped);
    // Unreachable packets count dropped too; subtracting them leaves the
    // drops on still-connected pairs — the losses replay can and should
    // have eliminated.
    const double connected_dropped =
        measured_dropped -
        static_cast<double>(sys.stats().measured_unreachable());
    if (measured_delivered + connected_dropped > 0.0)
        pt.connected_availability =
            measured_delivered / (measured_delivered + connected_dropped);
    if (sampler) {
        sys.attach_sampler(nullptr); // sampler dies with this scope
        sampler->stop();
    }
    return pt;
}

/// Install a Bernoulli background source on every core (shared by the
/// plain and collective-carrying synthetic runs).
void install_bernoulli_sources(
    Noc_system& sys, double rate_flits_per_node_cycle,
    const std::shared_ptr<const Dest_pattern>& pattern,
    const Sweep_config& cfg)
{
    for (int c = 0; c < sys.topology().core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Bernoulli_source::Params sp;
        sp.flits_per_cycle = rate_flits_per_node_cycle;
        sp.packet_size_flits = cfg.packet_size_flits;
        sp.seed = cfg.seed * 7919 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Bernoulli_source>(core, sp, pattern));
    }
}

} // namespace

Load_point run_synthetic_load(
    const Topology& topology, const Route_set& routes,
    const Network_params& params, double rate_flits_per_node_cycle,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg)
{
    Noc_system sys{topology, routes, params, cfg.build};
    install_bernoulli_sources(sys, rate_flits_per_node_cycle,
                              pattern_factory(), cfg);
    return collect(sys, rate_flits_per_node_cycle, cfg);
}

Load_point run_synthetic_load_with_collective(
    const Topology& topology, const Route_set& routes,
    const Network_params& params, double rate_flits_per_node_cycle,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg, const Collective_config& collective)
{
    Noc_system sys{topology, routes, params, cfg.build};
    install_bernoulli_sources(sys, rate_flits_per_node_cycle,
                              pattern_factory(), cfg);
    // Built before any packet is in flight: construction installs the
    // destination-set trees and takes over the delivery listeners.
    Collective_driver driver{sys, collective};
    return collect(sys, rate_flits_per_node_cycle, cfg, &driver);
}

double find_saturation_throughput(
    const Topology& topology, const Route_set& routes,
    const Network_params& params,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg, double latency_cap)
{
    double lo = 0.0;
    double hi = 1.0;
    double best_accepted = 0.0;
    for (int iter = 0; iter < 7; ++iter) {
        const double mid = (lo + hi) / 2;
        const Load_point pt = run_synthetic_load(topology, routes, params,
                                                 mid, pattern_factory, cfg);
        const bool saturated =
            !pt.drained || pt.avg_packet_latency > latency_cap;
        if (saturated) {
            hi = mid;
        } else {
            lo = mid;
            best_accepted = pt.accepted_flits_per_node_cycle;
        }
    }
    return best_accepted;
}

Load_point run_application_load(const Topology& topology,
                                const Route_set& routes,
                                const Network_params& params,
                                const Core_graph& graph,
                                double bandwidth_scale,
                                const Sweep_config& cfg)
{
    Noc_system sys{topology, routes, params, cfg.build};
    double offered = 0.0;
    for (int c = 0; c < topology.core_count(); ++c) {
        const Core_id core{static_cast<std::uint32_t>(c)};
        Flow_source::Params fp;
        fp.clock_ghz = params.clock_ghz;
        fp.flit_width_bits = params.flit_width_bits;
        fp.bandwidth_scale = bandwidth_scale;
        fp.seed = cfg.seed * 104729 + static_cast<std::uint64_t>(c);
        sys.ni(core).set_source(
            std::make_unique<Flow_source>(core, graph, fp));
    }
    for (const auto& f : graph.flows())
        offered += flits_per_cycle_for(f.bandwidth_mbps * bandwidth_scale,
                                       params.clock_ghz,
                                       params.flit_width_bits,
                                       f.packet_bytes);
    return collect(sys, offered / topology.core_count(), cfg);
}

} // namespace noc
