// Application communication graphs — the input to the NoC design flow.
//
// §6: "The application communication constraints include the average
// bandwidth of communication between the different cores, average latency
// constraints, hard QoS constraints on bandwidth and latency..." A
// Core_graph captures exactly that, plus per-core area (for floorplanning)
// and layer assignments (for 3D synthesis).
#pragma once

#include "common/types.h"

#include <string>
#include <vector>

namespace noc {

struct Core_spec {
    std::string name;
    /// Memories/slaves tend to be traffic sinks; flagged for reporting and
    /// for OCP-style master/slave role assignment.
    bool is_memory = false;
    /// Block area for floorplanning, mm^2.
    double area_mm2 = 1.0;
    /// Die layer for 3D designs (layer 0 = bottom; 2D graphs use 0).
    Layer_id layer{0};
};

struct Flow_spec {
    int src = 0;
    int dst = 0;
    /// Average bandwidth, MB/s (the unit of the classic NoC benchmarks).
    double bandwidth_mbps = 0.0;
    /// Hard latency bound in ns (0 = unconstrained).
    double max_latency_ns = 0.0;
    /// Message size the application ships per packet.
    std::uint32_t packet_bytes = 64;
    /// Hard real-time stream: mapped to a GT connection when QoS is on.
    bool is_critical = false;
};

class Core_graph {
public:
    Core_graph() = default;
    explicit Core_graph(std::string name) : name_{std::move(name)} {}

    int add_core(Core_spec spec);
    Flow_id add_flow(Flow_spec spec);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] int core_count() const
    {
        return static_cast<int>(cores_.size());
    }
    [[nodiscard]] int flow_count() const
    {
        return static_cast<int>(flows_.size());
    }
    [[nodiscard]] const Core_spec& core(int i) const
    {
        return cores_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] const Flow_spec& flow(Flow_id f) const
    {
        return flows_.at(f.get());
    }
    [[nodiscard]] const std::vector<Core_spec>& cores() const
    {
        return cores_;
    }
    [[nodiscard]] const std::vector<Flow_spec>& flows() const
    {
        return flows_;
    }

    [[nodiscard]] double total_bandwidth_mbps() const;
    /// Flow ids originating at core `src`.
    [[nodiscard]] std::vector<Flow_id> flows_from(int src) const;
    [[nodiscard]] int core_index(const std::string& name) const;
    [[nodiscard]] int layer_count() const;

    /// Throws std::logic_error on dangling indices / self flows /
    /// non-positive bandwidth.
    void validate() const;

private:
    std::string name_;
    std::vector<Core_spec> cores_;
    std::vector<Flow_spec> flows_;
};

} // namespace noc
