#include "traffic/flow_traffic.h"

#include <stdexcept>

namespace noc {

double flits_per_cycle_for(double bandwidth_mbps, double clock_ghz,
                           int flit_width_bits, std::uint32_t packet_bytes,
                           std::uint32_t* out_flits_per_packet)
{
    if (bandwidth_mbps < 0 || clock_ghz <= 0 || flit_width_bits <= 0 ||
        packet_bytes == 0)
        throw std::invalid_argument{"flits_per_cycle_for: bad args"};
    const double bits_per_second = bandwidth_mbps * 8e6;
    const double cycles_per_second = clock_ghz * 1e9;
    const auto flits_per_packet = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(packet_bytes) * 8 +
         static_cast<std::uint64_t>(flit_width_bits) - 1) /
        static_cast<std::uint64_t>(flit_width_bits));
    if (out_flits_per_packet) *out_flits_per_packet = flits_per_packet;
    // Payload-bits accounting: the packet carries packet_bytes of payload
    // in flits_per_packet flits.
    const double packets_per_second =
        bits_per_second / (static_cast<double>(packet_bytes) * 8.0);
    const double packets_per_cycle = packets_per_second / cycles_per_second;
    return packets_per_cycle * flits_per_packet;
}

Flow_source::Flow_source(Core_id self, const Core_graph& graph, Params p)
    : p_{p}, rng_{p.seed}
{
    for (const Flow_id fid : graph.flows_from(static_cast<int>(self.get()))) {
        const Flow_spec& spec = graph.flow(fid);
        Flow_state st;
        st.id = fid;
        st.dst = Core_id{static_cast<std::uint32_t>(spec.dst)};
        std::uint32_t fpp = 0;
        const double fpc =
            flits_per_cycle_for(spec.bandwidth_mbps * p.bandwidth_scale,
                                p.clock_ghz, p.flit_width_bits,
                                spec.packet_bytes, &fpp);
        st.gt = p.critical_as_gt && spec.is_critical;
        if (st.gt) {
            // GT connections are flit-granular (see arch/ni.h): ship the
            // same bandwidth as single-flit packets.
            st.flits_per_packet = 1;
            st.packets_per_cycle = fpc;
        } else {
            st.flits_per_packet = fpp;
            st.packets_per_cycle = fpc / fpp;
        }
        if (st.packets_per_cycle > 1.0)
            throw std::invalid_argument{
                "Flow_source: flow exceeds one packet per cycle"};
        flows_.push_back(st);
    }
}

std::optional<Packet_desc> Flow_source::poll(Cycle)
{
    // Every flow draws every cycle; fired packets go through a backlog so
    // that the NI's one-enqueue-per-cycle interface never drops rate.
    for (auto& f : flows_) {
        bool fire = false;
        if (p_.jitter) {
            fire = rng_.next_bool(f.packets_per_cycle);
        } else {
            f.accumulator += f.packets_per_cycle;
            if (f.accumulator >= 1.0) {
                f.accumulator -= 1.0;
                fire = true;
            }
        }
        if (!fire) continue;
        Packet_desc d;
        d.dst = f.dst;
        d.size_flits = f.flits_per_packet;
        d.flow = f.id;
        if (f.gt) {
            d.cls = Traffic_class::gt;
            d.conn = Connection_id{f.id.get()};
        }
        backlog_.push_back(d);
    }
    if (backlog_.empty()) return std::nullopt;
    const Packet_desc d = backlog_.front();
    backlog_.pop_front();
    return d;
}

} // namespace noc
