#include "traffic/flow_traffic.h"

#include <stdexcept>

namespace noc {

double flits_per_cycle_for(double bandwidth_mbps, double clock_ghz,
                           int flit_width_bits, std::uint32_t packet_bytes,
                           std::uint32_t* out_flits_per_packet)
{
    if (bandwidth_mbps < 0 || clock_ghz <= 0 || flit_width_bits <= 0 ||
        packet_bytes == 0)
        throw std::invalid_argument{"flits_per_cycle_for: bad args"};
    const double bits_per_second = bandwidth_mbps * 8e6;
    const double cycles_per_second = clock_ghz * 1e9;
    const auto flits_per_packet = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(packet_bytes) * 8 +
         static_cast<std::uint64_t>(flit_width_bits) - 1) /
        static_cast<std::uint64_t>(flit_width_bits));
    if (out_flits_per_packet) *out_flits_per_packet = flits_per_packet;
    // Payload-bits accounting: the packet carries packet_bytes of payload
    // in flits_per_packet flits.
    const double packets_per_second =
        bits_per_second / (static_cast<double>(packet_bytes) * 8.0);
    const double packets_per_cycle = packets_per_second / cycles_per_second;
    return packets_per_cycle * flits_per_packet;
}

Flow_source::Flow_source(Core_id self, const Core_graph& graph, Params p)
    : p_{p}, rng_{p.seed}
{
    for (const Flow_id fid : graph.flows_from(static_cast<int>(self.get()))) {
        const Flow_spec& spec = graph.flow(fid);
        Flow_state st;
        st.id = fid;
        st.dst = Core_id{static_cast<std::uint32_t>(spec.dst)};
        std::uint32_t fpp = 0;
        const double fpc =
            flits_per_cycle_for(spec.bandwidth_mbps * p.bandwidth_scale,
                                p.clock_ghz, p.flit_width_bits,
                                spec.packet_bytes, &fpp);
        st.gt = p.critical_as_gt && spec.is_critical;
        if (st.gt) {
            // GT connections are flit-granular (see arch/ni.h): ship the
            // same bandwidth as single-flit packets.
            st.flits_per_packet = 1;
            st.packets_per_cycle = fpc;
        } else {
            st.flits_per_packet = fpp;
            st.packets_per_cycle = fpc / fpp;
        }
        if (st.packets_per_cycle > 1.0)
            throw std::invalid_argument{
                "Flow_source: flow exceeds one packet per cycle"};
        flows_.push_back(st);
    }
}

void Flow_source::schedule(Flow_state& f, Cycle from)
{
    if (f.packets_per_cycle <= 0.0) {
        f.fire_at = invalid_cycle; // silent flow: never fires
        return;
    }
    if (p_.jitter) {
        // A Bernoulli trial per cycle IS a geometric gap between
        // successes; drawing the gap directly is the identical process,
        // one draw per packet instead of one per cycle.
        f.fire_at = from + rng_.next_geometric(f.packets_per_cycle);
    } else {
        // Periodic mode: pre-run the accumulator to its next crossing with
        // the SAME sequence of += operations a per-cycle poll would
        // perform, so the FP stream — and thus every fire cycle — is
        // bit-identical to the pre-event-driven implementation. (The work
        // is the same O(1/rate) the per-cycle formulation pays, just paid
        // at the event instead of spread over the gap.) Two stops bound
        // the loop for degenerate rates: if the addend no longer changes
        // the accumulator (below one ulp of the running sum) the per-cycle
        // formulation would never fire again either, so silence is exactly
        // equivalent; and a gap beyond max_prerun_gap cycles (a flow
        // firing less than ~once per 4M cycles contributes nothing any
        // practical run can observe) is likewise declared silent rather
        // than pre-run eagerly for seconds.
        constexpr Cycle max_prerun_gap = Cycle{1} << 22;
        Cycle k = 0;
        double acc = f.accumulator;
        do {
            const double next_acc = acc + f.packets_per_cycle;
            if (next_acc == acc || k > max_prerun_gap) {
                f.accumulator = acc;
                f.fire_at = invalid_cycle;
                return;
            }
            acc = next_acc;
            ++k;
        } while (acc < 1.0);
        f.accumulator = acc - 1.0;
        f.fire_at = from + (k - 1);
    }
}

std::optional<Packet_desc> Flow_source::poll(Cycle now)
{
    if (!armed_) {
        // First poll: each flow's first trial happens this very cycle (a
        // zero gap fires at `now`), matching the per-cycle formulation.
        armed_ = true;
        for (auto& f : flows_) schedule(f, now);
    }
    // Fired packets go through a backlog so that the NI's
    // one-enqueue-per-cycle interface never drops rate.
    for (auto& f : flows_) {
        if (f.fire_at > now) continue; // invalid_cycle compares greater
        Packet_desc d;
        d.dst = f.dst;
        d.size_flits = f.flits_per_packet;
        d.flow = f.id;
        if (f.gt) {
            d.cls = Traffic_class::gt;
            d.conn = Connection_id{f.id.get()};
        }
        backlog_.push_back(d);
        schedule(f, now + 1); // next trial next cycle: one fire per cycle
    }
    if (backlog_.empty()) return std::nullopt;
    const Packet_desc d = backlog_.front();
    backlog_.pop_front();
    return d;
}

Cycle Flow_source::next_poll_at(Cycle now) const
{
    if (!armed_) return now + 1; // must be polled once to seed the events
    if (!backlog_.empty()) return now + 1; // still draining a burst
    Cycle next = invalid_cycle;
    for (const auto& f : flows_)
        if (f.fire_at < next) next = f.fire_at;
    if (next == invalid_cycle) return invalid_cycle; // silent forever
    return next > now + 1 ? next : now + 1;
}

} // namespace noc
