#include "traffic/trace.h"

#include <sstream>
#include <stdexcept>

namespace noc {

Trace_source::Trace_source(std::vector<Trace_event> events)
    : events_{std::move(events)}
{
    for (std::size_t i = 1; i < events_.size(); ++i)
        if (events_[i].at < events_[i - 1].at)
            throw std::invalid_argument{
                "Trace_source: events must be sorted by cycle"};
    for (const auto& e : events_)
        if (e.size_flits == 0)
            throw std::invalid_argument{"Trace_source: empty packet"};
}

std::optional<Packet_desc> Trace_source::poll(Cycle now)
{
    if (next_ >= events_.size() || events_[next_].at > now)
        return std::nullopt;
    const Trace_event& e = events_[next_++];
    Packet_desc d;
    d.dst = e.dst;
    d.size_flits = e.size_flits;
    d.cls = e.cls;
    d.flow = e.flow;
    return d;
}

std::vector<std::vector<Trace_event>> parse_trace(const std::string& text,
                                                  int core_count)
{
    if (core_count <= 0)
        throw std::invalid_argument{"parse_trace: core_count <= 0"};
    std::vector<std::vector<Trace_event>> per_core(
        static_cast<std::size_t>(core_count));
    std::istringstream is{text};
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream ls{line};
        std::uint64_t at = 0;
        long long src = -1;
        long long dst = -1;
        std::uint32_t size = 0;
        if (!(ls >> at)) continue; // blank/comment line
        if (!(ls >> src >> dst >> size))
            throw std::invalid_argument{
                "parse_trace: malformed line " + std::to_string(line_no)};
        if (src < 0 || src >= core_count || dst < 0 || dst >= core_count ||
            src == dst)
            throw std::invalid_argument{
                "parse_trace: bad core ids on line " +
                std::to_string(line_no)};
        Trace_event e;
        e.at = at;
        e.dst = Core_id{static_cast<std::uint32_t>(dst)};
        e.size_flits = size;
        auto& list = per_core[static_cast<std::size_t>(src)];
        if (!list.empty() && list.back().at > e.at)
            throw std::invalid_argument{
                "parse_trace: events for core " + std::to_string(src) +
                " not sorted (line " + std::to_string(line_no) + ")"};
        list.push_back(e);
    }
    return per_core;
}

} // namespace noc
