// Open-loop synthetic traffic sources.
#pragma once

#include "arch/traffic_source.h"
#include "common/rng.h"
#include "traffic/patterns.h"

#include <memory>

namespace noc {

/// Bernoulli process: a packet is generated each cycle with probability
/// rate / size, so the offered load is `rate` flits/cycle/node.
///
/// Implemented with geometric inter-arrival gaps — the identical stochastic
/// process (a Bernoulli trial per cycle IS a geometric gap between
/// successes), but drawn one arrival at a time. Between arrivals poll() is a
/// side-effect-free nullopt and next_poll_at() names the injection cycle,
/// so an idle NI can sleep through the gap under activity gating instead of
/// burning an RNG draw per simulated cycle.
class Bernoulli_source final : public Traffic_source {
public:
    struct Params {
        double flits_per_cycle = 0.1; ///< offered load
        std::uint32_t packet_size_flits = 4;
        Traffic_class cls = Traffic_class::request;
        std::uint64_t seed = 1;
    };

    Bernoulli_source(Core_id self, Params p,
                     std::shared_ptr<const Dest_pattern> pattern);

    [[nodiscard]] std::optional<Packet_desc> poll(Cycle now) override;
    [[nodiscard]] Cycle next_poll_at(Cycle now) const override;

private:
    Core_id self_;
    Params p_;
    std::shared_ptr<const Dest_pattern> pattern_;
    Rng rng_;
    double p_packet_ = 0.0;
    Cycle next_at_ = invalid_cycle;
    bool armed_ = false;
};

/// Two-state Markov-modulated (bursty) process: ON state injects like
/// Bernoulli at `on_rate`; OFF state is silent; geometric dwell times.
/// Average load = on_rate * p_on where p_on = beta / (alpha + beta).
///
/// Event-driven like Bernoulli_source: instead of three Bernoulli draws per
/// cycle (state transition, then injection), the source draws the geometric
/// quantities directly — the cycle the OFF state ends, the cycle the ON
/// dwell ends, and the next injection cycle within the dwell. The same
/// stochastic process, but poll() between events is a side-effect-free
/// nullopt and next_poll_at() names the next event, so a bursty NI sleeps
/// through OFF periods and intra-burst gaps under activity gating.
class Burst_source final : public Traffic_source {
public:
    struct Params {
        double on_rate_flits_per_cycle = 0.5;
        double p_on_to_off = 0.05; ///< alpha
        double p_off_to_on = 0.05; ///< beta
        std::uint32_t packet_size_flits = 4;
        Traffic_class cls = Traffic_class::request;
        std::uint64_t seed = 1;
    };

    Burst_source(Core_id self, Params p,
                 std::shared_ptr<const Dest_pattern> pattern);

    [[nodiscard]] std::optional<Packet_desc> poll(Cycle now) override;
    [[nodiscard]] Cycle next_poll_at(Cycle now) const override;

private:
    /// First cycle >= base (exclusive of earlier ones) at which a Bernoulli
    /// stream with success probability p succeeds; invalid_cycle when p<=0.
    [[nodiscard]] Cycle draw_event_at(Cycle base, double p);

    Core_id self_;
    Params p_;
    std::shared_ptr<const Dest_pattern> pattern_;
    Rng rng_;
    double p_packet_ = 0.0;
    bool on_ = false;
    bool armed_ = false;
    Cycle on_at_ = invalid_cycle;     ///< OFF -> ON transition cycle
    Cycle off_at_ = invalid_cycle;    ///< ON -> OFF transition cycle
    Cycle inject_at_ = invalid_cycle; ///< next injection cycle while ON
};

} // namespace noc
