// Embedded application benchmark graphs.
//
// The classic multimedia graphs (VOPD, MPEG-4 decoder, MWD) are the
// workloads the custom-topology literature the paper summarizes ([9], [11],
// [42]) evaluates on; bandwidth figures are the MB/s values commonly
// reproduced in that literature. The FAUST receiver graph models the
// "receiver matrix ... 10 cores ... aggregate required bandwidth is
// 10.6 Gbits/s" of §5, and the mobile SoC graph is a ~26-core phone
// platform in the spirit of the OMAP/Nomadik/X-Gold examples of §1.
#pragma once

#include "traffic/core_graph.h"

namespace noc {

/// Video Object Plane Decoder: 12 cores, pipeline-shaped traffic.
[[nodiscard]] Core_graph make_vopd_graph();

/// MPEG-4 decoder: 12 cores with a strong SDRAM hotspot.
[[nodiscard]] Core_graph make_mpeg4_graph();

/// Multi-Window Display: 12 cores, pipeline with memory taps.
[[nodiscard]] Core_graph make_mwd_graph();

/// FAUST-style telecom receiver matrix: 10 cores, 10.6 Gb/s aggregate,
/// all flows hard real-time (GT candidates).
[[nodiscard]] Core_graph make_faust_receiver_graph();

/// Heterogeneous mobile-phone SoC: 26 cores (CPU cluster, GPU, video,
/// imaging, display, modem, memories, peripherals), 40 flows.
[[nodiscard]] Core_graph make_mobile_soc_graph();

/// The mobile SoC split over `layers` dies for 3D experiments (cores are
/// assigned layers round-robin by functional group).
[[nodiscard]] Core_graph make_mobile_soc_3d_graph(int layers);

} // namespace noc
