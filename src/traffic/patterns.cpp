#include "traffic/patterns.h"

#include <stdexcept>

namespace noc {

namespace {

[[nodiscard]] bool is_pow2(int n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

class Uniform_pattern final : public Dest_pattern {
public:
    explicit Uniform_pattern(int n) : n_{n}
    {
        if (n < 2) throw std::invalid_argument{"uniform: need >= 2 cores"};
    }
    Core_id pick(Core_id src, Rng& rng) const override
    {
        auto d = static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(n_ - 1)));
        if (d >= src.get()) ++d; // skip self
        return Core_id{d};
    }
    std::string name() const override { return "uniform"; }

private:
    int n_;
};

class Bit_complement_pattern final : public Dest_pattern {
public:
    explicit Bit_complement_pattern(int n) : n_{n}
    {
        if (!is_pow2(n) || n < 2)
            throw std::invalid_argument{"bit_complement: power-of-2 cores"};
    }
    Core_id pick(Core_id src, Rng&) const override
    {
        return Core_id{(~src.get()) &
                       static_cast<std::uint32_t>(n_ - 1)};
    }
    std::string name() const override { return "bit_complement"; }

private:
    int n_;
};

class Transpose_pattern final : public Dest_pattern {
public:
    Transpose_pattern(int w, int h) : w_{w}, h_{h}, fallback_{w * h}
    {
        if (w < 2 || h < 2 || w != h)
            throw std::invalid_argument{"transpose: square grid required"};
    }
    Core_id pick(Core_id src, Rng& rng) const override
    {
        const int x = static_cast<int>(src.get()) % w_;
        const int y = static_cast<int>(src.get()) / w_;
        if (x == y) return fallback_.pick(src, rng);
        return Core_id{static_cast<std::uint32_t>(x * w_ + y)};
    }
    std::string name() const override { return "transpose"; }

private:
    int w_;
    int h_;
    Uniform_pattern fallback_;
};

class Shuffle_pattern final : public Dest_pattern {
public:
    explicit Shuffle_pattern(int n) : n_{n}, fallback_{n}
    {
        if (!is_pow2(n) || n < 4)
            throw std::invalid_argument{"shuffle: power-of-2 cores >= 4"};
        bits_ = 0;
        while ((1 << bits_) < n) ++bits_;
    }
    Core_id pick(Core_id src, Rng& rng) const override
    {
        const auto s = src.get();
        const auto mask = static_cast<std::uint32_t>(n_ - 1);
        const std::uint32_t d =
            ((s << 1) | (s >> (bits_ - 1))) & mask;
        if (d == s) return fallback_.pick(src, rng);
        return Core_id{d};
    }
    std::string name() const override { return "shuffle"; }

private:
    int n_;
    int bits_ = 0;
    Uniform_pattern fallback_;
};

class Neighbor_pattern final : public Dest_pattern {
public:
    Neighbor_pattern(int w, int h) : w_{w}, h_{h}
    {
        if (w < 2 || h < 2)
            throw std::invalid_argument{"neighbor: grid >= 2x2"};
    }
    Core_id pick(Core_id src, Rng& rng) const override
    {
        const int x = static_cast<int>(src.get()) % w_;
        const int y = static_cast<int>(src.get()) / w_;
        int nx[4];
        int ny[4];
        int count = 0;
        if (x > 0) { nx[count] = x - 1; ny[count++] = y; }
        if (x + 1 < w_) { nx[count] = x + 1; ny[count++] = y; }
        if (y > 0) { nx[count] = x; ny[count++] = y - 1; }
        if (y + 1 < h_) { nx[count] = x; ny[count++] = y + 1; }
        const auto pick = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(count)));
        return Core_id{static_cast<std::uint32_t>(ny[pick] * w_ + nx[pick])};
    }
    std::string name() const override { return "neighbor"; }

private:
    int w_;
    int h_;
};

class Hotspot_pattern final : public Dest_pattern {
public:
    Hotspot_pattern(int n, std::vector<Core_id> hotspots, double fraction)
        : hotspots_{std::move(hotspots)},
          fraction_{fraction},
          fallback_{n}
    {
        if (hotspots_.empty())
            throw std::invalid_argument{"hotspot: no hotspots"};
        if (fraction < 0.0 || fraction > 1.0)
            throw std::invalid_argument{"hotspot: bad fraction"};
    }
    Core_id pick(Core_id src, Rng& rng) const override
    {
        if (rng.next_bool(fraction_)) {
            const Core_id d = hotspots_[static_cast<std::size_t>(
                rng.next_below(hotspots_.size()))];
            if (d != src) return d;
        }
        return fallback_.pick(src, rng);
    }
    std::string name() const override { return "hotspot"; }

private:
    std::vector<Core_id> hotspots_;
    double fraction_;
    Uniform_pattern fallback_;
};

class Tornado_pattern final : public Dest_pattern {
public:
    Tornado_pattern(int w, int h) : w_{w}, h_{h}, fallback_{w * h}
    {
        if (w < 3 || h < 1) throw std::invalid_argument{"tornado: width>=3"};
    }
    Core_id pick(Core_id src, Rng& rng) const override
    {
        const int x = static_cast<int>(src.get()) % w_;
        const int y = static_cast<int>(src.get()) / w_;
        const int dx = (x + (w_ + 1) / 2 - 1) % w_;
        if (dx == x) return fallback_.pick(src, rng);
        return Core_id{static_cast<std::uint32_t>(y * w_ + dx)};
    }
    std::string name() const override { return "tornado"; }

private:
    int w_;
    int h_;
    Uniform_pattern fallback_;
};

} // namespace

std::unique_ptr<Dest_pattern> make_uniform_pattern(int core_count)
{
    return std::make_unique<Uniform_pattern>(core_count);
}

std::unique_ptr<Dest_pattern> make_bit_complement_pattern(int core_count)
{
    return std::make_unique<Bit_complement_pattern>(core_count);
}

std::unique_ptr<Dest_pattern> make_transpose_pattern(int width, int height)
{
    return std::make_unique<Transpose_pattern>(width, height);
}

std::unique_ptr<Dest_pattern> make_shuffle_pattern(int core_count)
{
    return std::make_unique<Shuffle_pattern>(core_count);
}

std::unique_ptr<Dest_pattern> make_neighbor_pattern(int width, int height)
{
    return std::make_unique<Neighbor_pattern>(width, height);
}

std::unique_ptr<Dest_pattern> make_hotspot_pattern(
    int core_count, std::vector<Core_id> hotspots, double hot_fraction)
{
    return std::make_unique<Hotspot_pattern>(core_count, std::move(hotspots),
                                             hot_fraction);
}

std::unique_ptr<Dest_pattern> make_tornado_pattern(int width, int height)
{
    return std::make_unique<Tornado_pattern>(width, height);
}

} // namespace noc
