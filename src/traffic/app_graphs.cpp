#include "traffic/app_graphs.h"

#include <stdexcept>

namespace noc {

namespace {

/// Convenience: add a flow by core names.
void flow(Core_graph& g, const std::string& src, const std::string& dst,
          double mbps, double latency_ns = 0.0, bool critical = false,
          std::uint32_t packet_bytes = 64)
{
    Flow_spec f;
    f.src = g.core_index(src);
    f.dst = g.core_index(dst);
    f.bandwidth_mbps = mbps;
    f.max_latency_ns = latency_ns;
    f.is_critical = critical;
    f.packet_bytes = packet_bytes;
    g.add_flow(f);
}

void core(Core_graph& g, const std::string& name, double area_mm2,
          bool is_memory = false, int layer = 0)
{
    Core_spec c;
    c.name = name;
    c.area_mm2 = area_mm2;
    c.is_memory = is_memory;
    c.layer = Layer_id{static_cast<std::uint16_t>(layer)};
    g.add_core(std::move(c));
}

} // namespace

Core_graph make_vopd_graph()
{
    Core_graph g{"vopd"};
    core(g, "vld", 0.5);
    core(g, "run_le_dec", 0.4);
    core(g, "inv_scan", 0.4);
    core(g, "acdc_pred", 0.6);
    core(g, "stripe_mem", 1.2, true);
    core(g, "iquant", 0.5);
    core(g, "idct", 0.9);
    core(g, "upsamp", 0.6);
    core(g, "vop_rec", 0.8);
    core(g, "pad", 0.4);
    core(g, "vop_mem", 1.5, true);
    core(g, "arm", 1.0);

    flow(g, "vld", "run_le_dec", 70);
    flow(g, "run_le_dec", "inv_scan", 362);
    flow(g, "inv_scan", "acdc_pred", 362);
    flow(g, "acdc_pred", "stripe_mem", 362);
    flow(g, "stripe_mem", "iquant", 362);
    flow(g, "iquant", "idct", 357);
    flow(g, "idct", "upsamp", 353);
    flow(g, "upsamp", "vop_rec", 300);
    flow(g, "vop_rec", "pad", 313);
    flow(g, "pad", "vop_mem", 313);
    flow(g, "vop_mem", "pad", 94);
    flow(g, "arm", "idct", 16);
    flow(g, "idct", "arm", 16);
    flow(g, "arm", "vop_mem", 16);

    g.validate();
    return g;
}

Core_graph make_mpeg4_graph()
{
    Core_graph g{"mpeg4"};
    core(g, "vu", 1.2);
    core(g, "au", 0.8);
    core(g, "med_cpu", 1.5);
    core(g, "sdram", 2.5, true);
    core(g, "sram1", 1.2, true);
    core(g, "sram2", 1.2, true);
    core(g, "rast", 0.9);
    core(g, "idct_etc", 1.0);
    core(g, "adsp", 1.1);
    core(g, "up_samp", 0.6);
    core(g, "bab", 0.5);
    core(g, "risc", 1.0);

    // SDRAM is the hotspot: most cores stream through it.
    flow(g, "vu", "sdram", 190);
    flow(g, "au", "sdram", 0.5);
    flow(g, "med_cpu", "sdram", 600);
    flow(g, "sdram", "med_cpu", 40);
    flow(g, "rast", "sdram", 640);
    flow(g, "sdram", "rast", 250);
    flow(g, "idct_etc", "sdram", 250);
    flow(g, "up_samp", "sdram", 173);
    flow(g, "sdram", "up_samp", 500);
    flow(g, "bab", "sdram", 32);
    flow(g, "risc", "sdram", 500);
    flow(g, "sdram", "risc", 250);
    flow(g, "au", "sram1", 60);
    flow(g, "sram1", "au", 40);
    flow(g, "adsp", "sram2", 200);
    flow(g, "sram2", "adsp", 100);
    flow(g, "med_cpu", "sram1", 40);
    flow(g, "risc", "sram2", 100);
    flow(g, "vu", "risc", 60);

    g.validate();
    return g;
}

Core_graph make_mwd_graph()
{
    Core_graph g{"mwd"};
    core(g, "in", 0.5);
    core(g, "nr", 0.7);
    core(g, "mem1", 1.2, true);
    core(g, "vs", 0.7);
    core(g, "hs", 0.7);
    core(g, "mem2", 1.2, true);
    core(g, "hvs", 0.8);
    core(g, "jug1", 0.6);
    core(g, "mem3", 1.2, true);
    core(g, "jug2", 0.6);
    core(g, "se", 0.7);
    core(g, "blend", 0.8);

    flow(g, "in", "nr", 64);
    flow(g, "in", "hs", 128);
    flow(g, "nr", "mem1", 64);
    flow(g, "nr", "vs", 96);
    flow(g, "mem1", "hvs", 96);
    flow(g, "vs", "mem2", 96);
    flow(g, "hs", "jug1", 96);
    flow(g, "mem2", "hvs", 96);
    flow(g, "hvs", "jug2", 96);
    flow(g, "jug1", "mem3", 96);
    flow(g, "jug2", "mem3", 96);
    flow(g, "mem3", "se", 64);
    flow(g, "se", "blend", 16);
    flow(g, "jug1", "blend", 16);

    g.validate();
    return g;
}

Core_graph make_faust_receiver_graph()
{
    Core_graph g{"faust_rx"};
    // Telecom receiver chain; every flow is hard real-time. Aggregate
    // bandwidth = 10.6 Gb/s = 1325 MB/s (§5: "the aggregate required
    // bandwidth is 10.6 Gbits/s to maintain real time communication").
    core(g, "ofdm_demod", 1.4);
    core(g, "chan_est", 1.0);
    core(g, "equalizer", 1.1);
    core(g, "demapper", 0.8);
    core(g, "deintlv", 0.7);
    core(g, "turbo_dec", 1.8);
    core(g, "crc_check", 0.4);
    core(g, "rx_mem1", 1.2, true);
    core(g, "rx_mem2", 1.2, true);
    core(g, "mac_if", 0.9);

    // MB/s values summing to 1325 (= 10.6 Gb/s).
    flow(g, "ofdm_demod", "rx_mem1", 240, 800, true);
    flow(g, "rx_mem1", "chan_est", 120, 800, true);
    flow(g, "rx_mem1", "equalizer", 120, 800, true);
    flow(g, "chan_est", "equalizer", 110, 800, true);
    flow(g, "equalizer", "demapper", 170, 600, true);
    flow(g, "demapper", "deintlv", 130, 600, true);
    flow(g, "deintlv", "rx_mem2", 110, 600, true);
    flow(g, "rx_mem2", "turbo_dec", 110, 400, true);
    flow(g, "turbo_dec", "rx_mem2", 90, 400, true);
    flow(g, "turbo_dec", "crc_check", 50, 400, true);
    flow(g, "crc_check", "mac_if", 40, 400, true);
    flow(g, "mac_if", "ofdm_demod", 35, 1000, true);

    g.validate();
    if (g.total_bandwidth_mbps() != 1325.0)
        throw std::logic_error{"faust graph must total 10.6 Gb/s"};
    return g;
}

namespace {

Core_graph build_mobile_soc(int layers)
{
    Core_graph g{layers > 1 ? "mobile_soc_3d" : "mobile_soc"};
    const auto ly = [&](int group) { return layers > 1 ? group % layers : 0; };

    // Compute cluster.
    core(g, "cpu0", 2.0, false, ly(0));
    core(g, "cpu1", 2.0, false, ly(0));
    core(g, "cpu2", 2.0, false, ly(0));
    core(g, "cpu3", 2.0, false, ly(0));
    core(g, "l2_cache", 3.0, true, ly(0));
    // Graphics / display.
    core(g, "gpu", 4.0, false, ly(1));
    core(g, "display", 1.0, false, ly(1));
    core(g, "compositor", 0.8, false, ly(1));
    // Video pipeline.
    core(g, "vid_dec", 1.5, false, ly(2));
    core(g, "vid_enc", 1.5, false, ly(2));
    // Imaging.
    core(g, "isp", 1.8, false, ly(2));
    core(g, "cam_if", 0.5, false, ly(2));
    core(g, "jpeg", 0.7, false, ly(2));
    // Modem / radio.
    core(g, "modem_dsp", 2.2, false, ly(3));
    core(g, "modem_mac", 1.0, false, ly(3));
    core(g, "rf_if", 0.5, false, ly(3));
    // Audio.
    core(g, "audio_dsp", 0.9, false, ly(3));
    // Memory system.
    core(g, "dram_ctl0", 1.6, true, ly(0));
    core(g, "dram_ctl1", 1.6, true, ly(1));
    core(g, "ocm_sram", 1.2, true, ly(2));
    core(g, "boot_rom", 0.4, true, ly(3));
    // Infrastructure.
    core(g, "dma0", 0.6, false, ly(0));
    core(g, "dma1", 0.6, false, ly(1));
    core(g, "crypto", 0.8, false, ly(3));
    core(g, "usb", 0.5, false, ly(3));
    core(g, "sdio", 0.4, false, ly(3));

    // Bandwidths are budgeted so no single NI port exceeds ~55% of a
    // 32-bit 1 GHz link (4 GB/s): the hottest ports are the L2 (CPU
    // requests + refills) and the two DRAM controllers.
    // CPU cluster <-> memory hierarchy.
    flow(g, "cpu0", "l2_cache", 350, 150);
    flow(g, "cpu1", "l2_cache", 350, 150);
    flow(g, "cpu2", "l2_cache", 350, 150);
    flow(g, "cpu3", "l2_cache", 350, 150);
    flow(g, "l2_cache", "dram_ctl0", 800, 300);
    flow(g, "dram_ctl0", "l2_cache", 800, 300);
    // GPU streams.
    flow(g, "gpu", "dram_ctl1", 1100, 400);
    flow(g, "dram_ctl1", "gpu", 1200, 400);
    flow(g, "gpu", "compositor", 400);
    // Display path (real-time).
    flow(g, "compositor", "display", 620, 600, true);
    flow(g, "dram_ctl1", "display", 800, 600, true);
    // Video decode/encode.
    flow(g, "vid_dec", "dram_ctl0", 400, 500);
    flow(g, "dram_ctl0", "vid_dec", 350, 500);
    flow(g, "vid_enc", "dram_ctl0", 350, 500);
    flow(g, "dram_ctl0", "vid_enc", 250, 500);
    flow(g, "vid_dec", "compositor", 300);
    // Imaging pipeline.
    flow(g, "cam_if", "isp", 900, 300, true);
    flow(g, "isp", "dram_ctl1", 500, 500);
    flow(g, "isp", "jpeg", 220);
    flow(g, "jpeg", "dram_ctl1", 100);
    flow(g, "isp", "vid_enc", 350);
    // Modem.
    flow(g, "rf_if", "modem_dsp", 350, 200, true);
    flow(g, "modem_dsp", "rf_if", 300, 200, true);
    flow(g, "modem_dsp", "modem_mac", 250, 300);
    flow(g, "modem_mac", "ocm_sram", 180);
    flow(g, "ocm_sram", "modem_mac", 160);
    flow(g, "modem_mac", "dram_ctl0", 120);
    // Audio (low bandwidth, tight latency).
    flow(g, "audio_dsp", "ocm_sram", 25, 150, true);
    flow(g, "ocm_sram", "audio_dsp", 25, 150, true);
    // DMA and peripherals.
    flow(g, "dma0", "dram_ctl0", 250);
    flow(g, "dma0", "ocm_sram", 150);
    flow(g, "dma1", "dram_ctl1", 250);
    flow(g, "usb", "dram_ctl1", 200);
    flow(g, "sdio", "dram_ctl0", 80);
    flow(g, "crypto", "dram_ctl0", 150);
    flow(g, "dram_ctl0", "crypto", 150);
    flow(g, "cpu0", "boot_rom", 20);
    flow(g, "cpu0", "modem_mac", 40);
    flow(g, "cpu1", "gpu", 60);

    g.validate();
    return g;
}

} // namespace

Core_graph make_mobile_soc_graph()
{
    return build_mobile_soc(1);
}

Core_graph make_mobile_soc_3d_graph(int layers)
{
    if (layers < 2)
        throw std::invalid_argument{"make_mobile_soc_3d_graph: layers >= 2"};
    return build_mobile_soc(layers);
}

} // namespace noc
