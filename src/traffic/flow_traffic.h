// Flow-driven traffic: drives a simulated NoC with the bandwidths of an
// application core graph (used to validate synthesized designs, §6: the
// generated "simulation models with traffic generators ... validate the
// run-time behavior of the system").
#pragma once

#include "arch/params.h"
#include "arch/traffic_source.h"
#include "common/rng.h"
#include "traffic/core_graph.h"

#include <deque>
#include <vector>

namespace noc {

/// Converts MB/s at a clock and flit width into flits/cycle.
[[nodiscard]] double flits_per_cycle_for(double bandwidth_mbps,
                                         double clock_ghz,
                                         int flit_width_bits,
                                         std::uint32_t packet_bytes,
                                         std::uint32_t* out_flits_per_packet =
                                             nullptr);

/// Injects every flow of `graph` that starts at `self`. Each flow is an
/// independent process; `bandwidth_scale` uniformly scales offered load
/// (load sweeps), `jitter` selects periodic (false) vs Bernoulli (true)
/// injection.
///
/// Event-driven like Bernoulli_source (traffic/synthetic.h): instead of a
/// per-cycle draw per flow, each flow's next injection cycle is computed
/// ahead of time — a geometric gap draw in jitter mode (the identical
/// stochastic process: a Bernoulli trial per cycle IS a geometric gap), and
/// the exact same accumulator stepping in periodic mode (pre-run to the
/// next crossing, so the FP stream is bit-identical to per-cycle stepping).
/// Between events poll() is a side-effect-free nullopt and next_poll_at()
/// names the earliest upcoming event, so NIs driven by application graphs
/// sleep through inter-injection gaps under activity gating.
class Flow_source final : public Traffic_source {
public:
    struct Params {
        double clock_ghz = 1.0;
        int flit_width_bits = 32;
        double bandwidth_scale = 1.0;
        bool jitter = true;
        /// Map critical flows to GT connections (ids assigned = flow id).
        bool critical_as_gt = false;
        std::uint64_t seed = 1;
    };

    Flow_source(Core_id self, const Core_graph& graph, Params p);

    [[nodiscard]] std::optional<Packet_desc> poll(Cycle now) override;
    [[nodiscard]] Cycle next_poll_at(Cycle now) const override;

private:
    struct Flow_state {
        Flow_id id;
        Core_id dst;
        std::uint32_t flits_per_packet;
        double packets_per_cycle;
        double accumulator = 0.0; // periodic mode
        bool gt = false;
        Cycle fire_at = invalid_cycle; ///< next injection event
    };

    /// Draw/advance flow `f`'s next injection cycle, first trial at `from`.
    void schedule(Flow_state& f, Cycle from);

    std::vector<Flow_state> flows_;
    std::deque<Packet_desc> backlog_;
    Params p_;
    Rng rng_;
    bool armed_ = false; ///< first poll seeds every flow's event
};

} // namespace noc
