// Synthetic destination patterns — the standard suite used to characterize
// interconnects (uniform random, transpose, bit complement, shuffle,
// neighbor, hotspot, tornado).
#pragma once

#include "common/rng.h"
#include "common/types.h"

#include <memory>
#include <string>
#include <vector>

namespace noc {

/// Picks a destination for each generated packet. Stateless except for RNG
/// passed by the caller, so one instance can be shared across sources.
class Dest_pattern {
public:
    virtual ~Dest_pattern() = default;
    /// Never returns `src` itself.
    [[nodiscard]] virtual Core_id pick(Core_id src, Rng& rng) const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniformly random over all other cores.
[[nodiscard]] std::unique_ptr<Dest_pattern> make_uniform_pattern(
    int core_count);

/// Bit-complement: dst = ~src (mod core_count, which must be a power of 2).
[[nodiscard]] std::unique_ptr<Dest_pattern> make_bit_complement_pattern(
    int core_count);

/// Matrix transpose on a width x height grid of cores: (x,y) -> (y,x).
/// Diagonal cores fall back to uniform.
[[nodiscard]] std::unique_ptr<Dest_pattern> make_transpose_pattern(int width,
                                                                   int height);

/// Perfect shuffle: rotate the core index left by one bit (power of 2).
[[nodiscard]] std::unique_ptr<Dest_pattern> make_shuffle_pattern(
    int core_count);

/// Nearest neighbor on a grid: one of the up-to-4 adjacent cores, uniformly.
[[nodiscard]] std::unique_ptr<Dest_pattern> make_neighbor_pattern(int width,
                                                                  int height);

/// Hotspot: with probability `hot_fraction` target one of `hotspots`
/// (uniformly), otherwise uniform over everyone.
[[nodiscard]] std::unique_ptr<Dest_pattern> make_hotspot_pattern(
    int core_count, std::vector<Core_id> hotspots, double hot_fraction);

/// Tornado on a grid: dst x = x + ceil(width/2) - 1 (mod width), same row.
[[nodiscard]] std::unique_ptr<Dest_pattern> make_tornado_pattern(int width,
                                                                 int height);

} // namespace noc
