#include "traffic/core_graph.h"

#include <algorithm>
#include <stdexcept>

namespace noc {

int Core_graph::add_core(Core_spec spec)
{
    cores_.push_back(std::move(spec));
    return static_cast<int>(cores_.size()) - 1;
}

Flow_id Core_graph::add_flow(Flow_spec spec)
{
    flows_.push_back(spec);
    return Flow_id{static_cast<std::uint32_t>(flows_.size() - 1)};
}

double Core_graph::total_bandwidth_mbps() const
{
    double total = 0.0;
    for (const auto& f : flows_) total += f.bandwidth_mbps;
    return total;
}

std::vector<Flow_id> Core_graph::flows_from(int src) const
{
    std::vector<Flow_id> out;
    for (std::size_t i = 0; i < flows_.size(); ++i)
        if (flows_[i].src == src)
            out.push_back(Flow_id{static_cast<std::uint32_t>(i)});
    return out;
}

int Core_graph::core_index(const std::string& name) const
{
    for (std::size_t i = 0; i < cores_.size(); ++i)
        if (cores_[i].name == name) return static_cast<int>(i);
    throw std::invalid_argument{"Core_graph: unknown core " + name};
}

int Core_graph::layer_count() const
{
    int layers = 1;
    for (const auto& c : cores_)
        layers = std::max(layers, static_cast<int>(c.layer.get()) + 1);
    return layers;
}

void Core_graph::validate() const
{
    for (const auto& f : flows_) {
        if (f.src < 0 || f.src >= core_count() || f.dst < 0 ||
            f.dst >= core_count())
            throw std::logic_error{"Core_graph: flow endpoint out of range"};
        if (f.src == f.dst)
            throw std::logic_error{"Core_graph: self flow"};
        if (f.bandwidth_mbps <= 0)
            throw std::logic_error{"Core_graph: non-positive bandwidth"};
        if (f.packet_bytes == 0)
            throw std::logic_error{"Core_graph: zero packet size"};
    }
    for (const auto& c : cores_)
        if (c.area_mm2 <= 0)
            throw std::logic_error{"Core_graph: non-positive core area"};
}

} // namespace noc
