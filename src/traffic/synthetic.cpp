#include "traffic/synthetic.h"

#include <stdexcept>

namespace noc {

Bernoulli_source::Bernoulli_source(
    Core_id self, Params p, std::shared_ptr<const Dest_pattern> pattern)
    : self_{self}, p_{p}, pattern_{std::move(pattern)}, rng_{p.seed}
{
    if (!pattern_) throw std::invalid_argument{"Bernoulli_source: pattern"};
    if (p_.flits_per_cycle < 0 || p_.packet_size_flits == 0)
        throw std::invalid_argument{"Bernoulli_source: bad params"};
    p_packet_ =
        p_.flits_per_cycle / static_cast<double>(p_.packet_size_flits);
}

std::optional<Packet_desc> Bernoulli_source::poll(Cycle now)
{
    if (p_packet_ <= 0.0) return std::nullopt;
    if (!armed_) {
        // First poll: the next success is next_geometric failures away,
        // which may be this very cycle (gap 0) — exactly a per-cycle
        // Bernoulli trial stream starting at `now`.
        next_at_ = now + rng_.next_geometric(p_packet_);
        armed_ = true;
    }
    if (now < next_at_) return std::nullopt;
    Packet_desc d;
    d.dst = pattern_->pick(self_, rng_);
    d.size_flits = p_.packet_size_flits;
    d.cls = p_.cls;
    next_at_ = now + 1 + rng_.next_geometric(p_packet_);
    return d;
}

Cycle Bernoulli_source::next_poll_at(Cycle now) const
{
    if (p_packet_ <= 0.0) return invalid_cycle; // zero rate: never again
    if (!armed_) return now + 1;                // must be polled to arm
    return next_at_ > now + 1 ? next_at_ : now + 1;
}

Burst_source::Burst_source(Core_id self, Params p,
                           std::shared_ptr<const Dest_pattern> pattern)
    : self_{self}, p_{p}, pattern_{std::move(pattern)}, rng_{p.seed}
{
    if (!pattern_) throw std::invalid_argument{"Burst_source: pattern"};
    if (p_.on_rate_flits_per_cycle < 0 || p_.packet_size_flits == 0)
        throw std::invalid_argument{"Burst_source: bad params"};
    p_packet_ = p_.on_rate_flits_per_cycle /
                static_cast<double>(p_.packet_size_flits);
}

Cycle Burst_source::draw_event_at(Cycle base, double p)
{
    if (p <= 0.0) return invalid_cycle;
    return base + rng_.next_geometric(p);
}

std::optional<Packet_desc> Burst_source::poll(Cycle now)
{
    if (!armed_) {
        // First poll: the OFF state's first transition trial happens this
        // very cycle (a geometric gap of 0 turns the source ON at `now`).
        armed_ = true;
        on_at_ = draw_event_at(now, p_.p_off_to_on);
    }
    if (!on_) {
        if (now < on_at_) return std::nullopt;
        // Turn ON at `now`. The first ON->OFF trial is next cycle; the
        // first injection trial is this cycle (matching the per-cycle
        // formulation: transition draw first, then injection draw).
        on_ = true;
        off_at_ = draw_event_at(now + 1, p_.p_on_to_off);
        inject_at_ = draw_event_at(now, p_packet_);
    } else if (now >= off_at_) {
        // The dwell ends this cycle: no injection, back to OFF.
        on_ = false;
        on_at_ = draw_event_at(now + 1, p_.p_off_to_on);
        return std::nullopt;
    }
    if (now < inject_at_) return std::nullopt;
    Packet_desc d;
    d.dst = pattern_->pick(self_, rng_);
    d.size_flits = p_.packet_size_flits;
    d.cls = p_.cls;
    inject_at_ = draw_event_at(now + 1, p_packet_);
    return d;
}

Cycle Burst_source::next_poll_at(Cycle now) const
{
    if (!armed_) return now + 1; // must be polled once to seed the events
    Cycle next = invalid_cycle;
    if (!on_) {
        next = on_at_;
    } else {
        next = off_at_ < inject_at_ ? off_at_ : inject_at_;
    }
    if (next == invalid_cycle) return invalid_cycle; // silent forever
    return next > now + 1 ? next : now + 1;
}

} // namespace noc
