#include "traffic/synthetic.h"

#include <stdexcept>

namespace noc {

Bernoulli_source::Bernoulli_source(
    Core_id self, Params p, std::shared_ptr<const Dest_pattern> pattern)
    : self_{self}, p_{p}, pattern_{std::move(pattern)}, rng_{p.seed}
{
    if (!pattern_) throw std::invalid_argument{"Bernoulli_source: pattern"};
    if (p_.flits_per_cycle < 0 || p_.packet_size_flits == 0)
        throw std::invalid_argument{"Bernoulli_source: bad params"};
    p_packet_ =
        p_.flits_per_cycle / static_cast<double>(p_.packet_size_flits);
}

std::optional<Packet_desc> Bernoulli_source::poll(Cycle now)
{
    if (p_packet_ <= 0.0) return std::nullopt;
    if (!armed_) {
        // First poll: the next success is next_geometric failures away,
        // which may be this very cycle (gap 0) — exactly a per-cycle
        // Bernoulli trial stream starting at `now`.
        next_at_ = now + rng_.next_geometric(p_packet_);
        armed_ = true;
    }
    if (now < next_at_) return std::nullopt;
    Packet_desc d;
    d.dst = pattern_->pick(self_, rng_);
    d.size_flits = p_.packet_size_flits;
    d.cls = p_.cls;
    next_at_ = now + 1 + rng_.next_geometric(p_packet_);
    return d;
}

Cycle Bernoulli_source::next_poll_at(Cycle now) const
{
    if (p_packet_ <= 0.0) return invalid_cycle; // zero rate: never again
    if (!armed_) return now + 1;                // must be polled to arm
    return next_at_ > now + 1 ? next_at_ : now + 1;
}

Burst_source::Burst_source(Core_id self, Params p,
                           std::shared_ptr<const Dest_pattern> pattern)
    : self_{self}, p_{p}, pattern_{std::move(pattern)}, rng_{p.seed}
{
    if (!pattern_) throw std::invalid_argument{"Burst_source: pattern"};
}

std::optional<Packet_desc> Burst_source::poll(Cycle)
{
    if (on_) {
        if (rng_.next_bool(p_.p_on_to_off)) on_ = false;
    } else {
        if (rng_.next_bool(p_.p_off_to_on)) on_ = true;
    }
    if (!on_) return std::nullopt;
    const double p_packet = p_.on_rate_flits_per_cycle /
                            static_cast<double>(p_.packet_size_flits);
    if (!rng_.next_bool(p_packet)) return std::nullopt;
    Packet_desc d;
    d.dst = pattern_->pick(self_, rng_);
    d.size_flits = p_.packet_size_flits;
    d.cls = p_.cls;
    return d;
}

} // namespace noc
