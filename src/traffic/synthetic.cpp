#include "traffic/synthetic.h"

#include <stdexcept>

namespace noc {

Bernoulli_source::Bernoulli_source(
    Core_id self, Params p, std::shared_ptr<const Dest_pattern> pattern)
    : self_{self}, p_{p}, pattern_{std::move(pattern)}, rng_{p.seed}
{
    if (!pattern_) throw std::invalid_argument{"Bernoulli_source: pattern"};
    if (p_.flits_per_cycle < 0 || p_.packet_size_flits == 0)
        throw std::invalid_argument{"Bernoulli_source: bad params"};
}

std::optional<Packet_desc> Bernoulli_source::poll(Cycle)
{
    const double p_packet =
        p_.flits_per_cycle / static_cast<double>(p_.packet_size_flits);
    if (!rng_.next_bool(p_packet)) return std::nullopt;
    Packet_desc d;
    d.dst = pattern_->pick(self_, rng_);
    d.size_flits = p_.packet_size_flits;
    d.cls = p_.cls;
    return d;
}

Burst_source::Burst_source(Core_id self, Params p,
                           std::shared_ptr<const Dest_pattern> pattern)
    : self_{self}, p_{p}, pattern_{std::move(pattern)}, rng_{p.seed}
{
    if (!pattern_) throw std::invalid_argument{"Burst_source: pattern"};
}

std::optional<Packet_desc> Burst_source::poll(Cycle)
{
    if (on_) {
        if (rng_.next_bool(p_.p_on_to_off)) on_ = false;
    } else {
        if (rng_.next_bool(p_.p_off_to_on)) on_ = true;
    }
    if (!on_) return std::nullopt;
    const double p_packet = p_.on_rate_flits_per_cycle /
                            static_cast<double>(p_.packet_size_flits);
    if (!rng_.next_bool(p_packet)) return std::nullopt;
    Packet_desc d;
    d.dst = pattern_->pick(self_, rng_);
    d.size_flits = p_.packet_size_flits;
    d.cls = p_.cls;
    return d;
}

} // namespace noc
