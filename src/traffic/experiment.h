// Experiment harness shared by examples, tests and benches: build a network,
// drive it with synthetic or application traffic, and report one load point
// (latency / accepted throughput) with the standard warmup-measure-drain
// protocol.
#pragma once

#include "arch/noc_system.h"
#include "traffic/core_graph.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <functional>
#include <memory>

namespace noc {

struct Load_point {
    double offered_flits_per_node_cycle = 0.0;
    double accepted_flits_per_node_cycle = 0.0;
    double avg_packet_latency = 0.0; ///< cycles, creation -> delivery
    double avg_network_latency = 0.0;
    double p99_estimate = 0.0; ///< mean + 3 sigma, cheap tail proxy
    double max_latency = 0.0;
    std::uint64_t packets = 0;
    bool drained = true;
};

struct Sweep_config {
    Cycle warmup = 2'000;
    Cycle measure = 10'000;
    Cycle drain_limit = 60'000;
    std::uint32_t packet_size_flits = 4;
    std::uint64_t seed = 42;
    /// Construction options for every system the point builds — kernel
    /// schedule, shard Partition_plan, partial-route policy, pool sizing —
    /// forwarded wholesale to Noc_system (see arch/build_options.h). The
    /// schedule is purely a speed knob: every schedule is bit-identical to
    /// every other (the equivalence suite proves it), so explore sweeps
    /// pick gated for small meshes and sharded for the big ones.
    Build_options build;

    // --- deprecated aliases (this PR only) ---------------------------------
    // The kernel knobs used to be re-declared here; they now live in
    // `build`. A legacy field changed from its default overrides the
    // corresponding `build` field (effective_build() merges them).
    [[deprecated("use build.kernel_mode")]]
    Kernel_mode kernel_mode = Kernel_mode::activity_gated;
    [[deprecated("use build.partition (Partition_plan::contiguous(n))")]]
    std::uint32_t kernel_threads = 1;
    [[deprecated("use build.allow_partial_routes")]]
    bool allow_partial_routes = false;

    // Special members defaulted inside a suppression region: their
    // definitions "use" the deprecated members (default init / copy), and
    // that must not warn in every TU that merely constructs a config.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    Sweep_config() = default;
    Sweep_config(const Sweep_config&) = default;
    Sweep_config(Sweep_config&&) = default;
    Sweep_config& operator=(const Sweep_config&) = default;
    Sweep_config& operator=(Sweep_config&&) = default;
    ~Sweep_config() = default;
#pragma GCC diagnostic pop

    /// `build` with any changed legacy alias folded in — what the run_*
    /// harnesses actually hand to Noc_system.
    [[nodiscard]] Build_options effective_build() const;
};

/// One synthetic load point on a fresh network built from (topology,
/// routes, params): every core gets a Bernoulli source at `rate` with
/// destinations from `pattern_factory()`.
[[nodiscard]] Load_point run_synthetic_load(
    const Topology& topology, const Route_set& routes,
    const Network_params& params, double rate_flits_per_node_cycle,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg);

/// Saturation throughput: binary-search the load at which average latency
/// exceeds `latency_cap` cycles; returns accepted throughput there.
[[nodiscard]] double find_saturation_throughput(
    const Topology& topology, const Route_set& routes,
    const Network_params& params,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg, double latency_cap = 200.0);

/// Drive a network with an application core graph via Flow_source on every
/// core; `bandwidth_scale` scales all flows.
[[nodiscard]] Load_point run_application_load(const Topology& topology,
                                              const Route_set& routes,
                                              const Network_params& params,
                                              const Core_graph& graph,
                                              double bandwidth_scale,
                                              const Sweep_config& cfg);

} // namespace noc
