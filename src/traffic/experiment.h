// Experiment harness shared by examples, tests and benches: build a network,
// drive it with synthetic or application traffic, and report one load point
// (latency / accepted throughput) with the standard warmup-measure-drain
// protocol.
#pragma once

#include "arch/noc_system.h"
#include "traffic/core_graph.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

#include <functional>
#include <memory>
#include <string>

namespace noc {

struct Collective_config; // collective/collective.h

struct Load_point {
    double offered_flits_per_node_cycle = 0.0;
    double accepted_flits_per_node_cycle = 0.0;
    double avg_packet_latency = 0.0; ///< cycles, creation -> delivery
    double avg_network_latency = 0.0;
    double p99_estimate = 0.0; ///< mean + 3 sigma, cheap tail proxy
    double max_latency = 0.0;
    std::uint64_t packets = 0;
    bool drained = true;

    // --- reliability (nonzero only with a Build_options::fault_plan) --------
    std::uint64_t packets_dropped = 0; ///< purged at permanent link failures
    std::uint64_t packets_unreachable = 0; ///< no surviving route
    std::uint64_t corrupted_flits = 0;     ///< transient injections that hit
    std::uint64_t retransmissions = 0;     ///< ACK/NACK go-back-N resends
    std::uint64_t recoveries = 0;          ///< completed online reroutes
    double avg_time_to_recover = 0.0;      ///< cycles, failure -> reroute
    /// Purged packets re-queued by the NI end-to-end replay protocol
    /// (Fault_plan::replay) instead of counting as dropped.
    std::uint64_t packets_replayed = 0;
    /// Reroutes the union deadlock check admitted WITHOUT draining
    /// (Recovery_mode::epoch): time_to_recover == reroute_latency exactly.
    std::uint64_t live_switchovers = 0;
    /// delivered / (delivered + dropped) over the measurement window; 1.0
    /// on a fault-free run, the explore layer's availability dimension.
    double availability = 1.0;
    /// Availability over pairs a surviving route connects: unreachable
    /// packets (no route exists) are excluded from the denominator, so
    /// with replay on this is 1.0 whenever every still-connected pair's
    /// traffic eventually lands.
    double connected_availability = 1.0;

    // --- live saturation early-stop (Sweep_config::early_stop_check) --------
    /// True when the measurement window was cut short because mean packet
    /// latency crossed the early-stop cap and was still rising — the
    /// latency curve went vertical, so finishing the window buys nothing.
    bool early_stopped = false;
    /// Cycles actually measured (== Sweep_config::measure unless
    /// early_stopped) — the cost ledger BENCH_sweep.json reports savings
    /// from.
    Cycle measured_cycles = 0;

    // --- collective completion (Sweep_spec::collectives / src/collective) ---
    /// Cycles from the collective's start (the end of warmup) to the last
    /// participating core's completion. 0 when the point ran no collective
    /// or it never completed.
    Cycle collective_completion_cycles = 0;
    /// True when the point ran a collective and every core finished its
    /// role before the drain budget ran out.
    bool collective_completed = false;
};

struct Sweep_config {
    Cycle warmup = 2'000;
    Cycle measure = 10'000;
    Cycle drain_limit = 60'000;
    std::uint32_t packet_size_flits = 4;
    std::uint64_t seed = 42;
    /// Construction options for every system the point builds — kernel
    /// schedule, shard Partition_plan, partial-route policy, pool sizing —
    /// forwarded wholesale to Noc_system (see arch/build_options.h). The
    /// schedule is purely a speed knob: every schedule is bit-identical to
    /// every other (the equivalence suite proves it), so explore sweeps
    /// pick gated for small meshes and sharded for the big ones. A fault
    /// plan rides in build.fault_plan and surfaces in the Load_point's
    /// reliability fields.
    Build_options build;
    /// Nonzero: cap the drain phase of FAULTED points at this many cycles
    /// instead of drain_limit (fault storms can leave a point legitimately
    /// unable to drain; a sweep worker must not wedge on it — see
    /// Sweep_runner's retry path).
    Cycle fault_drain_cap = 0;

    // --- live saturation early-stop (telemetry tentpole) --------------------
    /// Nonzero: run the measurement window in chunks of this many cycles
    /// and stop the point early when mean packet latency exceeds
    /// early_stop_latency_cap AND rose since the previous check — the
    /// saturated-point signature. The window is then truncated at the stop
    /// cycle (rates use the cycles actually measured) and the Load_point
    /// reports early_stopped. The decision reads only exact-integer-
    /// derived statistics at sequential points, so it is deterministic and
    /// worker-count-invariant; 0 (the default) preserves the old protocol
    /// bit-for-bit.
    Cycle early_stop_check = 0;
    /// Mean-latency cap the early-stop triggers above (same unit as
    /// Sweep_spec::latency_cap; unusable points sit above it by
    /// definition).
    double early_stop_latency_cap = 200.0;

    // --- live telemetry (telemetry/sampler.h) -------------------------------
    /// Nonzero: attach a registry + async sampler to every system this
    /// point builds, sampling each `telemetry_period` cycles. Samples go
    /// to a SIDE stream only — never into the Load_point — so sampled and
    /// unsampled runs produce identical results (CI gates on it).
    Cycle telemetry_period = 0;
    /// When non-empty (and telemetry_period != 0), each point streams its
    /// samples to "<telemetry_dir>/point_<seed>.noct" for live viewing
    /// with tools/noc_top.
    std::string telemetry_dir;
};

/// One synthetic load point on a fresh network built from (topology,
/// routes, params): every core gets a Bernoulli source at `rate` with
/// destinations from `pattern_factory()`.
[[nodiscard]] Load_point run_synthetic_load(
    const Topology& topology, const Route_set& routes,
    const Network_params& params, double rate_flits_per_node_cycle,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg);

/// run_synthetic_load plus one collective operation riding on the
/// background load: the Collective_driver is built before warmup (it
/// installs the destination-set tree routes and the delivery listeners),
/// started at the measurement boundary, and the system is advanced past the
/// drain until the collective completes (or a second drain_limit budget
/// runs out). The Load_point's collective_completion_cycles is the
/// start-to-last-core time — schedule-invariant like every other field.
[[nodiscard]] Load_point run_synthetic_load_with_collective(
    const Topology& topology, const Route_set& routes,
    const Network_params& params, double rate_flits_per_node_cycle,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg, const Collective_config& collective);

/// Saturation throughput: binary-search the load at which average latency
/// exceeds `latency_cap` cycles; returns accepted throughput there.
[[nodiscard]] double find_saturation_throughput(
    const Topology& topology, const Route_set& routes,
    const Network_params& params,
    const std::function<std::shared_ptr<const Dest_pattern>()>&
        pattern_factory,
    const Sweep_config& cfg, double latency_cap = 200.0);

/// Drive a network with an application core graph via Flow_source on every
/// core; `bandwidth_scale` scales all flows.
[[nodiscard]] Load_point run_application_load(const Topology& topology,
                                              const Route_set& routes,
                                              const Network_params& params,
                                              const Core_graph& graph,
                                              double bandwidth_scale,
                                              const Sweep_config& cfg);

} // namespace noc
