// Trace-driven traffic replay.
//
// §6: the flow consumes communication behaviour "obtained by application
// profiling"; a trace is the raw form of that profile. A Trace_source
// replays timestamped packet events for one core, so recorded or
// synthesized traces can drive any simulated NoC deterministically.
#pragma once

#include "arch/traffic_source.h"

#include <string>

#include <vector>

namespace noc {

struct Trace_event {
    Cycle at = 0; ///< earliest injection cycle
    Core_id dst{};
    std::uint32_t size_flits = 1;
    Traffic_class cls = Traffic_class::request;
    Flow_id flow{};
};

/// Replays events in timestamp order (events must be sorted by `at`; the
/// constructor verifies). One event is released per poll at/after its
/// timestamp — back-pressure simply delays the rest of the trace, as it
/// would a real core.
class Trace_source final : public Traffic_source {
public:
    explicit Trace_source(std::vector<Trace_event> events);

    [[nodiscard]] std::optional<Packet_desc> poll(Cycle now) override;

    /// The next event's timestamp; invalid_cycle once the trace is
    /// exhausted (the owning NI may then sleep for good once drained).
    [[nodiscard]] Cycle next_poll_at(Cycle now) const override
    {
        if (done()) return invalid_cycle;
        const Cycle at = events_[next_].at;
        return at > now + 1 ? at : now + 1;
    }

    [[nodiscard]] std::size_t remaining() const
    {
        return events_.size() - next_;
    }
    [[nodiscard]] bool done() const { return next_ == events_.size(); }

private:
    std::vector<Trace_event> events_;
    std::size_t next_ = 0;
};

/// Parse a whitespace-separated trace text: one "cycle src dst size" line
/// per event (comments start with '#'). Returns per-core event lists,
/// indexed by source core. Throws std::invalid_argument on malformed input
/// or out-of-range core ids.
[[nodiscard]] std::vector<std::vector<Trace_event>>
parse_trace(const std::string& text, int core_count);

} // namespace noc
