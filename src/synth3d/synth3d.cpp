#include "synth3d/synth3d.h"

#include "synth/partition.h"
#include "traffic/flow_traffic.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace noc {

int tsvs_per_vertical_link(int flit_width_bits, int serialization,
                           int overhead)
{
    if (flit_width_bits < 1 || serialization < 1 || overhead < 0)
        throw std::invalid_argument{"tsvs_per_vertical_link: bad args"};
    return (flit_width_bits + serialization - 1) / serialization + overhead;
}

namespace {

/// Layer-pure clustering: partition each layer's cores independently and
/// concatenate the cluster ids. Returns (core->cluster, cluster->layer).
struct Layered_clusters {
    std::vector<int> core_cluster;
    std::vector<Layer_id> cluster_layer;
};

Layered_clusters cluster_by_layer(const Core_graph& g, int total_clusters,
                                  int max_cores_per_cluster)
{
    const int layers = g.layer_count();
    std::vector<std::vector<int>> layer_cores(
        static_cast<std::size_t>(layers));
    for (int c = 0; c < g.core_count(); ++c)
        layer_cores[g.core(c).layer.get()].push_back(c);

    // Distribute clusters proportionally (at least one per occupied layer).
    std::vector<int> k_per_layer(static_cast<std::size_t>(layers), 0);
    int assigned = 0;
    for (int l = 0; l < layers; ++l) {
        if (layer_cores[static_cast<std::size_t>(l)].empty()) continue;
        const double share =
            static_cast<double>(
                layer_cores[static_cast<std::size_t>(l)].size()) /
            g.core_count();
        k_per_layer[static_cast<std::size_t>(l)] = std::max(
            1, static_cast<int>(std::round(share * total_clusters)));
        assigned += k_per_layer[static_cast<std::size_t>(l)];
    }
    // Adjust to hit the exact total (prefer trimming/padding big layers).
    while (assigned != total_clusters) {
        int target = -1;
        for (int l = 0; l < layers; ++l) {
            if (layer_cores[static_cast<std::size_t>(l)].empty()) continue;
            if (assigned > total_clusters) {
                if (k_per_layer[static_cast<std::size_t>(l)] > 1 &&
                    (target < 0 ||
                     k_per_layer[static_cast<std::size_t>(l)] >
                         k_per_layer[static_cast<std::size_t>(target)]))
                    target = l;
            } else {
                if (k_per_layer[static_cast<std::size_t>(l)] <
                        static_cast<int>(
                            layer_cores[static_cast<std::size_t>(l)].size()) &&
                    (target < 0 ||
                     k_per_layer[static_cast<std::size_t>(l)] <
                         k_per_layer[static_cast<std::size_t>(target)]))
                    target = l;
            }
        }
        if (target < 0)
            throw std::invalid_argument{
                "cluster_by_layer: cannot distribute clusters over layers"};
        k_per_layer[static_cast<std::size_t>(target)] +=
            assigned > total_clusters ? -1 : 1;
        assigned += assigned > total_clusters ? -1 : 1;
    }

    Layered_clusters out;
    out.core_cluster.assign(static_cast<std::size_t>(g.core_count()), -1);
    int next_cluster = 0;
    for (int l = 0; l < layers; ++l) {
        const auto& cores = layer_cores[static_cast<std::size_t>(l)];
        if (cores.empty()) continue;
        const int k = k_per_layer[static_cast<std::size_t>(l)];

        // Build the layer subgraph (intra-layer flows only) and partition.
        Core_graph sub{"layer" + std::to_string(l)};
        std::map<int, int> to_sub;
        for (const int c : cores) {
            to_sub[c] = sub.add_core(g.core(c));
        }
        for (const auto& f : g.flows()) {
            const auto si = to_sub.find(f.src);
            const auto di = to_sub.find(f.dst);
            if (si == to_sub.end() || di == to_sub.end()) continue;
            Flow_spec fs = f;
            fs.src = si->second;
            fs.dst = di->second;
            sub.add_flow(fs);
        }
        const auto part = partition_cores(sub, k, max_cores_per_cluster);
        for (const int c : cores)
            out.core_cluster[static_cast<std::size_t>(c)] =
                next_cluster + part.core_cluster[static_cast<std::size_t>(
                                   to_sub[c])];
        for (int i = 0; i < k; ++i)
            out.cluster_layer.push_back(
                Layer_id{static_cast<std::uint16_t>(l)});
        next_cluster += k;
    }
    return out;
}

} // namespace

Synthesis3d_result synthesize_3d(const Synthesis3d_spec& spec)
{
    spec.base.validate();
    if (spec.vertical_serialization < 1)
        throw std::invalid_argument{"synthesize_3d: bad serialization"};
    const Core_graph& g = spec.base.graph;
    if (g.layer_count() < 2)
        throw std::invalid_argument{
            "synthesize_3d: graph is single-layer; use the 2D flow"};

    Synthesis3d_result result;
    const int upper = spec.base.max_switches == 0
                          ? g.core_count()
                          : spec.base.max_switches;
    const int lower = std::max(spec.base.min_switches, g.layer_count());
    const int reserve = std::min(3, spec.base.max_switch_radix - 1);
    const int max_cores = spec.base.max_switch_radix - reserve;

    for (const auto& op : spec.base.operating_points) {
        for (int k = lower; k <= upper; ++k) {
            Layered_clusters clusters;
            try {
                clusters = cluster_by_layer(g, k, max_cores);
            } catch (const std::exception& e) {
                result.rejections.push_back(
                    "k=" + std::to_string(k) + ": " + e.what());
                continue;
            }
            Synthesis_spec sub = spec.base;
            sub.operating_points = {op};
            sub.fixed_core_cluster = &clusters.core_cluster;
            // 3D stacks get per-layer floorplans; the single-die shelf
            // packer does not apply. Use distance-class link lengths.
            sub.use_floorplan = false;
            std::string reason;
            auto dp = synthesize_one(sub, op, k, &reason);
            if (!dp) {
                result.rejections.push_back(std::move(reason));
                continue;
            }

            Design_point_3d d3;
            d3.base = std::move(*dp);
            const int s = spec.vertical_serialization;
            for (int li = 0; li < d3.base.topology.link_count(); ++li) {
                const Link_id lid{static_cast<std::uint32_t>(li)};
                const auto& l = d3.base.topology.link(lid);
                const Layer_id from_layer =
                    clusters.cluster_layer[l.from.get()];
                const Layer_id to_layer = clusters.cluster_layer[l.to.get()];
                if (from_layer == to_layer) continue;
                const int crossings = std::abs(
                    static_cast<int>(from_layer.get()) -
                    static_cast<int>(to_layer.get()));
                Vertical_link_info v;
                v.link = lid;
                v.from_layer = from_layer;
                v.to_layer = to_layer;
                v.serialization = s;
                v.tsv_count = crossings *
                              tsvs_per_vertical_link(op.flit_width_bits, s,
                                                     spec.tsv_overhead_per_link);
                v.capacity_flits_per_cycle = 1.0 / s;
                d3.total_tsvs += v.tsv_count;
                const double util =
                    d3.base.link_load[static_cast<std::size_t>(li)] /
                    v.capacity_flits_per_cycle;
                d3.max_vertical_utilization =
                    std::max(d3.max_vertical_utilization, util);
                d3.vertical_links.push_back(v);
            }
            if (d3.max_vertical_utilization >
                spec.base.link_utilization_cap) {
                result.rejections.push_back(
                    "k=" + std::to_string(k) +
                    ": serialized vertical links oversubscribed (util " +
                    std::to_string(d3.max_vertical_utilization) + ")");
                continue;
            }
            d3.stack_yield = std::pow(spec.tsv_yield, d3.total_tsvs);

            // Serialization latency: each flit spends s cycles instead of 1
            // on a vertical link; fold the penalty into the flow latencies
            // and the bandwidth-weighted design latency.
            if (s > 1) {
                double weighted_penalty = 0.0;
                double weight_sum = 0.0;
                for (int fi = 0; fi < g.flow_count(); ++fi) {
                    const auto& f = g.flow(
                        Flow_id{static_cast<std::uint32_t>(fi)});
                    const Route& r = d3.base.routes.at(
                        Core_id{static_cast<std::uint32_t>(f.src)},
                        Core_id{static_cast<std::uint32_t>(f.dst)});
                    Switch_id sw = d3.base.topology.core_switch(
                        Core_id{static_cast<std::uint32_t>(f.src)});
                    int vertical_hops = 0;
                    for (const Hop& h : r) {
                        const Link_id l =
                            d3.base.topology.link_of_output_port(
                                sw, Port_id{h.out_port});
                        if (!l.is_valid()) break;
                        const auto& link = d3.base.topology.link(l);
                        if (clusters.cluster_layer[link.from.get()] !=
                            clusters.cluster_layer[link.to.get()])
                            ++vertical_hops;
                        sw = link.to;
                    }
                    std::uint32_t fpp = 0;
                    flits_per_cycle_for(f.bandwidth_mbps, op.clock_ghz,
                                        op.flit_width_bits, f.packet_bytes,
                                        &fpp);
                    const double penalty_ns =
                        vertical_hops * (s - 1) * static_cast<double>(fpp) /
                        op.clock_ghz;
                    d3.base.flow_latency_ns[static_cast<std::size_t>(fi)] +=
                        penalty_ns;
                    weighted_penalty += penalty_ns * f.bandwidth_mbps;
                    weight_sum += f.bandwidth_mbps;
                }
                if (weight_sum > 0)
                    d3.base.metrics.latency_ns +=
                        weighted_penalty / weight_sum;
            }

            // 2D-only test mode (§4.4): every intra-layer flow must route
            // without touching another layer.
            for (const auto& f : g.flows()) {
                if (g.core(f.src).layer != g.core(f.dst).layer) continue;
                const Route& r = d3.base.routes.at(
                    Core_id{static_cast<std::uint32_t>(f.src)},
                    Core_id{static_cast<std::uint32_t>(f.dst)});
                Switch_id sw = d3.base.topology.core_switch(
                    Core_id{static_cast<std::uint32_t>(f.src)});
                for (const Hop& h : r) {
                    const Link_id l = d3.base.topology.link_of_output_port(
                        sw, Port_id{h.out_port});
                    if (!l.is_valid()) break;
                    if (clusters.cluster_layer[d3.base.topology.link(l)
                                                   .to.get()] !=
                        g.core(f.src).layer)
                        d3.two_d_test_mode_ok = false;
                    sw = d3.base.topology.link(l).to;
                }
            }
            result.designs.push_back(std::move(d3));
        }
    }
    return result;
}

} // namespace noc
