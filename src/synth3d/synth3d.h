// 3D-stacked NoC synthesis extensions (§4.4, Fig. 3; SunFloor 3D [12]).
//
// "NoCs are an ideal fit to 3D design paradigms... area and yield have been
// optimized by suitably serializing vertical links, to minimize the number
// of required vertical vias. Verification has been automated by leveraging
// built-in link testing facilities. 3D system integration has also been
// made easier by the flexibility of NoC routing tables, easily enabling
// either 2D-only operation (in testing mode) or 3D-capable communication."
//
// This module takes a layered core graph, runs the 2D synthesis engine with
// layer-aware clustering (a core's switch lives on the core's layer), then
// post-processes every vertical link: TSV count, serialization factor (the
// width/serialization trade that divides via count at the cost of extra
// cycles and reduced capacity), per-layer floorplans, and the 2D-only test
// mode check (every layer's subnetwork must remain connected for the flows
// that stay inside the layer).
#pragma once

#include "synth/topology_synth.h"

#include <vector>

namespace noc {

struct Synthesis3d_spec {
    Synthesis_spec base; ///< graph must carry per-core layer assignments
    /// Serialize vertical links by this factor: a W-bit logical link uses
    /// W/s TSVs and s cycles per flit (1 = full-width).
    int vertical_serialization = 1;
    /// TSV pitch overhead: extra signal vias per vertical link (clock,
    /// flow control, test access).
    int tsv_overhead_per_link = 6;
    /// Yield model: probability one TSV is good.
    double tsv_yield = 0.999;
};

struct Vertical_link_info {
    Link_id link;
    Layer_id from_layer;
    Layer_id to_layer;
    int tsv_count = 0;
    int serialization = 1;
    double capacity_flits_per_cycle = 1.0;
};

struct Design_point_3d {
    Design_point base;
    std::vector<Vertical_link_info> vertical_links;
    int total_tsvs = 0;
    /// Probability that every TSV in the design is functional.
    double stack_yield = 1.0;
    /// Max utilization over vertical links at the reduced capacity.
    double max_vertical_utilization = 0.0;
    /// Each layer's intra-layer flows can run with 2D-only routing tables
    /// (§4.4 testing mode).
    bool two_d_test_mode_ok = true;
};

struct Synthesis3d_result {
    std::vector<Design_point_3d> designs;
    std::vector<std::string> rejections;
};

[[nodiscard]] Synthesis3d_result synthesize_3d(const Synthesis3d_spec& spec);

/// TSVs for one vertical link at width `flit_width_bits` and serialization
/// `s` (ceil(width/s) data vias + overhead).
[[nodiscard]] int tsvs_per_vertical_link(int flit_width_bits,
                                         int serialization, int overhead);

} // namespace noc
